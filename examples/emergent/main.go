// Emergent: collection-level danger from individually good devices
// (Section VI.D).
//
// Part 1 — the paper's heat example: every component's heat is within
// its own limits, but the collection's cumulative heat exceeds the
// enclosure budget; the admission controller catches the formation.
//
// Part 2 — the rolling-blackout example (ref [16]): a ring of load
// nodes, each under capacity, cascades totally after one failure once
// the load ratio is high enough; the collaborative what-if simulation
// predicts it beforehand.
//
// Run: go run ./examples/emergent
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/emergent"
	"repro/internal/guard"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := heatExample(); err != nil {
		return err
	}
	return cascadeExample()
}

func heatExample() error {
	fmt.Println("-- heat accumulation: individually good, collectively bad --")
	schema, err := statespace.NewSchema(statespace.Var("heat", 0, 79))
	if err != nil {
		return err
	}
	controller := &guard.AdmissionController{
		Assessor: &guard.AggregateAssessor{Rules: []guard.AggregateRule{
			{Name: "enclosure-heat", Variable: "heat", Kind: guard.AggregateSum, Limit: 150},
		}},
		HitRate: 1,
		Rand:    rand.New(rand.NewSource(1)).Float64,
	}

	var members []statespace.State
	for i, heat := range []float64{45, 50, 40, 35} {
		candidate, err := schema.StateFromMap(map[string]float64{"heat": heat})
		if err != nil {
			return err
		}
		admitted, reason := controller.Admit(fmt.Sprintf("component-%d", i+1), members, candidate)
		sum := heat
		for _, m := range members {
			sum += m.MustGet("heat")
		}
		fmt.Printf("component-%d (heat %.0f, each < 80): total would be %.0f → admitted=%v (%s)\n",
			i+1, heat, sum, admitted, reason)
		if admitted {
			members = append(members, candidate)
		}
	}
	fmt.Println()
	return nil
}

func cascadeExample() error {
	fmt.Println("-- rolling blackout: load ring at two load ratios --")
	for _, ratio := range []float64{0.6, 0.85} {
		ln := emergent.NewLoadNetwork()
		const nodes = 20
		for i := 0; i < nodes; i++ {
			if err := ln.AddNode(fmt.Sprintf("bus-%02d", i), 10, 10*ratio); err != nil {
				return err
			}
		}
		for i := 0; i < nodes; i++ {
			if err := ln.Connect(fmt.Sprintf("bus-%02d", i), fmt.Sprintf("bus-%02d", (i+1)%nodes)); err != nil {
				return err
			}
		}
		predicted, err := ln.SimulateFailure("bus-00")
		if err != nil {
			return err
		}
		fmt.Printf("load ratio %.2f: what-if simulation predicts %.0f%% of the grid fails if bus-00 trips",
			ratio, predicted.FailureFraction()*100)
		if predicted.FailureFraction() > 0.25 {
			fmt.Println("  → collaborative assessment REJECTS this configuration")
			continue
		}
		fmt.Println("  → configuration accepted")
		actual, err := ln.TriggerFailure("bus-00")
		if err != nil {
			return err
		}
		fmt.Printf("  actual failure of bus-00: %d/%d nodes lost in %d rounds\n",
			len(actual.Failed), nodes, actual.Rounds)
	}
	return nil
}
