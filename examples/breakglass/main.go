// Breakglass: the paper's dilemma (Section VI.B).
//
// "Electronic components having no alternative but to run at maximum
// capacity to prevent loss of life but risking a fire at the same
// time." The state-space guard refuses all bad transitions until a
// break-glass rule — backed by a state-preference ontology (fire is
// less bad than loss of life), risk estimation, and a trust check on
// the sensor data — unlocks the least-bad escape, with every use
// audited.
//
// Run: go run ./examples/breakglass
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/risk"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	schema, err := statespace.NewSchema(
		statespace.Var("lifeSupportLoad", 0, 100), // demand that must be met
		statespace.Var("heat", 0, 100),            // fire risk
	)
	if err != nil {
		return err
	}
	// Bad: life support underpowered (load unmet) OR overheating.
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("lifeSupportLoad") > 70 || st.MustGet("heat") > 75 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	outcomeOf := func(st statespace.State) ontology.Outcome {
		switch {
		case st.MustGet("lifeSupportLoad") > 70:
			return "loss-of-life"
		case st.MustGet("heat") > 75:
			return "fire"
		default:
			return ""
		}
	}

	prefs := ontology.NewPreferenceOntology()
	if err := prefs.Prefer("fire", "loss-of-life"); err != nil {
		return err
	}
	heatRisk := risk.AssessorFunc(func(st statespace.State) float64 {
		return (st.MustGet("lifeSupportLoad")*0.7 + st.MustGet("heat")*0.3) / 100
	})

	honestPeerReadings := []float64{91, 89, 92, 90} // peers confirm the emergency

	auditLog := audit.New()
	bg := &guard.BreakGlass{
		Preferences: prefs,
		Risk:        heatRisk,
		MaxUses:     2,
		TrustCheck: func(ctx guard.ActionContext) bool {
			own := ctx.State.MustGet("lifeSupportLoad")
			return attack.TrustReading(own, honestPeerReadings, 15)
		},
	}
	g := guard.NewPipeline(auditLog, &guard.StateSpaceGuard{
		Classifier: classifier,
		OutcomeOf:  outcomeOf,
		BreakGlass: bg,
	})

	// The component is in the loss-of-life-risk state: life support
	// demand unmet at 90.
	curr, err := schema.StateFromMap(map[string]float64{"lifeSupportLoad": 90, "heat": 40})
	if err != nil {
		return err
	}
	// Running at max capacity meets the demand but overheats: the
	// fire-risk state.
	runMax, err := schema.StateFromMap(map[string]float64{"lifeSupportLoad": 20, "heat": 85})
	if err != nil {
		return err
	}
	// Doing something reckless makes everything worse.
	meltdown, err := schema.StateFromMap(map[string]float64{"lifeSupportLoad": 90, "heat": 99})
	if err != nil {
		return err
	}

	check := func(label string, action policy.Action, next statespace.State) {
		v := g.Check(guard.ActionContext{Actor: "component-7", Action: action, State: curr, Next: next})
		status := "DENIED "
		if v.Allowed() {
			status = "ALLOWED"
		}
		if v.BrokeGlass {
			status += " [break-glass]"
		}
		fmt.Printf("%-28s %s — %s\n", label, status, v.Reason)
	}

	fmt.Printf("current state: %s (outcome: %s)\n\n", curr, outcomeOf(curr))
	check("run-at-max-capacity", policy.Action{Name: "run-max-capacity"}, runMax)
	check("reckless overdrive", policy.Action{Name: "overdrive"}, meltdown)
	check("run-at-max again (budget)", policy.Action{Name: "run-max-capacity"}, runMax)
	check("third attempt (exhausted)", policy.Action{Name: "run-max-capacity"}, runMax)

	// A deception attack inflates the sensed emergency on a healthy
	// component; peers disagree, so the trust check refuses.
	fmt.Println("\n-- deception attack: attacker fakes the life-support emergency --")
	honestPeerReadings = []float64{22, 25, 20, 24}
	check("spurious break-glass", policy.Action{Name: "run-max-capacity"}, runMax)

	fmt.Printf("\nbreak-glass uses: %d (audited: %d, chain verified: %v)\n",
		bg.Uses(), len(auditLog.ByKind(audit.KindBreakGlass)), auditLog.Verify() == nil)
	return nil
}
