// Surveillance: the paper's coalition scenario (Section II).
//
// Two coalition members (US and UK) patrol a region. A surveillance
// drone sees smoke and calls upon a chemical-sensor drone; it sees a
// suspect convoy and calls upon a ground mule to intercept. Policies
// for the cross-device interactions are GENERATED from an interaction
// graph and templates when the peers are discovered (Section IV), a
// legislative overseer checks their scope, and a pre-action guard
// vetoes the interception when humans are on the predicted path.
//
// Run: go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/coalition"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/generative"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	clock := sim.NewClock(time.Date(2026, 7, 6, 6, 0, 0, 0, time.UTC))
	world, err := sim.NewWorld(30, 30, rng, clock)
	if err != nil {
		return err
	}
	// Civilians near the convoy's path.
	if err := world.AddHuman("shepherd", sim.Pos{X: 12, Y: 8}, true); err != nil {
		return err
	}

	coal := coalition.New()
	for _, org := range []string{"us", "uk"} {
		if err := coal.AddOrganization(org); err != nil {
			return err
		}
	}
	if err := coal.SetTrust("us", "uk", coalition.TrustFull); err != nil {
		return err
	}
	if err := coal.SetTrust("uk", "us", coalition.TrustFull); err != nil {
		return err
	}

	auditLog := audit.New()
	collective, err := core.New(core.Config{
		Name:       "coalition-recon",
		Audit:      auditLog,
		Coalition:  coal,
		KillSecret: []byte("coalition-quorum"),
	})
	if err != nil {
		return err
	}

	schema, err := statespace.NewSchema(statespace.Var("fuel", 0, 100))
	if err != nil {
		return err
	}
	fullFuel, err := schema.StateFromMap(map[string]float64{"fuel": 100})
	if err != nil {
		return err
	}

	// The pre-action guard consults the world: intercepting at a cell
	// with a civilian nearby predicts harm.
	harmGuard := core.StandardPipeline(core.SafetyConfig{
		Audit: auditLog,
		HarmPredictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
			if ctx.Action.Name != "drive-intercept-path" {
				return 0
			}
			if len(world.HumansWithin(sim.Pos{X: 12, Y: 8}, 2)) > 0 && ctx.Action.Params["route"] == "through-pasture" {
				return 0.9
			}
			return 0
		}),
		HarmThreshold: 0.5,
	})

	// Build the three devices.
	type spec struct {
		id, typ, org string
		actions      map[string]func(policy.Action)
	}
	mkDevice := func(s spec) (*device.Device, error) {
		d, err := device.New(device.Config{
			ID: s.id, Type: s.typ, Organization: s.org,
			Initial:    fullFuel,
			Guard:      harmGuard,
			KillSwitch: collective.KillSwitch(),
			Audit:      auditLog,
		})
		if err != nil {
			return nil, err
		}
		for name, fn := range s.actions {
			fn := fn
			if err := d.RegisterActuator(name, device.ActuatorFunc{Label: name, Fn: func(a policy.Action) error {
				fn(a)
				return nil
			}}); err != nil {
				return nil, err
			}
		}
		return d, nil
	}

	drone, err := mkDevice(spec{id: "drone-1", typ: "surveillance-drone", org: "us",
		actions: map[string]func(policy.Action){}})
	if err != nil {
		return err
	}
	chem, err := mkDevice(spec{id: "chem-1", typ: "chem-drone", org: "uk",
		actions: map[string]func(policy.Action){
			"run-chem-survey": func(policy.Action) {
				fmt.Println("  chem-1 (uk): chemical/radiological survey of the smoke plume → negative")
			},
		}})
	if err != nil {
		return err
	}
	mule, err := mkDevice(spec{id: "mule-1", typ: "ground-mule", org: "us",
		actions: map[string]func(policy.Action){
			"drive-intercept-path": func(a policy.Action) {
				fmt.Printf("  mule-1 (us): intercepting convoy via %s\n", a.Params["route"])
			},
		}})
	if err != nil {
		return err
	}

	for _, d := range []*device.Device{drone, chem, mule} {
		if err := collective.AddDevice(d, nil); err != nil {
			return err
		}
	}
	drone.SetDefaultActuator(collective.RouterFor("drone-1"))

	// Chem drone and mule logic: respond to routed requests.
	if err := chem.Policies().Add(policy.Policy{
		ID: "survey", EventType: "request-survey", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "run-chem-survey"},
	}); err != nil {
		return err
	}
	for _, route := range []string{"through-pasture", "ridge-road"} {
		if err := mule.Policies().Add(policy.Policy{
			ID: "intercept-" + route, EventType: "request-intercept", Modality: policy.ModalityDo,
			Condition: policy.LabelEquals{Label: "route", Value: route},
			Action: policy.Action{Name: "drive-intercept-path",
				Params: map[string]string{"route": route}},
		}); err != nil {
			return err
		}
	}

	// The drone GENERATES its escalation policies on discovery
	// (Section IV), with a legislative scope check.
	graph := generative.NewInteractionGraph()
	for _, ts := range []generative.TypeSpec{
		{Name: "surveillance-drone"}, {Name: "chem-drone"}, {Name: "ground-mule"},
	} {
		if err := graph.AddType(ts); err != nil {
			return err
		}
	}
	if err := graph.AddInteraction(generative.Interaction{
		From: "surveillance-drone", To: "chem-drone", Kind: "escalate-smoke"}); err != nil {
		return err
	}
	if err := graph.AddInteraction(generative.Interaction{
		From: "surveillance-drone", To: "ground-mule", Kind: "intercept-convoy"}); err != nil {
		return err
	}
	gen := &generative.Generator{
		OwnType: "surveillance-drone", Organization: "us", Graph: graph,
		Templates: map[string]generative.Template{
			"escalate-smoke": {ID: "escalate", Text: `policy escalate-${device} priority 10:
    on smoke-detected
    when intensity > 3
    do request-survey target ${device} category surveillance`},
			"intercept-convoy": {ID: "intercept", Text: `policy intercept-${device} priority 10:
    on convoy-sighted
    when threat > 0.5
    do request-intercept target ${device} category tasking param route = "through-pasture"`},
		},
		Approver: &guard.SingleOverseer{Overseer: &guard.ScopeReviewer{
			Label: "legislative",
			Rules: []guard.ScopeRule{guard.PriorityCap{Max: 50}},
		}, Log: auditLog},
	}
	for _, peer := range []*device.Device{chem, mule} {
		// Adopt installs each discovery's policies as one batch, so the
		// drone's decision plane recompiles once per discovery.
		adopted, rejected, err := gen.Adopt(drone.Policies(), network.DeviceInfo{
			ID: peer.ID(), Type: peer.Type(), Organization: peer.Organization(),
		})
		if err != nil {
			return err
		}
		fmt.Printf("discovery of %s: %d policies generated, %d rejected by oversight\n",
			peer.ID(), len(adopted), len(rejected))
	}

	// Mission: smoke, then a convoy.
	fmt.Println("\n>> drone-1 sees smoke (intensity 5)")
	if _, err := collective.Deliver("drone-1", policy.Event{
		Type: "smoke-detected", Attrs: map[string]float64{"intensity": 5},
	}); err != nil {
		return err
	}

	fmt.Println(">> drone-1 sees a suspect convoy (threat 0.8) — pasture route has a civilian")
	if _, err := collective.Deliver("drone-1", policy.Event{
		Type: "convoy-sighted", Attrs: map[string]float64{"threat": 0.8},
	}); err != nil {
		return err
	}
	denials := auditLog.ByKind(audit.KindDenial)
	for _, d := range denials {
		fmt.Printf("  guard veto on %s: %s\n", d.Actor, d.Detail)
	}

	fmt.Println(">> human re-tasks the mule onto the ridge road")
	if _, err := collective.Deliver("mule-1", policy.Event{
		Type: "request-intercept", Source: "human-1",
		Labels: map[string]string{"route": "ridge-road"},
	}); err != nil {
		return err
	}

	direct, indirect := world.HarmCounts()
	fmt.Printf("\nharm to humans: direct=%d indirect=%d (audit entries: %d, verified: %v)\n",
		direct, indirect, auditLog.Len(), auditLog.Verify() == nil)
	return nil
}
