// Coalitionshare: sharing generated policies across organizations
// (Sections II–IV).
//
// Three devices from three coalition members gossip the policies they
// generated. Trust gates what each accepts: the UK drone (full trust
// in the US) installs the US policy; the US drone filters out the
// low-trust observer's policy; and a deceptive high-priority policy
// published by the observer never reaches anyone who doesn't trust it
// — even though gossip replicated the bytes everywhere.
//
// Run: go run ./examples/coalitionshare
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/coalition"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	coal := coalition.New()
	for _, org := range []string{"us", "uk", "observer"} {
		if err := coal.AddOrganization(org); err != nil {
			return err
		}
	}
	type trust struct {
		from, to string
		level    coalition.Trust
	}
	for _, tr := range []trust{
		{from: "us", to: "uk", level: coalition.TrustFull},
		{from: "uk", to: "us", level: coalition.TrustFull},
		{from: "us", to: "observer", level: coalition.TrustLow},
		{from: "uk", to: "observer", level: coalition.TrustLow},
		{from: "observer", to: "us", level: coalition.TrustMedium},
	} {
		if err := coal.SetTrust(tr.from, tr.to, tr.level); err != nil {
			return err
		}
	}

	exchange := core.NewPolicyExchange(coal, network.NewGossip(rand.New(rand.NewSource(5)), 2))
	exchange.Join("us-drone", "us")
	exchange.Join("uk-drone", "uk")
	exchange.Join("observer-drone", "observer")

	usPolicy := policy.Policy{
		ID: "us-smoke-escalation", Organization: "us", Origin: policy.OriginGenerated,
		EventType: "smoke-detected", Priority: 10, Modality: policy.ModalityDo,
		Condition: policy.Threshold{Quantity: "intensity", Op: policy.CmpGT, Value: 3},
		Action:    policy.Action{Name: "request-survey", Category: "surveillance"},
	}
	// The observer publishes a suspiciously privileged policy.
	observerPolicy := policy.Policy{
		ID: "observer-override", Organization: "observer", Origin: policy.OriginGenerated,
		EventType: "*", Priority: 99, Modality: policy.ModalityDo,
		Action: policy.Action{Name: "reroute-all-units", Category: "tasking"},
	}
	if err := exchange.Publish("us-drone", usPolicy, 1); err != nil {
		return err
	}
	if err := exchange.Publish("observer-drone", observerPolicy, 1); err != nil {
		return err
	}

	rounds := exchange.Sync(100)
	fmt.Printf("gossip converged in %d rounds\n\n", rounds)

	for _, id := range []string{"us-drone", "uk-drone", "observer-drone"} {
		accepted, err := exchange.Accepted(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s accepts %d shared policies:\n", id, len(accepted))
		for _, p := range accepted {
			text, err := policylang.Format(p)
			if err != nil {
				return err
			}
			fmt.Printf("  from %s:\n", p.Organization)
			for _, line := range splitLines(text) {
				fmt.Printf("    %s\n", line)
			}
		}
		fmt.Println()
	}
	return nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
