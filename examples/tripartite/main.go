// Tripartite: AI overseeing AI (Section VI.E).
//
// Three oversight collectives — executive, legislative, judiciary —
// vote on policies a generative device proposes. A healthy tripartite
// rejects out-of-scope proposals even after one collective is
// compromised into a rubber stamp; the demo then compromises a second
// collective to show where the mechanism's guarantee ends.
//
// Run: go run ./examples/tripartite
package main

import (
	"fmt"
	"log"

	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("fire-weapon", "kinetic-action"); err != nil {
		return err
	}
	tx.Add("surveillance")

	newCollective := func(label string) guard.Reviewer {
		return &guard.ScopeReviewer{
			Label: label,
			Rules: []guard.ScopeRule{
				guard.ForbidCategory{Taxonomy: tx, Concept: "kinetic-action"},
				guard.MaxEffectMagnitude{Limit: 20},
				guard.PriorityCap{Max: 50},
				guard.RequireCondition{Taxonomy: tx, Concept: "kinetic-action"},
			},
		}
	}
	auditLog := audit.New()
	tri := &guard.Tripartite{
		Executive:   newCollective("executive"),
		Legislative: newCollective("legislative"),
		Judiciary:   newCollective("judiciary"),
		Log:         auditLog,
	}

	proposals := []policy.Policy{
		{
			ID: "patrol-support", EventType: "smoke-detected", Modality: policy.ModalityDo, Priority: 10,
			Condition: policy.Threshold{Quantity: "intensity", Op: policy.CmpGT, Value: 3},
			Action:    policy.Action{Name: "observe", Category: "surveillance", Effect: statespace.Delta{"fuel": -2}},
		},
		{
			ID: "autonomous-engage", EventType: "*", Modality: policy.ModalityDo, Priority: 10,
			Action: policy.Action{Name: "engage", Category: "fire-weapon"},
		},
		{
			ID: "outrank-safety", EventType: "tick", Modality: policy.ModalityDo, Priority: 99,
			Action: policy.Action{Name: "observe", Category: "surveillance"},
		},
	}

	vote := func(stage string) {
		fmt.Printf("-- %s --\n", stage)
		for _, p := range proposals {
			ok, votes := tri.Approve(p)
			verdict := "REJECTED"
			if ok {
				verdict = "adopted"
			}
			fmt.Printf("%-18s %s\n", p.ID, verdict)
			for _, v := range votes {
				mark := "✗"
				if v.Approve {
					mark = "✓"
				}
				fmt.Printf("    %s %-12s %s\n", mark, v.Collective, v.Reason)
			}
		}
		fmt.Println()
	}

	vote("healthy tripartite")

	// An attacker compromises the executive collective.
	tri.Executive = guard.ReviewerFunc{Label: "executive*", Fn: func(policy.Policy) (bool, string) {
		return true, "rubber stamp (compromised)"
	}}
	vote("one collective compromised — 2-of-3 still holds")

	// And then the judiciary as well.
	tri.Judiciary = guard.ReviewerFunc{Label: "judiciary*", Fn: func(policy.Policy) (bool, string) {
		return true, "rubber stamp (compromised)"
	}}
	vote("two collectives compromised — the mechanism's limit")

	fmt.Printf("oversight decisions audited: %d (chain verified: %v)\n",
		len(auditLog.ByKind(audit.KindOversight)), auditLog.Verify() == nil)
	return nil
}
