// Autonomic: the MAPE-K self-management loop on a virtual clock
// (Section II: devices "would need to be self-managing. They would
// need to repair themselves ... and deal in an autonomous manner with
// failures").
//
// Two devices run in a collective on the discrete-event engine. One
// has a repair policy and cools itself every time its loop detects the
// bad (overheated) state; the other has no repair path and is
// deactivated by the periodic watchdog sweep.
//
// Run: go run ./examples/autonomic
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		return err
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})

	collective, err := core.New(core.Config{
		Name:       "autonomic-demo",
		KillSecret: []byte("autonomic-quorum"),
		Classifier: classifier,
	})
	if err != nil {
		return err
	}

	// Both devices sit in an environment that heats them 12 units per
	// management tick.
	heats := map[string]*float64{}
	mkDevice := func(id string) (*device.Device, error) {
		initial, err := schema.StateFromMap(map[string]float64{"heat": 20, "fuel": 100})
		if err != nil {
			return nil, err
		}
		d, err := device.New(device.Config{
			ID: id, Type: "worker",
			Initial:    initial,
			KillSwitch: collective.KillSwitch(),
		})
		if err != nil {
			return nil, err
		}
		h := 20.0
		heats[id] = &h
		if err := d.BindSensor("heat", device.SensorFunc{Label: "thermo", Fn: func() (float64, error) {
			*heats[id] += 12
			return *heats[id], nil
		}}); err != nil {
			return nil, err
		}
		return d, collective.AddDevice(d, nil)
	}

	selfHealing, err := mkDevice("self-healing")
	if err != nil {
		return err
	}
	if err := selfHealing.Policies().Add(policy.Policy{
		ID: "cool-down", EventType: device.DefaultRepairEvent, Modality: policy.ModalityDo,
		Action: policy.Action{Name: "spin-up-fans", Effect: statespace.Delta{"heat": -50, "fuel": -2}},
	}); err != nil {
		return err
	}
	if err := selfHealing.RegisterActuator("spin-up-fans", device.ActuatorFunc{
		Label: "fans",
		Fn: func(policy.Action) error {
			*heats["self-healing"] -= 50
			if *heats["self-healing"] < 0 {
				*heats["self-healing"] = 0
			}
			fmt.Printf("    self-healing: repair policy fired — fans on, heat now %.0f\n", *heats["self-healing"])
			return nil
		},
	}); err != nil {
		return err
	}
	if _, err := mkDevice("helpless"); err != nil {
		return err
	}

	start := time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
	engine := sim.NewEngine(sim.NewClock(start))
	orch, err := core.NewOrchestrator(collective, engine)
	if err != nil {
		return err
	}
	for _, id := range []string{"self-healing", "helpless"} {
		if err := orch.Manage(id, time.Second, classifier, nil); err != nil {
			return err
		}
	}
	orch.SweepEvery(5*time.Second, nil)

	fmt.Println("running 30 virtual seconds of autonomic management...")
	if err := orch.Run(start.Add(30 * time.Second)); err != nil {
		return err
	}

	fmt.Println()
	for _, d := range collective.Devices() {
		status := "active (self-repaired throughout)"
		if d.Deactivated() {
			status = "DEACTIVATED by watchdog (no repair path)"
		}
		fmt.Printf("%-13s %s — final state %s\n", d.ID(), status, d.CurrentState())
	}
	return nil
}
