// Quickstart: one guarded device.
//
// Builds a single device with the standard guard pipeline (pre-action
// check + state-space check), gives it two policies — one safe, one
// that would overheat it — and shows the guard allowing the first and
// vetoing the second, with the audit trail to prove it.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Define the device's state space: Figure 3 in two variables.
	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("work", 0, 1000),
	)
	if err != nil {
		return err
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})

	// 2. Assemble the standard guard stack over a shared audit log.
	auditLog := audit.New()
	guards := core.StandardPipeline(core.SafetyConfig{
		Audit:      auditLog,
		Classifier: classifier,
		HarmPredictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
			if ctx.Action.Name == "vent-exhaust-at-crowd" {
				return 1 // the world model says humans are in the plume
			}
			return 0
		}),
		HarmThreshold: 0.5,
	})

	// 3. Build the device.
	initial, err := schema.StateFromMap(map[string]float64{"heat": 30})
	if err != nil {
		return err
	}
	dev, err := device.New(device.Config{
		ID:      "worker-1",
		Type:    "industrial-robot",
		Initial: initial,
		Guard:   guards,
		Audit:   auditLog,
	})
	if err != nil {
		return err
	}

	// 4. Its logic: three event-condition-action policies.
	for _, p := range []policy.Policy{
		{ID: "produce", EventType: "order", Modality: policy.ModalityDo,
			Action: policy.Action{Name: "produce-unit", Effect: statespace.Delta{"work": 1, "heat": 10}}},
		{ID: "overdrive", EventType: "rush-order", Modality: policy.ModalityDo,
			Action: policy.Action{Name: "overdrive", Effect: statespace.Delta{"work": 5, "heat": 60}}},
		{ID: "vent", EventType: "overheat-warning", Modality: policy.ModalityDo,
			Action: policy.Action{Name: "vent-exhaust-at-crowd", Effect: statespace.Delta{"heat": -40}}},
	} {
		if err := dev.Policies().Add(p); err != nil {
			return err
		}
	}

	// 5. Drive it.
	for _, eventType := range []string{"order", "order", "rush-order", "overheat-warning", "order"} {
		execs, err := dev.HandleEvent(policy.Event{Type: eventType})
		if err != nil {
			return err
		}
		for _, e := range execs {
			status := "EXECUTED"
			if !e.Verdict.Allowed() {
				status = "DENIED  "
			}
			fmt.Printf("%-18s %s %-22s %s\n", eventType, status, e.Action.Name, e.Verdict.Reason)
		}
	}

	fmt.Printf("\nfinal state: %s\n", dev.CurrentState())
	fmt.Printf("audit entries: %d (chain verified: %v)\n", auditLog.Len(), auditLog.Verify() == nil)
	for _, entry := range auditLog.ByKind(audit.KindDenial) {
		fmt.Printf("  denial: %s\n", entry.Detail)
	}
	return nil
}
