# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-race race cover bench bench-json bench-fleet experiments examples obs-smoke

all: build test

build:
	go build ./...

vet:
	go vet ./...

test: vet obs-smoke
	go test -shuffle=on ./...

# End-to-end observability check: run a short scenario with the live
# endpoint up and assert /metrics and /traces serve well-formed,
# non-empty output.
obs-smoke:
	sh scripts/obs_smoke.sh

# Race-check the library packages (the chaos and resilience tests
# exercise concurrent senders); `race` covers the whole module. The
# second command repeats the parallel-determinism differentials under
# the race detector — goroutine schedules vary across -count runs, so
# byte-identical journals twice in a row is strong evidence the merge
# order really is deterministic.
test-race:
	go test -race ./internal/...
	go test -race -count=2 -run 'TestParallelDeterminism|TestE15Determinism' \
		./internal/sim ./internal/experiments

race:
	go test -race ./...

cover:
	go test -cover ./...

# Benchmarks: 5 repetitions per benchmark, results mirrored to
# bench.txt for before/after comparisons (see EXPERIMENTS.md E13).
bench:
	go test -bench=. -benchmem -count=5 ./... | tee bench.txt

# Machine-readable benchmark results: run the suite (3 repetitions for
# turnaround), then distill bench.txt into BENCH_PR4.json.
bench-json:
	go test -bench=. -benchmem -count=3 ./... | tee bench.txt
	sh scripts/bench_json.sh bench.txt BENCH_PR4.json

# The 10k-device parallel-fleet benchmarks only (E15). One run per
# variant: each iteration is a whole 30-virtual-second fleet, so
# -benchtime=1x keeps the loop honest.
bench-fleet:
	go test -bench='BenchmarkE15Fleet' -benchmem -benchtime=1x -count=3 \
		./internal/experiments

experiments:
	go run ./cmd/experiments

examples:
	@for ex in quickstart surveillance tripartite breakglass emergent coalitionshare autonomic; do \
		echo "== examples/$$ex =="; \
		go run ./examples/$$ex; \
		echo; \
	done
