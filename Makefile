# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-race race cover bench experiments examples obs-smoke

all: build test

build:
	go build ./...

vet:
	go vet ./...

test: vet obs-smoke
	go test -shuffle=on ./...

# End-to-end observability check: run a short scenario with the live
# endpoint up and assert /metrics and /traces serve well-formed,
# non-empty output.
obs-smoke:
	sh scripts/obs_smoke.sh

# Race-check the library packages (the chaos and resilience tests
# exercise concurrent senders); `race` covers the whole module.
test-race:
	go test -race ./internal/...

race:
	go test -race ./...

cover:
	go test -cover ./...

# Benchmarks: 5 repetitions per benchmark, results mirrored to
# bench.txt for before/after comparisons (see EXPERIMENTS.md E13).
bench:
	go test -bench=. -benchmem -count=5 ./... | tee bench.txt

experiments:
	go run ./cmd/experiments

examples:
	@for ex in quickstart surveillance tripartite breakglass emergent coalitionshare autonomic; do \
		echo "== examples/$$ex =="; \
		go run ./examples/$$ex; \
		echo; \
	done
