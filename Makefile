# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race cover bench experiments examples

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/experiments

examples:
	@for ex in quickstart surveillance tripartite breakglass emergent coalitionshare autonomic; do \
		echo "== examples/$$ex =="; \
		go run ./examples/$$ex; \
		echo; \
	done
