# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-race race cover bench bench-json bench-fleet bench-admission bench-bundle bench-megafleet bench-serve bench-residual alloc-gate residual-gate conservation scope-gate fuzz-short experiments examples obs-smoke serve-smoke

all: build test

build:
	go build ./...

vet:
	go vet ./...

test: vet obs-smoke serve-smoke conservation scope-gate fuzz-short alloc-gate residual-gate
	go test -shuffle=on ./...

# The fleet allocation gate: one exact run of the 10k-device parallel
# fleet benchmark against the committed budgets in bench_budget.json.
# Keeps the memory-compact state plane honest — an accidental
# per-tick allocation on the MAPE hot path fails `make test`, not a
# benchmark review three PRs later.
alloc-gate:
	sh scripts/alloc_gate.sh bench_budget.json

# The partial-evaluation gate: the 10k-policy/64-class residual must
# stay at least 10x faster than the full snapshot deciding for the
# same device (measured margin ~22x; the ratio of two same-process
# benchmarks is robust to host speed).
residual-gate:
	sh scripts/residual_gate.sh

# The trust-boundary gate: the cross-org scope-refusal property (any
# bundle signed by org A's key that names an org-B policy is refused
# with ErrScope), the multi-root distributor refusal path, and the E21
# coalition chaos run with its exact books and 1/2/4-worker
# determinism differential.
scope-gate:
	go test -run 'TestScope|TestAgentsTwoRootsOneSet|TestKeyRing' ./internal/bundle
	go test -run 'TestDistributorMultiRoot|TestDistributorForged|TestDistributorBadPayload|TestDistributorEncodeFailure' \
		./internal/core
	go test -run 'TestE21' ./internal/experiments

# A short randomized pass over the bundle wire-format decoder on top of
# its seeded corpus: no input may reach live policy state or crash the
# fail-closed verification chain.
fuzz-short:
	go test -run=FuzzBundleDecode -fuzz=FuzzBundleDecode -fuzztime=10s \
		./internal/bundle

# The admission-plane conservation gate, runnable on its own: the E16
# saturation ledger must balance exactly (sent == delivered + dropped
# + shed, pending 0) and the drop-site audit must find no discarded
# Send/Deliver outcomes anywhere in the production source.
conservation:
	go test -run 'TestE16ConservationExact|TestNoUnaccountedDropSites|TestConservationUnderRandomLoad' \
		./internal/experiments ./internal/admission

# End-to-end observability check: run a short scenario with the live
# endpoint up and assert /metrics and /traces serve well-formed,
# non-empty output.
obs-smoke:
	sh scripts/obs_smoke.sh

# End-to-end control-plane check: start `skynetsim serve`, submit a
# command, follow its trace to a connected decision tree, stream the
# verifiable audit tail, burst it with loadgen and drain on SIGTERM.
serve-smoke:
	sh scripts/serve_smoke.sh

# Race-check the library packages (the chaos and resilience tests
# exercise concurrent senders); `race` covers the whole module. The
# second command repeats the parallel-determinism differentials under
# the race detector — goroutine schedules vary across -count runs, so
# byte-identical journals twice in a row is strong evidence the merge
# order really is deterministic.
test-race:
	go test -race ./internal/...
	go test -race -count=2 -run 'TestParallelDeterminism|TestE15Determinism|TestPropertyBoxedScratchEquivalence|TestDifferentialResidualVsFull|TestResidualConcurrentSpecialize' \
		./internal/sim ./internal/experiments ./internal/device ./internal/policy

race:
	go test -race ./...

cover:
	go test -cover ./...

# Benchmarks: 5 repetitions per benchmark, results mirrored to
# bench.txt for before/after comparisons (see EXPERIMENTS.md E13).
bench:
	go test -bench=. -benchmem -count=5 ./... | tee bench.txt

# Machine-readable benchmark results: run the suite (3 repetitions for
# turnaround), then distill bench.txt into BENCH_PR7.json. Fleet rows
# (BenchmarkE15Fleet*, BenchmarkE18*) also append to the cumulative
# BENCH_HISTORY.json, so the allocation trend across PRs is one file.
bench-json:
	go test -bench=. -benchmem -count=3 ./... | tee bench.txt
	sh scripts/bench_json.sh bench.txt BENCH_PR7.json

# Admission-control hot paths only (PR5): admit/shed/gate/drain on a
# virtual clock, distilled into BENCH_PR5.json.
bench-admission:
	go test -bench='BenchmarkAdmission' -benchmem -count=5 \
		./internal/admission | tee bench_admission.txt
	sh scripts/bench_json.sh bench_admission.txt BENCH_PR5.json

# Bundle distribution hot paths: publish, verify+activate (full and
# delta) and the fail-closed reject path into BENCH_PR6.json (PR6);
# then the 100k-device multi-root publish fan-out — synchronous
# per-device loop vs sharded batch events at 1/2/4 workers — into
# BENCH_PR10.json (PR10), with dated rows in BENCH_HISTORY.json.
bench-bundle:
	go test -bench='BenchmarkBundle' -benchmem -count=5 \
		./internal/bundle | tee bench_bundle.txt
	sh scripts/bench_json.sh bench_bundle.txt BENCH_PR6.json
	DIST_BENCH_FLEET=100000 go test -bench='BenchmarkDistributorFanout' \
		-benchmem -benchtime=1x -count=3 -timeout 30m \
		./internal/core | tee bench_fanout.txt
	sh scripts/bench_json.sh bench_fanout.txt BENCH_PR10.json

# Control-plane latency benchmarks (PR8): three loadgen runs — closed
# loop, open loop at 1x admission capacity, open loop at 2x — with
# p50/p95/p99 decision latency into BENCH_PR8.json; the benchmark
# lines also append BenchmarkServe* rows to BENCH_HISTORY.json.
bench-serve:
	sh scripts/bench_serve.sh BENCH_PR8.json BENCH_HISTORY.json

# Decision-plane / partial-evaluation benchmarks only (PR9): full
# snapshot vs residual vs specialization cost at 10k policies,
# distilled into BENCH_PR9.json; the Evaluate/Residual/Specialize
# rows also append to BENCH_HISTORY.json.
bench-residual:
	go test -bench='BenchmarkEvaluate|BenchmarkResidual|BenchmarkSpecialize' \
		-benchmem -count=3 ./internal/policy | tee bench_residual.txt
	sh scripts/bench_json.sh bench_residual.txt BENCH_PR9.json

# The 10k-device parallel-fleet benchmarks only (E15). One run per
# variant: each iteration is a whole 30-virtual-second fleet, so
# -benchtime=1x keeps the loop honest.
bench-fleet:
	go test -bench='BenchmarkE15Fleet' -benchmem -benchtime=1x -count=3 \
		./internal/experiments

# The mega-fleet gates (E18): the 10^5-device differential (byte-
# identical journals at 1/2/4 workers) and the 10^6-device smoke run.
# Costs minutes and several GB of RAM, hence env-gated out of `make
# test`.
bench-megafleet:
	E18_MEGAFLEET=1 go test -run TestE18Megafleet100k -v -timeout 60m \
		./internal/experiments
	E18_MEGAFLEET_1M=1 go test -run TestE18Megafleet1M -v -timeout 60m \
		./internal/experiments

experiments:
	go run ./cmd/experiments

examples:
	@for ex in quickstart surveillance tripartite breakglass emergent coalitionshare autonomic; do \
		echo "== examples/$$ex =="; \
		go run ./examples/$$ex; \
		echo; \
	done
