// Benchmarks regenerating every reproduced figure (F1–F3) and
// experiment (E1–E10) from DESIGN.md, micro-benchmarks of the hot
// paths (policy evaluation, DSL parsing, guard checks, gossip, robust
// aggregation, audit appends), and the ablation benches DESIGN.md
// calls out (guard-pipeline ordering, obligation selection strategy,
// oversight voting arrangement, aggregation strategy).
//
// Run: go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/statespace"
)

// --- Figure and experiment regeneration -----------------------------

func benchRunner(b *testing.B, id string) {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1ModeOfOperation(b *testing.B)     { benchRunner(b, "F1") }
func BenchmarkF2DeviceModel(b *testing.B)         { benchRunner(b, "F2") }
func BenchmarkF3StateSpace(b *testing.B)          { benchRunner(b, "F3") }
func BenchmarkE1PreActionChecks(b *testing.B)     { benchRunner(b, "E1") }
func BenchmarkE2StateSpaceChecks(b *testing.B)    { benchRunner(b, "E2") }
func BenchmarkE3BreakGlass(b *testing.B)          { benchRunner(b, "E3") }
func BenchmarkE4Deactivation(b *testing.B)        { benchRunner(b, "E4") }
func BenchmarkE5CollectionFormation(b *testing.B) { benchRunner(b, "E5") }
func BenchmarkE6TripartiteOversight(b *testing.B) { benchRunner(b, "E6") }
func BenchmarkE7IllDefinedSpaces(b *testing.B)    { benchRunner(b, "E7") }
func BenchmarkE8GenerativeScale(b *testing.B)     { benchRunner(b, "E8") }
func BenchmarkE9AttackResilience(b *testing.B)    { benchRunner(b, "E9") }
func BenchmarkE10EmergentCascade(b *testing.B)    { benchRunner(b, "E10") }
func BenchmarkE11HumanError(b *testing.B)         { benchRunner(b, "E11") }

// --- Micro-benchmarks ------------------------------------------------

func benchSchema(b *testing.B) *statespace.Schema {
	b.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("load", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPolicySetEvaluate(b *testing.B) {
	set := policy.NewSet()
	for i := 0; i < 100; i++ {
		p := policy.Policy{
			ID:        "p" + itoa(i),
			EventType: "tick",
			Priority:  i % 10,
			Modality:  policy.ModalityDo,
			Condition: policy.Threshold{Quantity: "x", Op: policy.CmpGT, Value: float64(i)},
			Action:    policy.Action{Name: "act" + itoa(i%5)},
		}
		if i%7 == 0 {
			p.Modality = policy.ModalityForbid
		}
		if err := set.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	env := policy.Env{Event: policy.Event{Type: "tick", Attrs: map[string]float64{"x": 50}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Evaluate(env)
	}
}

func BenchmarkPolicyLangParseCompile(b *testing.B) {
	src := `policy escalate priority 10 org us:
    on smoke-detected
    when intensity > 3 and state.fuel >= 10
    do dispatch-chem-drone target chem-1 category surveillance
       param mode = "fast" effect fuel -= 5 obligation notify-hq`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := policylang.CompileSource(src, policy.OriginHuman); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuardPipelineCheck(b *testing.B) {
	s := benchSchema(b)
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	g := guard.NewPipeline(nil,
		&guard.PreActionGuard{Predictor: guard.HarmPredictorFunc(func(guard.ActionContext) float64 { return 0 })},
		&guard.StateSpaceGuard{Classifier: classifier},
	)
	st, err := s.StateFromMap(map[string]float64{"heat": 40})
	if err != nil {
		b.Fatal(err)
	}
	next, err := st.Apply(statespace.Delta{"heat": 5})
	if err != nil {
		b.Fatal(err)
	}
	ctx := guard.ActionContext{Actor: "d", Action: policy.Action{Name: "a"}, State: st, Next: next}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(ctx)
	}
}

func BenchmarkAuditAppend(b *testing.B) {
	log := audit.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.Append(audit.KindAction, "dev", "did something", nil)
	}
}

func BenchmarkRobustAggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	readings := make([]float64, 50)
	for i := range readings {
		readings[i] = 20 + rng.Float64()
	}
	for i := 0; i < 10; i++ {
		readings[i] = 90
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.RobustAggregate(readings, 10)
	}
}

func BenchmarkGossipRound(b *testing.B) {
	g := network.NewGossip(rand.New(rand.NewSource(2)), 2)
	for i := 0; i < 32; i++ {
		s := g.Join("node" + itoa(i))
		s.Put(network.Item{Key: "k" + itoa(i), Version: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RunRound()
	}
}

func BenchmarkStateApply(b *testing.B) {
	s := benchSchema(b)
	st := s.Origin()
	delta := statespace.Delta{"heat": 1, "load": -0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := st.Apply(delta)
		if err != nil {
			b.Fatal(err)
		}
		_ = next
	}
}

// --- Ablations (DESIGN.md §4) ----------------------------------------

// Guard-pipeline ordering: pre-action before vs after the state-space
// check. Safety is identical (both deny); cost differs with which
// guard fires first on the common case.
func BenchmarkAblationPipelineOrder(b *testing.B) {
	s := benchSchema(b)
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	pre := &guard.PreActionGuard{Predictor: guard.HarmPredictorFunc(func(guard.ActionContext) float64 { return 0 })}
	state := &guard.StateSpaceGuard{Classifier: classifier}
	st, err := s.StateFromMap(map[string]float64{"heat": 40})
	if err != nil {
		b.Fatal(err)
	}
	next, err := st.Apply(statespace.Delta{"heat": 5})
	if err != nil {
		b.Fatal(err)
	}
	ctx := guard.ActionContext{Actor: "d", Action: policy.Action{Name: "a"}, State: st, Next: next}

	b.Run("preaction-first", func(b *testing.B) {
		g := guard.NewPipeline(nil, pre, state)
		for i := 0; i < b.N; i++ {
			g.Check(ctx)
		}
	})
	b.Run("statespace-first", func(b *testing.B) {
		g := guard.NewPipeline(nil, state, pre)
		for i := 0; i < b.N; i++ {
			g.Check(ctx)
		}
	})
}

// Obligation selection: ontology-driven relevance vs attaching every
// registered obligation.
func BenchmarkAblationObligationSelection(b *testing.B) {
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("dig-hole", "terrain-change"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tx.Add(ontology.Concept("cat" + itoa(i)))
	}
	oo := ontology.NewObligationOntology(tx)
	for i := 0; i < 20; i++ {
		if err := oo.Register(ontology.Obligation{
			Name: "ob" + itoa(i), AppliesTo: ontology.Concept("cat" + itoa(i)), Cost: float64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := oo.Register(ontology.Obligation{Name: "warn", AppliesTo: "terrain-change", Cost: 1}); err != nil {
		b.Fatal(err)
	}

	b.Run("ontology-relevance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oo.RelevantTo("dig-hole")
		}
	})
	b.Run("budgeted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oo.SelectWithinBudget("dig-hole", 5)
		}
	})
}

// Oversight voting arrangements over the same proposal stream.
func BenchmarkAblationOversightVoting(b *testing.B) {
	tx := ontology.NewTaxonomy()
	tx.Add("kinetic-action")
	reviewer := func(label string) guard.Reviewer {
		return &guard.ScopeReviewer{Label: label, Rules: []guard.ScopeRule{
			guard.ForbidCategory{Taxonomy: tx, Concept: "kinetic-action"},
			guard.PriorityCap{Max: 50},
		}}
	}
	p := policy.Policy{
		ID: "p", EventType: "e", Modality: policy.ModalityDo, Priority: 5,
		Action: policy.Action{Name: "observe", Category: "surveillance"},
	}
	b.Run("single", func(b *testing.B) {
		a := &guard.SingleOverseer{Overseer: reviewer("solo")}
		for i := 0; i < b.N; i++ {
			a.Approve(p)
		}
	})
	b.Run("tripartite", func(b *testing.B) {
		a := &guard.Tripartite{Executive: reviewer("e"), Legislative: reviewer("l"), Judiciary: reviewer("j")}
		for i := 0; i < b.N; i++ {
			a.Approve(p)
		}
	})
	b.Run("unanimous", func(b *testing.B) {
		a := &guard.Unanimous{Reviewers: []guard.Reviewer{reviewer("a"), reviewer("b"), reviewer("c")}}
		for i := 0; i < b.N; i++ {
			a.Approve(p)
		}
	})
}

// Aggregation strategy: plain mean vs robust trust-weighted.
func BenchmarkAblationAggregation(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	readings := make([]float64, 30)
	for i := range readings {
		readings[i] = 20 + rng.Float64()
	}
	b.Run("plain-mean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			attack.PlainMean(readings)
		}
	})
	b.Run("robust", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			attack.RobustAggregate(readings, 10)
		}
	})
}

// Centralized vs collaborative aggregate assessment.
func BenchmarkAblationAssessment(b *testing.B) {
	s := benchSchema(b)
	assessor := &guard.AggregateAssessor{Rules: []guard.AggregateRule{
		{Name: "total", Variable: "heat", Kind: guard.AggregateSum, Limit: 1000},
		{Name: "peak", Variable: "heat", Kind: guard.AggregateMax, Limit: 90},
	}}
	states := make([]statespace.State, 64)
	for i := range states {
		st, err := s.StateFromMap(map[string]float64{"heat": float64(i % 80)})
		if err != nil {
			b.Fatal(err)
		}
		states[i] = st
	}
	groups := [][]statespace.State{states[:16], states[16:32], states[32:48], states[48:]}
	b.Run("centralized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			assessor.Assess(states)
		}
	})
	b.Run("collaborative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			assessor.AssessDistributed(groups)
		}
	})
}

func itoa(i int) string {
	// Small positive ints only.
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
