#!/bin/sh
# Observability smoke test: run a short scenario with the live
# telemetry endpoint up, then assert /metrics serves well-formed
# Prometheus text (including per-guard decision counters) and /traces
# serves non-empty JSON spans.
set -eu

ADDR="127.0.0.1:19617"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"; [ -n "${SIM_PID:-}" ] && kill "$SIM_PID" 2>/dev/null || true' EXIT

go build -o "$TMP/skynetsim" ./cmd/skynetsim

"$TMP/skynetsim" --metrics-addr "$ADDR" --trace-out "$TMP/spans.jsonl" \
    --linger 10s scenarios/overheat.json >"$TMP/run.out" 2>&1 &
SIM_PID=$!

# Wait for the server to come up (the scenario itself finishes in
# milliseconds; the linger keeps the endpoint alive for us).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "obs-smoke: metrics server never came up" >&2
        cat "$TMP/run.out" >&2
        exit 1
    fi
    sleep 0.2
done

curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
curl -fsS "http://$ADDR/traces" >"$TMP/traces.json"

fail() {
    echo "obs-smoke: $1" >&2
    echo "--- /metrics ---" >&2
    cat "$TMP/metrics.txt" >&2
    exit 1
}

[ -s "$TMP/metrics.txt" ] || fail "/metrics is empty"
grep -q '^# TYPE guard_decisions counter$' "$TMP/metrics.txt" ||
    fail "/metrics missing guard_decisions type line"
grep -q '^guard_decisions{' "$TMP/metrics.txt" ||
    fail "/metrics missing per-guard decision counters"
grep -q '^guard_check_ms_bucket{' "$TMP/metrics.txt" ||
    fail "/metrics missing guard latency histogram buckets"
grep -q '^bus_delivered\|^core_commands' "$TMP/metrics.txt" ||
    fail "/metrics missing delivery accounting"
# Every sample line must parse as name{labels} value or name value.
if grep -vE '^(#.*|[a-z_]+(\{[^}]*\})? [0-9eE.+-]+)$' "$TMP/metrics.txt" |
    grep -q .; then
    fail "/metrics has malformed lines"
fi

grep -q '"trace":' "$TMP/traces.json" || fail "/traces has no spans"
grep -q '"name":"guard.check"' "$TMP/traces.json" ||
    fail "/traces missing guard.check spans"

kill "$SIM_PID"
wait "$SIM_PID" 2>/dev/null || true
SIM_PID=""

echo "obs-smoke: ok"
