#!/bin/sh
# residual_gate.sh — fail if partial evaluation stops paying for
# itself.
#
# Usage: sh scripts/residual_gate.sh [min_ratio]
#
# Runs the two lanes of the 10k-policy / 64-class fleet comparison —
# the full snapshot deciding for one device versus that device's
# residual — and demands the residual be at least min_ratio (default
# 10) times faster. The gate is a ratio of two benchmarks from the
# same process on the same host, so it is robust to machine speed;
# the measured margin is ~22x (see EXPERIMENTS.md E20), so tripping
# 10x means specialization genuinely regressed, not noise. Only POSIX
# sh + awk, no dependencies.
set -eu

min_ratio=${1:-10}

out=$(go test -run '^$' -bench 'BenchmarkResidualFullEvaluate10k$|BenchmarkResidualEvaluate10k$' \
	-benchtime=500ms ./internal/policy)
full=$(printf '%s\n' "$out" | awk '/^BenchmarkResidualFullEvaluate10k/ {print $3; exit}')
res=$(printf '%s\n' "$out" | awk '/^BenchmarkResidualEvaluate10k/ {print $3; exit}')
[ -n "$full" ] && [ -n "$res" ] || {
	echo "residual_gate: benchmarks produced no result" >&2
	printf '%s\n' "$out" >&2
	exit 1
}

ratio=$(awk -v f="$full" -v r="$res" 'BEGIN { printf "%.1f", f / r }')
ok=$(awk -v f="$full" -v r="$res" -v m="$min_ratio" 'BEGIN { print (f >= m * r) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
	echo "residual_gate: FAIL residual evaluate ${res} ns/op vs full ${full} ns/op (${ratio}x < required ${min_ratio}x)" >&2
	exit 1
fi
echo "residual_gate: OK residual ${res} ns/op vs full ${full} ns/op (${ratio}x >= ${min_ratio}x)"
