#!/bin/sh
# bench_json.sh — distill `go test -bench` output into a JSON document.
#
# Usage: sh scripts/bench_json.sh [bench.txt [BENCH_PR4.json [BENCH_HISTORY.json]]]
#
# Each benchmark line ("BenchmarkName-8  123  456 ns/op  78 B/op  9
# allocs/op") becomes one object; repeated runs of the same benchmark
# (-count>1) are averaged. Fleet and serve benchmarks
# (BenchmarkE15Fleet*, BenchmarkE18*, BenchmarkServe*), decision-
# plane benchmarks (BenchmarkEvaluate*, BenchmarkResidual*,
# BenchmarkSpecialize*) and distribution fan-out benchmarks
# (BenchmarkDistributorFanout*) are additionally appended as dated rows to a
# cumulative history file, so allocation and latency regressions
# across PRs stay visible without digging through git. Only POSIX sh +
# awk, no dependencies.
set -eu

in=${1:-bench.txt}
out=${2:-BENCH_PR4.json}
hist=${3:-BENCH_HISTORY.json}

[ -f "$in" ] || { echo "bench_json: $in not found (run 'make bench' first)" >&2; exit 1; }

awk -v host="$(uname -sm)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip GOMAXPROCS suffix
    n[name]++
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name]     += $i
        if ($(i+1) == "B/op")      bytes[name]  += $i
        if ($(i+1) == "allocs/op") allocs[name] += $i
    }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"benchmarks\": [\n", host
    first = 1
    for (name in n) order[++cnt] = name
    # deterministic output order
    for (i = 1; i <= cnt; i++)
        for (j = i + 1; j <= cnt; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= cnt; i++) {
        name = order[i]
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.2f}", \
            name, n[name], ns[name] / n[name], bytes[name] / n[name], allocs[name] / n[name]
    }
    printf "\n  ]\n}\n"
}' "$in" > "$out"

echo "bench_json: wrote $(grep -c '"name"' "$out") benchmarks to $out"

# Cumulative fleet-bench history: one dated row per fleet benchmark in
# this run, appended to a growing JSON array. The file is rewritten
# in place (strip the closing bracket, add rows, close again) so it
# stays a single valid JSON document.
rows=$(awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
/^BenchmarkE15Fleet|^BenchmarkE18|^BenchmarkServe|^BenchmarkEvaluate|^BenchmarkResidual|^BenchmarkSpecialize|^BenchmarkDistributorFanout/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n[name]++
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name]     += $i
        if ($(i+1) == "B/op")      bytes[name]  += $i
        if ($(i+1) == "allocs/op") allocs[name] += $i
    }
}
END {
    for (name in n) order[++cnt] = name
    for (i = 1; i <= cnt; i++)
        for (j = i + 1; j <= cnt; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= cnt; i++) {
        name = order[i]
        printf "  {\"date\": \"%s\", \"commit\": \"%s\", \"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.2f}\n", \
            date, commit, name, n[name], ns[name] / n[name], bytes[name] / n[name], allocs[name] / n[name]
    }
}' "$in")

if [ -n "$rows" ]; then
	{
		echo '['
		{
			[ -f "$hist" ] && grep '"name"' "$hist" | sed 's/,$//'
			printf '%s\n' "$rows"
		} | sed '$!s/$/,/'
		echo ']'
	} > "$hist.tmp"
	mv "$hist.tmp" "$hist"
	echo "bench_json: appended $(printf '%s\n' "$rows" | grep -c '"name"') fleet rows to $hist"
fi
