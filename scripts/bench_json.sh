#!/bin/sh
# bench_json.sh — distill `go test -bench` output into a JSON document.
#
# Usage: sh scripts/bench_json.sh [bench.txt [BENCH_PR4.json]]
#
# Each benchmark line ("BenchmarkName-8  123  456 ns/op  78 B/op  9
# allocs/op") becomes one object; repeated runs of the same benchmark
# (-count>1) are averaged. Only POSIX sh + awk, no dependencies.
set -eu

in=${1:-bench.txt}
out=${2:-BENCH_PR4.json}

[ -f "$in" ] || { echo "bench_json: $in not found (run 'make bench' first)" >&2; exit 1; }

awk -v host="$(uname -sm)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip GOMAXPROCS suffix
    n[name]++
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name]     += $i
        if ($(i+1) == "B/op")      bytes[name]  += $i
        if ($(i+1) == "allocs/op") allocs[name] += $i
    }
}
END {
    printf "{\n  \"host\": \"%s\",\n  \"benchmarks\": [\n", host
    first = 1
    for (name in n) order[++cnt] = name
    # deterministic output order
    for (i = 1; i <= cnt; i++)
        for (j = i + 1; j <= cnt; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= cnt; i++) {
        name = order[i]
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.2f}", \
            name, n[name], ns[name] / n[name], bytes[name] / n[name], allocs[name] / n[name]
    }
    printf "\n  ]\n}\n"
}' "$in" > "$out"

echo "bench_json: wrote $(grep -c '"name"' "$out") benchmarks to $out"
