#!/bin/sh
# bench_serve.sh — latency-benchmark the live control plane.
#
# Usage: sh scripts/bench_serve.sh [BENCH_PR8.json [BENCH_HISTORY.json]]
#
# Three loadgen runs against a self-hosted fleet (traffic still
# crosses real loopback HTTP):
#
#   ServeClosed_w8  closed loop, 8 workers — server capacity and the
#                   latency floor
#   ServeOpen_1x    open loop at the admission gate's aggregate
#                   capacity (16 devices x 50/s = 800 rps)
#   ServeOpen_2x    open loop at 2x capacity — the shed path and the
#                   latency of surviving decisions under overload
#
# Each run's full report (counts + p50/p95/p99 decision latency from
# the histogram quantiles) lands in the output JSON keyed by run
# name; the benchmark-formatted lines are folded into the cumulative
# BENCH_HISTORY.json via bench_json.sh.
set -eu

out=${1:-BENCH_PR8.json}
hist=${2:-BENCH_HISTORY.json}

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/loadgen" ./cmd/loadgen

run_one() {
    name=$1
    shift
    echo "== $name =="
    "$TMP/loadgen" "$@" --bench-name "$name" --out "$TMP/$name.json" |
        tee -a "$TMP/bench_serve.txt"
}

run_one ServeClosed_w8 --mode closed --workers 8 --duration 2s --devices 16
run_one ServeOpen_1x --mode open --rps 800 --duration 2s --devices 16 \
    --admission-rate 50 --admission-burst 10
run_one ServeOpen_2x --mode open --rps 1600 --duration 2s --devices 16 \
    --admission-rate 50 --admission-burst 10

{
    printf '{\n  "host": "%s",\n  "runs": {\n' "$(uname -sm)"
    first=1
    for name in ServeClosed_w8 ServeOpen_1x ServeOpen_2x; do
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    "%s": %s' "$name" "$(cat "$TMP/$name.json")"
    done
    printf '\n  }\n}\n'
} >"$out"
echo "bench_serve: wrote 3 runs to $out"

# Fold the benchmark lines into the cumulative history (the distilled
# per-run JSON is a by-product we discard; the reports above are
# richer).
grep '^Benchmark' "$TMP/bench_serve.txt" >"$TMP/bench_lines.txt"
sh scripts/bench_json.sh "$TMP/bench_lines.txt" "$TMP/distilled.json" "$hist"
