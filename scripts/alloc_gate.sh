#!/bin/sh
# alloc_gate.sh — fail if a gated benchmark exceeds its committed
# allocation budget.
#
# Usage: sh scripts/alloc_gate.sh [bench_budget.json]
#
# Every benchmark named under "budgets" in bench_budget.json runs once
# (-benchtime=1x: one whole fleet per iteration, so a single run is
# exact, not noisy — allocation counts on these benchmarks are
# deterministic to within a few dozen) and its allocs/op and B/op are
# compared against the committed budget. Only POSIX sh + awk, no
# dependencies.
set -eu

budget=${1:-bench_budget.json}
[ -f "$budget" ] || { echo "alloc_gate: $budget not found" >&2; exit 1; }

# Benchmark names are the keys directly under "budgets".
names=$(awk '
	/"budgets"/ { inb = 1; next }
	inb && /"allocs_per_op"|"bytes_per_op"|^[ \t]*[{}]/ { next }
	inb && /"Benchmark[A-Za-z0-9_]*"/ {
		line = $0
		sub(/^[^"]*"/, "", line); sub(/".*$/, "", line)
		print line
	}' "$budget")
[ -n "$names" ] || { echo "alloc_gate: no budgets in $budget" >&2; exit 1; }

regex=$(printf '%s\n' "$names" | awk '{ printf "%s^%s$", sep, $0; sep = "|" }')
echo "alloc_gate: running $(printf '%s\n' "$names" | tr '\n' ' ')"
out=$(go test -run '^$' -bench "$regex" -benchtime=1x -benchmem ./internal/experiments)

fail=0
for name in $names; do
	want_allocs=$(awk -v name="$name" '
		$0 ~ "\"" name "\"" { inb = 1 }
		inb && /"allocs_per_op"/ { gsub(/[^0-9]/, ""); print; exit }' "$budget")
	want_bytes=$(awk -v name="$name" '
		$0 ~ "\"" name "\"" { inb = 1 }
		inb && /"bytes_per_op"/ { gsub(/[^0-9]/, ""); print; exit }' "$budget")
	[ -n "$want_allocs" ] && [ -n "$want_bytes" ] || {
		echo "alloc_gate: incomplete budget for $name in $budget" >&2; exit 1; }

	line=$(printf '%s\n' "$out" | grep "^$name" | head -n 1)
	[ -n "$line" ] || { echo "alloc_gate: benchmark $name produced no result" >&2; exit 1; }

	got_allocs=$(printf '%s\n' "$line" | awk '{for (i=2; i<NF; i++) if ($(i+1) == "allocs/op") print $i}')
	got_bytes=$(printf '%s\n' "$line" | awk '{for (i=2; i<NF; i++) if ($(i+1) == "B/op") print $i}')

	if [ "$got_allocs" -gt "$want_allocs" ]; then
		echo "alloc_gate: FAIL $name allocs/op $got_allocs > budget $want_allocs" >&2
		fail=1
	fi
	if [ "$got_bytes" -gt "$want_bytes" ]; then
		echo "alloc_gate: FAIL $name B/op $got_bytes > budget $want_bytes" >&2
		fail=1
	fi
	[ "$fail" -ne 0 ] ||
		echo "alloc_gate: OK $name $got_allocs allocs/op (budget $want_allocs), $got_bytes B/op (budget $want_bytes)"
done
[ "$fail" -eq 0 ] || exit 1
