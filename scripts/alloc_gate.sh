#!/bin/sh
# alloc_gate.sh — fail if the fleet benchmark exceeds its committed
# allocation budget.
#
# Usage: sh scripts/alloc_gate.sh [bench_budget.json]
#
# Runs BenchmarkE15Fleet2 once (-benchtime=1x: one whole 10k-device,
# 30-virtual-second fleet per iteration, so a single run is exact, not
# noisy — allocation counts on this benchmark are deterministic to
# within a few dozen) and compares allocs/op and B/op against
# bench_budget.json. Only POSIX sh + awk, no dependencies.
set -eu

budget=${1:-bench_budget.json}
[ -f "$budget" ] || { echo "alloc_gate: $budget not found" >&2; exit 1; }

name=BenchmarkE15Fleet2
want_allocs=$(awk -v name="$name" '
	$0 ~ "\"" name "\"" { inb = 1 }
	inb && /"allocs_per_op"/ { gsub(/[^0-9]/, ""); print; exit }' "$budget")
want_bytes=$(awk -v name="$name" '
	$0 ~ "\"" name "\"" { inb = 1 }
	inb && /"bytes_per_op"/ { gsub(/[^0-9]/, ""); print; exit }' "$budget")
[ -n "$want_allocs" ] && [ -n "$want_bytes" ] || {
	echo "alloc_gate: no budget for $name in $budget" >&2; exit 1; }

echo "alloc_gate: running $name (budget: $want_allocs allocs/op, $want_bytes B/op)"
out=$(go test -run '^$' -bench "${name}\$" -benchtime=1x -benchmem ./internal/experiments)
line=$(printf '%s\n' "$out" | grep "^$name")
[ -n "$line" ] || { echo "alloc_gate: benchmark $name produced no result" >&2; exit 1; }

got_allocs=$(printf '%s\n' "$line" | awk '{for (i=2; i<NF; i++) if ($(i+1) == "allocs/op") print $i}')
got_bytes=$(printf '%s\n' "$line" | awk '{for (i=2; i<NF; i++) if ($(i+1) == "B/op") print $i}')

fail=0
if [ "$got_allocs" -gt "$want_allocs" ]; then
	echo "alloc_gate: FAIL $name allocs/op $got_allocs > budget $want_allocs" >&2
	fail=1
fi
if [ "$got_bytes" -gt "$want_bytes" ]; then
	echo "alloc_gate: FAIL $name B/op $got_bytes > budget $want_bytes" >&2
	fail=1
fi
[ "$fail" -eq 0 ] || exit 1
echo "alloc_gate: OK $name $got_allocs allocs/op (budget $want_allocs), $got_bytes B/op (budget $want_bytes)"
