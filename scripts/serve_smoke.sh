#!/bin/sh
# Control-plane smoke test: start `skynetsim serve` on a live fleet,
# submit a command over POST /v1/commands, follow its trace ID to a
# connected decision tree, stream the hash-chained audit tail, check
# the fleet view and the server's own latency quantiles, drive a
# short loadgen burst against the running server, then drain it with
# SIGTERM.
set -eu

ADDR="127.0.0.1:19627"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"; [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true' EXIT

go build -o "$TMP/skynetsim" ./cmd/skynetsim
go build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/skynetsim" serve --addr "$ADDR" scenarios/overheat.json \
    >"$TMP/serve.out" 2>&1 &
SRV_PID=$!

fail() {
    echo "serve-smoke: $1" >&2
    echo "--- serve.out ---" >&2
    cat "$TMP/serve.out" >&2
    exit 1
}

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "control plane never came up"
    sleep 0.2
done

# Submit one fleet-wide command and capture its trace ID.
curl -fsS -X POST "http://$ADDR/v1/commands" \
    -d '{"type":"tick","target":"*","source":"smoke"}' >"$TMP/command.json"
grep -q '"executed":2' "$TMP/command.json" ||
    fail "command did not execute on both devices: $(cat "$TMP/command.json")"
TRACE=$(sed 's/.*"traceId":"\([0-9a-f]*\)".*/\1/' "$TMP/command.json")
[ -n "$TRACE" ] || fail "command response has no trace ID"

# The decision must reassemble as one connected span tree from intake
# to execution, with its audit footprint attached.
curl -fsS "http://$ADDR/v1/decisions/$TRACE" >"$TMP/decision.json"
grep -q '"connected":true' "$TMP/decision.json" ||
    fail "decision tree not connected: $(cat "$TMP/decision.json")"
for span in server.command device.handle device.execute guard.check; do
    grep -q "\"name\":\"$span\"" "$TMP/decision.json" ||
        fail "decision tree missing $span span"
done
grep -q '"audit":\[' "$TMP/decision.json" ||
    fail "decision has no audit entries"

# The audit tail must stream a verifiable prefix: anchor header first,
# then hash-chained entries.
curl -fsS "http://$ADDR/v1/audit/tail" >"$TMP/tail.ndjson"
head -1 "$TMP/tail.ndjson" | grep -q '"prevHash"' ||
    fail "audit tail missing anchor header"
[ "$(wc -l <"$TMP/tail.ndjson")" -ge 3 ] ||
    fail "audit tail streamed fewer than 2 entries"
tail -n +2 "$TMP/tail.ndjson" | grep -vq '"hash":' &&
    fail "audit tail entry without hash" || true

# Fleet view: both devices, live state.
curl -fsS "http://$ADDR/v1/fleet" >"$TMP/fleet.json"
grep -q '"total":2' "$TMP/fleet.json" || fail "fleet view wrong device count"
grep -q '"heat":' "$TMP/fleet.json" || fail "fleet view missing state vector"

# A short closed-loop burst against the RUNNING server, then check
# the server-side latency histogram grew quantile lines.
"$TMP/loadgen" --addr "http://$ADDR" --mode closed --workers 2 \
    --duration 500ms >"$TMP/loadgen.out" 2>&1 ||
    fail "loadgen against running server failed: $(cat "$TMP/loadgen.out")"
grep -q 'p50' "$TMP/loadgen.out" || fail "loadgen reported no quantiles"

curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
grep -q '^server_decision_ms{quantile="0.99"}' "$TMP/metrics.txt" ||
    fail "/metrics missing server decision-latency quantiles"
grep -q '^server_commands{result="ok"}' "$TMP/metrics.txt" ||
    fail "/metrics missing command result counters"
# Every sample line must still parse as Prometheus text.
if grep -vE '^(#.*|[a-z_]+(\{[^}]*\})? [0-9eE.+-]+)$' "$TMP/metrics.txt" |
    grep -q .; then
    fail "/metrics has malformed lines"
fi

# Graceful drain on SIGTERM.
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server did not exit after SIGTERM"
    sleep 0.2
done
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
grep -q 'drained' "$TMP/serve.out" || fail "server did not report a drain"

echo "serve-smoke: ok"
