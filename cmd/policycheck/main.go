// Command policycheck parses policy DSL files, validates them, and
// reports statically detectable conflicts (forbid-covers-do overlaps
// and duplicate actions).
//
// Usage:
//
//	policycheck file1.policy [file2.policy ...]
//
// Exit status is 1 on parse/validation errors or detected conflicts.
package main

import (
	"fmt"
	"os"

	"repro/internal/policy"
	"repro/internal/policylang"
)

func main() {
	code, out := run(os.Args[1:])
	fmt.Print(out)
	os.Exit(code)
}

func run(args []string) (int, string) {
	if len(args) == 0 {
		return 1, "usage: policycheck <file.policy> [...]\n"
	}
	out := ""
	set := policy.NewSet()
	total := 0
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return 1, out + fmt.Sprintf("policycheck: %v\n", err)
		}
		policies, err := policylang.CompileSource(string(data), policy.OriginHuman)
		if err != nil {
			return 1, out + fmt.Sprintf("policycheck: %s: %v\n", path, err)
		}
		for _, p := range policies {
			if err := set.Add(p); err != nil {
				return 1, out + fmt.Sprintf("policycheck: %s: %v\n", path, err)
			}
			total++
		}
		out += fmt.Sprintf("%s: %d policies OK\n", path, len(policies))
	}
	conflicts := set.Conflicts()
	if len(conflicts) > 0 {
		out += fmt.Sprintf("%d potential conflicts:\n", len(conflicts))
		for _, c := range conflicts {
			out += "  " + c.String() + "\n"
		}
		return 1, out
	}
	out += fmt.Sprintf("total: %d policies, no conflicts\n", total)
	return 0, out
}
