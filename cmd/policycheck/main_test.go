package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestRunValidFile(t *testing.T) {
	path := writeFile(t, "ok.policy", `
policy patrol: on command-patrol do sweep-sector category surveillance
policy guard priority 9: on * forbid category kinetic-action
`)
	code, out := run([]string{path})
	if code != 0 {
		t.Fatalf("code = %d, out = %s", code, out)
	}
	if !strings.Contains(out, "2 policies OK") || !strings.Contains(out, "no conflicts") {
		t.Errorf("out = %s", out)
	}
}

func TestRunConflictDetected(t *testing.T) {
	path := writeFile(t, "conflict.policy", `
policy a: on e do fire
policy b priority 9: on e forbid fire
`)
	code, out := run([]string{path})
	if code != 1 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "1 potential conflicts") {
		t.Errorf("out = %s", out)
	}
}

func TestRunSyntaxError(t *testing.T) {
	path := writeFile(t, "bad.policy", "policy broken on nothing")
	code, out := run([]string{path})
	if code != 1 || !strings.Contains(out, "policycheck:") {
		t.Errorf("code=%d out=%s", code, out)
	}
}

func TestRunDuplicateAcrossFiles(t *testing.T) {
	a := writeFile(t, "a.policy", "policy same: on e do act")
	b := writeFile(t, "b.policy", "policy same: on e do act")
	code, out := run([]string{a, b})
	if code != 1 || !strings.Contains(out, "duplicate") {
		t.Errorf("code=%d out=%s", code, out)
	}
}

func TestRunUsageAndMissingFile(t *testing.T) {
	if code, _ := run(nil); code != 1 {
		t.Error("no args accepted")
	}
	if code, _ := run([]string{"/nonexistent/file.policy"}); code != 1 {
		t.Error("missing file accepted")
	}
}
