package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validConfig = `{
  "ownType": "drone",
  "organization": "us",
  "types": [{"name": "mule", "attrs": ["capacity"]}],
  "interactions": [{"from": "drone", "to": "mule", "kind": "task"}],
  "templates": {
    "task": {"id": "task", "text": "policy task-${device} priority 60:\n on convoy do dispatch target ${device} category tasking"}
  },
  "devices": [{"id": "mule-1", "type": "mule", "attrs": {"capacity": 5}}],
  "maxPriority": 50
}`

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestRunOversightRejection(t *testing.T) {
	path := writeConfig(t, validConfig)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "REJECTED task-mule-1: priority 60 exceeds cap 50") {
		t.Errorf("oversight rejection missing:\n%s", out)
	}
}

func TestRunAdoption(t *testing.T) {
	cfg := strings.Replace(validConfig, `"maxPriority": 50`, `"maxPriority": 100`, 1)
	path := writeConfig(t, cfg)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "1 adopted, 0 rejected") || !strings.Contains(out, "do dispatch target mule-1") {
		t.Errorf("adoption missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.json"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeConfig(t, "{oops")
	if err := run([]string{bad}, &sb); err == nil {
		t.Error("malformed config accepted")
	}
	badTemplate := writeConfig(t, strings.Replace(validConfig,
		"policy task-${device} priority 60:", "garbage ${device}", 1))
	if err := run([]string{badTemplate}, &sb); err == nil {
		t.Error("broken template accepted")
	}
}
