// Command policygen runs the Section IV generative-policy pipeline as
// a standalone tool: it reads a JSON description of the interaction
// graph, the policy templates, and the discovered devices, and prints
// the policies each discovery generates (and any oversight
// rejections).
//
// Usage:
//
//	policygen config.json
//
// Config format:
//
//	{
//	  "ownType": "surveillance-drone",
//	  "organization": "us",
//	  "types": [{"name": "chem-drone", "attrs": ["range"]}],
//	  "interactions": [{"from": "surveillance-drone", "to": "chem-drone", "kind": "escalate"}],
//	  "templates": {"escalate": {"id": "escalate", "text": "policy e-${device}: on smoke do survey target ${device}"}},
//	  "devices": [{"id": "chem-1", "type": "chem-drone", "attrs": {"range": 12}}],
//	  "maxPriority": 50
//	}
//
// When maxPriority is set, a legislative overseer rejects generated
// policies above it.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/generative"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policylang"
)

type config struct {
	OwnType      string                  `json:"ownType"`
	Organization string                  `json:"organization"`
	Types        []typeSpec              `json:"types"`
	Interactions []interactionSpec       `json:"interactions"`
	Templates    map[string]templateSpec `json:"templates"`
	Devices      []deviceSpec            `json:"devices"`
	MaxPriority  int                     `json:"maxPriority"`
}

type typeSpec struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

type interactionSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"`
}

type templateSpec struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

type deviceSpec struct {
	ID    string             `json:"id"`
	Type  string             `json:"type"`
	Org   string             `json:"org"`
	Attrs map[string]float64 `json:"attrs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "policygen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: policygen <config.json>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parse config: %w", err)
	}

	graph := generative.NewInteractionGraph()
	if err := graph.AddType(generative.TypeSpec{Name: cfg.OwnType}); err != nil {
		return err
	}
	for _, t := range cfg.Types {
		if err := graph.AddType(generative.TypeSpec{Name: t.Name, Attrs: t.Attrs}); err != nil {
			return err
		}
	}
	for _, i := range cfg.Interactions {
		if err := graph.AddInteraction(generative.Interaction{From: i.From, To: i.To, Kind: i.Kind}); err != nil {
			return err
		}
	}
	templates := make(map[string]generative.Template, len(cfg.Templates))
	for kind, t := range cfg.Templates {
		templates[kind] = generative.Template{ID: t.ID, Text: t.Text}
	}

	gen := &generative.Generator{
		OwnType:      cfg.OwnType,
		Organization: cfg.Organization,
		Graph:        graph,
		Templates:    templates,
	}
	if cfg.MaxPriority > 0 {
		gen.Approver = &guard.SingleOverseer{Overseer: &guard.ScopeReviewer{
			Label: "legislative",
			Rules: []guard.ScopeRule{guard.PriorityCap{Max: cfg.MaxPriority}},
		}}
	}

	for _, d := range cfg.Devices {
		adopted, rejected, err := gen.PoliciesFor(network.DeviceInfo{
			ID: d.ID, Type: d.Type, Organization: d.Org, Attrs: d.Attrs,
		})
		if err != nil {
			return fmt.Errorf("device %s: %w", d.ID, err)
		}
		fmt.Fprintf(out, "# discovered %s (%s): %d adopted, %d rejected\n", d.ID, d.Type, len(adopted), len(rejected))
		for _, p := range adopted {
			// Emit canonical DSL so the output is itself valid input
			// for policycheck; fall back to the debug form for
			// policies with opaque (learned) conditions.
			if text, err := policylang.Format(p); err == nil {
				fmt.Fprint(out, text)
			} else {
				fmt.Fprintln(out, p.String())
			}
		}
		for _, r := range rejected {
			fmt.Fprintf(out, "REJECTED %s: %s\n", r.Policy.ID, firstReason(r))
		}
	}
	return nil
}

func firstReason(r generative.Rejected) string {
	for _, v := range r.Votes {
		if !v.Approve {
			return v.Reason
		}
	}
	return "no approving majority"
}
