// Command experiments runs the figure reproductions (F1–F3) and
// constructed experiments (E1–E10) from DESIGN.md and prints their
// tables.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E3    # run one experiment
//	experiments -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only = fs.String("run", "", "run a single experiment by ID (e.g. E3)")
		list = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}

	runners := experiments.All()
	if *only != "" {
		r, err := experiments.ByID(*only)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		result, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Fprintln(out, result.Table())
	}
	return nil
}
