package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, id := range []string{"F1", "F3", "E1", "E11"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingle(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "F2"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "== F2:") {
		t.Errorf("output = %s", sb.String())
	}
	if strings.Contains(sb.String(), "== F1:") {
		t.Error("-run F2 also ran F1")
	}
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "E999"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus-flag"}, &sb); err == nil {
		t.Error("bogus flag accepted")
	}
}
