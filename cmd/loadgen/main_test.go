package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestClosedLoopSelfHosted runs the full path: self-hosted fleet,
// closed-loop generation, quantile report, benchmark line.
func TestClosedLoopSelfHosted(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "report.json")
	var buf strings.Builder
	err := run([]string{
		"--mode", "closed", "--workers", "2", "--duration", "300ms",
		"--devices", "2", "--out", outFile, "--bench-name", "ServeSmokeClosed",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Errorf("report = %+v, want traffic", rep)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Sent {
		t.Errorf("conservation broken: ok %d + shed %d + errors %d != sent %d",
			rep.OK, rep.Shed, rep.Errors, rep.Sent)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Errorf("quantiles = %+v, want 0 < p50 <= p99", rep.LatencyMs)
	}
	if !rep.Server.SelfHosted || rep.Server.Devices != 2 {
		t.Errorf("server info = %+v", rep.Server)
	}
	if !strings.Contains(buf.String(), "BenchmarkServeSmokeClosed ") {
		t.Errorf("output missing benchmark line:\n%s", buf.String())
	}
}

// TestOpenLoopAdmissionShed verifies the open loop reports typed
// sheds when the self-hosted admission gate saturates, and that
// offered-load conservation holds.
func TestOpenLoopAdmissionShed(t *testing.T) {
	var buf strings.Builder
	outFile := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"--mode", "open", "--rps", "300", "--duration", "400ms",
		"--devices", "2", "--admission-rate", "20", "--admission-burst", "5",
		"--out", outFile,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, _ := os.ReadFile(outFile)
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Errorf("open loop at 300 rps against 2×20/s admission shed nothing: %+v", rep)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Sent {
		t.Errorf("conservation broken: %+v", rep)
	}
}

// TestAddrSchemeDefault accepts the bare host:port form that
// `skynetsim serve --addr` takes, defaulting the http:// scheme.
func TestAddrSchemeDefault(t *testing.T) {
	fleet, err := startFleet(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.close()
	hostport := strings.TrimPrefix(fleet.base, "http://")
	outFile := filepath.Join(t.TempDir(), "report.json")
	var buf strings.Builder
	err = run([]string{
		"--addr", hostport, "--mode", "closed", "--workers", "1",
		"--duration", "100ms", "--out", outFile,
	}, &buf)
	if err != nil {
		t.Fatalf("run with schemeless --addr: %v\n%s", err, buf.String())
	}
	data, _ := os.ReadFile(outFile)
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Server.Addr != fleet.base {
		t.Errorf("Server.Addr = %q, want scheme-defaulted %q", rep.Server.Addr, fleet.base)
	}
	if rep.OK == 0 {
		t.Errorf("no successful requests over schemeless addr: %+v", rep)
	}
}

// TestLoadgenMetricNames pins the loadgen.* instrument family to the
// telemetry names table.
func TestLoadgenMetricNames(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram("loadgen.latency_ms")
	reg.Counter("loadgen.requests", "result", "ok")
	reg.Counter("loadgen.requests", "result", "shed")
	reg.Counter("loadgen.requests", "result", "error")
	reg.Counter("loadgen.overflow")
	if err := telemetry.CheckNames(reg.Names()); err != nil {
		t.Errorf("CheckNames: %v", err)
	}
}

// TestParseFlagsValidation covers the rejection paths.
func TestParseFlagsValidation(t *testing.T) {
	var buf strings.Builder
	for _, args := range [][]string{
		{"--mode", "sideways"},
		{"--workers", "0"},
		{"--duration", "0s"},
		{"--rps", "-5"},
		{"--bench-name", "has space"},
		{"stray-arg"},
	} {
		if _, err := parseFlags(args, &buf); err == nil {
			// --mode is validated at dispatch, not parse.
			if args[0] == "--mode" {
				if err := run(append(args, "--duration", "10ms", "--devices", "1"), &buf); err == nil {
					t.Errorf("run(%v) succeeded, want error", args)
				}
				continue
			}
			t.Errorf("parseFlags(%v) succeeded, want error", args)
		}
	}
}
