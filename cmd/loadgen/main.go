// Command loadgen drives a control-plane server (skynetsim serve)
// with command traffic and reports decision-latency quantiles.
//
// Two generator shapes:
//
//   - closed loop (--mode closed): --workers goroutines each submit
//     the next command as soon as the previous decision returns, so
//     offered load tracks server capacity;
//   - open loop (--mode open): commands are launched on a fixed
//     --rps schedule regardless of completions, so queueing delay
//     under overload is visible instead of self-throttled away.
//
// Latency is measured client-side around each POST /v1/commands and
// recorded into a telemetry histogram; the report quotes p50/p95/p99
// from the histogram's interpolated quantiles.
//
// With --addr the generator targets a running server; without it a
// self-hosted fleet (--devices guarded devices, optional
// --admission-rate gate) is started in-process on a loopback port,
// and traffic still crosses real HTTP.
//
// Usage:
//
//	loadgen [--mode closed|open] [--workers n] [--rps r]
//	        [--duration d] [--event type] [--addr url]
//	        [--devices n] [--admission-rate r] [--admission-burst b]
//	        [--out report.json] [--bench-name Name]
//
// The JSON report (--out) is self-describing; --bench-name also
// prints a `go test -bench`-style line so scripts/bench_json.sh can
// fold the run into BENCH_HISTORY.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// Report is the JSON document loadgen emits.
type Report struct {
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers,omitempty"`
	TargetRPS float64 `json:"targetRps,omitempty"`
	// DurationS is the measured wall time of the run.
	DurationS   float64 `json:"durationS"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	// Overflow counts open-loop launches skipped because the
	// in-flight cap was reached — offered load the server never saw.
	Overflow    int64   `json:"overflow,omitempty"`
	AchievedRPS float64 `json:"achievedRps"`
	// LatencyMs quotes the client-observed decision latency from the
	// histogram's interpolated quantiles.
	LatencyMs LatencyQuantiles `json:"latencyMs"`
	// Server describes the target.
	Server ServerInfo `json:"server"`
}

// LatencyQuantiles holds the interpolated latency quantiles in ms.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// ServerInfo describes what the run targeted.
type ServerInfo struct {
	Addr           string  `json:"addr"`
	SelfHosted     bool    `json:"selfHosted"`
	Devices        int     `json:"devices,omitempty"`
	AdmissionRate  float64 `json:"admissionRate,omitempty"`
	AdmissionBurst float64 `json:"admissionBurst,omitempty"`
}

// maxInFlight bounds open-loop concurrency so an overloaded server
// degrades the report (overflow count) instead of the client host.
const maxInFlight = 512

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if err != nil {
		return err
	}

	base := cfg.addr
	if base != "" && !strings.Contains(base, "://") {
		// Accept the same host:port form `skynetsim serve --addr` takes.
		base = "http://" + base
	}
	info := ServerInfo{Addr: base}
	if base == "" {
		fleet, err := startFleet(cfg.devices, cfg.admissionRate, cfg.admissionBurst)
		if err != nil {
			return err
		}
		defer fleet.close()
		base = fleet.base
		info = ServerInfo{
			Addr: base, SelfHosted: true, Devices: cfg.devices,
			AdmissionRate: cfg.admissionRate, AdmissionBurst: cfg.admissionBurst,
		}
		fmt.Fprintf(out, "self-hosted fleet: %d devices on %s\n", cfg.devices, base)
	}

	reg := telemetry.NewRegistry()
	g := &generator{
		base:  base,
		event: cfg.event,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        maxInFlight,
			MaxIdleConnsPerHost: maxInFlight,
		}},
		hist: reg.Histogram("loadgen.latency_ms"),
		ok:   reg.Counter("loadgen.requests", "result", "ok"),
		shed: reg.Counter("loadgen.requests", "result", "shed"),
		errs: reg.Counter("loadgen.requests", "result", "error"),
		over: reg.Counter("loadgen.overflow"),
	}
	// Resolve the target set once so per-request targets round-robin
	// across real device IDs.
	if err := g.resolveTargets(); err != nil {
		return err
	}
	if err := telemetry.CheckNames(reg.Names()); err != nil {
		return fmt.Errorf("loadgen metric names: %w", err)
	}

	start := time.Now()
	switch cfg.mode {
	case "closed":
		g.closedLoop(cfg.workers, cfg.duration)
	case "open":
		g.openLoop(cfg.rps, cfg.duration)
	default:
		return fmt.Errorf("unknown mode %q (want closed or open)", cfg.mode)
	}
	elapsed := time.Since(start)

	snap := g.hist.Snapshot()
	report := Report{
		Mode:      cfg.mode,
		DurationS: elapsed.Seconds(),
		Sent:      g.sent.Load(),
		OK:        g.ok.Value(),
		Shed:      g.shed.Value(),
		Errors:    g.errs.Value(),
		Overflow:  g.over.Value(),
		LatencyMs: LatencyQuantiles{
			P50: snap.Quantile(0.5),
			P95: snap.Quantile(0.95),
			P99: snap.Quantile(0.99),
		},
		Server: info,
	}
	if cfg.mode == "closed" {
		report.Workers = cfg.workers
	} else {
		report.TargetRPS = cfg.rps
	}
	if report.DurationS > 0 {
		report.AchievedRPS = float64(report.Sent) / report.DurationS
	}

	fmt.Fprintf(out, "%s loop: sent %d in %.2fs (%.1f rps) — ok %d, shed %d, errors %d\n",
		report.Mode, report.Sent, report.DurationS, report.AchievedRPS,
		report.OK, report.Shed, report.Errors)
	fmt.Fprintf(out, "decision latency ms: p50 %.3f  p95 %.3f  p99 %.3f\n",
		report.LatencyMs.P50, report.LatencyMs.P95, report.LatencyMs.P99)
	if cfg.benchName != "" && report.Sent > 0 {
		// One benchmark-formatted line so bench_json.sh can fold this
		// run into the cumulative history.
		nsPerOp := elapsed.Nanoseconds() / report.Sent
		fmt.Fprintf(out, "Benchmark%s %d %d ns/op\n", cfg.benchName, report.Sent, nsPerOp)
	}
	if cfg.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.out)
	}
	return nil
}

// generator submits commands and tallies outcomes.
type generator struct {
	base    string
	event   string
	client  *http.Client
	targets []string

	sent atomic.Int64
	next atomic.Int64

	hist *telemetry.Histogram
	ok   *telemetry.Counter
	shed *telemetry.Counter
	errs *telemetry.Counter
	over *telemetry.Counter
}

// resolveTargets loads the fleet roster so requests address concrete
// devices round-robin (admission is per-recipient).
func (g *generator) resolveTargets() error {
	resp, err := g.client.Get(g.base + "/v1/fleet")
	if err != nil {
		return fmt.Errorf("fleet roster: %w", err)
	}
	defer resp.Body.Close()
	var fleet struct {
		Devices []struct {
			ID string `json:"id"`
		} `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		return fmt.Errorf("fleet roster: %w", err)
	}
	for _, d := range fleet.Devices {
		g.targets = append(g.targets, d.ID)
	}
	if len(g.targets) == 0 {
		return fmt.Errorf("fleet at %s has no devices", g.base)
	}
	return nil
}

// fire submits one command and records its outcome.
func (g *generator) fire() {
	target := g.targets[int(g.next.Add(1))%len(g.targets)]
	body := fmt.Sprintf(`{"type":%q,"target":%q,"source":"loadgen"}`, g.event, target)
	g.sent.Add(1)
	start := time.Now()
	resp, err := g.client.Post(g.base+"/v1/commands", "application/json", strings.NewReader(body))
	latency := time.Since(start)
	if err != nil {
		g.errs.Inc()
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	g.hist.Observe(float64(latency.Microseconds()) / 1000)
	switch {
	case resp.StatusCode == http.StatusOK:
		g.ok.Inc()
	case resp.StatusCode == http.StatusTooManyRequests:
		g.shed.Inc()
	default:
		g.errs.Inc()
	}
}

// closedLoop runs workers goroutines, each firing back-to-back until
// the deadline.
func (g *generator) closedLoop(workers int, d time.Duration) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				g.fire()
			}
		}()
	}
	wg.Wait()
}

// openLoop fires on a fixed schedule until the deadline, regardless
// of completions, bounded by maxInFlight.
func (g *generator) openLoop(rps float64, d time.Duration) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	start := time.Now()
	deadline := start.Add(d)
	slots := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	// Launch times are scheduled against the start instant, not a
	// ticker: after any sleep overshoot the loop catches up by firing
	// every due launch immediately, so the offered rate holds even at
	// sub-millisecond intervals.
	for i := int64(0); ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if !due.Before(deadline) {
			break
		}
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.fire()
				<-slots
			}()
		default:
			// In-flight cap reached: the launch is skipped and counted,
			// never silently dropped.
			g.over.Inc()
		}
	}
	wg.Wait()
}

type flags struct {
	mode           string
	workers        int
	rps            float64
	duration       time.Duration
	event          string
	addr           string
	devices        int
	admissionRate  float64
	admissionBurst float64
	out            string
	benchName      string
}

func parseFlags(args []string, out io.Writer) (flags, error) {
	var cfg flags
	fs := newFlagSet(out)
	fs.StringVar(&cfg.mode, "mode", "closed", "generator shape: closed (latency-coupled) or open (fixed schedule)")
	fs.IntVar(&cfg.workers, "workers", 4, "closed-loop concurrency")
	fs.Float64Var(&cfg.rps, "rps", 100, "open-loop launch rate (commands/second)")
	fs.DurationVar(&cfg.duration, "duration", 3*time.Second, "generation window")
	fs.StringVar(&cfg.event, "event", "tick", "event type each command carries")
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running server (empty = self-host)")
	fs.IntVar(&cfg.devices, "devices", 8, "self-hosted fleet size")
	fs.Float64Var(&cfg.admissionRate, "admission-rate", 0, "self-hosted per-device admission rate (0 = ungated)")
	fs.Float64Var(&cfg.admissionBurst, "admission-burst", 0, "self-hosted admission burst (default max(rate, 1))")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report here")
	fs.StringVar(&cfg.benchName, "bench-name", "", "also print a benchmark-formatted line under this name")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() != 0 {
		return cfg, fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if cfg.workers <= 0 || cfg.devices <= 0 || cfg.rps <= 0 || cfg.duration <= 0 {
		return cfg, fmt.Errorf("workers, devices, rps and duration must be positive")
	}
	if cfg.benchName != "" && strings.ContainsAny(cfg.benchName, " \t") {
		return cfg, fmt.Errorf("bench-name %q must not contain whitespace", cfg.benchName)
	}
	return cfg, nil
}

func newFlagSet(out io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	return fs
}
