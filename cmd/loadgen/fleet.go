package main

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/server"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// selfFleet is an in-process control-plane server over a synthetic
// guarded fleet, for self-contained benchmarking.
type selfFleet struct {
	base string
	srv  *server.Server
}

func (f *selfFleet) close() { _ = f.srv.Close() }

// startFleet builds n guarded devices — heat/fuel state, the
// standard pipeline with a never-bad classifier so the benchmark
// measures the full decision path without denial noise — behind a
// control-plane server on a loopback port. rate > 0 puts the
// admission controller in front of every command.
func startFleet(n int, rate, burst float64) (*selfFleet, error) {
	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 1e12),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		return nil, err
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 1e12 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	log := audit.New()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.WithTracerMetrics(reg))
	collective, err := core.New(core.Config{
		Name:       "loadgen",
		Audit:      log,
		KillSecret: []byte("loadgen"),
		Classifier: classifier,
		Telemetry:  reg,
		Tracer:     tracer,
	})
	if err != nil {
		return nil, err
	}
	policies, err := policylang.CompileSource(
		"policy work:\n    on tick\n    do run-load category work effect heat += 1",
		policy.OriginHuman)
	if err != nil {
		return nil, err
	}
	initial, err := schema.StateFromMap(map[string]float64{"fuel": 100})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d, err := device.New(device.Config{
			ID:           fmt.Sprintf("bench-%04d", i),
			Type:         "bench-worker",
			Organization: "loadgen",
			Initial:      initial,
			Guard: core.StandardPipeline(core.SafetyConfig{
				Audit:      log,
				Classifier: classifier,
				Telemetry:  reg,
				Tracer:     tracer,
			}),
			KillSwitch: collective.KillSwitch(),
			Audit:      log,
			Telemetry:  reg,
			Tracer:     tracer,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			if err := d.Policies().Add(p); err != nil {
				return nil, err
			}
		}
		if err := collective.AddDevice(d, nil); err != nil {
			return nil, err
		}
	}

	var intake *admission.Controller
	if rate > 0 {
		intake, err = admission.New(admission.Config{
			Rate:    rate,
			Burst:   burst,
			Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
	}
	srv, err := server.New(server.Config{
		Collective: collective,
		Audit:      log,
		Registry:   reg,
		Tracer:     tracer,
		Admission:  intake,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return &selfFleet{base: "http://" + srv.Addr(), srv: srv}, nil
}
