// Command skynetsim runs a JSON scenario through the full framework: a
// collective of guarded devices receives a scripted event stream while
// the watchdog sweeps, and the tool reports safety metrics and the
// audit trail summary.
//
// Usage:
//
//	skynetsim [flags] scenario.json
//
// Flags:
//
//	--metrics-addr addr   serve /metrics, /traces and /healthz on addr
//	                      (e.g. :9090) for the duration of the run
//	--trace-out file      write the span ring buffer as JSONL on exit
//	--linger d            keep the process (and metrics server) alive
//	                      for d after the scenario completes
//	--parallelism n       run the event stream on the discrete-event
//	                      engine with n workers: deliveries are sharded
//	                      per target device, watchdog sweeps are serial
//	                      barriers, and the audit journal (on virtual
//	                      time) is byte-identical to a serial run.
//	                      Incompatible with a chaos block, whose fault
//	                      sampling is delivery-order-dependent.
//
// Scenario format:
//
//	{
//	  "name": "demo",
//	  "badHeatAt": 80,
//	  "denialThreshold": 3,
//	  "sweepEvery": 2,
//	  "devices": [
//	    {"id": "d1", "type": "drone", "org": "us", "heat": 20,
//	     "policies": "policy work: on tick do run effect heat += 15"}
//	  ],
//	  "events": [
//	    {"type": "tick", "target": "d1", "repeat": 10}
//	  ]
//	}
//
// Targets may be "*" (all devices). Guards are the standard pipeline
// with a state-space check at badHeatAt.
//
// An optional "chaos" block degrades delivery: events then flow over
// the in-memory bus with the configured loss/duplication and the
// resilience stack (bounded retries, per-device circuit breakers),
// and one device can crash mid-run and be recovered from its latest
// audit-journal checkpoint:
//
//	"chaos": {"loss": 0.3, "duplication": 0.1, "maxAttempts": 4,
//	          "crashDevice": "d1", "crashAtStep": 3, "restartAtStep": 8}
//
// An optional "saturation" block puts the admission controller in
// front of delivery: events then flow over the bus into bounded,
// rate-limited per-device intake queues, overload is shed with typed
// causes instead of lost, and the run reports the exact conservation
// accounting (sent == delivered + dropped + shed). The scenario runs
// on the discrete-event engine even at --parallelism 1 (queues drain
// in batched engine events), and the block is incompatible with
// "chaos", whose serial crash/restart path bypasses the engine:
//
//	"saturation": {"queueCapacity": 8, "rate": 2, "burst": 2,
//	               "drainBatch": 4, "drainIntervalMs": 100}
//
// An optional "bundle" block distributes the fleet's policies as
// signed, versioned bundles before the event stream runs: every device
// enrolls with the distributor, each listed revision is compiled,
// published and repaired to convergence over a (possibly lossy) bus,
// and tampered pushes injected afterwards must all be refused
// fail-closed with the fleet unmoved. Incompatible with "chaos" and
// "saturation", which own the bus differently:
//
//	"bundle": {"revisions": ["policy work: on tick do run ..."],
//	           "loss": 0.3, "corruptPushes": 2}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

type scenario struct {
	Name            string  `json:"name"`
	BadHeatAt       float64 `json:"badHeatAt"`
	DenialThreshold int     `json:"denialThreshold"`
	SweepEvery      int     `json:"sweepEvery"`
	// Variables optionally defines a custom state schema; empty keeps
	// the default heat/fuel schema with the badHeatAt classifier.
	Variables []statespace.VariableSpec `json:"variables"`
	// BadWhen optionally defines the bad region as a disjunction of
	// threshold conditions over the custom schema.
	BadWhen []badCondition `json:"badWhen"`
	Devices []deviceSpec   `json:"devices"`
	Events  []eventSpec    `json:"events"`
	// Chaos optionally injects faults; nil keeps direct, lossless
	// delivery.
	Chaos *chaosSpec `json:"chaos"`
	// Saturation optionally bounds intake behind the admission
	// controller; nil keeps unbounded delivery.
	Saturation *saturationSpec `json:"saturation"`
	// Bundle optionally distributes policies as signed bundles before
	// the event stream; nil keeps per-device policy sources.
	Bundle *bundleSpec `json:"bundle"`
}

type bundleSpec struct {
	// Revisions are policylang sources; revision i+1 is compiled and
	// published as one signed bundle that replaces revision i's set.
	Revisions []string `json:"revisions"`
	// Loss is the per-message drop probability on the distribution bus;
	// anti-entropy repair sweeps close the resulting gaps.
	Loss float64 `json:"loss"`
	// Seed drives the fault randomness (default 1).
	Seed int64 `json:"seed"`
	// MaxSweeps bounds repair sweeps per revision (default 16).
	MaxSweeps int `json:"maxSweeps"`
	// CorruptPushes injects that many tampered pushes after
	// distribution; every one must be rejected fail-closed.
	CorruptPushes int `json:"corruptPushes"`
}

type saturationSpec struct {
	// QueueCapacity bounds each device's intake queue (default 64).
	QueueCapacity int `json:"queueCapacity"`
	// Rate is the per-device token refill in tokens per (virtual)
	// second; 0 disables rate limiting.
	Rate float64 `json:"rate"`
	// Burst is the token bucket capacity (default max(rate, 1)).
	Burst float64 `json:"burst"`
	// DrainBatch bounds how many queued events one drain pass delivers
	// (default 32).
	DrainBatch int `json:"drainBatch"`
	// DrainIntervalMs is the redrain period in virtual milliseconds
	// (default 1).
	DrainIntervalMs int `json:"drainIntervalMs"`
}

type chaosSpec struct {
	// Loss and Duplication are per-message probabilities on the bus.
	Loss        float64 `json:"loss"`
	Duplication float64 `json:"duplication"`
	// MaxAttempts bounds delivery retries (default 3).
	MaxAttempts int `json:"maxAttempts"`
	// Seed drives the fault randomness (default 1).
	Seed int64 `json:"seed"`
	// CrashDevice is removed at CrashAtStep and, when RestartAtStep is
	// set, recovered from its latest checkpoint at that step.
	CrashDevice   string `json:"crashDevice"`
	CrashAtStep   int    `json:"crashAtStep"`
	RestartAtStep int    `json:"restartAtStep"`
}

type badCondition struct {
	Variable string  `json:"variable"`
	Op       string  `json:"op"` // one of < <= > >= == !=
	Value    float64 `json:"value"`
}

type deviceSpec struct {
	ID   string  `json:"id"`
	Type string  `json:"type"`
	Org  string  `json:"org"`
	Heat float64 `json:"heat"`
	// State sets initial values by variable name (custom schemas).
	State    map[string]float64 `json:"state"`
	Policies string             `json:"policies"`
	// Unguarded disables the device's guard (an experimental control
	// or a compromised device).
	Unguarded bool `json:"unguarded"`
}

type eventSpec struct {
	Type   string             `json:"type"`
	Target string             `json:"target"`
	Attrs  map[string]float64 `json:"attrs"`
	Repeat int                `json:"repeat"`
}

func main() {
	args := os.Args[1:]
	cmd := run
	if len(args) > 0 && args[0] == "serve" {
		cmd = runServe
		args = args[1:]
	}
	if err := cmd(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skynetsim:", err)
		os.Exit(1)
	}
}

// loadScenario reads, parses and defaults a scenario file.
func loadScenario(path string) (scenario, error) {
	var sc scenario
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("parse scenario: %w", err)
	}
	if sc.BadHeatAt <= 0 {
		sc.BadHeatAt = 80
	}
	if sc.SweepEvery <= 0 {
		sc.SweepEvery = 1
	}
	return sc, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skynetsim", flag.ContinueOnError)
	fs.SetOutput(out)
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /traces and /healthz on this address")
	traceOut := fs.String("trace-out", "", "write finished spans as JSONL to this file on exit")
	linger := fs.Duration("linger", 0, "keep the process (and metrics server) alive this long after the run")
	parallelism := fs.Int("parallelism", 1, "engine workers for sharded event delivery (1 = serial, no engine)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: skynetsim [flags] <scenario.json>")
	}
	sc, err := loadScenario(fs.Arg(0))
	if err != nil {
		return err
	}

	// One registry and one tracer back everything: framework telemetry,
	// experiment tallies, the exposition endpoint and the JSONL export.
	metrics := sim.NewMetrics()
	registry := metrics.Registry()
	tracer := telemetry.NewTracer(telemetry.WithTracerMetrics(registry))

	var server *telemetry.Server
	if *metricsAddr != "" {
		server, err = telemetry.Serve(*metricsAddr, registry, tracer)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer server.Close()
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", server.Addr())
	}

	schema, classifier, err := buildStateModel(sc)
	if err != nil {
		return err
	}
	if *parallelism > 1 && sc.Chaos != nil {
		return fmt.Errorf("--parallelism cannot be combined with a chaos block: bus fault sampling is delivery-order-dependent")
	}
	if sc.Saturation != nil && sc.Chaos != nil {
		return fmt.Errorf("a saturation block cannot be combined with a chaos block: admission drains on the engine, chaos crash/restart runs serially")
	}
	if sc.Bundle != nil && (sc.Chaos != nil || sc.Saturation != nil) {
		return fmt.Errorf("a bundle block cannot be combined with a chaos or saturation block: each configures the bus differently")
	}
	if sc.Bundle != nil && *parallelism > 1 {
		return fmt.Errorf("--parallelism cannot be combined with a bundle block: bus fault sampling is delivery-order-dependent")
	}
	// In parallel mode — and under a saturation block, whose intake
	// queues drain in batched engine events — the scenario runs on the
	// discrete-event engine and the journal is stamped with virtual
	// time, so its hash chain is reproducible at any worker count.
	var (
		clock  *sim.Clock
		engine *sim.Engine
	)
	var logOpts []audit.Option
	if *parallelism > 1 || sc.Saturation != nil {
		clock = sim.NewClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
		engine = sim.NewEngine(clock)
		engine.SetParallelism(*parallelism)
		logOpts = append(logOpts, audit.WithClock(clock.Now))
	}
	log := audit.New(logOpts...)
	coreCfg := core.Config{
		Name:            sc.Name,
		Audit:           log,
		KillSecret:      []byte("skynetsim-" + sc.Name),
		Classifier:      classifier,
		DenialThreshold: sc.DenialThreshold,
		Telemetry:       registry,
		Tracer:          tracer,
	}

	// With a chaos block, events travel over a lossy bus behind the
	// resilience stack instead of being delivered directly.
	var (
		bus    *network.Bus
		sender *network.ReliableSender
	)
	if sc.Chaos != nil {
		seed := sc.Chaos.Seed
		if seed == 0 {
			seed = 1
		}
		attempts := sc.Chaos.MaxAttempts
		if attempts <= 0 {
			attempts = 3
		}
		bus = network.NewBus(rand.New(rand.NewSource(seed)),
			network.WithLoss(sc.Chaos.Loss),
			network.WithDuplication(sc.Chaos.Duplication),
			network.WithMetrics(metrics))
		sender = &network.ReliableSender{
			Bus: bus,
			Retry: resilience.Retry{
				MaxAttempts: attempts,
				Sleep:       func(time.Duration) {},
				Rand:        rand.New(rand.NewSource(seed + 1)).Float64,
			},
			Breakers: &resilience.BreakerSet{Threshold: 3, Cooldown: time.Minute},
			Metrics:  metrics,
		}
		coreCfg.Bus = bus
	}

	// With a bundle block, policy distribution travels over a lossy bus
	// while the event stream itself stays on direct delivery — the bus
	// carries only bundle pushes, acks and pulls.
	if sc.Bundle != nil {
		seed := sc.Bundle.Seed
		if seed == 0 {
			seed = 1
		}
		bus = network.NewBus(rand.New(rand.NewSource(seed)),
			network.WithLoss(sc.Bundle.Loss),
			network.WithMetrics(metrics))
		coreCfg.Bus = bus
	}

	// With a saturation block, events travel over an admission-bounded
	// bus: each device gets a bounded, rate-limited intake queue that
	// drains in batched engine events, and overload is shed with typed
	// causes — never lost silently.
	var intake *admission.Controller
	if sat := sc.Saturation; sat != nil {
		intake, err = admission.New(admission.Config{
			QueueCapacity: sat.QueueCapacity,
			Rate:          sat.Rate,
			Burst:         sat.Burst,
			Now:           clock.Now,
			DrainBatch:    sat.DrainBatch,
			DrainInterval: time.Duration(sat.DrainIntervalMs) * time.Millisecond,
			Metrics:       registry,
		})
		if err != nil {
			return err
		}
		bus = network.NewBus(nil,
			network.WithEngine(engine),
			network.WithMetrics(metrics),
			network.WithAdmission(intake))
	}
	collective, err := core.New(coreCfg)
	if err != nil {
		return err
	}

	guardFor := func(spec deviceSpec) guard.Guard {
		if spec.Unguarded {
			return nil
		}
		return core.StandardPipeline(core.SafetyConfig{
			Audit:      log,
			Classifier: classifier,
			Telemetry:  registry,
			Tracer:     tracer,
		})
	}

	specByID := make(map[string]deviceSpec, len(sc.Devices))
	if err := buildFleet(sc, schema, collective, guardFor, log, registry, tracer, specByID); err != nil {
		return err
	}

	// The bundle distribution phase runs before the event stream so the
	// fleet acts on distributor-activated policies, not per-device
	// sources.
	var bundleResult *bundleSummary
	if sc.Bundle != nil {
		bundleResult, err = runBundlePhase(sc, collective, bus, registry, out)
		if err != nil {
			return err
		}
	}

	executed, denied := 0, 0
	sendFailures, recoveries := 0, 0
	if sc.Saturation != nil {
		executed, denied, sendFailures, err = runSaturationEvents(sc, collective, engine, clock, bus, out)
		if err != nil {
			return err
		}
	} else if engine != nil {
		executed, denied, err = runShardedEvents(sc, collective, engine, clock, out)
		if err != nil {
			return err
		}
	} else {
		executed, denied, sendFailures, recoveries = runSerialEvents(
			sc, collective, specByID, guardFor, log, tracer, registry, sender, out)
	}
	if sc.Chaos != nil {
		executed = len(log.ByKind(audit.KindAction))
		denied = len(log.ByKind(audit.KindDenial))
	}

	fmt.Fprintf(out, "scenario %q complete\n", sc.Name)
	fmt.Fprintf(out, "  actions executed: %d\n", executed)
	fmt.Fprintf(out, "  actions denied:   %d\n", denied)
	fmt.Fprintf(out, "  active devices:   %d/%d\n", collective.ActiveCount(), len(collective.Devices()))
	for _, d := range collective.Devices() {
		status := "active"
		if d.Deactivated() {
			status = "DEACTIVATED"
		}
		fmt.Fprintf(out, "  %s: %s state=%s\n", d.ID(), status, d.CurrentState())
	}
	if sc.Chaos != nil {
		delivered, dropped := bus.Stats()
		fmt.Fprintf(out, "  chaos: delivered=%d dropped=%d duplicated=%d retries=%d breaker-opens=%d send-failures=%d recoveries=%d\n",
			delivered, dropped, bus.Duplicated(),
			metrics.Counter("resilience.retries"), sender.Breakers.Opens(),
			sendFailures, recoveries)
	}
	if sc.Saturation != nil {
		if err := bus.CheckConservation(); err != nil {
			return err
		}
		delivered, dropped := bus.Stats()
		fmt.Fprintf(out, "  saturation: sent=%d delivered=%d shed=%d dropped=%d pending=%d (conservation exact)\n",
			bus.Sent(), delivered, bus.Shed(), dropped, bus.PendingAdmitted())
	}
	if sc.Bundle != nil {
		r := bundleResult
		fmt.Fprintf(out, "  bundle: revision=%d converged=%v activated{full=%d delta=%d} repairs=%d pulls=%d corrupt-rejected=%d/%d\n",
			r.dist.Revision(), r.dist.Converged(),
			registry.Counter("bundle.activated", "kind", "full").Value(),
			registry.Counter("bundle.activated", "kind", "delta").Value(),
			registry.Counter("bundle.repairs").Value(),
			registry.Counter("bundle.pulls").Value(),
			r.corruptRejected, r.corruptDelivered)
		if err := r.dist.Ledger().Verify(); err != nil {
			return fmt.Errorf("activation ledger broken: %w", err)
		}
		fmt.Fprintf(out, "  bundle ledger: %d entries, chain verified\n", r.dist.Ledger().Len())
	}
	if err := log.Verify(); err != nil {
		return fmt.Errorf("audit chain broken: %w", err)
	}
	fmt.Fprintf(out, "  audit: %d entries, chain verified\n", log.Len())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  traces: %d spans written to %s\n", len(tracer.Spans()), *traceOut)
	}
	if *linger > 0 {
		fmt.Fprintf(out, "  lingering %s\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// runShardedEvents runs the scenario's event stream on the engine:
// step s fires at s virtual seconds, each target's delivery is an
// event sharded by device ID (so the fleet fans out across the worker
// pool with per-device ordering intact), and the periodic watchdog
// sweep is an unkeyed barrier sequenced after the step's deliveries.
// Tallies are atomics — commutative, hence identical at any worker
// count — and audit appends merge through the delivery lanes in
// deterministic (time, seq) order.
func runShardedEvents(sc scenario, collective *core.Collective, engine *sim.Engine,
	clock *sim.Clock, out io.Writer) (executed, denied int, err error) {
	var execN, denyN atomic.Int64
	step := 0
	for _, ev := range sc.Events {
		repeat := ev.Repeat
		if repeat <= 0 {
			repeat = 1
		}
		for r := 0; r < repeat; r++ {
			step++
			at := time.Duration(step) * time.Second
			event := policy.Event{Type: ev.Type, Source: "scenario", Attrs: ev.Attrs}
			targets := []string{ev.Target}
			if ev.Target == "*" || ev.Target == "" {
				targets = targets[:0]
				for _, d := range collective.Devices() {
					targets = append(targets, d.ID())
				}
			}
			for _, id := range targets {
				id := id
				engine.ScheduleShard(at, id, func(lane *sim.Lane) {
					execs, err := collective.DeliverWith(id, event, lane)
					if err != nil {
						return // removed or deactivated devices do not act
					}
					for _, e := range execs {
						if e.Executed() {
							execN.Add(1)
						} else if !e.Verdict.Allowed() {
							denyN.Add(1)
						}
					}
				})
			}
			if step%sc.SweepEvery == 0 {
				s := step
				engine.Schedule(at, func() {
					if deactivated, _ := collective.SweepWatchdog(); len(deactivated) > 0 {
						fmt.Fprintf(out, "step %d: watchdog deactivated %v\n", s, deactivated)
					}
				})
			}
		}
	}
	if err := engine.Run(clock.Now().Add(time.Duration(step+1) * time.Second)); err != nil {
		return 0, 0, err
	}
	return int(execN.Load()), int(denyN.Load()), nil
}

// runSaturationEvents runs the event stream through the
// admission-bounded bus: step s fires at s virtual seconds as a
// barrier event whose sends are admitted, shed with a typed cause, or
// queued; queues drain in engine events sharded per device, so the
// run is deterministic at any --parallelism. A shed send counts as a
// send failure in the summary — the conservation line reports the
// exact books.
func runSaturationEvents(sc scenario, collective *core.Collective, engine *sim.Engine,
	clock *sim.Clock, bus *network.Bus, out io.Writer) (executed, denied, shed int, err error) {
	var execN, denyN, shedN atomic.Int64
	for _, d := range collective.Devices() {
		id := d.ID()
		if err := bus.AttachLane(id, func(msg network.Message, lane *sim.Lane) {
			ev, ok := msg.Payload.(policy.Event)
			if !ok {
				return
			}
			execs, err := collective.DeliverWith(id, ev, lane)
			if err != nil {
				return // removed or deactivated devices do not act
			}
			for _, e := range execs {
				if e.Executed() {
					execN.Add(1)
				} else if !e.Verdict.Allowed() {
					denyN.Add(1)
				}
			}
		}); err != nil {
			return 0, 0, 0, err
		}
	}
	step := 0
	for _, ev := range sc.Events {
		repeat := ev.Repeat
		if repeat <= 0 {
			repeat = 1
		}
		for r := 0; r < repeat; r++ {
			step++
			at := time.Duration(step) * time.Second
			event := policy.Event{Type: ev.Type, Source: "scenario", Attrs: ev.Attrs}
			targets := []string{ev.Target}
			if ev.Target == "*" || ev.Target == "" {
				targets = targets[:0]
				for _, d := range collective.Devices() {
					targets = append(targets, d.ID())
				}
			}
			targets = append([]string(nil), targets...)
			s := step
			// The step is a barrier: sends happen serially, so admission
			// decisions (and any future fault sampling) are ordered.
			engine.Schedule(at, func() {
				for _, id := range targets {
					if err := bus.Send(network.Message{
						From: "scenario", To: id, Topic: "command", Payload: event,
					}); err != nil {
						shedN.Add(1)
						fmt.Fprintf(out, "step %d: %s: %v\n", s, id, err)
					}
				}
			})
			if step%sc.SweepEvery == 0 {
				engine.Schedule(at, func() {
					if deactivated, _ := collective.SweepWatchdog(); len(deactivated) > 0 {
						fmt.Fprintf(out, "step %d: watchdog deactivated %v\n", s, deactivated)
					}
				})
			}
		}
	}
	// Two extra virtual seconds give the drain events room to empty the
	// intake queues before the books are checked.
	if err := engine.Run(clock.Now().Add(time.Duration(step+2) * time.Second)); err != nil {
		return 0, 0, 0, err
	}
	return int(execN.Load()), int(denyN.Load()), int(shedN.Load()), nil
}

// runSerialEvents is the original synchronous event loop: direct (or
// chaos-bus) delivery step by step, with checkpointing, scripted
// crash/restart and inline watchdog sweeps.
func runSerialEvents(sc scenario, collective *core.Collective, specByID map[string]deviceSpec,
	guardFor func(deviceSpec) guard.Guard, log *audit.Log, tracer *telemetry.Tracer,
	registry *telemetry.Registry, sender *network.ReliableSender,
	out io.Writer) (executed, denied, sendFailures, recoveries int) {
	step := 0
	for _, ev := range sc.Events {
		repeat := ev.Repeat
		if repeat <= 0 {
			repeat = 1
		}
		for r := 0; r < repeat; r++ {
			step++
			event := policy.Event{Type: ev.Type, Source: "scenario", Attrs: ev.Attrs}
			if sc.Chaos != nil {
				// Chaos path: per-device bus deliveries through retries
				// and breakers; execution counts come from the audit
				// trail afterwards. Each scenario event opens one root
				// span so every delivery — including retried and
				// duplicated ones — stays in one trace.
				span := tracer.StartSpan("scenario.command", "scenario", telemetry.SpanContext{})
				span.SetAttr("event", ev.Type)
				event.Labels = telemetry.Inject(span.Context(), event.Labels)
				targets := []string{ev.Target}
				if ev.Target == "*" || ev.Target == "" {
					targets = targets[:0]
					for _, d := range collective.Devices() {
						targets = append(targets, d.ID())
					}
				}
				for _, id := range targets {
					if err := sender.Send(network.Message{
						From: "scenario", To: id, Topic: "command", Payload: event,
					}); err != nil {
						sendFailures++
					}
				}
				span.Finish()
			} else {
				var results map[string][]device.Execution
				if ev.Target == "*" || ev.Target == "" {
					results = collective.Command(event)
				} else {
					execs, err := collective.Deliver(ev.Target, event)
					if err != nil {
						fmt.Fprintf(out, "step %d: %v\n", step, err)
						continue
					}
					results = map[string][]device.Execution{ev.Target: execs}
				}
				for _, execs := range results {
					for _, e := range execs {
						if e.Executed() {
							executed++
						} else if !e.Verdict.Allowed() {
							denied++
						}
					}
				}
			}
			if sc.Chaos != nil {
				// Checkpoint active devices so a crash is recoverable,
				// then apply the scripted crash/restart.
				for _, d := range collective.Devices() {
					if !d.Deactivated() {
						_, _ = resilience.Checkpoint(log, d)
					}
				}
				if sc.Chaos.CrashDevice != "" && step == sc.Chaos.CrashAtStep {
					if collective.RemoveDevice(sc.Chaos.CrashDevice) {
						fmt.Fprintf(out, "step %d: chaos crashed %s\n", step, sc.Chaos.CrashDevice)
					}
				}
				if sc.Chaos.CrashDevice != "" && sc.Chaos.RestartAtStep > 0 && step == sc.Chaos.RestartAtStep {
					spec := specByID[sc.Chaos.CrashDevice]
					d, err := resilience.Recover(log, sc.Chaos.CrashDevice, device.Config{
						Type:         spec.Type,
						Organization: spec.Org,
						Guard:        guardFor(spec),
						KillSwitch:   collective.KillSwitch(),
						Audit:        log,
						Telemetry:    registry,
						Tracer:       tracer,
					})
					if err != nil {
						fmt.Fprintf(out, "step %d: recovery failed: %v\n", step, err)
					} else if err := collective.AddDevice(d, nil); err != nil {
						fmt.Fprintf(out, "step %d: readmission failed: %v\n", step, err)
					} else {
						recoveries++
						fmt.Fprintf(out, "step %d: chaos recovered %s from checkpoint (state=%s)\n",
							step, d.ID(), d.CurrentState())
					}
				}
			}
			if step%sc.SweepEvery == 0 {
				if deactivated, _ := collective.SweepWatchdog(); len(deactivated) > 0 {
					fmt.Fprintf(out, "step %d: watchdog deactivated %v\n", step, deactivated)
				}
			}
		}
	}
	return executed, denied, sendFailures, recoveries
}

// bundleSummary carries the distribution phase's books into the run
// summary.
type bundleSummary struct {
	dist             *core.Distributor
	corruptDelivered int64
	corruptRejected  int64
}

// runBundlePhase distributes the scenario's policy revisions as signed
// bundles: every device enrolls with a distributor sharing one HMAC
// key, each revision is published and repaired to convergence over the
// (possibly lossy) bus, and the scripted tampered pushes afterwards
// must all be refused fail-closed with every device still on the
// published revision.
func runBundlePhase(sc scenario, collective *core.Collective, bus *network.Bus,
	registry *telemetry.Registry, out io.Writer) (*bundleSummary, error) {
	spec := sc.Bundle
	maxSweeps := spec.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 16
	}
	key := bundle.HMACKey{ID: "skynetsim", Secret: []byte("skynetsim-bundle-" + sc.Name)}
	dist, err := core.NewDistributor(core.DistributorConfig{
		Collective: collective, Signer: key, Telemetry: registry,
	})
	if err != nil {
		return nil, err
	}
	devices := collective.Devices()
	if len(devices) == 0 {
		return nil, fmt.Errorf("bundle: no devices to enroll")
	}
	for _, d := range devices {
		if err := dist.Enroll(d.ID(), key); err != nil {
			return nil, err
		}
	}
	for i, src := range spec.Revisions {
		pols, err := policylang.CompileSource(src, policy.OriginHuman)
		if err != nil {
			return nil, fmt.Errorf("bundle revision %d: %w", i+1, err)
		}
		rev, err := dist.Publish(pols)
		if err != nil {
			return nil, fmt.Errorf("bundle revision %d: %w", i+1, err)
		}
		sweeps := 0
		for !dist.Converged() && sweeps < maxSweeps {
			dist.RepairSweep()
			sweeps++
		}
		if !dist.Converged() {
			return nil, fmt.Errorf("bundle revision %d: fleet not converged after %d repair sweeps; lagging %v",
				rev, sweeps, dist.Lagging())
		}
		fmt.Fprintf(out, "bundle revision %d: %d policies converged after %d repair sweeps\n",
			rev, len(pols), sweeps)
	}

	// Tampered pushes alternate a rogue-signed full bundle with
	// structural garbage. Each is retried past the loss until the bus
	// actually delivers it, so the fail-closed books are exact: every
	// delivered corruption must be rejected, and no device may move.
	rejected := func() int64 {
		return registry.Counter("bundle.rejected", "cause", "signature").Value() +
			registry.Counter("bundle.rejected", "cause", "decode").Value()
	}
	before := rejected()
	var delivered int64
	if spec.CorruptPushes > 0 {
		rogue := bundle.NewPublisher(bundle.HMACKey{ID: "rogue", Secret: []byte("rogue")})
		pols, err := policylang.CompileSource(
			"policy hijack priority 9:\n    on tick\n    do exfiltrate target all category surveillance\n",
			policy.OriginHuman)
		if err != nil {
			return nil, err
		}
		full, _, err := rogue.Publish(pols)
		if err != nil {
			return nil, err
		}
		rogueWire, err := bundle.Encode(full)
		if err != nil {
			return nil, err
		}
		for i := 0; i < spec.CorruptPushes; i++ {
			payload := rogueWire
			if i%2 == 1 {
				payload = []byte("!! not a bundle !!")
			}
			target := devices[i%len(devices)].ID()
			for attempt := 0; ; attempt++ {
				err := bus.Send(network.Message{
					From: "attacker", To: target, Topic: core.TopicBundle, Payload: payload,
				})
				if err == nil {
					delivered++
					break
				}
				if !errors.Is(err, network.ErrDropped) || attempt >= 10000 {
					return nil, fmt.Errorf("bundle: corrupt push %d undeliverable: %w", i, err)
				}
			}
		}
	}
	summary := &bundleSummary{dist: dist, corruptDelivered: delivered, corruptRejected: rejected() - before}
	if summary.corruptRejected != delivered {
		return nil, fmt.Errorf("bundle: fail-closed violated: %d corrupt pushes delivered, only %d rejected",
			delivered, summary.corruptRejected)
	}
	for _, d := range devices {
		if got := d.Policies().Revision(); got != dist.Revision() {
			return nil, fmt.Errorf("bundle: %s at revision %d after corrupt pushes, want %d",
				d.ID(), got, dist.Revision())
		}
	}
	return summary, nil
}

// buildStateModel derives the schema and classifier from the scenario:
// the default heat/fuel model with a badHeatAt threshold, or a custom
// variable list with a disjunction of bad conditions.
// buildFleet constructs the scenario's devices — initial state, guard
// stack, compiled policies — and registers them with the collective.
// specByID, when non-nil, is filled with each device's spec for later
// lookups (the chaos crash/restart path needs them).
func buildFleet(sc scenario, schema *statespace.Schema, collective *core.Collective,
	guardFor func(deviceSpec) guard.Guard, log *audit.Log,
	registry *telemetry.Registry, tracer *telemetry.Tracer,
	specByID map[string]deviceSpec) error {
	for _, spec := range sc.Devices {
		if specByID != nil {
			specByID[spec.ID] = spec
		}
		values := map[string]float64{}
		if len(sc.Variables) == 0 {
			values["heat"] = spec.Heat
			values["fuel"] = 100
		}
		for k, v := range spec.State {
			values[k] = v
		}
		initial, err := schema.StateFromMap(values)
		if err != nil {
			return fmt.Errorf("device %s: %w", spec.ID, err)
		}
		cfg := device.Config{
			ID:           spec.ID,
			Type:         spec.Type,
			Organization: spec.Org,
			Initial:      initial,
			Guard:        guardFor(spec),
			KillSwitch:   collective.KillSwitch(),
			Audit:        log,
			Telemetry:    registry,
			Tracer:       tracer,
		}
		d, err := device.New(cfg)
		if err != nil {
			return err
		}
		if spec.Policies != "" {
			policies, err := policylang.CompileSource(spec.Policies, policy.OriginHuman)
			if err != nil {
				return fmt.Errorf("device %s policies: %w", spec.ID, err)
			}
			for _, p := range policies {
				if err := d.Policies().Add(p); err != nil {
					return fmt.Errorf("device %s: %w", spec.ID, err)
				}
			}
		}
		if err := collective.AddDevice(d, nil); err != nil {
			return err
		}
	}
	return nil
}

func buildStateModel(sc scenario) (*statespace.Schema, statespace.Classifier, error) {
	if len(sc.Variables) == 0 {
		schema, err := statespace.NewSchema(
			statespace.Var("heat", 0, 100),
			statespace.Var("fuel", 0, 100),
		)
		if err != nil {
			return nil, nil, err
		}
		classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
			if st.MustGet("heat") >= sc.BadHeatAt {
				return statespace.ClassBad
			}
			return statespace.ClassGood
		})
		return schema, classifier, nil
	}

	schema, err := statespace.SchemaFromSpec(sc.Variables)
	if err != nil {
		return nil, nil, err
	}
	conds := make([]func(statespace.State) bool, 0, len(sc.BadWhen))
	for _, bc := range sc.BadWhen {
		bc := bc
		if _, ok := schema.Index(bc.Variable); !ok {
			return nil, nil, fmt.Errorf("badWhen references unknown variable %q", bc.Variable)
		}
		cmp, err := comparator(bc.Op)
		if err != nil {
			return nil, nil, err
		}
		conds = append(conds, func(st statespace.State) bool {
			return cmp(st.MustGet(bc.Variable), bc.Value)
		})
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		for _, c := range conds {
			if c(st) {
				return statespace.ClassBad
			}
		}
		return statespace.ClassGood
	})
	return schema, classifier, nil
}

func comparator(op string) (func(a, b float64) bool, error) {
	switch op {
	case "<":
		return func(a, b float64) bool { return a < b }, nil
	case "<=":
		return func(a, b float64) bool { return a <= b }, nil
	case ">":
		return func(a, b float64) bool { return a > b }, nil
	case ">=":
		return func(a, b float64) bool { return a >= b }, nil
	case "==":
		return func(a, b float64) bool { return a == b }, nil
	case "!=":
		return func(a, b float64) bool { return a != b }, nil
	default:
		return nil, fmt.Errorf("badWhen: unknown operator %q", op)
	}
}
