package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestRunScenario(t *testing.T) {
	path := writeScenario(t, `{
		"name": "test",
		"badHeatAt": 80,
		"denialThreshold": 3,
		"devices": [
			{"id": "guarded", "heat": 20,
			 "policies": "policy work: on tick do run category work effect heat += 15"},
			{"id": "rogue", "heat": 20, "unguarded": true,
			 "policies": "policy work: on tick do run category work effect heat += 15"}
		],
		"events": [{"type": "tick", "target": "*", "repeat": 8}]
	}`)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "watchdog deactivated [rogue]") {
		t.Errorf("rogue not contained:\n%s", out)
	}
	if !strings.Contains(out, "chain verified") {
		t.Errorf("audit not verified:\n%s", out)
	}
	if !strings.Contains(out, "actions denied") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.json"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeScenario(t, "{not json")
	if err := run([]string{bad}, os.Stdout); err == nil {
		t.Error("malformed JSON accepted")
	}
	badPolicy := writeScenario(t, `{"name":"x","devices":[{"id":"d","policies":"garbage"}]}`)
	if err := run([]string{badPolicy}, os.Stdout); err == nil {
		t.Error("bad policy DSL accepted")
	}
	badTarget := writeScenario(t, `{"name":"x","devices":[{"id":"d"}],"events":[{"type":"e","target":"ghost"}]}`)
	var sb strings.Builder
	if err := run([]string{badTarget}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "unknown device") {
		t.Errorf("unknown target not reported:\n%s", sb.String())
	}
}

func TestRunCustomSchema(t *testing.T) {
	path := writeScenario(t, `{
		"name": "reactor",
		"variables": [
			{"name": "pressure", "min": 0, "max": 500},
			{"name": "coolant", "min": 0, "max": 100}
		],
		"badWhen": [
			{"variable": "pressure", "op": ">=", "value": 400},
			{"variable": "coolant", "op": "<", "value": 10}
		],
		"devices": [
			{"id": "reactor-1", "state": {"pressure": 100, "coolant": 80},
			 "policies": "policy pump: on tick do pressurize category work effect pressure += 120"}
		],
		"events": [{"type": "tick", "target": "reactor-1", "repeat": 5}]
	}`)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	// 100 → 220 → 340; the next +120 would reach 460 ≥ 400 (bad) and
	// must be denied, so the device stops at 340.
	if !strings.Contains(out, "pressure=340") {
		t.Errorf("guard did not hold pressure at 340:\n%s", out)
	}
	if !strings.Contains(out, "actions denied:   3") {
		t.Errorf("denials wrong:\n%s", out)
	}
}

func TestRunCustomSchemaErrors(t *testing.T) {
	badVar := writeScenario(t, `{"name":"x","variables":[{"name":"p"}],
		"badWhen":[{"variable":"ghost","op":">","value":1}],"devices":[]}`)
	if err := run([]string{badVar}, os.Stdout); err == nil {
		t.Error("unknown badWhen variable accepted")
	}
	badOp := writeScenario(t, `{"name":"x","variables":[{"name":"p"}],
		"badWhen":[{"variable":"p","op":"%","value":1}],"devices":[]}`)
	if err := run([]string{badOp}, os.Stdout); err == nil {
		t.Error("unknown operator accepted")
	}
	badState := writeScenario(t, `{"name":"x","variables":[{"name":"p"}],
		"devices":[{"id":"d","state":{"ghost":1}}]}`)
	if err := run([]string{badState}, os.Stdout); err == nil {
		t.Error("unknown state variable accepted")
	}
}

func TestRunParallelScenario(t *testing.T) {
	const scenario = `{
		"name": "fleet",
		"badHeatAt": 80,
		"denialThreshold": 3,
		"devices": [
			{"id": "d1", "heat": 20,
			 "policies": "policy work: on tick do run category work effect heat += 15"},
			{"id": "d2", "heat": 35,
			 "policies": "policy work: on tick do run category work effect heat += 15"},
			{"id": "d3", "heat": 50,
			 "policies": "policy work: on tick do run category work effect heat += 15"},
			{"id": "d4", "heat": 20, "unguarded": true,
			 "policies": "policy work: on tick do run category work effect heat += 15"}
		],
		"events": [{"type": "tick", "target": "*", "repeat": 8}]
	}`
	path := writeScenario(t, scenario)

	// Serial engine run and parallel runs must print the same summary:
	// same executed/denied tallies, same fleet state, verified chain.
	summaries := make(map[string]string)
	for _, workers := range []string{"2", "4"} {
		var sb strings.Builder
		if err := run([]string{"--parallelism", workers, path}, &sb); err != nil {
			t.Fatalf("run --parallelism %s: %v", workers, err)
		}
		summaries[workers] = sb.String()
	}
	if summaries["2"] != summaries["4"] {
		t.Errorf("parallel summaries diverge:\n-- 2 workers --\n%s\n-- 4 workers --\n%s",
			summaries["2"], summaries["4"])
	}
	out := summaries["2"]
	for _, want := range []string{
		"watchdog deactivated [d3 d4]",
		"chain verified",
		"actions denied",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}

	// The direct serial path must agree on the tallies and fleet state
	// (audit entry count differs only in that both paths verify).
	var serial strings.Builder
	if err := run([]string{path}, &serial); err != nil {
		t.Fatalf("run serial: %v", err)
	}
	for _, line := range strings.Split(serial.String(), "\n") {
		if strings.Contains(line, "actions executed") ||
			strings.Contains(line, "actions denied") ||
			strings.Contains(line, "state=") {
			if !strings.Contains(out, line) {
				t.Errorf("parallel run diverges from serial on %q:\n%s", line, out)
			}
		}
	}
}

func TestRunParallelRejectsChaos(t *testing.T) {
	path := writeScenario(t, `{
		"name": "x",
		"devices": [{"id": "d"}],
		"events": [{"type": "tick", "target": "d"}],
		"chaos": {"loss": 0.5}
	}`)
	err := run([]string{"--parallelism", "4", path}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("chaos + parallelism accepted (err=%v)", err)
	}
}

func TestRunBundleScenario(t *testing.T) {
	path := writeScenario(t, `{
		"name": "bundle",
		"badHeatAt": 80,
		"devices": [
			{"id": "n1", "heat": 20},
			{"id": "n2", "heat": 20}
		],
		"events": [{"type": "tick", "target": "*", "repeat": 4}],
		"bundle": {
			"loss": 0.25,
			"corruptPushes": 3,
			"revisions": [
				"policy work priority 1:\n    on tick\n    do run target fleet category work effect heat += 5\n",
				"policy work priority 1:\n    on tick\n    do run target fleet category work effect heat += 10\n"
			]
		}
	}`)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	// Both revisions converged, and the fleet acted on the distributed
	// policy (+10 per tick from revision 2): no per-device sources exist.
	for _, want := range []string{
		"bundle revision 2: 1 policies converged",
		"bundle: revision=2 converged=true",
		"corrupt-rejected=3/3",
		"bundle ledger:",
		"chain verified",
		"n1: active state={heat=60",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunBundleIncompatibilities(t *testing.T) {
	withChaos := writeScenario(t, `{"name":"x","devices":[{"id":"d"}],
		"bundle":{"revisions":[]},"chaos":{"loss":0.5}}`)
	if err := run([]string{withChaos}, os.Stdout); err == nil ||
		!strings.Contains(err.Error(), "bundle") {
		t.Errorf("bundle + chaos accepted (err=%v)", err)
	}
	withSaturation := writeScenario(t, `{"name":"x","devices":[{"id":"d"}],
		"bundle":{"revisions":[]},"saturation":{"queueCapacity":2}}`)
	if err := run([]string{withSaturation}, os.Stdout); err == nil ||
		!strings.Contains(err.Error(), "bundle") {
		t.Errorf("bundle + saturation accepted (err=%v)", err)
	}
	alone := writeScenario(t, `{"name":"x","devices":[{"id":"d"}],
		"bundle":{"revisions":[]}}`)
	if err := run([]string{"--parallelism", "2", alone}, os.Stdout); err == nil ||
		!strings.Contains(err.Error(), "bundle") {
		t.Errorf("bundle + parallelism accepted (err=%v)", err)
	}
}

func TestRunChaosScenario(t *testing.T) {
	path := writeScenario(t, `{
		"name": "chaos",
		"badHeatAt": 80,
		"denialThreshold": 3,
		"devices": [
			{"id": "guarded", "heat": 20,
			 "policies": "policy work: on tick do run category work effect heat += 3"}
		],
		"events": [{"type": "tick", "target": "*", "repeat": 12}],
		"chaos": {"loss": 0.3, "duplication": 0.2, "maxAttempts": 5,
			"crashDevice": "guarded", "crashAtStep": 4, "restartAtStep": 8}
	}`)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "chaos crashed guarded") {
		t.Errorf("crash not reported:\n%s", out)
	}
	if !strings.Contains(out, "chaos recovered guarded from checkpoint") {
		t.Errorf("recovery not reported:\n%s", out)
	}
	if !strings.Contains(out, "chaos: delivered=") {
		t.Errorf("missing chaos summary:\n%s", out)
	}
	if !strings.Contains(out, "recoveries=1") {
		t.Errorf("recovery not counted:\n%s", out)
	}
	if !strings.Contains(out, "chain verified") {
		t.Errorf("audit not verified:\n%s", out)
	}
	if !strings.Contains(out, "guarded: active") {
		t.Errorf("recovered device not active at end:\n%s", out)
	}
}
