// The serve subcommand runs a scenario's fleet as a long-lived
// control plane instead of a batch run: devices, schema and policies
// come from the scenario file, but no scripted event stream plays.
// Commands arrive over POST /v1/commands, each decision is traceable
// via GET /v1/decisions/{traceID}, the hash-chained journal streams
// from GET /v1/audit/tail, and GET /v1/fleet reports live per-device
// state.
//
// Usage:
//
//	skynetsim serve [flags] scenario.json
//
// Flags:
//
//	--addr addr            listen address (default 127.0.0.1:8080)
//	--admission-rate r     per-device command admission rate in
//	                       tokens/second (0 = ungated)
//	--admission-burst b    admission token-bucket burst (default
//	                       max(rate, 1))
//	--sweep-every d        run a watchdog sweep at this wall-clock
//	                       period (0 = no background sweeps)
//
// The scenario's events, chaos, saturation and bundle blocks are
// ignored in serve mode — the live command plane replaces them.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// serveShutdownGrace bounds how long Shutdown waits for in-flight
// requests (and open audit-tail streams) to drain.
const serveShutdownGrace = 5 * time.Second

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skynetsim serve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8080", "control-plane listen address")
	admissionRate := fs.Float64("admission-rate", 0, "per-device command admission rate in tokens/second (0 = ungated)")
	admissionBurst := fs.Float64("admission-burst", 0, "admission token-bucket burst (default max(rate, 1))")
	sweepEvery := fs.Duration("sweep-every", 0, "watchdog sweep period (0 = no background sweeps)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: skynetsim serve [flags] <scenario.json>")
	}
	sc, err := loadScenario(fs.Arg(0))
	if err != nil {
		return err
	}
	for block, present := range map[string]bool{
		"events":     len(sc.Events) > 0,
		"chaos":      sc.Chaos != nil,
		"saturation": sc.Saturation != nil,
		"bundle":     sc.Bundle != nil,
	} {
		if present {
			fmt.Fprintf(out, "serve: ignoring scenario %s block (live command plane replaces it)\n", block)
		}
	}

	metrics := sim.NewMetrics()
	registry := metrics.Registry()
	tracer := telemetry.NewTracer(telemetry.WithTracerMetrics(registry))
	log := audit.New()

	schema, classifier, err := buildStateModel(sc)
	if err != nil {
		return err
	}
	collective, err := core.New(core.Config{
		Name:            sc.Name,
		Audit:           log,
		KillSecret:      []byte("skynetsim-" + sc.Name),
		Classifier:      classifier,
		DenialThreshold: sc.DenialThreshold,
		Telemetry:       registry,
		Tracer:          tracer,
	})
	if err != nil {
		return err
	}
	guardFor := func(spec deviceSpec) guard.Guard {
		if spec.Unguarded {
			return nil
		}
		return core.StandardPipeline(core.SafetyConfig{
			Audit:      log,
			Classifier: classifier,
			Telemetry:  registry,
			Tracer:     tracer,
		})
	}
	if err := buildFleet(sc, schema, collective, guardFor, log, registry, tracer, nil); err != nil {
		return err
	}

	var intake *admission.Controller
	if *admissionRate > 0 {
		intake, err = admission.New(admission.Config{
			Rate:    *admissionRate,
			Burst:   *admissionBurst,
			Metrics: registry,
		})
		if err != nil {
			return err
		}
	}

	srv, err := server.New(server.Config{
		Collective: collective,
		Audit:      log,
		Registry:   registry,
		Tracer:     tracer,
		Admission:  intake,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	base := "http://" + srv.Addr()
	fmt.Fprintf(out, "fleet %q: %d devices under policy control\n", collective.Name(), len(collective.Devices()))
	fmt.Fprintf(out, "control plane on %s\n", base)
	fmt.Fprintf(out, "  POST %s/v1/commands\n", base)
	fmt.Fprintf(out, "  GET  %s/v1/decisions/{traceID}\n", base)
	fmt.Fprintf(out, "  GET  %s/v1/audit/tail?follow=true\n", base)
	fmt.Fprintf(out, "  GET  %s/v1/fleet\n", base)
	fmt.Fprintf(out, "  GET  %s/metrics  /traces  /healthz\n", base)

	// Background watchdog sweeps keep bad-state deactivation live even
	// when no commands arrive.
	sweepDone := make(chan struct{})
	if *sweepEvery > 0 {
		go func() {
			ticker := time.NewTicker(*sweepEvery)
			defer ticker.Stop()
			for {
				select {
				case <-sweepDone:
					return
				case <-ticker.C:
					deactivated, failed := collective.SweepWatchdog()
					for _, id := range deactivated {
						fmt.Fprintf(out, "watchdog: deactivated %s\n", id)
					}
					for _, id := range failed {
						fmt.Fprintf(out, "watchdog: deactivation FAILED for %s\n", id)
					}
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	signal.Stop(stop)
	close(sweepDone)
	fmt.Fprintf(out, "received %s, draining (up to %s)\n", sig, serveShutdownGrace)

	ctx, cancel := context.WithTimeout(context.Background(), serveShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintf(out, "drained; %d audit entries recorded\n", log.Len())
	return nil
}
