package statespace

import (
	"fmt"
	"math"
)

// Sign is the known sign of the partial derivative ∂f/∂xi of the
// goodness function with respect to one state variable (Section VII).
// The zero value means the sign is unknown.
type Sign int

// Sign values. SignUnknown is deliberately the zero value: an
// unspecified variable contributes nothing to the utility.
const (
	SignUnknown Sign = iota
	// SignIncreasing means raising the variable moves the state toward
	// good (∂f/∂xi > 0).
	SignIncreasing
	// SignDecreasing means raising the variable moves the state toward
	// bad (∂f/∂xi < 0).
	SignDecreasing
)

// String returns the name of the sign.
func (s Sign) String() string {
	switch s {
	case SignIncreasing:
		return "increasing"
	case SignDecreasing:
		return "decreasing"
	default:
		return "unknown"
	}
}

// DerivativeModel captures Section VII's approach to ill-defined state
// spaces: the exact good/bad function f(x1,...,xN) may be unavailable,
// but the sign of its partial derivative with respect to some variables
// can be specified. From those signs a utility ("pleasure/pain")
// function is synthesized: pleasure rises as the device approaches good
// states and pain rises as it approaches bad ones.
type DerivativeModel struct {
	schema *Schema
	signs  []Sign
	weight []float64
}

// NewDerivativeModel builds a model over the schema with all signs
// unknown.
func NewDerivativeModel(schema *Schema) *DerivativeModel {
	return &DerivativeModel{
		schema: schema,
		signs:  make([]Sign, schema.Len()),
		weight: make([]float64, schema.Len()),
	}
}

// SetSign declares the derivative sign for the named variable with unit
// weight.
func (m *DerivativeModel) SetSign(name string, s Sign) error {
	return m.SetWeightedSign(name, s, 1)
}

// SetWeightedSign declares the derivative sign for the named variable
// with the given relative weight. Weight must be positive.
func (m *DerivativeModel) SetWeightedSign(name string, s Sign, weight float64) error {
	i, ok := m.schema.Index(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	if weight <= 0 {
		return fmt.Errorf("statespace: weight for %q must be positive, got %g", name, weight)
	}
	m.signs[i] = s
	m.weight[i] = weight
	return nil
}

// Sign returns the declared derivative sign for the named variable.
func (m *DerivativeModel) Sign(name string) Sign {
	i, ok := m.schema.Index(name)
	if !ok {
		return SignUnknown
	}
	return m.signs[i]
}

// Known returns the number of variables with a declared sign.
func (m *DerivativeModel) Known() int {
	n := 0
	for _, s := range m.signs {
		if s != SignUnknown {
			n++
		}
	}
	return n
}

// Utility returns the synthesized pleasure value of a state in [0,1]
// (1 = maximally pleasant / far from bad). Each variable with a known
// sign contributes its normalized position within its bounds, oriented
// by the sign; unknown-sign and unbounded variables contribute nothing.
// If no variable contributes, the utility is a neutral 0.5.
func (m *DerivativeModel) Utility(st State) float64 {
	var sum, totalWeight float64
	for i, s := range m.signs {
		if s == SignUnknown {
			continue
		}
		v := m.schema.Var(i)
		if !v.Bounded() || v.Span() == 0 {
			continue
		}
		pos := (st.Value(i) - v.Min) / v.Span()
		if s == SignDecreasing {
			pos = 1 - pos
		}
		sum += m.weight[i] * pos
		totalWeight += m.weight[i]
	}
	if totalWeight == 0 {
		return 0.5
	}
	return sum / totalWeight
}

// Pain returns 1 − Utility: the anthropological "pain" function of
// Section VII, rising as the device approaches a bad state.
func (m *DerivativeModel) Pain(st State) float64 { return 1 - m.Utility(st) }

// UtilityDelta returns the change in utility moving from one state to
// another. Positive means the move is toward good.
func (m *DerivativeModel) UtilityDelta(from, to State) float64 {
	return m.Utility(to) - m.Utility(from)
}

// PreferNext returns the candidate state with the highest utility, i.e.
// the action outcome a pleasure-maximizing device would choose. It
// returns false if candidates is empty.
func (m *DerivativeModel) PreferNext(candidates []State) (State, bool) {
	if len(candidates) == 0 {
		return State{}, false
	}
	best := candidates[0]
	bestU := m.Utility(best)
	for _, c := range candidates[1:] {
		if u := m.Utility(c); u > bestU {
			best, bestU = c, u
		}
	}
	return best, true
}

// AsSafeness adapts the model's utility into a SafenessMetric.
func (m *DerivativeModel) AsSafeness() SafenessMetric {
	return SafenessFunc(m.Utility)
}

// FitSigns estimates derivative signs empirically from labeled samples:
// for each variable it compares the mean value among good states with
// the mean among bad states and declares the sign when the separation
// exceeds minSeparation (as a fraction of the variable's span). This is
// the machine-learning refinement of the human-provided signs that
// Section VII anticipates.
func FitSigns(schema *Schema, samples []State, classes []Class, minSeparation float64) (*DerivativeModel, error) {
	if len(samples) != len(classes) {
		return nil, fmt.Errorf("statespace: %d samples but %d classes", len(samples), len(classes))
	}
	m := NewDerivativeModel(schema)
	for i := 0; i < schema.Len(); i++ {
		v := schema.Var(i)
		if !v.Bounded() || v.Span() == 0 {
			continue
		}
		var goodSum, badSum float64
		var goodN, badN int
		for j, st := range samples {
			switch classes[j] {
			case ClassGood:
				goodSum += st.Value(i)
				goodN++
			case ClassBad:
				badSum += st.Value(i)
				badN++
			}
		}
		if goodN == 0 || badN == 0 {
			continue
		}
		sep := (goodSum/float64(goodN) - badSum/float64(badN)) / v.Span()
		if math.Abs(sep) < minSeparation {
			continue
		}
		sign := SignIncreasing
		if sep < 0 {
			sign = SignDecreasing
		}
		if err := m.SetWeightedSign(v.Name, sign, math.Abs(sep)); err != nil {
			return nil, err
		}
	}
	return m, nil
}
