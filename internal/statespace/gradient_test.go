package statespace

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDerivativeModelUtility(t *testing.T) {
	s := MustSchema(Var("armed", 0, 1), Var("distance", 0, 100))
	m := NewDerivativeModel(s)
	// Safety falls as "armed" rises, rises as "distance" rises.
	if err := m.SetSign("armed", SignDecreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	if err := m.SetSign("distance", SignIncreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}

	safe, _ := s.NewState(0, 100)
	danger, _ := s.NewState(1, 0)
	if u := m.Utility(safe); math.Abs(u-1) > 1e-12 {
		t.Errorf("Utility(safe) = %g, want 1", u)
	}
	if u := m.Utility(danger); math.Abs(u) > 1e-12 {
		t.Errorf("Utility(danger) = %g, want 0", u)
	}
	if p := m.Pain(danger); math.Abs(p-1) > 1e-12 {
		t.Errorf("Pain(danger) = %g, want 1", p)
	}
	if d := m.UtilityDelta(danger, safe); d <= 0 {
		t.Errorf("UtilityDelta(danger→safe) = %g, want positive", d)
	}
}

func TestDerivativeModelUnknownSignsNeutral(t *testing.T) {
	s := MustSchema(Var("a", 0, 1))
	m := NewDerivativeModel(s)
	if u := m.Utility(s.Origin()); u != 0.5 {
		t.Errorf("Utility with no known signs = %g, want 0.5", u)
	}
	if m.Known() != 0 {
		t.Errorf("Known() = %d, want 0", m.Known())
	}
}

func TestDerivativeModelErrors(t *testing.T) {
	s := MustSchema(Var("a", 0, 1))
	m := NewDerivativeModel(s)
	if err := m.SetSign("nope", SignIncreasing); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("SetSign unknown var error = %v", err)
	}
	if err := m.SetWeightedSign("a", SignIncreasing, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if got := m.Sign("nope"); got != SignUnknown {
		t.Errorf("Sign(nope) = %v, want unknown", got)
	}
}

func TestPreferNext(t *testing.T) {
	s := MustSchema(Var("x", 0, 10))
	m := NewDerivativeModel(s)
	if err := m.SetSign("x", SignIncreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	a, _ := s.NewState(2)
	b, _ := s.NewState(8)
	c, _ := s.NewState(5)
	best, ok := m.PreferNext([]State{a, b, c})
	if !ok || !best.Equal(b) {
		t.Errorf("PreferNext = %v,%v, want state x=8", best, ok)
	}
	if _, ok := m.PreferNext(nil); ok {
		t.Error("PreferNext(nil) reported a best state")
	}
}

func TestSignString(t *testing.T) {
	tests := []struct {
		s    Sign
		want string
	}{
		{s: SignUnknown, want: "unknown"},
		{s: SignIncreasing, want: "increasing"},
		{s: SignDecreasing, want: "decreasing"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Sign(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestFitSignsRecoversDirections(t *testing.T) {
	s := MustSchema(Var("heat", 0, 100), Var("margin", 0, 100))
	// Ground truth: bad when heat high or margin low.
	truth := ClassifierFunc(func(st State) Class {
		if st.MustGet("heat") > 70 || st.MustGet("margin") < 30 {
			return ClassBad
		}
		return ClassGood
	})
	rng := rand.New(rand.NewSource(1))
	var samples []State
	var classes []Class
	for i := 0; i < 500; i++ {
		st, err := s.NewState(rng.Float64()*100, rng.Float64()*100)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		samples = append(samples, st)
		classes = append(classes, truth.Classify(st))
	}
	m, err := FitSigns(s, samples, classes, 0.05)
	if err != nil {
		t.Fatalf("FitSigns: %v", err)
	}
	if got := m.Sign("heat"); got != SignDecreasing {
		t.Errorf("fitted Sign(heat) = %v, want decreasing", got)
	}
	if got := m.Sign("margin"); got != SignIncreasing {
		t.Errorf("fitted Sign(margin) = %v, want increasing", got)
	}
}

func TestFitSignsErrors(t *testing.T) {
	s := MustSchema(Var("a", 0, 1))
	if _, err := FitSigns(s, []State{s.Origin()}, nil, 0.1); err == nil {
		t.Error("mismatched samples/classes accepted")
	}
	// All samples one class: no sign can be fitted, but no error.
	m, err := FitSigns(s, []State{s.Origin()}, []Class{ClassGood}, 0.1)
	if err != nil {
		t.Fatalf("FitSigns: %v", err)
	}
	if m.Known() != 0 {
		t.Errorf("Known() = %d, want 0 with single-class data", m.Known())
	}
}

// Property: utility is monotone in each variable according to its
// declared sign.
func TestUtilityMonotoneProperty(t *testing.T) {
	s := MustSchema(Var("up", 0, 1), Var("down", 0, 1))
	m := NewDerivativeModel(s)
	if err := m.SetSign("up", SignIncreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	if err := m.SetSign("down", SignDecreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		base, err := s.NewState(rng.Float64(), rng.Float64())
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		upMore, err := base.Apply(Delta{"up": 0.1})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if m.Utility(upMore) < m.Utility(base)-1e-12 {
			t.Fatalf("utility fell when increasing-sign variable rose: %v → %v", base, upMore)
		}
		downMore, err := base.Apply(Delta{"down": 0.1})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if m.Utility(downMore) > m.Utility(base)+1e-12 {
			t.Fatalf("utility rose when decreasing-sign variable rose: %v → %v", base, downMore)
		}
	}
}
