package statespace

// Class is the management classification of a state. Per Section V of
// the paper, states are good (normal operation / cannot harm a human),
// bad (can harm a human / needs repair), or neutral.
type Class int

// Classification values. The zero value is deliberately invalid so an
// unset classification is detectable.
const (
	ClassGood Class = iota + 1
	ClassNeutral
	ClassBad
)

// String returns the lowercase name of the class.
func (c Class) String() string {
	switch c {
	case ClassGood:
		return "good"
	case ClassNeutral:
		return "neutral"
	case ClassBad:
		return "bad"
	default:
		return "unknown"
	}
}

// Classifier maps states to classes. It is the function
// f(x1, ..., xN) → {good, neutral, bad} of Section VII.
type Classifier interface {
	Classify(State) Class
}

// ClassifierFunc adapts a function into a Classifier.
type ClassifierFunc func(State) Class

var _ Classifier = ClassifierFunc(nil)

// Classify invokes the function.
func (f ClassifierFunc) Classify(st State) Class { return f(st) }

// RegionClassifier classifies states by membership in explicit good and
// bad regions. Bad regions take precedence over good regions: if a
// state is in both, it is bad — the conservative choice for a safety
// check. States in neither are classified as Default.
type RegionClassifier struct {
	Good    []Region
	Bad     []Region
	Default Class
}

var _ Classifier = (*RegionClassifier)(nil)

// Classify applies the precedence bad > good > default.
func (rc *RegionClassifier) Classify(st State) Class {
	for _, r := range rc.Bad {
		if r.Contains(st) {
			return ClassBad
		}
	}
	for _, r := range rc.Good {
		if r.Contains(st) {
			return ClassGood
		}
	}
	if rc.Default == 0 {
		return ClassNeutral
	}
	return rc.Default
}

// ThresholdClassifier classifies states by a safeness metric: safeness
// at or above GoodAt is good, safeness below BadBelow is bad, anything
// between is neutral.
type ThresholdClassifier struct {
	Metric   SafenessMetric
	GoodAt   float64
	BadBelow float64
}

var _ Classifier = (*ThresholdClassifier)(nil)

// Classify applies the thresholds to the metric.
func (tc *ThresholdClassifier) Classify(st State) Class {
	s := tc.Metric.Safeness(st)
	switch {
	case s < tc.BadBelow:
		return ClassBad
	case s >= tc.GoodAt:
		return ClassGood
	default:
		return ClassNeutral
	}
}
