package statespace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: on an unbounded schema, applying two deltas sequentially
// equals applying their merge (no clamping interference).
func TestApplyCompositionProperty(t *testing.T) {
	s := MustSchema(UnboundedVar("a"), UnboundedVar("b"))
	f := func(a1, b1, a2, b2 float64) bool {
		if anyNaN(a1, b1, a2, b2) {
			return true
		}
		d1 := Delta{"a": a1, "b": b1}
		d2 := Delta{"a": a2, "b": b2}
		seq, err := s.Origin().Apply(d1)
		if err != nil {
			return false
		}
		seq, err = seq.Apply(d2)
		if err != nil {
			return false
		}
		merged, err := s.Origin().Apply(d1.Merge(d2))
		if err != nil {
			return false
		}
		return approxEqual(seq.MustGet("a"), merged.MustGet("a")) &&
			approxEqual(seq.MustGet("b"), merged.MustGet("b"))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("composition violated: %v", err)
	}
}

// Property: clamping keeps every state inside the schema bounds no
// matter the delta.
func TestApplyStaysInBoundsProperty(t *testing.T) {
	s := MustSchema(Var("x", -5, 5), Var("y", 0, 1))
	f := func(dx, dy float64) bool {
		if anyNaN(dx, dy) {
			return true
		}
		st, err := s.Origin().Apply(Delta{"x": dx, "y": dy})
		if err != nil {
			return false
		}
		x, y := st.MustGet("x"), st.MustGet("y")
		return x >= -5 && x <= 5 && y >= 0 && y <= 1
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("bounds violated: %v", err)
	}
}

// Property: distance is a metric on states (symmetry, identity,
// triangle inequality).
func TestDistanceMetricProperty(t *testing.T) {
	s := MustSchema(UnboundedVar("a"), UnboundedVar("b"))
	mkState := func(a, b float64) (State, bool) {
		st, err := s.Origin().Apply(Delta{"a": a, "b": b})
		return st, err == nil
	}
	f := func(a1, b1, a2, b2, a3, b3 float64) bool {
		if anyNaN(a1, b1, a2, b2, a3, b3) || anyInf(a1, b1, a2, b2, a3, b3) {
			return true
		}
		x, ok1 := mkState(a1, b1)
		y, ok2 := mkState(a2, b2)
		z, ok3 := mkState(a3, b3)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		dxy, dyx := x.DistanceTo(y), y.DistanceTo(x)
		if !approxEqual(dxy, dyx) {
			return false
		}
		if x.DistanceTo(x) != 0 {
			return false
		}
		// Triangle inequality with fp slack.
		return x.DistanceTo(z) <= dxy+y.DistanceTo(z)+1e-9*(1+dxy)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("metric axioms violated: %v", err)
	}
}

// Property: the RegionClassifier never reports good for a state inside
// a bad region, regardless of the good regions.
func TestBadPrecedenceProperty(t *testing.T) {
	s := MustSchema(Var("x", 0, 100), Var("y", 0, 100))
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		badLo := rng.Float64() * 80
		badHi := badLo + rng.Float64()*20
		bad := NewBox("bad", map[string]Interval{"x": {Lo: badLo, Hi: badHi}})
		good := NewBox("good", map[string]Interval{
			"x": {Lo: 0, Hi: 100},
			"y": {Lo: 0, Hi: 100},
		})
		rc := &RegionClassifier{Good: []Region{good}, Bad: []Region{bad}}
		st, err := s.NewState(badLo+rng.Float64()*(badHi-badLo), rng.Float64()*100)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		if got := rc.Classify(st); got != ClassBad {
			t.Fatalf("state %v inside bad region classified %v", st, got)
		}
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

func anyInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*(1+scale)
}
