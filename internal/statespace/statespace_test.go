package statespace

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Var("temp", 0, 100),
		Var("speed", 0, 50),
		UnboundedVar("offset"),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaErrors(t *testing.T) {
	tests := []struct {
		name string
		vars []Variable
	}{
		{name: "empty", vars: nil},
		{name: "duplicate", vars: []Variable{Var("a", 0, 1), Var("a", 0, 2)}},
		{name: "empty name", vars: []Variable{Var("", 0, 1)}},
		{name: "inverted range", vars: []Variable{Var("a", 5, 1)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSchema(tt.vars...); err == nil {
				t.Fatalf("NewSchema(%v) succeeded, want error", tt.vars)
			}
		})
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if got := s.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	if got := s.Var(1).Name; got != "speed" {
		t.Errorf("Var(1).Name = %q, want speed", got)
	}
	if i, ok := s.Index("offset"); !ok || i != 2 {
		t.Errorf("Index(offset) = %d,%v, want 2,true", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) found a variable, want none")
	}
	want := []string{"temp", "speed", "offset"}
	got := s.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewState(t *testing.T) {
	s := testSchema(t)
	st, err := s.NewState(20, 10, -5)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	if v, _ := st.Get("temp"); v != 20 {
		t.Errorf("temp = %g, want 20", v)
	}
	if _, err := s.NewState(20, 10); err == nil {
		t.Error("NewState with 2 values for 3-variable schema succeeded")
	}
	if _, err := s.NewState(200, 10, 0); err == nil {
		t.Error("NewState with out-of-range value succeeded")
	}
}

func TestStateFromMap(t *testing.T) {
	s := testSchema(t)
	st, err := s.StateFromMap(map[string]float64{"temp": 42})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	if v, _ := st.Get("temp"); v != 42 {
		t.Errorf("temp = %g, want 42", v)
	}
	if v, _ := st.Get("speed"); v != 0 {
		t.Errorf("speed = %g, want origin 0", v)
	}
	if _, err := s.StateFromMap(map[string]float64{"nope": 1}); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("StateFromMap unknown var error = %v, want ErrUnknownVariable", err)
	}
}

func TestStateWithClampsAndIsImmutable(t *testing.T) {
	s := testSchema(t)
	st := s.Origin()
	st2, err := st.With("temp", 500)
	if err != nil {
		t.Fatalf("With: %v", err)
	}
	if v, _ := st2.Get("temp"); v != 100 {
		t.Errorf("clamped temp = %g, want 100", v)
	}
	if v, _ := st.Get("temp"); v != 0 {
		t.Errorf("original state mutated: temp = %g, want 0", v)
	}
}

func TestStateApply(t *testing.T) {
	s := testSchema(t)
	st := s.Origin()
	st2, err := st.Apply(Delta{"temp": 30, "speed": 10})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if v, _ := st2.Get("temp"); v != 30 {
		t.Errorf("temp = %g, want 30", v)
	}
	// Clamping on apply.
	st3, err := st2.Apply(Delta{"speed": 1000})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if v, _ := st3.Get("speed"); v != 50 {
		t.Errorf("speed = %g, want clamped 50", v)
	}
	if _, err := st.Apply(Delta{"nope": 1}); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("Apply unknown var error = %v, want ErrUnknownVariable", err)
	}
}

func TestStateEqualAndDistance(t *testing.T) {
	s := testSchema(t)
	a, _ := s.NewState(3, 4, 0)
	b, _ := s.NewState(0, 0, 0)
	if !a.Equal(a) {
		t.Error("state not equal to itself")
	}
	if a.Equal(b) {
		t.Error("distinct states reported equal")
	}
	if d := a.DistanceTo(b); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %g, want 5", d)
	}
	other := MustSchema(Var("x", 0, 1))
	if d := a.DistanceTo(other.Origin()); !math.IsNaN(d) {
		t.Errorf("cross-schema distance = %g, want NaN", d)
	}
}

func TestStateStringAndMap(t *testing.T) {
	s := testSchema(t)
	st, _ := s.NewState(1, 2, 3)
	if got := st.String(); !strings.Contains(got, "temp=1") || !strings.Contains(got, "speed=2") {
		t.Errorf("String() = %q, missing variables", got)
	}
	m := st.Map()
	if m["offset"] != 3 {
		t.Errorf("Map()[offset] = %g, want 3", m["offset"])
	}
	var zero State
	if zero.Valid() {
		t.Error("zero State reports valid")
	}
	if got := zero.String(); got != "{invalid}" {
		t.Errorf("zero State String() = %q", got)
	}
}

func TestDeltaMergeScaleMagnitude(t *testing.T) {
	d := Delta{"a": 1, "b": 2}
	m := d.Merge(Delta{"b": 3, "c": -1})
	if m["a"] != 1 || m["b"] != 5 || m["c"] != -1 {
		t.Errorf("Merge = %v", m)
	}
	sc := d.Scale(2)
	if sc["a"] != 2 || sc["b"] != 4 {
		t.Errorf("Scale = %v", sc)
	}
	d2 := Delta{"x": 3, "y": 4}
	if got := d2.Magnitude(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Magnitude = %g, want 5", got)
	}
	if got := (Delta{"b": 1, "a": 2}).String(); got != "(a+2, b+1)" {
		t.Errorf("Delta.String() = %q, want deterministic sorted output", got)
	}
}

func TestVariableHelpers(t *testing.T) {
	v := Var("t", 0, 10)
	if !v.Bounded() || v.Span() != 10 {
		t.Errorf("Var bounded=%v span=%g", v.Bounded(), v.Span())
	}
	u := UnboundedVar("u")
	if u.Bounded() {
		t.Error("UnboundedVar reports bounded")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema with bad input did not panic")
		}
	}()
	MustSchema()
}
