package statespace

import "fmt"

// Trajectory is an ordered sequence of states visited by a device.
// Section V notes that some states "may be dangerous in that they lead
// to sequences of states with some cumulative effects that are
// undesirable"; Trajectory provides the bookkeeping to detect such
// sequences.
//
// Storage is columnar (struct-of-arrays): all recorded values live in
// one flat float64 slab, row i at vals[i*width : (i+1)*width], instead
// of one boxed State per step. Appending copies the state's values
// into the slab, so callers may append views of mutable scratch
// buffers. By default a trajectory is unbounded and append-only; a
// trajectory built with NewRingTrajectory keeps only the most recent
// bound states (enough for windowed decline detection at mega-fleet
// scale, where retaining full histories for 10^5..10^6 devices is the
// dominant memory cost).
type Trajectory struct {
	schema *Schema
	vals   []float64 // flat slab, row-major
	count  int       // states recorded (≤ bound when ring)
	bound  int       // ring capacity in states; 0 = unbounded
	head   int       // ring: row index of the oldest state
}

// NewTrajectory returns an empty, unbounded trajectory with capacity
// hint n states.
func NewTrajectory(n int) *Trajectory {
	t := &Trajectory{}
	if n > 0 {
		t.vals = make([]float64, 0, n)
	}
	return t
}

// NewRingTrajectory returns a trajectory that retains only the most
// recent bound states. bound must be at least 2 (one transition).
func NewRingTrajectory(bound int) *Trajectory {
	if bound < 2 {
		bound = 2
	}
	return &Trajectory{bound: bound}
}

// width returns the row width, 0 before the first append.
func (t *Trajectory) width() int {
	if t.schema == nil {
		return 0
	}
	return t.schema.Len()
}

// row returns the slab row (not logical index) of the i-th recorded
// state, i in [0, count).
func (t *Trajectory) row(i int) []float64 {
	w := t.width()
	r := i
	if t.bound > 0 {
		r = (t.head + i) % t.bound
	}
	return t.vals[r*w : (r+1)*w : (r+1)*w]
}

// view returns the i-th state as a zero-copy view of the slab. In ring
// mode the view is only valid until the row is overwritten; internal
// scans use it immediately, and the exported accessors copy when the
// trajectory is bounded.
func (t *Trajectory) view(i int) State {
	return State{schema: t.schema, values: t.row(i)}
}

// Append records the next state by copying its values into the slab.
// States of mismatched schemas are rejected.
func (t *Trajectory) Append(st State) error {
	if !st.Valid() {
		return fmt.Errorf("statespace: cannot append invalid state")
	}
	if t.schema == nil {
		t.schema = st.schema
		if t.bound > 0 {
			t.vals = make([]float64, t.bound*t.schema.Len())
		}
	} else if t.schema != st.schema {
		return fmt.Errorf("statespace: trajectory schema mismatch")
	}
	w := t.width()
	if t.bound == 0 {
		t.vals = append(t.vals, st.values...)
		t.count++
		return nil
	}
	if t.count < t.bound {
		copy(t.vals[t.count*w:(t.count+1)*w], st.values)
		t.count++
		return nil
	}
	// Full ring: overwrite the oldest row and advance the head.
	copy(t.vals[t.head*w:(t.head+1)*w], st.values)
	t.head = (t.head + 1) % t.bound
	return nil
}

// Len returns the number of retained states.
func (t *Trajectory) Len() int { return t.count }

// Bound returns the ring capacity, or 0 for an unbounded trajectory.
func (t *Trajectory) Bound() int { return t.bound }

// At returns the i-th retained state (0 = oldest). It panics if i is
// out of range, like a slice index. Unbounded trajectories return a
// zero-copy view (rows are never rewritten); ring trajectories return
// a copy so the state stays valid after later appends.
func (t *Trajectory) At(i int) State {
	if i < 0 || i >= t.count {
		panic(fmt.Sprintf("statespace: trajectory index %d out of range [0,%d)", i, t.count))
	}
	if t.bound == 0 {
		return t.view(i)
	}
	vs := make([]float64, t.width())
	copy(vs, t.row(i))
	return State{schema: t.schema, values: vs}
}

// Last returns the most recent state and whether one exists. Ring
// trajectories return a copy, as with At.
func (t *Trajectory) Last() (State, bool) {
	if t.count == 0 {
		return State{}, false
	}
	return t.At(t.count - 1), true
}

// States returns the retained states, oldest first. Unbounded
// trajectories return zero-copy views of the slab; ring trajectories
// return copies.
func (t *Trajectory) States() []State {
	out := make([]State, t.count)
	for i := range out {
		out[i] = t.At(i)
	}
	return out
}

// ClassCounts tallies the classification of every retained state.
func (t *Trajectory) ClassCounts(c Classifier) map[Class]int {
	counts := make(map[Class]int, 3)
	for i := 0; i < t.count; i++ {
		counts[c.Classify(t.view(i))]++
	}
	return counts
}

// FirstBad returns the index of the first retained state classified
// bad, or -1.
func (t *Trajectory) FirstBad(c Classifier) int {
	for i := 0; i < t.count; i++ {
		if c.Classify(t.view(i)) == ClassBad {
			return i
		}
	}
	return -1
}

// MonotoneDecline reports whether the last window states show a strictly
// declining safeness under the metric — the signature of a cumulative
// drift toward a bad state even while every individual state remains
// formally good or neutral. It returns false if fewer than window+1
// states are retained or window < 1.
func (t *Trajectory) MonotoneDecline(m SafenessMetric, window int) bool {
	if window < 1 || t.count < window+1 {
		return false
	}
	start := t.count - window - 1
	prev := m.Safeness(t.view(start))
	for i := start + 1; i < t.count; i++ {
		s := m.Safeness(t.view(i))
		if s >= prev {
			return false
		}
		prev = s
	}
	return true
}

// CumulativeDrop returns the total safeness lost over the last window
// transitions, clamped at zero when safeness improved. A large drop is
// the quantitative form of an "undesirable cumulative effect".
func (t *Trajectory) CumulativeDrop(m SafenessMetric, window int) float64 {
	if window < 1 || t.count < 2 {
		return 0
	}
	start := t.count - window - 1
	if start < 0 {
		start = 0
	}
	drop := m.Safeness(t.view(start)) - m.Safeness(t.view(t.count-1))
	if drop < 0 {
		return 0
	}
	return drop
}
