package statespace

import "fmt"

// Trajectory is an ordered sequence of states visited by a device.
// Section V notes that some states "may be dangerous in that they lead
// to sequences of states with some cumulative effects that are
// undesirable"; Trajectory provides the bookkeeping to detect such
// sequences.
type Trajectory struct {
	states []State
}

// NewTrajectory returns an empty trajectory with capacity for n states.
func NewTrajectory(n int) *Trajectory {
	return &Trajectory{states: make([]State, 0, n)}
}

// Append records the next state. States of mismatched schemas are
// rejected.
func (t *Trajectory) Append(st State) error {
	if !st.Valid() {
		return fmt.Errorf("statespace: cannot append invalid state")
	}
	if len(t.states) > 0 && t.states[0].Schema() != st.Schema() {
		return fmt.Errorf("statespace: trajectory schema mismatch")
	}
	t.states = append(t.states, st)
	return nil
}

// Len returns the number of recorded states.
func (t *Trajectory) Len() int { return len(t.states) }

// At returns the i-th state. It panics if i is out of range, like a
// slice index.
func (t *Trajectory) At(i int) State { return t.states[i] }

// Last returns the most recent state and whether one exists.
func (t *Trajectory) Last() (State, bool) {
	if len(t.states) == 0 {
		return State{}, false
	}
	return t.states[len(t.states)-1], true
}

// States returns a copy of the recorded states.
func (t *Trajectory) States() []State {
	out := make([]State, len(t.states))
	copy(out, t.states)
	return out
}

// ClassCounts tallies the classification of every recorded state.
func (t *Trajectory) ClassCounts(c Classifier) map[Class]int {
	counts := make(map[Class]int, 3)
	for _, st := range t.states {
		counts[c.Classify(st)]++
	}
	return counts
}

// FirstBad returns the index of the first state classified bad, or -1.
func (t *Trajectory) FirstBad(c Classifier) int {
	for i, st := range t.states {
		if c.Classify(st) == ClassBad {
			return i
		}
	}
	return -1
}

// MonotoneDecline reports whether the last window states show a strictly
// declining safeness under the metric — the signature of a cumulative
// drift toward a bad state even while every individual state remains
// formally good or neutral. It returns false if fewer than window+1
// states are recorded or window < 1.
func (t *Trajectory) MonotoneDecline(m SafenessMetric, window int) bool {
	if window < 1 || len(t.states) < window+1 {
		return false
	}
	start := len(t.states) - window - 1
	prev := m.Safeness(t.states[start])
	for _, st := range t.states[start+1:] {
		s := m.Safeness(st)
		if s >= prev {
			return false
		}
		prev = s
	}
	return true
}

// CumulativeDrop returns the total safeness lost over the last window
// transitions, clamped at zero when safeness improved. A large drop is
// the quantitative form of an "undesirable cumulative effect".
func (t *Trajectory) CumulativeDrop(m SafenessMetric, window int) float64 {
	if window < 1 || len(t.states) < 2 {
		return 0
	}
	start := len(t.states) - window - 1
	if start < 0 {
		start = 0
	}
	drop := m.Safeness(t.states[start]) - m.Safeness(t.states[len(t.states)-1])
	if drop < 0 {
		return 0
	}
	return drop
}
