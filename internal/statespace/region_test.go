package statespace

import (
	"strings"
	"testing"
)

func TestBoxContains(t *testing.T) {
	s := testSchema(t)
	hot := NewBox("hot", map[string]Interval{"temp": {Lo: 80, Hi: 100}})
	fast := NewBox("fast", map[string]Interval{"speed": {Lo: 40, Hi: 50}})
	hotAndFast := NewBox("hotfast", map[string]Interval{
		"temp":  {Lo: 80, Hi: 100},
		"speed": {Lo: 40, Hi: 50},
	})

	tests := []struct {
		name   string
		region Region
		temp   float64
		speed  float64
		want   bool
	}{
		{name: "inside hot", region: hot, temp: 90, speed: 0, want: true},
		{name: "below hot", region: hot, temp: 79.9, speed: 0, want: false},
		{name: "boundary inclusive", region: hot, temp: 80, speed: 0, want: true},
		{name: "fast only", region: fast, temp: 0, speed: 45, want: true},
		{name: "conjunction holds", region: hotAndFast, temp: 85, speed: 45, want: true},
		{name: "conjunction partial", region: hotAndFast, temp: 85, speed: 10, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st, err := s.NewState(tt.temp, tt.speed, 0)
			if err != nil {
				t.Fatalf("NewState: %v", err)
			}
			if got := tt.region.Contains(st); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", st, got, tt.want)
			}
		})
	}
}

func TestBoxUnknownVariableFailsConstraint(t *testing.T) {
	s := testSchema(t)
	r := NewBox("r", map[string]Interval{"missing": {Lo: 0, Hi: 1}})
	if r.Contains(s.Origin()) {
		t.Error("box over unknown variable contained a state")
	}
}

func TestBoxDescribeDeterministic(t *testing.T) {
	r := NewBox("danger", map[string]Interval{
		"b": {Lo: 0, Hi: 1},
		"a": {Lo: 2, Hi: 3},
	})
	got := r.Describe()
	if want := "danger[2<=a<=3, 0<=b<=1]"; got != want {
		t.Errorf("Describe() = %q, want %q", got, want)
	}
}

func TestCompositeRegions(t *testing.T) {
	s := testSchema(t)
	hot := NewBox("hot", map[string]Interval{"temp": {Lo: 80, Hi: 100}})
	fast := NewBox("fast", map[string]Interval{"speed": {Lo: 40, Hi: 50}})

	hotState, _ := s.NewState(90, 0, 0)
	fastState, _ := s.NewState(0, 45, 0)
	calmState := s.Origin()

	u := Union{hot, fast}
	if !u.Contains(hotState) || !u.Contains(fastState) || u.Contains(calmState) {
		t.Error("Union membership wrong")
	}
	x := Intersection{hot, fast}
	both, _ := s.NewState(90, 45, 0)
	if !x.Contains(both) || x.Contains(hotState) {
		t.Error("Intersection membership wrong")
	}
	c := Complement{Of: hot}
	if c.Contains(hotState) || !c.Contains(calmState) {
		t.Error("Complement membership wrong")
	}
	if Intersection(nil).Contains(calmState) != true {
		t.Error("empty Intersection should contain everything")
	}
	if Union(nil).Contains(calmState) {
		t.Error("empty Union should contain nothing")
	}
	for _, d := range []string{u.Describe(), x.Describe(), c.Describe()} {
		if d == "" {
			t.Error("empty Describe()")
		}
	}
}

func TestFuncRegion(t *testing.T) {
	s := testSchema(t)
	r := FuncRegion{Name: "diag", Fn: func(st State) bool {
		return st.MustGet("temp") > st.MustGet("speed")
	}}
	hi, _ := s.NewState(10, 5, 0)
	lo, _ := s.NewState(5, 10, 0)
	if !r.Contains(hi) || r.Contains(lo) {
		t.Error("FuncRegion predicate not applied")
	}
	var empty FuncRegion
	if empty.Contains(hi) {
		t.Error("nil-Fn FuncRegion contained a state")
	}
}

func TestRegionClassifierPrecedence(t *testing.T) {
	s := testSchema(t)
	good := NewBox("good", map[string]Interval{"temp": {Lo: 0, Hi: 100}})
	bad := NewBox("bad", map[string]Interval{"temp": {Lo: 90, Hi: 100}})
	rc := &RegionClassifier{Good: []Region{good}, Bad: []Region{bad}}

	overlap, _ := s.NewState(95, 0, 0)
	if got := rc.Classify(overlap); got != ClassBad {
		t.Errorf("overlap class = %v, want bad (bad takes precedence)", got)
	}
	inside, _ := s.NewState(50, 0, 0)
	if got := rc.Classify(inside); got != ClassGood {
		t.Errorf("inside class = %v, want good", got)
	}
}

func TestRegionClassifierDefault(t *testing.T) {
	s := testSchema(t)
	rc := &RegionClassifier{}
	if got := rc.Classify(s.Origin()); got != ClassNeutral {
		t.Errorf("default class = %v, want neutral", got)
	}
	rc.Default = ClassGood
	if got := rc.Classify(s.Origin()); got != ClassGood {
		t.Errorf("configured default class = %v, want good", got)
	}
}

func TestThresholdClassifier(t *testing.T) {
	metric := SafenessFunc(func(st State) float64 { return st.MustGet("temp") / 100 })
	tc := &ThresholdClassifier{Metric: metric, GoodAt: 0.8, BadBelow: 0.2}
	s := testSchema(t)

	tests := []struct {
		temp float64
		want Class
	}{
		{temp: 90, want: ClassGood},
		{temp: 80, want: ClassGood},
		{temp: 50, want: ClassNeutral},
		{temp: 19, want: ClassBad},
	}
	for _, tt := range tests {
		st, _ := s.NewState(tt.temp, 0, 0)
		if got := tc.Classify(st); got != tt.want {
			t.Errorf("Classify(temp=%g) = %v, want %v", tt.temp, got, tt.want)
		}
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{c: ClassGood, want: "good"},
		{c: ClassNeutral, want: "neutral"},
		{c: ClassBad, want: "bad"},
		{c: Class(0), want: "unknown"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestRender2D(t *testing.T) {
	s := MustSchema(Var("x", 0, 10), Var("y", 0, 10))
	bad := NewBox("bad", map[string]Interval{"x": {Lo: 8, Hi: 10}})
	rc := &RegionClassifier{Bad: []Region{bad}, Default: ClassGood}
	out, err := Render2D(s, rc, s.Origin(), RenderOptions{XVar: "x", YVar: "y", Width: 20, Height: 5})
	if err != nil {
		t.Fatalf("Render2D: %v", err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("render missing bad/good glyphs:\n%s", out)
	}
	if _, err := Render2D(s, rc, s.Origin(), RenderOptions{XVar: "nope", YVar: "y"}); err == nil {
		t.Error("Render2D with unknown variable succeeded")
	}
}
