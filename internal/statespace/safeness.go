package statespace

import "math"

// SafenessMetric assigns each state a safeness value; higher is safer.
// Section V: "one could consider a 'safeness' (or risk) metric
// associated with each state. The safeness metric would induce a
// partial ordering on the set of states." Conventionally the value lies
// in [0,1] but the package does not enforce that.
type SafenessMetric interface {
	Safeness(State) float64
}

// SafenessFunc adapts a function into a SafenessMetric.
type SafenessFunc func(State) float64

var _ SafenessMetric = SafenessFunc(nil)

// Safeness invokes the function.
func (f SafenessFunc) Safeness(st State) float64 { return f(st) }

// DistanceSafeness scores a state by its normalized distance from the
// nearest bad region boundary, approximated by sampling the state's
// membership: states inside a bad region score 0; otherwise safeness
// rises with the margin to the closest bad box along each axis.
type DistanceSafeness struct {
	Bad []Region
	// Horizon is the distance at which safeness saturates to 1.
	// Zero means a horizon of 1.
	Horizon float64
}

var _ SafenessMetric = (*DistanceSafeness)(nil)

// Safeness returns 0 for states inside any bad region and otherwise
// min(1, margin/Horizon) where margin is the smallest axis-aligned
// distance from the state to any bad Box. Non-box regions contribute
// only their membership test.
func (d *DistanceSafeness) Safeness(st State) float64 {
	horizon := d.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	margin := math.Inf(1)
	for _, r := range d.Bad {
		if r.Contains(st) {
			return 0
		}
		box, ok := r.(*Box)
		if !ok {
			continue
		}
		if m := boxMargin(box, st); m < margin {
			margin = m
		}
	}
	if math.IsInf(margin, 1) {
		return 1
	}
	return math.Min(1, margin/horizon)
}

// boxMargin returns the smallest distance from the state to the box
// along any single axis (the state is known to be outside the box).
func boxMargin(b *Box, st State) float64 {
	margin := math.Inf(1)
	for name, iv := range b.constraints {
		v, err := st.Get(name)
		if err != nil {
			continue
		}
		var dist float64
		switch {
		case v < iv.Lo:
			dist = iv.Lo - v
		case v > iv.Hi:
			dist = v - iv.Hi
		default:
			continue // inside on this axis; another axis separates us
		}
		if dist < margin {
			margin = dist
		}
	}
	return margin
}

// Ordering is the result of comparing two states under a partial order.
type Ordering int

// Ordering values.
const (
	OrderWorse Ordering = iota + 1
	OrderEqual
	OrderBetter
	OrderIncomparable
)

// String returns the name of the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderWorse:
		return "worse"
	case OrderEqual:
		return "equal"
	case OrderBetter:
		return "better"
	case OrderIncomparable:
		return "incomparable"
	default:
		return "unknown"
	}
}

// PartialOrder compares states under several safeness metrics at once:
// a state is better than another only if it is at least as safe under
// every metric and strictly safer under at least one. With a single
// metric this degenerates to a total order; with several it is the
// partial ordering of Section V.
type PartialOrder struct {
	Metrics []SafenessMetric
	// Epsilon is the tolerance within which two safeness values are
	// considered equal.
	Epsilon float64
}

// Compare returns how a stands relative to b.
func (p *PartialOrder) Compare(a, b State) Ordering {
	better, worse := false, false
	for _, m := range p.Metrics {
		sa, sb := m.Safeness(a), m.Safeness(b)
		switch {
		case sa > sb+p.Epsilon:
			better = true
		case sa < sb-p.Epsilon:
			worse = true
		}
	}
	switch {
	case better && worse:
		return OrderIncomparable
	case better:
		return OrderBetter
	case worse:
		return OrderWorse
	default:
		return OrderEqual
	}
}

// Best returns the states from candidates that are not dominated by any
// other candidate (the Pareto frontier under the metrics). The paper:
// "We would like the system to move to states with the highest safeness
// metric. In cases where this is not possible, one can choose the next
// best state."
func (p *PartialOrder) Best(candidates []State) []State {
	var best []State
	for i, c := range candidates {
		dominated := false
		for j, other := range candidates {
			if i == j {
				continue
			}
			if p.Compare(other, c) == OrderBetter {
				dominated = true
				break
			}
		}
		if !dominated {
			best = append(best, c)
		}
	}
	return best
}
