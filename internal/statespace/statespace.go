// Package statespace models device state as a point in an N-dimensional
// space of named variables, following Section V of the paper: a device is
// characterized by the values of a set of variables, each representing an
// attribute of the configuration of its sensors, actuators, or other
// aspects of the device.
//
// The package provides:
//
//   - Schema / State / Delta: the state algebra itself.
//   - Region and Classifier: partitioning the space into good, neutral and
//     bad states (Figure 3 of the paper).
//   - SafenessMetric and the partial order it induces.
//   - DerivativeModel: the Section VII treatment of ill-defined state
//     spaces, where only the sign of the partial derivatives of the
//     goodness function is known, yielding a pain/pleasure utility.
//   - Trajectory: sequences of states with cumulative-effect detection.
package statespace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// ErrUnknownVariable is returned when a state or delta references a
// variable that is not part of the schema.
var ErrUnknownVariable = errors.New("statespace: unknown variable")

// Variable describes one dimension of a state space. Min and Max bound
// the legal values of the variable; use math.Inf for unbounded
// dimensions.
type Variable struct {
	Name string
	Min  float64
	Max  float64
	Unit string
}

// Bounded reports whether both ends of the variable's range are finite.
func (v Variable) Bounded() bool {
	return !math.IsInf(v.Min, -1) && !math.IsInf(v.Max, 1)
}

// Span returns the width of the variable's range. It is +Inf for
// unbounded variables.
func (v Variable) Span() float64 {
	return v.Max - v.Min
}

// Var is a convenience constructor for a bounded variable.
func Var(name string, min, max float64) Variable {
	return Variable{Name: name, Min: min, Max: max}
}

// UnboundedVar is a convenience constructor for a variable with an
// unrestricted range.
func UnboundedVar(name string) Variable {
	return Variable{Name: name, Min: math.Inf(-1), Max: math.Inf(1)}
}

// Schema is an ordered, immutable set of variables defining a state
// space. All states in the space share one schema, which lets State be a
// compact value type.
type Schema struct {
	vars  []Variable
	index map[string]int
}

// NewSchema builds a schema from the given variables. It returns an
// error if a variable name repeats, is empty, or has an inverted range.
func NewSchema(vars ...Variable) (*Schema, error) {
	if len(vars) == 0 {
		return nil, errors.New("statespace: schema requires at least one variable")
	}
	s := &Schema{
		vars:  make([]Variable, len(vars)),
		index: make(map[string]int, len(vars)),
	}
	copy(s.vars, vars)
	for i, v := range s.vars {
		if v.Name == "" {
			return nil, fmt.Errorf("statespace: variable %d has empty name", i)
		}
		if v.Min > v.Max {
			return nil, fmt.Errorf("statespace: variable %q has inverted range [%g,%g]", v.Name, v.Min, v.Max)
		}
		if _, dup := s.index[v.Name]; dup {
			return nil, fmt.Errorf("statespace: duplicate variable %q", v.Name)
		}
		s.index[v.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// package-level test fixtures and program initialization where a bad
// schema is a programming error.
func MustSchema(vars ...Variable) *Schema {
	s, err := NewSchema(vars...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of variables in the schema.
func (s *Schema) Len() int { return len(s.vars) }

// Var returns the i-th variable. It panics if i is out of range, like a
// slice index.
func (s *Schema) Var(i int) Variable { return s.vars[i] }

// Index returns the position of the named variable and whether it
// exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the variable names in schema order. The returned slice
// is a copy.
func (s *Schema) Names() []string {
	names := make([]string, len(s.vars))
	for i, v := range s.vars {
		names[i] = v.Name
	}
	return names
}

// Origin returns the state with every variable clamped-into-range as
// close to zero as its bounds allow.
func (s *Schema) Origin() State {
	values := make([]float64, len(s.vars))
	for i, v := range s.vars {
		values[i] = clamp(0, v.Min, v.Max)
	}
	return State{schema: s, values: values}
}

// NewState builds a state from values given in schema order. The number
// of values must match the schema length; values outside a variable's
// range are rejected.
func (s *Schema) NewState(values ...float64) (State, error) {
	if len(values) != len(s.vars) {
		return State{}, fmt.Errorf("statespace: got %d values for %d-variable schema", len(values), len(s.vars))
	}
	vs := make([]float64, len(values))
	copy(vs, values)
	for i, v := range vs {
		if v < s.vars[i].Min || v > s.vars[i].Max {
			return State{}, fmt.Errorf("statespace: value %g for %q outside range [%g,%g]",
				v, s.vars[i].Name, s.vars[i].Min, s.vars[i].Max)
		}
	}
	return State{schema: s, values: vs}, nil
}

// StateFromMap builds a state from named values. Variables missing from
// the map take the schema origin value for that dimension; unknown names
// are an error. Named values are clamped into range like With. The state
// is built in one allocation regardless of how many values are set —
// this is the per-device construction path for whole fleets.
func (s *Schema) StateFromMap(values map[string]float64) (State, error) {
	vs := make([]float64, len(s.vars))
	for i, v := range s.vars {
		vs[i] = clamp(0, v.Min, v.Max)
	}
	for name, v := range values {
		i, ok := s.index[name]
		if !ok {
			return State{}, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
		}
		vs[i] = clamp(v, s.vars[i].Min, s.vars[i].Max)
	}
	return State{schema: s, values: vs}, nil
}

// State is an immutable point in a state space. The zero State is
// invalid; obtain states from a Schema.
type State struct {
	schema *Schema
	values []float64
}

// Valid reports whether the state belongs to a schema.
func (st State) Valid() bool { return st.schema != nil }

// Schema returns the schema the state belongs to.
func (st State) Schema() *Schema { return st.schema }

// Value returns the i-th variable's value. It panics if i is out of
// range, like a slice index.
func (st State) Value(i int) float64 { return st.values[i] }

// Get returns the value of the named variable.
func (st State) Get(name string) (float64, error) {
	i, ok := st.schema.Index(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	return st.values[i], nil
}

// MustGet is like Get but returns 0 for unknown variables. It is useful
// in expression evaluation contexts where absence means zero.
func (st State) MustGet(name string) float64 {
	v, err := st.Get(name)
	if err != nil {
		return 0
	}
	return v
}

// With returns a copy of the state with the named variable set to v,
// clamped into the variable's range.
func (st State) With(name string, v float64) (State, error) {
	i, ok := st.schema.Index(name)
	if !ok {
		return State{}, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	vs := make([]float64, len(st.values))
	copy(vs, st.values)
	vs[i] = clamp(v, st.schema.vars[i].Min, st.schema.vars[i].Max)
	return State{schema: st.schema, values: vs}, nil
}

// Apply returns the state reached by adding the delta to this state.
// Values are clamped into each variable's range; unknown variables in
// the delta are an error.
func (st State) Apply(d Delta) (State, error) {
	vs := make([]float64, len(st.values))
	copy(vs, st.values)
	for name, dv := range d {
		i, ok := st.schema.Index(name)
		if !ok {
			return State{}, fmt.Errorf("%w: %q", ErrUnknownVariable, name)
		}
		vs[i] = clamp(vs[i]+dv, st.schema.vars[i].Min, st.schema.vars[i].Max)
	}
	return State{schema: st.schema, values: vs}, nil
}

// Clone returns a state with its own freshly-allocated backing array.
// Use it to snapshot a state view whose backing storage (a Vector or
// Scratch buffer) may be mutated later.
func (st State) Clone() State {
	if st.schema == nil {
		return State{}
	}
	vs := make([]float64, len(st.values))
	copy(vs, st.values)
	return State{schema: st.schema, values: vs}
}

// CloneInto is Clone backed by a caller-owned buffer: the copy's
// values live in buf (grown if needed), and the possibly-grown buffer
// is returned for reuse. The clone is only valid until the caller
// reuses buf, so this suits transient pins (e.g. holding the
// event-time state across a multi-action commit), not retained state.
func (st State) CloneInto(buf []float64) (State, []float64) {
	if st.schema == nil {
		return State{}, buf
	}
	buf = append(buf[:0], st.values...)
	return State{schema: st.schema, values: buf}, buf
}

// Values returns a copy of the state's values in schema order.
func (st State) Values() []float64 {
	vs := make([]float64, len(st.values))
	copy(vs, st.values)
	return vs
}

// Map returns the state as a name→value map.
func (st State) Map() map[string]float64 {
	m := make(map[string]float64, len(st.values))
	for i, v := range st.values {
		m[st.schema.vars[i].Name] = v
	}
	return m
}

// Equal reports whether two states share a schema and have identical
// values.
func (st State) Equal(other State) bool {
	if st.schema != other.schema || len(st.values) != len(other.values) {
		return false
	}
	for i, v := range st.values {
		if v != other.values[i] {
			return false
		}
	}
	return true
}

// DistanceTo returns the Euclidean distance between two states of the
// same schema, or NaN if the schemas differ.
func (st State) DistanceTo(other State) float64 {
	if st.schema != other.schema {
		return math.NaN()
	}
	var sum float64
	for i, v := range st.values {
		d := v - other.values[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// String renders the state as "{name=value, ...}" in schema order.
func (st State) String() string {
	if st.schema == nil {
		return "{invalid}"
	}
	return string(st.AppendText(make([]byte, 0, 16*len(st.values))))
}

// AppendText appends the String rendering of the state to dst and
// returns the extended slice. It lets hot paths (guard denial reasons)
// build messages into reusable buffers without intermediate strings.
func (st State) AppendText(dst []byte) []byte {
	if st.schema == nil {
		return append(dst, "{invalid}"...)
	}
	dst = append(dst, '{')
	for i, v := range st.values {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = append(dst, st.schema.vars[i].Name...)
		dst = append(dst, '=')
		dst = strconv.AppendFloat(dst, v, 'g', 6, 64)
	}
	return append(dst, '}')
}

// Delta is a sparse, additive change to a state: variable name → amount
// to add.
type Delta map[string]float64

// Merge returns a new delta combining d and other; overlapping
// variables add.
func (d Delta) Merge(other Delta) Delta {
	out := make(Delta, len(d)+len(other))
	for k, v := range d {
		out[k] = v
	}
	for k, v := range other {
		out[k] += v
	}
	return out
}

// Scale returns a new delta with every component multiplied by k.
func (d Delta) Scale(k float64) Delta {
	out := make(Delta, len(d))
	for name, v := range d {
		out[name] = v * k
	}
	return out
}

// Magnitude returns the Euclidean norm of the delta.
func (d Delta) Magnitude() float64 {
	var sum float64
	for _, v := range d {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// String renders the delta deterministically, sorted by variable name.
func (d Delta) String() string {
	return string(d.AppendText(nil))
}

// AppendText appends the String rendering of the delta to dst and
// returns the extended slice.
func (d Delta) AppendText(dst []byte) []byte {
	var arr [8]string
	names := arr[:0]
	for name := range d {
		names = append(names, name)
	}
	sort.Strings(names)
	dst = append(dst, '(')
	for i, name := range names {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = append(dst, name...)
		v := d[name]
		if v >= 0 {
			dst = append(dst, '+')
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return append(dst, ')')
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
