package statespace

import "fmt"

// Arena is a bump allocator for state-vector storage. Device state for
// a whole fleet (or a whole shard) is packed into a few large float64
// slabs instead of one small heap allocation per device per tick,
// which is the core of the memory-compact fleet representation: flat
// slabs are cache-friendly for epoch sweeps and invisible to the GC
// scanner (no interior pointers).
//
// An Arena is NOT safe for concurrent Alloc; allocate during fleet
// construction (or give each shard its own arena). The float slices it
// hands out are stable for the lifetime of the arena and may be
// written freely by their owner.
type Arena struct {
	slab  []float64
	used  int
	total int
}

// NewArena returns an arena that pre-allocates capacity for hint
// float64s. The arena grows by additional slabs when exhausted, so
// hint is a performance tuning knob, not a limit.
func NewArena(hint int) *Arena {
	if hint < 64 {
		hint = 64
	}
	return &Arena{slab: make([]float64, hint)}
}

// Alloc returns a zeroed n-float slice carved from the arena. The
// slice has exact capacity n, so appends never bleed into a
// neighbouring allocation.
func (a *Arena) Alloc(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if a.used+n > len(a.slab) {
		grow := len(a.slab) * 2
		if grow < n {
			grow = n
		}
		a.total += a.used
		a.slab = make([]float64, grow)
		a.used = 0
	}
	out := a.slab[a.used : a.used+n : a.used+n]
	a.used += n
	return out
}

// Floats reports the total float64s handed out so far.
func (a *Arena) Floats() int { return a.total + a.used }

// Vector is a mutable, flat state vector: a schema plus a slice of
// values, typically carved from an Arena. It is the copy-on-write
// backing behind the immutable State API — State values returned by
// Vector.State are views of the vector's storage, valid until the next
// mutation of the vector.
type Vector struct {
	schema *Schema
	vals   []float64
}

// NewVector allocates a vector for the schema. If a is non-nil the
// storage comes from the arena; otherwise it is heap-allocated.
func NewVector(s *Schema, a *Arena) Vector {
	var vals []float64
	if a != nil {
		vals = a.Alloc(s.Len())
	} else {
		vals = make([]float64, s.Len())
	}
	return Vector{schema: s, vals: vals}
}

// Valid reports whether the vector has backing storage.
func (v Vector) Valid() bool { return v.schema != nil }

// State returns the vector's current value as a State view. The view
// aliases the vector's storage: it is immutable through the State API
// but changes value when the vector is next mutated. Callers that need
// a durable snapshot must copy (State.Values or Trajectory.Append both
// copy).
func (v Vector) State() State { return State{schema: v.schema, values: v.vals} }

// CopyFrom overwrites the vector with the values of st.
func (v Vector) CopyFrom(st State) error {
	if st.schema != v.schema {
		return fmt.Errorf("statespace: vector/state schema mismatch")
	}
	copy(v.vals, st.values)
	return nil
}

// Set assigns the named variable, clamped into its range, in place.
func (v Vector) Set(name string, x float64) error {
	i, ok := v.schema.Index(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVariable, name)
	}
	v.vals[i] = clamp(x, v.schema.vars[i].Min, v.schema.vars[i].Max)
	return nil
}

// AddDeltaFrom sets the vector to src + d with per-variable clamping —
// the in-place form of State.Apply. src may be the vector's own State
// view.
func (v Vector) AddDeltaFrom(src State, d Delta) error {
	if src.schema != v.schema {
		return fmt.Errorf("statespace: vector/state schema mismatch")
	}
	// Validate before mutating so a bad delta leaves the vector
	// untouched, matching State.Apply's no-partial-write semantics.
	for name := range d {
		if _, ok := v.schema.Index(name); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownVariable, name)
		}
	}
	if &src.values[0] != &v.vals[0] {
		copy(v.vals, src.values)
	}
	for name, dv := range d {
		i, _ := v.schema.Index(name)
		v.vals[i] = clamp(v.vals[i]+dv, v.schema.vars[i].Min, v.schema.vars[i].Max)
	}
	return nil
}

// Scratch is the per-device double buffer for the MAPE hot loop: a
// "current" vector holding the device's live state and a "next" vector
// for predicted states handed to guards. Using a Scratch, a full
// sense→plan→guard→execute tick performs zero state allocations while
// preserving the exact clamping and error semantics of the boxed
// State.With / State.Apply path (the property test in the device
// package checks this differentially).
//
// A Scratch must only be used while its owner holds whatever lock
// serialises the device's tick (devices use a try-lock and fall back
// to the boxed path under contention), because the State views it
// returns alias its buffers.
type Scratch struct {
	cur  Vector
	next Vector
}

// NewScratch allocates a scratch pair for the schema, from the arena
// when a is non-nil.
func NewScratch(s *Schema, a *Arena) Scratch {
	return Scratch{cur: NewVector(s, a), next: NewVector(s, a)}
}

// Valid reports whether the scratch has been initialised.
func (sc *Scratch) Valid() bool { return sc.cur.Valid() }

// Owns reports whether st is a view of the scratch's current buffer.
func (sc *Scratch) Owns(st State) bool {
	return len(st.values) > 0 && len(sc.cur.vals) > 0 && &st.values[0] == &sc.cur.vals[0]
}

// Adopt copies st into the current buffer (unless it is already a view
// of it) and returns the current view.
func (sc *Scratch) Adopt(st State) (State, error) {
	if !sc.Owns(st) {
		if err := sc.cur.CopyFrom(st); err != nil {
			return State{}, err
		}
	}
	return sc.cur.State(), nil
}

// Cur returns the current-buffer view.
func (sc *Scratch) Cur() State { return sc.cur.State() }

// Set assigns one variable of the current state in place — the
// scratch-backed equivalent of State.With.
func (sc *Scratch) Set(name string, x float64) (State, error) {
	if err := sc.cur.Set(name, x); err != nil {
		return State{}, err
	}
	return sc.cur.State(), nil
}

// Peek computes cur + d into the next buffer and returns its view —
// the scratch-backed equivalent of State.Apply for guard prediction.
// The view is valid until the next Peek.
func (sc *Scratch) Peek(d Delta) (State, error) {
	if err := sc.next.AddDeltaFrom(sc.cur.State(), d); err != nil {
		return State{}, err
	}
	return sc.next.State(), nil
}

// Commit applies d to the current buffer in place and returns the
// updated view — the scratch-backed equivalent of State.Apply on the
// committed transition.
func (sc *Scratch) Commit(d Delta) (State, error) {
	if err := sc.cur.AddDeltaFrom(sc.cur.State(), d); err != nil {
		return State{}, err
	}
	return sc.cur.State(), nil
}
