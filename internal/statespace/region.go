package statespace

import (
	"fmt"
	"sort"
	"strings"
)

// Region is a subset of a state space. Regions are the building blocks
// for partitioning the space into good and bad states (Figure 3).
type Region interface {
	// Contains reports whether the state lies inside the region.
	Contains(State) bool
	// Describe returns a short human-readable description of the region.
	Describe() string
}

// Interval is a closed range of values for one variable.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Box is an axis-aligned region: each constrained variable must lie
// within its interval; unconstrained variables may take any value.
type Box struct {
	name        string
	constraints map[string]Interval
}

var _ Region = (*Box)(nil)

// NewBox builds a named box region from variable constraints. The name
// is used only for description.
func NewBox(name string, constraints map[string]Interval) *Box {
	c := make(map[string]Interval, len(constraints))
	for k, v := range constraints {
		c[k] = v
	}
	return &Box{name: name, constraints: c}
}

// Contains reports whether every constrained variable of the state lies
// within its interval. Variables absent from the state fail the
// constraint.
func (b *Box) Contains(st State) bool {
	for name, iv := range b.constraints {
		v, err := st.Get(name)
		if err != nil {
			return false
		}
		if !iv.Contains(v) {
			return false
		}
	}
	return true
}

// Describe returns the box name and its constraints in sorted order.
func (b *Box) Describe() string {
	names := make([]string, 0, len(b.constraints))
	for name := range b.constraints {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(b.name)
	sb.WriteByte('[')
	for i, name := range names {
		if i > 0 {
			sb.WriteString(", ")
		}
		iv := b.constraints[name]
		fmt.Fprintf(&sb, "%g<=%s<=%g", iv.Lo, name, iv.Hi)
	}
	sb.WriteByte(']')
	return sb.String()
}

// FuncRegion adapts a predicate into a Region.
type FuncRegion struct {
	Name string
	Fn   func(State) bool
}

var _ Region = FuncRegion{}

// Contains invokes the predicate.
func (f FuncRegion) Contains(st State) bool { return f.Fn != nil && f.Fn(st) }

// Describe returns the region's name.
func (f FuncRegion) Describe() string { return f.Name }

// Union is the set union of its member regions.
type Union []Region

var _ Region = Union(nil)

// Contains reports whether any member region contains the state.
func (u Union) Contains(st State) bool {
	for _, r := range u {
		if r.Contains(st) {
			return true
		}
	}
	return false
}

// Describe lists the member descriptions.
func (u Union) Describe() string {
	parts := make([]string, len(u))
	for i, r := range u {
		parts[i] = r.Describe()
	}
	return "union(" + strings.Join(parts, " | ") + ")"
}

// Intersection is the set intersection of its member regions. An empty
// intersection contains everything.
type Intersection []Region

var _ Region = Intersection(nil)

// Contains reports whether every member region contains the state.
func (x Intersection) Contains(st State) bool {
	for _, r := range x {
		if !r.Contains(st) {
			return false
		}
	}
	return true
}

// Describe lists the member descriptions.
func (x Intersection) Describe() string {
	parts := make([]string, len(x))
	for i, r := range x {
		parts[i] = r.Describe()
	}
	return "intersect(" + strings.Join(parts, " & ") + ")"
}

// Complement is the set complement of a region.
type Complement struct {
	Of Region
}

var _ Region = Complement{}

// Contains reports whether the inner region does not contain the state.
func (c Complement) Contains(st State) bool { return !c.Of.Contains(st) }

// Describe describes the complement.
func (c Complement) Describe() string { return "not(" + c.Of.Describe() + ")" }
