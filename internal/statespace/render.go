package statespace

import (
	"fmt"
	"strings"
)

// RenderOptions controls Render2D output.
type RenderOptions struct {
	// XVar and YVar name the two variables to plot. YVar is the
	// vertical axis, rendered top (max) to bottom (min), matching
	// Figure 3 of the paper.
	XVar, YVar string
	// Width and Height are the grid dimensions in characters. Zero
	// values default to 60×20.
	Width, Height int
	// Marks places extra characters at specific states (e.g. a
	// trajectory). Later marks overwrite earlier ones.
	Marks []Mark
}

// Mark is a single plotted point.
type Mark struct {
	At    State
	Glyph byte
}

// Render2D draws a two-variable slice of the state space as ASCII art:
// '#' for bad states, '.' for good states, ' ' for neutral — a textual
// reproduction of Figure 3 ("Simplified State Description of System").
// Both variables must be bounded.
func Render2D(schema *Schema, c Classifier, base State, opts RenderOptions) (string, error) {
	width, height := opts.Width, opts.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 20
	}
	xi, ok := schema.Index(opts.XVar)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownVariable, opts.XVar)
	}
	yi, ok := schema.Index(opts.YVar)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownVariable, opts.YVar)
	}
	xv, yv := schema.Var(xi), schema.Var(yi)
	if !xv.Bounded() || !yv.Bounded() || xv.Span() == 0 || yv.Span() == 0 {
		return "", fmt.Errorf("statespace: render requires bounded variables with nonzero span")
	}

	grid := make([][]byte, height)
	for row := range grid {
		grid[row] = make([]byte, width)
		for col := range grid[row] {
			x := xv.Min + xv.Span()*float64(col)/float64(width-1)
			y := yv.Max - yv.Span()*float64(row)/float64(height-1)
			st, err := base.With(opts.XVar, x)
			if err != nil {
				return "", err
			}
			st, err = st.With(opts.YVar, y)
			if err != nil {
				return "", err
			}
			switch c.Classify(st) {
			case ClassBad:
				grid[row][col] = '#'
			case ClassGood:
				grid[row][col] = '.'
			default:
				grid[row][col] = ' '
			}
		}
	}

	for _, mk := range opts.Marks {
		x, err := mk.At.Get(opts.XVar)
		if err != nil {
			continue
		}
		y, err := mk.At.Get(opts.YVar)
		if err != nil {
			continue
		}
		col := int((x - xv.Min) / xv.Span() * float64(width-1))
		row := int((yv.Max - y) / yv.Span() * float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = mk.Glyph
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s ^\n", opts.YVar)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +")
	b.WriteString(strings.Repeat("-", width))
	fmt.Fprintf(&b, "> %s\n", opts.XVar)
	b.WriteString("  legend: '#' bad   '.' good   ' ' neutral\n")
	return b.String(), nil
}
