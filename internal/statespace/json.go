package statespace

import (
	"encoding/json"
	"fmt"
	"math"
)

// VariableSpec is the JSON-friendly form of a Variable. Omitted bounds
// mean unbounded on that side.
type VariableSpec struct {
	Name string   `json:"name"`
	Min  *float64 `json:"min,omitempty"`
	Max  *float64 `json:"max,omitempty"`
	Unit string   `json:"unit,omitempty"`
}

// SchemaFromSpec builds a schema from JSON-decoded variable specs.
func SchemaFromSpec(specs []VariableSpec) (*Schema, error) {
	vars := make([]Variable, len(specs))
	for i, sp := range specs {
		v := Variable{Name: sp.Name, Min: math.Inf(-1), Max: math.Inf(1), Unit: sp.Unit}
		if sp.Min != nil {
			v.Min = *sp.Min
		}
		if sp.Max != nil {
			v.Max = *sp.Max
		}
		vars[i] = v
	}
	return NewSchema(vars...)
}

// Spec returns the schema's variables as JSON-friendly specs.
func (s *Schema) Spec() []VariableSpec {
	out := make([]VariableSpec, s.Len())
	for i := 0; i < s.Len(); i++ {
		v := s.Var(i)
		sp := VariableSpec{Name: v.Name, Unit: v.Unit}
		if !math.IsInf(v.Min, -1) {
			min := v.Min
			sp.Min = &min
		}
		if !math.IsInf(v.Max, 1) {
			max := v.Max
			sp.Max = &max
		}
		out[i] = sp
	}
	return out
}

// MarshalJSON encodes the state as a name→value object.
func (st State) MarshalJSON() ([]byte, error) {
	if !st.Valid() {
		return nil, fmt.Errorf("statespace: cannot marshal invalid state")
	}
	return json.Marshal(st.Map())
}

// StateFromJSON decodes a name→value object into a state over this
// schema; missing variables take origin values, unknown names are an
// error.
func (s *Schema) StateFromJSON(data []byte) (State, error) {
	var values map[string]float64
	if err := json.Unmarshal(data, &values); err != nil {
		return State{}, fmt.Errorf("statespace: %w", err)
	}
	return s.StateFromMap(values)
}
