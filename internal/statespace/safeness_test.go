package statespace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceSafeness(t *testing.T) {
	s := MustSchema(Var("x", 0, 100))
	bad := NewBox("bad", map[string]Interval{"x": {Lo: 90, Hi: 100}})
	m := &DistanceSafeness{Bad: []Region{bad}, Horizon: 50}

	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{name: "inside bad", x: 95, want: 0},
		{name: "at boundary", x: 90, want: 0},
		{name: "half horizon", x: 65, want: 0.5},
		{name: "beyond horizon", x: 10, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st, _ := s.NewState(tt.x)
			if got := m.Safeness(st); got != tt.want {
				t.Errorf("Safeness(x=%g) = %g, want %g", tt.x, got, tt.want)
			}
		})
	}
}

func TestDistanceSafenessNoBadRegions(t *testing.T) {
	s := MustSchema(Var("x", 0, 1))
	m := &DistanceSafeness{}
	if got := m.Safeness(s.Origin()); got != 1 {
		t.Errorf("Safeness with no bad regions = %g, want 1", got)
	}
}

func TestDistanceSafenessNonBoxRegion(t *testing.T) {
	s := MustSchema(Var("x", 0, 1))
	m := &DistanceSafeness{Bad: []Region{
		FuncRegion{Name: "odd", Fn: func(st State) bool { return st.MustGet("x") > 0.5 }},
	}}
	inside, _ := s.NewState(0.9)
	outside, _ := s.NewState(0.1)
	if got := m.Safeness(inside); got != 0 {
		t.Errorf("Safeness(inside func region) = %g, want 0", got)
	}
	if got := m.Safeness(outside); got != 1 {
		t.Errorf("Safeness(outside, no margin info) = %g, want 1", got)
	}
}

func TestPartialOrderCompare(t *testing.T) {
	s := MustSchema(Var("a", 0, 1), Var("b", 0, 1))
	ma := SafenessFunc(func(st State) float64 { return st.MustGet("a") })
	mb := SafenessFunc(func(st State) float64 { return st.MustGet("b") })
	po := &PartialOrder{Metrics: []SafenessMetric{ma, mb}, Epsilon: 1e-9}

	hiHi, _ := s.NewState(1, 1)
	loLo, _ := s.NewState(0, 0)
	hiLo, _ := s.NewState(1, 0)
	loHi, _ := s.NewState(0, 1)

	tests := []struct {
		name string
		a, b State
		want Ordering
	}{
		{name: "dominates", a: hiHi, b: loLo, want: OrderBetter},
		{name: "dominated", a: loLo, b: hiHi, want: OrderWorse},
		{name: "incomparable", a: hiLo, b: loHi, want: OrderIncomparable},
		{name: "equal", a: hiLo, b: hiLo, want: OrderEqual},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := po.Compare(tt.a, tt.b); got != tt.want {
				t.Errorf("Compare = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPartialOrderBest(t *testing.T) {
	s := MustSchema(Var("a", 0, 1), Var("b", 0, 1))
	ma := SafenessFunc(func(st State) float64 { return st.MustGet("a") })
	mb := SafenessFunc(func(st State) float64 { return st.MustGet("b") })
	po := &PartialOrder{Metrics: []SafenessMetric{ma, mb}, Epsilon: 1e-9}

	hiLo, _ := s.NewState(1, 0)
	loHi, _ := s.NewState(0, 1)
	loLo, _ := s.NewState(0, 0)

	best := po.Best([]State{hiLo, loHi, loLo})
	if len(best) != 2 {
		t.Fatalf("Best returned %d states, want 2 (the Pareto frontier)", len(best))
	}
	for _, st := range best {
		if st.Equal(loLo) {
			t.Error("dominated state on frontier")
		}
	}
	if got := po.Best(nil); got != nil {
		t.Errorf("Best(nil) = %v, want nil", got)
	}
}

func TestOrderingString(t *testing.T) {
	tests := []struct {
		o    Ordering
		want string
	}{
		{o: OrderWorse, want: "worse"},
		{o: OrderEqual, want: "equal"},
		{o: OrderBetter, want: "better"},
		{o: OrderIncomparable, want: "incomparable"},
		{o: Ordering(0), want: "unknown"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

// Property: the partial order is antisymmetric — if a is better than b,
// b must be worse than a.
func TestPartialOrderAntisymmetryProperty(t *testing.T) {
	s := MustSchema(Var("a", 0, 1), Var("b", 0, 1))
	ma := SafenessFunc(func(st State) float64 { return st.MustGet("a") })
	mb := SafenessFunc(func(st State) float64 { return st.MustGet("b") })
	po := &PartialOrder{Metrics: []SafenessMetric{ma, mb}, Epsilon: 1e-9}

	f := func(ax, ay, bx, by float64) bool {
		a, err := s.NewState(fold01(ax), fold01(ay))
		if err != nil {
			return true
		}
		b, err := s.NewState(fold01(bx), fold01(by))
		if err != nil {
			return true
		}
		fwd, back := po.Compare(a, b), po.Compare(b, a)
		switch fwd {
		case OrderBetter:
			return back == OrderWorse
		case OrderWorse:
			return back == OrderBetter
		default:
			return back == fwd
		}
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("antisymmetry violated: %v", err)
	}
}

// fold01 maps any float into [0,1] so quick-generated values form valid
// states.
func fold01(v float64) float64 {
	if v != v { // NaN
		return 0
	}
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 10
	}
	return v
}
