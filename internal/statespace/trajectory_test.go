package statespace

import (
	"math"
	"testing"
)

func TestTrajectoryAppendAndAccess(t *testing.T) {
	s := MustSchema(Var("x", 0, 10))
	tr := NewTrajectory(4)
	for _, x := range []float64{1, 2, 3} {
		st, _ := s.NewState(x)
		if err := tr.Append(st); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if got := tr.At(1).MustGet("x"); got != 2 {
		t.Errorf("At(1).x = %g, want 2", got)
	}
	last, ok := tr.Last()
	if !ok || last.MustGet("x") != 3 {
		t.Errorf("Last = %v,%v", last, ok)
	}
	if got := tr.States(); len(got) != 3 {
		t.Errorf("States len = %d", len(got))
	}
}

func TestTrajectoryAppendErrors(t *testing.T) {
	s := MustSchema(Var("x", 0, 10))
	other := MustSchema(Var("y", 0, 10))
	tr := NewTrajectory(2)
	if err := tr.Append(State{}); err == nil {
		t.Error("appended invalid state")
	}
	if err := tr.Append(s.Origin()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := tr.Append(other.Origin()); err == nil {
		t.Error("appended state of different schema")
	}
}

func TestTrajectoryEmptyLast(t *testing.T) {
	tr := NewTrajectory(0)
	if _, ok := tr.Last(); ok {
		t.Error("empty trajectory reported a last state")
	}
}

func TestTrajectoryClassCountsAndFirstBad(t *testing.T) {
	s := MustSchema(Var("x", 0, 10))
	bad := NewBox("bad", map[string]Interval{"x": {Lo: 8, Hi: 10}})
	rc := &RegionClassifier{Bad: []Region{bad}, Default: ClassGood}

	tr := NewTrajectory(4)
	for _, x := range []float64{1, 5, 9, 2} {
		st, _ := s.NewState(x)
		if err := tr.Append(st); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	counts := tr.ClassCounts(rc)
	if counts[ClassBad] != 1 || counts[ClassGood] != 3 {
		t.Errorf("ClassCounts = %v", counts)
	}
	if got := tr.FirstBad(rc); got != 2 {
		t.Errorf("FirstBad = %d, want 2", got)
	}

	clean := NewTrajectory(1)
	_ = clean.Append(s.Origin())
	if got := clean.FirstBad(rc); got != -1 {
		t.Errorf("FirstBad on clean trajectory = %d, want -1", got)
	}
}

func TestMonotoneDecline(t *testing.T) {
	s := MustSchema(Var("x", 0, 10))
	metric := SafenessFunc(func(st State) float64 { return st.MustGet("x") / 10 })

	decline := NewTrajectory(5)
	for _, x := range []float64{9, 7, 5, 3} {
		st, _ := s.NewState(x)
		_ = decline.Append(st)
	}
	if !decline.MonotoneDecline(metric, 3) {
		t.Error("MonotoneDecline missed a strict decline")
	}
	if decline.MonotoneDecline(metric, 5) {
		t.Error("MonotoneDecline over too-large window should be false")
	}

	bumpy := NewTrajectory(4)
	for _, x := range []float64{9, 7, 8, 3} {
		st, _ := s.NewState(x)
		_ = bumpy.Append(st)
	}
	if bumpy.MonotoneDecline(metric, 3) {
		t.Error("MonotoneDecline reported decline despite a recovery step")
	}
}

func TestCumulativeDrop(t *testing.T) {
	s := MustSchema(Var("x", 0, 10))
	metric := SafenessFunc(func(st State) float64 { return st.MustGet("x") / 10 })

	tr := NewTrajectory(4)
	for _, x := range []float64{10, 8, 6, 4} {
		st, _ := s.NewState(x)
		_ = tr.Append(st)
	}
	if got := tr.CumulativeDrop(metric, 3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("CumulativeDrop = %g, want 0.6", got)
	}
	// Window larger than history clamps to full history.
	if got := tr.CumulativeDrop(metric, 100); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("CumulativeDrop(100) = %g, want 0.6", got)
	}

	up := NewTrajectory(2)
	for _, x := range []float64{2, 9} {
		st, _ := s.NewState(x)
		_ = up.Append(st)
	}
	if got := up.CumulativeDrop(metric, 1); got != 0 {
		t.Errorf("CumulativeDrop on improving trajectory = %g, want 0", got)
	}
	if got := up.CumulativeDrop(metric, 0); got != 0 {
		t.Errorf("CumulativeDrop(window=0) = %g, want 0", got)
	}
}
