package statespace

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestSchemaFromSpecAndBack(t *testing.T) {
	min, max := 0.0, 100.0
	specs := []VariableSpec{
		{Name: "heat", Min: &min, Max: &max, Unit: "C"},
		{Name: "offset"}, // unbounded
	}
	s, err := SchemaFromSpec(specs)
	if err != nil {
		t.Fatalf("SchemaFromSpec: %v", err)
	}
	v := s.Var(0)
	if v.Min != 0 || v.Max != 100 || v.Unit != "C" {
		t.Errorf("var = %+v", v)
	}
	if s.Var(1).Bounded() {
		t.Error("omitted bounds not unbounded")
	}
	back := s.Spec()
	if !reflect.DeepEqual(specs, back) {
		t.Errorf("Spec round trip:\n%+v\n%+v", specs, back)
	}
	if _, err := SchemaFromSpec(nil); err == nil {
		t.Error("empty spec accepted")
	}
	bad := []VariableSpec{{Name: ""}}
	if _, err := SchemaFromSpec(bad); err == nil {
		t.Error("nameless variable accepted")
	}
}

func TestSchemaFromSpecJSONDocument(t *testing.T) {
	doc := `[{"name": "heat", "min": 0, "max": 100}, {"name": "drift"}]`
	var specs []VariableSpec
	if err := json.Unmarshal([]byte(doc), &specs); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	s, err := SchemaFromSpec(specs)
	if err != nil {
		t.Fatalf("SchemaFromSpec: %v", err)
	}
	if s.Len() != 2 || !math.IsInf(s.Var(1).Max, 1) {
		t.Errorf("schema = %v", s.Names())
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	s := MustSchema(Var("a", 0, 10), Var("b", -5, 5))
	st, err := s.NewState(3, -2)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := s.StateFromJSON(data)
	if err != nil {
		t.Fatalf("StateFromJSON: %v", err)
	}
	if !back.Equal(st) {
		t.Errorf("round trip: %v vs %v", st, back)
	}
}

func TestStateJSONErrors(t *testing.T) {
	s := MustSchema(Var("a", 0, 10))
	var invalid State
	if _, err := json.Marshal(invalid); err == nil {
		t.Error("invalid state marshaled")
	}
	if _, err := s.StateFromJSON([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := s.StateFromJSON([]byte(`{"ghost": 1}`)); err == nil {
		t.Error("unknown variable accepted")
	}
	// Missing variables default to origin.
	st, err := s.StateFromJSON([]byte(`{}`))
	if err != nil || st.MustGet("a") != 0 {
		t.Errorf("empty object: %v, %v", st, err)
	}
}
