package statespace_test

import (
	"fmt"

	"repro/internal/statespace"
)

// Example shows the Section V device-state model: a schema, a state, a
// transition, and a good/bad classification.
func Example() {
	schema := statespace.MustSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("speed", 0, 50),
	)
	classifier := &statespace.RegionClassifier{
		Bad: []statespace.Region{
			statespace.NewBox("overheat", map[string]statespace.Interval{
				"heat": {Lo: 80, Hi: 100},
			}),
		},
		Default: statespace.ClassGood,
	}

	st, _ := schema.NewState(70, 10)
	fmt.Println(st, "→", classifier.Classify(st))

	next, _ := st.Apply(statespace.Delta{"heat": 15})
	fmt.Println(next, "→", classifier.Classify(next))
	// Output:
	// {heat=70, speed=10} → good
	// {heat=85, speed=10} → bad
}

// ExampleDerivativeModel shows the Section VII treatment of ill-defined
// state spaces: only the derivative signs are known, yet a usable
// pain/pleasure utility emerges.
func ExampleDerivativeModel() {
	schema := statespace.MustSchema(
		statespace.Var("armed", 0, 1),
		statespace.Var("distance", 0, 100),
	)
	m := statespace.NewDerivativeModel(schema)
	_ = m.SetSign("armed", statespace.SignDecreasing)    // arming is dangerous
	_ = m.SetSign("distance", statespace.SignIncreasing) // distance is safe

	safe, _ := schema.NewState(0, 100)
	danger, _ := schema.NewState(1, 0)
	fmt.Printf("pain(safe)=%.1f pain(danger)=%.1f\n", m.Pain(safe), m.Pain(danger))
	// Output:
	// pain(safe)=0.0 pain(danger)=1.0
}
