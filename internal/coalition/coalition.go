// Package coalition models the multi-organization dimension of the
// paper (Sections II–III): devices belong to different coalition
// members (e.g. US and UK forces), each member trusts the others to a
// configurable degree, and trust gates what may flow across the
// boundary — intelligence reports, generated policies, or operational
// control of devices. A "multi-organizational" reach is one of the
// defining Skynet properties, which makes cross-organization sharing
// constraints part of the prevention surface.
package coalition

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/policy"
)

// Trust is the degree one organization trusts another.
type Trust int

// Trust levels, ordered.
const (
	TrustNone Trust = iota + 1
	TrustLow
	TrustMedium
	TrustFull
)

// String names the trust level.
func (t Trust) String() string {
	switch t {
	case TrustNone:
		return "none"
	case TrustLow:
		return "low"
	case TrustMedium:
		return "medium"
	case TrustFull:
		return "full"
	default:
		return "unknown"
	}
}

// ShareKind classifies what is being shared across an organization
// boundary.
type ShareKind int

// Share kinds and the minimum trust each requires.
const (
	// ShareIntel is sensor readings and situation reports.
	ShareIntel ShareKind = iota + 1
	// SharePolicy is generated management policies.
	SharePolicy
	// ShareControl is direct tasking of another organization's
	// devices (e.g. dispatching their mule).
	ShareControl
)

// String names the share kind.
func (k ShareKind) String() string {
	switch k {
	case ShareIntel:
		return "intel"
	case SharePolicy:
		return "policy"
	case ShareControl:
		return "control"
	default:
		return "unknown"
	}
}

// MinTrust returns the minimum trust level required to share this
// kind across organizations.
func (k ShareKind) MinTrust() Trust {
	switch k {
	case ShareIntel:
		return TrustLow
	case SharePolicy:
		return TrustMedium
	case ShareControl:
		return TrustFull
	default:
		return TrustFull
	}
}

// ErrUnknownOrganization is returned for operations on undeclared
// organizations.
var ErrUnknownOrganization = errors.New("coalition: unknown organization")

// Coalition tracks member organizations, their directed pairwise
// trust, and each organization's bundle-root binding (the signing key
// its policy-distribution root is anchored to). It is safe for
// concurrent use.
type Coalition struct {
	mu    sync.Mutex
	orgs  map[string]bool
	trust map[string]map[string]Trust // trust[from][to]
	roots map[string]string           // org -> signing key ID
}

// New returns an empty coalition.
func New() *Coalition {
	return &Coalition{
		orgs:  make(map[string]bool),
		trust: make(map[string]map[string]Trust),
		roots: make(map[string]string),
	}
}

// AddOrganization declares a member. Re-adding is a no-op.
func (c *Coalition) AddOrganization(name string) error {
	if name == "" {
		return errors.New("coalition: organization needs a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.orgs[name] = true
	return nil
}

// Organizations returns the member names, sorted.
func (c *Coalition) Organizations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.orgs))
	for name := range c.orgs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetTrust declares how much from trusts to (directed; set both ways
// for symmetric trust).
func (c *Coalition) SetTrust(from, to string, t Trust) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.orgs[from] {
		return fmt.Errorf("%w: %q", ErrUnknownOrganization, from)
	}
	if !c.orgs[to] {
		return fmt.Errorf("%w: %q", ErrUnknownOrganization, to)
	}
	if c.trust[from] == nil {
		c.trust[from] = make(map[string]Trust)
	}
	c.trust[from][to] = t
	return nil
}

// TrustBetween returns how much from trusts to. An organization fully
// trusts itself; undeclared pairs default to TrustNone.
func (c *Coalition) TrustBetween(from, to string) Trust {
	if from == to {
		return TrustFull
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.trust[from][to]; ok {
		return t
	}
	return TrustNone
}

// CanShare reports whether `kind` may flow from organization from to
// organization to: the *receiver-side* trust gates acceptance (you
// accept policies only from members you trust enough).
func (c *Coalition) CanShare(from, to string, kind ShareKind) bool {
	return c.TrustBetween(to, from) >= kind.MinTrust()
}

// Partners returns the organizations (other than of) that of trusts
// at or above min, sorted.
func (c *Coalition) Partners(of string, min Trust) []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.orgs))
	for name := range c.orgs {
		names = append(names, name)
	}
	c.mu.Unlock()

	var out []string
	for _, name := range names {
		if name == of {
			continue
		}
		if c.TrustBetween(of, name) >= min {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// BindRoot anchors an organization's bundle root to a signing key ID:
// the coalition-level statement "org X's policy revisions are signed
// by key K". Distribution planes consult the binding when building
// device keyrings, so a key never verifies outside the org the
// coalition bound it to. Rebinding (key rotation) overwrites.
func (c *Coalition) BindRoot(org, keyID string) error {
	if keyID == "" {
		return errors.New("coalition: root binding needs a key ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.orgs[org] {
		return fmt.Errorf("%w: %q", ErrUnknownOrganization, org)
	}
	c.roots[org] = keyID
	return nil
}

// RootOf returns the signing key ID an organization's bundle root is
// bound to; ok is false when no binding was declared.
func (c *Coalition) RootOf(org string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keyID, ok := c.roots[org]
	return keyID, ok
}

// RootBindings returns a copy of every declared org → key-ID binding.
func (c *Coalition) RootBindings() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.roots))
	for org, keyID := range c.roots {
		out[org] = keyID
	}
	return out
}

// AcceptedRoots returns the org roots a member's devices should hold
// verification keys for: its own root plus every bound root of a
// member it trusts enough for policy sharing (receiver-side trust,
// like CanShare). Sorted. Only orgs with a declared root binding
// appear — an org without a bound key has no verifiable stream to
// accept.
func (c *Coalition) AcceptedRoots(org string) []string {
	c.mu.Lock()
	bound := make([]string, 0, len(c.roots))
	for other := range c.roots {
		bound = append(bound, other)
	}
	c.mu.Unlock()

	var out []string
	for _, other := range bound {
		if other == org || c.TrustBetween(org, other) >= SharePolicy.MinTrust() {
			out = append(out, other)
		}
	}
	sort.Strings(out)
	return out
}

// FilterShareablePolicies returns the subset of policies that
// organization to would accept from organization from: the policy must
// be owned by from (no laundering of third-party policies) and the
// receiver must trust from enough for policy sharing.
func (c *Coalition) FilterShareablePolicies(from, to string, policies []policy.Policy) []policy.Policy {
	if !c.CanShare(from, to, SharePolicy) {
		return nil
	}
	var out []policy.Policy
	for _, p := range policies {
		if p.Organization == from {
			out = append(out, p)
		}
	}
	return out
}
