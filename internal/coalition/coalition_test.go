package coalition

import (
	"errors"
	"testing"

	"repro/internal/policy"
)

func twoOrgCoalition(t *testing.T) *Coalition {
	t.Helper()
	c := New()
	for _, org := range []string{"us", "uk", "observer"} {
		if err := c.AddOrganization(org); err != nil {
			t.Fatalf("AddOrganization: %v", err)
		}
	}
	// us and uk trust each other fully; observer gets low trust.
	mustTrust(t, c, "us", "uk", TrustFull)
	mustTrust(t, c, "uk", "us", TrustFull)
	mustTrust(t, c, "us", "observer", TrustLow)
	mustTrust(t, c, "observer", "us", TrustMedium)
	return c
}

func mustTrust(t *testing.T, c *Coalition, from, to string, tr Trust) {
	t.Helper()
	if err := c.SetTrust(from, to, tr); err != nil {
		t.Fatalf("SetTrust(%s→%s): %v", from, to, err)
	}
}

func TestOrganizations(t *testing.T) {
	c := twoOrgCoalition(t)
	got := c.Organizations()
	want := []string{"observer", "uk", "us"}
	if len(got) != len(want) {
		t.Fatalf("Organizations = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Organizations[%d] = %s", i, got[i])
		}
	}
	if err := c.AddOrganization(""); err == nil {
		t.Error("empty org accepted")
	}
}

func TestTrustBetween(t *testing.T) {
	c := twoOrgCoalition(t)
	tests := []struct {
		from, to string
		want     Trust
	}{
		{from: "us", to: "uk", want: TrustFull},
		{from: "us", to: "observer", want: TrustLow},
		{from: "observer", to: "us", want: TrustMedium},
		{from: "uk", to: "observer", want: TrustNone}, // undeclared
		{from: "us", to: "us", want: TrustFull},       // self
	}
	for _, tt := range tests {
		if got := c.TrustBetween(tt.from, tt.to); got != tt.want {
			t.Errorf("TrustBetween(%s,%s) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
	if err := c.SetTrust("ghost", "us", TrustLow); !errors.Is(err, ErrUnknownOrganization) {
		t.Errorf("SetTrust unknown from = %v", err)
	}
	if err := c.SetTrust("us", "ghost", TrustLow); !errors.Is(err, ErrUnknownOrganization) {
		t.Errorf("SetTrust unknown to = %v", err)
	}
}

func TestCanShareGatesOnReceiverTrust(t *testing.T) {
	c := twoOrgCoalition(t)
	tests := []struct {
		name     string
		from, to string
		kind     ShareKind
		want     bool
	}{
		{name: "full trust shares control", from: "us", to: "uk", kind: ShareControl, want: true},
		{name: "full trust shares policy", from: "uk", to: "us", kind: SharePolicy, want: true},
		// observer trusts us medium → accepts policy but not control.
		{name: "medium accepts policy", from: "us", to: "observer", kind: SharePolicy, want: true},
		{name: "medium rejects control", from: "us", to: "observer", kind: ShareControl, want: false},
		// us trusts observer low → accepts only intel from observer.
		{name: "low accepts intel", from: "observer", to: "us", kind: ShareIntel, want: true},
		{name: "low rejects policy", from: "observer", to: "us", kind: SharePolicy, want: false},
		{name: "none rejects intel", from: "observer", to: "uk", kind: ShareIntel, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.CanShare(tt.from, tt.to, tt.kind); got != tt.want {
				t.Errorf("CanShare(%s→%s, %v) = %v, want %v", tt.from, tt.to, tt.kind, got, tt.want)
			}
		})
	}
}

func TestPartners(t *testing.T) {
	c := twoOrgCoalition(t)
	if got := c.Partners("us", TrustLow); len(got) != 2 {
		t.Errorf("Partners(us, low) = %v", got)
	}
	got := c.Partners("us", TrustFull)
	if len(got) != 1 || got[0] != "uk" {
		t.Errorf("Partners(us, full) = %v", got)
	}
	if got := c.Partners("uk", TrustLow); len(got) != 1 || got[0] != "us" {
		t.Errorf("Partners(uk, low) = %v", got)
	}
}

func TestFilterShareablePolicies(t *testing.T) {
	c := twoOrgCoalition(t)
	policies := []policy.Policy{
		{ID: "own", Organization: "us", EventType: "e", Modality: policy.ModalityDo, Action: policy.Action{Name: "a"}},
		{ID: "foreign", Organization: "fr", EventType: "e", Modality: policy.ModalityDo, Action: policy.Action{Name: "a"}},
	}
	got := c.FilterShareablePolicies("us", "uk", policies)
	if len(got) != 1 || got[0].ID != "own" {
		t.Errorf("FilterShareablePolicies = %v", got)
	}
	// Receiver with insufficient trust gets nothing.
	if got := c.FilterShareablePolicies("observer", "uk", policies); got != nil {
		t.Errorf("untrusted share = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if TrustNone.String() != "none" || TrustLow.String() != "low" ||
		TrustMedium.String() != "medium" || TrustFull.String() != "full" || Trust(0).String() != "unknown" {
		t.Error("Trust.String wrong")
	}
	if ShareIntel.String() != "intel" || SharePolicy.String() != "policy" ||
		ShareControl.String() != "control" || ShareKind(0).String() != "unknown" {
		t.Error("ShareKind.String wrong")
	}
	if ShareKind(99).MinTrust() != TrustFull {
		t.Error("unknown kind should require full trust")
	}
}

func TestRootBindings(t *testing.T) {
	c := twoOrgCoalition(t)
	if err := c.BindRoot("us", "us-root-key"); err != nil {
		t.Fatalf("BindRoot us: %v", err)
	}
	if err := c.BindRoot("uk", "uk-root-key"); err != nil {
		t.Fatalf("BindRoot uk: %v", err)
	}
	if err := c.BindRoot("fr", "fr-key"); err == nil {
		t.Error("BindRoot accepted an undeclared organization")
	}
	if err := c.BindRoot("us", ""); err == nil {
		t.Error("BindRoot accepted an empty key ID")
	}
	if keyID, ok := c.RootOf("us"); !ok || keyID != "us-root-key" {
		t.Errorf("RootOf(us) = %q, %v", keyID, ok)
	}
	if _, ok := c.RootOf("observer"); ok {
		t.Error("RootOf(observer) reported a binding")
	}
	// Rotation overwrites.
	if err := c.BindRoot("us", "us-root-key-2"); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if got := c.RootBindings(); len(got) != 2 || got["us"] != "us-root-key-2" || got["uk"] != "uk-root-key" {
		t.Errorf("RootBindings = %v", got)
	}
}

func TestAcceptedRoots(t *testing.T) {
	c := twoOrgCoalition(t)
	for org, key := range map[string]string{"us": "us-key", "uk": "uk-key", "observer": "observer-key"} {
		if err := c.BindRoot(org, key); err != nil {
			t.Fatalf("BindRoot %s: %v", org, key)
		}
	}
	// us fully trusts uk (>= medium, the policy-sharing bar) but only
	// low-trusts observer: its devices hold us + uk roots.
	if got := c.AcceptedRoots("us"); len(got) != 2 || got[0] != "uk" || got[1] != "us" {
		t.Errorf("AcceptedRoots(us) = %v", got)
	}
	// observer medium-trusts us, so it accepts us's root besides its own.
	if got := c.AcceptedRoots("observer"); len(got) != 2 || got[0] != "observer" || got[1] != "us" {
		t.Errorf("AcceptedRoots(observer) = %v", got)
	}
	// An org always accepts its own bound root, regardless of trust rows.
	if got := c.AcceptedRoots("uk"); len(got) != 2 || got[0] != "uk" || got[1] != "us" {
		t.Errorf("AcceptedRoots(uk) = %v", got)
	}
}
