package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ontology"
)

// genStaticCond builds a random condition tree mixing runtime-scoped
// leaves (event attributes, bare names) with static-scoped ones
// (device.* labels and attributes, static CondFuncs), so folding has
// real work on some branches and must leave others untouched.
func genStaticCond(rng *rand.Rand, depth int) Condition {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(7) {
		case 0:
			return Threshold{Quantity: "x", Op: CmpGT, Value: float64(rng.Intn(10))}
		case 1:
			return Threshold{Quantity: "event.x", Op: CmpLT, Value: float64(rng.Intn(10))}
		case 2:
			return Threshold{Quantity: "device.weight", Op: CmpGE, Value: float64(rng.Intn(10))}
		case 3:
			return LabelEquals{Label: "device.type", Value: []string{"reactor", "sensor", "drone"}[rng.Intn(3)]}
		case 4:
			return LabelEquals{Label: "device.org", Value: []string{"us", "eu"}[rng.Intn(2)]}
		case 5:
			want := []string{"reactor", "sensor"}[rng.Intn(2)]
			return CondFunc{
				Name:   "type-is-" + want,
				Static: true,
				Fn:     func(env Env) bool { return env.Static.Label("type") == want },
			}
		default:
			return True{}
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := 1 + rng.Intn(3)
		and := make(And, 0, n)
		for i := 0; i < n; i++ {
			and = append(and, genStaticCond(rng, depth-1))
		}
		return and
	case 1:
		n := 1 + rng.Intn(3)
		or := make(Or, 0, n)
		for i := 0; i < n; i++ {
			or = append(or, genStaticCond(rng, depth-1))
		}
		return or
	default:
		return Not{Of: genStaticCond(rng, depth-1)}
	}
}

// genStaticPolicies is genPolicies with profile-dependent conditions:
// roughly half the policies carry a condition tree that mixes static
// and runtime leaves.
func genStaticPolicies(rng *rand.Rand, n int) []Policy {
	out := genPolicies(rng, n)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i].Condition = genStaticCond(rng, 2)
		}
	}
	return out
}

// genProfile builds a random device profile: type/org labels plus an
// optional numeric attribute the static thresholds probe.
func genProfile(rng *rand.Rand) StaticEnv {
	types := []string{"reactor", "sensor", "drone", ""}
	orgs := []string{"us", "eu", ""}
	se := DeviceProfile(types[rng.Intn(len(types))], orgs[rng.Intn(len(orgs))])
	if rng.Intn(2) == 0 {
		se = se.WithAttr("weight", float64(rng.Intn(12)))
	}
	return se
}

// TestDifferentialResidualVsFull is the partial-evaluation pass's
// correctness anchor: on randomized policy sets × random static
// profiles × random events, the residual's Decision must be deeply
// equal to the full snapshot's and to the retained linear scan — same
// actions in the same order, same matched IDs, same veto attribution.
func TestDifferentialResidualVsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	tx := diffTaxonomy(t)
	eventTypes := []string{"tick", "smoke", "other", WildcardEvent}
	for trial := 0; trial < 700; trial++ {
		policies := genStaticPolicies(rng, 1+rng.Intn(30))
		matchCat := func(got, want ontology.Concept) bool { return got == want }
		var set *Set
		if trial%2 == 0 {
			matchCat = TaxonomyMatcher(tx)
			set = NewSet(WithCategoryMatcher(matchCat))
		} else {
			set = NewSet()
		}
		if err := set.AddBatch(policies); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
		profile := genProfile(rng)
		snap := set.Snapshot()
		res := snap.Specialize(profile)
		if res.Full() != snap {
			t.Fatalf("trial %d: residual does not point back to its full snapshot", trial)
		}
		if len(res.Snap().Policies()) > len(snap.Policies()) {
			t.Fatalf("trial %d: residual grew: %d > %d policies", trial,
				len(res.Snap().Policies()), len(snap.Policies()))
		}
		for e := 0; e < 4; e++ {
			env := Env{
				Event: Event{
					Type:  eventTypes[rng.Intn(len(eventTypes))],
					Attrs: map[string]float64{"x": float64(rng.Intn(12))},
				},
				Static: profile,
			}
			got := res.Evaluate(env)
			full := snap.Evaluate(env)
			linear := evaluateLinear(snap.Policies(), matchCat, env)
			if !reflect.DeepEqual(got, full) {
				t.Fatalf("trial %d: residual and full decisions differ:\nresidual %+v\nfull     %+v\nprofile %s",
					trial, got, full, profile.Fingerprint())
			}
			if !reflect.DeepEqual(got, linear) {
				t.Fatalf("trial %d: residual and linear decisions differ:\nresidual %+v\nlinear   %+v\nprofile %s",
					trial, got, linear, profile.Fingerprint())
			}
			var into Decision
			res.EvaluateInto(env, &into)
			if !reflect.DeepEqual(Decision{Actions: into.Actions, Matched: into.Matched, Vetoed: into.Vetoed},
				Decision{Actions: got.Actions, Matched: got.Matched, Vetoed: got.Vetoed}) &&
				!(len(into.Actions) == 0 && len(got.Actions) == 0 &&
					len(into.Matched) == 0 && len(got.Matched) == 0 &&
					len(into.Vetoed) == 0 && len(got.Vetoed) == 0) {
				t.Fatalf("trial %d: residual EvaluateInto diverges from Evaluate:\ninto %+v\ngot  %+v", trial, into, got)
			}
		}
	}
}

// TestResidualCacheSharing: devices with equal profiles share one
// residual per snapshot; a distinct profile gets its own; hits and
// compiles are accounted on the owning set.
func TestResidualCacheSharing(t *testing.T) {
	set := NewSet()
	if err := set.AddBatch([]Policy{
		{ID: "stat", EventType: "tick", Priority: 2, Modality: ModalityDo,
			Condition: LabelEquals{Label: "device.type", Value: "reactor"},
			Action:    Action{Name: "cool"}},
		{ID: "dyn", EventType: "tick", Priority: 1, Modality: ModalityDo,
			Condition: Threshold{Quantity: "x", Op: CmpGT, Value: 5},
			Action:    Action{Name: "vent"}},
	}); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	snap := set.Snapshot()
	reactor := DeviceProfile("reactor", "us")
	sensor := DeviceProfile("sensor", "us")

	r1 := snap.Specialize(reactor)
	r2 := snap.Specialize(reactor)
	if r1 != r2 {
		t.Fatalf("equal profiles got distinct residuals")
	}
	r3 := snap.Specialize(sensor)
	if r3 == r1 {
		t.Fatalf("distinct profiles shared a residual")
	}
	if n := len(r1.Snap().Policies()); n != 2 {
		t.Fatalf("reactor residual kept %d policies, want 2 (static cond folded true)", n)
	}
	if n := len(r3.Snap().Policies()); n != 1 {
		t.Fatalf("sensor residual kept %d policies, want 1 (static cond folded false)", n)
	}
	if fp := r1.Snap().ResidualFingerprint(); fp != reactor.Fingerprint() {
		t.Fatalf("residual fingerprint %q, want profile fingerprint %q", fp, reactor.Fingerprint())
	}
	if fp := snap.ResidualFingerprint(); fp != "" {
		t.Fatalf("full snapshot carries residual fingerprint %q", fp)
	}
	st := set.Stats()
	if st.ResidualCompiles != 2 || st.ResidualHits != 1 || st.ResidualMisses != 2 {
		t.Fatalf("stats = compiles %d hits %d misses %d, want 2/1/2",
			st.ResidualCompiles, st.ResidualHits, st.ResidualMisses)
	}
}

// TestResidualIdentityReuse: when no condition references the profile,
// specialization is the identity and the residual shares the full
// snapshot — no recompile, no new fingerprint.
func TestResidualIdentityReuse(t *testing.T) {
	set := NewSet()
	if err := set.AddBatch([]Policy{
		{ID: "a", EventType: "tick", Priority: 1, Modality: ModalityDo,
			Condition: Threshold{Quantity: "x", Op: CmpGT, Value: 5},
			Action:    Action{Name: "move"}},
		{ID: "b", EventType: "tick", Priority: 2, Modality: ModalityDo,
			Action: Action{Name: "observe"}},
	}); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	snap := set.Snapshot()
	r := snap.Specialize(DeviceProfile("reactor", "us"))
	if r.Snap() != snap {
		t.Fatalf("identity specialization recompiled instead of sharing the snapshot")
	}
	if fp := r.Snap().ResidualFingerprint(); fp != "" {
		t.Fatalf("identity residual carries fingerprint %q, want \"\"", fp)
	}
}

// TestResidualInvalidationOnMutation: mutations and ApplyRevision
// discard the published snapshot, and with it every residual — a
// device revalidating by pointer picks up a residual of the new epoch
// with the new policies.
func TestResidualInvalidationOnMutation(t *testing.T) {
	profile := DeviceProfile("reactor", "us")
	env := Env{Event: Event{Type: "tick"}, Static: profile}

	set := NewSet()
	if err := set.Add(Policy{ID: "p1", EventType: "tick", Priority: 1,
		Modality: ModalityDo, Action: Action{Name: "move"},
		Condition: LabelEquals{Label: "device.type", Value: "reactor"}}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	snap1 := set.Snapshot()
	r1 := snap1.Specialize(profile)
	if got := r1.Evaluate(env); len(got.Actions) != 1 {
		t.Fatalf("pre-mutation decision: %+v", got)
	}

	if err := set.Add(Policy{ID: "p2", EventType: "tick", Priority: 5,
		Modality: ModalityForbid, Action: Action{Name: "move"}}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	snap2 := set.Snapshot()
	if snap2 == snap1 {
		t.Fatalf("mutation did not discard the snapshot")
	}
	r2 := snap2.Specialize(profile)
	if r2.Full() != snap2 || r2.Full() == snap1 {
		t.Fatalf("residual survived a mutation: full=%p snap1=%p snap2=%p", r2.Full(), snap1, snap2)
	}
	got := r2.Evaluate(env)
	if len(got.Actions) != 0 || got.Vetoed["p1"] != "p2" {
		t.Fatalf("post-mutation residual missed the new forbid: %+v", got)
	}

	if err := set.ApplyRevision(7, []Policy{{ID: "p3", EventType: "tick",
		Priority: 9, Modality: ModalityDo, Action: Action{Name: "observe"}}},
		[]string{"p2"}); err != nil {
		t.Fatalf("ApplyRevision: %v", err)
	}
	snap3 := set.Snapshot()
	r3 := snap3.Specialize(profile)
	if r3.Full() == snap2 {
		t.Fatalf("residual survived ApplyRevision")
	}
	if r3.Revision() != 7 {
		t.Fatalf("residual revision %d, want 7", r3.Revision())
	}
	got = r3.Evaluate(env)
	if len(got.Actions) != 2 || len(got.Vetoed) != 0 {
		t.Fatalf("post-revision residual decision: %+v", got)
	}
}

// TestResidualConcurrentSpecialize hammers Specialize from many
// goroutines across several profiles while another goroutine mutates
// the set — the race detector guards the cache, and every returned
// residual must decide exactly like the snapshot it was specialized
// from.
func TestResidualConcurrentSpecialize(t *testing.T) {
	set := NewSet()
	if err := set.AddBatch(genStaticPolicies(rand.New(rand.NewSource(9)), 20)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	profiles := make([]StaticEnv, 4)
	for i := range profiles {
		profiles[i] = DeviceProfile([]string{"reactor", "sensor", "drone", "pump"}[i], "us").
			WithAttr("weight", float64(i*3))
	}
	env := Env{Event: Event{Type: "tick", Attrs: map[string]float64{"x": 6}}}

	var workers, mutator sync.WaitGroup
	stop := make(chan struct{})
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := Policy{ID: fmt.Sprintf("mut%03d", i%8), EventType: "tick",
				Priority: i % 5, Modality: ModalityDo, Action: Action{Name: "move"}}
			if err := set.Replace(p); err != nil {
				t.Errorf("Replace: %v", err)
				return
			}
			if i%16 == 15 {
				set.Remove(p.ID)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 300; i++ {
				profile := profiles[(g+i)%len(profiles)]
				snap := set.Snapshot()
				res := snap.Specialize(profile)
				e := env
				e.Static = profile
				got, want := res.Evaluate(e), snap.Evaluate(e)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("g%d i%d: residual diverged:\nresidual %+v\nfull     %+v", g, i, got, want)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		// Pure readers of one fixed snapshot exercise concurrent
		// first-Specialize races on the single-slot + map cache tiers.
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			snap := set.Snapshot()
			for i := 0; i < 300; i++ {
				res := snap.Specialize(profiles[i%len(profiles)])
				if res.Full() != snap {
					t.Errorf("g%d i%d: residual from a foreign snapshot", g, i)
					return
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	mutator.Wait()
}
