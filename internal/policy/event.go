// Package policy implements the event–condition–action policy model of
// Section IV: "A policy in this context is an event-condition-action
// rule directing the devices to take specific actions when an event
// happens and the conditions specified hold true."
//
// Policies carry a modality (do vs. forbid), a priority, an origin
// (built-in, human, generated, shared), and optional obligations. A Set
// evaluates an event against the device state, with forbid policies
// vetoing matching do policies and deterministic priority ordering —
// the "logic" box of the paper's Figure 2 device model.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/statespace"
)

// WildcardEvent matches every event type when used as a policy's
// EventType.
const WildcardEvent = "*"

// Event is an occurrence a device reacts to: a sensor change, a
// received message, a discovery, a command.
type Event struct {
	// Type names the kind of event (e.g. "smoke-detected",
	// "device-discovered").
	Type string
	// Source identifies what produced the event.
	Source string
	// Time is when the event occurred.
	Time time.Time
	// Attrs carries numeric attributes (e.g. intensity, distance).
	Attrs map[string]float64
	// Labels carries string attributes (e.g. device type discovered).
	Labels map[string]string
}

// Attr returns the named numeric attribute, or 0 when absent.
func (e Event) Attr(name string) float64 { return e.Attrs[name] }

// Label returns the named string attribute, or "" when absent.
func (e Event) Label(name string) string { return e.Labels[name] }

// String renders the event compactly and deterministically.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Type)
	if e.Source != "" {
		fmt.Fprintf(&b, " from %s", e.Source)
	}
	if len(e.Attrs) > 0 {
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%g", k, e.Attrs[k])
		}
		b.WriteByte('}')
	}
	return b.String()
}

// Env is the evaluation environment for policy conditions: the
// triggering event, the device's current state, and the device's
// static profile (see StaticEnv).
type Env struct {
	Event  Event
	State  statespace.State
	Static StaticEnv
}

// Lookup resolves an identifier for condition evaluation. Event
// attributes shadow state variables; the prefixes "event." and
// "state." force one namespace, and "device." resolves the device's
// static profile (static attributes are reachable only through that
// prefix — bare names never fall back to the profile, so
// specialization can fold exactly the "device." references).
func (env Env) Lookup(name string) (float64, bool) {
	if v, ok := strings.CutPrefix(name, "event."); ok {
		f, present := env.Event.Attrs[v]
		return f, present
	}
	if v, ok := strings.CutPrefix(name, "state."); ok {
		if !env.State.Valid() {
			return 0, false
		}
		f, err := env.State.Get(v)
		return f, err == nil
	}
	if v, ok := strings.CutPrefix(name, StaticPrefix); ok {
		return env.Static.Attr(v)
	}
	if f, ok := env.Event.Attrs[name]; ok {
		return f, true
	}
	if env.State.Valid() {
		if f, err := env.State.Get(name); err == nil {
			return f, true
		}
	}
	return 0, false
}
