package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ontology"
)

// genPolicies builds a random consistent batch of policies: mixed
// event types (including wildcards), do and forbid modalities, forbids
// matching by name or by category, and optional threshold conditions.
func genPolicies(rng *rand.Rand, n int) []Policy {
	events := []string{"tick", "smoke", WildcardEvent}
	actions := []string{"move", "observe", "strike"}
	categories := []ontology.Concept{"", "mobility", "surveillance", "kinetic"}
	out := make([]Policy, 0, n)
	for i := 0; i < n; i++ {
		p := Policy{
			ID:        fmt.Sprintf("p%03d", i),
			EventType: events[rng.Intn(len(events))],
			Priority:  rng.Intn(10),
			Modality:  ModalityDo,
			Action: Action{
				Name:     actions[rng.Intn(len(actions))],
				Category: categories[rng.Intn(len(categories))],
			},
		}
		if rng.Intn(4) == 0 {
			p.Modality = ModalityForbid
			if rng.Intn(2) == 0 {
				// Forbid by category instead of by name.
				p.Action = Action{Category: categories[1+rng.Intn(len(categories)-1)]}
			}
		}
		if rng.Intn(2) == 0 {
			p.Condition = Threshold{Quantity: "x", Op: CmpGT, Value: float64(rng.Intn(10))}
		}
		out = append(out, p)
	}
	return out
}

// Property: evaluation is independent of the order policies were
// added (the map-backed set must not leak iteration order).
func TestEvaluateInsertionOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		policies := genPolicies(rng, 30)
		env := Env{Event: Event{
			Type:  []string{"tick", "smoke"}[rng.Intn(2)],
			Attrs: map[string]float64{"x": float64(rng.Intn(12))},
		}}

		forward := NewSet()
		for _, p := range policies {
			if err := forward.Add(p); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		shuffled := NewSet()
		perm := rng.Perm(len(policies))
		for _, idx := range perm {
			if err := shuffled.Add(policies[idx]); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}

		a, b := forward.Evaluate(env), shuffled.Evaluate(env)
		if !reflect.DeepEqual(a.Actions, b.Actions) {
			t.Fatalf("trial %d: actions differ by insertion order:\n%v\n%v", trial, a.Actions, b.Actions)
		}
		if !reflect.DeepEqual(a.Matched, b.Matched) {
			t.Fatalf("trial %d: matched differ:\n%v\n%v", trial, a.Matched, b.Matched)
		}
		if !reflect.DeepEqual(a.Vetoed, b.Vetoed) {
			t.Fatalf("trial %d: vetoes differ:\n%v\n%v", trial, a.Vetoed, b.Vetoed)
		}
	}
}

// Property: a forbid policy never increases the number of actions, and
// every vetoed action names a matching forbid policy.
func TestForbidMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		policies := genPolicies(rng, 20)
		env := Env{Event: Event{Type: "tick", Attrs: map[string]float64{"x": 5}}}

		withoutForbids := NewSet()
		withForbids := NewSet()
		for _, p := range policies {
			if err := withForbids.Add(p); err != nil {
				t.Fatalf("Add: %v", err)
			}
			if p.Modality == ModalityDo {
				if err := withoutForbids.Add(p); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
		}
		all := withoutForbids.Evaluate(env)
		filtered := withForbids.Evaluate(env)
		if len(filtered.Actions) > len(all.Actions) {
			t.Fatalf("trial %d: forbids increased actions %d → %d", trial, len(all.Actions), len(filtered.Actions))
		}
		for doID, forbidID := range filtered.Vetoed {
			fb, ok := withForbids.Get(forbidID)
			if !ok || fb.Modality != ModalityForbid {
				t.Fatalf("trial %d: veto of %s cites non-forbid %s", trial, doID, forbidID)
			}
		}
	}
}

// Property: evaluation results contain only actions from policies that
// match the environment.
func TestEvaluateSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		policies := genPolicies(rng, 25)
		set := NewSet()
		byID := make(map[string]Policy, len(policies))
		for _, p := range policies {
			if err := set.Add(p); err != nil {
				t.Fatalf("Add: %v", err)
			}
			byID[p.ID] = p
		}
		env := Env{Event: Event{Type: "smoke", Attrs: map[string]float64{"x": float64(rng.Intn(12))}}}
		d := set.Evaluate(env)
		for _, id := range d.Matched {
			if !byID[id].Matches(env) {
				t.Fatalf("trial %d: %s reported matched but does not match", trial, id)
			}
		}
		for _, p := range policies {
			if p.Matches(env) && !contains(d.Matched, p.ID) {
				t.Fatalf("trial %d: %s matches but was not reported", trial, p.ID)
			}
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
