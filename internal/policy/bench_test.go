package policy

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// benchSet builds a policy set shaped like a generative-scale device:
// policies spread over many event types, a sprinkling of wildcard
// policies, roughly one forbid per seven policies, and threshold
// conditions on half of them.
func benchSet(b testing.TB, n int) (*Set, []Env) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	eventTypes := 16
	if n < 16 {
		eventTypes = n
	}
	set := NewSet()
	for i := 0; i < n; i++ {
		p := Policy{
			ID:        fmt.Sprintf("p%05d", i),
			EventType: fmt.Sprintf("ev-%02d", i%eventTypes),
			Priority:  i % 10,
			Modality:  ModalityDo,
			Action:    Action{Name: fmt.Sprintf("act-%d", i%5), Category: "routine"},
		}
		if i%17 == 0 {
			p.EventType = WildcardEvent
		}
		if i%7 == 0 {
			p.Modality = ModalityForbid
			p.Action = Action{Name: fmt.Sprintf("act-%d", i%5)}
		}
		if i%2 == 0 {
			p.Condition = Threshold{Quantity: "x", Op: CmpGT, Value: float64(rng.Intn(100))}
		}
		if err := set.Add(p); err != nil {
			b.Fatal(err)
		}
	}
	envs := make([]Env, 8)
	for i := range envs {
		envs[i] = Env{Event: Event{
			Type:  fmt.Sprintf("ev-%02d", i%eventTypes),
			Attrs: map[string]float64{"x": 50},
		}}
	}
	return set, envs
}

func benchEvaluate(b *testing.B, n int) {
	set, envs := benchSet(b, n)
	set.Evaluate(envs[0]) // warm any compile path before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Evaluate(envs[i%len(envs)])
	}
}

func BenchmarkEvaluate10(b *testing.B)  { benchEvaluate(b, 10) }
func BenchmarkEvaluate100(b *testing.B) { benchEvaluate(b, 100) }
func BenchmarkEvaluate1k(b *testing.B)  { benchEvaluate(b, 1000) }
func BenchmarkEvaluate10k(b *testing.B) { benchEvaluate(b, 10000) }

// BenchmarkEvaluate1kInstrumented measures the decision plane with
// telemetry attached: every Evaluate is timed into the
// policy.evaluate_ms histogram. Compare against BenchmarkEvaluate1k
// for the instrumentation overhead (see EXPERIMENTS.md E14).
func BenchmarkEvaluate1kInstrumented(b *testing.B) {
	set, envs := benchSet(b, 1000)
	set.Instrument(telemetry.NewRegistry(), "device", "bench")
	set.Evaluate(envs[0]) // warm any compile path before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Evaluate(envs[i%len(envs)])
	}
}

// TestEvaluateInstrumentationAllocs pins the E14 acceptance bound:
// attaching the evaluate timer may cost at most 2 extra allocations
// per evaluation over the uninstrumented path.
func TestEvaluateInstrumentationAllocs(t *testing.T) {
	plain, envs := benchSet(t, 1000)
	plain.Evaluate(envs[0])
	instrumented, envs2 := benchSet(t, 1000)
	instrumented.Instrument(telemetry.NewRegistry(), "device", "bench")
	instrumented.Evaluate(envs2[0])

	const rounds = 200
	base := testing.AllocsPerRun(rounds, func() {
		for i := range envs {
			plain.Evaluate(envs[i])
		}
	})
	timed := testing.AllocsPerRun(rounds, func() {
		for i := range envs2 {
			instrumented.Evaluate(envs2[i])
		}
	})
	// Both counts are per 8 evaluations; the bound is per evaluation.
	perEval := (timed - base) / float64(len(envs2))
	if perEval > 2 {
		t.Errorf("instrumentation adds %.2f allocs per Evaluate (base %.1f, timed %.1f); bound is 2",
			perEval, base, timed)
	}
}

// BenchmarkEvaluateParallel1k measures concurrent readers while a
// background writer keeps replacing one policy (forcing recompiles of
// the decision plane under the snapshot design, and lock contention
// under the legacy one).
func BenchmarkEvaluateParallel1k(b *testing.B) {
	set, envs := benchSet(b, 1000)
	set.Evaluate(envs[0])
	mut := Policy{
		ID: "p00001", EventType: "ev-01", Priority: 1,
		Modality: ModalityDo, Action: Action{Name: "act-1"},
	}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; !stop.Load(); i++ {
			mut.Priority = i % 10
			if err := set.Replace(mut); err != nil {
				b.Error(err)
				return
			}
			for j := 0; j < 64 && !stop.Load(); j++ {
				set.Evaluate(envs[j%len(envs)])
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			set.Evaluate(envs[i%len(envs)])
			i++
		}
	})
	stop.Store(true)
	<-done
}

func BenchmarkConflicts1kDisjoint(b *testing.B) {
	set := NewSet()
	for i := 0; i < 1000; i++ {
		if err := set.Add(Policy{
			ID:        fmt.Sprintf("p%05d", i),
			EventType: fmt.Sprintf("ev-%04d", i),
			Modality:  ModalityDo,
			Action:    Action{Name: "act"},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := set.Conflicts(); len(got) != 0 {
			b.Fatalf("Conflicts = %v", got)
		}
	}
}

// benchResidualSet builds a fleet-shaped policy set for the partial-
// evaluation benchmarks: every policy is scoped to one of `classes`
// device classes through a static condition
// (device.type == class-NN AND x > t), so a device's residual keeps
// roughly n/classes policies while the full snapshot must reject the
// other classes' policies at every decision.
func benchResidualSet(b testing.TB, n, classes int) (*Set, StaticEnv, []Env) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	eventTypes := 16
	if n < 16 {
		eventTypes = n
	}
	set := NewSet()
	batch := make([]Policy, 0, n)
	for i := 0; i < n; i++ {
		p := Policy{
			ID:        fmt.Sprintf("p%05d", i),
			EventType: fmt.Sprintf("ev-%02d", i%eventTypes),
			Priority:  i % 10,
			Modality:  ModalityDo,
			Action:    Action{Name: fmt.Sprintf("act-%d", i%5), Category: "routine"},
			Condition: And{
				LabelEquals{Label: "device.type", Value: fmt.Sprintf("class-%02d", i%classes)},
				Threshold{Quantity: "x", Op: CmpGT, Value: float64(rng.Intn(100))},
			},
		}
		if i%17 == 0 {
			p.EventType = WildcardEvent
		}
		if i%7 == 0 {
			p.Modality = ModalityForbid
			p.Action = Action{Name: fmt.Sprintf("act-%d", i%5)}
		}
		batch = append(batch, p)
	}
	if err := set.AddBatch(batch); err != nil {
		b.Fatal(err)
	}
	profile := DeviceProfile("class-00", "us")
	envs := make([]Env, 8)
	for i := range envs {
		envs[i] = Env{
			Event: Event{
				Type:  fmt.Sprintf("ev-%02d", i%eventTypes),
				Attrs: map[string]float64{"x": 50},
			},
			Static: profile,
		}
	}
	return set, profile, envs
}

// BenchmarkResidualFullEvaluate10k is the "before" lane of the
// partial-evaluation comparison: the full snapshot decides for one
// device of a 64-class fleet, rejecting the other classes' policies
// at decision time on every event.
func BenchmarkResidualFullEvaluate10k(b *testing.B) {
	set, _, envs := benchResidualSet(b, 10000, 64)
	snap := set.Snapshot()
	snap.Evaluate(envs[0]) // warm any compile path before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Evaluate(envs[i%len(envs)])
	}
}

// BenchmarkResidualEvaluate10k is the "after" lane: the same fleet's
// policies, but the device evaluates its residual — the other classes'
// policies were dropped once, at specialization time.
func BenchmarkResidualEvaluate10k(b *testing.B) {
	set, profile, envs := benchResidualSet(b, 10000, 64)
	res := set.Snapshot().Specialize(profile)
	res.Evaluate(envs[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Evaluate(envs[i%len(envs)])
	}
}

// BenchmarkSpecialize10k prices the specialization itself: folding
// 10k conditions and recompiling the ~1/64 survivors. Paid once per
// (policy epoch, device profile), then amortized over every decision
// by the residual cache.
func BenchmarkSpecialize10k(b *testing.B) {
	set, profile, _ := benchResidualSet(b, 10000, 64)
	snap := set.Snapshot()
	fp := profile.Fingerprint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.specialize(profile, fp)
	}
}

// BenchmarkSpecializeCached10k prices the steady state: a cache hit on
// an already-specialized snapshot (what a device pays when it
// revalidates its residual after another device forced the compile).
func BenchmarkSpecializeCached10k(b *testing.B) {
	set, profile, _ := benchResidualSet(b, 10000, 64)
	snap := set.Snapshot()
	snap.Specialize(profile)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Specialize(profile)
	}
}

// BenchmarkResidualEvaluateInto10k is the device hot path: residual
// decisions into a reused Decision, as MAPE ticks evaluate through the
// pooled scratch — no per-decision allocation at all.
func BenchmarkResidualEvaluateInto10k(b *testing.B) {
	set, profile, envs := benchResidualSet(b, 10000, 64)
	res := set.Snapshot().Specialize(profile)
	var d Decision
	res.EvaluateInto(envs[0], &d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.EvaluateInto(envs[i%len(envs)], &d)
	}
}
