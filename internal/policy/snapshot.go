package policy

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Snapshot is an immutable, compiled view of a Set — the read side of
// the decision plane. Mutations on the Set invalidate the published
// snapshot; the next reader compiles a fresh one (pre-sorted policies,
// per-event-type indexes, and a forbid-coverage table resolved through
// the category matcher at compile time) and publishes it through an
// atomic pointer, so Evaluate is lock-free and touches only the
// policies that can match the event.
//
// A Snapshot pins the category matcher's answers at compile time: if
// an injected taxonomy gains edges after compilation, call
// Set.Invalidate to force a recompile.
type Snapshot struct {
	epoch uint64
	// epochStr is the decimal rendering of epoch, precomputed so hot
	// audit paths can stamp the policy epoch without formatting.
	epochStr string
	// revision is the policy-distribution revision the owning Set had
	// activated when this snapshot compiled (0 = unmanaged). Because
	// ApplyRevision installs a whole revision under one lock and one
	// invalidation, every snapshot's policies belong to exactly one
	// revision — never a mix.
	revision uint64
	matchCat CategoryMatcher
	// sorted holds every policy in global evaluation order (priority
	// descending, then ID ascending). A policy's position in this
	// slice is its index in the bucket and coverage tables below.
	sorted []compiledPolicy
	// exact maps each concrete event type to the ascending indices of
	// its policies; wildcard holds the indices of WildcardEvent
	// policies. Merging a bucket with wildcard by index recovers the
	// global order.
	exact    map[string][]int32
	wildcard []int32
	// compileTime is how long compilation took (exposed for the
	// control-plane metrics).
	compileTime time.Duration
	// evalMS, when the owning Set is instrumented, times every
	// Evaluate. Nil (the default) costs the hot path one branch.
	evalMS *telemetry.Histogram
	// res1 is the single-slot front of the residual cache: most
	// snapshots — per-device sets in particular — are only ever
	// specialized for one profile, and the slot spares them the
	// sync.Map entry (an allocation per device at fleet scale).
	res1 atomic.Pointer[Residual]
	// residuals caches further *Residual specializations of this
	// snapshot by profile fingerprint. Because mutations discard the
	// whole snapshot, both cache tiers are invalidated atomically with
	// it — residuals can never mix epochs.
	residuals sync.Map
	// resStats, when the owning Set exists, accounts specialization
	// activity across the set's lifetime (shared by all its snapshots).
	resStats *residualStats
	// residualFP, on specialized snapshots, is the profile fingerprint
	// they were specialized for ("" on full snapshots).
	residualFP string
}

// compiledPolicy is one policy plus its decision-plane
// precomputations.
type compiledPolicy struct {
	Policy
	// cond is the compiled form of Condition (namespaces pre-resolved,
	// schema indexes cached); nil means the policy always matches. The
	// interpreted Condition is retained for Describe/decompilation.
	cond evalCond
	// coveringForbids lists, in global order, the indices of forbid
	// policies that could veto this do-policy: equal-or-higher
	// priority, overlapping event type, and a pattern covering the
	// action under the snapshot's category matcher.
	coveringForbids []int32
}

// compileSnapshot builds a snapshot from the sorted policies.
func compileSnapshot(sorted []Policy, matchCat CategoryMatcher, epoch uint64) *Snapshot {
	start := time.Now()
	snap := &Snapshot{
		epoch:    epoch,
		epochStr: strconv.FormatUint(epoch, 10),
		matchCat: matchCat,
		sorted:   make([]compiledPolicy, len(sorted)),
		exact:    make(map[string][]int32),
	}
	var forbids []int32
	for i, p := range sorted {
		snap.sorted[i] = compiledPolicy{Policy: p, cond: compileCond(p.Condition)}
		if p.EventType == WildcardEvent {
			snap.wildcard = append(snap.wildcard, int32(i))
		} else {
			snap.exact[p.EventType] = append(snap.exact[p.EventType], int32(i))
		}
		if p.Modality == ModalityForbid {
			forbids = append(forbids, int32(i))
		}
	}
	if len(forbids) > 0 {
		for i := range snap.sorted {
			d := &snap.sorted[i]
			if d.Modality == ModalityForbid {
				continue
			}
			for _, fi := range forbids {
				fb := &snap.sorted[fi].Policy
				if fb.Priority < d.Priority {
					continue
				}
				if !eventTypesOverlap(d.EventType, fb.EventType) {
					continue
				}
				if snap.covers(fb, d.Action) {
					d.coveringForbids = append(d.coveringForbids, fi)
				}
			}
		}
	}
	snap.compileTime = time.Since(start)
	return snap
}

// covers reports whether the forbid policy's pattern covers the
// action: by name when the pattern names one, by category otherwise.
func (s *Snapshot) covers(fb *Policy, a Action) bool {
	if fb.Action.Name != "" {
		return fb.Action.Name == a.Name
	}
	return s.matchCat(a.Category, fb.Action.Category)
}

// Epoch identifies this compilation; it increases with every
// recompile of the owning Set.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// EpochString returns the precomputed decimal form of Epoch.
func (s *Snapshot) EpochString() string { return s.epochStr }

// Revision returns the distribution revision this snapshot was
// compiled from (0 = the set is not revision-managed).
func (s *Snapshot) Revision() uint64 { return s.revision }

// Len returns the number of policies in the snapshot.
func (s *Snapshot) Len() int { return len(s.sorted) }

// CompileTime reports how long this snapshot took to compile.
func (s *Snapshot) CompileTime() time.Duration { return s.compileTime }

// Policies returns a copy of every policy in evaluation order.
func (s *Snapshot) Policies() []Policy {
	out := make([]Policy, len(s.sorted))
	for i := range s.sorted {
		out[i] = s.sorted[i].Policy
	}
	return out
}

// scratch is the pooled per-evaluation working memory.
type scratch struct {
	matched []int32
	forbids []int32
	// vetoes holds (do index, forbid index) pairs, interleaved, so
	// the Vetoed map can be allocated at its exact size.
	vetoes []int32
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// Evaluate matches the environment against the snapshot. It is
// lock-free, allocates only for the returned Decision, and visits only
// the policies indexed under the event's type (plus wildcards). The
// result is identical to evaluating the policies with a full linear
// scan (see evaluateLinear). When the owning Set is instrumented, the
// evaluation latency lands in the policy.evaluate_ms histogram;
// uninstrumented snapshots pay one nil check.
func (s *Snapshot) Evaluate(env Env) Decision {
	if h := s.evalMS; h != nil {
		start := time.Now()
		d := s.evaluate(env)
		h.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
		return d
	}
	return s.evaluate(env)
}

// EvaluateInto evaluates like Evaluate but writes the decision into d,
// reusing the capacity of d.Matched and d.Actions across calls. It is
// the zero-steady-state-allocation form for per-device MAPE scratch:
// a caller that owns d and does not retain the slices between calls
// pays nothing once the slices have grown to their working size.
// d.Vetoed is reset to nil and allocated only when a veto occurs.
func (s *Snapshot) EvaluateInto(env Env, d *Decision) {
	d.Matched = d.Matched[:0]
	d.Actions = d.Actions[:0]
	d.Vetoed = nil
	if h := s.evalMS; h != nil {
		start := time.Now()
		s.evaluateInto(env, d)
		h.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
		return
	}
	s.evaluateInto(env, d)
}

func (s *Snapshot) evaluate(env Env) Decision {
	var d Decision
	s.evaluateInto(env, &d)
	return d
}

// evaluateInto appends results to d's (possibly pre-owned) slices; the
// caller has already reset them. Starting from nil slices this yields
// exactly the Decision the original one-shot evaluate produced.
func (s *Snapshot) evaluateInto(env Env, d *Decision) {
	bucket := s.exact[env.Event.Type]
	if len(bucket) == 0 && len(s.wildcard) == 0 {
		return
	}

	sc := scratchPool.Get().(*scratch)
	matched := sc.matched[:0]
	forbids := sc.forbids[:0]
	nDos := 0

	// Merge the event bucket with the wildcard bucket by ascending
	// index — both are pre-sorted, so this walks the candidates in
	// global evaluation order.
	i, j := 0, 0
	for i < len(bucket) || j < len(s.wildcard) {
		var idx int32
		if j >= len(s.wildcard) || (i < len(bucket) && bucket[i] < s.wildcard[j]) {
			idx = bucket[i]
			i++
		} else {
			idx = s.wildcard[j]
			j++
		}
		p := &s.sorted[idx]
		if p.cond != nil && !p.cond.holds(env) {
			continue
		}
		matched = append(matched, idx)
		if p.Modality == ModalityForbid {
			forbids = append(forbids, idx)
		} else {
			nDos++
		}
	}

	for _, idx := range matched {
		d.Matched = append(d.Matched, s.sorted[idx].ID)
	}
	vetoes := sc.vetoes[:0]
	if nDos > 0 {
		for _, idx := range matched {
			p := &s.sorted[idx]
			if p.Modality == ModalityForbid {
				continue
			}
			if fi, vetoed := firstCommon(p.coveringForbids, forbids); vetoed {
				vetoes = append(vetoes, idx, fi)
				continue
			}
			d.Actions = append(d.Actions, p.Action)
		}
		if len(vetoes) > 0 {
			d.Vetoed = make(map[string]string, len(vetoes)/2)
			for k := 0; k < len(vetoes); k += 2 {
				d.Vetoed[s.sorted[vetoes[k]].ID] = s.sorted[vetoes[k+1]].ID
			}
		}
	}

	sc.matched = matched
	sc.forbids = forbids
	sc.vetoes = vetoes
	scratchPool.Put(sc)
}

// firstCommon returns the smallest element present in both ascending
// slices. Because indices follow the global evaluation order, the
// first common covering forbid is exactly the forbid a linear scan
// would have picked.
func firstCommon(a, b []int32) (int32, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return 0, false
}

// ForbidsAction reports whether any forbid policy matching the
// environment covers the action, regardless of priority, and returns
// the forbidding policy's ID. Guards use it as a strict defense-in-
// depth check on actions that did not come through Evaluate (injected
// commands, direct actuator requests).
func (s *Snapshot) ForbidsAction(env Env, a Action) (string, bool) {
	bucket := s.exact[env.Event.Type]
	i, j := 0, 0
	for i < len(bucket) || j < len(s.wildcard) {
		var idx int32
		if j >= len(s.wildcard) || (i < len(bucket) && bucket[i] < s.wildcard[j]) {
			idx = bucket[i]
			i++
		} else {
			idx = s.wildcard[j]
			j++
		}
		p := &s.sorted[idx]
		if p.Modality != ModalityForbid {
			continue
		}
		if p.cond != nil && !p.cond.holds(env) {
			continue
		}
		if s.covers(&p.Policy, a) {
			return p.ID, true
		}
	}
	return "", false
}

// VetoesStatically reports whether a standing forbid policy would veto
// the candidate do-policy whenever both matched: equal-or-higher
// priority, overlapping event type, and a covering pattern. Oversight
// uses it to reject candidates that the compiled decision plane would
// never execute.
func (s *Snapshot) VetoesStatically(p Policy) (string, bool) {
	if p.Modality != ModalityDo {
		return "", false
	}
	for i := range s.sorted {
		fb := &s.sorted[i]
		if fb.Modality != ModalityForbid || fb.Priority < p.Priority {
			continue
		}
		if !eventTypesOverlap(p.EventType, fb.EventType) {
			continue
		}
		if s.covers(&fb.Policy, p.Action) {
			return fb.ID, true
		}
	}
	return "", false
}

// Conflicts statically reports potential conflicts between snapshot
// policies, comparing only pairs whose event types can overlap: each
// concrete event type's bucket is checked within itself and against
// the wildcard bucket, so fully disjoint policies are never compared.
// The output order matches a full pairwise scan in evaluation order.
func (s *Snapshot) Conflicts() []Conflict {
	var out []Conflict
	for i := range s.sorted {
		a := &s.sorted[i]
		if a.EventType == WildcardEvent {
			// A wildcard overlaps everything that follows it.
			for j := i + 1; j < len(s.sorted); j++ {
				s.pairConflict(&out, a, &s.sorted[j])
			}
			continue
		}
		// Later policies in the same bucket, merged with later
		// wildcards to preserve the pairwise scan's order.
		same := tailAfter(s.exact[a.EventType], int32(i))
		wild := tailAfter(s.wildcard, int32(i))
		si, wi := 0, 0
		for si < len(same) || wi < len(wild) {
			var idx int32
			if wi >= len(wild) || (si < len(same) && same[si] < wild[wi]) {
				idx = same[si]
				si++
			} else {
				idx = wild[wi]
				wi++
			}
			s.pairConflict(&out, a, &s.sorted[idx])
		}
	}
	return out
}

// pairConflict applies the conflict rules to one ordered pair.
func (s *Snapshot) pairConflict(out *[]Conflict, a, b *compiledPolicy) {
	doP, fbP := a, b
	if doP.Modality == ModalityForbid {
		doP, fbP = b, a
	}
	switch {
	case doP.Modality == ModalityDo && fbP.Modality == ModalityForbid:
		if fbP.Priority >= doP.Priority && s.covers(&fbP.Policy, doP.Action) {
			*out = append(*out, Conflict{
				A:      doP.ID,
				B:      fbP.ID,
				Reason: fmt.Sprintf("forbid %s covers do action %q on event %s", fbP.ID, doP.Action.Name, doP.EventType),
			})
		}
	case a.Modality == ModalityDo && b.Modality == ModalityDo:
		if a.Priority == b.Priority && a.Action.Name == b.Action.Name && a.Action.Target == b.Action.Target {
			*out = append(*out, Conflict{
				A:      a.ID,
				B:      b.ID,
				Reason: fmt.Sprintf("duplicate action %q at priority %d", a.Action.Name, a.Priority),
			})
		}
	}
}

// tailAfter returns the suffix of the ascending index slice holding
// values strictly greater than idx.
func tailAfter(indices []int32, idx int32) []int32 {
	lo, hi := 0, len(indices)
	for lo < hi {
		mid := (lo + hi) / 2
		if indices[mid] <= idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return indices[lo:]
}
