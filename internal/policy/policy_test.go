package policy

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/statespace"
)

func testEnv(t *testing.T, eventType string, attrs map[string]float64, stateVals map[string]float64) Env {
	t.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("fuel", 0, 100),
		statespace.Var("heat", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	st, err := s.StateFromMap(stateVals)
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	return Env{
		Event: Event{Type: eventType, Attrs: attrs},
		State: st,
	}
}

func TestEnvLookup(t *testing.T) {
	env := testEnv(t, "tick", map[string]float64{"intensity": 5, "fuel": 99}, map[string]float64{"fuel": 40})

	tests := []struct {
		name   string
		want   float64
		wantOK bool
	}{
		{name: "intensity", want: 5, wantOK: true},
		{name: "fuel", want: 99, wantOK: true}, // event shadows state
		{name: "event.fuel", want: 99, wantOK: true},
		{name: "state.fuel", want: 40, wantOK: true},
		{name: "state.heat", want: 0, wantOK: true},
		{name: "missing", wantOK: false},
		{name: "event.missing", wantOK: false},
		{name: "state.missing", wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := env.Lookup(tt.name)
			if ok != tt.wantOK || got != tt.want {
				t.Errorf("Lookup(%q) = %g,%v, want %g,%v", tt.name, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestEnvLookupInvalidState(t *testing.T) {
	env := Env{Event: Event{Type: "e"}}
	if _, ok := env.Lookup("state.x"); ok {
		t.Error("Lookup through invalid state succeeded")
	}
	if _, ok := env.Lookup("x"); ok {
		t.Error("Lookup of missing name with invalid state succeeded")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Type: "smoke", Source: "drone-1", Attrs: map[string]float64{"b": 2, "a": 1}}
	got := e.String()
	want := "smoke from drone-1 {a=1, b=2}"
	if got != want {
		t.Errorf("Event.String() = %q, want %q", got, want)
	}
	if e.Attr("a") != 1 || e.Attr("zz") != 0 {
		t.Error("Attr lookup wrong")
	}
	if e.Label("x") != "" {
		t.Error("Label on nil map wrong")
	}
}

func TestThresholdConditions(t *testing.T) {
	env := testEnv(t, "tick", map[string]float64{"x": 5}, nil)
	tests := []struct {
		cond Threshold
		want bool
	}{
		{cond: Threshold{Quantity: "x", Op: CmpLT, Value: 6}, want: true},
		{cond: Threshold{Quantity: "x", Op: CmpLT, Value: 5}, want: false},
		{cond: Threshold{Quantity: "x", Op: CmpLE, Value: 5}, want: true},
		{cond: Threshold{Quantity: "x", Op: CmpGT, Value: 4}, want: true},
		{cond: Threshold{Quantity: "x", Op: CmpGE, Value: 5}, want: true},
		{cond: Threshold{Quantity: "x", Op: CmpEQ, Value: 5}, want: true},
		{cond: Threshold{Quantity: "x", Op: CmpNE, Value: 5}, want: false},
		{cond: Threshold{Quantity: "missing", Op: CmpEQ, Value: 0}, want: false},
		{cond: Threshold{Quantity: "x", Op: CmpOp(99), Value: 0}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.cond.Describe(), func(t *testing.T) {
			if got := tt.cond.Holds(env); got != tt.want {
				t.Errorf("Holds = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCombinators(t *testing.T) {
	env := testEnv(t, "tick", map[string]float64{"x": 5}, nil)
	hi := Threshold{Quantity: "x", Op: CmpGT, Value: 3}
	lo := Threshold{Quantity: "x", Op: CmpLT, Value: 3}

	if !(And{hi}).Holds(env) || (And{hi, lo}).Holds(env) || !(And{}).Holds(env) {
		t.Error("And semantics wrong")
	}
	if !(Or{hi, lo}).Holds(env) || (Or{lo}).Holds(env) || (Or{}).Holds(env) {
		t.Error("Or semantics wrong")
	}
	if (Not{Of: hi}).Holds(env) || !(Not{Of: lo}).Holds(env) || (Not{}).Holds(env) {
		t.Error("Not semantics wrong")
	}
	if (CondFunc{}).Holds(env) {
		t.Error("nil CondFunc held")
	}
	if (True{}).Holds(env) != true {
		t.Error("True did not hold")
	}
	for _, d := range []string{
		(And{hi, lo}).Describe(), (Or{}).Describe(), (Not{Of: hi}).Describe(),
		(Not{}).Describe(), True{}.Describe(), (CondFunc{Name: "f"}).Describe(),
	} {
		if d == "" {
			t.Error("empty Describe()")
		}
	}
}

func TestLabelEquals(t *testing.T) {
	env := Env{Event: Event{Type: "discovered", Labels: map[string]string{"deviceType": "mule"}}}
	if !(LabelEquals{Label: "deviceType", Value: "mule"}).Holds(env) {
		t.Error("label match failed")
	}
	if (LabelEquals{Label: "deviceType", Value: "drone"}).Holds(env) {
		t.Error("label mismatch held")
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{
		CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=", CmpEQ: "==", CmpNE: "!=", CmpOp(0): "?",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("CmpOp(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	valid := Policy{ID: "p1", EventType: "tick", Modality: ModalityDo, Action: Action{Name: "act"}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	tests := []struct {
		name string
		p    Policy
	}{
		{name: "no id", p: Policy{EventType: "e", Modality: ModalityDo, Action: Action{Name: "a"}}},
		{name: "no event", p: Policy{ID: "p", Modality: ModalityDo, Action: Action{Name: "a"}}},
		{name: "do without action", p: Policy{ID: "p", EventType: "e", Modality: ModalityDo}},
		{name: "forbid matches nothing", p: Policy{ID: "p", EventType: "e", Modality: ModalityForbid}},
		{name: "bad modality", p: Policy{ID: "p", EventType: "e", Action: Action{Name: "a"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); !errors.Is(err, ErrInvalidPolicy) {
				t.Errorf("Validate = %v, want ErrInvalidPolicy", err)
			}
		})
	}
}

func TestPolicyMatches(t *testing.T) {
	p := Policy{
		ID: "p", EventType: "smoke", Modality: ModalityDo,
		Condition: Threshold{Quantity: "intensity", Op: CmpGT, Value: 3},
		Action:    Action{Name: "investigate"},
	}
	hi := Env{Event: Event{Type: "smoke", Attrs: map[string]float64{"intensity": 5}}}
	lo := Env{Event: Event{Type: "smoke", Attrs: map[string]float64{"intensity": 1}}}
	wrongType := Env{Event: Event{Type: "convoy", Attrs: map[string]float64{"intensity": 5}}}

	if !p.Matches(hi) || p.Matches(lo) || p.Matches(wrongType) {
		t.Error("Matches semantics wrong")
	}

	wild := Policy{ID: "w", EventType: WildcardEvent, Modality: ModalityDo, Action: Action{Name: "a"}}
	if !wild.Matches(wrongType) {
		t.Error("wildcard policy did not match")
	}
	nilCond := Policy{ID: "n", EventType: "smoke", Modality: ModalityDo, Action: Action{Name: "a"}}
	if !nilCond.Matches(hi) {
		t.Error("nil condition policy did not match")
	}
}

func TestStringers(t *testing.T) {
	p := Policy{
		ID: "p1", Priority: 3, Origin: OriginGenerated, EventType: "smoke",
		Modality: ModalityDo,
		Action: Action{
			Name: "dispatch", Target: "mule-1",
			Params:      map[string]string{"speed": "fast", "mode": "safe"},
			Effect:      statespace.Delta{"fuel": -5},
			Obligations: []string{"warn"},
		},
	}
	got := p.String()
	for _, want := range []string{"p1", "generated", "smoke", "dispatch→mule-1", "mode=safe, speed=fast", "fuel-5", "obligations[warn]"} {
		if !strings.Contains(got, want) {
			t.Errorf("Policy.String() = %q, missing %q", got, want)
		}
	}
	if OriginBuiltin.String() != "builtin" || OriginHuman.String() != "human" ||
		OriginShared.String() != "shared" || Origin(0).String() != "unknown" {
		t.Error("Origin.String wrong")
	}
	if ModalityDo.String() != "do" || ModalityForbid.String() != "forbid" || Modality(0).String() != "unknown" {
		t.Error("Modality.String wrong")
	}
}

func TestActionHelpers(t *testing.T) {
	a := Action{Name: "dig", Obligations: []string{"one"}}
	b := a.WithObligations("two", "three")
	if len(a.Obligations) != 1 {
		t.Error("WithObligations mutated the receiver")
	}
	if len(b.Obligations) != 3 || b.Obligations[2] != "three" {
		t.Errorf("WithObligations = %v", b.Obligations)
	}
	if !NoAction.IsNoAction() || a.IsNoAction() {
		t.Error("IsNoAction wrong")
	}
}
