package policy

import (
	"sort"

	"repro/internal/ontology"
	"repro/internal/statespace"
)

// Action describes an actuator invocation a policy may direct. Per the
// device model of Section V, "the action is the invocation of an
// actuator, resulting in a new state" — so an action carries its
// predicted effect on the device's own state, plus the metadata the
// guard layer needs: an action category (for the obligation ontology)
// and an outcome category (for the state-preference ontology).
type Action struct {
	// Name identifies the actuator operation (e.g. "dig-hole",
	// "dispatch-mule").
	Name string
	// Category is the action-category concept used for obligation
	// relevance and forbid-by-category matching.
	Category ontology.Concept
	// Outcome is the outcome category the action leads to if things
	// go wrong, used for "less bad" comparisons.
	Outcome ontology.Outcome
	// Target optionally names the entity acted upon.
	Target string
	// Params carries free-form string parameters.
	Params map[string]string
	// Effect is the predicted delta to the device's own state.
	Effect statespace.Delta
	// Obligations names follow-up obligations already attached to the
	// action (typically by the pre-action guard).
	Obligations []string
}

// WithObligations returns a copy of the action with the named
// obligations appended.
func (a Action) WithObligations(names ...string) Action {
	out := a
	out.Obligations = make([]string, 0, len(a.Obligations)+len(names))
	out.Obligations = append(out.Obligations, a.Obligations...)
	out.Obligations = append(out.Obligations, names...)
	return out
}

// String renders the action deterministically.
func (a Action) String() string {
	return string(a.AppendText(nil))
}

// AppendText appends the String rendering to dst and returns the
// extended slice, letting hot audit paths build the rendering into a
// reusable buffer with a single string allocation.
func (a Action) AppendText(dst []byte) []byte {
	dst = append(dst, a.Name...)
	if a.Target != "" {
		dst = append(dst, "→"...)
		dst = append(dst, a.Target...)
	}
	if len(a.Params) > 0 {
		var arr [8]string
		keys := arr[:0]
		for k := range a.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = append(dst, '(')
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = append(dst, k...)
			dst = append(dst, '=')
			dst = append(dst, a.Params[k]...)
		}
		dst = append(dst, ')')
	}
	if len(a.Effect) > 0 {
		dst = a.Effect.AppendText(dst)
	}
	if len(a.Obligations) > 0 {
		dst = append(dst, "+obligations["...)
		for i, o := range a.Obligations {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, o...)
		}
		dst = append(dst, ']')
	}
	return dst
}

// NoAction is the distinguished "take no action" choice — Section VI.B:
// a device refusing a bad transition may "simply [choose] the option of
// taking no action (which keeps it in the current good state)".
var NoAction = Action{Name: "no-op"}

// IsNoAction reports whether the action is the no-op.
func (a Action) IsNoAction() bool { return a.Name == NoAction.Name }
