package policy

import (
	"errors"
	"testing"
)

func revPolicy(id string, prio int, target string) Policy {
	return Policy{
		ID:        id,
		Origin:    OriginShared,
		Modality:  ModalityDo,
		Priority:  prio,
		EventType: "tick",
		Action:    Action{Name: "act", Target: target},
	}
}

func TestApplyRevisionAtomicInstall(t *testing.T) {
	s := NewSet()
	if err := s.ApplyRevision(1, []Policy{revPolicy("a", 2, "r1"), revPolicy("b", 1, "r1")}, nil); err != nil {
		t.Fatalf("ApplyRevision 1: %v", err)
	}
	if got := s.Revision(); got != 1 {
		t.Fatalf("Revision() = %d, want 1", got)
	}
	snap := s.Snapshot()
	if snap.Revision() != 1 {
		t.Fatalf("snapshot revision %d, want 1", snap.Revision())
	}

	// Revision 2 replaces a, removes b — one atomic step.
	if err := s.ApplyRevision(2, []Policy{revPolicy("a", 2, "r2")}, []string{"b"}); err != nil {
		t.Fatalf("ApplyRevision 2: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d after removal, want 1", s.Len())
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived its removal")
	}
	// The old snapshot still reads as revision 1 — immutability — while
	// a fresh one reads 2.
	if snap.Revision() != 1 {
		t.Fatalf("old snapshot revision mutated to %d", snap.Revision())
	}
	if got := s.Snapshot().Revision(); got != 2 {
		t.Fatalf("new snapshot revision %d, want 2", got)
	}
}

func TestApplyRevisionMonotonic(t *testing.T) {
	s := NewSet()
	if err := s.ApplyRevision(5, []Policy{revPolicy("a", 1, "r5")}, nil); err != nil {
		t.Fatalf("ApplyRevision 5: %v", err)
	}
	for _, rev := range []uint64{5, 4, 0} {
		if err := s.ApplyRevision(rev, []Policy{revPolicy("a", 1, "stale")}, nil); err == nil {
			t.Fatalf("ApplyRevision %d succeeded below active revision 5", rev)
		}
	}
	if p, _ := s.Get("a"); p.Action.Target != "r5" {
		t.Fatalf("rejected revision mutated policy: target %q", p.Action.Target)
	}
}

func TestApplyRevisionValidatesBeforeInstall(t *testing.T) {
	s := NewSet()
	if err := s.ApplyRevision(1, []Policy{revPolicy("a", 1, "r1")}, nil); err != nil {
		t.Fatalf("seed: %v", err)
	}
	bad := revPolicy("", 1, "r2") // invalid: empty ID
	err := s.ApplyRevision(2, []Policy{revPolicy("a", 1, "r2"), bad}, nil)
	if !errors.Is(err, ErrInvalidPolicy) {
		t.Fatalf("invalid upsert: err=%v, want ErrInvalidPolicy", err)
	}
	if s.Revision() != 1 {
		t.Fatalf("failed revision advanced the set to %d", s.Revision())
	}
	if p, _ := s.Get("a"); p.Action.Target != "r1" {
		t.Fatalf("failed revision partially applied: target %q", p.Action.Target)
	}

	dup := []Policy{revPolicy("x", 1, "r2"), revPolicy("x", 2, "r2")}
	if err := s.ApplyRevision(2, dup, nil); !errors.Is(err, ErrInvalidPolicy) {
		t.Fatalf("duplicate upsert IDs: err=%v, want ErrInvalidPolicy", err)
	}
}
