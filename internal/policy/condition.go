package policy

import (
	"fmt"
	"strings"
)

// Condition is the C of an ECA rule: a predicate over the triggering
// event and the device's current state.
type Condition interface {
	Holds(Env) bool
	Describe() string
}

// True is the always-satisfied condition.
type True struct{}

var _ Condition = True{}

// Holds always reports true.
func (True) Holds(Env) bool { return true }

// Describe returns "true".
func (True) Describe() string { return "true" }

// False is the never-satisfied condition. Specialization produces it
// when folding a condition that a device's static profile can never
// satisfy; authoring one directly makes a policy inert.
type False struct{}

var _ Condition = False{}

// Holds always reports false.
func (False) Holds(Env) bool { return false }

// Describe returns "false".
func (False) Describe() string { return "false" }

// CondFunc adapts a function into a Condition.
type CondFunc struct {
	Name string
	Fn   func(Env) bool
	// Static declares that Fn reads only Env.Static — nothing from the
	// event or the state. Specialization trusts the declaration: a
	// static CondFunc is invoked once per device profile and folded to
	// a constant. Declaring Static on a function that reads runtime
	// data breaks the residual's equivalence guarantee.
	Static bool
}

var _ Condition = CondFunc{}

// Holds invokes the function; a nil function never holds.
func (c CondFunc) Holds(env Env) bool { return c.Fn != nil && c.Fn(env) }

// Describe returns the condition's name.
func (c CondFunc) Describe() string { return c.Name }

// CmpOp is a comparison operator for threshold conditions.
type CmpOp int

// Comparison operators.
const (
	CmpLT CmpOp = iota + 1
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// String returns the operator's symbol.
func (op CmpOp) String() string {
	switch op {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	default:
		return "?"
	}
}

// Threshold compares a named quantity (event attribute or state
// variable, see Env.Lookup) against a constant. A missing quantity
// never satisfies the condition.
type Threshold struct {
	Quantity string
	Op       CmpOp
	Value    float64
}

var _ Condition = Threshold{}

// Holds evaluates the comparison.
func (t Threshold) Holds(env Env) bool {
	v, ok := env.Lookup(t.Quantity)
	if !ok {
		return false
	}
	return cmpHolds(t.Op, v, t.Value)
}

// cmpHolds applies one comparison operator; unknown operators never
// hold. It is shared by the interpreted Threshold and the compiled
// threshold nodes of the snapshot plane.
func cmpHolds(op CmpOp, v, want float64) bool {
	switch op {
	case CmpLT:
		return v < want
	case CmpLE:
		return v <= want
	case CmpGT:
		return v > want
	case CmpGE:
		return v >= want
	case CmpEQ:
		return v == want
	case CmpNE:
		return v != want
	default:
		return false
	}
}

// Describe renders the comparison.
func (t Threshold) Describe() string {
	return fmt.Sprintf("%s %s %g", t.Quantity, t.Op, t.Value)
}

// LabelEquals requires a label to equal a value: an event label, or —
// under the "device." prefix — a static profile label (so
// LabelEquals{"device.type", "drone"} scopes a policy to one device
// type and folds to a constant during specialization).
type LabelEquals struct {
	Label string
	Value string
}

var _ Condition = LabelEquals{}

// Holds compares the label.
func (l LabelEquals) Holds(env Env) bool {
	if v, ok := strings.CutPrefix(l.Label, StaticPrefix); ok {
		return env.Static.Label(v) == l.Value
	}
	return env.Event.Label(l.Label) == l.Value
}

// Describe renders the comparison.
func (l LabelEquals) Describe() string { return fmt.Sprintf("%s is %q", l.Label, l.Value) }

// And is the conjunction of its members; an empty And holds.
type And []Condition

var _ Condition = And(nil)

// Holds reports whether every member holds.
func (a And) Holds(env Env) bool {
	for _, c := range a {
		if !c.Holds(env) {
			return false
		}
	}
	return true
}

// Describe joins the member descriptions.
func (a And) Describe() string { return joinConds([]Condition(a), " and ") }

// Or is the disjunction of its members; an empty Or does not hold.
type Or []Condition

var _ Condition = Or(nil)

// Holds reports whether any member holds.
func (o Or) Holds(env Env) bool {
	for _, c := range o {
		if c.Holds(env) {
			return true
		}
	}
	return false
}

// Describe joins the member descriptions.
func (o Or) Describe() string { return joinConds([]Condition(o), " or ") }

// Not negates a condition.
type Not struct {
	Of Condition
}

var _ Condition = Not{}

// Holds reports whether the inner condition does not hold.
func (n Not) Holds(env Env) bool { return n.Of != nil && !n.Of.Holds(env) }

// Describe renders the negation.
func (n Not) Describe() string {
	if n.Of == nil {
		return "not(?)"
	}
	return "not(" + n.Of.Describe() + ")"
}

func joinConds(cs []Condition, sep string) string {
	if len(cs) == 0 {
		return "true"
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = "(" + c.Describe() + ")"
	}
	return strings.Join(parts, sep)
}
