package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ontology"
)

// diffTaxonomy builds the taxonomy used by the differential tests so
// category forbids exercise the compile-time coverage resolution.
func diffTaxonomy(t *testing.T) *ontology.Taxonomy {
	t.Helper()
	tx := ontology.NewTaxonomy()
	for child, parent := range map[string]string{
		"mobility":     "physical",
		"surveillance": "sensing",
		"kinetic":      "physical",
	} {
		if err := tx.AddIsA(ontology.Concept(child), ontology.Concept(parent)); err != nil {
			t.Fatalf("AddIsA: %v", err)
		}
	}
	return tx
}

// TestDifferentialSnapshotVsLinear is the compiled decision plane's
// correctness anchor: on randomized policy sets, snapshot evaluation
// must produce a Decision deeply equal to the legacy linear scan —
// same actions in the same order, same matched IDs, same vetoes.
func TestDifferentialSnapshotVsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	tx := diffTaxonomy(t)
	eventTypes := []string{"tick", "smoke", "other", WildcardEvent}
	for trial := 0; trial < 1100; trial++ {
		policies := genPolicies(rng, 1+rng.Intn(40))
		var set *Set
		matchCat := func(got, want ontology.Concept) bool { return got == want }
		if trial%2 == 0 {
			matchCat = TaxonomyMatcher(tx)
			set = NewSet(WithCategoryMatcher(matchCat))
		} else {
			set = NewSet()
		}
		for _, p := range policies {
			if err := set.Add(p); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		snap := set.Snapshot()
		sorted := snap.Policies()
		for e := 0; e < 3; e++ {
			env := Env{Event: Event{
				Type:  eventTypes[rng.Intn(len(eventTypes))],
				Attrs: map[string]float64{"x": float64(rng.Intn(12))},
			}}
			got := snap.Evaluate(env)
			want := evaluateLinear(sorted, matchCat, env)
			if !reflect.DeepEqual(got.Actions, want.Actions) {
				t.Fatalf("trial %d: actions differ:\nsnapshot %v\nlinear   %v", trial, got.Actions, want.Actions)
			}
			if !reflect.DeepEqual(got.Matched, want.Matched) {
				t.Fatalf("trial %d: matched differ:\nsnapshot %v\nlinear   %v", trial, got.Matched, want.Matched)
			}
			if !reflect.DeepEqual(got.Vetoed, want.Vetoed) {
				t.Fatalf("trial %d: vetoes differ:\nsnapshot %v\nlinear   %v", trial, got.Vetoed, want.Vetoed)
			}
		}
	}
}

// TestDifferentialConflicts checks the bucketed conflict scan against
// a brute-force pairwise reference on randomized sets.
func TestDifferentialConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		policies := genPolicies(rng, 1+rng.Intn(30))
		set := NewSet()
		for _, p := range policies {
			if err := set.Add(p); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		snap := set.Snapshot()
		got := set.Conflicts()
		want := bruteForceConflicts(snap.Policies(), snap.matchCat)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: conflicts differ:\nbucketed %v\nbrute    %v", trial, got, want)
		}
	}
}

// bruteForceConflicts is the original O(n²) pairwise scan, kept as the
// conflict oracle.
func bruteForceConflicts(sorted []Policy, matchCat CategoryMatcher) []Conflict {
	var out []Conflict
	for i, a := range sorted {
		for _, b := range sorted[i+1:] {
			if !eventTypesOverlap(a.EventType, b.EventType) {
				continue
			}
			doP, fbP := a, b
			if doP.Modality == ModalityForbid {
				doP, fbP = b, a
			}
			switch {
			case doP.Modality == ModalityDo && fbP.Modality == ModalityForbid:
				if fbP.Priority >= doP.Priority && forbidCovers(matchCat, fbP, doP.Action) {
					out = append(out, Conflict{
						A:      doP.ID,
						B:      fbP.ID,
						Reason: fmt.Sprintf("forbid %s covers do action %q on event %s", fbP.ID, doP.Action.Name, doP.EventType),
					})
				}
			case a.Modality == ModalityDo && b.Modality == ModalityDo:
				if a.Priority == b.Priority && a.Action.Name == b.Action.Name && a.Action.Target == b.Action.Target {
					out = append(out, Conflict{
						A:      a.ID,
						B:      b.ID,
						Reason: fmt.Sprintf("duplicate action %q at priority %d", a.Action.Name, a.Priority),
					})
				}
			}
		}
	}
	return out
}

func TestConflictsDisjointEventTypes(t *testing.T) {
	set := NewSet()
	for i := 0; i < 1000; i++ {
		if err := set.Add(Policy{
			ID:        fmt.Sprintf("p%04d", i),
			EventType: fmt.Sprintf("ev-%04d", i),
			Priority:  i % 10,
			Modality:  ModalityDo,
			Action:    Action{Name: "act"},
		}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if got := set.Conflicts(); len(got) != 0 {
		t.Fatalf("disjoint policies reported conflicts: %v", got)
	}
}

// TestSnapshotEpochAdvances checks the invalidation rules: reads reuse
// the published snapshot; every mutation forces exactly one recompile
// at the next read.
func TestSnapshotEpochAdvances(t *testing.T) {
	set := NewSet()
	if err := set.Add(Policy{ID: "a", EventType: "e", Modality: ModalityDo, Action: Action{Name: "x"}}); err != nil {
		t.Fatal(err)
	}
	s1 := set.Snapshot()
	if s2 := set.Snapshot(); s2 != s1 {
		t.Error("clean read recompiled the snapshot")
	}
	if err := set.Replace(Policy{ID: "a", EventType: "e", Modality: ModalityDo, Action: Action{Name: "y"}}); err != nil {
		t.Fatal(err)
	}
	s3 := set.Snapshot()
	if s3 == s1 || s3.Epoch() <= s1.Epoch() {
		t.Errorf("mutation did not advance the epoch: %d -> %d", s1.Epoch(), s3.Epoch())
	}
	stats := set.Stats()
	if stats.Compiles != 2 || stats.Epoch != s3.Epoch() {
		t.Errorf("Stats = %+v, want 2 compiles at epoch %d", stats, s3.Epoch())
	}
	// A snapshot taken before a mutation still evaluates the old view.
	d := s1.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 1 || d.Actions[0].Name != "x" {
		t.Errorf("old snapshot saw new policy: %v", d.Actions)
	}
	// Remove of a missing ID must not invalidate.
	if set.Remove("missing") {
		t.Error("Remove reported missing policy as removed")
	}
	if s4 := set.Snapshot(); s4 != s3 {
		t.Error("no-op Remove invalidated the snapshot")
	}
}

func TestAddBatchAtomicity(t *testing.T) {
	set := NewSet()
	good := Policy{ID: "g", EventType: "e", Modality: ModalityDo, Action: Action{Name: "x"}}
	bad := Policy{ID: "", EventType: "e"}
	if err := set.AddBatch([]Policy{good, bad}); err == nil {
		t.Fatal("AddBatch accepted invalid policy")
	}
	if set.Len() != 0 {
		t.Fatalf("partial batch inserted: Len = %d", set.Len())
	}
	batch := []Policy{
		good,
		{ID: "h", EventType: "e", Priority: 2, Modality: ModalityForbid, Action: Action{Name: "x"}},
	}
	if err := set.AddBatch(batch); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if err := set.AddBatch([]Policy{{ID: "g", EventType: "e", Modality: ModalityDo, Action: Action{Name: "x"}}}); err == nil {
		t.Fatal("AddBatch accepted duplicate of existing ID")
	}
	if err := set.AddBatch([]Policy{
		{ID: "i", EventType: "e", Modality: ModalityDo, Action: Action{Name: "x"}},
		{ID: "i", EventType: "e", Modality: ModalityDo, Action: Action{Name: "x"}},
	}); err == nil {
		t.Fatal("AddBatch accepted duplicate IDs within batch")
	}
	d := set.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Matched) != 2 || d.Vetoed["g"] != "h" {
		t.Errorf("batch evaluation wrong: %+v", d)
	}
	if err := set.ReplaceBatch([]Policy{{ID: "h", EventType: "e", Priority: 2, Modality: ModalityForbid, Action: Action{Name: "other"}}}); err != nil {
		t.Fatalf("ReplaceBatch: %v", err)
	}
	d = set.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 1 || d.Vetoed != nil {
		t.Errorf("ReplaceBatch not applied: %+v", d)
	}
}

func TestVetoedNilWhenNoVeto(t *testing.T) {
	set := NewSet()
	if err := set.Add(Policy{ID: "a", EventType: "e", Modality: ModalityDo, Action: Action{Name: "x"}}); err != nil {
		t.Fatal(err)
	}
	if d := set.Evaluate(Env{Event: Event{Type: "e"}}); d.Vetoed != nil {
		t.Errorf("Vetoed allocated without a veto: %v", d.Vetoed)
	}
	if d := set.Evaluate(Env{Event: Event{Type: "none"}}); d.Vetoed != nil || d.Matched != nil || d.Actions != nil {
		t.Errorf("no-match decision not empty: %+v", d)
	}
}

func TestSnapshotForbidsAction(t *testing.T) {
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("fire-weapon", "kinetic-action"); err != nil {
		t.Fatal(err)
	}
	set := NewSet(WithCategoryMatcher(TaxonomyMatcher(tx)))
	if err := set.Add(Policy{
		ID: "forbid-kinetic", EventType: WildcardEvent, Priority: 0, Modality: ModalityForbid,
		Action: Action{Category: "kinetic-action"},
	}); err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	env := Env{Event: Event{Type: "command"}}
	if id, ok := snap.ForbidsAction(env, Action{Name: "engage", Category: "fire-weapon"}); !ok || id != "forbid-kinetic" {
		t.Errorf("ForbidsAction = %q,%v", id, ok)
	}
	if _, ok := snap.ForbidsAction(env, Action{Name: "observe", Category: "sensing"}); ok {
		t.Error("ForbidsAction matched uncovered action")
	}
}

func TestSnapshotVetoesStatically(t *testing.T) {
	set := NewSet()
	if err := set.Add(Policy{
		ID: "no-strike", EventType: WildcardEvent, Priority: 9, Modality: ModalityForbid,
		Action: Action{Name: "strike"},
	}); err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	lo := Policy{ID: "c", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "strike"}}
	if id, ok := snap.VetoesStatically(lo); !ok || id != "no-strike" {
		t.Errorf("VetoesStatically(low) = %q,%v", id, ok)
	}
	hi := lo
	hi.Priority = 10
	if _, ok := snap.VetoesStatically(hi); ok {
		t.Error("VetoesStatically vetoed a higher-priority do")
	}
	other := lo
	other.Action = Action{Name: "observe"}
	if _, ok := snap.VetoesStatically(other); ok {
		t.Error("VetoesStatically vetoed an uncovered action")
	}
}

// TestConcurrentEvaluateReplace hammers lock-free readers against
// writers; run under -race this is the tier-1 concurrency check for
// the decision plane.
func TestConcurrentEvaluateReplace(t *testing.T) {
	set := NewSet()
	for i := 0; i < 32; i++ {
		if err := set.Add(Policy{
			ID:        fmt.Sprintf("p%02d", i),
			EventType: "e",
			Priority:  i % 5,
			Modality:  ModalityDo,
			Action:    Action{Name: "act"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	env := Env{Event: Event{Type: "e"}}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				d := set.Evaluate(env)
				if len(d.Matched) == 0 {
					t.Error("concurrent Evaluate saw empty set")
					return
				}
			}
		}()
		go func(w int) {
			defer wg.Done()
			p := Policy{ID: fmt.Sprintf("p%02d", w), EventType: "e", Modality: ModalityDo, Action: Action{Name: "act"}}
			for j := 0; j < 300; j++ {
				p.Priority = j % 7
				if err := set.Replace(p); err != nil {
					t.Errorf("Replace: %v", err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				snap := set.Snapshot()
				if snap.Len() != 32 {
					t.Errorf("snapshot Len = %d", snap.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}
