package policy

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/ontology"
)

func mustAdd(t *testing.T, s *Set, p Policy) {
	t.Helper()
	if err := s.Add(p); err != nil {
		t.Fatalf("Add(%s): %v", p.ID, err)
	}
}

func TestSetAddValidation(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "p1", EventType: "e", Modality: ModalityDo, Action: Action{Name: "a"}})
	if err := s.Add(Policy{ID: "p1", EventType: "e", Modality: ModalityDo, Action: Action{Name: "a"}}); !errors.Is(err, ErrInvalidPolicy) {
		t.Errorf("duplicate add error = %v", err)
	}
	if err := s.Add(Policy{}); !errors.Is(err, ErrInvalidPolicy) {
		t.Errorf("invalid add error = %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetReplaceAndRemove(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "p1", EventType: "e", Modality: ModalityDo, Action: Action{Name: "old"}})
	if err := s.Replace(Policy{ID: "p1", EventType: "e", Modality: ModalityDo, Action: Action{Name: "new"}}); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	got, ok := s.Get("p1")
	if !ok || got.Action.Name != "new" {
		t.Errorf("Get after Replace = %+v,%v", got, ok)
	}
	if err := s.Replace(Policy{}); err == nil {
		t.Error("Replace accepted invalid policy")
	}
	if !s.Remove("p1") || s.Remove("p1") {
		t.Error("Remove semantics wrong")
	}
	if _, ok := s.Get("p1"); ok {
		t.Error("policy present after Remove")
	}
}

func TestEvaluateOrdering(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "b-low", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "second"}})
	mustAdd(t, s, Policy{ID: "a-high", EventType: "e", Priority: 5, Modality: ModalityDo, Action: Action{Name: "first"}})
	mustAdd(t, s, Policy{ID: "a-low", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "tie-a"}})

	d := s.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 3 {
		t.Fatalf("Actions = %v", d.Actions)
	}
	if d.Actions[0].Name != "first" {
		t.Errorf("highest priority not first: %v", d.Actions)
	}
	// Ties broken by ID: a-low before b-low.
	if d.Actions[1].Name != "tie-a" || d.Actions[2].Name != "second" {
		t.Errorf("tie-break order wrong: %v", d.Actions)
	}
	if len(d.Matched) != 3 {
		t.Errorf("Matched = %v", d.Matched)
	}
}

func TestEvaluateForbidVeto(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "do", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "fire"}})
	mustAdd(t, s, Policy{ID: "forbid", EventType: "e", Priority: 5, Modality: ModalityForbid, Action: Action{Name: "fire"}})
	mustAdd(t, s, Policy{ID: "other", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "observe"}})

	d := s.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 1 || d.Actions[0].Name != "observe" {
		t.Fatalf("Actions = %v, want only observe", d.Actions)
	}
	if d.Vetoed["do"] != "forbid" {
		t.Errorf("Vetoed = %v", d.Vetoed)
	}
}

func TestForbidDoesNotVetoHigherPriority(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "do", EventType: "e", Priority: 10, Modality: ModalityDo, Action: Action{Name: "fire"}})
	mustAdd(t, s, Policy{ID: "forbid", EventType: "e", Priority: 1, Modality: ModalityForbid, Action: Action{Name: "fire"}})

	d := s.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 1 || d.Actions[0].Name != "fire" {
		t.Errorf("higher-priority do was vetoed: %v", d.Actions)
	}
}

func TestForbidByCategoryWithTaxonomy(t *testing.T) {
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("fire-weapon", "kinetic-action"); err != nil {
		t.Fatalf("AddIsA: %v", err)
	}
	s := NewSet(WithCategoryMatcher(TaxonomyMatcher(tx)))
	mustAdd(t, s, Policy{
		ID: "do", EventType: "e", Priority: 1, Modality: ModalityDo,
		Action: Action{Name: "engage", Category: "fire-weapon"},
	})
	mustAdd(t, s, Policy{
		ID: "forbid-kinetic", EventType: WildcardEvent, Priority: 9, Modality: ModalityForbid,
		Action: Action{Category: "kinetic-action"},
	})

	d := s.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 0 {
		t.Errorf("category forbid did not veto subcategory action: %v", d.Actions)
	}
	if d.Vetoed["do"] != "forbid-kinetic" {
		t.Errorf("Vetoed = %v", d.Vetoed)
	}
}

func TestForbidByCategoryDefaultEquality(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{
		ID: "do", EventType: "e", Priority: 1, Modality: ModalityDo,
		Action: Action{Name: "engage", Category: "fire-weapon"},
	})
	mustAdd(t, s, Policy{
		ID: "forbid", EventType: "e", Priority: 9, Modality: ModalityForbid,
		Action: Action{Category: "kinetic-action"},
	})
	d := s.Evaluate(Env{Event: Event{Type: "e"}})
	if len(d.Actions) != 1 {
		t.Errorf("equality matcher vetoed non-equal category: %v", d.Vetoed)
	}
}

func TestConflictsStaticDetection(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "do", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "fire"}})
	mustAdd(t, s, Policy{ID: "forbid", EventType: WildcardEvent, Priority: 5, Modality: ModalityForbid, Action: Action{Name: "fire"}})
	mustAdd(t, s, Policy{ID: "dupA", EventType: "x", Priority: 2, Modality: ModalityDo, Action: Action{Name: "act"}})
	mustAdd(t, s, Policy{ID: "dupB", EventType: "x", Priority: 2, Modality: ModalityDo, Action: Action{Name: "act"}})
	mustAdd(t, s, Policy{ID: "unrelated", EventType: "y", Priority: 2, Modality: ModalityDo, Action: Action{Name: "zzz"}})

	conflicts := s.Conflicts()
	if len(conflicts) != 2 {
		t.Fatalf("Conflicts = %v, want 2", conflicts)
	}
	for _, c := range conflicts {
		if c.String() == "" {
			t.Error("empty conflict string")
		}
	}
}

func TestNoConflictAcrossEventTypes(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "do", EventType: "a", Priority: 1, Modality: ModalityDo, Action: Action{Name: "fire"}})
	mustAdd(t, s, Policy{ID: "forbid", EventType: "b", Priority: 5, Modality: ModalityForbid, Action: Action{Name: "fire"}})
	if got := s.Conflicts(); len(got) != 0 {
		t.Errorf("Conflicts across disjoint event types = %v", got)
	}
}

func TestSetConcurrentAccess(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "base", EventType: "e", Modality: ModalityDo, Action: Action{Name: "a"}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Evaluate(Env{Event: Event{Type: "e"}})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = s.Replace(Policy{ID: "base", EventType: "e", Modality: ModalityDo, Action: Action{Name: "a"}})
			}
		}()
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestAllOrdering(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, Policy{ID: "z", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "a"}})
	mustAdd(t, s, Policy{ID: "a", EventType: "e", Priority: 1, Modality: ModalityDo, Action: Action{Name: "a"}})
	mustAdd(t, s, Policy{ID: "m", EventType: "e", Priority: 9, Modality: ModalityDo, Action: Action{Name: "a"}})
	all := s.All()
	if all[0].ID != "m" || all[1].ID != "a" || all[2].ID != "z" {
		t.Errorf("All order = %v", []string{all[0].ID, all[1].ID, all[2].ID})
	}
}
