package policy

import (
	"strings"
	"sync/atomic"

	"repro/internal/telemetry"
)

// This file is the partial-evaluation pass of the decision plane
// (OPA-style "partial eval then residual"): given a device's static
// profile, every condition sub-tree that references only static
// quantities is evaluated once and folded to a constant, policies
// whose conditions fold to false are dropped, and what remains —
// the residual — is recompiled (indexes and forbid-coverage table
// over the surviving set only) into a snapshot the device evaluates
// at decision time. For environments carrying the same profile, a
// residual's decisions are byte-identical to the full snapshot's,
// including Vetoed attribution and audit-visible match order; the
// differential property suite proves it.

// Residual is a Snapshot specialized to one static profile. It embeds
// the specialized snapshot, so it satisfies the whole read-side
// contract — Evaluate, EvaluateInto, ForbidsAction, VetoesStatically,
// epoch and revision accessors — and threads through guards unchanged.
type Residual struct {
	*Snapshot
	profile StaticEnv
	full    *Snapshot
}

// Profile returns the static profile this residual was specialized
// for.
func (r *Residual) Profile() StaticEnv { return r.profile }

// Full returns the full snapshot this residual was specialized from.
// Callers cache residuals by comparing Full against the set's current
// snapshot pointer.
func (r *Residual) Full() *Snapshot { return r.full }

// Snap returns the residual's specialized snapshot view, for APIs
// typed against *Snapshot (guard contexts, audit stamping).
func (r *Residual) Snap() *Snapshot { return r.Snapshot }

// residualStats is the Set-lifetime specialization accounting, shared
// by every snapshot the set compiles. The telemetry handles are nil
// until Instrument.
type residualStats struct {
	compiles atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	instr    atomic.Pointer[residualInstruments]
}

// residualInstruments bundles the policy.residual_* telemetry handles.
type residualInstruments struct {
	compiles *telemetry.Counter
	hits     *telemetry.Counter
	misses   *telemetry.Counter
	size     *telemetry.Gauge
}

// ResidualFingerprint returns the profile fingerprint a residual
// snapshot was specialized for, and "" on full snapshots. Audit
// contexts stamp it beside the policy epoch so a journal entry pins
// both the compilation and the specialization a decision was made
// under.
func (s *Snapshot) ResidualFingerprint() string { return s.residualFP }

// Specialize partially evaluates the snapshot against a device's
// static profile and returns the residual. Residuals are cached per
// (snapshot, profile fingerprint): the thousands of devices sharing a
// profile share one residual, and memory stays O(profiles), not
// O(devices). The cache lives on the snapshot itself, so every
// mutation or ApplyRevision — which atomically invalidates the
// published snapshot — atomically invalidates all residuals with it;
// a residual can never outlive or mix with another epoch's policies.
//
// Specializing an already-specialized snapshot is well-defined
// (folding is idempotent) but wasteful; callers always specialize the
// set's published full snapshot.
func (s *Snapshot) Specialize(profile StaticEnv) *Residual {
	fp := profile.Fingerprint()
	if r := s.res1.Load(); r != nil && r.profile.Fingerprint() == fp {
		s.countResidual(true, false, r)
		return r
	}
	if cached, ok := s.residuals.Load(fp); ok {
		r := cached.(*Residual)
		s.countResidual(true, false, r)
		return r
	}
	r := s.specialize(profile, fp)
	if s.res1.CompareAndSwap(nil, r) {
		// First profile this snapshot sees: the single-slot front cache
		// holds it without a map entry. A concurrent same-profile
		// Specialize that lost the race overflows to the map below and
		// returns an equal residual — pointer identity across racers is
		// not part of the contract.
		s.countResidual(false, true, r)
		return r
	}
	actual, loaded := s.residuals.LoadOrStore(fp, r)
	r = actual.(*Residual)
	s.countResidual(false, !loaded, r)
	return r
}

// countResidual books one Specialize outcome into the set-lifetime
// stats and (when instrumented) the policy.residual_* series.
func (s *Snapshot) countResidual(hit, compiled bool, r *Residual) {
	rs := s.resStats
	if rs == nil {
		return
	}
	if hit {
		rs.hits.Add(1)
	} else {
		rs.misses.Add(1)
	}
	if compiled {
		rs.compiles.Add(1)
	}
	in := rs.instr.Load()
	if in == nil {
		return
	}
	if hit {
		in.hits.Inc()
	} else {
		in.misses.Inc()
	}
	if compiled {
		in.compiles.Inc()
		in.size.Set(float64(len(r.sorted)))
	}
}

// specialize builds the residual: fold every condition against the
// profile, drop statically-false policies, and recompile the
// surviving set (event-type indexes and forbid-coverage table over
// survivors only, preserving global evaluation order).
//
// When folding is the identity — no policy drops and no condition
// changes, the common case for policy sets without static-scoped
// conditions — the residual shares the full snapshot instead of
// recompiling an equal copy. Per-device sets then pay one wrapper
// allocation per profile, not a snapshot compile; such residuals keep
// ResidualFingerprint == "" because their decisions are the full
// snapshot's own.
func (s *Snapshot) specialize(profile StaticEnv, fp string) *Residual {
	if !s.foldWouldChange(profile) {
		return &Residual{Snapshot: s, profile: profile, full: s}
	}
	survivors := make([]Policy, 0, len(s.sorted))
	for i := range s.sorted {
		p := s.sorted[i].Policy
		folded, known, val, _ := foldCond(p.Condition, profile)
		if known {
			if !val {
				continue // statically false: this device can never match it
			}
			folded = nil // statically true: no runtime check left
		}
		p.Condition = folded
		survivors = append(survivors, p)
	}
	snap := compileSnapshot(survivors, s.matchCat, s.epoch)
	snap.revision = s.revision
	snap.evalMS = s.evalMS
	snap.resStats = s.resStats
	snap.residualFP = fp
	return &Residual{Snapshot: snap, profile: profile, full: s}
}

// foldWouldChange reports whether specializing against the profile
// folds anything at all: a dropped policy, a constant-folded sub-tree,
// or a statically-true condition that was not already trivially true.
// It allocates nothing on the all-identity path.
func (s *Snapshot) foldWouldChange(profile StaticEnv) bool {
	for i := range s.sorted {
		c := s.sorted[i].Policy.Condition
		folded, known, val, same := foldCond(c, profile)
		_ = folded
		if known {
			if !val {
				return true // a policy would drop
			}
			if c != nil {
				if _, trivial := c.(True); !trivial {
					return true // a non-trivial condition folds to true
				}
			}
			continue
		}
		if !same {
			return true // a sub-tree folds away
		}
	}
	return false
}

// foldCond partially evaluates a condition tree against a static
// profile. It returns the folded tree plus (known, value, same): when
// known is true the whole tree is the constant value and the returned
// tree is True/False accordingly; otherwise the returned tree still
// depends on runtime data, with every statically-decidable sub-tree
// folded away. same reports that the returned tree is the input
// untouched, letting callers (and enclosing And/Or nodes) skip
// rebuilding trees the profile does not reach — an unchanged sub-tree
// costs no allocation. The folded tree holds for exactly the
// environments the original holds for, provided env.Static equals the
// profile.
func foldCond(c Condition, se StaticEnv) (Condition, bool, bool, bool) {
	switch n := c.(type) {
	case nil:
		return nil, true, true, true
	case True:
		return n, true, true, true
	case False:
		return n, true, false, true
	case Threshold:
		name, ok := strings.CutPrefix(n.Quantity, StaticPrefix)
		if !ok {
			return n, false, false, true
		}
		v, present := se.Attr(name)
		if !present {
			return False{}, true, false, false // a missing quantity never satisfies
		}
		if cmpHolds(n.Op, v, n.Value) {
			return True{}, true, true, false
		}
		return False{}, true, false, false
	case LabelEquals:
		name, ok := strings.CutPrefix(n.Label, StaticPrefix)
		if !ok {
			return n, false, false, true
		}
		if se.Label(name) == n.Value {
			return True{}, true, true, false
		}
		return False{}, true, false, false
	case CondFunc:
		if !n.Static {
			return n, false, false, true
		}
		if n.Fn == nil || !n.Fn(Env{Static: se}) {
			return False{}, true, false, false
		}
		return True{}, true, true, false
	case Not:
		if n.Of == nil {
			return False{}, true, false, false // Not{nil} never holds
		}
		inner, known, val, same := foldCond(n.Of, se)
		if known {
			if val {
				return False{}, true, false, false
			}
			return True{}, true, true, false
		}
		if same {
			return n, false, false, true
		}
		return Not{Of: inner}, false, false, false
	case And:
		if len(n) == 0 {
			return True{}, true, true, false // the empty And holds
		}
		// Copy-on-write: members copy into rest only once the first
		// fold diverges from the input.
		var rest And
		mutated := false
		for i, m := range n {
			folded, known, val, same := foldCond(m, se)
			if known && !val {
				return False{}, true, false, false
			}
			diverged := known || !same // const-true member drops, or sub-tree changed
			if diverged && !mutated {
				rest = append(make(And, 0, len(n)), n[:i]...)
				mutated = true
			}
			if !mutated {
				continue
			}
			if known {
				continue // a constant-true member adds nothing
			}
			rest = append(rest, folded)
		}
		if !mutated {
			return n, false, false, true
		}
		switch len(rest) {
		case 0:
			return True{}, true, true, false
		case 1:
			return rest[0], false, false, false
		default:
			return rest, false, false, false
		}
	case Or:
		if len(n) == 0 {
			return False{}, true, false, false // the empty Or does not hold
		}
		var rest Or
		mutated := false
		for i, m := range n {
			folded, known, val, same := foldCond(m, se)
			if known && val {
				return True{}, true, true, false
			}
			diverged := known || !same // const-false member drops, or sub-tree changed
			if diverged && !mutated {
				rest = append(make(Or, 0, len(n)), n[:i]...)
				mutated = true
			}
			if !mutated {
				continue
			}
			if known {
				continue // a constant-false member adds nothing
			}
			rest = append(rest, folded)
		}
		if !mutated {
			return n, false, false, true
		}
		switch len(rest) {
		case 0:
			return False{}, true, false, false
		case 1:
			return rest[0], false, false, false
		default:
			return rest, false, false, false
		}
	default:
		// Unknown condition types are opaque to the folder: keep them
		// for runtime evaluation.
		return c, false, false, true
	}
}
