package policy

import (
	"strings"
	"sync/atomic"

	"repro/internal/statespace"
)

// This file is the compiled condition plane: snapshot compilation
// lowers each policy's Condition tree into evalCond nodes whose
// quantity references are namespace-resolved once ("event."/"state."/
// "device." prefixes pre-split, bare names tagged as either-namespace)
// instead of strings.CutPrefix plus a double map probe on every
// Threshold.Holds. State-variable references additionally cache their
// schema index, so the steady-state probe is one pointer compare and a
// slice load. The interpreted Condition tree is retained untouched on
// the Policy for Describe, decompilation and the linear-scan oracle —
// lowering changes layout, never semantics.

// evalCond is one compiled condition node. A nil evalCond means
// "always holds" (the compiled form of a nil or constant-true
// condition).
type evalCond interface {
	holds(Env) bool
}

// nsKind says which namespace a compiled quantity reference resolves
// in.
type nsKind uint8

const (
	// nsAny is an unprefixed name: event attributes shadow state
	// variables (never the static profile).
	nsAny nsKind = iota
	// nsEvent / nsState / nsStatic are prefix-forced namespaces.
	nsEvent
	nsState
	nsStatic
)

// splitQuantity resolves a quantity name's namespace once, at compile
// time.
func splitQuantity(name string) (nsKind, string) {
	if v, ok := strings.CutPrefix(name, "event."); ok {
		return nsEvent, v
	}
	if v, ok := strings.CutPrefix(name, "state."); ok {
		return nsState, v
	}
	if v, ok := strings.CutPrefix(name, StaticPrefix); ok {
		return nsStatic, v
	}
	return nsAny, name
}

// schemaIdx is one cached schema→variable-index resolution.
type schemaIdx struct {
	schema *statespace.Schema
	idx    int
	ok     bool
}

// thresholdNode is the compiled Threshold: namespace pre-split, state
// index cached per schema. The cache is an atomic pointer because one
// snapshot (and so one node) may be evaluated by many devices
// concurrently; devices sharing a schema — the common fleet shape —
// hit the cached entry with a single pointer compare.
type thresholdNode struct {
	ns    nsKind
	name  string
	op    CmpOp
	value float64
	idx   atomic.Pointer[schemaIdx]
}

func (t *thresholdNode) stateLookup(st statespace.State) (float64, bool) {
	if !st.Valid() {
		return 0, false
	}
	sch := st.Schema()
	if c := t.idx.Load(); c != nil && c.schema == sch {
		if !c.ok {
			return 0, false
		}
		return st.Value(c.idx), true
	}
	i, ok := sch.Index(t.name)
	t.idx.Store(&schemaIdx{schema: sch, idx: i, ok: ok})
	if !ok {
		return 0, false
	}
	return st.Value(i), true
}

func (t *thresholdNode) holds(env Env) bool {
	var v float64
	var ok bool
	switch t.ns {
	case nsEvent:
		v, ok = env.Event.Attrs[t.name]
	case nsState:
		v, ok = t.stateLookup(env.State)
	case nsStatic:
		v, ok = env.Static.Attr(t.name)
	default: // nsAny: event attributes shadow state variables
		if v, ok = env.Event.Attrs[t.name]; !ok {
			v, ok = t.stateLookup(env.State)
		}
	}
	if !ok {
		return false
	}
	return cmpHolds(t.op, v, t.value)
}

// labelNode is the compiled LabelEquals.
type labelNode struct {
	static bool
	label  string
	value  string
}

func (l labelNode) holds(env Env) bool {
	if l.static {
		return env.Static.Label(l.label) == l.value
	}
	return env.Event.Label(l.label) == l.value
}

// andNode / orNode / notNode mirror And / Or / Not over compiled
// members.
type andNode []evalCond

func (a andNode) holds(env Env) bool {
	for _, c := range a {
		if c != nil && !c.holds(env) {
			return false
		}
	}
	return true
}

type orNode []evalCond

func (o orNode) holds(env Env) bool {
	for _, c := range o {
		if c == nil || c.holds(env) {
			return true
		}
	}
	return false
}

type notNode struct{ of evalCond }

func (n notNode) holds(env Env) bool { return n.of != nil && !n.of.holds(env) }

// falseNode never holds (compiled False, nil CondFunc, Not of nil).
type falseNode struct{}

func (falseNode) holds(Env) bool { return false }

// funcNode wraps an opaque condition function.
type funcNode struct{ fn func(Env) bool }

func (f funcNode) holds(env Env) bool { return f.fn(env) }

// opaqueNode falls back to the interpreted condition for types the
// compiler does not know.
type opaqueNode struct{ c Condition }

func (o opaqueNode) holds(env Env) bool { return o.c.Holds(env) }

// compileCond lowers one condition tree. The result holds for exactly
// the environments the interpreted tree holds for.
func compileCond(c Condition) evalCond {
	switch n := c.(type) {
	case nil:
		return nil
	case True:
		return nil
	case False:
		return falseNode{}
	case Threshold:
		ns, name := splitQuantity(n.Quantity)
		return &thresholdNode{ns: ns, name: name, op: n.Op, value: n.Value}
	case LabelEquals:
		if v, ok := strings.CutPrefix(n.Label, StaticPrefix); ok {
			return labelNode{static: true, label: v, value: n.Value}
		}
		return labelNode{label: n.Label, value: n.Value}
	case And:
		if len(n) == 0 {
			return nil // the empty And holds
		}
		out := make(andNode, len(n))
		for i, m := range n {
			out[i] = compileCond(m)
		}
		return out
	case Or:
		if len(n) == 0 {
			return falseNode{} // the empty Or does not hold
		}
		out := make(orNode, len(n))
		for i, m := range n {
			out[i] = compileCond(m)
		}
		return out
	case Not:
		if n.Of == nil {
			return falseNode{} // Not{nil} never holds
		}
		inner := compileCond(n.Of)
		if inner == nil {
			return falseNode{} // not(always) never holds
		}
		return notNode{of: inner}
	case CondFunc:
		if n.Fn == nil {
			return falseNode{} // a nil function never holds
		}
		return funcNode{fn: n.Fn}
	default:
		return opaqueNode{c: c}
	}
}
