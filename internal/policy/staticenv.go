package policy

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
)

// StaticPrefix is the quantity/label namespace that resolves against a
// device's static profile instead of the event or the state: a
// Threshold over "device.max_payload" reads StaticEnv attributes, and a
// LabelEquals on "device.type" reads StaticEnv labels. Static
// quantities never change after device construction, which is what
// makes specialization (Snapshot.Specialize) sound: every condition
// sub-tree that references only the static namespace can be evaluated
// once per profile and folded to a constant.
const StaticPrefix = "device."

// StaticEnv is a device's static profile: the attributes fixed at
// construction time — type, organization/coalition, region,
// capabilities — that policy conditions may reference through the
// "device." namespace. It is immutable after construction and carries a
// precomputed content fingerprint, so the thousands of devices sharing
// one profile share one residual snapshot per compilation epoch.
//
// Keys are stored without the "device." prefix: the profile built by
// WithLabel("region", "eu") satisfies LabelEquals{Label: "device.region",
// Value: "eu"}.
type StaticEnv struct {
	attrs  map[string]float64
	labels map[string]string
	fp     string
}

// DeviceProfile builds the canonical profile of a device from its type
// and organization (labels "type" and "org"; empty values are omitted).
// The profile is built and fingerprinted in one pass; fleets whose
// devices share a type and org should build it once and share it
// across construction (device.Config.Static) rather than deriving one
// per device.
func DeviceProfile(typ, org string) StaticEnv {
	if typ == "" && org == "" {
		return StaticEnv{}
	}
	labels := make(map[string]string, 2)
	if typ != "" {
		labels["type"] = typ
	}
	if org != "" {
		labels["org"] = org
	}
	se := StaticEnv{labels: labels}
	se.fp = se.fingerprint()
	return se
}

// WithLabel returns a copy of the profile with the label set. The
// receiver is not modified; profiles are built once at construction.
func (se StaticEnv) WithLabel(name, value string) StaticEnv {
	labels := make(map[string]string, len(se.labels)+1)
	for k, v := range se.labels {
		labels[k] = v
	}
	labels[name] = value
	out := StaticEnv{attrs: se.attrs, labels: labels}
	out.fp = out.fingerprint()
	return out
}

// WithAttr returns a copy of the profile with the numeric attribute
// set.
func (se StaticEnv) WithAttr(name string, v float64) StaticEnv {
	attrs := make(map[string]float64, len(se.attrs)+1)
	for k, av := range se.attrs {
		attrs[k] = av
	}
	attrs[name] = v
	out := StaticEnv{attrs: attrs, labels: se.labels}
	out.fp = out.fingerprint()
	return out
}

// Attr returns the named static attribute and whether it is present.
func (se StaticEnv) Attr(name string) (float64, bool) {
	v, ok := se.attrs[name]
	return v, ok
}

// Label returns the named static label, or "" when absent.
func (se StaticEnv) Label(name string) string { return se.labels[name] }

// Empty reports whether the profile carries no attributes or labels.
func (se StaticEnv) Empty() bool { return len(se.attrs) == 0 && len(se.labels) == 0 }

// emptyFP is the fingerprint of the zero profile, shared by every
// device without static attributes.
var emptyFP = StaticEnv{}.fingerprint()

// Fingerprint returns a short content hash of the profile. Equal
// profiles always fingerprint equally regardless of construction
// order; the fingerprint keys the per-snapshot residual cache and is
// stamped into audit contexts beside the policy epoch.
func (se StaticEnv) Fingerprint() string {
	if se.fp != "" {
		return se.fp
	}
	return emptyFP
}

// fingerprint computes the canonical content hash: sorted key=value
// pairs, labels and attributes in separate sections, SHA-256 truncated
// to 12 hex characters (48 bits — far beyond the handful of distinct
// profiles a fleet carries).
func (se StaticEnv) fingerprint() string {
	keys := make([]string, 0, len(se.labels)+len(se.attrs))
	for k := range se.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, 64)
	for _, k := range keys {
		buf = append(buf, 'l')
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = append(buf, se.labels[k]...)
		buf = append(buf, ';')
	}
	keys = keys[:0]
	for k := range se.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = append(buf, 'a')
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = strconv.AppendFloat(buf, se.attrs[k], 'g', -1, 64)
		buf = append(buf, ';')
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:6])
}
