package policy

import (
	"errors"
	"fmt"
)

// Origin records where a policy came from — the paper distinguishes
// logic "built in by the developer", rules "specified explicitly by the
// owner", and in the generative architecture rules the device generates
// itself or receives from peers.
type Origin int

// Origin values.
const (
	OriginBuiltin Origin = iota + 1
	OriginHuman
	OriginGenerated
	OriginShared
)

// String returns the origin's name.
func (o Origin) String() string {
	switch o {
	case OriginBuiltin:
		return "builtin"
	case OriginHuman:
		return "human"
	case OriginGenerated:
		return "generated"
	case OriginShared:
		return "shared"
	default:
		return "unknown"
	}
}

// Modality distinguishes policies that direct an action from policies
// that forbid one.
type Modality int

// Modality values.
const (
	// ModalityDo directs the device to take the policy's action.
	ModalityDo Modality = iota + 1
	// ModalityForbid vetoes matching actions from lower-or-equal
	// priority do-policies.
	ModalityForbid
)

// String returns the modality's name.
func (m Modality) String() string {
	switch m {
	case ModalityDo:
		return "do"
	case ModalityForbid:
		return "forbid"
	default:
		return "unknown"
	}
}

// ErrInvalidPolicy is returned when a policy fails validation.
var ErrInvalidPolicy = errors.New("policy: invalid policy")

// Policy is one event–condition–action rule.
type Policy struct {
	// ID uniquely identifies the policy within a set.
	ID string
	// Origin records the policy's provenance.
	Origin Origin
	// Organization names the coalition member that owns the policy.
	Organization string
	// Description is free-form documentation.
	Description string
	// EventType is the event type that triggers evaluation;
	// WildcardEvent matches all.
	EventType string
	// Condition gates the policy; nil means always.
	Condition Condition
	// Modality is do or forbid.
	Modality Modality
	// Action is the directed action (do) or the pattern of actions
	// vetoed (forbid): a forbid matches by Name, or by Category when
	// Name is empty.
	Action Action
	// Priority orders policies; higher evaluates first, and a forbid
	// vetoes only do-policies of lower or equal priority.
	Priority int
}

// Validate reports whether the policy is well-formed.
func (p Policy) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("%w: missing ID", ErrInvalidPolicy)
	}
	if p.EventType == "" {
		return fmt.Errorf("%w: policy %s missing event type", ErrInvalidPolicy, p.ID)
	}
	switch p.Modality {
	case ModalityDo:
		if p.Action.Name == "" {
			return fmt.Errorf("%w: do-policy %s has no action", ErrInvalidPolicy, p.ID)
		}
	case ModalityForbid:
		if p.Action.Name == "" && p.Action.Category == "" {
			return fmt.Errorf("%w: forbid-policy %s matches nothing", ErrInvalidPolicy, p.ID)
		}
	default:
		return fmt.Errorf("%w: policy %s has unknown modality", ErrInvalidPolicy, p.ID)
	}
	return nil
}

// Matches reports whether the policy triggers for the environment:
// event type matches and the condition holds.
func (p Policy) Matches(env Env) bool {
	if p.EventType != WildcardEvent && p.EventType != env.Event.Type {
		return false
	}
	if p.Condition == nil {
		return true
	}
	return p.Condition.Holds(env)
}

// condDescription returns the condition text or "true".
func (p Policy) condDescription() string {
	if p.Condition == nil {
		return "true"
	}
	return p.Condition.Describe()
}

// String renders the policy as a one-line rule.
func (p Policy) String() string {
	return fmt.Sprintf("[%s p%d %s] on %s when %s %s %s",
		p.ID, p.Priority, p.Origin, p.EventType, p.condDescription(), p.Modality, p.Action)
}
