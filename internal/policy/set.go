package policy

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ontology"
	"repro/internal/telemetry"
)

// CategoryMatcher decides whether an action of category got is covered
// by a forbid-policy over category want. The default is equality; a
// taxonomy-backed matcher (got is-a want) can be injected.
type CategoryMatcher func(got, want ontology.Concept) bool

// Decision is the outcome of evaluating one event against a policy
// set.
type Decision struct {
	// Actions are the directed actions in execution order
	// (deterministic: priority descending, then policy ID).
	Actions []Action
	// Matched lists the IDs of every policy that matched, including
	// forbid policies.
	Matched []string
	// Vetoed records actions directed by matching do-policies but
	// blocked by a forbid-policy, keyed by the do-policy ID, with the
	// forbidding policy's ID as value. It is nil when nothing was
	// vetoed.
	Vetoed map[string]string
}

// Conflict is a statically detected potential conflict between two
// policies in a set.
type Conflict struct {
	A, B   string
	Reason string
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s vs %s: %s", c.A, c.B, c.Reason)
}

// Set is a collection of policies with deterministic evaluation. It is
// safe for concurrent use.
//
// Set is the mutation facade of the decision plane: Add, Replace and
// Remove update the live map and invalidate the published Snapshot;
// the first subsequent reader compiles a fresh snapshot and publishes
// it through an atomic pointer. Evaluate therefore takes no lock in
// the steady state and its cost scales with the policies that can
// match the event, not the size of the set.
type Set struct {
	mu       sync.RWMutex
	policies map[string]Policy
	matchCat CategoryMatcher

	snap  atomic.Pointer[Snapshot]
	instr atomic.Pointer[setInstruments]
	stats struct {
		epoch        uint64
		compiles     uint64
		lastCompile  time.Duration
		totalCompile time.Duration
	}
	// revision is the policy-distribution revision the set last
	// activated (0 = never revision-managed). It is stamped onto every
	// snapshot compiled from the set, so a reader can tell which
	// coherent revision it is evaluating under. With multiple org
	// roots it is the stamp of whichever root applied last; orgRevs
	// carries the per-root streams.
	revision uint64
	// orgRevs tracks the activated revision per org root ("" = the
	// single-root stream). Each root's stream is independently strictly
	// monotonic, so two coalition roots can advance without racing each
	// other's numbers. Lazily allocated.
	orgRevs map[string]uint64
	// resStats accounts residual specialization across the set's
	// lifetime; every compiled snapshot shares it so counters survive
	// invalidation.
	resStats residualStats
}

// SetOption configures a Set.
type SetOption interface {
	apply(*Set)
}

type catMatcherOption struct{ m CategoryMatcher }

func (o catMatcherOption) apply(s *Set) { s.matchCat = o.m }

// WithCategoryMatcher injects the matcher used to decide whether a
// forbid-by-category policy covers an action.
func WithCategoryMatcher(m CategoryMatcher) SetOption {
	return catMatcherOption{m: m}
}

// TaxonomyMatcher builds a CategoryMatcher from a taxonomy: an action
// category is covered when it is-a the forbidden category.
func TaxonomyMatcher(t *ontology.Taxonomy) CategoryMatcher {
	return func(got, want ontology.Concept) bool { return t.IsA(got, want) }
}

// setInstruments bundles the decision-plane telemetry handles. They
// are resolved once in Instrument; the hot path only nil-checks.
type setInstruments struct {
	evaluateMS *telemetry.Histogram
	epoch      *telemetry.Gauge
	compiles   *telemetry.Gauge
	compileMS  *telemetry.Gauge
}

// Instrument publishes the set's decision-plane metrics into the
// registry under policy.epoch, policy.compiles, policy.compile_ms
// (gauges), policy.evaluate_ms (a latency histogram), the
// policy.residual_compiles / policy.residual_hits /
// policy.residual_misses specialization counters and the
// policy.residual_size gauge, all carrying the given labels (typically
// "device", <id>). It replaces the ad-hoc per-device gauge names of
// earlier revisions. Instrumenting forces one recompile so the
// published snapshot carries the evaluate timer; a nil registry
// removes instrumentation.
func (s *Set) Instrument(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		s.instr.Store(nil)
		s.resStats.instr.Store(nil)
		s.snap.Store(nil)
		return
	}
	s.instr.Store(&setInstruments{
		evaluateMS: reg.Histogram("policy.evaluate_ms", labels...),
		epoch:      reg.Gauge("policy.epoch", labels...),
		compiles:   reg.Gauge("policy.compiles", labels...),
		compileMS:  reg.Gauge("policy.compile_ms", labels...),
	})
	s.resStats.instr.Store(&residualInstruments{
		compiles: reg.Counter("policy.residual_compiles", labels...),
		hits:     reg.Counter("policy.residual_hits", labels...),
		misses:   reg.Counter("policy.residual_misses", labels...),
		size:     reg.Gauge("policy.residual_size", labels...),
	})
	s.snap.Store(nil)
}

// NewSet returns an empty policy set.
func NewSet(opts ...SetOption) *Set {
	s := &Set{
		policies: make(map[string]Policy),
		matchCat: func(got, want ontology.Concept) bool { return got == want },
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Add validates and inserts a policy. A policy with a duplicate ID is
// rejected.
func (s *Set) Add(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.policies[p.ID]; dup {
		return fmt.Errorf("%w: duplicate ID %s", ErrInvalidPolicy, p.ID)
	}
	s.policies[p.ID] = p
	s.snap.Store(nil)
	return nil
}

// AddBatch validates and inserts a batch of policies under one lock
// and one snapshot invalidation — the bulk-adoption path for the
// generative layer, which may instantiate many policies per
// discovery. The batch is all-or-nothing: any invalid or duplicate
// policy rejects the whole batch before anything is inserted.
func (s *Set) AddBatch(ps []Policy) error {
	seen := make(map[string]bool, len(ps))
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.ID] {
			return fmt.Errorf("%w: duplicate ID %s in batch", ErrInvalidPolicy, p.ID)
		}
		seen[p.ID] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range ps {
		if _, dup := s.policies[p.ID]; dup {
			return fmt.Errorf("%w: duplicate ID %s", ErrInvalidPolicy, p.ID)
		}
	}
	for _, p := range ps {
		s.policies[p.ID] = p
	}
	if len(ps) > 0 {
		s.snap.Store(nil)
	}
	return nil
}

// Replace validates and inserts a policy, overwriting any existing one
// with the same ID. It is the mutation path for reprogramming attacks
// and generative updates.
func (s *Set) Replace(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies[p.ID] = p
	s.snap.Store(nil)
	return nil
}

// ReplaceBatch validates and upserts a batch of policies under one
// lock and one snapshot invalidation. The batch is all-or-nothing on
// validation failure.
func (s *Set) ReplaceBatch(ps []Policy) error {
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range ps {
		s.policies[p.ID] = p
	}
	if len(ps) > 0 {
		s.snap.Store(nil)
	}
	return nil
}

// ApplyRevision atomically replaces the set's contents with a
// distributed policy revision: upserts are validated and installed,
// removals deleted, and the revision number recorded, all under one
// lock and one snapshot invalidation. Readers therefore never observe
// a state mixing two revisions — the next Snapshot compiles the fully
// applied revision, and every snapshot carries the revision it was
// compiled from (Snapshot.Revision). The revision must be strictly
// greater than the current one; the batch is all-or-nothing on
// validation failure.
func (s *Set) ApplyRevision(revision uint64, upserts []Policy, removals []string) error {
	return s.ApplyOrgRevision("", revision, upserts, removals)
}

// ApplyOrgRevision is ApplyRevision for one org root's revision
// stream: each root advances its own strictly monotonic revision
// counter, so two coalition roots can install policy on the same
// device without contending over a single number. The set-wide
// Revision() becomes the stamp of whichever root applied last.
func (s *Set) ApplyOrgRevision(org string, revision uint64, upserts []Policy, removals []string) error {
	seen := make(map[string]bool, len(upserts))
	for _, p := range upserts {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.ID] {
			return fmt.Errorf("%w: duplicate ID %s in revision", ErrInvalidPolicy, p.ID)
		}
		seen[p.ID] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if active := s.orgRevs[org]; revision <= active {
		return fmt.Errorf("policy: revision %d is not newer than active revision %d (root %q)", revision, active, org)
	}
	for _, id := range removals {
		delete(s.policies, id)
	}
	for _, p := range upserts {
		s.policies[p.ID] = p
	}
	if s.orgRevs == nil {
		s.orgRevs = make(map[string]uint64, 2)
	}
	s.orgRevs[org] = revision
	s.revision = revision
	s.snap.Store(nil)
	return nil
}

// Revision returns the distribution revision the set last activated
// (0 = never revision-managed).
func (s *Set) Revision() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.revision
}

// OrgRevision returns the revision last activated from one org root's
// stream (0 = never).
func (s *Set) OrgRevision(org string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.orgRevs[org]
}

// OrgRevisions returns a copy of every root's activated revision,
// keyed by org ("" = the single-root stream). Nil when the set was
// never revision-managed.
func (s *Set) OrgRevisions() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.orgRevs) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(s.orgRevs))
	for org, rev := range s.orgRevs {
		out[org] = rev
	}
	return out
}

// Remove deletes a policy by ID and reports whether it existed.
func (s *Set) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.policies[id]
	if ok {
		delete(s.policies, id)
		s.snap.Store(nil)
	}
	return ok
}

// Invalidate discards the published snapshot so the next reader
// recompiles. Call it after mutating an injected dependency the
// compiled coverage table depends on (e.g. adding is-a edges to the
// taxonomy behind the category matcher).
func (s *Set) Invalidate() {
	s.snap.Store(nil)
}

// Get returns the policy with the given ID.
func (s *Set) Get(id string) (Policy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.policies[id]
	return p, ok
}

// Len returns the number of policies.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.policies)
}

// All returns every policy ordered by descending priority then ID.
func (s *Set) All() []Policy {
	return s.Snapshot().Policies()
}

// Snapshot returns the current compiled snapshot, compiling one if a
// mutation invalidated it. The returned snapshot is immutable; callers
// may evaluate against it repeatedly for a consistent view of the
// policies regardless of concurrent mutations.
func (s *Set) Snapshot() *Snapshot {
	if snap := s.snap.Load(); snap != nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap := s.snap.Load(); snap != nil {
		return snap
	}
	s.stats.epoch++
	snap := compileSnapshot(s.sortedLocked(), s.matchCat, s.stats.epoch)
	snap.revision = s.revision
	snap.resStats = &s.resStats
	s.stats.compiles++
	s.stats.lastCompile = snap.compileTime
	s.stats.totalCompile += snap.compileTime
	if in := s.instr.Load(); in != nil {
		snap.evalMS = in.evaluateMS
		in.epoch.Set(float64(s.stats.epoch))
		in.compiles.Set(float64(s.stats.compiles))
		in.compileMS.Set(float64(snap.compileTime.Nanoseconds()) / 1e6)
	}
	s.snap.Store(snap)
	return snap
}

// SetStats describes the compilation activity of the decision plane.
type SetStats struct {
	// Epoch is the most recently compiled snapshot's epoch.
	Epoch uint64
	// Compiles counts snapshot compilations over the set's lifetime.
	Compiles uint64
	// LastCompile and TotalCompile measure compilation latency.
	LastCompile  time.Duration
	TotalCompile time.Duration
	// Policies is the current policy count.
	Policies int
	// ResidualCompiles / ResidualHits / ResidualMisses count
	// specialization activity over the set's lifetime: how many
	// residual snapshots were actually built versus served from the
	// per-snapshot cache.
	ResidualCompiles uint64
	ResidualHits     uint64
	ResidualMisses   uint64
}

// Stats returns compilation counters for the control-plane metrics.
func (s *Set) Stats() SetStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return SetStats{
		Epoch:            s.stats.epoch,
		Compiles:         s.stats.compiles,
		LastCompile:      s.stats.lastCompile,
		TotalCompile:     s.stats.totalCompile,
		Policies:         len(s.policies),
		ResidualCompiles: s.resStats.compiles.Load(),
		ResidualHits:     s.resStats.hits.Load(),
		ResidualMisses:   s.resStats.misses.Load(),
	}
}

func (s *Set) sortedLocked() []Policy {
	out := make([]Policy, 0, len(s.policies))
	for _, p := range s.policies {
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b Policy) int {
		if a.Priority != b.Priority {
			return cmp.Compare(b.Priority, a.Priority)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

// Evaluate matches the environment against the set. Matching
// forbid-policies veto actions of matching do-policies with lower or
// equal priority; surviving actions are returned in deterministic
// order. It evaluates against the compiled snapshot — lock-free unless
// a mutation just invalidated it.
func (s *Set) Evaluate(env Env) Decision {
	return s.Snapshot().Evaluate(env)
}

// evaluateLinear is the reference implementation the snapshot path is
// differentially tested against: a full scan of the pre-sorted
// policies with per-event coverage resolution, byte-for-byte the
// behavior of the original Set.Evaluate.
func evaluateLinear(sorted []Policy, matchCat CategoryMatcher, env Env) Decision {
	var d Decision
	var dos, forbids []Policy
	for _, p := range sorted {
		if !p.Matches(env) {
			continue
		}
		d.Matched = append(d.Matched, p.ID)
		if p.Modality == ModalityForbid {
			forbids = append(forbids, p)
		} else {
			dos = append(dos, p)
		}
	}
	for _, doP := range dos {
		blockedBy := ""
		for _, fb := range forbids {
			if fb.Priority < doP.Priority {
				continue
			}
			if forbidCovers(matchCat, fb, doP.Action) {
				blockedBy = fb.ID
				break
			}
		}
		if blockedBy != "" {
			if d.Vetoed == nil {
				d.Vetoed = make(map[string]string)
			}
			d.Vetoed[doP.ID] = blockedBy
			continue
		}
		d.Actions = append(d.Actions, doP.Action)
	}
	return d
}

func forbidCovers(matchCat CategoryMatcher, fb Policy, a Action) bool {
	if fb.Action.Name != "" {
		return fb.Action.Name == a.Name
	}
	return matchCat(a.Category, fb.Action.Category)
}

// Conflicts statically reports potential conflicts: a do-policy and a
// forbid-policy on overlapping event types whose actions overlap (the
// forbid would veto the do whenever both match), and duplicate
// do-policies directing the same action at the same priority. Only
// pairs whose event types can overlap are compared, so disjoint
// policies cost nothing.
func (s *Set) Conflicts() []Conflict {
	return s.Snapshot().Conflicts()
}

func eventTypesOverlap(a, b string) bool {
	return a == b || a == WildcardEvent || b == WildcardEvent
}
