package policy

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ontology"
)

// CategoryMatcher decides whether an action of category got is covered
// by a forbid-policy over category want. The default is equality; a
// taxonomy-backed matcher (got is-a want) can be injected.
type CategoryMatcher func(got, want ontology.Concept) bool

// Decision is the outcome of evaluating one event against a policy
// set.
type Decision struct {
	// Actions are the directed actions in execution order
	// (deterministic: priority descending, then policy ID).
	Actions []Action
	// Matched lists the IDs of every policy that matched, including
	// forbid policies.
	Matched []string
	// Vetoed records actions directed by matching do-policies but
	// blocked by a forbid-policy, keyed by the do-policy ID, with the
	// forbidding policy's ID as value.
	Vetoed map[string]string
}

// Conflict is a statically detected potential conflict between two
// policies in a set.
type Conflict struct {
	A, B   string
	Reason string
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s vs %s: %s", c.A, c.B, c.Reason)
}

// Set is a collection of policies with deterministic evaluation. It is
// safe for concurrent use.
type Set struct {
	mu       sync.RWMutex
	policies map[string]Policy
	matchCat CategoryMatcher
}

// SetOption configures a Set.
type SetOption interface {
	apply(*Set)
}

type catMatcherOption struct{ m CategoryMatcher }

func (o catMatcherOption) apply(s *Set) { s.matchCat = o.m }

// WithCategoryMatcher injects the matcher used to decide whether a
// forbid-by-category policy covers an action.
func WithCategoryMatcher(m CategoryMatcher) SetOption {
	return catMatcherOption{m: m}
}

// TaxonomyMatcher builds a CategoryMatcher from a taxonomy: an action
// category is covered when it is-a the forbidden category.
func TaxonomyMatcher(t *ontology.Taxonomy) CategoryMatcher {
	return func(got, want ontology.Concept) bool { return t.IsA(got, want) }
}

// NewSet returns an empty policy set.
func NewSet(opts ...SetOption) *Set {
	s := &Set{
		policies: make(map[string]Policy),
		matchCat: func(got, want ontology.Concept) bool { return got == want },
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Add validates and inserts a policy. A policy with a duplicate ID is
// rejected.
func (s *Set) Add(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.policies[p.ID]; dup {
		return fmt.Errorf("%w: duplicate ID %s", ErrInvalidPolicy, p.ID)
	}
	s.policies[p.ID] = p
	return nil
}

// Replace validates and inserts a policy, overwriting any existing one
// with the same ID. It is the mutation path for reprogramming attacks
// and generative updates.
func (s *Set) Replace(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies[p.ID] = p
	return nil
}

// Remove deletes a policy by ID and reports whether it existed.
func (s *Set) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.policies[id]
	delete(s.policies, id)
	return ok
}

// Get returns the policy with the given ID.
func (s *Set) Get(id string) (Policy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.policies[id]
	return p, ok
}

// Len returns the number of policies.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.policies)
}

// All returns every policy ordered by descending priority then ID.
func (s *Set) All() []Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sortedLocked()
}

func (s *Set) sortedLocked() []Policy {
	out := make([]Policy, 0, len(s.policies))
	for _, p := range s.policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Evaluate matches the environment against the set. Matching
// forbid-policies veto actions of matching do-policies with lower or
// equal priority; surviving actions are returned in deterministic
// order.
func (s *Set) Evaluate(env Env) Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()

	d := Decision{Vetoed: make(map[string]string)}
	var dos, forbids []Policy
	for _, p := range s.sortedLocked() {
		if !p.Matches(env) {
			continue
		}
		d.Matched = append(d.Matched, p.ID)
		if p.Modality == ModalityForbid {
			forbids = append(forbids, p)
		} else {
			dos = append(dos, p)
		}
	}
	for _, doP := range dos {
		blockedBy := ""
		for _, fb := range forbids {
			if fb.Priority < doP.Priority {
				continue
			}
			if s.forbidCoversLocked(fb, doP.Action) {
				blockedBy = fb.ID
				break
			}
		}
		if blockedBy != "" {
			d.Vetoed[doP.ID] = blockedBy
			continue
		}
		d.Actions = append(d.Actions, doP.Action)
	}
	return d
}

func (s *Set) forbidCoversLocked(fb Policy, a Action) bool {
	if fb.Action.Name != "" {
		return fb.Action.Name == a.Name
	}
	return s.matchCat(a.Category, fb.Action.Category)
}

// Conflicts statically reports potential conflicts: a do-policy and a
// forbid-policy on the same event type whose actions overlap (the
// forbid would veto the do whenever both match), and duplicate
// do-policies directing the same action at the same priority.
func (s *Set) Conflicts() []Conflict {
	s.mu.RLock()
	defer s.mu.RUnlock()

	policies := s.sortedLocked()
	var out []Conflict
	for i, a := range policies {
		for _, b := range policies[i+1:] {
			if !eventTypesOverlap(a.EventType, b.EventType) {
				continue
			}
			doP, fbP := a, b
			if doP.Modality == ModalityForbid {
				doP, fbP = b, a
			}
			switch {
			case doP.Modality == ModalityDo && fbP.Modality == ModalityForbid:
				if fbP.Priority >= doP.Priority && s.forbidCoversLocked(fbP, doP.Action) {
					out = append(out, Conflict{
						A:      doP.ID,
						B:      fbP.ID,
						Reason: fmt.Sprintf("forbid %s covers do action %q on event %s", fbP.ID, doP.Action.Name, doP.EventType),
					})
				}
			case a.Modality == ModalityDo && b.Modality == ModalityDo:
				if a.Priority == b.Priority && a.Action.Name == b.Action.Name && a.Action.Target == b.Action.Target {
					out = append(out, Conflict{
						A:      a.ID,
						B:      b.ID,
						Reason: fmt.Sprintf("duplicate action %q at priority %d", a.Action.Name, a.Priority),
					})
				}
			}
		}
	}
	return out
}

func eventTypesOverlap(a, b string) bool {
	return a == b || a == WildcardEvent || b == WildcardEvent
}
