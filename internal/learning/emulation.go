package learning

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/policy"
)

// Emulator learns when to take one action by watching a human operator
// — Section IV's "common way for machines to improve themselves":
// "After a sufficient number of observations of how a human handles a
// situation, a machine can create a system to replicate it."
//
// The risk the paper flags — "the encoding of imperfect human behavior
// can lead to a mistaken and sometimes malevolent machine" — falls out
// directly: the emulator reproduces whatever the operator did,
// mistakes included. Experiment E9 measures that.
type Emulator struct {
	action   policy.Action
	features []string
	w        []float64
	bias     float64
	lr       float64
	observed int
}

// NewEmulator builds an emulator for the action, reading the named
// quantities (resolved through policy.Env.Lookup) as features.
func NewEmulator(action policy.Action, features []string, learningRate float64) (*Emulator, error) {
	if action.Name == "" {
		return nil, errors.New("learning: emulator needs an action")
	}
	if len(features) == 0 {
		return nil, errors.New("learning: emulator needs at least one feature")
	}
	if learningRate <= 0 {
		return nil, fmt.Errorf("learning: learning rate must be positive, got %g", learningRate)
	}
	return &Emulator{
		action:   action,
		features: append([]string(nil), features...),
		w:        make([]float64, len(features)),
		lr:       learningRate,
	}, nil
}

// Observe records one operator decision: in environment env, the
// operator did (or did not) take the action.
func (e *Emulator) Observe(env policy.Env, took bool) {
	x := e.featureVector(env)
	y := 0.0
	if took {
		y = 1.0
	}
	p := e.score(x)
	grad := p - y
	for i := range e.w {
		e.w[i] -= e.lr * grad * x[i]
	}
	e.bias -= e.lr * grad
	e.observed++
}

// Observations returns how many decisions have been observed.
func (e *Emulator) Observations() int { return e.observed }

// WouldAct reports whether the learned behavior takes the action in
// the environment.
func (e *Emulator) WouldAct(env policy.Env) bool {
	return e.score(e.featureVector(env)) >= 0.5
}

// Confidence returns the predicted probability of acting.
func (e *Emulator) Confidence(env policy.Env) float64 {
	return e.score(e.featureVector(env))
}

// ToPolicy packages the learned behavior as an executable policy whose
// condition is the trained model itself.
func (e *Emulator) ToPolicy(id, eventType string, priority int) policy.Policy {
	return policy.Policy{
		ID:        id,
		Origin:    policy.OriginGenerated,
		EventType: eventType,
		Priority:  priority,
		Modality:  policy.ModalityDo,
		Condition: policy.CondFunc{
			Name: fmt.Sprintf("emulated(%s after %d observations)", e.action.Name, e.observed),
			Fn:   e.WouldAct,
		},
		Action: e.action,
	}
}

func (e *Emulator) featureVector(env policy.Env) []float64 {
	x := make([]float64, len(e.features))
	for i, name := range e.features {
		if v, ok := env.Lookup(name); ok {
			x[i] = v
		}
	}
	return x
}

func (e *Emulator) score(x []float64) float64 {
	z := e.bias
	for i, w := range e.w {
		z += w * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}
