package learning

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/statespace"
)

func anomalyFixture(t *testing.T) (*AnomalyDetector, *statespace.Schema) {
	t.Helper()
	s := learnSchema(t)
	a, err := NewAnomalyDetector(s, 4, 20)
	if err != nil {
		t.Fatalf("NewAnomalyDetector: %v", err)
	}
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 200; i++ {
		st, err := s.NewState(50+rng.NormFloat64()*5, 50+rng.NormFloat64()*5)
		if err != nil {
			// Clamp outliers into range by retrying.
			continue
		}
		if err := a.Observe(st); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	return a, s
}

func TestNewAnomalyDetectorValidation(t *testing.T) {
	s := learnSchema(t)
	if _, err := NewAnomalyDetector(nil, 3, 10); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewAnomalyDetector(s, 0, 10); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestAnomalyDetection(t *testing.T) {
	a, s := anomalyFixture(t)
	normal, _ := s.NewState(52, 48)
	spike, _ := s.NewState(99, 50)

	if a.Anomalous(normal) {
		t.Errorf("normal state flagged (score %g)", a.Score(normal))
	}
	if !a.Anomalous(spike) {
		t.Errorf("spike not flagged (score %g)", a.Score(spike))
	}
	if a.Score(spike) <= a.Score(normal) {
		t.Error("score ordering wrong")
	}
	if a.Observations() == 0 {
		t.Error("observations not counted")
	}
}

func TestAnomalyWarmup(t *testing.T) {
	s := learnSchema(t)
	a, err := NewAnomalyDetector(s, 3, 50)
	if err != nil {
		t.Fatalf("NewAnomalyDetector: %v", err)
	}
	st, _ := s.NewState(99, 99)
	if a.Anomalous(st) {
		t.Error("flagged during warm-up")
	}
	if a.Score(st) != 0 {
		t.Errorf("warm-up score = %g", a.Score(st))
	}
}

func TestAnomalyZeroVariance(t *testing.T) {
	s := learnSchema(t)
	a, err := NewAnomalyDetector(s, 3, 5)
	if err != nil {
		t.Fatalf("NewAnomalyDetector: %v", err)
	}
	same, _ := s.NewState(10, 10)
	for i := 0; i < 20; i++ {
		if err := a.Observe(same); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if a.Anomalous(same) {
		t.Error("identical state flagged under zero variance")
	}
	different, _ := s.NewState(11, 10)
	if !math.IsInf(a.Score(different), 1) || !a.Anomalous(different) {
		t.Errorf("deviation from zero-variance baseline not flagged: %g", a.Score(different))
	}
}

func TestAnomalySchemaMismatch(t *testing.T) {
	a, _ := anomalyFixture(t)
	other := statespace.MustSchema(statespace.Var("x", 0, 1))
	if err := a.Observe(other.Origin()); err == nil {
		t.Error("cross-schema observation accepted")
	}
	if a.Score(other.Origin()) != 0 || a.Anomalous(other.Origin()) {
		t.Error("cross-schema state scored")
	}
}

// The Section IV attack: a reprogrammed system disarms the anomaly
// detector, so the rampage that would have been flagged goes unseen —
// but the armed status itself betrays the tampering.
func TestDisarmedDetectorIsTheAttackSurface(t *testing.T) {
	a, s := anomalyFixture(t)
	rampage, _ := s.NewState(99, 1)
	if !a.Anomalous(rampage) {
		t.Fatal("rampage not anomalous while armed")
	}
	a.Disarm()
	if a.Anomalous(rampage) {
		t.Error("disarmed detector still flagged (attack failed?)")
	}
	if a.Armed() {
		t.Error("Armed() did not expose the disarm — the watchdog's tamper signal is gone")
	}
	a.Rearm()
	if !a.Anomalous(rampage) || !a.Armed() {
		t.Error("rearm did not restore detection")
	}
}
