package learning

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/statespace"
)

// AnomalyDetector is the "anomaly detection tool" Section IV names as
// one of the existing controls a malevolent system would try to
// disarm. It learns per-variable running statistics from observed
// states (Welford's algorithm) and scores new states by their largest
// per-variable z-score; scores above the threshold are anomalous.
//
// The detector is deliberately Disarm-able — that is the attack
// surface the paper warns about, and the watchdog/tamper layers exist
// to notice when it happens.
type AnomalyDetector struct {
	mu        sync.Mutex
	schema    *statespace.Schema
	threshold float64
	minObs    int
	count     int
	mean      []float64
	m2        []float64
	armed     bool
}

// NewAnomalyDetector builds an armed detector. Threshold is the
// z-score above which a state is anomalous (must be positive); minObs
// is the warm-up observation count below which nothing is flagged
// (default 10 when ≤ 0).
func NewAnomalyDetector(schema *statespace.Schema, threshold float64, minObs int) (*AnomalyDetector, error) {
	if schema == nil {
		return nil, errors.New("learning: anomaly detector needs a schema")
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("learning: threshold must be positive, got %g", threshold)
	}
	if minObs <= 0 {
		minObs = 10
	}
	return &AnomalyDetector{
		schema:    schema,
		threshold: threshold,
		minObs:    minObs,
		mean:      make([]float64, schema.Len()),
		m2:        make([]float64, schema.Len()),
		armed:     true,
	}, nil
}

// Observe folds a (presumed normal) state into the statistics.
func (a *AnomalyDetector) Observe(st statespace.State) error {
	if st.Schema() != a.schema {
		return errors.New("learning: state schema mismatch")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.count++
	for i := 0; i < a.schema.Len(); i++ {
		x := st.Value(i)
		delta := x - a.mean[i]
		a.mean[i] += delta / float64(a.count)
		a.m2[i] += delta * (x - a.mean[i])
	}
	return nil
}

// Observations returns how many states have been observed.
func (a *AnomalyDetector) Observations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// Score returns the state's largest per-variable |z-score|, or 0
// during warm-up.
func (a *AnomalyDetector) Score(st statespace.State) float64 {
	if st.Schema() != a.schema {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.count < a.minObs {
		return 0
	}
	worst := 0.0
	for i := 0; i < a.schema.Len(); i++ {
		variance := a.m2[i] / float64(a.count-1)
		std := math.Sqrt(variance)
		if std == 0 {
			if st.Value(i) != a.mean[i] {
				return math.Inf(1)
			}
			continue
		}
		z := math.Abs(st.Value(i)-a.mean[i]) / std
		if z > worst {
			worst = z
		}
	}
	return worst
}

// Anomalous reports whether the state's score exceeds the threshold.
// A disarmed detector reports nothing — silently, which is exactly why
// its armed status must be checked independently (see Armed).
func (a *AnomalyDetector) Anomalous(st statespace.State) bool {
	a.mu.Lock()
	armed := a.armed
	a.mu.Unlock()
	if !armed {
		return false
	}
	return a.Score(st) > a.threshold
}

// Armed reports whether the detector is active. Watchdogs should
// treat a disarmed detector as a tamper signal.
func (a *AnomalyDetector) Armed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.armed
}

// Disarm deactivates the detector — the control-disabling step of a
// reprogramming attack.
func (a *AnomalyDetector) Disarm() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.armed = false
}

// Rearm reactivates the detector.
func (a *AnomalyDetector) Rearm() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.armed = true
}
