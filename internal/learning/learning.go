// Package learning gives devices the "Learning" property of
// Section III: online classifiers that learn which states are bad from
// labeled experience, and emulators that learn policies by observing a
// human operator's decisions.
//
// Both paths are exactly where Section IV says malevolence creeps in —
// "Mistakes in Learning" (bad data, label noise, insufficient data) and
// "Inappropriate Emulation" (faithfully encoding an imperfect human) —
// so the package also provides Corruption, a configurable injector of
// those mistakes used by the attack experiments.
package learning

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/statespace"
)

// Example is one labeled state sample.
type Example struct {
	State statespace.State
	// Bad is the ground-truth label: true when the state can harm a
	// human.
	Bad bool
}

// OnlineClassifier learns a linear good/bad separator over normalized
// state variables with logistic stochastic gradient descent. It is the
// machine-learning refinement of human state labeling that Section V
// anticipates ("the devices to be able to automatically detect their
// current states").
type OnlineClassifier struct {
	schema *statespace.Schema
	w      []float64
	bias   float64
	lr     float64
}

// NewOnlineClassifier builds an untrained classifier over the schema.
// Learning rate must be positive.
func NewOnlineClassifier(schema *statespace.Schema, learningRate float64) (*OnlineClassifier, error) {
	if schema == nil {
		return nil, errors.New("learning: schema required")
	}
	if learningRate <= 0 {
		return nil, fmt.Errorf("learning: learning rate must be positive, got %g", learningRate)
	}
	return &OnlineClassifier{
		schema: schema,
		w:      make([]float64, schema.Len()),
		lr:     learningRate,
	}, nil
}

// Train applies one SGD step on the example.
func (c *OnlineClassifier) Train(ex Example) error {
	x, err := c.features(ex.State)
	if err != nil {
		return err
	}
	y := 0.0
	if ex.Bad {
		y = 1.0
	}
	p := c.scoreFeatures(x)
	grad := p - y
	for i := range c.w {
		c.w[i] -= c.lr * grad * x[i]
	}
	c.bias -= c.lr * grad
	return nil
}

// TrainAll runs epochs passes over the examples, shuffling each epoch
// with the given source (nil keeps the original order).
func (c *OnlineClassifier) TrainAll(examples []Example, epochs int, rng *rand.Rand) error {
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		if rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, idx := range order {
			if err := c.Train(examples[idx]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Score returns the predicted probability the state is bad.
func (c *OnlineClassifier) Score(st statespace.State) float64 {
	x, err := c.features(st)
	if err != nil {
		return 0.5
	}
	return c.scoreFeatures(x)
}

// PredictBad reports whether the state is classified bad (score ≥ 0.5).
func (c *OnlineClassifier) PredictBad(st statespace.State) bool {
	return c.Score(st) >= 0.5
}

// AsClassifier adapts the model into a statespace.Classifier.
func (c *OnlineClassifier) AsClassifier() statespace.Classifier {
	return statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if c.PredictBad(st) {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
}

// Accuracy returns the fraction of examples classified correctly.
func (c *OnlineClassifier) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if c.PredictBad(ex.State) == ex.Bad {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

func (c *OnlineClassifier) features(st statespace.State) ([]float64, error) {
	if st.Schema() != c.schema {
		return nil, errors.New("learning: state schema mismatch")
	}
	x := make([]float64, c.schema.Len())
	for i := 0; i < c.schema.Len(); i++ {
		v := c.schema.Var(i)
		raw := st.Value(i)
		if v.Bounded() && v.Span() > 0 {
			x[i] = (raw - v.Min) / v.Span()
		} else {
			x[i] = raw
		}
	}
	return x, nil
}

func (c *OnlineClassifier) scoreFeatures(x []float64) float64 {
	z := c.bias
	for i, w := range c.w {
		z += w * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// Corruption injects the learning mistakes of Section IV into a
// training set: label noise ("bad data"), systematic feature bias, and
// data denial (dropped samples, an adversarial-ML attack).
type Corruption struct {
	// LabelFlipProb flips each label with this probability.
	LabelFlipProb float64
	// FeatureBias adds a constant offset to named state variables
	// (systematic sensor bias / feature obfuscation).
	FeatureBias statespace.Delta
	// DropProb removes each example with this probability (denial of
	// selected training data).
	DropProb float64
	// Rand drives the random choices; required when any probability is
	// nonzero.
	Rand *rand.Rand
}

// Apply returns a corrupted copy of the examples; the input is not
// modified.
func (c Corruption) Apply(examples []Example) ([]Example, error) {
	out := make([]Example, 0, len(examples))
	for _, ex := range examples {
		if c.DropProb > 0 && c.sample() < c.DropProb {
			continue
		}
		corrupted := ex
		if len(c.FeatureBias) > 0 {
			st, err := ex.State.Apply(c.FeatureBias)
			if err != nil {
				return nil, fmt.Errorf("learning: bias: %w", err)
			}
			corrupted.State = st
		}
		if c.LabelFlipProb > 0 && c.sample() < c.LabelFlipProb {
			corrupted.Bad = !corrupted.Bad
		}
		out = append(out, corrupted)
	}
	return out, nil
}

func (c Corruption) sample() float64 {
	if c.Rand == nil {
		return 1 // never triggers: probabilities are < 1 by convention
	}
	return c.Rand.Float64()
}
