package learning

import (
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/statespace"
)

func learnSchema(t *testing.T) *statespace.Schema {
	t.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("margin", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

// truth: bad when heat > 70.
func labeled(t *testing.T, s *statespace.Schema, rng *rand.Rand, n int) []Example {
	t.Helper()
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		heat := rng.Float64() * 100
		st, err := s.NewState(heat, rng.Float64()*100)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		out = append(out, Example{State: st, Bad: heat > 70})
	}
	return out
}

func TestNewOnlineClassifierValidation(t *testing.T) {
	s := learnSchema(t)
	if _, err := NewOnlineClassifier(nil, 0.1); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewOnlineClassifier(s, 0); err == nil {
		t.Error("zero learning rate accepted")
	}
}

func TestOnlineClassifierLearnsSeparator(t *testing.T) {
	s := learnSchema(t)
	rng := rand.New(rand.NewSource(11))
	train := labeled(t, s, rng, 800)
	test := labeled(t, s, rng, 200)

	c, err := NewOnlineClassifier(s, 0.5)
	if err != nil {
		t.Fatalf("NewOnlineClassifier: %v", err)
	}
	if err := c.TrainAll(train, 30, rng); err != nil {
		t.Fatalf("TrainAll: %v", err)
	}
	if acc := c.Accuracy(test); acc < 0.9 {
		t.Errorf("accuracy = %.3f, want ≥ 0.9", acc)
	}

	hot, _ := s.NewState(95, 50)
	cool, _ := s.NewState(10, 50)
	if !c.PredictBad(hot) || c.PredictBad(cool) {
		t.Error("classification direction wrong")
	}
	cls := c.AsClassifier()
	if cls.Classify(hot) != statespace.ClassBad || cls.Classify(cool) != statespace.ClassGood {
		t.Error("AsClassifier wrong")
	}
}

func TestClassifierSchemaMismatch(t *testing.T) {
	s := learnSchema(t)
	other := statespace.MustSchema(statespace.Var("x", 0, 1))
	c, err := NewOnlineClassifier(s, 0.1)
	if err != nil {
		t.Fatalf("NewOnlineClassifier: %v", err)
	}
	if err := c.Train(Example{State: other.Origin()}); err == nil {
		t.Error("cross-schema training accepted")
	}
	if got := c.Score(other.Origin()); got != 0.5 {
		t.Errorf("cross-schema score = %g, want neutral 0.5", got)
	}
	if c.Accuracy(nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestPoisonedTrainingDegradesClassifier(t *testing.T) {
	s := learnSchema(t)
	rng := rand.New(rand.NewSource(13))
	train := labeled(t, s, rng, 800)
	test := labeled(t, s, rng, 200)

	clean, err := NewOnlineClassifier(s, 0.5)
	if err != nil {
		t.Fatalf("NewOnlineClassifier: %v", err)
	}
	if err := clean.TrainAll(train, 30, rng); err != nil {
		t.Fatalf("TrainAll: %v", err)
	}

	poison := Corruption{LabelFlipProb: 0.45, Rand: rng}
	poisoned, err := poison.Apply(train)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	dirty, err := NewOnlineClassifier(s, 0.5)
	if err != nil {
		t.Fatalf("NewOnlineClassifier: %v", err)
	}
	if err := dirty.TrainAll(poisoned, 30, rng); err != nil {
		t.Fatalf("TrainAll: %v", err)
	}

	cleanAcc, dirtyAcc := clean.Accuracy(test), dirty.Accuracy(test)
	if dirtyAcc >= cleanAcc {
		t.Errorf("poisoning did not degrade accuracy: clean %.3f vs dirty %.3f", cleanAcc, dirtyAcc)
	}
}

func TestCorruptionDropAndBias(t *testing.T) {
	s := learnSchema(t)
	rng := rand.New(rand.NewSource(17))
	examples := labeled(t, s, rng, 500)

	dropper := Corruption{DropProb: 0.5, Rand: rng}
	kept, err := dropper.Apply(examples)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(kept) < 200 || len(kept) > 300 {
		t.Errorf("kept %d of 500 with drop 0.5", len(kept))
	}

	originals := make([]float64, 10)
	for i := range originals {
		originals[i] = examples[i].State.MustGet("heat")
	}
	biaser := Corruption{FeatureBias: statespace.Delta{"heat": 20}, Rand: rng}
	biased, err := biaser.Apply(examples[:10])
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i, ex := range biased {
		want := originals[i] + 20
		if want > 100 {
			want = 100
		}
		if got := ex.State.MustGet("heat"); got != want {
			t.Errorf("bias: heat %g → %g, want %g", originals[i], got, want)
		}
		if examples[i].State.MustGet("heat") != originals[i] {
			t.Error("input mutated")
		}
	}

	badBias := Corruption{FeatureBias: statespace.Delta{"nope": 1}, Rand: rng}
	if _, err := badBias.Apply(examples[:1]); err == nil {
		t.Error("bias over unknown variable accepted")
	}

	inert := Corruption{}
	out, err := inert.Apply(examples[:5])
	if err != nil || len(out) != 5 {
		t.Errorf("inert corruption changed data: %d, %v", len(out), err)
	}
}

func TestEmulatorValidation(t *testing.T) {
	if _, err := NewEmulator(policy.Action{}, []string{"x"}, 0.1); err == nil {
		t.Error("empty action accepted")
	}
	if _, err := NewEmulator(policy.Action{Name: "a"}, nil, 0.1); err == nil {
		t.Error("no features accepted")
	}
	if _, err := NewEmulator(policy.Action{Name: "a"}, []string{"x"}, 0); err == nil {
		t.Error("zero learning rate accepted")
	}
}

func TestEmulatorLearnsOperatorBehavior(t *testing.T) {
	// Operator doctrine: engage when threat > 5.
	em, err := NewEmulator(policy.Action{Name: "engage"}, []string{"threat"}, 0.8)
	if err != nil {
		t.Fatalf("NewEmulator: %v", err)
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		threat := rng.Float64() * 10
		env := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": threat}}}
		em.Observe(env, threat > 5)
	}
	if em.Observations() != 500 {
		t.Errorf("Observations = %d", em.Observations())
	}

	high := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": 9}}}
	low := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": 1}}}
	if !em.WouldAct(high) || em.WouldAct(low) {
		t.Errorf("learned behavior wrong: high=%v low=%v", em.WouldAct(high), em.WouldAct(low))
	}
	if em.Confidence(high) <= em.Confidence(low) {
		t.Error("confidence ordering wrong")
	}
}

func TestEmulatorEncodesOperatorMistakes(t *testing.T) {
	// Inappropriate emulation: the operator systematically engages at
	// ANY threat level (a mistake); the emulator faithfully copies it.
	em, err := NewEmulator(policy.Action{Name: "engage"}, []string{"threat"}, 0.8)
	if err != nil {
		t.Fatalf("NewEmulator: %v", err)
	}
	for i := 0; i < 300; i++ {
		env := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": float64(i % 10)}}}
		em.Observe(env, true) // the operator always engages
	}
	innocuous := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": 0}}}
	if !em.WouldAct(innocuous) {
		t.Error("emulator failed to encode the operator's mistake (the risk under test)")
	}
}

func TestEmulatorToPolicy(t *testing.T) {
	em, err := NewEmulator(policy.Action{Name: "engage"}, []string{"threat"}, 0.8)
	if err != nil {
		t.Fatalf("NewEmulator: %v", err)
	}
	for i := 0; i < 200; i++ {
		env := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": float64(i % 10)}}}
		em.Observe(env, i%10 > 5)
	}
	p := em.ToPolicy("emulated-engage", "contact", 3)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated policy invalid: %v", err)
	}
	if p.Origin != policy.OriginGenerated {
		t.Errorf("Origin = %v", p.Origin)
	}
	high := policy.Env{Event: policy.Event{Type: "contact", Attrs: map[string]float64{"threat": 9}}}
	if !p.Matches(high) {
		t.Error("compiled policy does not match high-threat env")
	}
	wrongType := policy.Env{Event: policy.Event{Type: "other", Attrs: map[string]float64{"threat": 9}}}
	if p.Matches(wrongType) {
		t.Error("policy matched wrong event type")
	}
}
