package experiments

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// E15Params configures the parallel-fleet experiment.
type E15Params struct {
	// Seed varies the per-device dynamics (deterministically).
	Seed int64
	// Fleet is the number of self-managing devices.
	Fleet int
	// Horizon is the virtual duration of each run.
	Horizon time.Duration
	// Period is the MAPE tick period.
	Period time.Duration
	// Workers are the engine parallelism levels to compare; the first
	// must be 1 (the serial baseline).
	Workers []int
}

func (p *E15Params) defaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Fleet <= 0 {
		p.Fleet = 2000
	}
	if p.Horizon <= 0 {
		p.Horizon = 30 * time.Second
	}
	if p.Period <= 0 {
		p.Period = time.Second
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4, 8}
	}
}

// E15Outcome is one configuration's measured result: the wall-clock
// cost of the run and a digest of every deterministic output the
// differential gate compares.
type E15Outcome struct {
	// Workers is the engine parallelism (1 = serial).
	Workers int
	// Wall is the host wall-clock time of the engine run.
	Wall time.Duration
	// JournalLen is the number of audit entries.
	JournalLen int
	// TipHash is the hash of the last audit entry — equal tips over
	// equal lengths mean byte-identical hash-chained journals.
	TipHash string
	// Actions and Denials are the per-kind audit entry counts.
	Actions, Denials int
	// HeatSum is the summed final heat of the fleet (a state checksum).
	HeatSum float64
}

// RunE15Workers builds the overheating fleet and runs it once at the
// given parallelism. Every device climbs toward the bad region (heat ≥
// 80) on its own sensor dynamics, the MAPE loop raises repair events,
// the guard stack denies the harmful "vent" response and allows the
// cooling one, and the shared hash-chained journal records all of it —
// on virtual time, so the journal is bit-for-bit reproducible.
func RunE15Workers(p E15Params, workers int) (E15Outcome, error) {
	p.defaults()
	clock := sim.NewClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	engine.SetParallelism(workers)
	log := audit.New(audit.WithClock(clock.Now))

	schema := statespace.MustSchema(statespace.Var("heat", 0, 100))
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	safeness := statespace.SafenessFunc(func(st statespace.State) float64 {
		return (100 - st.MustGet("heat")) / 100
	})

	collective, err := core.New(core.Config{
		Name:            "e15-fleet",
		Audit:           log,
		KillSecret:      []byte("e15-quorum"),
		ExpectedMembers: p.Fleet,
	})
	if err != nil {
		return E15Outcome{}, err
	}
	mkGuard := func() guard.Guard {
		return core.StandardPipeline(core.SafetyConfig{
			Audit:      log,
			Classifier: classifier,
			HarmPredictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
				if ctx.Action.Name == "vent" {
					return 1 // venting exhausts toward bystanders
				}
				return 0
			}),
			HarmThreshold: 0.5,
		})
	}

	const fleetSource = `
policy cool priority 5: on self-state-alert do cool effect heat -= 55
policy vent priority 4: on self-state-alert do vent category kinetic-action`
	policies, err := policylang.CompileSource(fleetSource, policy.OriginHuman)
	if err != nil {
		return E15Outcome{}, err
	}

	orch, err := core.NewOrchestrator(collective, engine)
	if err != nil {
		return E15Outcome{}, err
	}

	// One initial-state map, one static profile, one residual for the
	// whole single-type fleet.
	initValues := make(map[string]float64, 1)
	profile := policy.DeviceProfile("reactor", "us")
	for i := 0; i < p.Fleet; i++ {
		id := fmt.Sprintf("dev-%05d", i)
		// Per-device dynamics derived from seed and index only, so every
		// run of the same configuration is identical.
		mix := (int64(i) + p.Seed) % 41
		heat := 20 + float64(mix)              // 20..60
		rate := 9 + float64((i+int(p.Seed))%7) // 9..15 per tick
		initValues["heat"] = heat
		initial, err := schema.StateFromMap(initValues)
		if err != nil {
			return E15Outcome{}, err
		}
		d, err := device.New(device.Config{
			ID: id, Type: "reactor", Organization: "us",
			Static:     profile,
			Initial:    initial,
			Guard:      mkGuard(),
			KillSwitch: collective.KillSwitch(),
			Audit:      log,
		})
		if err != nil {
			return E15Outcome{}, err
		}
		// One lock and one snapshot invalidation for the whole program,
		// not one per policy.
		if err := d.Policies().AddBatch(policies); err != nil {
			return E15Outcome{}, err
		}
		// The sensor closure is the device's physical plant: heat climbs
		// every tick, the cool actuator dumps it. Both run only on the
		// device's shard, so the closure needs no locking.
		h := heat
		if err := d.BindSensor("heat", device.SensorFunc{Label: "thermo", Fn: func() (float64, error) {
			h += rate
			if h > 95 {
				h = 95
			}
			return h, nil
		}}); err != nil {
			return E15Outcome{}, err
		}
		if err := d.RegisterActuator("cool", device.ActuatorFunc{Label: "chiller",
			Fn: func(policy.Action) error {
				h -= 55
				if h < 15 {
					h = 15
				}
				return nil
			}}); err != nil {
			return E15Outcome{}, err
		}
		d.SetDefaultActuator(device.NopActuator{})
		if err := collective.AddDevice(d, nil); err != nil {
			return E15Outcome{}, err
		}
		if err := orch.Manage(id, p.Period, classifier, safeness); err != nil {
			return E15Outcome{}, err
		}
	}
	// Watchdog sweeps are unkeyed barriers between the parallel tick
	// batches.
	orch.SweepEvery(5*p.Period, nil)

	start := time.Now()
	if err := orch.Run(clock.Now().Add(p.Horizon)); err != nil {
		return E15Outcome{}, err
	}
	wall := time.Since(start)

	if err := log.Verify(); err != nil {
		return E15Outcome{}, fmt.Errorf("audit chain (workers=%d): %w", workers, err)
	}
	out := E15Outcome{
		Workers:    workers,
		Wall:       wall,
		JournalLen: log.Len(),
		Actions:    log.CountKind(audit.KindAction),
		Denials:    log.CountKind(audit.KindDenial),
	}
	if entries := log.Entries(); len(entries) > 0 {
		out.TipHash = entries[len(entries)-1].Hash
	}
	for _, d := range collective.Devices() {
		out.HeatSum += d.CurrentState().MustGet("heat")
	}
	return out, nil
}

// RunE15 measures conservative-parallel fleet execution: the same
// 2000-device overheating fleet runs serially and at 2/4/8 workers, and
// every run must produce a byte-identical audit journal (same tip hash
// over the same length) and identical fleet state — determinism is the
// acceptance bar, the wall-clock speedup is the payoff.
func RunE15(p E15Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:    "E15",
		Title: "Deterministic parallel fleet execution",
		Headers: []string{"workers", "wall ms", "speedup", "journal", "actions",
			"denials", "tip", "identical"},
	}
	var base E15Outcome
	for i, workers := range p.Workers {
		out, err := RunE15Workers(p, workers)
		if err != nil {
			return Result{}, err
		}
		identical := "baseline"
		if i == 0 {
			base = out
		} else {
			identical = "yes"
			if out.TipHash != base.TipHash || out.JournalLen != base.JournalLen ||
				out.HeatSum != base.HeatSum {
				identical = "NO"
			}
		}
		speedup := float64(base.Wall) / float64(out.Wall)
		tip := out.TipHash
		if len(tip) > 12 {
			tip = tip[:12]
		}
		result.Rows = append(result.Rows, []string{
			itoa(workers),
			fmt.Sprintf("%.1f", float64(out.Wall.Microseconds())/1000),
			fmt.Sprintf("%.2fx", speedup),
			itoa(out.JournalLen), itoa(out.Actions), itoa(out.Denials),
			tip, identical,
		})
	}
	result.Notes = append(result.Notes,
		fmt.Sprintf("fleet=%d period=%s horizon=%s seed=%d; MAPE ticks sharded by device ID,", p.Fleet, p.Period, p.Horizon, p.Seed),
		"watchdog sweeps as barriers; equal tip hash over equal length = byte-identical hash-chained journal;",
		"wall times are host-dependent — see EXPERIMENTS.md for reference numbers")
	return result, nil
}
