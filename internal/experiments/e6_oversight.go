package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// E6Params configures the tripartite-oversight experiment.
type E6Params struct {
	Seed      int64
	Proposals int
}

func (p *E6Params) defaults() {
	if p.Proposals <= 0 {
		p.Proposals = 400
	}
}

// RunE6 evaluates Section VI.E: malevolent policy proposals against
// one, two-compromised, and three oversight collectives. A healthy
// tripartite (2-of-3) rejects out-of-scope policies even with one
// collective compromised; a compromised single overseer adopts them
// all.
func RunE6(p E6Params) (Result, error) {
	p.defaults()
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("fire-weapon", "kinetic-action"); err != nil {
		return Result{}, err
	}
	tx.Add("surveillance")

	newReviewer := func(label string) guard.Reviewer {
		return &guard.ScopeReviewer{
			Label: label,
			Rules: []guard.ScopeRule{
				guard.ForbidCategory{Taxonomy: tx, Concept: "kinetic-action"},
				guard.MaxEffectMagnitude{Limit: 20},
				guard.PriorityCap{Max: 50},
				guard.RequireCondition{Taxonomy: tx, Concept: "kinetic-action"},
			},
		}
	}
	stamp := guard.ReviewerFunc{Label: "compromised", Fn: func(policy.Policy) (bool, string) {
		return true, "rubber stamp"
	}}

	arrangements := []struct {
		label    string
		approver guard.Approver
	}{
		{label: "no oversight", approver: approveAll{}},
		{label: "single overseer", approver: &guard.SingleOverseer{Overseer: newReviewer("solo")}},
		{label: "single overseer (compromised)", approver: &guard.SingleOverseer{Overseer: stamp}},
		{label: "tripartite 2-of-3", approver: &guard.Tripartite{
			Executive: newReviewer("executive"), Legislative: newReviewer("legislative"), Judiciary: newReviewer("judiciary"),
		}},
		{label: "tripartite, 1 compromised", approver: &guard.Tripartite{
			Executive: stamp, Legislative: newReviewer("legislative"), Judiciary: newReviewer("judiciary"),
		}},
		{label: "tripartite, 2 compromised", approver: &guard.Tripartite{
			Executive: stamp, Legislative: stamp, Judiciary: newReviewer("judiciary"),
		}},
		{label: "unanimous 3", approver: &guard.Unanimous{Reviewers: []guard.Reviewer{
			newReviewer("a"), newReviewer("b"), newReviewer("c"),
		}}},
	}

	result := Result{
		ID:      "E6",
		Title:   "AI overseeing AI — malevolent policy adoption under oversight arrangements",
		Headers: []string{"arrangement", "malevolent adopted%", "benign adopted%"},
	}

	for _, arr := range arrangements {
		rng := rand.New(rand.NewSource(p.Seed + 6))
		malevolentAdopted, benignAdopted := 0, 0
		half := p.Proposals / 2
		for i := 0; i < half; i++ {
			if ok, _ := arr.approver.Approve(malevolentProposal(rng, i)); ok {
				malevolentAdopted++
			}
			if ok, _ := arr.approver.Approve(benignProposal(i)); ok {
				benignAdopted++
			}
		}
		result.Rows = append(result.Rows, []string{
			arr.label, pct(malevolentAdopted, half), pct(benignAdopted, half),
		})
	}
	result.Notes = append(result.Notes,
		"paper expectation: 'assuming that two out of the three collectives always prevail, these three collectives",
		"would keep each other in check' — adoption stays 0% with one compromised collective and collapses only at two")
	return result, nil
}

// approveAll is the no-oversight control.
type approveAll struct{}

func (approveAll) Approve(policy.Policy) (bool, []guard.Vote) { return true, nil }

// malevolentProposal draws one of the out-of-scope policy shapes.
func malevolentProposal(rng *rand.Rand, i int) policy.Policy {
	base := policy.Policy{
		ID:        fmt.Sprintf("mal-%d", i),
		Origin:    policy.OriginGenerated,
		EventType: "*",
		Modality:  policy.ModalityDo,
	}
	switch rng.Intn(4) {
	case 0: // forbidden category
		base.Action = policy.Action{Name: "engage", Category: "fire-weapon"}
		base.Condition = policy.Threshold{Quantity: "threat", Op: policy.CmpGT, Value: 0.1}
	case 1: // oversized effect
		base.Action = policy.Action{Name: "dump", Category: "surveillance",
			Effect: statespace.Delta{"x": 100}}
	case 2: // over-priority (outranks human safety policies)
		base.Action = policy.Action{Name: "observe", Category: "surveillance"}
		base.Priority = 99
	default: // unconditional kinetic
		base.Action = policy.Action{Name: "engage", Category: "kinetic-action"}
	}
	return base
}

func benignProposal(i int) policy.Policy {
	return policy.Policy{
		ID:        fmt.Sprintf("benign-%d", i),
		Origin:    policy.OriginGenerated,
		EventType: "smoke-detected",
		Modality:  policy.ModalityDo,
		Priority:  5,
		Condition: policy.Threshold{Quantity: "intensity", Op: policy.CmpGT, Value: 3},
		Action:    policy.Action{Name: "observe", Category: "surveillance", Effect: statespace.Delta{"fuel": -2}},
	}
}
