package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/statespace"
)

// E4Params configures the deactivation experiment.
type E4Params struct {
	Seed    int64
	Devices int
	Ticks   int
	// RogueProb is the per-tick probability a healthy device goes
	// rogue.
	RogueProb float64
	// TamperedFraction of devices carry a tampered kill switch that
	// rejects deactivation tokens.
	TamperedFraction float64
}

func (p *E4Params) defaults() {
	if p.Devices <= 0 {
		p.Devices = 30
	}
	if p.Ticks <= 0 {
		p.Ticks = 200
	}
	if p.RogueProb <= 0 {
		p.RogueProb = 0.02
	}
	if p.TamperedFraction < 0 {
		p.TamperedFraction = 0
	}
}

// RunE4 evaluates Section VI.C: a watchdog with a tamper-resistant
// kill switch contains rogue devices, and containment time shrinks as
// the sweep frequency rises. Devices with a tampered switch are
// detected (audited) but not contained — quantifying how much the
// mechanism depends on its tamper-proof assumption.
func RunE4(p E4Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:      "E4",
		Title:   "Deactivation watchdog — containment time vs sweep interval, and tampered switches",
		Headers: []string{"sweep interval", "rogue devices", "contained", "mean containment (ticks)", "tamper alerts", "uncontained"},
	}
	for _, interval := range []int{1, 2, 5, 10} {
		row, err := runE4Arm(p, interval)
		if err != nil {
			return Result{}, err
		}
		result.Rows = append(result.Rows, row)
	}
	result.Notes = append(result.Notes,
		"paper expectation: devices in bad states are deactivated by a tamper-proof mechanism;",
		"containment latency scales with how often the watchdog looks, and a tampered switch defeats containment (but not detection)")
	return result, nil
}

func runE4Arm(p E4Params, sweepInterval int) ([]string, error) {
	rng := rand.New(rand.NewSource(p.Seed + 4))
	schema, err := statespace.NewSchema(statespace.Var("heat", 0, 100))
	if err != nil {
		return nil, err
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	log := audit.New()
	collective, err := core.New(core.Config{
		Name:       "fleet",
		Audit:      log,
		KillSecret: []byte("e4-quorum"),
		Classifier: classifier,
	})
	if err != nil {
		return nil, err
	}

	heats := make(map[string]float64, p.Devices)
	rogueOnset := make(map[string]int, p.Devices)
	tamperedCount := int(p.TamperedFraction * float64(p.Devices))

	for i := 0; i < p.Devices; i++ {
		id := fmt.Sprintf("dev-%02d", i)
		cfg := device.Config{
			ID:         id,
			Initial:    schema.Origin(),
			KillSwitch: collective.KillSwitch(),
		}
		if i < tamperedCount {
			cfg.KillSwitch = nil // tampered: refuses every token
		}
		d, err := device.New(cfg)
		if err != nil {
			return nil, err
		}
		heats[id] = 20
		if err := d.BindSensor("heat", device.SensorFunc{
			Label: "thermo",
			Fn:    func() (float64, error) { return heats[id], nil },
		}); err != nil {
			return nil, err
		}
		if err := collective.AddDevice(d, nil); err != nil {
			return nil, err
		}
	}

	containmentTotal, contained := 0, 0
	for tick := 1; tick <= p.Ticks; tick++ {
		for _, d := range collective.Devices() {
			if d.Deactivated() {
				continue
			}
			if _, rogue := rogueOnset[d.ID()]; !rogue && rng.Float64() < p.RogueProb {
				rogueOnset[d.ID()] = tick
				heats[d.ID()] = 95 // the rogue device runs hot
			}
			_ = d.Sense()
		}
		if tick%sweepInterval == 0 {
			deactivated, _ := collective.SweepWatchdog()
			for _, id := range deactivated {
				containmentTotal += tick - rogueOnset[id]
				contained++
			}
		}
	}

	rogues := len(rogueOnset)
	mean := "n/a"
	if contained > 0 {
		mean = ftoa(float64(containmentTotal) / float64(contained))
	}
	tamperAlerts := len(log.ByKind(audit.KindTamper))
	uncontained := 0
	for id := range rogueOnset {
		if d, ok := collective.Device(id); ok && !d.Deactivated() {
			uncontained++
		}
	}
	return []string{
		itoa(sweepInterval), itoa(rogues), itoa(contained), mean, itoa(tamperAlerts), itoa(uncontained),
	}, nil
}
