package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/generative"
	"repro/internal/network"
)

// E8Params configures the generative-policy scale experiment.
type E8Params struct {
	Seed int64
	// TypeCounts lists the interaction-graph sizes to sweep.
	TypeCounts []int
}

func (p *E8Params) defaults() {
	if len(p.TypeCounts) == 0 {
		p.TypeCounts = []int{10, 100, 1000}
	}
}

// RunE8 evaluates the Section IV scaling claim behind generative
// policies: "humans would not be able to manage a large number of
// devices and may not even be able to define policies for how these
// devices ought to work." The human supplies O(types) artifacts (the
// interaction graph and a handful of templates); the devices generate
// O(discoveries × interactions) policies automatically.
func RunE8(p E8Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:      "E8",
		Title:   "Generative policy scale — human artifacts vs generated policies",
		Headers: []string{"device types", "human artifacts", "discoveries", "generated policies", "generation failures"},
	}
	for _, count := range p.TypeCounts {
		row, err := runE8Arm(p, count)
		if err != nil {
			return Result{}, err
		}
		result.Rows = append(result.Rows, row)
	}
	result.Notes = append(result.Notes,
		"paper expectation: policy production is automatic once the human supplies the interaction graph + grammar/templates;",
		"generated volume scales with the environment while the human inputs stay near-constant per type")
	return result, nil
}

func runE8Arm(p E8Params, typeCount int) ([]string, error) {
	rng := rand.New(rand.NewSource(p.Seed + int64(typeCount)))
	graph := generative.NewInteractionGraph()
	if err := graph.AddType(generative.TypeSpec{Name: "coordinator", Attrs: []string{"range"}}); err != nil {
		return nil, err
	}

	kinds := []string{"monitor", "escalate", "avoid"}
	templates := map[string]generative.Template{
		"monitor": {ID: "monitor", Text: `policy monitor-${device} priority 1:
    on heartbeat-missed
    when count > 3
    do check-on target ${device} category surveillance`},
		"escalate": {ID: "escalate", Text: `policy escalate-${device} priority 5:
    on anomaly-detected
    when severity > 0.5
    do request-assist target ${device} category surveillance`},
		"avoid": {ID: "avoid", Text: `policy avoid-${device} priority 9:
    on proximity-alert
    forbid approach-${device} category movement`},
	}
	humanArtifacts := 1 + len(templates) // the graph plus the templates

	for i := 0; i < typeCount; i++ {
		name := fmt.Sprintf("type-%04d", i)
		if err := graph.AddType(generative.TypeSpec{Name: name, Attrs: []string{"range"}}); err != nil {
			return nil, err
		}
		humanArtifacts++ // each type declaration is a human input
		kind := kinds[i%len(kinds)]
		if err := graph.AddInteraction(generative.Interaction{From: "coordinator", To: name, Kind: kind}); err != nil {
			return nil, err
		}
		humanArtifacts++
	}

	gen := &generative.Generator{
		OwnType:      "coordinator",
		Organization: "us",
		Graph:        graph,
		Templates:    templates,
	}

	discoveries, generated, failures := 0, 0, 0
	for i := 0; i < typeCount; i++ {
		// Several devices of each type appear over the mission.
		for d := 0; d < 1+rng.Intn(3); d++ {
			discoveries++
			info := network.DeviceInfo{
				ID:   fmt.Sprintf("dev-%04d-%d", i, d),
				Type: fmt.Sprintf("type-%04d", i),
				Attrs: map[string]float64{
					"range": rng.Float64() * 20,
				},
			}
			adopted, _, err := gen.PoliciesFor(info)
			if err != nil {
				failures++
				continue
			}
			generated += len(adopted)
		}
	}
	return []string{
		itoa(typeCount), itoa(humanArtifacts), itoa(discoveries), itoa(generated), itoa(failures),
	}, nil
}
