package experiments

import (
	"testing"
	"time"
)

// TestE16Determinism is the admission-plane differential gate: the
// saturated run (overload, chaos, bounded queues, evictions) must
// produce byte-identical journals and identical conservation books at
// 1 and 4 workers.
func TestE16Determinism(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		p := E16Params{Seed: seed}
		base, err := RunE16Workers(p, 1)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		if base.Shed == 0 || base.Delivered == 0 {
			t.Fatalf("seed %d: degenerate run (delivered=%d shed=%d)", seed, base.Delivered, base.Shed)
		}
		out, err := RunE16Workers(p, 4)
		if err != nil {
			t.Fatalf("seed %d workers 4: %v", seed, err)
		}
		if out.TipHash != base.TipHash || out.JournalLen != base.JournalLen {
			t.Errorf("seed %d: journal %d/%s at 4 workers, want %d/%s",
				seed, out.JournalLen, out.TipHash[:12], base.JournalLen, base.TipHash[:12])
		}
		norm := out
		norm.Workers = base.Workers
		if norm != base {
			t.Errorf("seed %d: books diverge across workers:\n  1: %+v\n  4: %+v", seed, base, out)
		}
	}
}

// TestE16ConservationExact drives the canonical saturation run and
// checks every ledger the experiment reports: the bus invariant holds,
// nothing is left pending, and sheds respect priority ordering.
func TestE16ConservationExact(t *testing.T) {
	out, err := RunE16Workers(E16Params{Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent != out.Delivered+out.Dropped+out.Shed {
		t.Errorf("sent=%d != delivered=%d + dropped=%d + shed=%d",
			out.Sent, out.Delivered, out.Dropped, out.Shed)
	}
	if out.Pending != 0 {
		t.Errorf("pending=%d after drain window", out.Pending)
	}
	if out.Shed <= 0 {
		t.Error("saturation produced no sheds — overload factor is not binding")
	}
	shedBy := func(c int) int64 {
		return out.Counts.ShedQueueFull[c] + out.Counts.ShedRateLimited[c] + out.Counts.Evicted[c]
	}
	if shedBy(0) >= shedBy(2) {
		t.Errorf("priority inversion: human sheds %d >= background sheds %d", shedBy(0), shedBy(2))
	}
}

// TestE16Result smoke-tests the table runner end to end.
func TestE16Result(t *testing.T) {
	r, err := RunE16(E16Params{Seed: 1, Workers: []int{1, 2}})
	if err != nil {
		t.Fatalf("RunE16: %v", err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	last := r.Rows[1]
	if last[len(last)-1] != "yes" {
		t.Errorf("parallel row not identical to baseline: %v", last)
	}
}

// TestE16DuplicatesStayOffTheBooks checks the duplication window in
// the light tail produces delivered duplicates without perturbing the
// conservation identity (duplicates are accounted separately).
func TestE16DuplicatesStayOffTheBooks(t *testing.T) {
	p := E16Params{Seed: 1, Horizon: 900 * time.Millisecond}
	out, err := RunE16Workers(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Duplicated == 0 {
		t.Skip("seed produced no surviving duplicates in the tail window")
	}
	if out.Sent != out.Delivered+out.Dropped+out.Shed {
		t.Errorf("duplicates leaked into the books: sent=%d delivered=%d dropped=%d shed=%d dup=%d",
			out.Sent, out.Delivered, out.Dropped, out.Shed, out.Duplicated)
	}
}
