package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// E18Params configures the memory-compact mega-fleet experiment.
type E18Params struct {
	// Seed varies the per-device dynamics (deterministically).
	Seed int64
	// Fleet is the number of self-managing devices (default 100000 —
	// pass a smaller fleet for quick runs).
	Fleet int
	// Horizon is the virtual duration of each run.
	Horizon time.Duration
	// Period is the MAPE tick period.
	Period time.Duration
	// Workers are the engine parallelism levels to compare; the first
	// must be 1 (the serial baseline).
	Workers []int
	// TrajectoryBound is the per-device state-history ring size
	// (default 8; decline detection needs DeclineWindow+1 = 4).
	TrajectoryBound int
	// Boxed disables the arena/scratch fast path on every device, so
	// each state transition allocates a boxed State as the original
	// implementation did. The E18 differential runs the same fleet
	// both ways and demands byte-identical journals.
	Boxed bool
	// NoAudit drops the shared journal (used by the 10^6-device smoke,
	// where the journal itself would dominate memory).
	NoAudit bool
}

func (p *E18Params) defaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Fleet <= 0 {
		p.Fleet = 100000
	}
	if p.Horizon <= 0 {
		p.Horizon = 10 * time.Second
	}
	if p.Period <= 0 {
		p.Period = time.Second
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4}
	}
	if p.TrajectoryBound <= 0 {
		p.TrajectoryBound = 8
	}
}

// E18Outcome is one configuration's measured result.
type E18Outcome struct {
	// Workers is the engine parallelism (1 = serial).
	Workers int
	// Wall is the host wall-clock time of the engine run.
	Wall time.Duration
	// AllocMB is the heap allocated over setup+run (host-dependent;
	// reported to show the memory-compact path at work, never compared
	// by the determinism gate).
	AllocMB float64
	// JournalLen is the number of audit entries (0 with NoAudit).
	JournalLen int
	// TipHash is the hash of the last audit entry — equal tips over
	// equal lengths mean byte-identical hash-chained journals.
	TipHash string
	// Actions and Denials are the per-kind audit entry counts.
	Actions, Denials int
	// HeatSum is the summed final heat of the fleet (a state checksum).
	HeatSum float64
}

// e18World is a fully constructed mega-fleet, ready to run. The
// construction path is benchmarked on its own (BenchmarkE18Construct)
// and alloc-gated, so fleet setup cost stays visible next to tick
// cost.
type e18World struct {
	clock      *sim.Clock
	log        *audit.Log
	collective *core.Collective
	orch       *core.Orchestrator
}

// buildE18World constructs the mega-fleet: shared arena, shared guard
// classifier, one compiled policy program adopted per device in one
// batch, and every member enrolled with the orchestrator.
func buildE18World(p E18Params, workers int) (*e18World, error) {
	clock := sim.NewClock(time.Date(2026, 8, 3, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	engine.SetParallelism(workers)
	var log *audit.Log
	if !p.NoAudit {
		log = audit.New(audit.WithClock(clock.Now))
	}

	schema := statespace.MustSchema(statespace.Var("heat", 0, 100))
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	safeness := statespace.SafenessFunc(func(st statespace.State) float64 {
		return (100 - st.MustGet("heat")) / 100
	})

	collective, err := core.New(core.Config{
		Name:            "e18-megafleet",
		Audit:           log,
		KillSecret:      []byte("e18-quorum"),
		ExpectedMembers: p.Fleet,
	})
	if err != nil {
		return nil, err
	}
	mkGuard := func() guard.Guard {
		return core.StandardPipeline(core.SafetyConfig{
			Audit:      log,
			Classifier: classifier,
			HarmPredictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
				if ctx.Action.Name == "vent" {
					return 1
				}
				return 0
			}),
			HarmThreshold: 0.5,
		})
	}

	const fleetSource = `
policy cool priority 5: on self-state-alert do cool effect heat -= 55
policy vent priority 4: on self-state-alert do vent category kinetic-action`
	policies, err := policylang.CompileSource(fleetSource, policy.OriginHuman)
	if err != nil {
		return nil, err
	}

	orch, err := core.NewOrchestrator(collective, engine)
	if err != nil {
		return nil, err
	}

	// One shared arena backs every device's MAPE scratch: the whole
	// fleet's live state is two contiguous float slabs. Device
	// construction is serial, so the bump allocator needs no lock.
	arena := statespace.NewArena(2 * p.Fleet * schema.Len())

	// The per-device initial state differs only in one value; reuse one
	// map for StateFromMap instead of allocating p.Fleet of them. The
	// whole fleet shares one type/org, so it shares one static profile
	// (and therefore one residual snapshot).
	initValues := make(map[string]float64, 1)
	profile := policy.DeviceProfile("reactor", "us")
	var idBuf []byte

	for i := 0; i < p.Fleet; i++ {
		idBuf = fmt.Appendf(idBuf[:0], "dev-%06d", i)
		id := string(idBuf)
		mix := (int64(i) + p.Seed) % 41
		heat := 20 + float64(mix)              // 20..60
		rate := 9 + float64((i+int(p.Seed))%7) // 9..15 per tick
		initValues["heat"] = heat
		initial, err := schema.StateFromMap(initValues)
		if err != nil {
			return nil, err
		}
		d, err := device.New(device.Config{
			ID: id, Type: "reactor", Organization: "us",
			Static:          profile,
			Initial:         initial,
			Guard:           mkGuard(),
			KillSwitch:      collective.KillSwitch(),
			Audit:           log,
			TrajectoryBound: p.TrajectoryBound,
			Arena:           arena,
			BoxedState:      p.Boxed,
		})
		if err != nil {
			return nil, err
		}
		// One lock and one snapshot invalidation for the whole program.
		if err := d.Policies().AddBatch(policies); err != nil {
			return nil, err
		}
		h := heat
		if err := d.BindSensor("heat", device.SensorFunc{Label: "thermo", Fn: func() (float64, error) {
			h += rate
			if h > 95 {
				h = 95
			}
			return h, nil
		}}); err != nil {
			return nil, err
		}
		if err := d.RegisterActuator("cool", device.ActuatorFunc{Label: "chiller",
			Fn: func(policy.Action) error {
				h -= 55
				if h < 15 {
					h = 15
				}
				return nil
			}}); err != nil {
			return nil, err
		}
		d.SetDefaultActuator(device.NopActuator{})
		if err := collective.AddDevice(d, nil); err != nil {
			return nil, err
		}
		if err := orch.Manage(id, p.Period, classifier, safeness); err != nil {
			return nil, err
		}
	}
	return &e18World{clock: clock, log: log, collective: collective, orch: orch}, nil
}

// RunE18Workers builds the mega-fleet and runs it once at the given
// parallelism. The scenario is E15's overheating reactor fleet scaled
// up and rebuilt on the memory-compact state plane: every device's
// MAPE scratch draws its flat state vectors from one shared arena,
// state history is a bounded ring, and labels on the hot path are
// interned — so the marginal footprint per device is a few hundred
// bytes, not a few kilobytes per tick.
func RunE18Workers(p E18Params, workers int) (E18Outcome, error) {
	p.defaults()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	w, err := buildE18World(p, workers)
	if err != nil {
		return E18Outcome{}, err
	}
	clock, log, collective, orch := w.clock, w.log, w.collective, w.orch

	start := time.Now()
	if err := orch.Run(clock.Now().Add(p.Horizon)); err != nil {
		return E18Outcome{}, err
	}
	wall := time.Since(start)

	out := E18Outcome{Workers: workers, Wall: wall}
	if log != nil {
		if err := log.Verify(); err != nil {
			return E18Outcome{}, fmt.Errorf("audit chain (workers=%d): %w", workers, err)
		}
		out.JournalLen = log.Len()
		out.Actions = log.CountKind(audit.KindAction)
		out.Denials = log.CountKind(audit.KindDenial)
		if entries := log.Entries(); len(entries) > 0 {
			out.TipHash = entries[len(entries)-1].Hash
		}
	}
	for _, d := range collective.Devices() {
		out.HeatSum += d.CurrentState().MustGet("heat")
	}
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	out.AllocMB = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / (1 << 20)
	return out, nil
}

// RunE18 measures the memory-compact fleet state plane: the same
// overheating fleet runs serially and at 2/4 workers on flat
// arena-backed state vectors, bounded trajectory rings and pooled
// MAPE-K scratch, and every run must produce a byte-identical audit
// journal and identical fleet state. A final run with the compact path
// disabled (boxed allocation per transition) must match the compact
// journals byte for byte — the compaction is memory layout, not
// semantics.
func RunE18(p E18Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:    "E18",
		Title: "Memory-compact mega-fleet (flat state vectors, interned labels, pooled scratch)",
		Headers: []string{"variant", "workers", "wall ms", "alloc MB", "journal",
			"actions", "denials", "tip", "identical"},
	}
	var base E18Outcome
	row := func(variant string, out E18Outcome, identical string) {
		tip := out.TipHash
		if len(tip) > 12 {
			tip = tip[:12]
		}
		result.Rows = append(result.Rows, []string{
			variant, itoa(out.Workers),
			fmt.Sprintf("%.1f", float64(out.Wall.Microseconds())/1000),
			fmt.Sprintf("%.1f", out.AllocMB),
			itoa(out.JournalLen), itoa(out.Actions), itoa(out.Denials),
			tip, identical,
		})
	}
	same := func(out E18Outcome) string {
		if out.TipHash != base.TipHash || out.JournalLen != base.JournalLen ||
			out.HeatSum != base.HeatSum {
			return "NO"
		}
		return "yes"
	}
	for i, workers := range p.Workers {
		out, err := RunE18Workers(p, workers)
		if err != nil {
			return Result{}, err
		}
		if i == 0 {
			base = out
			row("compact", out, "baseline")
			continue
		}
		row("compact", out, same(out))
	}
	boxed := p
	boxed.Boxed = true
	out, err := RunE18Workers(boxed, 1)
	if err != nil {
		return Result{}, err
	}
	row("boxed", out, same(out))
	result.Notes = append(result.Notes,
		fmt.Sprintf("fleet=%d period=%s horizon=%s seed=%d ring=%d; one shared arena backs all MAPE scratch;",
			p.Fleet, p.Period, p.Horizon, p.Seed, p.TrajectoryBound),
		"equal tip hash over equal length = byte-identical hash-chained journal; the boxed row proves the",
		"compact path is layout-only (same journal bytes, same fleet state); alloc MB is host-dependent")
	return result, nil
}
