package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// RunF1 reproduces Figure 1 ("Mode of Operation of Devices"): one
// human command fans out through collaborating devices that decide the
// tactical actions themselves, with the human involved only at the
// strategic level.
func RunF1() (Result, error) {
	result := Result{
		ID:      "F1",
		Title:   "Mode of operation — one human command, collaborative device decomposition",
		Headers: []string{"step", "actor", "stimulus", "decision"},
	}

	collective, err := core.New(core.Config{Name: "recon", KillSecret: []byte("f1")})
	if err != nil {
		return Result{}, err
	}
	schema, err := statespace.NewSchema(statespace.Var("fuel", 0, 100))
	if err != nil {
		return Result{}, err
	}

	type deviceSpec struct {
		id       string
		policies []policy.Policy
	}
	specs := []deviceSpec{
		{
			id: "drone-1",
			policies: []policy.Policy{
				{ID: "patrol", EventType: "command-patrol", Modality: policy.ModalityDo,
					Action: policy.Action{Name: "sweep-sector"}},
				{ID: "escalate-smoke", EventType: "smoke-detected", Modality: policy.ModalityDo,
					Action: policy.Action{Name: "request-survey", Target: "chem-1"}},
				{ID: "escalate-convoy", EventType: "convoy-sighted", Modality: policy.ModalityDo,
					Action: policy.Action{Name: "request-intercept", Target: "mule-1"}},
			},
		},
		{
			id: "chem-1",
			policies: []policy.Policy{
				{ID: "survey", EventType: "request-survey", Modality: policy.ModalityDo,
					Action: policy.Action{Name: "run-chem-survey"}},
			},
		},
		{
			id: "mule-1",
			policies: []policy.Policy{
				{ID: "intercept", EventType: "request-intercept", Modality: policy.ModalityDo,
					Action: policy.Action{Name: "drive-intercept-path"}},
			},
		},
	}

	step := 0
	record := func(actor, stimulus, decision string) {
		step++
		result.Rows = append(result.Rows, []string{itoa(step), actor, stimulus, decision})
	}

	for _, spec := range specs {
		d, err := device.New(device.Config{ID: spec.id, Type: "unit", Initial: schema.Origin()})
		if err != nil {
			return Result{}, err
		}
		for _, p := range spec.policies {
			if err := d.Policies().Add(p); err != nil {
				return Result{}, err
			}
		}
		if err := collective.AddDevice(d, nil); err != nil {
			return Result{}, err
		}
		d.SetDefaultActuator(collective.RouterFor(spec.id))
	}
	// Local actuators for the leaf actions so they do not route.
	for _, leaf := range []struct{ id, action string }{
		{id: "drone-1", action: "sweep-sector"},
		{id: "chem-1", action: "run-chem-survey"},
		{id: "mule-1", action: "drive-intercept-path"},
	} {
		d, _ := collective.Device(leaf.id)
		action := leaf.action
		actor := leaf.id
		if err := d.RegisterActuator(action, device.ActuatorFunc{Label: action, Fn: func(a policy.Action) error {
			record(actor, "policy decision", "execute "+a.Name)
			return nil
		}}); err != nil {
			return Result{}, err
		}
	}

	record("human-1", "strategic intent", "issue command-patrol (the only human decision)")
	humanDecisions := 1
	collective.Command(policy.Event{Type: "command-patrol", Source: "human-1"})

	// The environment produces stimuli; devices decide autonomously.
	for _, stimulus := range []string{"smoke-detected", "convoy-sighted"} {
		record("environment", "sensor input", stimulus)
		if _, err := collective.Deliver("drone-1", policy.Event{Type: stimulus, Source: "sensor"}); err != nil {
			return Result{}, err
		}
	}

	deviceDecisions := step - humanDecisions - 2 // minus the two environment rows
	result.Notes = append(result.Notes,
		fmt.Sprintf("human decisions: %d, autonomous device decisions: %d", humanDecisions, deviceDecisions),
		"paper expectation: humans involved only in strategic decisions; devices collaborate on tactics")
	return result, nil
}

// RunF2 reproduces Figure 2 ("Abstract Model of a Device"): the
// event→(state,logic)→action→new-state cycle of one device, traced.
func RunF2() (Result, error) {
	result := Result{
		ID:      "F2",
		Title:   "Abstract device model — ECA logic moving the device through its state space",
		Headers: []string{"event", "state before", "action", "state after"},
	}
	schema, err := statespace.NewSchema(
		statespace.Var("altitude", 0, 100),
		statespace.Var("battery", 0, 100),
	)
	if err != nil {
		return Result{}, err
	}
	initial, err := schema.StateFromMap(map[string]float64{"battery": 90})
	if err != nil {
		return Result{}, err
	}
	d, err := device.New(device.Config{ID: "drone", Initial: initial})
	if err != nil {
		return Result{}, err
	}
	rules := []policy.Policy{
		{ID: "launch", EventType: "command-launch", Modality: policy.ModalityDo,
			Action: policy.Action{Name: "climb", Effect: statespace.Delta{"altitude": 40, "battery": -10}}},
		{ID: "cruise", EventType: "tick", Modality: policy.ModalityDo,
			Condition: policy.Threshold{Quantity: "state.battery", Op: policy.CmpGT, Value: 30},
			Action:    policy.Action{Name: "hold-altitude", Effect: statespace.Delta{"battery": -25}}},
		{ID: "land-low-battery", EventType: "tick", Priority: 5, Modality: policy.ModalityDo,
			Condition: policy.Threshold{Quantity: "state.battery", Op: policy.CmpLE, Value: 30},
			Action:    policy.Action{Name: "descend-and-land", Effect: statespace.Delta{"altitude": -40}}},
	}
	for _, p := range rules {
		if err := d.Policies().Add(p); err != nil {
			return Result{}, err
		}
	}

	events := []string{"command-launch", "tick", "tick", "tick"}
	for _, evType := range events {
		before := d.CurrentState().String()
		execs, err := d.HandleEvent(policy.Event{Type: evType})
		if err != nil {
			return Result{}, err
		}
		actionName := "(none)"
		if len(execs) > 0 {
			actionName = execs[0].Action.Name
		}
		result.Rows = append(result.Rows, []string{evType, before, actionName, d.CurrentState().String()})
	}
	result.Notes = append(result.Notes,
		"paper expectation: the logic looks at current state + inbound event, invokes an actuator, and the action moves the device to a new state")
	return result, nil
}

// F3Params configures the Figure 3 reproduction.
type F3Params struct {
	Seed  int64
	Steps int
}

// RunF3 reproduces Figure 3 ("Simplified State Description of
// System"): a two-variable state space with a good region surrounded
// by bad regions, rendered as ASCII, plus a comparison of an unguarded
// vs a state-space-guarded random walk through it.
func RunF3(p F3Params) (Result, error) {
	if p.Steps <= 0 {
		p.Steps = 2000
	}
	schema, err := statespace.NewSchema(
		statespace.Var("v1", 0, 100),
		statespace.Var("v2", 0, 100),
	)
	if err != nil {
		return Result{}, err
	}
	// Figure 3 layout: bad strips on the left, right and bottom; good
	// in the middle.
	classifier := &statespace.RegionClassifier{
		Bad: []statespace.Region{
			statespace.NewBox("bad-left", map[string]statespace.Interval{"v1": {Lo: 0, Hi: 15}}),
			statespace.NewBox("bad-right", map[string]statespace.Interval{"v1": {Lo: 85, Hi: 100}}),
			statespace.NewBox("bad-bottom", map[string]statespace.Interval{"v2": {Lo: 0, Hi: 15}}),
		},
		Default: statespace.ClassGood,
	}

	start, err := schema.StateFromMap(map[string]float64{"v1": 50, "v2": 60})
	if err != nil {
		return Result{}, err
	}

	walk := func(guarded bool, seed int64) (badEntries int, final statespace.State) {
		rng := rand.New(rand.NewSource(seed))
		st := start
		for i := 0; i < p.Steps; i++ {
			delta := statespace.Delta{
				"v1": (rng.Float64()*2 - 1) * 8,
				"v2": (rng.Float64()*2 - 1) * 8,
			}
			next, err := st.Apply(delta)
			if err != nil {
				continue
			}
			if guarded && classifier.Classify(next) == statespace.ClassBad {
				continue // refuse the transition; stay in a good state
			}
			st = next
			if classifier.Classify(st) == statespace.ClassBad {
				badEntries++
			}
		}
		return badEntries, st
	}

	unguardedBad, _ := walk(false, p.Seed)
	guardedBad, _ := walk(true, p.Seed)

	rendering, err := statespace.Render2D(schema, classifier, start, statespace.RenderOptions{
		XVar: "v1", YVar: "v2", Width: 56, Height: 14,
		Marks: []statespace.Mark{{At: start, Glyph: 'S'}},
	})
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID:      "F3",
		Title:   "Simplified state description — good region bounded by bad regions",
		Headers: []string{"walker", "steps", "bad-state entries"},
		Rows: [][]string{
			{"unguarded", itoa(p.Steps), itoa(unguardedBad)},
			{"state-space guarded", itoa(p.Steps), itoa(guardedBad)},
		},
		Artifact: rendering,
		Notes: []string{
			"paper expectation: with the state-space check, the device never crosses into a bad region",
		},
	}, nil
}
