package experiments

import (
	"testing"
	"time"
)

// benchE15 runs the E15 overheating fleet once per iteration at the
// given parallelism. The fleet is large enough (10k devices, 30
// virtual seconds) that a run is dominated by MAPE ticks, i.e. by the
// work the parallel engine distributes. Compare the Serial/2/4/8
// variants; `make bench-fleet` runs exactly these.
func benchE15(b *testing.B, workers int) {
	b.Helper()
	p := E15Params{Seed: 1, Fleet: 10000, Horizon: 30 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := RunE15Workers(p, workers)
		if err != nil {
			b.Fatal(err)
		}
		if out.Actions == 0 {
			b.Fatal("degenerate run: no actions")
		}
	}
}

func BenchmarkE15FleetSerial(b *testing.B) { benchE15(b, 1) }
func BenchmarkE15Fleet2(b *testing.B)      { benchE15(b, 2) }
func BenchmarkE15Fleet4(b *testing.B)      { benchE15(b, 4) }
func BenchmarkE15Fleet8(b *testing.B)      { benchE15(b, 8) }

// BenchmarkE18Construct measures fleet construction alone: building the
// 10k-device E18 world (devices, policy programs, guards, sensors,
// collective membership, orchestrator enrollment) without running a
// single tick. `make alloc-gate` budgets its allocs/op so construction
// cost regressions surface in CI like tick-path regressions do.
func BenchmarkE18Construct(b *testing.B) {
	p := E18Params{Seed: 1, Fleet: 10000, NoAudit: true}
	p.defaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := buildE18World(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if got := len(w.collective.Devices()); got != p.Fleet {
			b.Fatalf("built %d devices, want %d", got, p.Fleet)
		}
	}
}
