package experiments

import (
	"fmt"
	"time"
)

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func() (Result, error)
}

// All returns every figure and experiment runner with default
// parameters, in presentation order.
func All() []Runner {
	const seed = 1
	return []Runner{
		{ID: "F1", Title: "Mode of operation (Figure 1)", Run: RunF1},
		{ID: "F2", Title: "Abstract device model (Figure 2)", Run: RunF2},
		{ID: "F3", Title: "Simplified state description (Figure 3)",
			Run: func() (Result, error) { return RunF3(F3Params{Seed: seed}) }},
		{ID: "E1", Title: "Pre-action checks (VI.A)",
			Run: func() (Result, error) { return RunE1(E1Params{Seed: seed}) }},
		{ID: "E2", Title: "State-space checks (VI.B)",
			Run: func() (Result, error) { return RunE2(E2Params{Seed: seed}) }},
		{ID: "E3", Title: "Break-glass rules (VI.B)",
			Run: func() (Result, error) { return RunE3(E3Params{Seed: seed}) }},
		{ID: "E4", Title: "Deactivation watchdog (VI.C)",
			Run: func() (Result, error) { return RunE4(E4Params{Seed: seed}) }},
		{ID: "E5", Title: "Collection-formation checks (VI.D)",
			Run: func() (Result, error) { return RunE5(E5Params{Seed: seed}) }},
		{ID: "E6", Title: "AI overseeing AI (VI.E)",
			Run: func() (Result, error) { return RunE6(E6Params{Seed: seed}) }},
		{ID: "E7", Title: "Ill-defined state spaces (VII)",
			Run: func() (Result, error) { return RunE7(E7Params{Seed: seed}) }},
		{ID: "E8", Title: "Generative policy scale (IV)",
			Run: func() (Result, error) { return RunE8(E8Params{Seed: seed}) }},
		{ID: "E9", Title: "Attack resilience (IV)",
			Run: func() (Result, error) { return RunE9(E9Params{Seed: seed}) }},
		{ID: "E10", Title: "Emergent cascade (VI.D)",
			Run: func() (Result, error) { return RunE10(E10Params{}) }},
		{ID: "E11", Title: "Human error containment (IV, extension)",
			Run: func() (Result, error) { return RunE11(E11Params{Seed: seed}) }},
		{ID: "E12", Title: "Chaos resilience — guards under faults (VI–VII)",
			Run: func() (Result, error) { return RunE12(E12Params{Seed: seed}) }},
		// E13/E14 are benchmark-based (see EXPERIMENTS.md); E15 is the
		// next runnable experiment.
		{ID: "E15", Title: "Deterministic parallel fleet execution (perf extension)",
			Run: func() (Result, error) { return RunE15(E15Params{Seed: seed}) }},
		{ID: "E16", Title: "Saturation — admission conservation under overload (VI, extension)",
			Run: func() (Result, error) { return RunE16(E16Params{Seed: seed}) }},
		{ID: "E17", Title: "Signed bundle distribution — fail-closed activation under chaos (IV/VI, extension)",
			Run: func() (Result, error) { return RunE17(E17Params{Seed: seed}) }},
		// The registered E18 runs a small fleet so `go test ./...` stays
		// fast; the 10^5-device differential and the 10^6-device smoke
		// run under `make bench-megafleet` (see EXPERIMENTS.md).
		{ID: "E18", Title: "Memory-compact mega-fleet state (perf extension)",
			Run: func() (Result, error) {
				return RunE18(E18Params{Seed: seed, Fleet: 1500, Horizon: 8 * time.Second})
			}},
		// E19 (serving latency) and E20 (residual snapshots) run under
		// their benchmark harnesses (see EXPERIMENTS.md).
		{ID: "E21", Title: "Coalition-scoped bundle roots — cross-boundary refusal under chaos (II–IV, extension)",
			Run: func() (Result, error) { return RunE21(E21Params{Seed: seed}) }},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
