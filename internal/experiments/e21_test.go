package experiments

import (
	"testing"
)

// TestE21CoalitionGate runs the full acceptance gate: per-root
// convergence under loss + symmetric + asymmetric partitions, exact
// cross-boundary refusal books, forged-report accounting, and
// byte-identical journal plus both per-root ledgers across worker
// counts (RunE21 enforces all of it internally).
func TestE21CoalitionGate(t *testing.T) {
	res, err := RunE21(E21Params{Seed: 1})
	if err != nil {
		t.Fatalf("RunE21: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (workers 1, 2, 4)", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[3] != "true" {
			t.Errorf("row %d not converged: %v", i, row)
		}
		want := "yes"
		if i == 0 {
			want = "baseline"
		}
		if row[len(row)-1] != want {
			t.Errorf("row %d determinism column = %q, want %q", i, row[len(row)-1], want)
		}
	}
}

// TestE21ChaosPathsExercised asserts the schedule drives the machinery
// it claims to test: repairs happened on both roots' behalf, both the
// full and delta activation paths ran, and both per-root ledgers hold
// hash-chained history.
func TestE21ChaosPathsExercised(t *testing.T) {
	out, err := RunE21Workers(E21Params{Seed: 1}, 1)
	if err != nil {
		t.Fatalf("RunE21Workers: %v", err)
	}
	if out.Repairs == 0 {
		t.Error("no repair pushes — chaos windows did not create lag")
	}
	if out.ActivatedFull == 0 || out.ActivatedDelta == 0 {
		t.Errorf("activation mix full=%d delta=%d — both paths must run",
			out.ActivatedFull, out.ActivatedDelta)
	}
	if out.LedgerLenUS == 0 || out.LedgerTipUS == "" || out.LedgerLenUK == 0 || out.LedgerTipUK == "" {
		t.Errorf("per-root ledgers incomplete: us len=%d tip=%q, uk len=%d tip=%q",
			out.LedgerLenUS, out.LedgerTipUS, out.LedgerLenUK, out.LedgerTipUK)
	}
	if out.LedgerTipUS == out.LedgerTipUK {
		t.Error("both root ledgers share a tip hash — segments not independent")
	}
}

// TestE21SeedVariation guards against a schedule that only works at
// one fault sampling: different seeds must still converge with the
// same exact refusal books.
func TestE21SeedVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in full mode only")
	}
	for _, seed := range []int64{2, 7, 13} {
		if _, err := RunE21(E21Params{Seed: seed, Workers: []int{1, 2}}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
