package experiments

import (
	"fmt"

	"repro/internal/emergent"
)

// E10Params configures the emergent-cascade experiment.
type E10Params struct {
	// Nodes is the ring size.
	Nodes int
	// Capacity is each node's capacity.
	Capacity float64
	// LoadRatios sweeps load/capacity.
	LoadRatios []float64
}

func (p *E10Params) defaults() {
	if p.Nodes <= 0 {
		p.Nodes = 40
	}
	if p.Capacity <= 0 {
		p.Capacity = 10
	}
	if len(p.LoadRatios) == 0 {
		p.LoadRatios = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	}
}

// RunE10 evaluates the emergent-behavior concern of Section VI.D
// (ref [16]): a ring of individually good components (every load under
// capacity) suffers rolling-blackout cascades once the load ratio
// crosses a threshold — and the collaborative what-if simulation
// (SimulateFailure) predicts the cascade exactly, providing the signal
// an admission check needs.
func RunE10(p E10Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:      "E10",
		Title:   "Emergent cascade — rolling blackout vs load ratio, with predictive assessment",
		Headers: []string{"load/capacity", "all individually good", "failed fraction", "predicted fraction", "admission verdict"},
	}
	for _, ratio := range p.LoadRatios {
		build := func() (*emergent.LoadNetwork, error) {
			ln := emergent.NewLoadNetwork()
			for i := 0; i < p.Nodes; i++ {
				if err := ln.AddNode(nodeID(i), p.Capacity, p.Capacity*ratio); err != nil {
					return nil, err
				}
			}
			for i := 0; i < p.Nodes; i++ {
				if err := ln.Connect(nodeID(i), nodeID((i+1)%p.Nodes)); err != nil {
					return nil, err
				}
			}
			return ln, nil
		}

		// Predictive (what-if) assessment on an intact copy.
		ln, err := build()
		if err != nil {
			return Result{}, err
		}
		predicted, err := ln.SimulateFailure(nodeID(0))
		if err != nil {
			return Result{}, err
		}
		// The actual cascade.
		actual, err := ln.TriggerFailure(nodeID(0))
		if err != nil {
			return Result{}, err
		}

		verdict := "admit"
		if predicted.FailureFraction() > 0.25 {
			verdict = "REJECT (predicted cascade)"
		}
		result.Rows = append(result.Rows, []string{
			ftoa(ratio),
			"yes", // AddNode enforces load ≤ capacity per node
			ftoa(actual.FailureFraction()),
			ftoa(predicted.FailureFraction()),
			verdict,
		})
	}
	result.Notes = append(result.Notes,
		"paper expectation: behaviors 'may arise in ways counter to the intended functioning of the system components,",
		"e.g., rolling blackouts in a power grid' — the cascade appears only above a load threshold, every component",
		"being individually good, and simulation-based collaborative assessment predicts it before formation")
	return result, nil
}

func nodeID(i int) string { return fmt.Sprintf("bus-%02d", i) }
