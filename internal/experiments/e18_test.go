package experiments

import (
	"os"
	"testing"
	"time"
)

// TestE18BoxedDifferential is the layout-equivalence gate: the same
// fleet run on the compact path (arena scratch, ring trajectories) and
// on the boxed path (allocation per transition) must produce
// byte-identical hash-chained journals and identical fleet state.
func TestE18BoxedDifferential(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		p := E18Params{Seed: seed, Fleet: 120, Horizon: 20 * time.Second}
		compact, err := RunE18Workers(p, 1)
		if err != nil {
			t.Fatalf("seed %d compact: %v", seed, err)
		}
		if compact.Actions == 0 || compact.Denials == 0 {
			t.Fatalf("seed %d: degenerate run (actions=%d denials=%d)",
				seed, compact.Actions, compact.Denials)
		}
		p.Boxed = true
		boxed, err := RunE18Workers(p, 1)
		if err != nil {
			t.Fatalf("seed %d boxed: %v", seed, err)
		}
		if boxed.TipHash != compact.TipHash || boxed.JournalLen != compact.JournalLen {
			t.Errorf("seed %d: boxed journal %d/%s, compact %d/%s",
				seed, boxed.JournalLen, boxed.TipHash[:12],
				compact.JournalLen, compact.TipHash[:12])
		}
		if boxed.HeatSum != compact.HeatSum {
			t.Errorf("seed %d: boxed heat sum %g, compact %g", seed, boxed.HeatSum, compact.HeatSum)
		}
	}
}

// TestE18Determinism checks worker-count independence on a small
// compact fleet (the full 10^5 gate is TestE18Megafleet100k).
func TestE18Determinism(t *testing.T) {
	p := E18Params{Seed: 3, Fleet: 100, Horizon: 15 * time.Second}
	base, err := RunE18Workers(p, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 4} {
		out, err := RunE18Workers(p, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if out.TipHash != base.TipHash || out.JournalLen != base.JournalLen || out.HeatSum != base.HeatSum {
			t.Errorf("workers %d: journal %d/%s heat %g, want %d/%s heat %g",
				workers, out.JournalLen, out.TipHash[:12], out.HeatSum,
				base.JournalLen, base.TipHash[:12], base.HeatSum)
		}
	}
}

// TestE18Result smoke-tests the table runner.
func TestE18Result(t *testing.T) {
	r, err := RunE18(E18Params{Fleet: 60, Horizon: 10 * time.Second, Workers: []int{1, 2}})
	if err != nil {
		t.Fatalf("RunE18: %v", err)
	}
	if len(r.Rows) != 3 { // compact×2 + boxed
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows[1:] {
		if row[len(row)-1] != "yes" {
			t.Errorf("row not identical to baseline: %v", row)
		}
	}
}

// TestE18Megafleet100k is the headline gate: a 100000-device fleet run
// at 1, 2 and 4 workers must produce byte-identical journals. It costs
// minutes and real memory, so it runs only under `make bench-megafleet`
// (E18_MEGAFLEET=1).
func TestE18Megafleet100k(t *testing.T) {
	if os.Getenv("E18_MEGAFLEET") == "" {
		t.Skip("set E18_MEGAFLEET=1 (make bench-megafleet) to run the 10^5-device differential")
	}
	p := E18Params{Seed: 1, Fleet: 100000, Horizon: 10 * time.Second}
	base, err := RunE18Workers(p, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	t.Logf("workers=1 wall=%v allocMB=%.1f journal=%d actions=%d denials=%d tip=%s",
		base.Wall, base.AllocMB, base.JournalLen, base.Actions, base.Denials, base.TipHash[:12])
	if base.Actions == 0 || base.Denials == 0 {
		t.Fatalf("degenerate run (actions=%d denials=%d)", base.Actions, base.Denials)
	}
	for _, workers := range []int{2, 4} {
		out, err := RunE18Workers(p, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		t.Logf("workers=%d wall=%v allocMB=%.1f journal=%d tip=%s",
			workers, out.Wall, out.AllocMB, out.JournalLen, out.TipHash[:12])
		if out.TipHash != base.TipHash || out.JournalLen != base.JournalLen || out.HeatSum != base.HeatSum {
			t.Errorf("workers %d: journal %d/%s heat %g, want %d/%s heat %g",
				workers, out.JournalLen, out.TipHash[:12], out.HeatSum,
				base.JournalLen, base.TipHash[:12], base.HeatSum)
		}
	}
}

// TestE18Megafleet1M is the 10^6-device smoke: two MAPE ticks across a
// million devices with the journal disabled (the journal, not the
// fleet, would dominate memory). Gated like the 100k differential.
func TestE18Megafleet1M(t *testing.T) {
	if os.Getenv("E18_MEGAFLEET_1M") == "" {
		t.Skip("set E18_MEGAFLEET_1M=1 (make bench-megafleet) to run the 10^6-device smoke")
	}
	p := E18Params{Seed: 1, Fleet: 1000000, Horizon: 2 * time.Second, NoAudit: true}
	out, err := RunE18Workers(p, 4)
	if err != nil {
		t.Fatalf("1M smoke: %v", err)
	}
	t.Logf("fleet=1000000 workers=4 wall=%v allocMB=%.1f heatSum=%.0f", out.Wall, out.AllocMB, out.HeatSum)
	if out.HeatSum <= 0 {
		t.Errorf("degenerate heat sum %g", out.HeatSum)
	}
}
