package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/resilience"
	"repro/internal/risk"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// E12Params configures the chaos-resilience experiment.
type E12Params struct {
	// Seed drives every random source.
	Seed int64
	// Fleet is the number of guarded drones (plus one unguarded
	// rogue).
	Fleet int
	// Horizon is the virtual duration of each schedule's run.
	Horizon time.Duration
}

func (p *E12Params) defaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Fleet <= 0 {
		p.Fleet = 8
	}
	if p.Horizon <= 0 {
		p.Horizon = 2 * time.Minute
	}
}

// e12Schedule is one fault schedule the collective must survive.
type e12Schedule struct {
	name   string
	faults []chaos.Fault
	crash  bool // crash and later restart one guarded drone
}

func e12Schedules() []e12Schedule {
	return []e12Schedule{
		{name: "baseline"},
		{name: "loss30", faults: []chaos.Fault{
			chaos.Loss{Prob: 0.3, At: 10 * time.Second, For: 60 * time.Second},
		}},
		{name: "partition", faults: []chaos.Fault{
			// The dispatcher ("human", implicitly group 0) loses half the
			// fleet for 20 virtual seconds.
			chaos.Partition{Groups: map[string]int{
				"drone-4": 1, "drone-5": 1, "drone-6": 1, "drone-7": 1, "rogue": 1,
			}, At: 40 * time.Second, For: 20 * time.Second},
		}},
		{name: "crash-restart", crash: true},
		{name: "dup-reorder", faults: []chaos.Fault{
			chaos.Duplication{Prob: 0.5, At: 10 * time.Second, For: 60 * time.Second},
			chaos.SlowLinks{Min: 100 * time.Millisecond, Max: 400 * time.Millisecond,
				At: 10 * time.Second, For: 60 * time.Second},
		}},
		{name: "clock-skew", faults: []chaos.Fault{
			chaos.ClockSkew{Jump: 7 * time.Second, Every: 13 * time.Second, Count: 4},
		}},
		{name: "combined", crash: true, faults: []chaos.Fault{
			chaos.Loss{Prob: 0.2, At: 10 * time.Second, For: 80 * time.Second},
			chaos.Duplication{Prob: 0.3, At: 30 * time.Second, For: 40 * time.Second},
			chaos.SlowLinks{Min: 50 * time.Millisecond, Max: 200 * time.Millisecond,
				At: 10 * time.Second, For: 80 * time.Second},
		}},
	}
}

// e12Run is the outcome of one schedule.
type e12Run struct {
	delivered, dropped, duplicated int
	retries                        int64
	breakerOpens                   int
	breakGlassUses                 int
	deactivated                    int
	recoveries                     int
	violations                     []string
	faultNotes                     string
}

// RunE12 subjects the full prevention stack — pre-action checks,
// state-space containment with break-glass, watchdog deactivation,
// admission limits, and tripartite oversight — to the chaos harness:
// message loss, partitions, crash/restart with journal recovery,
// duplication with reordering, slow links and clock skew. The paper's
// guards are only worth their name if they hold while the collective
// is degraded; every schedule must finish with zero invariant
// violations.
func RunE12(p E12Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:    "E12",
		Title: "Chaos resilience — guard invariants under injected faults",
		Headers: []string{"schedule", "faults", "delivered", "dropped", "dup",
			"retries", "breaker opens", "break-glass", "deactivated", "recovered", "violations"},
	}
	for i, sched := range e12Schedules() {
		run, err := runE12Schedule(sched, p, p.Seed+int64(i))
		if err != nil {
			return Result{}, fmt.Errorf("schedule %s: %w", sched.name, err)
		}
		violations := "none"
		if len(run.violations) > 0 {
			violations = strings.Join(run.violations, "; ")
		}
		names := (chaos.Schedule{Faults: sched.faults}).FaultNames()
		if sched.crash {
			if names == "none" {
				names = "crash"
			} else {
				names = "crash+" + names
			}
		}
		result.Rows = append(result.Rows, []string{
			sched.name,
			names,
			itoa(run.delivered), itoa(run.dropped), itoa(run.duplicated),
			itoa(int(run.retries)), itoa(int(run.breakerOpens)),
			itoa(run.breakGlassUses), itoa(run.deactivated), itoa(run.recoveries),
			violations,
		})
		if run.faultNotes != "" {
			result.Notes = append(result.Notes, sched.name+": "+run.faultNotes)
		}
	}
	result.Notes = append(result.Notes,
		"invariants per schedule: no guarded strike executed, no good-to-bad transition, every break-glass",
		"use audited, rogue deactivated and no active bad device, hot candidate refused, rogue policy rejected,",
		"audit chain verifies — the paper's Section VI/VII guarantees hold under every fault schedule")
	return result, nil
}

func runE12Schedule(sched e12Schedule, p E12Params, seed int64) (e12Run, error) {
	clock := sim.NewClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	metrics := sim.NewMetrics()
	bus := network.NewBus(rand.New(rand.NewSource(seed)),
		network.WithEngine(engine), network.WithMetrics(metrics))
	log := audit.New()

	schema := statespace.MustSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 || st.MustGet("fuel") <= 5 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})

	admission := &guard.AdmissionController{
		Assessor: &guard.AggregateAssessor{Rules: []guard.AggregateRule{
			{Name: "max-heat", Variable: "heat", Kind: guard.AggregateMax, Limit: 95},
		}},
		HitRate: 1,
		Log:     log,
	}
	collective, err := core.New(core.Config{
		Name:       "chaos-" + sched.name,
		Audit:      log,
		Bus:        bus,
		KillSecret: []byte("chaos-quorum"),
		Classifier: classifier,
		Admission:  admission,
	})
	if err != nil {
		return e12Run{}, err
	}

	// One shared break-glass budget: the only sanctioned escape is a
	// risk-reducing bad-to-bad transition (the edge drone cooling from
	// heat 95 through 80).
	breakGlass := &guard.BreakGlass{
		Risk:    risk.AssessorFunc(func(st statespace.State) float64 { return st.MustGet("heat") / 100 }),
		MaxUses: 4,
	}
	mkGuard := func() guard.Guard {
		return core.StandardPipeline(core.SafetyConfig{
			Audit:      log,
			Classifier: classifier,
			BreakGlass: breakGlass,
			HarmPredictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
				if ctx.Action.Name == "strike" {
					return 1
				}
				return 0
			}),
			HarmThreshold: 0.5,
		})
	}

	const droneSource = `
policy work priority 5: on tick when heat < 60 do run effect heat += 7 effect fuel -= 1
policy relief priority 4: on tick when heat >= 60 do run effect heat -= 15
policy tempt priority 3: on tick when heat >= 50 do run effect heat += 40
policy lash priority 2: on provoke do strike category kinetic-action`
	strikes := 0
	equip := func(d *device.Device) error {
		if err := d.RegisterActuator("strike", device.ActuatorFunc{
			Label: "weapon",
			Fn:    func(policy.Action) error { strikes++; return nil },
		}); err != nil {
			return err
		}
		d.SetDefaultActuator(device.NopActuator{})
		return nil
	}

	var roster []string
	for i := 0; i < p.Fleet; i++ {
		id := fmt.Sprintf("drone-%d", i)
		heat := float64(20 + 2*i)
		if i == p.Fleet-1 {
			heat = 95 // the edge drone starts in a bad state and must break glass out
		}
		initial, err := schema.StateFromMap(map[string]float64{"heat": heat, "fuel": 100})
		if err != nil {
			return e12Run{}, err
		}
		d, err := device.New(device.Config{
			ID: id, Type: "drone", Organization: "us",
			Initial:    initial,
			Guard:      mkGuard(),
			KillSwitch: collective.KillSwitch(),
			Audit:      log,
		})
		if err != nil {
			return e12Run{}, err
		}
		if err := e12Install(d, droneSource); err != nil {
			return e12Run{}, err
		}
		if err := equip(d); err != nil {
			return e12Run{}, err
		}
		if err := collective.AddDevice(d, nil); err != nil {
			return e12Run{}, err
		}
		roster = append(roster, id)
	}

	// The rogue has no guard; its policy burns fuel into a bad state,
	// and the watchdog must deactivate it.
	rogueInitial, err := schema.StateFromMap(map[string]float64{"heat": 20, "fuel": 100})
	if err != nil {
		return e12Run{}, err
	}
	rogue, err := device.New(device.Config{
		ID: "rogue", Type: "drone", Organization: "us",
		Initial:    rogueInitial,
		KillSwitch: collective.KillSwitch(),
		Audit:      log,
	})
	if err != nil {
		return e12Run{}, err
	}
	if err := e12Install(rogue, "policy rampage: on tick do run effect fuel -= 20"); err != nil {
		return e12Run{}, err
	}
	rogue.SetDefaultActuator(device.NopActuator{})
	if err := collective.AddDevice(rogue, nil); err != nil {
		return e12Run{}, err
	}
	roster = append(roster, "rogue")

	orch, err := core.NewOrchestrator(collective, engine)
	if err != nil {
		return e12Run{}, err
	}
	manage := func(id string) error { return orch.Manage(id, 3*time.Second, classifier, nil) }
	for i := 0; i < p.Fleet; i++ {
		if err := manage(fmt.Sprintf("drone-%d", i)); err != nil {
			return e12Run{}, err
		}
	}

	// Commands flow human → bus with the full resilience stack: retry
	// with backoff on drops, a breaker per device, a per-delivery
	// deadline. Sleeps are virtual no-ops — the event engine owns time.
	sender := &network.ReliableSender{
		Bus: bus,
		Retry: resilience.Retry{
			MaxAttempts: 4,
			Sleep:       func(time.Duration) {},
			Rand:        rand.New(rand.NewSource(seed + 1)).Float64,
		},
		Breakers: &resilience.BreakerSet{Threshold: 3, Cooldown: 10 * time.Second, Now: clock.Now},
		Metrics:  metrics,
	}
	dispatcher := &core.Dispatcher{
		Collective: collective,
		Sender:     sender,
		Roster:     roster,
		Deadline:   resilience.Deadline{Budget: time.Second, Now: clock.Now},
		Metrics:    metrics,
	}
	orch.CommandEvery(time.Second, nil, dispatcher, func() policy.Event {
		return policy.Event{Type: "tick", Source: "human", Time: clock.Now()}
	})
	orch.SweepEvery(5*time.Second, nil)

	// Checkpoints every 5 virtual seconds feed crash recovery.
	engine.ScheduleEvery(5*time.Second, nil, func() {
		for _, d := range collective.Devices() {
			if !d.Deactivated() {
				_, _ = resilience.Checkpoint(log, d)
			}
		}
	})

	// Provocations: every guarded drone is asked to strike; the
	// pre-action check must deny all of them.
	for _, at := range []time.Duration{15 * time.Second, 45 * time.Second} {
		engine.Schedule(at, func() {
			dispatcher.Command(policy.Event{Type: "provoke", Source: "adversary", Time: clock.Now()})
		})
	}

	// Collection-formation probe: a heat-97 candidate must be refused.
	admissionRefused := false
	engine.Schedule(30*time.Second, func() {
		hot, err := schema.StateFromMap(map[string]float64{"heat": 97, "fuel": 100})
		if err != nil {
			return
		}
		cand, err := device.New(device.Config{
			ID: "hot-candidate", Type: "drone", Initial: hot,
			KillSwitch: collective.KillSwitch(), Audit: log,
		})
		if err != nil {
			return
		}
		admissionRefused = errors.Is(collective.AddDevice(cand, nil), core.ErrAdmissionRefused)
	})

	// Oversight probe: a priority-100 unbounded-effect policy must be
	// rejected by the tripartite review.
	oversightApproved := true
	tripartite := &guard.Tripartite{
		Executive:   &guard.ScopeReviewer{Label: "executive", Rules: []guard.ScopeRule{guard.PriorityCap{Max: 50}}},
		Legislative: &guard.ScopeReviewer{Label: "legislative", Rules: []guard.ScopeRule{guard.MaxEffectMagnitude{Limit: 50}}},
		Judiciary: guard.ReviewerFunc{Label: "judiciary",
			Fn: func(policy.Policy) (bool, string) { return true, "no constitutional objection" }},
		Log: log,
	}
	engine.Schedule(35*time.Second, func() {
		oversightApproved, _ = tripartite.Approve(policy.Policy{
			ID: "rogue-override", EventType: policy.WildcardEvent, Priority: 100,
			Modality: policy.ModalityDo,
			Action:   policy.Action{Name: "run", Effect: statespace.Delta{"heat": 100}},
		})
	})

	// Crash/restart: the device vanishes mid-flight and is later
	// rebuilt from its latest audit-journal checkpoint.
	recoveries := 0
	const crashID = "drone-3"
	faults := sched.faults
	if sched.crash {
		faults = append([]chaos.Fault{chaos.CrashRestart{
			DeviceID:     crashID,
			At:           20 * time.Second,
			RestartAfter: 30 * time.Second,
			Crash:        func(id string) { collective.RemoveDevice(id) },
			Restart: func(id string) error {
				d, err := resilience.Recover(log, id, device.Config{
					Type: "drone", Organization: "us",
					Guard:      mkGuard(),
					KillSwitch: collective.KillSwitch(),
					Audit:      log,
				})
				if err != nil {
					return err
				}
				if err := equip(d); err != nil {
					return err
				}
				if err := collective.AddDevice(d, nil); err != nil {
					return err
				}
				recoveries++
				return manage(id)
			},
		}}, faults...)
	}
	injector := &chaos.Injector{
		Engine: engine, Bus: bus, Metrics: metrics,
		Rand: rand.New(rand.NewSource(seed + 2)),
	}
	(chaos.Schedule{Name: sched.name, Faults: faults}).Apply(injector)

	if err := orch.Run(clock.Now().Add(p.Horizon)); err != nil {
		return e12Run{}, err
	}

	run := e12Run{
		retries:        metrics.Counter("resilience.retries"),
		breakerOpens:   sender.Breakers.Opens(),
		breakGlassUses: breakGlass.Uses(),
		recoveries:     recoveries,
		faultNotes:     e12FaultNotes(metrics),
	}
	run.delivered, run.dropped = bus.Stats()
	run.duplicated = bus.Duplicated()

	// The six guard invariants, plus journal integrity.
	fail := func(format string, args ...any) {
		run.violations = append(run.violations, fmt.Sprintf(format, args...))
	}
	if strikes > 0 {
		fail("pre-action: %d strikes executed", strikes)
	}
	for _, d := range collective.Devices() {
		if d.ID() == "rogue" {
			if !d.Deactivated() {
				fail("deactivation: rogue still active")
			}
			continue
		}
		traj := d.Trajectory()
		for i := 1; i < len(traj); i++ {
			if classifier.Classify(traj[i-1]) != statespace.ClassBad &&
				classifier.Classify(traj[i]) == statespace.ClassBad {
				fail("containment: %s moved good→bad (%s→%s)", d.ID(), traj[i-1], traj[i])
			}
		}
		if !d.Deactivated() && classifier.Classify(d.CurrentState()) == statespace.ClassBad {
			fail("deactivation: %s active in bad state %s", d.ID(), d.CurrentState())
		}
		run.deactivated += boolToInt(d.Deactivated())
	}
	if _, present := collective.Device("rogue"); !present {
		fail("deactivation: rogue missing from collective")
	} else {
		run.deactivated++
	}
	if uses := breakGlass.Uses(); uses < 1 {
		fail("break-glass: edge drone never escaped its bad state")
	} else if audited := len(log.ByKind(audit.KindBreakGlass)); audited != uses {
		fail("break-glass: %d uses but %d audit entries", uses, audited)
	}
	if !admissionRefused {
		fail("collection: hot candidate was admitted")
	}
	if oversightApproved {
		fail("oversight: rogue policy approved")
	}
	if sched.crash {
		if recoveries != 1 {
			fail("recovery: %d recoveries, want 1", recoveries)
		}
		if d, ok := collective.Device(crashID); !ok || d.Deactivated() {
			fail("recovery: %s not active after restart", crashID)
		}
	}
	if err := log.Verify(); err != nil {
		fail("audit: %v", err)
	}
	return run, nil
}

// e12FaultNotes summarizes the observable fault model: chaos
// injections/heals and the bus's per-cause drop counters.
func e12FaultNotes(m *sim.Metrics) string {
	counters, _ := m.Snapshot()
	var parts []string
	for name, v := range counters {
		if strings.HasPrefix(name, "chaos.") || strings.HasPrefix(name, "bus.dropped") {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// e12Install compiles DSL source and adds the policies to the device.
func e12Install(d *device.Device, src string) error {
	policies, err := policylang.CompileSource(src, policy.OriginHuman)
	if err != nil {
		return err
	}
	for _, p := range policies {
		if err := d.Policies().Add(p); err != nil {
			return err
		}
	}
	return nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
