package experiments

import (
	"strings"
	"testing"
)

func TestResultTableAndCells(t *testing.T) {
	r := Result{
		ID:      "X",
		Title:   "test",
		Headers: []string{"row", "value"},
		Rows:    [][]string{{"a", "1.5"}, {"b", "2"}},
		Notes:   []string{"a note"},
	}
	table := r.Table()
	for _, want := range []string{"== X: test ==", "row", "a note", "1.5"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	v, ok := r.CellFloat("a", "value")
	if !ok || v != 1.5 {
		t.Errorf("CellFloat = %g,%v", v, ok)
	}
	if _, ok := r.CellFloat("a", "missing"); ok {
		t.Error("missing header found")
	}
	if _, ok := r.CellFloat("z", "value"); ok {
		t.Error("missing row found")
	}
	if _, ok := r.Cell("a", "nope"); ok {
		t.Error("Cell found missing header")
	}
}

func TestAllRunnersSucceed(t *testing.T) {
	for _, runner := range All() {
		runner := runner
		t.Run(runner.ID, func(t *testing.T) {
			t.Parallel()
			result, err := runner.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if result.ID != runner.ID {
				t.Errorf("result ID = %q, want %q", result.ID, runner.ID)
			}
			if len(result.Rows) == 0 {
				t.Error("no rows produced")
			}
			if result.Table() == "" {
				t.Error("empty table")
			}
		})
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("E1")
	if err != nil || r.ID != "E1" {
		t.Errorf("ByID = %+v, %v", r, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestF1HumanOnlyStrategic(t *testing.T) {
	result, err := RunF1()
	if err != nil {
		t.Fatalf("RunF1: %v", err)
	}
	humanRows, deviceRows := 0, 0
	for _, row := range result.Rows {
		switch {
		case strings.HasPrefix(row[1], "human"):
			humanRows++
		case strings.HasPrefix(row[1], "environment"):
		default:
			deviceRows++
		}
	}
	if humanRows != 1 {
		t.Errorf("human decisions = %d, want exactly 1 (strategic only)", humanRows)
	}
	if deviceRows < 3 {
		t.Errorf("device decisions = %d, want several autonomous actions", deviceRows)
	}
}

func TestF2StateTransitions(t *testing.T) {
	result, err := RunF2()
	if err != nil {
		t.Fatalf("RunF2: %v", err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("rows = %d", len(result.Rows))
	}
	// The launch event must change the state.
	if result.Rows[0][1] == result.Rows[0][3] {
		t.Error("launch did not move the state")
	}
	// The low-battery tick must pick the landing action.
	last := result.Rows[len(result.Rows)-1]
	if last[2] != "descend-and-land" {
		t.Errorf("final action = %q, want descend-and-land", last[2])
	}
}

func TestF3GuardedWalkNeverBad(t *testing.T) {
	result, err := RunF3(F3Params{Seed: 7})
	if err != nil {
		t.Fatalf("RunF3: %v", err)
	}
	unguarded, ok := result.CellFloat("unguarded", "bad-state entries")
	if !ok {
		t.Fatal("missing unguarded row")
	}
	guarded, ok := result.CellFloat("state-space guarded", "bad-state entries")
	if !ok {
		t.Fatal("missing guarded row")
	}
	if guarded != 0 {
		t.Errorf("guarded walk entered bad states %g times", guarded)
	}
	if unguarded == 0 {
		t.Error("unguarded walk never entered a bad state — scenario not exercising the boundary")
	}
	if !strings.Contains(result.Artifact, "#") || !strings.Contains(result.Artifact, ".") {
		t.Error("state-space rendering missing regions")
	}
}

func TestE1Shape(t *testing.T) {
	result, err := RunE1(E1Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE1: %v", err)
	}
	get := func(row, col string) float64 {
		t.Helper()
		v, ok := result.CellFloat(row, col)
		if !ok {
			t.Fatalf("missing cell %s/%s", row, col)
		}
		return v
	}
	noGuardDirect := get("no-guard", "direct harms")
	noGuardIndirect := get("no-guard", "indirect harms")
	preDirect := get("pre-action only", "direct harms")
	preIndirect := get("pre-action only", "indirect harms")
	fullDirect := get("pre-action + obligations", "direct harms")
	fullIndirect := get("pre-action + obligations", "indirect harms")
	halfDirect := get("pre-action acc=0.5 + obligations", "direct harms")

	if noGuardDirect == 0 || noGuardIndirect == 0 {
		t.Error("unguarded arm harmless — scenario not exercising harm")
	}
	if preDirect != 0 {
		t.Errorf("perfect pre-action leaked %g direct harms", preDirect)
	}
	if preIndirect == 0 {
		t.Error("pre-action without obligations should leak indirect harm (the paper's dug-hole gap)")
	}
	if fullDirect != 0 || fullIndirect > preIndirect/2 {
		t.Errorf("obligations arm: direct=%g indirect=%g (pre-only indirect=%g)", fullDirect, fullIndirect, preIndirect)
	}
	if halfDirect <= fullDirect {
		t.Error("degraded predictor should leak direct harm back in")
	}
}

func TestE2Shape(t *testing.T) {
	result, err := RunE2(E2Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE2: %v", err)
	}
	unguardedBad, _ := result.CellFloat("unguarded", "bad entries")
	guardedBad, _ := result.CellFloat("state-space guard", "bad entries")
	availability, _ := result.CellFloat("state-space guard", "availability%")
	if guardedBad != 0 {
		t.Errorf("guarded bad entries = %g", guardedBad)
	}
	if unguardedBad == 0 {
		t.Error("unguarded never bad")
	}
	if availability >= 100 || availability <= 0 {
		t.Errorf("availability = %g, want a real cost in (0,100)", availability)
	}
}

func TestE3Shape(t *testing.T) {
	result, err := RunE3(E3Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE3: %v", err)
	}
	noBG, _ := result.CellFloat("no break-glass", "escapes allowed")
	withBG, _ := result.CellFloat("break-glass", "escapes allowed")
	audited, _ := result.CellFloat("break-glass", "audit records")
	deceived, _ := result.CellFloat("break-glass + deceived sensor", "escapes allowed")
	defended, _ := result.CellFloat("break-glass + deceived + trust check", "escapes allowed")
	trustDenials, _ := result.CellFloat("break-glass + deceived + trust check", "trust denials")

	if noBG != 0 {
		t.Errorf("escapes without break-glass = %g", noBG)
	}
	if withBG == 0 {
		t.Error("break-glass never unlocked the less-bad escape")
	}
	if audited < withBG {
		t.Errorf("audit records %g < escapes %g", audited, withBG)
	}
	if deceived == 0 {
		t.Error("deception without trust check should produce spurious escapes")
	}
	if defended != 0 {
		t.Errorf("trust check leaked %g spurious escapes", defended)
	}
	if trustDenials == 0 {
		t.Error("trust check never fired")
	}
}

func TestE4Shape(t *testing.T) {
	result, err := RunE4(E4Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE4: %v", err)
	}
	fast, ok1 := result.CellFloat("1", "mean containment (ticks)")
	slow, ok2 := result.CellFloat("10", "mean containment (ticks)")
	if !ok1 || !ok2 {
		t.Fatalf("missing containment cells: %+v", result.Rows)
	}
	if fast >= slow {
		t.Errorf("containment should shrink with sweep frequency: interval1=%g interval10=%g", fast, slow)
	}
	uncontained, _ := result.CellFloat("1", "uncontained")
	if uncontained != 0 {
		t.Errorf("healthy kill switches left %g rogues uncontained", uncontained)
	}
}

func TestE4TamperedSwitches(t *testing.T) {
	result, err := RunE4(E4Params{Seed: 3, TamperedFraction: 0.3, Devices: 20, Ticks: 150, RogueProb: 0.05})
	if err != nil {
		t.Fatalf("RunE4: %v", err)
	}
	alerts, _ := result.CellFloat("1", "tamper alerts")
	if alerts == 0 {
		t.Error("tampered switches produced no tamper alerts")
	}
}

func TestE5Shape(t *testing.T) {
	result, err := RunE5(E5Params{Seed: 3, Trials: 300})
	if err != nil {
		t.Fatalf("RunE5: %v", err)
	}
	// Find the size-4 rows for perfect and absent advisors.
	var perfectFormed, absentFormed float64 = -1, -1
	for _, row := range result.Rows {
		if row[0] == "4" && row[1] == "1.000" {
			perfectFormed = mustFloat(t, row[2])
		}
		if row[0] == "4" && row[1] == "0.000" {
			absentFormed = mustFloat(t, row[2])
		}
	}
	if perfectFormed != 0 {
		t.Errorf("perfect advisor formed %g%% unsafe collections", perfectFormed)
	}
	if absentFormed != 100 {
		t.Errorf("absent advisor formed %g%% unsafe collections, want 100", absentFormed)
	}
}

func TestE6Shape(t *testing.T) {
	result, err := RunE6(E6Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE6: %v", err)
	}
	get := func(row string) (mal, benign float64) {
		t.Helper()
		m, ok := result.CellFloat(row, "malevolent adopted%")
		if !ok {
			t.Fatalf("missing row %q", row)
		}
		b, _ := result.CellFloat(row, "benign adopted%")
		return m, b
	}
	if m, _ := get("no oversight"); m != 100 {
		t.Errorf("no oversight adopted %g%%", m)
	}
	if m, b := get("single overseer"); m != 0 || b != 100 {
		t.Errorf("single overseer: mal=%g benign=%g", m, b)
	}
	if m, _ := get("single overseer (compromised)"); m != 100 {
		t.Errorf("compromised single overseer adopted %g%%, want 100 (the vulnerability)", m)
	}
	if m, b := get("tripartite, 1 compromised"); m != 0 || b != 100 {
		t.Errorf("tripartite with 1 compromised: mal=%g benign=%g — 2-of-3 should hold", m, b)
	}
	if m, _ := get("tripartite, 2 compromised"); m != 100 {
		t.Errorf("tripartite with 2 compromised adopted %g%%, want 100 (the mechanism's limit)", m)
	}
}

func TestE7Shape(t *testing.T) {
	result, err := RunE7(E7Params{Seed: 3, Dimensions: []int{4, 8}, Steps: 2000})
	if err != nil {
		t.Fatalf("RunE7: %v", err)
	}
	rates := make(map[string]map[string]float64) // n → guard → rate
	for _, row := range result.Rows {
		if rates[row[0]] == nil {
			rates[row[0]] = make(map[string]float64)
		}
		rates[row[0]][row[1]] = mustFloat(t, row[2])
	}
	for n, byGuard := range rates {
		none, oracle, utility := byGuard["none"], byGuard["oracle classifier"], byGuard["derivative-sign utility"]
		fitted := byGuard["fitted-sign utility"]
		if oracle != 0 {
			t.Errorf("n=%s: oracle leaked %g%%", n, oracle)
		}
		if none == 0 {
			t.Errorf("n=%s: unguarded never bad — scenario too easy", n)
		}
		if utility >= none/2 {
			t.Errorf("n=%s: utility guard rate %g%% not significantly below unguarded %g%%", n, utility, none)
		}
		if fitted >= none/2 {
			t.Errorf("n=%s: fitted-sign guard rate %g%% not significantly below unguarded %g%%", n, fitted, none)
		}
	}
}

func TestE8Shape(t *testing.T) {
	result, err := RunE8(E8Params{Seed: 3, TypeCounts: []int{10, 100}})
	if err != nil {
		t.Fatalf("RunE8: %v", err)
	}
	gen10, _ := result.CellFloat("10", "generated policies")
	gen100, _ := result.CellFloat("100", "generated policies")
	fail100, _ := result.CellFloat("100", "generation failures")
	if gen10 == 0 || gen100 <= gen10 {
		t.Errorf("generation did not scale: %g → %g", gen10, gen100)
	}
	if fail100 != 0 {
		t.Errorf("generation failures = %g", fail100)
	}
}

func TestE9Shape(t *testing.T) {
	result, err := RunE9(E9Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE9: %v", err)
	}
	// Index rows by (scenario, condition, metric).
	val := func(scenario, condition, metric string) float64 {
		t.Helper()
		for _, row := range result.Rows {
			if row[0] == scenario && row[1] == condition && row[2] == metric {
				return mustFloat(t, row[3])
			}
		}
		t.Fatalf("missing row %s/%s/%s", scenario, condition, metric)
		return 0
	}
	cleanAcc := val("poisoning", "flip=0.00", "classifier accuracy%")
	dirtyAcc := val("poisoning", "flip=0.40", "classifier accuracy%")
	cleanBad := val("poisoning", "flip=0.00", "bad-state rate%")
	dirtyBad := val("poisoning", "flip=0.40", "bad-state rate%")
	if dirtyAcc >= cleanAcc {
		t.Errorf("poisoning did not degrade accuracy: %g vs %g", cleanAcc, dirtyAcc)
	}
	if dirtyBad <= cleanBad {
		t.Errorf("poisoning did not raise bad-state rate: %g vs %g", cleanBad, dirtyBad)
	}

	lowInfected := val("worm", "vuln=0.1", "infected")
	highInfected := val("worm", "vuln=0.6", "infected")
	highContained := val("worm", "vuln=0.6", "contained by watchdog")
	if highInfected <= lowInfected {
		t.Errorf("worm spread did not grow with vulnerability: %g vs %g", lowInfected, highInfected)
	}
	if highContained < highInfected {
		t.Errorf("watchdog contained %g of %g infected", highContained, highInfected)
	}

	plain := val("deception", "3/10 colluders", "plain mean error")
	robust := val("deception", "3/10 colluders", "robust aggregate error")
	if robust*5 > plain {
		t.Errorf("robust aggregation error %g not well below plain mean %g", robust, plain)
	}

	if val("controls", "armed detector", "rampage flagged") != 1 {
		t.Error("armed anomaly detector missed the rampage")
	}
	if val("controls", "disarmed by worm", "rampage flagged") != 0 {
		t.Error("disarmed detector still flagged (attack not realized)")
	}
	if val("controls", "disarmed by worm", "tamper visible via armed-status") != 1 {
		t.Error("disarm not observable")
	}
}

func TestE10Shape(t *testing.T) {
	result, err := RunE10(E10Params{})
	if err != nil {
		t.Fatalf("RunE10: %v", err)
	}
	low, _ := result.CellFloat("0.500", "failed fraction")
	high, _ := result.CellFloat("0.950", "failed fraction")
	if low >= 0.2 {
		t.Errorf("low-load ring cascaded: %g", low)
	}
	if high < 0.9 {
		t.Errorf("high-load ring did not black out: %g", high)
	}
	for _, row := range result.Rows {
		actual, predicted := mustFloat(t, row[2]), mustFloat(t, row[3])
		if actual != predicted {
			t.Errorf("ratio %s: prediction %g != actual %g", row[0], predicted, actual)
		}
	}
	verdict, _ := result.Cell("0.950", "admission verdict")
	if !strings.Contains(verdict, "REJECT") {
		t.Errorf("predicted cascade not rejected: %q", verdict)
	}
}

func TestE11Shape(t *testing.T) {
	result, err := RunE11(E11Params{Seed: 3})
	if err != nil {
		t.Fatalf("RunE11: %v", err)
	}
	unsafe, _ := result.CellFloat("no safeguards", "inappropriate engagements")
	withForbid, _ := result.CellFloat("ROE forbid policy", "inappropriate engagements")
	layered, _ := result.CellFloat("ROE forbid + pre-action check", "inappropriate engagements")
	guardVetoes, _ := result.CellFloat("ROE forbid + pre-action check", "vetoed by guard")

	if unsafe == 0 {
		t.Error("no safeguards arm produced no inappropriate engagements — scenario too easy")
	}
	if withForbid >= unsafe/2 {
		t.Errorf("ROE forbid did not substantially reduce engagements: %g vs %g", withForbid, unsafe)
	}
	if withForbid == 0 {
		t.Error("ROE forbid alone should leak the mis-set-mode cases")
	}
	if layered != 0 {
		t.Errorf("layered safeguards leaked %g engagements", layered)
	}
	if guardVetoes == 0 {
		t.Error("pre-action backstop never fired")
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	var r Result
	r.Headers = []string{"a", "b"}
	r.Rows = [][]string{{"x", s}}
	v, ok := r.CellFloat("x", "b")
	if !ok {
		t.Fatalf("bad float %q", s)
	}
	return v
}
