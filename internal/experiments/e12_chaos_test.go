package experiments

import (
	"strings"
	"testing"
)

// TestE12InvariantsHoldUnderEverySchedule is the acceptance check for
// the chaos harness: every fault schedule — including loss, partition,
// crash/restart, duplication and clock skew — must finish with zero
// guard-invariant violations.
func TestE12InvariantsHoldUnderEverySchedule(t *testing.T) {
	result, err := RunE12(E12Params{Seed: 1})
	if err != nil {
		t.Fatalf("RunE12: %v", err)
	}
	if len(result.Rows) < 5 {
		t.Fatalf("only %d schedules ran, want >= 5", len(result.Rows))
	}
	wantFaults := map[string]bool{
		"loss": false, "partition": false, "crash": false,
		"duplication": false, "skew": false,
	}
	for _, row := range result.Rows {
		name, faults, violations := row[0], row[1], row[len(row)-1]
		if violations != "none" {
			t.Errorf("schedule %s (%s): violations: %s", name, faults, violations)
		}
		for f := range wantFaults {
			if strings.Contains(faults, f) {
				wantFaults[f] = true
			}
		}
	}
	for f, seen := range wantFaults {
		if !seen {
			t.Errorf("no schedule exercised the %q fault", f)
		}
	}
}

// TestE12FaultsLeaveTraces asserts the fault model is observable: the
// degraded schedules show drops, retries, breaker opens, duplicates
// and recoveries, while every schedule exercises break-glass and
// deactivation exactly as the healthy baseline does.
func TestE12FaultsLeaveTraces(t *testing.T) {
	result, err := RunE12(E12Params{Seed: 1})
	if err != nil {
		t.Fatalf("RunE12: %v", err)
	}
	cell := func(row, header string) float64 {
		v, ok := result.CellFloat(row, header)
		if !ok {
			t.Fatalf("missing cell %s/%s", row, header)
		}
		return v
	}
	if cell("baseline", "dropped") != 0 || cell("baseline", "retries") != 0 {
		t.Error("baseline shows network faults")
	}
	if cell("loss30", "dropped") == 0 || cell("loss30", "retries") == 0 {
		t.Error("loss schedule shows no drops or retries")
	}
	if cell("partition", "breaker opens") == 0 {
		t.Error("partition never opened a breaker")
	}
	if cell("crash-restart", "recovered") != 1 {
		t.Error("crash schedule did not recover the device")
	}
	if cell("dup-reorder", "dup") == 0 {
		t.Error("duplication schedule duplicated nothing")
	}
	for _, row := range result.Rows {
		if bg, _ := result.CellFloat(row[0], "break-glass"); bg < 1 {
			t.Errorf("schedule %s: break-glass unused", row[0])
		}
		if de, _ := result.CellFloat(row[0], "deactivated"); de != 1 {
			t.Errorf("schedule %s: deactivated = %g, want 1 (the rogue)", row[0], de)
		}
	}
	// Per-fault metrics must be reported for every degraded schedule.
	notes := strings.Join(result.Notes, "\n")
	for _, want := range []string{
		"chaos.loss_injected", "chaos.partition_injected", "chaos.crash_injected",
		"chaos.duplication_injected", "chaos.skew_injected", `bus.dropped{cause="loss"}`,
	} {
		if !strings.Contains(notes, want) {
			t.Errorf("notes missing per-fault metric %q", want)
		}
	}
}
