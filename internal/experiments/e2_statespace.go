package experiments

import (
	"math/rand"

	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// E2Params configures the state-space check experiment.
type E2Params struct {
	Seed    int64
	Devices int
	Steps   int
}

func (p *E2Params) defaults() {
	if p.Devices <= 0 {
		p.Devices = 20
	}
	if p.Steps <= 0 {
		p.Steps = 500
	}
}

// RunE2 evaluates Section VI.B: a state-space check keeps devices out
// of bad states entirely, at a measurable availability cost (denied
// transitions), while an unguarded device wanders into bad states
// regularly.
func RunE2(p E2Params) (Result, error) {
	p.defaults()
	schema, err := statespace.NewSchema(
		statespace.Var("load", 0, 100),
		statespace.Var("temp", 0, 100),
	)
	if err != nil {
		return Result{}, err
	}
	classifier := &statespace.RegionClassifier{
		Bad: []statespace.Region{
			statespace.NewBox("overload", map[string]statespace.Interval{"load": {Lo: 85, Hi: 100}}),
			statespace.NewBox("overheat", map[string]statespace.Interval{"temp": {Lo: 90, Hi: 100}}),
		},
		Default: statespace.ClassGood,
	}

	type arm struct {
		label   string
		guarded bool
	}
	result := Result{
		ID:      "E2",
		Title:   "State-space checks — bad-state entries and availability cost",
		Headers: []string{"configuration", "proposals", "bad entries", "denials", "availability%"},
	}

	for _, a := range []arm{{label: "unguarded"}, {label: "state-space guard", guarded: true}} {
		rng := rand.New(rand.NewSource(p.Seed + 2))
		var g guard.Guard
		if a.guarded {
			g = &guard.StateSpaceGuard{Classifier: classifier}
		}
		proposals, badEntries, denials := 0, 0, 0
		for d := 0; d < p.Devices; d++ {
			st, err := schema.StateFromMap(map[string]float64{"load": 50, "temp": 40})
			if err != nil {
				return Result{}, err
			}
			for i := 0; i < p.Steps; i++ {
				// Drift biased upward: the mission pushes devices
				// toward their limits.
				delta := statespace.Delta{
					"load": rng.Float64()*10 - 4,
					"temp": rng.Float64()*8 - 3,
				}
				next, err := st.Apply(delta)
				if err != nil {
					return Result{}, err
				}
				proposals++
				if g != nil {
					v := g.Check(guard.ActionContext{
						Actor: "dev", Action: policy.Action{Name: "work", Effect: delta},
						State: st, Next: next,
					})
					if !v.Allowed() {
						denials++
						continue
					}
				}
				st = next
				if classifier.Classify(st) == statespace.ClassBad {
					badEntries++
				}
			}
		}
		availability := pct(proposals-denials, proposals)
		result.Rows = append(result.Rows, []string{
			a.label, itoa(proposals), itoa(badEntries), itoa(denials), availability,
		})
	}
	result.Notes = append(result.Notes,
		"paper expectation: the guarded device 'will not take the action that leads to that state', so bad entries drop to zero;",
		"the price is the denied transitions (availability below 100%)")
	return result, nil
}
