package experiments

import (
	"testing"
	"time"
)

// TestE15Determinism is the fleet-level differential gate: for several
// seeds, serial and parallel runs of the same fleet must produce
// byte-identical hash-chained journals (equal tip hash over equal
// length), the same per-kind entry counts, and the same final fleet
// state.
func TestE15Determinism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := E15Params{Seed: seed, Fleet: 80, Horizon: 20 * time.Second}
		base, err := RunE15Workers(p, 1)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		if base.Actions == 0 || base.Denials == 0 {
			t.Fatalf("seed %d: degenerate run (actions=%d denials=%d)", seed, base.Actions, base.Denials)
		}
		for _, workers := range []int{2, 4, 8} {
			out, err := RunE15Workers(p, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if out.TipHash != base.TipHash || out.JournalLen != base.JournalLen {
				t.Errorf("seed %d workers %d: journal %d/%s, want %d/%s",
					seed, workers, out.JournalLen, out.TipHash[:12], base.JournalLen, base.TipHash[:12])
			}
			if out.Actions != base.Actions || out.Denials != base.Denials {
				t.Errorf("seed %d workers %d: actions/denials %d/%d, want %d/%d",
					seed, workers, out.Actions, out.Denials, base.Actions, base.Denials)
			}
			if out.HeatSum != base.HeatSum {
				t.Errorf("seed %d workers %d: heat sum %g, want %g",
					seed, workers, out.HeatSum, base.HeatSum)
			}
		}
	}
}

// TestE15Result smoke-tests the table runner on a small fleet.
func TestE15Result(t *testing.T) {
	r, err := RunE15(E15Params{Fleet: 40, Horizon: 10 * time.Second, Workers: []int{1, 2}})
	if err != nil {
		t.Fatalf("RunE15: %v", err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	last := r.Rows[1]
	if last[len(last)-1] != "yes" {
		t.Errorf("parallel row not identical to baseline: %v", last)
	}
}
