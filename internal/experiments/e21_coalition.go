package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// E21Params configures the coalition distribution experiment: two
// organizations share one fleet and one bus, each org's devices follow
// their own signed revision stream (a disjoint org root), and chaos
// plus a compromised-key attacker try to break isolation between the
// two trust boundaries.
type E21Params struct {
	// Seed drives the bus fault sampling.
	Seed int64
	// FleetPerOrg is the number of devices per organization.
	FleetPerOrg int
	// RevisionsUS and RevisionsUK are the revision counts each root
	// publishes; they differ so stream independence is observable.
	RevisionsUS int
	RevisionsUK int
	// PolicyCount is the number of policies per revision.
	PolicyCount int
	// PublishEvery is the cadence of revision publishes (both roots).
	PublishEvery time.Duration
	// SweepEvery is the anti-entropy repair cadence.
	SweepEvery time.Duration
	// Attacks is the number of cross-boundary pushes signed with the
	// compromised org-A key (half namespace smuggles, half foreign-root
	// claims). Must be even.
	Attacks int
	// Loss is the loss probability during the loss window.
	Loss float64
	// Horizon is the virtual run length.
	Horizon time.Duration
	// FanoutBatch sizes the sharded publish fan-out batches; small by
	// default so even the test fleet exercises multi-batch fan-out.
	FanoutBatch int
	// Workers are the engine parallelism levels to compare; the first
	// must be 1 (the serial baseline).
	Workers []int
}

func (p *E21Params) defaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.FleetPerOrg <= 0 {
		p.FleetPerOrg = 4
	}
	if p.RevisionsUS <= 0 {
		p.RevisionsUS = 10
	}
	if p.RevisionsUK <= 0 {
		p.RevisionsUK = 7
	}
	if p.PolicyCount <= 0 {
		p.PolicyCount = 6
	}
	if p.PublishEvery <= 0 {
		p.PublishEvery = 25 * time.Millisecond
	}
	if p.SweepEvery <= 0 {
		p.SweepEvery = 40 * time.Millisecond
	}
	if p.Attacks <= 0 {
		p.Attacks = 6
	}
	if p.Loss <= 0 {
		p.Loss = 0.30
	}
	if p.Horizon <= 0 {
		p.Horizon = 700 * time.Millisecond
	}
	if p.FanoutBatch <= 0 {
		p.FanoutBatch = 3
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4}
	}
}

// E21Outcome is one configuration's exact books: per-root convergence,
// cross-boundary refusal accounting, forged-report accounting, and the
// digests the determinism gate compares across worker counts.
type E21Outcome struct {
	Workers       int
	RevUS         uint64
	RevUK         uint64
	Converged     bool
	OnFinalUS     int
	OnFinalUK     int
	CrossActive   int // devices holding any foreign-org revision (must be 0)
	ForgedAckedUS uint64

	ActivatedFull  int64
	ActivatedDelta int64
	RejectedScope  int64
	RejectedGap    int64
	RejectedOther  int64
	ScopeRejUS     int64
	ScopeRejUK     int64
	ForgedAcks     int64
	ForgedPulls    int64
	AuditedScope   int
	AuditedForged  int

	Pushes     int64
	Acks       int64
	Repairs    int64
	Pulls      int64
	BytesFull  int64
	BytesDelta int64

	JournalLen  int
	JournalTip  string
	LedgerLenUS int
	LedgerTipUS string
	LedgerLenUK int
	LedgerTipUK string
}

// e21Revision compiles one org's policy set for one revision:
// PolicyCount policies in the org's ID namespace (the coalition
// convention, e.g. "us.fleet00"), with a rotating subset mutated each
// revision so deltas stay small but non-empty.
func e21Revision(org string, count, rev int) ([]policy.Policy, error) {
	var src string
	for i := 0; i < count; i++ {
		tag := "base"
		if i == rev%count || i == (rev+1)%count {
			tag = fmt.Sprintf("rev%d", rev)
		}
		src += fmt.Sprintf(
			"policy %s.fleet%02d priority %d:\n    on tick\n    when intensity > 0\n    do adjust target %s category surveillance\n",
			org, i, i+1, tag)
	}
	return policylang.CompileSource(src, policy.OriginHuman)
}

// e21Keys returns the two org signing keys.
func e21Keys() (us, uk bundle.HMACKey) {
	return bundle.HMACKey{ID: "us-root", Secret: []byte("e21 us signing secret")},
		bundle.HMACKey{ID: "uk-root", Secret: []byte("e21 uk signing secret")}
}

// e21Attacks builds the compromised-key attack corpus: the us signing
// key (assumed stolen) is used to (a) smuggle uk-namespace records
// under a us manifest and (b) claim the uk root outright. Both are
// validly signed; only scope checking can refuse them.
func e21Attacks(policyCount int) (smuggle, claim []byte, err error) {
	usKey, _ := e21Keys()
	foreign, err := e21Revision("uk", policyCount, 999)
	if err != nil {
		return nil, nil, err
	}

	// (a) Namespace smuggle: manifest org "us", records in "uk.*".
	aPub := bundle.NewOrgPublisher(usKey, "us")
	aFull, _, err := aPub.Publish(foreign)
	if err != nil {
		return nil, nil, err
	}
	smuggle, err = bundle.Encode(aFull)
	if err != nil {
		return nil, nil, err
	}

	// (b) Root claim: same records, manifest re-labelled org "uk",
	// re-rooted and re-signed — internally consistent, wrong key scope.
	bPub := bundle.NewOrgPublisher(usKey, "us")
	bFull, _, err := bPub.Publish(foreign)
	if err != nil {
		return nil, nil, err
	}
	bFull.Manifest.Org = "uk"
	bFull.Manifest.Root = bundle.ComputeRoot(bFull.Manifest)
	bFull.SignWith(usKey)
	claim, err = bundle.Encode(bFull)
	if err != nil {
		return nil, nil, err
	}
	return smuggle, claim, nil
}

// RunE21Workers runs the coalition distribution plane through the
// chaos-plus-attack schedule at one parallelism level and returns the
// exact outcome.
func RunE21Workers(p E21Params, workers int) (E21Outcome, error) {
	p.defaults()
	clock := sim.NewClock(time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	engine.SetParallelism(workers)
	log := audit.New(audit.WithClock(clock.Now))
	metrics := sim.NewMetrics()
	reg := metrics.Registry()
	bus := network.NewBus(rand.New(rand.NewSource(p.Seed)),
		network.WithEngine(engine),
		network.WithMetrics(metrics),
		network.WithLatency(time.Millisecond, time.Millisecond))

	collective, err := core.New(core.Config{
		Name:       "e21",
		KillSecret: []byte("e21-secret"),
		Audit:      log,
		Bus:        bus,
		Telemetry:  reg,
	})
	if err != nil {
		return E21Outcome{}, err
	}

	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		return E21Outcome{}, err
	}
	usKey, ukKey := e21Keys()
	dist, err := core.NewDistributor(core.DistributorConfig{
		Collective: collective,
		Roots: []core.RootConfig{
			{Org: "us", Signer: usKey},
			{Org: "uk", Signer: ukKey},
		},
		Telemetry:      reg,
		Clock:          clock.Now,
		Engine:         engine,
		FanoutBatch:    p.FanoutBatch,
		StuckThreshold: 3,
	})
	if err != nil {
		return E21Outcome{}, err
	}

	// Every device holds the full coalition keyring — both org keys,
	// each scoped to its own root — but subscribes only to its own
	// org's revision stream. The ring is what makes the attack corpus
	// interesting: the stolen us key *verifies* everywhere, and only
	// its scope stops it.
	ring := bundle.NewKeyRing().
		Add(usKey.ID, usKey, bundle.Scope{Org: "us"}).
		Add(ukKey.ID, ukKey, bundle.Scope{Org: "uk"})

	orgs := []string{"us", "uk"}
	deviceIDs := make(map[string][]string, len(orgs))
	var allDevices []string
	for _, org := range orgs {
		for i := 0; i < p.FleetPerOrg; i++ {
			id := fmt.Sprintf("%s-%02d", org, i)
			deviceIDs[org] = append(deviceIDs[org], id)
			allDevices = append(allDevices, id)
			initial, err := schema.StateFromMap(map[string]float64{"heat": 20, "fuel": 100})
			if err != nil {
				return E21Outcome{}, err
			}
			d, err := device.New(device.Config{
				ID: id, Type: "drone", Organization: org,
				Initial:    initial,
				KillSwitch: collective.KillSwitch(),
				Audit:      log,
			})
			if err != nil {
				return E21Outcome{}, err
			}
			if err := collective.AddDevice(d, nil); err != nil {
				return E21Outcome{}, err
			}
			if err := dist.EnrollRoots(id, ring, org); err != nil {
				return E21Outcome{}, err
			}
		}
	}

	// Publish cadence: both roots cut revisions from barrier events so
	// the bus's fault sampling order is serial and reproducible. The uk
	// stream is shorter, so the two roots' final revisions differ.
	pubUS, pubUK := 0, 0
	var publishErr error
	engine.ScheduleEvery(p.PublishEvery,
		func() bool { return (pubUS < p.RevisionsUS || pubUK < p.RevisionsUK) && publishErr == nil },
		func() {
			if pubUS < p.RevisionsUS {
				pols, err := e21Revision("us", p.PolicyCount, pubUS+1)
				if err == nil {
					_, err = dist.PublishRoot("us", pols)
				}
				if err != nil {
					publishErr = err
					return
				}
				pubUS++
			}
			if pubUK < p.RevisionsUK {
				pols, err := e21Revision("uk", p.PolicyCount, pubUK+1)
				if err == nil {
					_, err = dist.PublishRoot("uk", pols)
				}
				if err != nil {
					publishErr = err
					return
				}
				pubUK++
			}
		})

	// Anti-entropy repair across both roots, also on barriers.
	engine.ScheduleEvery(p.SweepEvery, func() bool { return true }, func() {
		dist.RepairSweep()
	})

	// Chaos windows, sized against the publish stream (10 revisions at
	// 25ms → publishes end at 250ms). The partition cuts half of EACH
	// org off, so both roots must repair through it:
	//   - 30% loss across the middle of the stream,
	//   - a symmetric partition,
	//   - a one-way partition silencing the same devices' acks while
	//     pushes still arrive (the push-succeeded/ack-lost case).
	var half []string
	for _, org := range orgs {
		half = append(half, deviceIDs[org][:p.FleetPerOrg/2]...)
	}
	groups := make(map[string]int, len(half))
	for _, id := range half {
		groups[id] = 1
	}
	injector := &chaos.Injector{Engine: engine, Bus: bus, Metrics: metrics}
	faults := []chaos.Fault{
		chaos.Loss{Prob: p.Loss, At: 50 * time.Millisecond, For: 100 * time.Millisecond},
		chaos.Partition{Groups: groups, At: 60 * time.Millisecond, For: 50 * time.Millisecond},
		chaos.OneWayPartition{
			From: half, To: []string{"bundle-distributor"},
			At: 160 * time.Millisecond, For: 50 * time.Millisecond,
		},
	}
	for _, f := range faults {
		f.Inject(injector)
	}

	// The compromised-key attack, injected after every chaos window has
	// healed so delivery is guaranteed and the books must balance
	// exactly: alternately a namespace smuggle pushed at a us device
	// (manifest org "us", records "uk.*") and a root claim pushed at a
	// uk device (manifest org "uk", signed by the us key). Every one is
	// validly signed; none may activate.
	smuggle, claim, err := e21Attacks(p.PolicyCount)
	if err != nil {
		return E21Outcome{}, err
	}
	attackLost := 0
	for i := 0; i < p.Attacks; i++ {
		i := i
		at := 320*time.Millisecond + time.Duration(i)*7*time.Millisecond
		engine.Schedule(at, func() {
			payload, to := smuggle, deviceIDs["us"][i/2%p.FleetPerOrg]
			if i%2 == 1 {
				payload, to = claim, deviceIDs["uk"][i/2%p.FleetPerOrg]
			}
			if err := bus.Send(network.Message{
				From: "attacker", To: to,
				Topic: core.TopicBundle, Payload: payload,
			}); err != nil {
				attackLost++
			}
		})
	}

	// Forged status reports from the attacker node: an ack claiming
	// us-00 already holds revision 999 (which would mask it from
	// repair), and a pull claiming uk-00 needs a full re-push. Both
	// must be dropped, counted and audited — the claimed devices'
	// ledger standing must come only from their own reports.
	forgedLost := 0
	engine.Schedule(300*time.Millisecond, func() {
		if err := bus.Send(network.Message{
			From: "attacker", To: "bundle-distributor", Topic: core.TopicBundleAck,
			Payload: core.BundleAck{Device: deviceIDs["us"][0], Org: "us", Revision: 999, Applied: true},
		}); err != nil {
			forgedLost++
		}
	})
	engine.Schedule(307*time.Millisecond, func() {
		if err := bus.Send(network.Message{
			From: "attacker", To: "bundle-distributor", Topic: core.TopicBundlePull,
			Payload: core.BundlePull{Device: deviceIDs["uk"][0], Org: "uk", Have: 0},
		}); err != nil {
			forgedLost++
		}
	})

	if err := engine.Run(clock.Now().Add(p.Horizon)); err != nil {
		return E21Outcome{}, err
	}
	if publishErr != nil {
		return E21Outcome{}, publishErr
	}
	if attackLost != 0 || forgedLost != 0 {
		return E21Outcome{}, fmt.Errorf("injection (workers=%d): %d attacks and %d forged reports failed to deliver after the chaos windows healed",
			workers, attackLost, forgedLost)
	}
	if err := log.Verify(); err != nil {
		return E21Outcome{}, fmt.Errorf("audit chain (workers=%d): %w", workers, err)
	}
	for _, org := range orgs {
		if err := dist.RootLedger(org).Verify(); err != nil {
			return E21Outcome{}, fmt.Errorf("%s activation ledger (workers=%d): %w", org, workers, err)
		}
	}

	out := E21Outcome{
		Workers:        workers,
		RevUS:          dist.RootRevision("us"),
		RevUK:          dist.RootRevision("uk"),
		Converged:      dist.Converged(),
		ForgedAckedUS:  dist.AckedRevisionRoot("us", deviceIDs["us"][0]),
		ActivatedFull:  reg.Counter("bundle.activated", "kind", "full").Value(),
		ActivatedDelta: reg.Counter("bundle.activated", "kind", "delta").Value(),
		RejectedScope:  reg.Counter("bundle.rejected", "cause", "scope").Value(),
		RejectedGap:    reg.Counter("bundle.rejected", "cause", "gap").Value(),
		ScopeRejUS:     reg.Counter("bundle.scope_rejected", "root", "us").Value(),
		ScopeRejUK:     reg.Counter("bundle.scope_rejected", "root", "uk").Value(),
		ForgedAcks:     reg.Counter("bundle.forged_report", "topic", core.TopicBundleAck).Value(),
		ForgedPulls:    reg.Counter("bundle.forged_report", "topic", core.TopicBundlePull).Value(),
		Pushes:         reg.Counter("bundle.pushed").Value(),
		Acks:           reg.Counter("bundle.acked").Value(),
		Repairs:        reg.Counter("bundle.repairs").Value(),
		Pulls:          reg.Counter("bundle.pulls").Value(),
		BytesFull:      reg.Counter("bundle.bytes_on_wire", "kind", "full").Value(),
		BytesDelta:     reg.Counter("bundle.bytes_on_wire", "kind", "delta").Value(),
		JournalLen:     log.Len(),
		LedgerLenUS:    dist.RootLedger("us").Len(),
		LedgerLenUK:    dist.RootLedger("uk").Len(),
	}
	out.RejectedOther = reg.CounterTotal("bundle.rejected") -
		out.RejectedScope - out.RejectedGap -
		reg.Counter("bundle.rejected", "cause", "signature").Value() -
		reg.Counter("bundle.rejected", "cause", "decode").Value()
	finals := map[string]uint64{"us": out.RevUS, "uk": out.RevUK}
	for _, org := range orgs {
		for _, id := range deviceIDs[org] {
			d, _ := collective.Device(id)
			set := d.Policies()
			if set.OrgRevision(org) == finals[org] {
				if org == "us" {
					out.OnFinalUS++
				} else {
					out.OnFinalUK++
				}
			}
			for _, other := range orgs {
				if other != org && set.OrgRevision(other) != 0 {
					out.CrossActive++
				}
			}
		}
	}
	for _, e := range log.ByKind(audit.KindBundle) {
		switch e.Detail {
		case "bundle.rejected":
			if e.Context["cause"] == "scope" {
				out.AuditedScope++
			}
		case "bundle.forged_report":
			out.AuditedForged++
		}
	}
	if entries := log.Entries(); len(entries) > 0 {
		out.JournalTip = entries[len(entries)-1].Hash
	}
	if entries := dist.RootLedger("us").Entries(); len(entries) > 0 {
		out.LedgerTipUS = entries[len(entries)-1].Hash
	}
	if entries := dist.RootLedger("uk").Entries(); len(entries) > 0 {
		out.LedgerTipUK = entries[len(entries)-1].Hash
	}
	return out, nil
}

// RunE21 proves the coalition trust-boundary claims: two disjoint org
// roots on one fleet and one bus each converge to their own published
// revision under 30% loss plus symmetric and one-way partition
// windows; every cross-boundary push signed with the stolen org key is
// refused with cause "scope" and exact books (injected == rejected ==
// audited, zero activated, zero foreign revisions on any device);
// forged acks and pulls from the attacker node are dropped, counted
// and inert; and the audit journal plus BOTH per-root activation
// ledgers are byte-identical at every engine parallelism, with the
// publish fan-out running as sharded batch events rather than a
// synchronous per-device loop.
func RunE21(p E21Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:    "E21",
		Title: "Coalition roots: cross-boundary refusal and per-root convergence under chaos",
		Headers: []string{"workers", "rev_us", "rev_uk", "converged", "act_full", "act_delta",
			"rej_scope", "scope_us", "scope_uk", "forged", "repairs", "pulls", "identical"},
	}
	var base E21Outcome
	for i, workers := range p.Workers {
		out, err := RunE21Workers(p, workers)
		if err != nil {
			return Result{}, err
		}
		if !out.Converged || out.OnFinalUS != p.FleetPerOrg || out.OnFinalUK != p.FleetPerOrg {
			return Result{}, fmt.Errorf("e21: fleet not converged at workers=%d: us %d/%d on rev %d, uk %d/%d on rev %d",
				workers, out.OnFinalUS, p.FleetPerOrg, out.RevUS, out.OnFinalUK, p.FleetPerOrg, out.RevUK)
		}
		if out.RevUS == out.RevUK {
			return Result{}, fmt.Errorf("e21: roots ended on the same revision (%d) — stream independence not demonstrated", out.RevUS)
		}
		if out.CrossActive != 0 {
			return Result{}, fmt.Errorf("e21: %d devices hold a foreign org's revision — trust boundary breached", out.CrossActive)
		}
		if out.RejectedScope != int64(p.Attacks) {
			return Result{}, fmt.Errorf("e21: scope refusals %d != injected attacks %d (workers=%d)",
				out.RejectedScope, p.Attacks, workers)
		}
		if out.AuditedScope != p.Attacks {
			return Result{}, fmt.Errorf("e21: %d scope refusals audited, want %d", out.AuditedScope, p.Attacks)
		}
		if want := int64(p.Attacks / 2); out.ScopeRejUS != want || out.ScopeRejUK != want {
			return Result{}, fmt.Errorf("e21: per-root scope refusals us=%d uk=%d, want %d each",
				out.ScopeRejUS, out.ScopeRejUK, want)
		}
		if out.RejectedOther != 0 {
			return Result{}, fmt.Errorf("e21: unexpected rejection causes (count %d) beyond scope/gap", out.RejectedOther)
		}
		if out.ForgedAcks != 1 || out.ForgedPulls != 1 || out.AuditedForged != 2 {
			return Result{}, fmt.Errorf("e21: forged-report books unbalanced: acks=%d pulls=%d audited=%d, want 1/1/2",
				out.ForgedAcks, out.ForgedPulls, out.AuditedForged)
		}
		if out.ForgedAckedUS != out.RevUS {
			return Result{}, fmt.Errorf("e21: us-00 acked revision %d (forged ack claimed 999, final is %d) — forged ack not inert",
				out.ForgedAckedUS, out.RevUS)
		}
		if out.ActivatedDelta == 0 || out.BytesDelta == 0 {
			return Result{}, fmt.Errorf("e21: no delta activations measured — delta path untested")
		}
		identical := "baseline"
		if i == 0 {
			base = out
		} else {
			identical = "yes"
			norm := out
			norm.Workers = base.Workers
			if norm != base {
				identical = "NO"
			}
		}
		result.Rows = append(result.Rows, []string{
			itoa(workers), itoa(int(out.RevUS)), itoa(int(out.RevUK)), fmt.Sprint(out.Converged),
			itoa(int(out.ActivatedFull)), itoa(int(out.ActivatedDelta)),
			itoa(int(out.RejectedScope)), itoa(int(out.ScopeRejUS)), itoa(int(out.ScopeRejUK)),
			itoa(int(out.ForgedAcks + out.ForgedPulls)), itoa(int(out.Repairs)), itoa(int(out.Pulls)),
			identical,
		})
	}
	result.Notes = append(result.Notes,
		fmt.Sprintf("two org roots (us: %d revisions, uk: %d) over %d devices each, one bus; 30%% loss %v–%v, symmetric partition %v–%v, one-way (ack-silencing) partition %v–%v cutting half of each org",
			p.RevisionsUS, p.RevisionsUK, p.FleetPerOrg,
			50*time.Millisecond, 150*time.Millisecond,
			60*time.Millisecond, 110*time.Millisecond,
			160*time.Millisecond, 210*time.Millisecond),
		fmt.Sprintf("convergence: every device on its own root's final revision (us %d, uk %d); 0 devices hold any foreign revision",
			base.RevUS, base.RevUK),
		fmt.Sprintf("compromised key: %d validly-signed cross-boundary pushes (namespace smuggles + root claims), %d refused with cause scope (us %d / uk %d), %d activated; every refusal audited",
			p.Attacks, base.RejectedScope, base.ScopeRejUS, base.ScopeRejUK, 0),
		fmt.Sprintf("forged reports: 1 ack (claiming us-00 at rev 999) + 1 pull dropped, counted and audited; us-00's ledger standing unaffected (acked %d)",
			base.ForgedAckedUS),
		fmt.Sprintf("fan-out ran as sharded batch events (batch=%d) staged through lanes; equal tips over equal lengths = byte-identical journal AND both per-root ledgers at every parallelism",
			p.FanoutBatch))
	return result, nil
}
