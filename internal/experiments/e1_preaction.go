package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// E1Params configures the pre-action check experiment.
type E1Params struct {
	Seed         int64
	StrikeOrders int
	DigOrders    int
	Humans       int
	WanderSteps  int
}

func (p *E1Params) defaults() {
	if p.StrikeOrders <= 0 {
		p.StrikeOrders = 200
	}
	if p.DigOrders <= 0 {
		p.DigOrders = 100
	}
	if p.Humans <= 0 {
		p.Humans = 25
	}
	if p.WanderSteps <= 0 {
		p.WanderSteps = 300
	}
}

// e1Config is one experimental arm.
type e1Config struct {
	label       string
	preaction   bool
	accuracy    float64
	obligations bool
}

// RunE1 evaluates Section VI.A: pre-action checks stop direct harm,
// and obligations stop the indirect harm (the dug-hole scenario) that
// pre-action checks alone miss.
func RunE1(p E1Params) (Result, error) {
	p.defaults()
	configs := []e1Config{
		{label: "no-guard"},
		{label: "pre-action only", preaction: true, accuracy: 1},
		{label: "pre-action + obligations", preaction: true, accuracy: 1, obligations: true},
		{label: "pre-action acc=0.9 + obligations", preaction: true, accuracy: 0.9, obligations: true},
		{label: "pre-action acc=0.7 + obligations", preaction: true, accuracy: 0.7, obligations: true},
		{label: "pre-action acc=0.5 + obligations", preaction: true, accuracy: 0.5, obligations: true},
	}

	result := Result{
		ID:      "E1",
		Title:   "Pre-action checks and obligations vs direct and indirect harm",
		Headers: []string{"configuration", "direct harms", "indirect harms", "denials"},
	}
	for _, cfg := range configs {
		direct, indirect, denials, err := runE1Arm(p, cfg)
		if err != nil {
			return Result{}, err
		}
		result.Rows = append(result.Rows, []string{
			cfg.label, itoa(direct), itoa(indirect), itoa(denials),
		})
	}
	result.Notes = append(result.Notes,
		"paper expectation: a perfect pre-action check eliminates direct harm but 'may fail to catch' indirect harm;",
		"obligations (posting warnings at the hole) close the indirect path; degraded predictors leak direct harm back in")
	return result, nil
}

func runE1Arm(p E1Params, cfg e1Config) (direct, indirect, denials int, err error) {
	rng := rand.New(rand.NewSource(p.Seed + 1))
	clock := sim.NewClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	world, err := sim.NewWorld(40, 40, rng, clock, sim.WithMarkedAvoidProbability(0.98))
	if err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < p.Humans; i++ {
		pos := sim.Pos{X: rng.Intn(40), Y: rng.Intn(40)}
		if err := world.AddHuman(fmt.Sprintf("h%d", i), pos, false); err != nil {
			return 0, 0, 0, err
		}
	}

	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("dig-hole", "terrain-change"); err != nil {
		return 0, 0, 0, err
	}
	tx.Add("kinetic-strike")
	oo := ontology.NewObligationOntology(tx)
	if err := oo.Register(ontology.Obligation{
		Name: "post-warning-sign", AppliesTo: "terrain-change",
		Mitigates: "human-enters-hazard", Cost: 1,
	}); err != nil {
		return 0, 0, 0, err
	}

	// The true predictor consults the world for humans near the
	// action's target cell.
	truth := guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
		if ctx.Action.Name != "strike" {
			return 0
		}
		pos, perr := actionPos(ctx.Action)
		if perr != nil {
			return 1 // unparseable target: assume the worst
		}
		if len(world.HumansWithin(pos, 1)) > 0 {
			return 1
		}
		return 0
	})

	var g guard.Guard
	if cfg.preaction {
		var predictor guard.HarmPredictor = truth
		if cfg.accuracy < 1 {
			predictor = &guard.DegradedPredictor{Inner: truth, Accuracy: cfg.accuracy, Rand: rng.Float64}
		}
		pre := &guard.PreActionGuard{Predictor: predictor, Threshold: 0.5}
		if cfg.obligations {
			pre.Obligations = oo
		}
		g = guard.NewPipeline(nil, pre)
	}

	schema, err := statespace.NewSchema(statespace.Var("tasked", 0, 1e6))
	if err != nil {
		return 0, 0, 0, err
	}
	origin := schema.Origin()

	execute := func(action policy.Action) error {
		pos, perr := actionPos(action)
		if perr != nil {
			return perr
		}
		switch action.Name {
		case "strike":
			world.Strike(pos, 1, 1.0, "strike-order")
		case "dig-hole":
			id := fmt.Sprintf("hole-%s-%s", action.Params["x"], action.Params["y"])
			if err := world.AddHazard(id, pos, sim.HazardHole, 0.8); err != nil {
				return nil // duplicate cell: the hole already exists
			}
			for _, ob := range action.Obligations {
				if ob == "post-warning-sign" {
					world.MarkHazard(id)
				}
			}
		}
		return nil
	}

	orders := make([]policy.Action, 0, p.StrikeOrders+p.DigOrders)
	for i := 0; i < p.StrikeOrders; i++ {
		orders = append(orders, orderAt("strike", "kinetic-strike", rng))
	}
	for i := 0; i < p.DigOrders; i++ {
		orders = append(orders, orderAt("dig-hole", "dig-hole", rng))
	}

	for _, action := range orders {
		final := action
		if g != nil {
			v := g.Check(guard.ActionContext{Actor: "engineer-1", Action: action, State: origin, Next: origin})
			if !v.Allowed() {
				denials++
				continue
			}
			final = v.Action
		}
		if err := execute(final); err != nil {
			return 0, 0, 0, err
		}
	}
	for i := 0; i < p.WanderSteps; i++ {
		world.StepHumans()
	}
	direct, indirect = world.HarmCounts()
	return direct, indirect, denials, nil
}

func orderAt(name string, category ontology.Concept, rng *rand.Rand) policy.Action {
	return policy.Action{
		Name:     name,
		Category: category,
		Params: map[string]string{
			"x": strconv.Itoa(rng.Intn(40)),
			"y": strconv.Itoa(rng.Intn(40)),
		},
	}
}

func actionPos(a policy.Action) (sim.Pos, error) {
	x, err := strconv.Atoi(a.Params["x"])
	if err != nil {
		return sim.Pos{}, fmt.Errorf("experiments: action %s has bad x: %w", a.Name, err)
	}
	y, err := strconv.Atoi(a.Params["y"])
	if err != nil {
		return sim.Pos{}, fmt.Errorf("experiments: action %s has bad y: %w", a.Name, err)
	}
	return sim.Pos{X: x, Y: y}, nil
}
