package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// E11Params configures the human-error experiment.
type E11Params struct {
	Seed     int64
	Commands int
	// WrongCommandRate is the probability a human command is
	// inappropriate for the current context.
	WrongCommandRate float64
	// WrongModeRate is the probability the device's rules-of-engagement
	// context itself was mis-set by the operator (the deeper error).
	WrongModeRate float64
}

func (p *E11Params) defaults() {
	if p.Commands <= 0 {
		p.Commands = 1000
	}
	if p.WrongCommandRate <= 0 {
		p.WrongCommandRate = 0.1
	}
	if p.WrongModeRate <= 0 {
		p.WrongModeRate = 0.05
	}
}

// RunE11 evaluates the "Human errors" malevolence path of Section IV:
// "A machine that is designed for war-fighting could be used in
// peace-keeping operation, and may take inappropriate actions
// unsuitable for the environment." A war-fighting device operates in a
// peacekeeping context; humans occasionally issue engage commands
// anyway (wrong command), and occasionally mis-configure the
// rules-of-engagement mode itself (wrong mode). Defense layers:
//
//   - a context-scoped forbid policy (kinetic actions forbidden while
//     ROE is peacekeeping) catches wrong commands;
//   - the pre-action harm check catches the engagements that the
//     forbid policy misses when the ROE mode itself is wrong.
func RunE11(p E11Params) (Result, error) {
	p.defaults()
	type arm struct {
		label     string
		roeForbid bool
		preaction bool
	}
	arms := []arm{
		{label: "no safeguards"},
		{label: "ROE forbid policy", roeForbid: true},
		{label: "ROE forbid + pre-action check", roeForbid: true, preaction: true},
	}

	result := Result{
		ID:      "E11",
		Title:   "Human error — wrong commands and wrong ROE mode vs layered safeguards",
		Headers: []string{"configuration", "inappropriate engagements", "vetoed by policy", "vetoed by guard"},
	}

	schema, err := statespace.NewSchema(
		statespace.Var("roe", 0, 1), // 0 = peacekeeping, 1 = combat
		statespace.Var("ammo", 0, 1000),
	)
	if err != nil {
		return Result{}, err
	}

	for _, a := range arms {
		rng := rand.New(rand.NewSource(p.Seed + 11))
		engagements, policyVetoes, guardVetoes := 0, 0, 0

		set := policy.NewSet()
		if err := set.Add(policy.Policy{
			ID: "engage", EventType: "command-engage", Modality: policy.ModalityDo,
			Action: policy.Action{Name: "engage", Category: "kinetic-action",
				Effect: statespace.Delta{"ammo": -1}},
		}); err != nil {
			return Result{}, err
		}
		if a.roeForbid {
			if err := set.Add(policy.Policy{
				ID: "roe-peacekeeping", EventType: policy.WildcardEvent, Priority: 100,
				Modality:  policy.ModalityForbid,
				Condition: policy.Threshold{Quantity: "state.roe", Op: policy.CmpLT, Value: 0.5},
				Action:    policy.Action{Category: "kinetic-action"},
			}); err != nil {
				return Result{}, err
			}
		}

		var g guard.Guard
		if a.preaction {
			// The world model knows this is a peacekeeping theater:
			// civilians are near every engagement target regardless of
			// what the ROE register claims.
			g = &guard.PreActionGuard{
				Predictor: guard.HarmPredictorFunc(func(guard.ActionContext) float64 { return 0.9 }),
				Threshold: 0.5,
			}
		}

		for i := 0; i < p.Commands; i++ {
			// The mission context is peacekeeping; operators sometimes
			// mis-set the ROE register.
			roe := 0.0
			if rng.Float64() < p.WrongModeRate {
				roe = 1.0
			}
			st, err := schema.StateFromMap(map[string]float64{"roe": roe, "ammo": 100})
			if err != nil {
				return Result{}, err
			}
			// Most commands are appropriate (patrol); some are wrong
			// (engage in a peacekeeping theater).
			if rng.Float64() >= p.WrongCommandRate {
				continue
			}
			env := policy.Env{Event: policy.Event{Type: "command-engage", Source: "human"}, State: st}
			decision := set.Evaluate(env)
			if len(decision.Vetoed) > 0 {
				policyVetoes++
				continue
			}
			executed := false
			for _, action := range decision.Actions {
				if g != nil {
					next, err := st.Apply(action.Effect)
					if err != nil {
						return Result{}, err
					}
					v := g.Check(guard.ActionContext{Actor: "unit", Action: action, State: st, Next: next})
					if !v.Allowed() {
						guardVetoes++
						continue
					}
				}
				executed = true
			}
			if executed {
				engagements++
			}
		}
		result.Rows = append(result.Rows, []string{
			a.label, itoa(engagements), itoa(policyVetoes), itoa(guardVetoes),
		})
	}
	result.Notes = append(result.Notes,
		fmt.Sprintf("workload: %d commands, %.0f%% inappropriate, %.0f%% ROE mis-set",
			p.Commands, p.WrongCommandRate*100, p.WrongModeRate*100),
		"paper expectation: 'a wrong command by the human operator ... can lead to malevolent conditions';",
		"the context-scoped forbid stops wrong commands, and the pre-action check backstops the mis-set-mode case")
	return result, nil
}
