package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// E7Params configures the ill-defined state-space experiment.
type E7Params struct {
	Seed  int64
	Steps int
	// Dimensions lists the state-space sizes to sweep.
	Dimensions []int
}

func (p *E7Params) defaults() {
	if p.Steps <= 0 {
		p.Steps = 3000
	}
	if len(p.Dimensions) == 0 {
		p.Dimensions = []int{2, 4, 8, 12}
	}
}

// RunE7 evaluates Section VII: when the exact good/bad function
// f(x1..xN) is withheld and only the signs of its partial derivatives
// are known, the synthesized pain/pleasure utility still keeps the
// device away from bad states — not as perfectly as the oracle
// classifier, but far better than no guard, across state-space sizes.
func RunE7(p E7Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:      "E7",
		Title:   "Ill-defined state spaces — derivative-sign utility vs oracle classifier",
		Headers: []string{"N variables", "guard", "bad-state rate%", "availability%"},
	}
	for _, n := range p.Dimensions {
		rows, err := runE7Dimension(p, n)
		if err != nil {
			return Result{}, err
		}
		result.Rows = append(result.Rows, rows...)
	}
	result.Notes = append(result.Notes,
		"paper expectation: 'while a human may not be able to exactly define whether the state is good or bad,",
		"it may be possible to define ... the sign of the partial derivatives' — and that alone 'can decrease such a",
		"probability in a significant manner', without matching the exact classifier")
	return result, nil
}

func runE7Dimension(p E7Params, n int) ([][]string, error) {
	vars := make([]statespace.Variable, n)
	for i := range vars {
		vars[i] = statespace.Var(fmt.Sprintf("x%d", i), 0, 1)
	}
	schema, err := statespace.NewSchema(vars...)
	if err != nil {
		return nil, err
	}

	// Hidden ground truth: each variable has an orientation; the state
	// is bad when the oriented mean position exceeds a threshold.
	truthRng := rand.New(rand.NewSource(p.Seed + int64(n)*100))
	orientation := make([]float64, n)
	for i := range orientation {
		if truthRng.Intn(2) == 0 {
			orientation[i] = 1
		} else {
			orientation[i] = -1
		}
	}
	hiddenScore := func(st statespace.State) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			pos := st.Value(i)
			if orientation[i] < 0 {
				pos = 1 - pos
			}
			sum += pos
		}
		return sum / float64(n)
	}
	oracle := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if hiddenScore(st) > 0.72 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})

	// The Section VII model: only the derivative signs are given.
	model := statespace.NewDerivativeModel(schema)
	for i := 0; i < n; i++ {
		sign := statespace.SignDecreasing // raising the oriented variable is dangerous
		if orientation[i] < 0 {
			sign = statespace.SignIncreasing
		}
		if err := model.SetSign(schema.Var(i).Name, sign); err != nil {
			return nil, err
		}
	}

	// Section VII also anticipates refining the human-provided signs
	// "based on machine learning techniques": fit signs empirically
	// from labeled samples instead of being told them.
	sampleRng := rand.New(rand.NewSource(p.Seed + int64(n)*7))
	var samples []statespace.State
	var classes []statespace.Class
	for i := 0; i < 400; i++ {
		values := make([]float64, n)
		for j := range values {
			values[j] = sampleRng.Float64()
		}
		st, err := schema.NewState(values...)
		if err != nil {
			return nil, err
		}
		samples = append(samples, st)
		classes = append(classes, oracle.Classify(st))
	}
	fitted, err := statespace.FitSigns(schema, samples, classes, 0.01)
	if err != nil {
		return nil, err
	}

	arms := []struct {
		label string
		g     guard.Guard
	}{
		{label: "none", g: nil},
		{label: "oracle classifier", g: &guard.StateSpaceGuard{Classifier: oracle}},
		{label: "derivative-sign utility", g: &guard.UtilityGuard{
			Model:           model,
			MaxPainIncrease: 0.02,
			PainCeiling:     0.65,
		}},
		{label: "fitted-sign utility", g: &guard.UtilityGuard{
			Model:           fitted,
			MaxPainIncrease: 0.02,
			PainCeiling:     0.65,
		}},
	}

	var rows [][]string
	for _, arm := range arms {
		rng := rand.New(rand.NewSource(p.Seed + int64(n)))
		st := schema.Origin()
		// Start mid-space.
		for i := 0; i < n; i++ {
			var err error
			st, err = st.With(schema.Var(i).Name, 0.5)
			if err != nil {
				return nil, err
			}
		}
		badSteps, denials := 0, 0
		for step := 0; step < p.Steps; step++ {
			delta := make(statespace.Delta, n)
			for i := 0; i < n; i++ {
				// Drift biased toward danger along the hidden
				// orientation.
				delta[schema.Var(i).Name] = (rng.Float64()*2 - 0.8) * 0.08 * orientation[i]
			}
			next, err := st.Apply(delta)
			if err != nil {
				return nil, err
			}
			if arm.g != nil {
				v := arm.g.Check(guard.ActionContext{
					Actor: "dev", Action: policy.Action{Name: "drift", Effect: delta},
					State: st, Next: next,
				})
				if !v.Allowed() {
					denials++
					continue
				}
			}
			st = next
			if oracle.Classify(st) == statespace.ClassBad {
				badSteps++
			}
		}
		rows = append(rows, []string{
			itoa(n), arm.label, pct(badSteps, p.Steps), pct(p.Steps-denials, p.Steps),
		})
	}
	return rows, nil
}
