package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/network"
	"repro/internal/sim"
)

// E16Params configures the saturation experiment: a fleet driven past
// its admission capacity while chaos windows inject loss and
// duplication, with the conservation invariant checked exactly.
type E16Params struct {
	// Seed drives the bus fault sampling (deterministically).
	Seed int64
	// Fleet is the number of recipients.
	Fleet int
	// Rounds is the number of overload ticks.
	Rounds int
	// LightRounds is the number of within-capacity ticks appended after
	// the overload window (one send per recipient per tick), so the
	// duplication fault can exercise the duplicate-delivery path that
	// saturation starves.
	LightRounds int
	// PerRound is the number of sends per recipient per overload round;
	// with the default token rate it is 2x the admission capacity.
	PerRound int
	// Period is the load tick period.
	Period time.Duration
	// QueueCapacity bounds each recipient's intake queue.
	QueueCapacity int
	// Rate and Burst size the per-recipient token bucket.
	Rate  float64
	Burst float64
	// Horizon is the virtual run length (must leave room for queues to
	// drain after the load stops).
	Horizon time.Duration
	// Workers are the engine parallelism levels to compare; the first
	// must be 1 (the serial baseline).
	Workers []int
}

func (p *E16Params) defaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Fleet <= 0 {
		p.Fleet = 6
	}
	if p.Rounds <= 0 {
		p.Rounds = 30
	}
	if p.LightRounds <= 0 {
		p.LightRounds = 20
	}
	if p.PerRound <= 0 {
		p.PerRound = 6 // 2x the 3-token-per-round refill
	}
	if p.Period <= 0 {
		p.Period = 5 * time.Millisecond
	}
	if p.QueueCapacity <= 0 {
		p.QueueCapacity = 4
	}
	if p.Rate <= 0 {
		p.Rate = 600 // 3 tokens per 5ms round
	}
	if p.Burst <= 0 {
		p.Burst = 3
	}
	if p.Horizon <= 0 {
		p.Horizon = 600 * time.Millisecond
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4}
	}
}

// E16Outcome is one configuration's measured result: the bus's full
// accounting plus a digest of every deterministic output the
// differential gate compares.
type E16Outcome struct {
	Workers    int
	Sent       int
	Delivered  int
	Dropped    int
	Shed       int
	Pending    int
	Duplicated int
	// Counts is the admission controller's per-class books.
	Counts admission.Counts
	// JournalLen and TipHash digest the hash-chained audit journal (one
	// entry per delivery).
	JournalLen int
	TipHash    string
	// Received sums per-recipient receipt counts (a state checksum).
	Received int
}

// e16Topics is the per-round topic mix; the rotation by round index
// spreads rate-limit sheds across all three priority classes while
// queue-full eviction still favors human traffic.
var e16Topics = []string{"command", "action", "gossip", "command", "gossip", "telemetry"}

// RunE16Workers drives the fleet at 2x admission capacity for the load
// window, opens a loss and a duplication window mid-run, lets the
// queues drain, and returns the exact books.
func RunE16Workers(p E16Params, workers int) (E16Outcome, error) {
	p.defaults()
	clock := sim.NewClock(time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	engine.SetParallelism(workers)
	log := audit.New(audit.WithClock(clock.Now))
	metrics := sim.NewMetrics()

	ctrl, err := admission.New(admission.Config{
		QueueCapacity: p.QueueCapacity,
		Rate:          p.Rate,
		Burst:         p.Burst,
		Now:           clock.Now,
		DrainBatch:    1,
		DrainInterval: 20 * time.Millisecond,
		Metrics:       metrics.Registry(),
	})
	if err != nil {
		return E16Outcome{}, err
	}
	bus := network.NewBus(rand.New(rand.NewSource(p.Seed)),
		network.WithEngine(engine),
		network.WithMetrics(metrics),
		network.WithAdmission(ctrl),
		network.WithLatency(time.Millisecond, time.Millisecond))

	received := make([]int, p.Fleet)
	for i := 0; i < p.Fleet; i++ {
		i := i
		id := fmt.Sprintf("node-%02d", i)
		// The lane handler owns only its recipient's slot and routes its
		// audit append through the lane, so parallel drains stay
		// deterministic.
		if err := bus.AttachLane(id, func(msg network.Message, lane *sim.Lane) {
			received[i]++
			lane.Route(log).Append(audit.KindNote, id, "recv "+msg.Topic, nil)
		}); err != nil {
			return E16Outcome{}, err
		}
	}

	// The load generators are barrier events: sends (and therefore the
	// bus's fault sampling order) are serial, which is what makes the
	// run reproducible at any parallelism.
	round := 0
	engine.ScheduleEvery(p.Period, func() bool { return round < p.Rounds }, func() {
		for r := 0; r < p.Fleet; r++ {
			to := fmt.Sprintf("node-%02d", r)
			for k := 0; k < p.PerRound; k++ {
				topic := e16Topics[(k+round)%len(e16Topics)]
				// Every outcome is accounted: nil (delivered or queued),
				// ErrDropped (loss window), or a typed admission shed.
				_ = conservedSend(bus, network.Message{
					From: "human", To: to, Topic: topic,
					Payload: fmt.Sprintf("r%d-k%d", round, k),
				})
			}
		}
		round++
	})

	// After the overload window and a 100ms drain gap, a light
	// within-capacity tail (one send per recipient per round) runs under
	// the duplication fault: under saturation a duplicate's second
	// admission always sheds, so the duplicate-delivery accounting can
	// only be exercised with headroom.
	gap := time.Duration(p.Rounds)*p.Period + 100*time.Millisecond
	light := 0
	engine.Schedule(gap, func() {
		engine.ScheduleEvery(p.Period, func() bool { return light < p.LightRounds }, func() {
			for r := 0; r < p.Fleet; r++ {
				topic := e16Topics[(light+r)%len(e16Topics)]
				_ = conservedSend(bus, network.Message{
					From: "human", To: fmt.Sprintf("node-%02d", r), Topic: topic,
					Payload: fmt.Sprintf("t%d", light),
				})
			}
			light++
		})
	})

	// Chaos windows: a loss burst while the system is saturated, a
	// duplication burst over the light tail. The bus defaults its rng
	// when faults are configured, so these can never be silent no-ops.
	lossOn := time.Duration(p.Rounds/3) * p.Period
	lossOff := time.Duration(2*p.Rounds/3) * p.Period
	dupOff := gap + time.Duration(p.LightRounds+1)*p.Period
	engine.Schedule(lossOn, func() { bus.SetLoss(0.25) })
	engine.Schedule(lossOff, func() { bus.SetLoss(0) })
	engine.Schedule(gap, func() { bus.SetDuplication(0.3) })
	engine.Schedule(dupOff, func() { bus.SetDuplication(0) })

	if err := engine.Run(clock.Now().Add(p.Horizon)); err != nil {
		return E16Outcome{}, err
	}

	if err := log.Verify(); err != nil {
		return E16Outcome{}, fmt.Errorf("audit chain (workers=%d): %w", workers, err)
	}
	if err := bus.CheckConservation(); err != nil {
		return E16Outcome{}, fmt.Errorf("workers=%d: %w", workers, err)
	}
	delivered, dropped := bus.Stats()
	out := E16Outcome{
		Workers:    workers,
		Sent:       bus.Sent(),
		Delivered:  delivered,
		Dropped:    dropped,
		Shed:       bus.Shed(),
		Pending:    bus.PendingAdmitted(),
		Duplicated: bus.Duplicated(),
		Counts:     ctrl.Counts(),
		JournalLen: log.Len(),
	}
	if entries := log.Entries(); len(entries) > 0 {
		out.TipHash = entries[len(entries)-1].Hash
	}
	for _, n := range received {
		out.Received += n
	}
	return out, nil
}

// conservedSend documents the accounting contract at the call site:
// the error is either nil or typed (dropped/shed), and in every case
// the bus's books already hold the outcome — there is nothing for the
// caller to lose.
func conservedSend(bus *network.Bus, msg network.Message) error {
	return bus.Send(msg)
}

// RunE16 measures saturation behavior: the fleet is offered 2x its
// admission capacity with loss and duplication bursts mid-run, and the
// acceptance bar is exact conservation — sent == delivered + dropped +
// shed (+ pending, which must drain to zero) — plus byte-identical
// journals at every parallelism and priority ordering under pressure
// (human commands shed less than background chatter).
func RunE16(p E16Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:    "E16",
		Title: "Saturation: admission control conservation under overload",
		Headers: []string{"workers", "sent", "delivered", "dropped", "shed",
			"pending", "dup", "conserved", "tip", "identical"},
	}
	var base E16Outcome
	for i, workers := range p.Workers {
		out, err := RunE16Workers(p, workers)
		if err != nil {
			return Result{}, err
		}
		if out.Pending != 0 {
			return Result{}, fmt.Errorf("e16: %d admitted messages still queued at horizon (workers=%d)",
				out.Pending, workers)
		}
		identical := "baseline"
		if i == 0 {
			base = out
		} else {
			identical = "yes"
			norm := out
			norm.Workers = base.Workers
			if norm != base {
				identical = "NO"
			}
		}
		tip := out.TipHash
		if len(tip) > 12 {
			tip = tip[:12]
		}
		result.Rows = append(result.Rows, []string{
			itoa(workers), itoa(out.Sent), itoa(out.Delivered), itoa(out.Dropped),
			itoa(out.Shed), itoa(out.Pending), itoa(out.Duplicated),
			"exact", tip, identical,
		})
	}
	c := base.Counts
	human, guard, bg := admission.ClassHuman, admission.ClassGuard, admission.ClassBackground
	shedBy := func(cl admission.Class) int64 {
		return c.ShedQueueFull[cl] + c.ShedRateLimited[cl]
	}
	if shedBy(human) >= shedBy(bg) {
		return Result{}, fmt.Errorf("e16: priority inversion: human shed %d >= background shed %d",
			shedBy(human), shedBy(bg))
	}
	result.Notes = append(result.Notes,
		fmt.Sprintf("fleet=%d rounds=%d offered=%d/recipient/round vs capacity %d (2x overload), then a drain gap and %d within-capacity rounds; loss 25%% mid-overload, dup 30%% over the light tail",
			p.Fleet, p.Rounds, p.PerRound, int(p.Rate*p.Period.Seconds()), p.LightRounds),
		"invariant sent == delivered + dropped + shed held exactly; queues drained to 0 after load stopped",
		fmt.Sprintf("shed by class: human=%d guard=%d background=%d (priority preserved: human < background)",
			shedBy(human), shedBy(guard), shedBy(bg)),
		fmt.Sprintf("evictions (queued lower-priority displaced by higher): guard=%d background=%d; duplicates stay off the conservation books",
			c.Evicted[guard], c.Evicted[bg]),
		"equal tip hash over equal length = byte-identical hash-chained journal at every parallelism")
	return result, nil
}
