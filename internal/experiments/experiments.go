// Package experiments contains one runner per reproduced figure
// (F1–F3) and constructed experiment (E1–E10) from DESIGN.md. Every
// runner is deterministic given its seed and returns a Result whose
// table cmd/experiments prints; the corresponding tests assert the
// qualitative shape the paper predicts, and bench_test.go at the
// module root benchmarks each runner.
package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Result is the printable outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (F1..F3, E1..E10).
	ID string
	// Title describes the experiment.
	Title string
	// Headers are the table column names.
	Headers []string
	// Rows are the table body.
	Rows [][]string
	// Notes are free-form lines printed after the table.
	Notes []string
	// Artifact is an optional pre-rendered block (e.g. the F3 ASCII
	// state space).
	Artifact string
}

// Table renders the result as an aligned text table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		widths := make([]int, len(r.Headers))
		for i, h := range r.Headers {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(cell)
				if i < len(widths) {
					b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				}
			}
			b.WriteByte('\n')
		}
		writeRow(r.Headers)
		sep := make([]string, len(r.Headers))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	if r.Artifact != "" {
		b.WriteByte('\n')
		b.WriteString(r.Artifact)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Cell returns the row cell at the given header, for test assertions.
func (r Result) Cell(rowLabel, header string) (string, bool) {
	col := -1
	for i, h := range r.Headers {
		if h == header {
			col = i
			break
		}
	}
	if col < 0 {
		return "", false
	}
	for _, row := range r.Rows {
		if len(row) > col && len(row) > 0 && row[0] == rowLabel {
			return row[col], true
		}
	}
	return "", false
}

// CellFloat parses the cell at the given row and header as a float.
func (r Result) CellFloat(rowLabel, header string) (float64, bool) {
	s, ok := r.Cell(rowLabel, header)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func pct(num, den int) string {
	if den == 0 {
		return "0.000"
	}
	return ftoa(float64(num) / float64(den) * 100)
}
