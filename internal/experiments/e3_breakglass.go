package experiments

import (
	"math/rand"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/risk"
	"repro/internal/statespace"
)

// E3Params configures the break-glass experiment.
type E3Params struct {
	Seed     int64
	Dilemmas int
}

func (p *E3Params) defaults() {
	if p.Dilemmas <= 0 {
		p.Dilemmas = 200
	}
}

// RunE3 evaluates the break-glass rule of Section VI.B on the paper's
// own dilemma: "electronic components having no alternative but to run
// at maximum capacity to prevent loss of life but risking a fire at
// the same time." Each dilemma offers the device an escape from a
// loss-of-life-risk state into a fire-risk state (less bad under the
// preference ontology) and a decoy transition into an even worse
// state. A deception arm feeds the device falsified heat readings and
// checks that the trust check (peer cross-validation via robust
// aggregation) blocks the override.
func RunE3(p E3Params) (Result, error) {
	p.defaults()

	schema, err := statespace.NewSchema(statespace.Var("danger", 0, 100))
	if err != nil {
		return Result{}, err
	}
	// danger ≥ 60 is bad; 60–80 reads as "fire risk", above 80 as
	// "loss-of-life risk".
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("danger") >= 60 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	outcomeOf := func(st statespace.State) ontology.Outcome {
		switch d := st.MustGet("danger"); {
		case d >= 80:
			return "loss-of-life"
		case d >= 60:
			return "fire"
		default:
			return ""
		}
	}
	prefs := ontology.NewPreferenceOntology()
	if err := prefs.Prefer("fire", "loss-of-life"); err != nil {
		return Result{}, err
	}
	riskOf := risk.AssessorFunc(func(st statespace.State) float64 {
		return st.MustGet("danger") / 100
	})

	type arm struct {
		label      string
		breakGlass bool
		deceived   bool
		trustCheck bool
	}
	arms := []arm{
		{label: "no break-glass"},
		{label: "break-glass", breakGlass: true},
		{label: "break-glass + deceived sensor", breakGlass: true, deceived: true},
		{label: "break-glass + deceived + trust check", breakGlass: true, deceived: true, trustCheck: true},
	}

	result := Result{
		ID:      "E3",
		Title:   "Break-glass escapes from bad-to-bad dilemmas, with audit and deception defense",
		Headers: []string{"configuration", "escapes allowed", "worse moves blocked", "audit records", "trust denials"},
	}

	for _, a := range arms {
		rng := rand.New(rand.NewSource(p.Seed + 3))
		log := audit.New()
		var bg *guard.BreakGlass
		trustDenials := 0
		trueDangerNow := 0.0
		if a.breakGlass {
			bg = &guard.BreakGlass{Preferences: prefs, Risk: riskOf}
			if a.trustCheck {
				bg.TrustCheck = func(ctx guard.ActionContext) bool {
					// Cross-check own danger reading against honest
					// peer readings via robust aggregation.
					own := ctx.State.MustGet("danger")
					peers := make([]float64, 5)
					for i := range peers {
						peers[i] = trueDangerNow + rng.Float64()*4 - 2
					}
					trusted := attack.TrustReading(own, peers, 10)
					if !trusted {
						trustDenials++
					}
					return trusted
				}
			}
		}
		g := guard.NewPipeline(log, &guard.StateSpaceGuard{
			Classifier: classifier,
			OutcomeOf:  outcomeOf,
			BreakGlass: bg,
		})

		escapes, worseBlocked := 0, 0
		for i := 0; i < p.Dilemmas; i++ {
			trueDanger := 85 + rng.Float64()*10 // loss-of-life territory
			sensed := trueDanger
			if a.deceived {
				// The attacker inflates the danger reading of a
				// device that is actually safe, tricking it into a
				// spurious break-glass "escape" that really moves it
				// INTO the fire-risk region.
				trueDanger = 25 + rng.Float64()*10
				sensed = 88 + rng.Float64()*6
			}
			trueDangerNow = trueDanger
			curr, err := schema.StateFromMap(map[string]float64{"danger": sensed})
			if err != nil {
				return Result{}, err
			}
			escape, err := schema.StateFromMap(map[string]float64{"danger": 65}) // fire risk
			if err != nil {
				return Result{}, err
			}
			worse, err := schema.StateFromMap(map[string]float64{"danger": 99})
			if err != nil {
				return Result{}, err
			}

			v := g.Check(guard.ActionContext{
				Actor: "component", Action: policy.Action{Name: "run-max-capacity"},
				State: curr, Next: escape,
			})
			if v.Allowed() {
				escapes++
			}
			v = g.Check(guard.ActionContext{
				Actor: "component", Action: policy.Action{Name: "overload"},
				State: curr, Next: worse,
			})
			if !v.Allowed() {
				worseBlocked++
			}
		}
		auditRecords := len(log.ByKind(audit.KindBreakGlass))
		result.Rows = append(result.Rows, []string{
			a.label, itoa(escapes), itoa(worseBlocked), itoa(auditRecords), itoa(trustDenials),
		})
	}
	result.Notes = append(result.Notes,
		"paper expectation: break-glass unlocks the fire-over-loss-of-life escape and every use is audited;",
		"in the deceived arms 'escapes allowed' are SPURIOUS (the attacker inflated the danger reading of a safe device) —",
		"'it is critical that a device be able to obtain trustworthy information': the trust check blocks them")
	return result, nil
}
