package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// E17Params configures the bundle-distribution experiment: a fleet
// receiving a stream of signed policy revisions while chaos injects
// loss, a symmetric partition and an asymmetric (one-way) partition,
// plus a burst of corrupted pushes that must all be refused.
type E17Params struct {
	// Seed drives the bus fault sampling.
	Seed int64
	// Fleet is the number of devices.
	Fleet int
	// Revisions is the number of policy revisions published.
	Revisions int
	// PolicyCount is the number of policies per revision.
	PolicyCount int
	// PublishEvery is the cadence of revision publishes.
	PublishEvery time.Duration
	// SweepEvery is the anti-entropy repair cadence.
	SweepEvery time.Duration
	// Corruptions is the number of tampered pushes injected (half
	// rogue-signed, half undecodable).
	Corruptions int
	// Loss is the loss probability during the loss window.
	Loss float64
	// Horizon is the virtual run length.
	Horizon time.Duration
	// Workers are the engine parallelism levels to compare; the first
	// must be 1 (the serial baseline).
	Workers []int
}

func (p *E17Params) defaults() {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Fleet <= 0 {
		p.Fleet = 8
	}
	if p.Revisions <= 0 {
		p.Revisions = 10
	}
	if p.PolicyCount <= 0 {
		p.PolicyCount = 8
	}
	if p.PublishEvery <= 0 {
		p.PublishEvery = 25 * time.Millisecond
	}
	if p.SweepEvery <= 0 {
		p.SweepEvery = 40 * time.Millisecond
	}
	if p.Corruptions <= 0 {
		p.Corruptions = 6
	}
	if p.Loss <= 0 {
		p.Loss = 0.30
	}
	if p.Horizon <= 0 {
		p.Horizon = 700 * time.Millisecond
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4}
	}
}

// E17Outcome is one configuration's exact books: distribution
// accounting, fail-closed accounting, byte costs, and the digests the
// determinism gate compares across worker counts.
type E17Outcome struct {
	Workers        int
	FinalRevision  uint64
	Converged      bool
	DevicesOnFinal int
	ActivatedFull  int64
	ActivatedDelta int64
	RejectedSig    int64
	RejectedDecode int64
	RejectedGap    int64
	RejectedOther  int64
	AuditedCorrupt int
	Pushes         int64
	Acks           int64
	Repairs        int64
	Pulls          int64
	BytesFull      int64
	BytesDelta     int64
	JournalLen     int
	JournalTip     string
	LedgerLen      int
	LedgerTip      string
}

// e17Revision compiles the policy set for one revision: PolicyCount
// policies whose action target carries the revision tag, with a
// rotating subset mutated each revision so deltas stay small but
// non-empty.
func e17Revision(count, rev int) ([]policy.Policy, error) {
	var src string
	for i := 0; i < count; i++ {
		// Two policies change per revision; the rest keep their
		// previous source (same hash → not in the delta).
		tag := "base"
		if i == rev%count || i == (rev+1)%count {
			tag = fmt.Sprintf("rev%d", rev)
		}
		src += fmt.Sprintf(
			"policy fleet%02d priority %d:\n    on tick\n    when intensity > 0\n    do adjust target %s category surveillance\n",
			i, i+1, tag)
	}
	return policylang.CompileSource(src, policy.OriginHuman)
}

// RunE17Workers runs the distribution plane through the chaos schedule
// at one parallelism level and returns the exact outcome.
func RunE17Workers(p E17Params, workers int) (E17Outcome, error) {
	p.defaults()
	clock := sim.NewClock(time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	engine.SetParallelism(workers)
	log := audit.New(audit.WithClock(clock.Now))
	metrics := sim.NewMetrics()
	reg := metrics.Registry()
	bus := network.NewBus(rand.New(rand.NewSource(p.Seed)),
		network.WithEngine(engine),
		network.WithMetrics(metrics),
		network.WithLatency(time.Millisecond, time.Millisecond))

	collective, err := core.New(core.Config{
		Name:       "e17",
		KillSecret: []byte("e17-secret"),
		Audit:      log,
		Bus:        bus,
		Telemetry:  reg,
	})
	if err != nil {
		return E17Outcome{}, err
	}

	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		return E17Outcome{}, err
	}
	key := bundle.HMACKey{ID: "fleet-key", Secret: []byte("e17 shared secret")}
	dist, err := core.NewDistributor(core.DistributorConfig{
		Collective:     collective,
		Signer:         key,
		Telemetry:      reg,
		Clock:          clock.Now,
		StuckThreshold: 3,
	})
	if err != nil {
		return E17Outcome{}, err
	}

	deviceIDs := make([]string, p.Fleet)
	for i := 0; i < p.Fleet; i++ {
		id := fmt.Sprintf("dev-%02d", i)
		deviceIDs[i] = id
		initial, err := schema.StateFromMap(map[string]float64{"heat": 20, "fuel": 100})
		if err != nil {
			return E17Outcome{}, err
		}
		d, err := device.New(device.Config{
			ID: id, Type: "drone", Organization: "us",
			Initial:    initial,
			KillSwitch: collective.KillSwitch(),
			Audit:      log,
		})
		if err != nil {
			return E17Outcome{}, err
		}
		if err := collective.AddDevice(d, nil); err != nil {
			return E17Outcome{}, err
		}
		if err := dist.Enroll(id, key); err != nil {
			return E17Outcome{}, err
		}
	}

	// Publish cadence: one revision per tick, from barrier events so
	// the bus's fault sampling order is serial and reproducible.
	published := 0
	var publishErr error
	engine.ScheduleEvery(p.PublishEvery, func() bool { return published < p.Revisions && publishErr == nil }, func() {
		pols, err := e17Revision(p.PolicyCount, published+1)
		if err != nil {
			publishErr = err
			return
		}
		if _, err := dist.Publish(pols); err != nil {
			publishErr = err
			return
		}
		published++
	})

	// Anti-entropy repair, also on barriers, until the horizon.
	engine.ScheduleEvery(p.SweepEvery, func() bool { return true }, func() {
		dist.RepairSweep()
	})

	// Chaos windows, sized against the publish stream (10 revisions at
	// 25ms → publishes end at 250ms):
	//   - 30% loss across the middle of the stream,
	//   - a symmetric partition cutting half the fleet off,
	//   - a one-way partition silencing half the fleet's acks while
	//     pushes still arrive (the push-succeeded/ack-lost case).
	half := deviceIDs[:p.Fleet/2]
	groups := make(map[string]int, len(half))
	for _, id := range half {
		groups[id] = 1
	}
	injector := &chaos.Injector{Engine: engine, Bus: bus, Metrics: metrics}
	faults := []chaos.Fault{
		chaos.Loss{Prob: p.Loss, At: 50 * time.Millisecond, For: 100 * time.Millisecond},
		chaos.Partition{Groups: groups, At: 60 * time.Millisecond, For: 50 * time.Millisecond},
		chaos.OneWayPartition{
			From: half, To: []string{"bundle-distributor"},
			At: 160 * time.Millisecond, For: 50 * time.Millisecond,
		},
	}
	for _, f := range faults {
		f.Inject(injector)
	}

	// Corrupted pushes after the fault windows heal (so delivery is
	// guaranteed and the fail-closed count must equal the injection
	// count exactly): alternately rogue-signed (wrong key) and
	// undecodable bytes. None may activate; every one must be audited.
	rogue := bundle.NewPublisher(bundle.HMACKey{ID: "rogue", Secret: []byte("stolen-ish")})
	roguePols, err := e17Revision(p.PolicyCount, 999)
	if err != nil {
		return E17Outcome{}, err
	}
	rogueFull, _, err := rogue.Publish(roguePols)
	if err != nil {
		return E17Outcome{}, err
	}
	rogueBytes, err := bundle.Encode(rogueFull)
	if err != nil {
		return E17Outcome{}, err
	}
	// The injections are scheduled after every chaos window has healed,
	// so delivery is guaranteed and the fail-closed books must balance
	// exactly; a lost injection would silently weaken the assertion, so
	// it fails the run instead.
	corruptLost := 0
	for i := 0; i < p.Corruptions; i++ {
		i := i
		at := 300*time.Millisecond + time.Duration(i)*7*time.Millisecond
		engine.Schedule(at, func() {
			payload := rogueBytes
			if i%2 == 1 {
				payload = []byte("!! not a bundle !!")
			}
			if err := bus.Send(network.Message{
				From: "attacker", To: deviceIDs[i%len(deviceIDs)],
				Topic: core.TopicBundle, Payload: payload,
			}); err != nil {
				corruptLost++
			}
		})
	}

	if err := engine.Run(clock.Now().Add(p.Horizon)); err != nil {
		return E17Outcome{}, err
	}
	if publishErr != nil {
		return E17Outcome{}, publishErr
	}
	if corruptLost != 0 {
		return E17Outcome{}, fmt.Errorf("corruption injection (workers=%d): %d of %d pushes failed to deliver after the chaos windows healed",
			workers, corruptLost, p.Corruptions)
	}
	if err := log.Verify(); err != nil {
		return E17Outcome{}, fmt.Errorf("audit chain (workers=%d): %w", workers, err)
	}
	if err := dist.Ledger().Verify(); err != nil {
		return E17Outcome{}, fmt.Errorf("activation ledger (workers=%d): %w", workers, err)
	}

	out := E17Outcome{
		Workers:        workers,
		FinalRevision:  dist.Revision(),
		Converged:      dist.Converged(),
		ActivatedFull:  reg.Counter("bundle.activated", "kind", "full").Value(),
		ActivatedDelta: reg.Counter("bundle.activated", "kind", "delta").Value(),
		RejectedSig:    reg.Counter("bundle.rejected", "cause", "signature").Value(),
		RejectedDecode: reg.Counter("bundle.rejected", "cause", "decode").Value(),
		RejectedGap:    reg.Counter("bundle.rejected", "cause", "gap").Value(),
		Pushes:         reg.Counter("bundle.pushed").Value(),
		Acks:           reg.Counter("bundle.acked").Value(),
		Repairs:        reg.Counter("bundle.repairs").Value(),
		Pulls:          reg.Counter("bundle.pulls").Value(),
		BytesFull:      reg.Counter("bundle.bytes_on_wire", "kind", "full").Value(),
		BytesDelta:     reg.Counter("bundle.bytes_on_wire", "kind", "delta").Value(),
		JournalLen:     log.Len(),
		LedgerLen:      dist.Ledger().Len(),
	}
	out.RejectedOther = reg.CounterTotal("bundle.rejected") -
		out.RejectedSig - out.RejectedDecode - out.RejectedGap
	for _, id := range deviceIDs {
		d, _ := collective.Device(id)
		if d.Policies().Revision() == out.FinalRevision {
			out.DevicesOnFinal++
		}
	}
	for _, e := range log.ByKind(audit.KindBundle) {
		if e.Detail == "bundle.rejected" &&
			(e.Context["cause"] == "signature" || e.Context["cause"] == "decode") {
			out.AuditedCorrupt++
		}
	}
	if entries := log.Entries(); len(entries) > 0 {
		out.JournalTip = entries[len(entries)-1].Hash
	}
	if entries := dist.Ledger().Entries(); len(entries) > 0 {
		out.LedgerTip = entries[len(entries)-1].Hash
	}
	return out, nil
}

// RunE17 proves the distribution plane's robustness claims: 100% fleet
// convergence to the final signed revision under 30% loss plus
// symmetric and asymmetric partition windows; zero corrupted bundles
// activated (fail-closed count equals the injection count, every one
// audited); deltas measurably cheaper than fulls on the wire; and
// byte-identical audit journal and activation ledger at every engine
// parallelism.
func RunE17(p E17Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:    "E17",
		Title: "Signed bundle distribution: fail-closed activation under chaos",
		Headers: []string{"workers", "rev", "converged", "act_full", "act_delta",
			"rej_sig", "rej_dec", "rej_gap", "repairs", "pulls", "tip", "identical"},
	}
	var base E17Outcome
	for i, workers := range p.Workers {
		out, err := RunE17Workers(p, workers)
		if err != nil {
			return Result{}, err
		}
		if !out.Converged || out.DevicesOnFinal != p.Fleet {
			return Result{}, fmt.Errorf("e17: fleet not converged at workers=%d: %d/%d devices on revision %d",
				workers, out.DevicesOnFinal, p.Fleet, out.FinalRevision)
		}
		if got := out.RejectedSig + out.RejectedDecode; got != int64(p.Corruptions) {
			return Result{}, fmt.Errorf("e17: fail-closed count %d != injected corruptions %d (workers=%d)",
				got, p.Corruptions, workers)
		}
		if out.AuditedCorrupt != p.Corruptions {
			return Result{}, fmt.Errorf("e17: %d corruption rejections audited, want %d",
				out.AuditedCorrupt, p.Corruptions)
		}
		if out.RejectedOther != 0 {
			return Result{}, fmt.Errorf("e17: unexpected rejection causes (count %d) beyond signature/decode/gap",
				out.RejectedOther)
		}
		if out.ActivatedDelta == 0 || out.BytesDelta == 0 {
			return Result{}, fmt.Errorf("e17: no delta activations measured — delta path untested")
		}
		identical := "baseline"
		if i == 0 {
			base = out
		} else {
			identical = "yes"
			norm := out
			norm.Workers = base.Workers
			if norm != base {
				identical = "NO"
			}
		}
		tip := out.JournalTip
		if len(tip) > 12 {
			tip = tip[:12]
		}
		result.Rows = append(result.Rows, []string{
			itoa(workers), itoa(int(out.FinalRevision)), fmt.Sprint(out.Converged),
			itoa(int(out.ActivatedFull)), itoa(int(out.ActivatedDelta)),
			itoa(int(out.RejectedSig)), itoa(int(out.RejectedDecode)), itoa(int(out.RejectedGap)),
			itoa(int(out.Repairs)), itoa(int(out.Pulls)), tip, identical,
		})
	}
	// The byte-cost claim, measured on a representative revision step:
	// one full bundle vs the delta for the same two-policy change.
	fullLen, deltaLen, err := e17WireCost(p.PolicyCount)
	if err != nil {
		return Result{}, err
	}
	if deltaLen >= fullLen {
		return Result{}, fmt.Errorf("e17: delta bundle (%d B) not smaller than full (%d B)", deltaLen, fullLen)
	}
	result.Notes = append(result.Notes,
		fmt.Sprintf("fleet=%d revisions=%d (%d policies each) published every %v; 30%% loss %v–%v, symmetric partition %v–%v, one-way (ack-silencing) partition %v–%v",
			p.Fleet, p.Revisions, p.PolicyCount, p.PublishEvery,
			50*time.Millisecond, 150*time.Millisecond,
			60*time.Millisecond, 110*time.Millisecond,
			160*time.Millisecond, 210*time.Millisecond),
		fmt.Sprintf("convergence: %d/%d devices on the final signed revision; anti-entropy used %d repair pushes and %d pull repairs",
			p.Fleet, p.Fleet, base.Repairs, base.Pulls),
		fmt.Sprintf("fail-closed: %d corrupted pushes injected (rogue-signed + undecodable), %d rejected, %d activated; every rejection audited with its cause",
			p.Corruptions, base.RejectedSig+base.RejectedDecode, 0),
		fmt.Sprintf("wire cost: representative revision step is %d B as a delta vs %d B as a full bundle (%.0f%% saved; deltas carry only changed policies plus the coverage map); on-wire totals: full %d B, delta %d B",
			deltaLen, fullLen, 100*(1-float64(deltaLen)/float64(fullLen)), base.BytesFull, base.BytesDelta),
		"equal tip hashes over equal lengths = byte-identical audit journal AND activation ledger at every parallelism")
	return result, nil
}

// e17WireCost encodes one revision step both ways and returns the
// encoded sizes (full, delta).
func e17WireCost(policyCount int) (int, int, error) {
	pub := bundle.NewPublisher(bundle.HMACKey{ID: "probe", Secret: []byte("probe")})
	for rev := 1; rev <= 2; rev++ {
		pols, err := e17Revision(policyCount, rev)
		if err != nil {
			return 0, 0, err
		}
		if _, _, err := pub.Publish(pols); err != nil {
			return 0, 0, err
		}
	}
	full, err := pub.Full()
	if err != nil {
		return 0, 0, err
	}
	delta, ok := pub.DeltaFrom(1)
	if !ok {
		return 0, 0, fmt.Errorf("e17: probe delta unavailable")
	}
	fullBytes, err := bundle.Encode(full)
	if err != nil {
		return 0, 0, err
	}
	deltaBytes, err := bundle.Encode(delta)
	if err != nil {
		return 0, 0, err
	}
	return len(fullBytes), len(deltaBytes), nil
}
