package experiments

import (
	"math/rand"

	"repro/internal/guard"
	"repro/internal/statespace"
)

// E5Params configures the collection-formation experiment.
type E5Params struct {
	Seed   int64
	Trials int
	// HeatLimit is the collection-level heat budget.
	HeatLimit float64
}

func (p *E5Params) defaults() {
	if p.Trials <= 0 {
		p.Trials = 500
	}
	if p.HeatLimit <= 0 {
		p.HeatLimit = 100
	}
}

// RunE5 evaluates Section VI.D: collections of individually good
// devices can be collectively bad (the heat example), and an admission
// check at collection-formation time catches them — with effectiveness
// set by the offline advisor's accuracy. It also reports the
// centralized-vs-collaborative assessment message cost ablation.
func RunE5(p E5Params) (Result, error) {
	p.defaults()
	schema, err := statespace.NewSchema(statespace.Var("heat", 0, 79))
	if err != nil {
		return Result{}, err
	}
	assessor := &guard.AggregateAssessor{Rules: []guard.AggregateRule{
		{Name: "total-heat", Variable: "heat", Kind: guard.AggregateSum, Limit: p.HeatLimit},
	}}

	result := Result{
		ID:      "E5",
		Title:   "Collection-formation checks — aggregate heat violations vs advisor accuracy",
		Headers: []string{"collection size", "advisor hit rate", "unsafe formed%", "unsafe blocked%", "safe blocked%"},
	}

	for _, size := range []int{2, 4, 8} {
		for _, hitRate := range []float64{1.0, 0.9, 0.7, 0.0} {
			rng := rand.New(rand.NewSource(p.Seed + 5))
			controller := &guard.AdmissionController{
				Assessor:       assessor,
				HitRate:        hitRate,
				FalseAlarmRate: 0.02,
				Rand:           rng.Float64,
			}
			unsafeTotal, unsafeFormed, unsafeBlocked := 0, 0, 0
			safeTotal, safeBlocked := 0, 0
			for trial := 0; trial < p.Trials; trial++ {
				// Draw members individually good: heat < 80 each.
				members := make([]statespace.State, 0, size)
				sum := 0.0
				for m := 0; m < size; m++ {
					heat := rng.Float64() * 79
					sum += heat
					st, err := schema.StateFromMap(map[string]float64{"heat": heat})
					if err != nil {
						return Result{}, err
					}
					members = append(members, st)
				}
				unsafe := sum > p.HeatLimit
				admitted, _ := controller.Admit("candidate", members[:size-1], members[size-1])
				switch {
				case unsafe && admitted:
					unsafeTotal++
					unsafeFormed++
				case unsafe && !admitted:
					unsafeTotal++
					unsafeBlocked++
				case !unsafe && !admitted:
					safeTotal++
					safeBlocked++
				default:
					safeTotal++
				}
			}
			result.Rows = append(result.Rows, []string{
				itoa(size), ftoa(hitRate),
				pct(unsafeFormed, unsafeTotal),
				pct(unsafeBlocked, unsafeTotal),
				pct(safeBlocked, safeTotal),
			})
		}
	}

	// Ablation: collaborative (distributed partial summaries) vs
	// centralized assessment agree exactly; only message cost differs.
	rng := rand.New(rand.NewSource(p.Seed + 55))
	states := make([]statespace.State, 12)
	for i := range states {
		st, err := schema.StateFromMap(map[string]float64{"heat": rng.Float64() * 79})
		if err != nil {
			return Result{}, err
		}
		states[i] = st
	}
	central := assessor.Assess(states)
	groups := [][]statespace.State{states[:4], states[4:8], states[8:]}
	distributed, messages := assessor.AssessDistributed(groups)
	agree := len(central) == len(distributed)
	result.Notes = append(result.Notes,
		"paper expectation: 'the combination of many innocuous devices could become a dangerous device';",
		"a perfect advisor blocks all unsafe formations; a missing check (hit rate 0) forms them all",
	)
	result.Notes = append(result.Notes,
		"ablation: collaborative assessment agrees with centralized="+boolStr(agree)+
			" using "+itoa(messages)+" partial-summary messages across 3 groups")
	return result, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
