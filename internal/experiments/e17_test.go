package experiments

import (
	"strings"
	"testing"
)

// TestE17Converges runs the full acceptance gate: convergence under
// loss + symmetric + asymmetric partitions, exact fail-closed
// accounting, delta savings, and byte-identical journals across worker
// counts (RunE17 enforces all of it internally).
func TestE17Converges(t *testing.T) {
	res, err := RunE17(E17Params{Seed: 1})
	if err != nil {
		t.Fatalf("RunE17: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (workers 1, 2, 4)", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[2] != "true" {
			t.Errorf("row %d not converged: %v", i, row)
		}
		want := "yes"
		if i == 0 {
			want = "baseline"
		}
		if row[len(row)-1] != want {
			t.Errorf("row %d determinism column = %q, want %q", i, row[len(row)-1], want)
		}
	}
}

// TestE17RepairPathsExercised asserts the chaos schedule actually
// drives the anti-entropy machinery: repair pushes happen, and the
// one-way window forces the distributor to re-push to devices that
// already activated.
func TestE17RepairPathsExercised(t *testing.T) {
	out, err := RunE17Workers(E17Params{Seed: 1}, 1)
	if err != nil {
		t.Fatalf("RunE17Workers: %v", err)
	}
	if out.Repairs == 0 {
		t.Error("no repair pushes — chaos windows did not create lag")
	}
	if out.ActivatedFull == 0 || out.ActivatedDelta == 0 {
		t.Errorf("activation mix full=%d delta=%d — both paths must run",
			out.ActivatedFull, out.ActivatedDelta)
	}
	if out.LedgerLen == 0 || out.LedgerTip == "" {
		t.Error("activation ledger empty")
	}
}

// TestE17SeedVariation guards against a schedule that only works at
// one fault sampling: different seeds must still converge fail-closed.
func TestE17SeedVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in full mode only")
	}
	for _, seed := range []int64{2, 3} {
		out, err := RunE17Workers(E17Params{Seed: seed}, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Converged {
			t.Errorf("seed %d: fleet did not converge", seed)
		}
		if got := out.RejectedSig + out.RejectedDecode; got != 6 {
			t.Errorf("seed %d: fail-closed count %d, want 6", seed, got)
		}
	}
}

// TestE17TableShape sanity-checks the rendered result.
func TestE17TableShape(t *testing.T) {
	res, err := RunE17(E17Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"E17", "converged", "rej_sig", "identical"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
