package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/learning"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// E9Params configures the attack-resilience experiment.
type E9Params struct {
	Seed            int64
	TrainExamples   int
	EvalSteps       int
	WormDevices     int
	DeceptionTrials int
}

func (p *E9Params) defaults() {
	if p.TrainExamples <= 0 {
		p.TrainExamples = 600
	}
	if p.EvalSteps <= 0 {
		p.EvalSteps = 1500
	}
	if p.WormDevices <= 0 {
		p.WormDevices = 40
	}
	if p.DeceptionTrials <= 0 {
		p.DeceptionTrials = 200
	}
}

// RunE9 evaluates the Section IV threat catalogue end to end:
// (a) training-data poisoning degrades a learned state classifier and
// with it the state-space guard's protection; (b) a reprogramming worm
// spreads through vulnerable devices and the watchdog contains the
// infected population; (c) colluding deceptive sensors drag a plain
// mean far off while robust trust-weighted aggregation holds.
func RunE9(p E9Params) (Result, error) {
	p.defaults()
	result := Result{
		ID:      "E9",
		Title:   "Attack resilience — poisoning, reprogramming worm, sensor collusion",
		Headers: []string{"scenario", "condition", "metric", "value"},
	}
	if err := runE9Poisoning(p, &result); err != nil {
		return Result{}, err
	}
	if err := runE9Worm(p, &result); err != nil {
		return Result{}, err
	}
	if err := runE9Deception(p, &result); err != nil {
		return Result{}, err
	}
	if err := runE9Controls(p, &result); err != nil {
		return Result{}, err
	}
	result.Notes = append(result.Notes,
		"paper expectation: poisoned learning 'can lead to incorrect models being learnt' and harm leaks back in;",
		"a reprogrammed device 'may turn malevolent and convert other devices'; watchdog sweeps contain the infected;",
		"robust aggregation (ref [13]) keeps colluding sensors from corrupting the state estimate;",
		"a disarmed anomaly detector goes silent ('disarm existing controls') but its armed-status exposes the tampering")
	return result, nil
}

func runE9Poisoning(p E9Params, result *Result) error {
	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("load", 0, 100),
	)
	if err != nil {
		return err
	}
	truth := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") > 70 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})

	for _, flipRate := range []float64{0, 0.1, 0.25, 0.4} {
		rng := rand.New(rand.NewSource(p.Seed + 9))
		var examples []learning.Example
		for i := 0; i < p.TrainExamples; i++ {
			st, err := schema.NewState(rng.Float64()*100, rng.Float64()*100)
			if err != nil {
				return err
			}
			examples = append(examples, learning.Example{
				State: st,
				Bad:   truth.Classify(st) == statespace.ClassBad,
			})
		}
		poisoned, err := learning.Corruption{LabelFlipProb: flipRate, Rand: rng}.Apply(examples)
		if err != nil {
			return err
		}
		model, err := learning.NewOnlineClassifier(schema, 0.5)
		if err != nil {
			return err
		}
		if err := model.TrainAll(poisoned, 25, rng); err != nil {
			return err
		}

		// The learned classifier powers a state-space guard on a
		// device drifting toward heat; measure true bad-state entries.
		g := &guard.StateSpaceGuard{Classifier: model.AsClassifier()}
		st, err := schema.StateFromMap(map[string]float64{"heat": 40, "load": 40})
		if err != nil {
			return err
		}
		badSteps := 0
		for i := 0; i < p.EvalSteps; i++ {
			delta := statespace.Delta{"heat": rng.Float64()*8 - 3, "load": rng.Float64()*6 - 3}
			next, err := st.Apply(delta)
			if err != nil {
				return err
			}
			v := g.Check(guard.ActionContext{
				Actor: "dev", Action: policy.Action{Name: "work", Effect: delta},
				State: st, Next: next,
			})
			if !v.Allowed() {
				continue
			}
			st = next
			if truth.Classify(st) == statespace.ClassBad {
				badSteps++
			}
		}
		result.Rows = append(result.Rows,
			[]string{"poisoning", fmt.Sprintf("flip=%.2f", flipRate), "classifier accuracy%", ftoa(accuracyAgainstTruth(model, schema, truth) * 100)},
			[]string{"poisoning", fmt.Sprintf("flip=%.2f", flipRate), "bad-state rate%", pct(badSteps, p.EvalSteps)},
		)
	}
	return nil
}

func accuracyAgainstTruth(model *learning.OnlineClassifier, schema *statespace.Schema, truth statespace.Classifier) float64 {
	rng := rand.New(rand.NewSource(424242))
	correct, total := 0, 1000
	for i := 0; i < total; i++ {
		st, err := schema.NewState(rng.Float64()*100, rng.Float64()*100)
		if err != nil {
			continue
		}
		if model.PredictBad(st) == (truth.Classify(st) == statespace.ClassBad) {
			correct++
		}
	}
	return float64(correct) / float64(total)
}

func runE9Worm(p E9Params, result *Result) error {
	schema, err := statespace.NewSchema(statespace.Var("aggression", 0, 100))
	if err != nil {
		return err
	}
	for _, vuln := range []float64{0.1, 0.3, 0.6} {
		rng := rand.New(rand.NewSource(p.Seed + 90))
		ks, err := guard.NewKillSwitch([]byte("e9"))
		if err != nil {
			return err
		}
		var devices []*device.Device
		for i := 0; i < p.WormDevices; i++ {
			d, err := device.New(device.Config{
				ID:         fmt.Sprintf("w%02d", i),
				Initial:    schema.Origin(),
				KillSwitch: ks,
				Guard:      guard.AllowAll{},
			})
			if err != nil {
				return err
			}
			devices = append(devices, d)
		}
		payload := []policy.Policy{{
			ID: "rogue", EventType: "*", Modality: policy.ModalityDo, Priority: 99,
			Action: policy.Action{Name: "rampage", Effect: statespace.Delta{"aggression": 100}},
		}}
		worm := attack.Worm{
			Attack:   attack.Reprogram{Payload: payload, DisableGuard: true},
			VulnProb: vuln,
			Rand:     rng,
		}
		peers := make([]attack.Target, len(devices)-1)
		for i, d := range devices[1:] {
			peers[i] = d
		}
		infected, err := worm.Spread(devices[0], peers, 5)
		if err != nil {
			return err
		}

		// Infected devices act once, entering the bad (high
		// aggression) state; the watchdog then sweeps.
		for _, d := range devices {
			_, _ = d.HandleEvent(policy.Event{Type: "tick"})
		}
		watchdog := &guard.Watchdog{
			Classifier: statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
				if st.MustGet("aggression") >= 80 {
					return statespace.ClassBad
				}
				return statespace.ClassGood
			}),
			Switch: ks,
		}
		targets := make([]guard.Deactivatable, len(devices))
		for i, d := range devices {
			targets[i] = d
		}
		deactivated, _ := watchdog.Sweep(targets)
		result.Rows = append(result.Rows,
			[]string{"worm", fmt.Sprintf("vuln=%.1f", vuln), "infected", itoa(len(infected))},
			[]string{"worm", fmt.Sprintf("vuln=%.1f", vuln), "contained by watchdog", itoa(len(deactivated))},
		)
	}
	return nil
}

func runE9Deception(p E9Params, result *Result) error {
	rng := rand.New(rand.NewSource(p.Seed + 99))
	var plainErr, robustErr float64
	for i := 0; i < p.DeceptionTrials; i++ {
		truth := 20 + rng.Float64()*10
		readings := make([]float64, 0, 10)
		for h := 0; h < 7; h++ {
			readings = append(readings, truth+rng.Float64()*2-1)
		}
		for c := 0; c < 3; c++ {
			readings = append(readings, 90+rng.Float64()*5) // colluders
		}
		robust, _ := attack.RobustAggregate(readings, 10)
		plain := attack.PlainMean(readings)
		plainErr += math.Abs(plain - truth)
		robustErr += math.Abs(robust - truth)
	}
	result.Rows = append(result.Rows,
		[]string{"deception", "3/10 colluders", "plain mean error", ftoa(plainErr / float64(p.DeceptionTrials))},
		[]string{"deception", "3/10 colluders", "robust aggregate error", ftoa(robustErr / float64(p.DeceptionTrials))},
	)
	return nil
}

// runE9Controls measures the "disarm existing controls" step of the
// reprogramming attack: an anomaly detector trained on normal fleet
// states flags a rampaging device while armed, is silent once the worm
// disarms it, and the disarm itself is observable as a tamper signal.
func runE9Controls(p E9Params, result *Result) error {
	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("load", 0, 100),
	)
	if err != nil {
		return err
	}
	detector, err := learning.NewAnomalyDetector(schema, 4, 20)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(p.Seed + 999))
	for i := 0; i < 300; i++ {
		st, err := schema.StateFromMap(map[string]float64{
			"heat": 40 + rng.NormFloat64()*4,
			"load": 50 + rng.NormFloat64()*4,
		})
		if err != nil {
			return err
		}
		if err := detector.Observe(st); err != nil {
			return err
		}
	}
	rampage, err := schema.StateFromMap(map[string]float64{"heat": 99, "load": 99})
	if err != nil {
		return err
	}

	armedFlagged := detector.Anomalous(rampage)
	detector.Disarm() // the worm's control-disabling step
	disarmedFlagged := detector.Anomalous(rampage)
	tamperVisible := !detector.Armed()

	result.Rows = append(result.Rows,
		[]string{"controls", "armed detector", "rampage flagged", boolRow(armedFlagged)},
		[]string{"controls", "disarmed by worm", "rampage flagged", boolRow(disarmedFlagged)},
		[]string{"controls", "disarmed by worm", "tamper visible via armed-status", boolRow(tamperVisible)},
	)
	return nil
}

func boolRow(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
