package server

import (
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/telemetry"
)

// SpanNode is one span with its children — the reassembled causal
// tree GET /v1/decisions/{traceID} returns.
type SpanNode struct {
	telemetry.Span
	Children []*SpanNode `json:"children,omitempty"`
}

// DecisionView is the full record of one decision: the span tree
// from intake through guard verdicts to execution, joined with the
// audit entries that decision stamped.
type DecisionView struct {
	TraceID string `json:"traceId"`
	// Connected reports whether the spans form a single tree under
	// one root — the structural invariant a complete decision trace
	// satisfies (telemetry.CheckConnected).
	Connected bool `json:"connected"`
	// Issue holds the connectivity error when Connected is false.
	Issue string `json:"issue,omitempty"`
	// Spans is the total span count in the tree.
	Spans int `json:"spans"`
	// Roots holds the tree (one root for a connected decision).
	Roots []*SpanNode `json:"roots"`
	// Audit lists the journal entries carrying this trace ID, in
	// journal order — the decision's durable footprint.
	Audit []audit.Entry `json:"audit,omitempty"`
}

func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/decisions/")
	if raw == "" || strings.Contains(raw, "/") {
		writeError(w, http.StatusBadRequest, "want /v1/decisions/{traceID}")
		return
	}
	id, err := strconv.ParseUint(raw, 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id %q: %v", raw, err)
		return
	}
	trace := telemetry.TraceID(id)
	spans := s.tracer.TraceSpans(trace)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no spans for trace %s (expired from the ring, or never created)", trace)
		return
	}

	view := DecisionView{
		TraceID: trace.String(),
		Spans:   len(spans),
		Roots:   buildSpanTree(spans),
		Audit:   s.auditForTrace(trace.String()),
	}
	if err := telemetry.CheckConnected(spans); err != nil {
		view.Issue = err.Error()
	} else {
		view.Connected = true
	}
	writeJSON(w, http.StatusOK, view)
}

// buildSpanTree links spans into parent/child trees. Spans whose
// parent is unknown (zero, or fallen out of the ring) become roots,
// so a damaged trace still renders rather than vanishing.
func buildSpanTree(spans []Span) []*SpanNode {
	nodes := make(map[telemetry.SpanID]*SpanNode, len(spans))
	for _, sp := range spans {
		nodes[sp.ID] = &SpanNode{Span: sp}
	}
	var roots []*SpanNode
	for _, sp := range spans {
		n := nodes[sp.ID]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	// Deterministic order: children and roots by start time, then ID.
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].ID < ns[j].ID
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// Span aliases telemetry.Span for buildSpanTree's signature.
type Span = telemetry.Span

// auditForTrace returns the journal entries stamped with this trace
// ID (guard denials and executed actions carry Context["trace"]).
func (s *Server) auditForTrace(trace string) []audit.Entry {
	var out []audit.Entry
	for _, e := range s.log.Entries() {
		if e.Context["trace"] == trace {
			out = append(out, e)
		}
	}
	return out
}
