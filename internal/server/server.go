// Package server is the live control plane over a collective: a
// long-lived HTTP/JSON service through which operators submit
// commands, follow each decision's causal trace, stream the
// hash-chained audit journal, and inspect fleet state while the
// fleet runs.
//
// The paper's oversight argument (Sections VI–VIII) presupposes that
// humans can observe and interrogate every decision the guarded
// pipeline makes; a batch runner only allows that post-hoc. This
// package makes the pipeline inspectable in flight: every POST
// /v1/commands is admission-gated, traced from intake to audit entry,
// and measured into a decision-latency histogram, so "is the fleet
// still under oversight, and how fast does oversight decide?" are
// live queries instead of forensic ones.
//
// Routes:
//
//	POST /v1/commands           submit a command (admitted through the
//	                            priority classes), returns the decision
//	                            summary and its trace ID
//	GET  /v1/decisions/{trace}  the reassembled span tree for one
//	                            decision — intake → policy evaluate →
//	                            guard verdicts → execution — joined
//	                            with its trace-stamped audit entries
//	GET  /v1/audit/tail         NDJSON stream of the hash-chained
//	                            journal; every streamed prefix carries
//	                            its anchor hash and verifies with
//	                            audit.VerifyTail
//	GET  /v1/fleet              per-device state, policy epoch and
//	                            bundle revision
//	GET  /metrics, /traces, /healthz — the telemetry endpoint,
//	                            unchanged from batch runs
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// Config assembles a Server over an already-built collective.
type Config struct {
	// Collective is the fleet the server fronts (required).
	Collective *core.Collective
	// Audit is the shared journal /v1/audit/tail streams (required).
	Audit *audit.Log
	// Registry backs /metrics and the server.* instrument family; nil
	// serves empty metrics and skips instrumentation.
	Registry *telemetry.Registry
	// Tracer backs /v1/decisions and /traces; nil disables decision
	// reassembly (submissions still work, untraced).
	Tracer *telemetry.Tracer
	// Admission, when set, gates every command target through the
	// priority classes before delivery; sheds are typed, counted and
	// reported in the response, never silent.
	Admission *admission.Controller
	// Distributor, when set, adds the bundle plane to /v1/fleet: one
	// row per org root with its published revision and lagging count,
	// plus each device's per-root activated revisions.
	Distributor *core.Distributor
	// Now supplies wall time for latency measurement; nil uses
	// time.Now.
	Now func() time.Time
}

// Server is the live control plane. Start it with Start, stop it
// with Shutdown (drained) or Close (immediate).
type Server struct {
	collective *core.Collective
	log        *audit.Log
	registry   *telemetry.Registry
	tracer     *telemetry.Tracer
	admission  *admission.Controller
	dist       *core.Distributor
	now        func() time.Time

	handler http.Handler

	cmdOK, cmdShed, cmdErr *telemetry.Counter
	decisionMs             *telemetry.Histogram
	auditStreamed          *telemetry.Counter
	auditStreams           *telemetry.Gauge
	streams                atomic.Int64

	mu  sync.Mutex
	ln  net.Listener
	srv *http.Server
}

// New builds a Server; it does not listen until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Collective == nil {
		return nil, errors.New("server: a collective is required")
	}
	if cfg.Audit == nil {
		return nil, errors.New("server: an audit log is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		collective: cfg.Collective,
		log:        cfg.Audit,
		registry:   cfg.Registry,
		tracer:     cfg.Tracer,
		admission:  cfg.Admission,
		dist:       cfg.Distributor,
		now:        cfg.Now,
	}
	if reg := cfg.Registry; reg != nil {
		s.cmdOK = reg.Counter("server.commands", "result", "ok")
		s.cmdShed = reg.Counter("server.commands", "result", "shed")
		s.cmdErr = reg.Counter("server.commands", "result", "error")
		s.decisionMs = reg.Histogram("server.decision_ms")
		s.auditStreamed = reg.Counter("server.audit_streamed")
		s.auditStreams = reg.Gauge("server.audit_streams")
	}

	// The control plane extends the telemetry mux, so /metrics,
	// /traces and /healthz serve exactly what batch runs expose.
	mux := telemetry.Handler(cfg.Registry, cfg.Tracer)
	mux.HandleFunc("/v1/commands", s.route("commands", s.handleCommands))
	mux.HandleFunc("/v1/decisions/", s.route("decisions", s.handleDecision))
	mux.HandleFunc("/v1/audit/tail", s.route("audit_tail", s.handleAuditTail))
	mux.HandleFunc("/v1/fleet", s.route("fleet", s.handleFleet))
	s.handler = mux
	return s, nil
}

// Handler returns the full control-plane route set, for tests or
// embedding into an existing server.
func (s *Server) Handler() http.Handler { return s.handler }

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	srv := s.srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully: the listener closes, in-
// flight requests (including open audit-tail streams, which observe
// the request context) drain until ctx expires, then the remainder
// is force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	if err != nil {
		_ = srv.Close()
	}
	return err
}

// Close stops the server immediately, abandoning in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route wraps a handler with per-route request accounting
// (server.requests{route,code}).
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	if s.registry == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.registry.Counter("server.requests", "route", name, "code", strconv.Itoa(rec.code)).Inc()
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform JSON error shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// CommandRequest is the POST /v1/commands body.
type CommandRequest struct {
	// Type is the event type delivered to the fleet (required).
	Type string `json:"type"`
	// Target is one device ID, or "*"/"" for a fleet-wide broadcast.
	Target string `json:"target"`
	// Source labels the submitter (default "operator").
	Source string `json:"source,omitempty"`
	// Attrs carries the event's numeric attributes.
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Labels carries string attributes; a telemetry span context here
	// parents the decision under the caller's trace.
	Labels map[string]string `json:"labels,omitempty"`
}

// ExecutionView summarizes one directed action's outcome.
type ExecutionView struct {
	Action   string `json:"action"`
	Allowed  bool   `json:"allowed"`
	Executed bool   `json:"executed"`
	Guard    string `json:"guard,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ShedView names one target the admission controller refused, with
// its typed cause.
type ShedView struct {
	Target string `json:"target"`
	Cause  string `json:"cause"`
}

// CommandResponse is the POST /v1/commands reply.
type CommandResponse struct {
	// TraceID keys GET /v1/decisions/{traceId} ("" without a tracer).
	TraceID string `json:"traceId,omitempty"`
	// Executed, Denied and Errors tally the fleet's executions.
	Executed int `json:"executed"`
	Denied   int `json:"denied"`
	Errors   int `json:"errors"`
	// Shed lists targets refused by admission (typed, never silent).
	Shed []ShedView `json:"shed,omitempty"`
	// Devices maps device ID to its execution outcomes.
	Devices map[string][]ExecutionView `json:"devices,omitempty"`
	// LatencyMs is the end-to-end decision latency the server
	// measured (intake to final verdict), also observed into the
	// server.decision_ms histogram.
	LatencyMs float64 `json:"latencyMs"`
}

// maxCommandBody bounds the request body; commands are small.
const maxCommandBody = 1 << 20

func (s *Server) handleCommands(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CommandRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCommandBody))
	if err := dec.Decode(&req); err != nil {
		s.cmdErr.Inc()
		writeError(w, http.StatusBadRequest, "bad command body: %v", err)
		return
	}
	if req.Type == "" {
		s.cmdErr.Inc()
		writeError(w, http.StatusBadRequest, "command needs a type")
		return
	}
	if req.Source == "" {
		req.Source = "operator"
	}

	// Resolve targets up front so an unknown device is a 404, not a
	// half-delivered broadcast.
	var targets []string
	if req.Target == "" || req.Target == "*" {
		for _, d := range s.collective.Devices() {
			targets = append(targets, d.ID())
		}
	} else {
		if _, ok := s.collective.Device(req.Target); !ok {
			s.cmdErr.Inc()
			writeError(w, http.StatusNotFound, "unknown device %q", req.Target)
			return
		}
		targets = []string{req.Target}
	}

	start := s.now()
	span := s.tracer.StartSpan("server.command", req.Source, telemetry.Extract(req.Labels))
	span.SetAttr("event", req.Type)
	span.SetAttr("target", req.Target)

	ev := policy.Event{Type: req.Type, Source: req.Source, Time: start, Attrs: req.Attrs}
	ev.Labels = cloneLabels(req.Labels)
	if sc := span.Context(); sc.Valid() {
		ev.Labels = telemetry.Inject(sc, ev.Labels)
	}

	resp := CommandResponse{Devices: make(map[string][]ExecutionView)}
	for _, id := range targets {
		if s.admission != nil {
			if err := s.admission.Allow(id, admission.ClassHuman); err != nil {
				resp.Shed = append(resp.Shed, ShedView{Target: id, Cause: admission.CauseOf(err)})
				continue
			}
		}
		execs, err := s.collective.Deliver(id, ev)
		if err != nil {
			// The member left or deactivated between resolution and
			// delivery.
			resp.Errors++
			resp.Devices[id] = []ExecutionView{{Error: err.Error()}}
			continue
		}
		views := make([]ExecutionView, 0, len(execs))
		for _, e := range execs {
			v := ExecutionView{
				Action:   e.Action.Name,
				Allowed:  e.Verdict.Allowed(),
				Executed: e.Executed(),
				Guard:    e.Verdict.Guard,
				Reason:   e.Verdict.Reason,
			}
			if e.Err != nil {
				v.Error = e.Err.Error()
			}
			switch {
			case e.Executed():
				resp.Executed++
			case !e.Verdict.Allowed():
				resp.Denied++
			default:
				resp.Errors++
			}
			views = append(views, v)
		}
		if len(views) > 0 {
			resp.Devices[id] = views
		}
	}
	if sc := span.Context(); sc.Valid() {
		resp.TraceID = sc.Trace.String()
		span.SetAttr("executed", strconv.Itoa(resp.Executed))
		span.SetAttr("denied", strconv.Itoa(resp.Denied))
	}
	span.Finish()

	latency := s.now().Sub(start)
	resp.LatencyMs = float64(latency.Microseconds()) / 1000
	s.decisionMs.Observe(resp.LatencyMs)

	status := http.StatusOK
	switch {
	case len(resp.Shed) == len(targets) && len(targets) > 0:
		// Every target was shed: the command did not enter the fleet.
		s.cmdShed.Inc()
		status = http.StatusTooManyRequests
	case resp.Errors > 0 && resp.Executed == 0 && resp.Denied == 0:
		s.cmdErr.Inc()
	default:
		s.cmdOK.Inc()
	}
	writeJSON(w, status, resp)
}

// cloneLabels copies the caller's label map so trace injection never
// aliases request memory.
func cloneLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels)+2)
	for k, v := range labels {
		out[k] = v
	}
	return out
}
