package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/audit"
)

// TailHeader is the first NDJSON line of GET /v1/audit/tail. It
// anchors everything that follows: the entries streamed after it
// start at index From and chain onto PrevHash, so the client can
// hand any received prefix to audit.VerifyTail(From, PrevHash, ...)
// and prove it intact without ever holding the whole journal.
type TailHeader struct {
	From     int    `json:"from"`
	PrevHash string `json:"prevHash"`
}

// Tail streaming knobs: how often follow-mode polls the journal, and
// the floor a client-supplied poll interval is clamped to.
const (
	defaultTailPoll = 100 * time.Millisecond
	minTailPoll     = 5 * time.Millisecond
)

// handleAuditTail streams the hash-chained journal as NDJSON: one
// TailHeader line, then one audit.Entry per line. With ?follow=true
// the stream stays open and ships new entries as they are appended,
// until the client disconnects. Entries are copied out of the log
// under its lock and encoded whole, so a concurrent writer can never
// tear an entry mid-line.
func (s *Server) handleAuditTail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	from := 0
	if v := q.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from %q", v)
			return
		}
		from = n
	}
	follow := q.Get("follow") == "true" || q.Get("follow") == "1"
	poll := defaultTailPoll
	if v := q.Get("poll"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "bad poll %q", v)
			return
		}
		if poll = time.Duration(ms) * time.Millisecond; poll < minTailPoll {
			poll = minTailPoll
		}
	}

	entries, prev := s.log.EntriesSince(from)
	// Clamp the echoed From the way EntriesSince clamps its argument,
	// so header + entries always form a verifiable pair.
	if from > s.log.Len() {
		from = s.log.Len()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(TailHeader{From: from, PrevHash: prev}); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	writeBatch := func(batch []audit.Entry) bool {
		for _, e := range batch {
			if err := enc.Encode(e); err != nil {
				return false
			}
		}
		s.auditStreamed.Add(int64(len(batch)))
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !writeBatch(entries) {
		return
	}
	next := from + len(entries)
	if !follow {
		return
	}

	s.auditStreams.Set(float64(s.streams.Add(1)))
	defer func() { s.auditStreams.Set(float64(s.streams.Add(-1))) }()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			batch, _ := s.log.EntriesSince(next)
			if len(batch) == 0 {
				continue
			}
			if !writeBatch(batch) {
				return
			}
			next += len(batch)
		}
	}
}
