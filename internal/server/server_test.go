package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// testFleet bundles everything a control-plane test needs.
type testFleet struct {
	srv        *Server
	base       string
	collective *core.Collective
	log        *audit.Log
	reg        *telemetry.Registry
	tracer     *telemetry.Tracer
}

// newTestFleet builds a 3-device guarded collective (heat/fuel state,
// bad above heat 150) behind a started control-plane server. Each
// device runs the policy "on tick: heat += 15", so repeated commands
// eventually drive the state-space guard to deny.
func newTestFleet(t *testing.T, adm *admission.Controller) *testFleet {
	t.Helper()
	schema, err := statespace.NewSchema(
		statespace.Var("heat", 0, 200),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 150 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	log := audit.New()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	collective, err := core.New(core.Config{
		Name:       "test-fleet",
		Audit:      log,
		KillSecret: []byte("test-secret"),
		Classifier: classifier,
		Telemetry:  reg,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	initial, err := schema.StateFromMap(map[string]float64{"fuel": 100})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	policies, err := policylang.CompileSource(
		"policy work:\n    on tick\n    do run-load category work effect heat += 15",
		policy.OriginHuman)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	for i := 0; i < 3; i++ {
		d, err := device.New(device.Config{
			ID:           fmt.Sprintf("dev-%d", i),
			Type:         "worker",
			Organization: "test",
			Initial:      initial,
			Guard: core.StandardPipeline(core.SafetyConfig{
				Audit:      log,
				Classifier: classifier,
				Telemetry:  reg,
				Tracer:     tracer,
			}),
			KillSwitch: collective.KillSwitch(),
			Audit:      log,
			Telemetry:  reg,
			Tracer:     tracer,
		})
		if err != nil {
			t.Fatalf("device.New: %v", err)
		}
		for _, p := range policies {
			if err := d.Policies().Add(p); err != nil {
				t.Fatalf("Add policy: %v", err)
			}
		}
		if err := collective.AddDevice(d, nil); err != nil {
			t.Fatalf("AddDevice: %v", err)
		}
	}
	srv, err := New(Config{
		Collective: collective,
		Audit:      log,
		Registry:   reg,
		Tracer:     tracer,
		Admission:  adm,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return &testFleet{
		srv: srv, base: "http://" + srv.Addr(),
		collective: collective, log: log, reg: reg, tracer: tracer,
	}
}

func postCommand(t *testing.T, base string, req CommandRequest) (int, CommandResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/commands", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/commands: %v", err)
	}
	defer resp.Body.Close()
	var out CommandResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode command response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// flattenTree returns every span in the tree, depth-first.
func flattenTree(roots []*SpanNode) []telemetry.Span {
	var out []telemetry.Span
	var walk func(*SpanNode)
	walk = func(n *SpanNode) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// TestCommandDecisionEndToEnd is the acceptance test: a command
// submitted over POST /v1/commands comes back with a trace ID, and
// GET /v1/decisions/{traceID} returns one connected span tree
// running intake → device.handle → execution → guard verdicts,
// joined with the audit entries the decision stamped.
func TestCommandDecisionEndToEnd(t *testing.T) {
	f := newTestFleet(t, nil)

	code, resp := postCommand(t, f.base, CommandRequest{Type: "tick", Target: "*", Source: "tester"})
	if code != http.StatusOK {
		t.Fatalf("POST /v1/commands = %d (%+v)", code, resp)
	}
	if resp.TraceID == "" {
		t.Fatal("command response has no trace ID")
	}
	if resp.Executed != 3 {
		t.Errorf("executed = %d, want 3 (one per device)", resp.Executed)
	}
	if len(resp.Devices) != 3 {
		t.Errorf("device outcomes = %d, want 3", len(resp.Devices))
	}
	for id, execs := range resp.Devices {
		for _, e := range execs {
			if !e.Executed || e.Action != "run-load" {
				t.Errorf("device %s: outcome %+v, want executed run-load", id, e)
			}
		}
	}
	if resp.LatencyMs < 0 {
		t.Errorf("latencyMs = %g, want >= 0", resp.LatencyMs)
	}

	var view DecisionView
	if code := getJSON(t, f.base+"/v1/decisions/"+resp.TraceID, &view); code != http.StatusOK {
		t.Fatalf("GET /v1/decisions = %d", code)
	}
	if !view.Connected {
		t.Fatalf("decision tree not connected: %s", view.Issue)
	}
	if len(view.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(view.Roots))
	}
	if got := view.Roots[0].Name; got != "server.command" {
		t.Errorf("root span = %q, want server.command", got)
	}

	flat := flattenTree(view.Roots)
	if len(flat) != view.Spans {
		t.Errorf("tree holds %d spans, view.Spans = %d", len(flat), view.Spans)
	}
	// The flattened tree must re-verify as a single connected trace.
	if err := telemetry.CheckConnected(flat); err != nil {
		t.Errorf("CheckConnected(tree spans): %v", err)
	}
	names := map[string]int{}
	for _, sp := range flat {
		names[sp.Name]++
	}
	for _, want := range []string{"server.command", "device.handle", "device.execute", "guard.check"} {
		if names[want] == 0 {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}
	if names["device.handle"] != 3 {
		t.Errorf("device.handle spans = %d, want 3", names["device.handle"])
	}

	// The decision's audit footprint: every joined entry carries the
	// trace ID, and the executed actions appear in the journal.
	if len(view.Audit) == 0 {
		t.Error("decision has no audit entries")
	}
	for _, e := range view.Audit {
		if e.Context["trace"] != resp.TraceID {
			t.Errorf("audit entry %d carries trace %q, want %q", e.Seq, e.Context["trace"], resp.TraceID)
		}
	}

	// Unknown and malformed trace IDs.
	var eb errorBody
	if code := getJSON(t, f.base+"/v1/decisions/dead00beef00", &eb); code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", code)
	}
	if code := getJSON(t, f.base+"/v1/decisions/nothex!", &eb); code != http.StatusBadRequest {
		t.Errorf("bad trace id = %d, want 400", code)
	}
}

// TestCommandValidation covers the error paths of POST /v1/commands.
func TestCommandValidation(t *testing.T) {
	f := newTestFleet(t, nil)

	resp, err := http.Post(f.base+"/v1/commands", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}

	if code, _ := postCommand(t, f.base, CommandRequest{Target: "dev-0"}); code != http.StatusBadRequest {
		t.Errorf("missing type = %d, want 400", code)
	}
	if code, _ := postCommand(t, f.base, CommandRequest{Type: "tick", Target: "ghost"}); code != http.StatusNotFound {
		t.Errorf("unknown target = %d, want 404", code)
	}
	getResp, err := http.Get(f.base + "/v1/commands")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/commands = %d, want 405", getResp.StatusCode)
	}
}

// TestCommandAdmissionShed verifies the admission gate: once the
// per-recipient rate is exhausted, targets are shed with a typed
// cause, and a fully-shed command returns 429.
func TestCommandAdmissionShed(t *testing.T) {
	adm, err := admission.New(admission.Config{Rate: 0.001, Burst: 1})
	if err != nil {
		t.Fatalf("admission.New: %v", err)
	}
	f := newTestFleet(t, adm)

	// Burst 1: the first command per device is admitted...
	code, resp := postCommand(t, f.base, CommandRequest{Type: "tick", Target: "*"})
	if code != http.StatusOK || resp.Executed != 3 {
		t.Fatalf("first command = %d, executed %d; want 200 and 3", code, resp.Executed)
	}
	// ...and the second is rate-shed everywhere.
	code, resp = postCommand(t, f.base, CommandRequest{Type: "tick", Target: "*"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("exhausted command = %d, want 429", code)
	}
	if len(resp.Shed) != 3 {
		t.Fatalf("shed = %d targets, want 3", len(resp.Shed))
	}
	for _, sh := range resp.Shed {
		if sh.Cause != "rate_limited" {
			t.Errorf("shed cause = %q, want rate_limited", sh.Cause)
		}
	}
	if resp.Executed != 0 {
		t.Errorf("executed despite shed: %d", resp.Executed)
	}
}

// TestFleetView checks GET /v1/fleet reflects per-device state,
// policy counts and the journal length.
func TestFleetView(t *testing.T) {
	f := newTestFleet(t, nil)
	if _, resp := postCommand(t, f.base, CommandRequest{Type: "tick", Target: "dev-1"}); resp.Executed != 1 {
		t.Fatalf("setup command executed = %d, want 1", resp.Executed)
	}

	var view FleetView
	if code := getJSON(t, f.base+"/v1/fleet", &view); code != http.StatusOK {
		t.Fatalf("GET /v1/fleet = %d", code)
	}
	if view.Name != "test-fleet" || view.Total != 3 || view.Active != 3 {
		t.Errorf("fleet summary = %+v, want test-fleet 3/3", view)
	}
	if view.AuditLen != f.log.Len() {
		t.Errorf("auditLen = %d, want %d", view.AuditLen, f.log.Len())
	}
	states := map[string]map[string]float64{}
	for _, d := range view.Devices {
		states[d.ID] = d.State
		if d.Policies != 1 {
			t.Errorf("device %s policies = %d, want 1", d.ID, d.Policies)
		}
		// Locally-authored policies are not bundle-managed.
		if d.PolicyRevision != 0 {
			t.Errorf("device %s policyRevision = %d, want 0", d.ID, d.PolicyRevision)
		}
	}
	if got := states["dev-1"]["heat"]; got != 15 {
		t.Errorf("dev-1 heat = %g, want 15 after one tick", got)
	}
	if got := states["dev-0"]["heat"]; got != 0 {
		t.Errorf("dev-0 heat = %g, want 0 (not targeted)", got)
	}
}

// TestServerMetricsAndNames verifies the server observes its own
// instrument family — request counters, command results and the
// decision-latency histogram with quantiles — and that every metric
// the full stack emitted is declared in the telemetry names table.
func TestServerMetricsAndNames(t *testing.T) {
	f := newTestFleet(t, nil)
	for i := 0; i < 5; i++ {
		postCommand(t, f.base, CommandRequest{Type: "tick", Target: "dev-0"})
	}
	var fv FleetView
	getJSON(t, f.base+"/v1/fleet", &fv)

	resp, err := http.Get(f.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		`server_commands{result="ok"} 5`,
		`server_requests{code="200",route="fleet"} 1`,
		"server_decision_ms_count 5",
		`server_decision_ms{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := telemetry.CheckNames(f.reg.Names()); err != nil {
		t.Errorf("CheckNames after full server exercise: %v", err)
	}
}

// TestServerGracefulShutdown verifies Shutdown drains and stops.
func TestServerGracefulShutdown(t *testing.T) {
	f := newTestFleet(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(f.base + "/healthz"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

// TestNewValidation checks the required-field errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without collective succeeded")
	}
	if _, err := New(Config{Collective: &core.Collective{}}); err == nil {
		t.Error("New without audit log succeeded")
	}
}

// TestFleetViewRoots checks the coalition bundle plane surfaces in
// /v1/fleet: one row per org root with its published revision and
// lagging count, and each device's per-root activated revisions.
func TestFleetViewRoots(t *testing.T) {
	f := newTestFleet(t, nil)
	usKey := bundle.HMACKey{ID: "us-root", Secret: []byte("us secret")}
	ukKey := bundle.HMACKey{ID: "uk-root", Secret: []byte("uk secret")}
	dist, err := core.NewDistributor(core.DistributorConfig{
		Collective: f.collective,
		Roots: []core.RootConfig{
			{Org: "us", Signer: usKey},
			{Org: "uk", Signer: ukKey},
		},
	})
	if err != nil {
		t.Fatalf("NewDistributor: %v", err)
	}
	ring := bundle.NewKeyRing().
		Add(usKey.ID, usKey, bundle.Scope{Org: "us"}).
		Add(ukKey.ID, ukKey, bundle.Scope{Org: "uk"})
	for id, orgs := range map[string][]string{
		"dev-0": {"us"}, "dev-1": {"uk"}, "dev-2": {"us", "uk"},
	} {
		if err := dist.EnrollRoots(id, ring, orgs...); err != nil {
			t.Fatalf("EnrollRoots %s: %v", id, err)
		}
	}
	publish := func(org, id string) {
		t.Helper()
		pols, err := policylang.CompileSource(
			"policy "+org+"."+id+":\n    on tick\n    do run-load category work effect heat += 1",
			policy.OriginHuman)
		if err != nil {
			t.Fatalf("CompileSource: %v", err)
		}
		if _, err := dist.PublishRoot(org, pols); err != nil {
			t.Fatalf("PublishRoot %s: %v", org, err)
		}
	}
	publish("us", "pa")
	publish("uk", "pa")
	publish("uk", "pb")

	srv, err := New(Config{Collective: f.collective, Audit: f.log, Distributor: dist})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	var view FleetView
	if code := getJSON(t, "http://"+srv.Addr()+"/v1/fleet", &view); code != http.StatusOK {
		t.Fatalf("GET /v1/fleet = %d", code)
	}
	wantRoots := map[string]uint64{"us": 1, "uk": 2}
	if len(view.Roots) != 2 {
		t.Fatalf("roots = %+v, want 2 rows", view.Roots)
	}
	for _, rv := range view.Roots {
		if want, ok := wantRoots[rv.Org]; !ok || rv.Revision != want {
			t.Errorf("root %q at revision %d, want %d", rv.Org, rv.Revision, wantRoots[rv.Org])
		}
		if rv.Lagging != 0 {
			t.Errorf("root %q lagging %d, want 0 (synchronous bus)", rv.Org, rv.Lagging)
		}
	}
	byID := map[string]DeviceView{}
	for _, dv := range view.Devices {
		byID[dv.ID] = dv
	}
	if got := byID["dev-2"].BundleRevisions; got["us"] != 1 || got["uk"] != 2 {
		t.Errorf("dev-2 bundle revisions = %v, want us:1 uk:2", got)
	}
	if got := byID["dev-0"].BundleRevisions; len(got) != 1 || got["us"] != 1 {
		t.Errorf("dev-0 bundle revisions = %v, want only us:1", got)
	}
}
