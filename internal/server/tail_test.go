package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
)

// readTail consumes one /v1/audit/tail response: the header line,
// then entries until wantEntries are in hand (or the body ends),
// verifying EVERY streamed prefix against the hash chain along the
// way — the exact check a suspicious client would run.
func readTail(t *testing.T, resp *http.Response, wantEntries int) (TailHeader, []audit.Entry) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		t.Fatalf("no header line: %v", sc.Err())
	}
	var hdr TailHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad header %q: %v", sc.Text(), err)
	}
	var entries []audit.Entry
	for len(entries) < wantEntries && sc.Scan() {
		var e audit.Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("torn or malformed entry line %q: %v", sc.Text(), err)
		}
		entries = append(entries, e)
		// Every prefix of the stream must verify against the anchor.
		if err := audit.VerifyTail(hdr.From, hdr.PrevHash, entries); err != nil {
			t.Fatalf("prefix of %d entries fails VerifyTail: %v", len(entries), err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return hdr, entries
}

// TestAuditTailConcurrentWriters is the satellite acceptance test:
// a follow-mode stream opened mid-write races several goroutines
// appending to the journal. No entry may arrive torn, and every
// streamed prefix must pass the hash-chain verification.
func TestAuditTailConcurrentWriters(t *testing.T) {
	f := newTestFleet(t, nil)

	const writers = 4
	const perWriter = 50
	preexisting := f.log.Len()

	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.log.Append(audit.KindNote, fmt.Sprintf("writer-%d", wtr),
					fmt.Sprintf("concurrent append %d", i),
					map[string]string{"writer": fmt.Sprint(wtr)})
			}
		}(wtr)
	}

	resp, err := http.Get(f.base + "/v1/audit/tail?follow=true&poll=5")
	if err != nil {
		t.Fatalf("GET /v1/audit/tail: %v", err)
	}
	hdr, entries := readTail(t, resp, preexisting+writers*perWriter)
	wg.Wait()

	if hdr.From != 0 || hdr.PrevHash != "" {
		t.Errorf("header = %+v, want from 0 with empty anchor", hdr)
	}
	if got, want := len(entries), preexisting+writers*perWriter; got != want {
		t.Fatalf("streamed %d entries, want %d", got, want)
	}
	// Final end-to-end check: the full stream is the journal's own
	// prefix, hash-linked from genesis.
	if err := audit.VerifyTail(0, "", entries); err != nil {
		t.Fatalf("full stream fails VerifyTail: %v", err)
	}
	perWriterSeen := map[string]int{}
	for _, e := range entries {
		if w := e.Context["writer"]; w != "" {
			perWriterSeen[w]++
		}
	}
	for wtr := 0; wtr < writers; wtr++ {
		if got := perWriterSeen[fmt.Sprint(wtr)]; got != perWriter {
			t.Errorf("writer %d: streamed %d entries, want %d", wtr, got, perWriter)
		}
	}
}

// TestAuditTailFromOffset checks a bounded (non-follow) read from a
// mid-journal offset: the header anchors the prefix and the tail
// verifies without the unseen head.
func TestAuditTailFromOffset(t *testing.T) {
	f := newTestFleet(t, nil)
	for i := 0; i < 10; i++ {
		f.log.Append(audit.KindNote, "seed", fmt.Sprintf("entry %d", i), nil)
	}
	total := f.log.Len()

	resp, err := http.Get(f.base + "/v1/audit/tail?from=4")
	if err != nil {
		t.Fatal(err)
	}
	hdr, entries := readTail(t, resp, total-4)
	if hdr.From != 4 {
		t.Errorf("header from = %d, want 4", hdr.From)
	}
	all := f.log.Entries()
	if hdr.PrevHash != all[3].Hash {
		t.Errorf("anchor = %q, want hash of entry 3 %q", hdr.PrevHash, all[3].Hash)
	}
	if len(entries) != total-4 {
		t.Errorf("entries = %d, want %d", len(entries), total-4)
	}

	// Beyond-tip offset: header clamps, zero entries, still verifiable.
	resp, err = http.Get(fmt.Sprintf("%s/v1/audit/tail?from=%d", f.base, total+100))
	if err != nil {
		t.Fatal(err)
	}
	hdr, entries = readTail(t, resp, 0)
	if hdr.From != total || len(entries) != 0 {
		t.Errorf("beyond-tip = from %d with %d entries, want from %d with 0", hdr.From, len(entries), total)
	}
	if hdr.PrevHash != all[total-1].Hash {
		t.Errorf("beyond-tip anchor = %q, want tip hash", hdr.PrevHash)
	}
}

// TestAuditTailValidation covers the query-parameter error paths.
func TestAuditTailValidation(t *testing.T) {
	f := newTestFleet(t, nil)
	for _, bad := range []string{"?from=-1", "?from=x", "?poll=0", "?poll=abc"} {
		resp, err := http.Get(f.base + "/v1/audit/tail" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestAuditTailStreamMetrics checks the gauge tracks open follow
// streams and the counter tallies shipped entries.
func TestAuditTailStreamMetrics(t *testing.T) {
	f := newTestFleet(t, nil)
	f.log.Append(audit.KindNote, "seed", "one", nil)

	resp, err := http.Get(f.base + "/v1/audit/tail?follow=true&poll=5")
	if err != nil {
		t.Fatal(err)
	}
	// Read the header + first entry so the stream is live.
	sc := bufio.NewScanner(resp.Body)
	sc.Scan()
	sc.Scan()
	gauge := f.reg.Gauge("server.audit_streams")
	deadline := time.Now().Add(2 * time.Second)
	for gauge.Value() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := gauge.Value(); got != 1 {
		t.Errorf("server.audit_streams with open stream = %g, want 1", got)
	}
	resp.Body.Close()
	for gauge.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := gauge.Value(); got != 0 {
		t.Errorf("server.audit_streams after close = %g, want 0", got)
	}
	if got := f.reg.Counter("server.audit_streamed").Value(); got < 1 {
		t.Errorf("server.audit_streamed = %d, want >= 1", got)
	}
}
