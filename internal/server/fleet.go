package server

import (
	"net/http"
)

// DeviceView is one device's live control-plane summary.
type DeviceView struct {
	ID          string `json:"id"`
	Type        string `json:"type"`
	Org         string `json:"org,omitempty"`
	Deactivated bool   `json:"deactivated"`
	// PolicyEpoch is the last accepted signed-bundle epoch (0 when
	// the device has never activated a distributed bundle).
	PolicyEpoch uint64 `json:"policyEpoch"`
	// PolicyRevision is the distribution revision the policy set last
	// activated (0 = never bundle-managed, e.g. locally authored).
	PolicyRevision uint64 `json:"policyRevision"`
	// Policies is the active policy count.
	Policies int `json:"policies"`
	// Residual is the fingerprint of the static profile the device's
	// residual snapshot is specialized for; ResidualPolicies counts the
	// policies surviving partial evaluation (≤ Policies).
	Residual         string `json:"residual,omitempty"`
	ResidualPolicies int    `json:"residualPolicies"`
	// BundleRevisions maps each org root the device has activated from
	// to its per-root revision — the coalition view, where one device
	// follows several independent revision streams. Omitted for devices
	// never bundle-managed.
	BundleRevisions map[string]uint64 `json:"bundleRevisions,omitempty"`
	// State is the current state vector by variable name.
	State map[string]float64 `json:"state"`
}

// RootView is one org root's control-plane standing.
type RootView struct {
	// Org names the root ("" renders as the single-root deployment).
	Org string `json:"org"`
	// Revision is the root's latest published revision.
	Revision uint64 `json:"revision"`
	// Lagging counts subscribed devices behind Revision.
	Lagging int `json:"lagging"`
}

// FleetView is the GET /v1/fleet reply.
type FleetView struct {
	Name string `json:"name"`
	// Active counts devices still under policy control; Total also
	// includes deactivated ones.
	Active int `json:"active"`
	Total  int `json:"total"`
	// AuditLen is the journal length — the tail index a new
	// /v1/audit/tail stream would start from.
	AuditLen int `json:"auditLen"`
	// Roots reports each org root's published revision and lagging
	// count; present only when the server fronts a distributor.
	Roots   []RootView   `json:"roots,omitempty"`
	Devices []DeviceView `json:"devices"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	devices := s.collective.Devices()
	view := FleetView{
		Name:     s.collective.Name(),
		Total:    len(devices),
		AuditLen: s.log.Len(),
		Devices:  make([]DeviceView, 0, len(devices)),
	}
	if s.dist != nil {
		for _, org := range s.dist.Orgs() {
			view.Roots = append(view.Roots, RootView{
				Org:      org,
				Revision: s.dist.RootRevision(org),
				Lagging:  len(s.dist.LaggingRoot(org)),
			})
		}
	}
	for _, d := range devices {
		dv := DeviceView{
			ID:          d.ID(),
			Type:        d.Type(),
			Org:         d.Organization(),
			Deactivated: d.Deactivated(),
			PolicyEpoch: d.PolicyEpoch(),
		}
		if !dv.Deactivated {
			view.Active++
		}
		if set := d.Policies(); set != nil {
			dv.PolicyRevision = set.Revision()
			dv.BundleRevisions = set.OrgRevisions()
			dv.Policies = set.Len()
			if res := d.Residual(); res != nil {
				dv.Residual = res.ResidualFingerprint()
				dv.ResidualPolicies = res.Len()
			}
		}
		st := d.CurrentState()
		names := st.Schema().Names()
		dv.State = make(map[string]float64, len(names))
		for i, name := range names {
			dv.State[name] = st.Value(i)
		}
		view.Devices = append(view.Devices, dv)
	}
	writeJSON(w, http.StatusOK, view)
}
