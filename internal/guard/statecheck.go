package guard

import (
	"fmt"
	"sync"

	"repro/internal/ontology"
	"repro/internal/risk"
	"repro/internal/statespace"
)

// StateSpaceGuard is the Section VI.B mechanism: "If the device finds
// itself entering into a bad state, it will not take the action that
// leads to that state, simply choosing the option of taking no action
// (which keeps it in the current good state) or taking an alternative
// action which puts it into a new state which is also good."
//
// When the device is already in a bad state and every way out is bad
// (the paper's run-at-max-capacity-or-risk-fire dilemma), the guard
// consults its BreakGlass rule: the transition is allowed — and flagged
// for audit — only if the destination is "less bad" under the state
// preference ontology, or lower-risk under the risk assessor when the
// ontology is silent.
type StateSpaceGuard struct {
	// Classifier partitions the state space (required).
	Classifier statespace.Classifier
	// OutcomeOf maps a state to its outcome category for preference
	// comparison. Nil falls back to the action's Outcome for the next
	// state and disables current-state outcomes.
	OutcomeOf func(statespace.State) ontology.Outcome
	// BreakGlass enables audited escapes from bad-to-bad dilemmas;
	// nil denies all transitions into bad states.
	BreakGlass *BreakGlass
}

var _ Guard = (*StateSpaceGuard)(nil)

// Name identifies the guard.
func (g *StateSpaceGuard) Name() string { return "state-space" }

// Check applies the state-space rule. A nil classifier fails closed.
func (g *StateSpaceGuard) Check(ctx ActionContext) Verdict {
	if g.Classifier == nil {
		return Verdict{Decision: DecisionDeny, Guard: g.Name(), Reason: "no classifier configured; failing closed"}
	}
	if !ctx.Next.Valid() {
		return Verdict{Decision: DecisionDeny, Guard: g.Name(), Reason: "no predicted next state; failing closed"}
	}
	nextClass := g.Classifier.Classify(ctx.Next)
	if nextClass != statespace.ClassBad {
		return Verdict{
			Decision: DecisionAllow,
			Action:   ctx.Action,
			Guard:    g.Name(),
			Reason:   nextStateReason(nextClass),
		}
	}

	currClass := statespace.ClassNeutral
	if ctx.State.Valid() {
		currClass = g.Classifier.Classify(ctx.State)
	}
	if currClass != statespace.ClassBad {
		// Staying put is safe; refuse the transition.
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   holdStateReason(ctx.Action.Name, ctx.Next, currClass),
		}
	}

	// Dilemma: current and next are both bad.
	if g.BreakGlass == nil {
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   "bad-to-bad transition and no break-glass rule configured",
		}
	}
	return g.BreakGlass.rule(g, ctx)
}

// BreakGlass encodes the emergency-override rule of Section VI.B
// (paper ref [12]): overrides must be budgeted, auditable, and based on
// trustworthy information.
type BreakGlass struct {
	// Preferences is the state-preference ontology used to decide
	// "less bad".
	Preferences *ontology.PreferenceOntology
	// Risk breaks ties when the ontology cannot compare the outcomes.
	Risk risk.Assessor
	// TrustCheck verifies the state information behind the decision is
	// trustworthy (defense against the deception attacks of ref [13]).
	// Nil means always trusted.
	TrustCheck func(ActionContext) bool
	// RequireSnapshot refuses overrides whose context does not carry
	// the decision-plane snapshot: without the snapshot epoch the
	// post-hoc audit cannot pin the policy state the override was
	// decided under, and Section VI.B demands such uses be treated as
	// unverified.
	RequireSnapshot bool
	// MaxUses bounds the number of break-glass overrides; zero means
	// unlimited.
	MaxUses int

	mu   sync.Mutex
	uses int
}

// Uses returns how many times the rule has been exercised.
func (b *BreakGlass) Uses() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.uses
}

func (b *BreakGlass) rule(g *StateSpaceGuard, ctx ActionContext) Verdict {
	if b.RequireSnapshot && ctx.Policies == nil {
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   "break-glass refused: no policy snapshot in context; override would be unauditable",
		}
	}
	if b.TrustCheck != nil && !b.TrustCheck(ctx) {
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   "break-glass refused: state information failed trust check",
		}
	}
	b.mu.Lock()
	if b.MaxUses > 0 && b.uses >= b.MaxUses {
		b.mu.Unlock()
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   fmt.Sprintf("break-glass budget exhausted (%d uses)", b.MaxUses),
		}
	}
	b.mu.Unlock()

	currOutcome, nextOutcome := b.outcomes(g, ctx)
	allowReason := ""
	switch {
	case b.Preferences != nil && nextOutcome != "" && currOutcome != "" && b.Preferences.Preferred(nextOutcome, currOutcome):
		allowReason = fmt.Sprintf("break-glass: outcome %q preferred over %q", nextOutcome, currOutcome)
	case b.Risk != nil && ctx.State.Valid() && b.Risk.Risk(ctx.Next) < b.Risk.Risk(ctx.State):
		allowReason = fmt.Sprintf("break-glass: next-state risk %.3f below current %.3f",
			b.Risk.Risk(ctx.Next), b.Risk.Risk(ctx.State))
	default:
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   fmt.Sprintf("break-glass refused: %q not preferable to %q and risk not reduced", nextOutcome, currOutcome),
		}
	}

	b.mu.Lock()
	b.uses++
	b.mu.Unlock()
	return Verdict{
		Decision:   DecisionAllow,
		Action:     ctx.Action,
		Guard:      g.Name(),
		Reason:     allowReason,
		BrokeGlass: true,
	}
}

func (b *BreakGlass) outcomes(g *StateSpaceGuard, ctx ActionContext) (curr, next ontology.Outcome) {
	next = ctx.Action.Outcome
	if g.OutcomeOf != nil {
		if ctx.State.Valid() {
			curr = g.OutcomeOf(ctx.State)
		}
		if o := g.OutcomeOf(ctx.Next); o != "" {
			next = o
		}
	}
	return curr, next
}

// UtilityGuard applies the Section VII mechanism for ill-defined state
// spaces: when no exact good/bad classifier exists, the device follows
// the pain/pleasure utility synthesized from derivative signs, refusing
// actions that increase pain beyond a tolerance.
type UtilityGuard struct {
	// Model is the derivative-sign utility model (required).
	Model *statespace.DerivativeModel
	// MaxPainIncrease is the largest tolerated pain increase per
	// action. Zero tolerates no increase.
	MaxPainIncrease float64
	// PainCeiling denies any action whose destination pain exceeds
	// this level, regardless of the increase. Zero disables the
	// ceiling check.
	PainCeiling float64
}

var _ Guard = (*UtilityGuard)(nil)

// Name identifies the guard.
func (g *UtilityGuard) Name() string { return "utility" }

// Check refuses pain-increasing transitions.
func (g *UtilityGuard) Check(ctx ActionContext) Verdict {
	if g.Model == nil {
		return Verdict{Decision: DecisionDeny, Guard: g.Name(), Reason: "no utility model configured; failing closed"}
	}
	if !ctx.Next.Valid() || !ctx.State.Valid() {
		return Verdict{Decision: DecisionDeny, Guard: g.Name(), Reason: "missing state prediction; failing closed"}
	}
	painNow := g.Model.Pain(ctx.State)
	painNext := g.Model.Pain(ctx.Next)
	if g.PainCeiling > 0 && painNext > g.PainCeiling {
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   fmt.Sprintf("destination pain %.3f above ceiling %.3f", painNext, g.PainCeiling),
		}
	}
	if painNext-painNow > g.MaxPainIncrease {
		return Verdict{
			Decision: DecisionDeny,
			Guard:    g.Name(),
			Reason:   fmt.Sprintf("pain would rise %.3f→%.3f (tolerance %.3f)", painNow, painNext, g.MaxPainIncrease),
		}
	}
	return Verdict{
		Decision: DecisionAllow,
		Action:   ctx.Action,
		Guard:    g.Name(),
		Reason:   fmt.Sprintf("pain %.3f→%.3f within tolerance", painNow, painNext),
	}
}
