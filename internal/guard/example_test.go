package guard_test

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// Example shows the state-space check of Section VI.B: the guard
// refuses the transition that would put the device into a bad state.
func Example() {
	schema := statespace.MustSchema(statespace.Var("heat", 0, 100))
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	g := &guard.StateSpaceGuard{Classifier: classifier}

	curr, _ := schema.StateFromMap(map[string]float64{"heat": 70})
	overheat, _ := curr.Apply(statespace.Delta{"heat": 25})
	cool, _ := curr.Apply(statespace.Delta{"heat": -25})

	for _, next := range []statespace.State{overheat, cool} {
		v := g.Check(guard.ActionContext{
			Actor:  "worker-1",
			Action: policy.Action{Name: "run"},
			State:  curr,
			Next:   next,
		})
		fmt.Printf("to %s: %s\n", next, v.Decision)
	}
	// Output:
	// to {heat=95}: deny
	// to {heat=45}: allow
}
