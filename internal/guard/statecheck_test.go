package guard

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/risk"
	"repro/internal/statespace"
)

// heatClassifier: bad when heat >= 80, good below 50, neutral between.
func heatClassifier() statespace.Classifier {
	return statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		h := st.MustGet("heat")
		switch {
		case h >= 80:
			return statespace.ClassBad
		case h < 50:
			return statespace.ClassGood
		default:
			return statespace.ClassNeutral
		}
	})
}

func TestStateSpaceGuardAllowsGoodAndNeutral(t *testing.T) {
	s := guardSchema(t)
	g := &StateSpaceGuard{Classifier: heatClassifier()}
	tests := []struct {
		name     string
		nextHeat float64
		want     bool
	}{
		{name: "good", nextHeat: 10, want: true},
		{name: "neutral", nextHeat: 60, want: true},
		{name: "bad", nextHeat: 90, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := g.Check(ctxAt(t, s, 10, tt.nextHeat, policy.Action{Name: "run"}))
			if v.Allowed() != tt.want {
				t.Errorf("Allowed = %v, want %v (%s)", v.Allowed(), tt.want, v.Reason)
			}
		})
	}
}

func TestStateSpaceGuardFailsClosed(t *testing.T) {
	s := guardSchema(t)
	var g StateSpaceGuard
	if v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "a"})); v.Allowed() {
		t.Error("nil classifier allowed action")
	}
	g2 := StateSpaceGuard{Classifier: heatClassifier()}
	ctx := ctxAt(t, s, 0, 0, policy.Action{Name: "a"})
	ctx.Next = statespace.State{}
	if v := g2.Check(ctx); v.Allowed() {
		t.Error("invalid next state allowed")
	}
}

func TestStateSpaceGuardDilemmaWithoutBreakGlass(t *testing.T) {
	s := guardSchema(t)
	g := &StateSpaceGuard{Classifier: heatClassifier()}
	// Already bad (heat 95), moving to another bad state (heat 85).
	v := g.Check(ctxAt(t, s, 95, 85, policy.Action{Name: "vent"}))
	if v.Allowed() {
		t.Error("bad-to-bad allowed without break-glass")
	}
	if !strings.Contains(v.Reason, "break-glass") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func breakGlassFixture(t *testing.T) (*StateSpaceGuard, *BreakGlass) {
	t.Helper()
	prefs := ontology.NewPreferenceOntology()
	// fire is less bad than loss-of-life.
	if err := prefs.Prefer("fire", "loss-of-life"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}
	bg := &BreakGlass{Preferences: prefs}
	g := &StateSpaceGuard{
		Classifier: heatClassifier(),
		OutcomeOf: func(st statespace.State) ontology.Outcome {
			if st.MustGet("heat") >= 90 {
				return "loss-of-life"
			}
			if st.MustGet("heat") >= 80 {
				return "fire"
			}
			return ""
		},
		BreakGlass: bg,
	}
	return g, bg
}

func TestBreakGlassAllowsLessBadOutcome(t *testing.T) {
	s := guardSchema(t)
	g, bg := breakGlassFixture(t)
	// 95 (loss-of-life) → 85 (fire): fire preferred, allow.
	v := g.Check(ctxAt(t, s, 95, 85, policy.Action{Name: "run-max-capacity"}))
	if !v.Allowed() || !v.BrokeGlass {
		t.Fatalf("verdict = %+v", v)
	}
	if bg.Uses() != 1 {
		t.Errorf("Uses = %d", bg.Uses())
	}
	// Reverse direction: 85 (fire) → 95 (loss-of-life): deny.
	v = g.Check(ctxAt(t, s, 85, 95, policy.Action{Name: "overload"}))
	if v.Allowed() {
		t.Error("worse outcome allowed through break-glass")
	}
}

func TestBreakGlassBudget(t *testing.T) {
	s := guardSchema(t)
	g, bg := breakGlassFixture(t)
	bg.MaxUses = 1
	ctx := ctxAt(t, s, 95, 85, policy.Action{Name: "vent"})
	if v := g.Check(ctx); !v.Allowed() {
		t.Fatalf("first use denied: %+v", v)
	}
	if v := g.Check(ctx); v.Allowed() {
		t.Error("budget-exhausted break-glass allowed")
	}
}

func TestBreakGlassTrustCheck(t *testing.T) {
	s := guardSchema(t)
	g, _ := breakGlassFixture(t)
	g.BreakGlass.TrustCheck = func(ActionContext) bool { return false }
	v := g.Check(ctxAt(t, s, 95, 85, policy.Action{Name: "vent"}))
	if v.Allowed() {
		t.Error("untrusted state information allowed break-glass")
	}
	if !strings.Contains(v.Reason, "trust") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestBreakGlassRiskFallback(t *testing.T) {
	s := guardSchema(t)
	// No preference ontology: risk decides.
	bg := &BreakGlass{
		Risk: risk.AssessorFunc(func(st statespace.State) float64 {
			return st.MustGet("heat") / 100
		}),
	}
	g := &StateSpaceGuard{Classifier: heatClassifier(), BreakGlass: bg}
	// 95 → 85 reduces risk: allow.
	if v := g.Check(ctxAt(t, s, 95, 85, policy.Action{Name: "vent"})); !v.Allowed() {
		t.Errorf("risk-reducing escape denied: %+v", v)
	}
	// 85 → 95 raises risk: deny.
	if v := g.Check(ctxAt(t, s, 85, 95, policy.Action{Name: "overload"})); v.Allowed() {
		t.Error("risk-raising escape allowed")
	}
}

func TestBreakGlassActionOutcomeFallback(t *testing.T) {
	s := guardSchema(t)
	prefs := ontology.NewPreferenceOntology()
	if err := prefs.Prefer("fire", "loss-of-life"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}
	g := &StateSpaceGuard{
		Classifier: heatClassifier(),
		// OutcomeOf gives the current state's outcome only.
		OutcomeOf: func(st statespace.State) ontology.Outcome {
			if st.MustGet("heat") >= 90 {
				return "loss-of-life"
			}
			return ""
		},
		BreakGlass: &BreakGlass{Preferences: prefs},
	}
	// Next state outcome comes from the action when OutcomeOf is silent.
	v := g.Check(ctxAt(t, s, 95, 85, policy.Action{Name: "vent", Outcome: "fire"}))
	if !v.Allowed() {
		t.Errorf("action-outcome fallback failed: %+v", v)
	}
}

func TestUtilityGuard(t *testing.T) {
	s := guardSchema(t)
	m := statespace.NewDerivativeModel(s)
	if err := m.SetSign("heat", statespace.SignDecreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	g := &UtilityGuard{Model: m, MaxPainIncrease: 0.1}

	// heat 10→20: pain rises 0.1 exactly → allowed (tolerance inclusive).
	if v := g.Check(ctxAt(t, s, 10, 20, policy.Action{Name: "a"})); !v.Allowed() {
		t.Errorf("within-tolerance move denied: %+v", v)
	}
	// heat 10→40: pain rises 0.3 → denied.
	if v := g.Check(ctxAt(t, s, 10, 40, policy.Action{Name: "a"})); v.Allowed() {
		t.Error("pain-increasing move allowed")
	}
	// Pain-reducing move always fine.
	if v := g.Check(ctxAt(t, s, 90, 10, policy.Action{Name: "a"})); !v.Allowed() {
		t.Error("pain-reducing move denied")
	}
}

func TestUtilityGuardCeiling(t *testing.T) {
	s := guardSchema(t)
	m := statespace.NewDerivativeModel(s)
	if err := m.SetSign("heat", statespace.SignDecreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	g := &UtilityGuard{Model: m, MaxPainIncrease: 1, PainCeiling: 0.8}
	// heat 70→85: increase 0.15 is tolerated, but pain 0.85 > ceiling.
	if v := g.Check(ctxAt(t, s, 70, 85, policy.Action{Name: "a"})); v.Allowed() {
		t.Error("above-ceiling destination allowed")
	}
}

func TestUtilityGuardFailsClosed(t *testing.T) {
	s := guardSchema(t)
	var g UtilityGuard
	if v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "a"})); v.Allowed() {
		t.Error("nil model allowed")
	}
	m := statespace.NewDerivativeModel(s)
	g2 := UtilityGuard{Model: m}
	ctx := ctxAt(t, s, 0, 0, policy.Action{Name: "a"})
	ctx.State = statespace.State{}
	if v := g2.Check(ctx); v.Allowed() {
		t.Error("invalid current state allowed")
	}
}
