package guard

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/audit"
)

// Fingerprinter produces a stable fingerprint of a guard's
// configuration. If the configuration is mutated (a reprogramming
// attack disabling the check), the fingerprint changes.
type Fingerprinter func() string

// HMACFingerprint builds a Fingerprinter that MACs the provided
// configuration description under a secret, so an attacker without the
// secret cannot forge a matching fingerprint for an altered
// configuration.
func HMACFingerprint(secret []byte, describe func() string) Fingerprinter {
	return func() string {
		mac := hmac.New(sha256.New, secret)
		mac.Write([]byte(describe()))
		return hex.EncodeToString(mac.Sum(nil))
	}
}

// TamperEvident wraps a guard with tamper detection. Every technique
// in Section VI "assumes that it can be performed in a manner that is
// tamper-proof"; this wrapper provides the software approximation:
// before each check it re-derives the configuration fingerprint and
// fails closed (denies everything, with an audited tamper record) if
// it no longer matches the expected value captured at seal time.
type TamperEvident struct {
	// Inner is the protected guard.
	Inner Guard
	// Fingerprint recomputes the configuration fingerprint.
	Fingerprint Fingerprinter
	// Expected is the fingerprint captured when the guard was sealed.
	Expected string
	// Log receives tamper records; nil disables auditing.
	Log *audit.Log
}

var _ Guard = (*TamperEvident)(nil)

// Seal wraps the guard and captures its current fingerprint as the
// expected value.
func Seal(inner Guard, fp Fingerprinter, log *audit.Log) *TamperEvident {
	return &TamperEvident{
		Inner:       inner,
		Fingerprint: fp,
		Expected:    fp(),
		Log:         log,
	}
}

// Name identifies the wrapper and its inner guard.
func (t *TamperEvident) Name() string { return "tamper-evident(" + t.Inner.Name() + ")" }

// Check verifies the fingerprint before delegating; on mismatch it
// denies and audits.
func (t *TamperEvident) Check(ctx ActionContext) Verdict {
	if got := t.Fingerprint(); got != t.Expected {
		if log := audit.Resolve(ctx.Journal, t.Log); log != nil {
			log.Append(audit.KindTamper, ctx.Actor,
				"guard configuration fingerprint mismatch; failing closed",
				map[string]string{"guard": t.Inner.Name()})
		}
		return Verdict{
			Decision: DecisionDeny,
			Guard:    t.Name(),
			Reason:   "guard configuration tampered; failing closed",
		}
	}
	return t.Inner.Check(ctx)
}
