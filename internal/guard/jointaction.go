package guard

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/policy"
	"repro/internal/statespace"
)

// ProposedAction is one device's intended action in a joint plan.
type ProposedAction struct {
	// Actor is the proposing device.
	Actor string
	// Action is the intended action; its Effect predicts the actor's
	// next state.
	Action policy.Action
	// State is the actor's current state.
	State statespace.State
	// Priority orders shedding: lower-priority proposals are dropped
	// first when the joint plan violates an aggregate constraint.
	Priority int
}

// JointVerdict is the outcome of a joint-action assessment.
type JointVerdict struct {
	// Approved are the proposals that may proceed, in input order.
	Approved []ProposedAction
	// Shed are the proposals dropped to satisfy the aggregate
	// constraints, in shedding order.
	Shed []ProposedAction
	// Violations are the constraint breaches the full plan would have
	// caused (empty when everything was approved).
	Violations []Violation
}

// AssessJointActions is the Section VI.D collaborative-assessment
// primitive over *actions* rather than states: "collaborative state
// assessment techniques by which a group of devices would jointly
// determine whether a set of actions, to be undertaken by devices in
// the group, could lead to some aggregate bad states, even though each
// device would still be in good state."
//
// It predicts each proposer's next state, evaluates the aggregate
// rules over the predicted collection, and — when the full plan
// violates — sheds the lowest-priority proposals (ties broken by
// actor name, then input order) until the remainder satisfies every
// rule. Shed devices are predicted at their current states (they take
// no action).
func AssessJointActions(assessor *AggregateAssessor, proposals []ProposedAction) (JointVerdict, error) {
	if assessor == nil {
		return JointVerdict{}, errors.New("guard: joint assessment needs an assessor")
	}
	type entry struct {
		ProposedAction
		index int
		next  statespace.State
	}
	entries := make([]entry, 0, len(proposals))
	for i, p := range proposals {
		if !p.State.Valid() {
			return JointVerdict{}, fmt.Errorf("guard: proposal %d (%s) has invalid state", i, p.Actor)
		}
		next, err := p.State.Apply(p.Action.Effect)
		if err != nil {
			return JointVerdict{}, fmt.Errorf("guard: proposal %d (%s): %w", i, p.Actor, err)
		}
		entries = append(entries, entry{ProposedAction: p, index: i, next: next})
	}

	active := make([]bool, len(entries))
	for i := range active {
		active[i] = true
	}
	predict := func() []statespace.State {
		states := make([]statespace.State, len(entries))
		for i, e := range entries {
			if active[i] {
				states[i] = e.next
			} else {
				states[i] = e.State
			}
		}
		return states
	}

	verdict := JointVerdict{Violations: assessor.Assess(predict())}
	if len(verdict.Violations) > 0 {
		// Shedding order: ascending priority, then actor, then index.
		order := make([]int, len(entries))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ea, eb := entries[order[a]], entries[order[b]]
			if ea.Priority != eb.Priority {
				return ea.Priority < eb.Priority
			}
			if ea.Actor != eb.Actor {
				return ea.Actor < eb.Actor
			}
			return ea.index < eb.index
		})
		for _, idx := range order {
			if len(assessor.Assess(predict())) == 0 {
				break
			}
			active[idx] = false
			verdict.Shed = append(verdict.Shed, entries[idx].ProposedAction)
		}
	}
	for i, e := range entries {
		if active[i] {
			verdict.Approved = append(verdict.Approved, e.ProposedAction)
		}
	}
	return verdict, nil
}
