package guard

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/policy"
)

func TestTamperEvidentPassesWhenIntact(t *testing.T) {
	s := guardSchema(t)
	config := "threshold=0.5"
	fp := HMACFingerprint([]byte("secret"), func() string { return config })
	sealed := Seal(AllowAll{}, fp, nil)

	v := sealed.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "a"}))
	if !v.Allowed() {
		t.Errorf("intact guard denied: %+v", v)
	}
	if sealed.Name() != "tamper-evident(allow-all)" {
		t.Errorf("Name = %q", sealed.Name())
	}
}

func TestTamperEvidentFailsClosedOnMutation(t *testing.T) {
	s := guardSchema(t)
	log := audit.New()
	config := "threshold=0.5"
	fp := HMACFingerprint([]byte("secret"), func() string { return config })
	sealed := Seal(AllowAll{}, fp, log)

	// Attack: mutate the configuration after sealing.
	config = "threshold=999"
	v := sealed.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "a"}))
	if v.Allowed() {
		t.Error("tampered guard allowed action")
	}
	if len(log.ByKind(audit.KindTamper)) != 1 {
		t.Error("tamper not audited")
	}
}

func TestHMACFingerprintSecretMatters(t *testing.T) {
	describe := func() string { return "same-config" }
	a := HMACFingerprint([]byte("key-a"), describe)
	b := HMACFingerprint([]byte("key-b"), describe)
	if a() == b() {
		t.Error("fingerprints under different secrets collide")
	}
	if a() != a() {
		t.Error("fingerprint not deterministic")
	}
}
