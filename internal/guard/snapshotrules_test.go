package guard

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

// snapshotFixture compiles a set with one standing forbid over "strike"
// events covering the "strike" action at priority 50.
func snapshotFixture(t *testing.T) *policy.Snapshot {
	t.Helper()
	set := policy.NewSet()
	if err := set.Add(policy.Policy{
		ID: "no-strike", EventType: "strike-request", Modality: policy.ModalityForbid,
		Priority: 50, Action: policy.Action{Name: "strike"},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	return set.Snapshot()
}

func TestPreActionRespectForbids(t *testing.T) {
	s := guardSchema(t)
	snap := snapshotFixture(t)
	g := &PreActionGuard{RespectForbids: true}

	// A forbidden action injected outside Evaluate is caught.
	ctx := ctxAt(t, s, 0, 0, policy.Action{Name: "strike"})
	ctx.Env = policy.Env{Event: policy.Event{Type: "strike-request"}}
	ctx.Policies = snap
	v := g.Check(ctx)
	if v.Allowed() {
		t.Fatalf("forbidden action allowed: %+v", v)
	}
	if !strings.Contains(v.Reason, "no-strike") || !strings.Contains(v.Reason, "epoch") {
		t.Errorf("reason = %q", v.Reason)
	}

	// An uncovered action passes.
	ctx.Action = policy.Action{Name: "move"}
	if v := g.Check(ctx); !v.Allowed() {
		t.Errorf("uncovered action denied: %s", v.Reason)
	}

	// No snapshot in context: the check is skipped, not failed closed —
	// the guard cannot consult a plane that is not there.
	bare := ctxAt(t, s, 0, 0, policy.Action{Name: "strike"})
	bare.Env = policy.Env{Event: policy.Event{Type: "strike-request"}}
	if v := g.Check(bare); !v.Allowed() {
		t.Errorf("missing snapshot denied action: %s", v.Reason)
	}

	// RespectForbids off: the snapshot is ignored.
	off := &PreActionGuard{}
	if v := off.Check(ctx2(ctx, policy.Action{Name: "strike"})); !v.Allowed() {
		t.Errorf("disabled cross-check denied action: %s", v.Reason)
	}
}

func ctx2(base ActionContext, a policy.Action) ActionContext {
	base.Action = a
	return base
}

func TestBreakGlassRequireSnapshot(t *testing.T) {
	s := guardSchema(t)
	g, bg := breakGlassFixture(t)
	bg.RequireSnapshot = true

	// Bad-to-bad dilemma the fixture would normally allow (fire is
	// preferred over loss-of-life), but no snapshot in context.
	ctx := ctxAt(t, s, 95, 85, policy.Action{Name: "vent", Outcome: "fire"})
	v := g.Check(ctx)
	if v.Allowed() {
		t.Fatalf("override allowed without snapshot: %+v", v)
	}
	if !strings.Contains(v.Reason, "unauditable") {
		t.Errorf("reason = %q", v.Reason)
	}
	if bg.Uses() != 0 {
		t.Errorf("refused override consumed budget: uses = %d", bg.Uses())
	}

	// Same dilemma with the snapshot present goes through.
	ctx.Policies = snapshotFixture(t)
	v = g.Check(ctx)
	if !v.Allowed() || !v.BrokeGlass {
		t.Fatalf("override with snapshot refused: %+v", v)
	}
	if bg.Uses() != 1 {
		t.Errorf("uses = %d, want 1", bg.Uses())
	}
}

func TestStaticallyVetoedScopeRule(t *testing.T) {
	snap := snapshotFixture(t)
	rule := StaticallyVetoed{Snapshot: func() *policy.Snapshot { return snap }}

	dead := policy.Policy{
		ID: "gen-strike", EventType: "strike-request", Modality: policy.ModalityDo,
		Priority: 10, Action: policy.Action{Name: "strike"},
	}
	ok, reason := rule.Check(dead)
	if ok {
		t.Fatalf("statically dead policy approved: %s", reason)
	}
	if !strings.Contains(reason, "no-strike") {
		t.Errorf("reason = %q", reason)
	}

	// A higher-priority do outranks the forbid and is not dead.
	alive := dead
	alive.Priority = 90
	if ok, reason := rule.Check(alive); !ok {
		t.Errorf("outranking policy rejected: %s", reason)
	}

	// Disjoint event type is never vetoed.
	other := dead
	other.EventType = "patrol"
	if ok, reason := rule.Check(other); !ok {
		t.Errorf("disjoint policy rejected: %s", reason)
	}

	// Forbid candidates are out of the rule's scope.
	fb := policy.Policy{ID: "f", EventType: "strike-request", Modality: policy.ModalityForbid,
		Action: policy.Action{Name: "strike"}}
	if ok, _ := rule.Check(fb); !ok {
		t.Error("forbid candidate rejected")
	}

	// Nil sources approve.
	if ok, _ := (StaticallyVetoed{}).Check(dead); !ok {
		t.Error("nil snapshot source rejected")
	}
	nilRule := StaticallyVetoed{Snapshot: func() *policy.Snapshot { return nil }}
	if ok, _ := nilRule.Check(dead); !ok {
		t.Error("nil snapshot rejected")
	}
}
