package guard

import (
	"fmt"
	"math"

	"repro/internal/audit"
	"repro/internal/ontology"
	"repro/internal/policy"
)

// Reviewer is one oversight collective's judgment on a proposed
// policy: whether adopting it is within the system's allowed scope.
type Reviewer interface {
	// Name identifies the collective.
	Name() string
	// Review approves or rejects the proposed policy with a reason.
	Review(p policy.Policy) (bool, string)
}

// ReviewerFunc adapts a function into a Reviewer.
type ReviewerFunc struct {
	Label string
	Fn    func(policy.Policy) (bool, string)
}

var _ Reviewer = ReviewerFunc{}

// Name identifies the collective.
func (r ReviewerFunc) Name() string { return r.Label }

// Review invokes the function; a nil function rejects.
func (r ReviewerFunc) Review(p policy.Policy) (bool, string) {
	if r.Fn == nil {
		return false, "no review function"
	}
	return r.Fn(p)
}

// ScopeRule is one constraint a meta-policy places on adoptable
// policies — the Section VI.E requirement that a collective's actions
// stay "within the scope defined by a set of higher level meta-policies
// that are defined by an independent and distinct collective".
type ScopeRule interface {
	// Check approves or rejects the policy.
	Check(p policy.Policy) (bool, string)
}

// ForbidCategory rejects do-policies whose action category falls under
// a forbidden concept.
type ForbidCategory struct {
	Taxonomy *ontology.Taxonomy
	Concept  ontology.Concept
}

var _ ScopeRule = ForbidCategory{}

// Check rejects covered do-policies.
func (r ForbidCategory) Check(p policy.Policy) (bool, string) {
	if p.Modality != policy.ModalityDo {
		return true, "not a do-policy"
	}
	covered := p.Action.Category == r.Concept
	if r.Taxonomy != nil {
		covered = r.Taxonomy.IsA(p.Action.Category, r.Concept)
	}
	if covered {
		return false, fmt.Sprintf("action category %q falls under forbidden %q", p.Action.Category, r.Concept)
	}
	return true, "category permitted"
}

// MaxEffectMagnitude rejects policies whose predicted state effect is
// larger than a limit — a crude but effective cap on how violently a
// single generated policy may move the device through its state space.
type MaxEffectMagnitude struct {
	Limit float64
}

var _ ScopeRule = MaxEffectMagnitude{}

// Check rejects over-limit effects.
func (r MaxEffectMagnitude) Check(p policy.Policy) (bool, string) {
	if m := p.Action.Effect.Magnitude(); m > r.Limit {
		return false, fmt.Sprintf("effect magnitude %.3f exceeds limit %.3f", m, r.Limit)
	}
	return true, "effect within limit"
}

// RequireCondition rejects unconditional do-policies for a given
// action category: a generated policy that always fires a sensitive
// action is out of scope.
type RequireCondition struct {
	Taxonomy *ontology.Taxonomy
	Concept  ontology.Concept
}

var _ ScopeRule = RequireCondition{}

// Check rejects unconditional covered policies.
func (r RequireCondition) Check(p policy.Policy) (bool, string) {
	if p.Modality != policy.ModalityDo {
		return true, "not a do-policy"
	}
	covered := p.Action.Category == r.Concept
	if r.Taxonomy != nil {
		covered = r.Taxonomy.IsA(p.Action.Category, r.Concept)
	}
	if !covered {
		return true, "category not sensitive"
	}
	if p.Condition == nil {
		return false, fmt.Sprintf("unconditional policy over sensitive category %q", r.Concept)
	}
	if _, unconditional := p.Condition.(policy.True); unconditional {
		return false, fmt.Sprintf("trivially-true condition over sensitive category %q", r.Concept)
	}
	return true, "condition present"
}

// StaticallyVetoed rejects do-policies the compiled decision plane
// would never execute: a standing forbid of equal or higher priority
// covers the candidate's action on an overlapping event type, so
// adopting it would only bloat the set. The rule reads the immutable
// snapshot — it never scans the live, mutable set.
type StaticallyVetoed struct {
	// Snapshot supplies the decision-plane snapshot to review against
	// (typically Set.Snapshot of the adopting device). Nil, or a nil
	// snapshot, approves.
	Snapshot func() *policy.Snapshot
}

var _ ScopeRule = StaticallyVetoed{}

// Check rejects statically dead candidates.
func (r StaticallyVetoed) Check(p policy.Policy) (bool, string) {
	if r.Snapshot == nil {
		return true, "no snapshot source configured"
	}
	snap := r.Snapshot()
	if snap == nil {
		return true, "no snapshot available"
	}
	if id, vetoed := snap.VetoesStatically(p); vetoed {
		return false, fmt.Sprintf("standing forbid %s statically vetoes the candidate (snapshot epoch %d)", id, snap.Epoch())
	}
	return true, "not statically vetoed"
}

// PriorityCap rejects policies above a maximum priority, preventing a
// generated policy from outranking human safety policies.
type PriorityCap struct {
	Max int
}

var _ ScopeRule = PriorityCap{}

// Check rejects over-cap priorities.
func (r PriorityCap) Check(p policy.Policy) (bool, string) {
	if p.Priority > r.Max {
		return false, fmt.Sprintf("priority %d exceeds cap %d", p.Priority, r.Max)
	}
	return true, "priority within cap"
}

// ScopeReviewer is a collective that reviews policies against a list
// of scope rules; the first failing rule rejects.
type ScopeReviewer struct {
	Label string
	Rules []ScopeRule
}

var _ Reviewer = (*ScopeReviewer)(nil)

// Name identifies the collective.
func (s *ScopeReviewer) Name() string { return s.Label }

// Review applies every rule.
func (s *ScopeReviewer) Review(p policy.Policy) (bool, string) {
	for _, r := range s.Rules {
		if ok, reason := r.Check(p); !ok {
			return false, reason
		}
	}
	return true, "all scope rules passed"
}

// Vote records one collective's review in a tripartite decision.
type Vote struct {
	Collective string
	Approve    bool
	Reason     string
}

// Tripartite is the Section VI.E checks-and-balances arrangement:
// three collectives — "the analogues of the executive, legislative and
// judiciary branches in human governance" — review each proposed
// policy, and the majority prevails ("assuming that two out of the
// three collectives always prevail").
type Tripartite struct {
	// Executive assesses operational fitness of the policy.
	Executive Reviewer
	// Legislative checks the policy against the meta-policy scope.
	Legislative Reviewer
	// Judiciary arbitrates; it is consulted like the others and
	// breaks executive/legislative splits by majority.
	Judiciary Reviewer
	// Log records every decision; nil disables auditing.
	Log *audit.Log
}

// Approve runs the 2-of-3 vote on a proposed policy.
func (t *Tripartite) Approve(p policy.Policy) (bool, []Vote) {
	var votes []Vote
	approvals := 0
	for _, rev := range []Reviewer{t.Executive, t.Legislative, t.Judiciary} {
		if rev == nil {
			continue
		}
		ok, reason := rev.Review(p)
		votes = append(votes, Vote{Collective: rev.Name(), Approve: ok, Reason: reason})
		if ok {
			approvals++
		}
	}
	needed := int(math.Ceil(float64(len(votes)+1) / 2))
	approved := len(votes) > 0 && approvals >= needed
	if t.Log != nil {
		t.Log.Append(audit.KindOversight, p.ID,
			fmt.Sprintf("policy %s approved=%v (%d/%d votes)", p.ID, approved, approvals, len(votes)),
			map[string]string{"policy": p.String()})
	}
	return approved, votes
}

// SingleOverseer is the ablation baseline: one collective decides
// alone. A compromised single overseer adopts anything.
type SingleOverseer struct {
	Overseer Reviewer
	Log      *audit.Log
}

// Approve consults the lone overseer.
func (s *SingleOverseer) Approve(p policy.Policy) (bool, []Vote) {
	if s.Overseer == nil {
		return false, nil
	}
	ok, reason := s.Overseer.Review(p)
	votes := []Vote{{Collective: s.Overseer.Name(), Approve: ok, Reason: reason}}
	if s.Log != nil {
		s.Log.Append(audit.KindOversight, p.ID,
			fmt.Sprintf("policy %s approved=%v (single overseer)", p.ID, ok), nil)
	}
	return ok, votes
}

// Unanimous is the strictest ablation variant: all collectives must
// approve.
type Unanimous struct {
	Reviewers []Reviewer
	Log       *audit.Log
}

// Approve requires every reviewer's assent.
func (u *Unanimous) Approve(p policy.Policy) (bool, []Vote) {
	votes := make([]Vote, 0, len(u.Reviewers))
	approved := len(u.Reviewers) > 0
	for _, rev := range u.Reviewers {
		ok, reason := rev.Review(p)
		votes = append(votes, Vote{Collective: rev.Name(), Approve: ok, Reason: reason})
		if !ok {
			approved = false
		}
	}
	if u.Log != nil {
		u.Log.Append(audit.KindOversight, p.ID,
			fmt.Sprintf("policy %s approved=%v (unanimous)", p.ID, approved), nil)
	}
	return approved, votes
}

// Approver abstracts the three oversight arrangements for experiments.
type Approver interface {
	Approve(p policy.Policy) (bool, []Vote)
}

var (
	_ Approver = (*Tripartite)(nil)
	_ Approver = (*SingleOverseer)(nil)
	_ Approver = (*Unanimous)(nil)
)
