package guard

import (
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/statespace"
)

func memberStates(t *testing.T, heats ...float64) []statespace.State {
	t.Helper()
	s := guardSchema(t)
	out := make([]statespace.State, len(heats))
	for i, h := range heats {
		st, err := s.StateFromMap(map[string]float64{"heat": h})
		if err != nil {
			t.Fatalf("StateFromMap: %v", err)
		}
		out[i] = st
	}
	return out
}

func TestAggregateSumViolation(t *testing.T) {
	a := &AggregateAssessor{Rules: []AggregateRule{
		{Name: "total-heat", Variable: "heat", Kind: AggregateSum, Limit: 100},
	}}
	// Each member under 80 (individually good), sum 120 > 100.
	violations := a.Assess(memberStates(t, 40, 40, 40))
	if len(violations) != 1 {
		t.Fatalf("violations = %v", violations)
	}
	if violations[0].Value != 120 || violations[0].Rule != "total-heat" {
		t.Errorf("violation = %+v", violations[0])
	}
	if violations[0].String() == "" {
		t.Error("empty violation string")
	}
	if got := a.Assess(memberStates(t, 30, 30)); got != nil {
		t.Errorf("safe collection violated: %v", got)
	}
}

func TestAggregateMaxAndMean(t *testing.T) {
	a := &AggregateAssessor{Rules: []AggregateRule{
		{Name: "peak", Variable: "heat", Kind: AggregateMax, Limit: 70},
		{Name: "avg", Variable: "heat", Kind: AggregateMean, Limit: 50},
	}}
	violations := a.Assess(memberStates(t, 75, 10))
	if len(violations) != 1 || violations[0].Rule != "peak" {
		t.Errorf("violations = %v", violations)
	}
	violations = a.Assess(memberStates(t, 60, 60))
	if len(violations) != 1 || violations[0].Rule != "avg" {
		t.Errorf("violations = %v", violations)
	}
}

func TestAggregateUnknownVariableIgnored(t *testing.T) {
	a := &AggregateAssessor{Rules: []AggregateRule{
		{Name: "ghost", Variable: "nope", Kind: AggregateSum, Limit: 1},
	}}
	if got := a.Assess(memberStates(t, 99, 99)); got != nil {
		t.Errorf("rule over unknown variable fired: %v", got)
	}
}

func TestAssessDistributedMatchesCentral(t *testing.T) {
	a := &AggregateAssessor{Rules: []AggregateRule{
		{Name: "total", Variable: "heat", Kind: AggregateSum, Limit: 100},
		{Name: "peak", Variable: "heat", Kind: AggregateMax, Limit: 45},
		{Name: "avg", Variable: "heat", Kind: AggregateMean, Limit: 35},
	}}
	states := memberStates(t, 40, 30, 20, 50, 10)
	central := a.Assess(states)

	groups := [][]statespace.State{states[:2], states[2:4], states[4:]}
	distributed, messages := a.AssessDistributed(groups)

	if len(central) != len(distributed) {
		t.Fatalf("central %v vs distributed %v", central, distributed)
	}
	for i := range central {
		if central[i] != distributed[i] {
			t.Errorf("violation %d: %+v vs %+v", i, central[i], distributed[i])
		}
	}
	if messages != 9 { // 3 groups × 3 rules
		t.Errorf("messages = %d, want 9", messages)
	}
}

func TestAggregateKindString(t *testing.T) {
	if AggregateSum.String() != "sum" || AggregateMax.String() != "max" ||
		AggregateMean.String() != "mean" || AggregateKind(0).String() != "unknown" {
		t.Error("AggregateKind.String wrong")
	}
}

func admissionFixture(t *testing.T, hit, falseAlarm float64) (*AdmissionController, *audit.Log) {
	t.Helper()
	log := audit.New()
	rng := rand.New(rand.NewSource(9))
	return &AdmissionController{
		Assessor: &AggregateAssessor{Rules: []AggregateRule{
			{Name: "total-heat", Variable: "heat", Kind: AggregateSum, Limit: 100},
		}},
		HitRate:        hit,
		FalseAlarmRate: falseAlarm,
		Rand:           rng.Float64,
		Log:            log,
	}, log
}

func TestAdmissionPerfectAdvisor(t *testing.T) {
	c, log := admissionFixture(t, 1, 0)
	members := memberStates(t, 40, 40)
	candidate := memberStates(t, 40)[0]

	admitted, reason := c.Admit("newcomer", members, candidate)
	if admitted {
		t.Errorf("unsafe admission allowed: %s", reason)
	}
	smallCandidate := memberStates(t, 10)[0]
	admitted, _ = c.Admit("small", members, smallCandidate)
	if !admitted {
		t.Error("safe admission rejected by perfect advisor")
	}
	if len(log.ByKind(audit.KindAdmission)) != 2 {
		t.Error("admissions not audited")
	}
}

func TestAdmissionImperfectAdvisorRates(t *testing.T) {
	c, _ := admissionFixture(t, 0.8, 0.1)
	members := memberStates(t, 40, 40)
	unsafe := memberStates(t, 40)[0]
	safe := memberStates(t, 5)[0]

	const trials = 2000
	unsafeRejected, safeRejected := 0, 0
	for i := 0; i < trials; i++ {
		if ok, _ := c.Admit("u", members, unsafe); !ok {
			unsafeRejected++
		}
		if ok, _ := c.Admit("s", members, safe); !ok {
			safeRejected++
		}
	}
	hit := float64(unsafeRejected) / trials
	fa := float64(safeRejected) / trials
	if hit < 0.75 || hit > 0.85 {
		t.Errorf("hit rate = %.3f, want ≈0.8", hit)
	}
	if fa < 0.05 || fa > 0.15 {
		t.Errorf("false alarm rate = %.3f, want ≈0.1", fa)
	}
}

func TestAdmissionNilRandDefaults(t *testing.T) {
	c := &AdmissionController{
		Assessor: &AggregateAssessor{Rules: []AggregateRule{
			{Name: "total", Variable: "heat", Kind: AggregateSum, Limit: 100},
		}},
		HitRate: 1,
	}
	members := memberStates(t, 60, 60)
	if ok, _ := c.Admit("x", members, memberStates(t, 60)[0]); ok {
		t.Error("nil-Rand controller admitted unsafe configuration with HitRate 1")
	}
}
