package guard

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func guardSchema(t *testing.T) *statespace.Schema {
	t.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("progress", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func ctxAt(t *testing.T, s *statespace.Schema, heat, nextHeat float64, action policy.Action) ActionContext {
	t.Helper()
	curr, err := s.StateFromMap(map[string]float64{"heat": heat})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	next, err := s.StateFromMap(map[string]float64{"heat": nextHeat})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	return ActionContext{Actor: "dev-1", Action: action, State: curr, Next: next}
}

// denyGuard denies everything with a fixed reason.
type denyGuard struct{ reason string }

func (d denyGuard) Name() string { return "deny" }
func (d denyGuard) Check(ActionContext) Verdict {
	return Verdict{Decision: DecisionDeny, Guard: "deny", Reason: d.reason}
}

// rewriteGuard allows and appends an obligation.
type rewriteGuard struct{}

func (rewriteGuard) Name() string { return "rewrite" }
func (rewriteGuard) Check(ctx ActionContext) Verdict {
	return Verdict{Decision: DecisionAllow, Action: ctx.Action.WithObligations("added"), Guard: "rewrite"}
}

// badGuard returns an invalid decision.
type badGuard struct{}

func (badGuard) Name() string                { return "bad" }
func (badGuard) Check(ActionContext) Verdict { return Verdict{} }

func TestPipelineAllChainAllows(t *testing.T) {
	s := guardSchema(t)
	p := NewPipeline(nil, AllowAll{}, rewriteGuard{}, AllowAll{})
	v := p.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "act"}))
	if !v.Allowed() {
		t.Fatalf("verdict = %+v", v)
	}
	if len(v.Action.Obligations) != 1 || v.Action.Obligations[0] != "added" {
		t.Errorf("rewritten action lost: %+v", v.Action)
	}
	if !strings.Contains(p.Name(), "allow-all→rewrite") {
		t.Errorf("pipeline name = %q", p.Name())
	}
}

func TestPipelineFirstDenyWinsAndAudits(t *testing.T) {
	s := guardSchema(t)
	log := audit.New()
	p := NewPipeline(log, AllowAll{}, denyGuard{reason: "nope"}, rewriteGuard{})
	v := p.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "act"}))
	if v.Allowed() || v.Reason != "nope" {
		t.Fatalf("verdict = %+v", v)
	}
	denials := log.ByKind(audit.KindDenial)
	if len(denials) != 1 || denials[0].Context["guard"] != "deny" {
		t.Errorf("denial audit = %+v", denials)
	}
}

func TestPipelineFailsClosedOnInvalidVerdict(t *testing.T) {
	s := guardSchema(t)
	p := NewPipeline(nil, badGuard{})
	v := p.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "act"}))
	if v.Allowed() {
		t.Error("invalid verdict allowed through")
	}
	if !strings.Contains(v.Reason, "failing closed") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestPipelineAppend(t *testing.T) {
	s := guardSchema(t)
	p := NewPipeline(nil, AllowAll{})
	p.Append(denyGuard{reason: "later"})
	if v := p.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "a"})); v.Allowed() {
		t.Error("appended guard not consulted")
	}
}

func TestPipelineAuditsBreakGlass(t *testing.T) {
	s := guardSchema(t)
	log := audit.New()
	breakGlassGuard := guardFunc(func(ctx ActionContext) Verdict {
		return Verdict{Decision: DecisionAllow, Action: ctx.Action, Guard: "bg", Reason: "escape", BrokeGlass: true}
	})
	p := NewPipeline(log, breakGlassGuard)
	v := p.Check(ctxAt(t, s, 90, 80, policy.Action{Name: "vent"}))
	if !v.Allowed() {
		t.Fatalf("verdict = %+v", v)
	}
	bgs := log.ByKind(audit.KindBreakGlass)
	if len(bgs) != 1 || bgs[0].Context["action"] != "vent" {
		t.Errorf("break-glass audit = %+v", bgs)
	}
	if !v.BrokeGlass {
		t.Error("pipeline verdict lost the BrokeGlass flag")
	}
	if v.Reason != "escape" {
		t.Errorf("pipeline verdict lost the break-glass reason: %q", v.Reason)
	}
}

// guardFunc adapts a function to Guard for tests.
type guardFunc func(ActionContext) Verdict

func (guardFunc) Name() string                      { return "func" }
func (g guardFunc) Check(ctx ActionContext) Verdict { return g(ctx) }

func TestDecisionString(t *testing.T) {
	tests := []struct {
		d    Decision
		want string
	}{
		{d: DecisionAllow, want: "allow"},
		{d: DecisionDeny, want: "deny"},
		{d: DecisionDeactivate, want: "deactivate"},
		{d: Decision(0), want: "unknown"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Decision(%d).String() = %q, want %q", int(tt.d), got, tt.want)
		}
	}
}

func TestPipelineDeactivateAudit(t *testing.T) {
	s := guardSchema(t)
	log := audit.New()
	g := guardFunc(func(ActionContext) Verdict {
		return Verdict{Decision: DecisionDeactivate, Guard: "w", Reason: "rogue"}
	})
	p := NewPipeline(log, g)
	v := p.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "a"}))
	if v.Decision != DecisionDeactivate {
		t.Fatalf("verdict = %+v", v)
	}
	if len(log.ByKind(audit.KindDeactivate)) != 1 {
		t.Error("deactivate not audited")
	}
}
