package guard

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func kineticTaxonomy(t *testing.T) *ontology.Taxonomy {
	t.Helper()
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("fire-weapon", "kinetic-action"); err != nil {
		t.Fatalf("AddIsA: %v", err)
	}
	return tx
}

func scopeReviewer(t *testing.T, label string) *ScopeReviewer {
	t.Helper()
	return &ScopeReviewer{
		Label: label,
		Rules: []ScopeRule{
			ForbidCategory{Taxonomy: kineticTaxonomy(t), Concept: "kinetic-action"},
			MaxEffectMagnitude{Limit: 10},
			PriorityCap{Max: 50},
		},
	}
}

func benignPolicy() policy.Policy {
	return policy.Policy{
		ID: "benign", EventType: "smoke", Modality: policy.ModalityDo,
		Action:   policy.Action{Name: "observe", Category: "surveillance"},
		Priority: 5,
	}
}

func malevolentPolicy() policy.Policy {
	return policy.Policy{
		ID: "malevolent", EventType: "*", Modality: policy.ModalityDo,
		Action:   policy.Action{Name: "engage", Category: "fire-weapon"},
		Priority: 5,
	}
}

func TestScopeRules(t *testing.T) {
	tx := kineticTaxonomy(t)
	tests := []struct {
		name string
		rule ScopeRule
		p    policy.Policy
		want bool
	}{
		{name: "forbid hits subcategory", rule: ForbidCategory{Taxonomy: tx, Concept: "kinetic-action"}, p: malevolentPolicy(), want: false},
		{name: "forbid passes benign", rule: ForbidCategory{Taxonomy: tx, Concept: "kinetic-action"}, p: benignPolicy(), want: true},
		{name: "forbid ignores forbid-policies", rule: ForbidCategory{Concept: "x"},
			p: policy.Policy{ID: "f", EventType: "e", Modality: policy.ModalityForbid, Action: policy.Action{Category: "x"}}, want: true},
		{name: "forbid equality without taxonomy", rule: ForbidCategory{Concept: "fire-weapon"}, p: malevolentPolicy(), want: false},
		{name: "effect cap passes", rule: MaxEffectMagnitude{Limit: 10}, p: benignPolicy(), want: true},
		{name: "effect cap rejects", rule: MaxEffectMagnitude{Limit: 1},
			p: policy.Policy{ID: "big", EventType: "e", Modality: policy.ModalityDo,
				Action: policy.Action{Name: "a", Effect: statespace.Delta{"x": 5}}}, want: false},
		{name: "priority cap rejects", rule: PriorityCap{Max: 3}, p: benignPolicy(), want: false},
		{name: "priority cap passes", rule: PriorityCap{Max: 50}, p: benignPolicy(), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, reason := tt.rule.Check(tt.p)
			if got != tt.want {
				t.Errorf("Check = %v (%s), want %v", got, reason, tt.want)
			}
		})
	}
}

func TestRequireCondition(t *testing.T) {
	tx := kineticTaxonomy(t)
	rule := RequireCondition{Taxonomy: tx, Concept: "kinetic-action"}

	unconditional := malevolentPolicy()
	if ok, _ := rule.Check(unconditional); ok {
		t.Error("unconditional sensitive policy passed")
	}
	trivial := malevolentPolicy()
	trivial.Condition = policy.True{}
	if ok, _ := rule.Check(trivial); ok {
		t.Error("trivially-true sensitive policy passed")
	}
	guarded := malevolentPolicy()
	guarded.Condition = policy.Threshold{Quantity: "threat", Op: policy.CmpGT, Value: 0.9}
	if ok, _ := rule.Check(guarded); !ok {
		t.Error("conditioned sensitive policy rejected")
	}
	if ok, _ := rule.Check(benignPolicy()); !ok {
		t.Error("non-sensitive policy rejected")
	}
}

func TestScopeReviewerFirstFailureWins(t *testing.T) {
	r := scopeReviewer(t, "legislative")
	if ok, _ := r.Review(benignPolicy()); !ok {
		t.Error("benign policy rejected")
	}
	if ok, reason := r.Review(malevolentPolicy()); ok || reason == "" {
		t.Error("malevolent policy approved")
	}
	if r.Name() != "legislative" {
		t.Errorf("Name = %q", r.Name())
	}
}

func tripartiteFixture(t *testing.T) (*Tripartite, *audit.Log) {
	t.Helper()
	log := audit.New()
	return &Tripartite{
		Executive:   scopeReviewer(t, "executive"),
		Legislative: scopeReviewer(t, "legislative"),
		Judiciary:   scopeReviewer(t, "judiciary"),
		Log:         log,
	}, log
}

func TestTripartiteMajority(t *testing.T) {
	tri, log := tripartiteFixture(t)
	ok, votes := tri.Approve(benignPolicy())
	if !ok || len(votes) != 3 {
		t.Errorf("benign: ok=%v votes=%v", ok, votes)
	}
	ok, _ = tri.Approve(malevolentPolicy())
	if ok {
		t.Error("malevolent policy approved by healthy tripartite")
	}
	if len(log.ByKind(audit.KindOversight)) != 2 {
		t.Error("oversight decisions not audited")
	}
}

func TestTripartiteSurvivesOneCompromisedCollective(t *testing.T) {
	tri, _ := tripartiteFixture(t)
	// Compromise the executive: it approves everything.
	tri.Executive = ReviewerFunc{Label: "compromised-executive", Fn: func(policy.Policy) (bool, string) {
		return true, "rubber stamp"
	}}
	ok, votes := tri.Approve(malevolentPolicy())
	if ok {
		t.Errorf("malevolent policy approved with one compromised collective: %v", votes)
	}
}

func TestTripartiteFallsToTwoCompromised(t *testing.T) {
	tri, _ := tripartiteFixture(t)
	stamp := ReviewerFunc{Label: "stamp", Fn: func(policy.Policy) (bool, string) { return true, "" }}
	tri.Executive = stamp
	tri.Judiciary = stamp
	if ok, _ := tri.Approve(malevolentPolicy()); !ok {
		t.Error("2-of-3 compromised should approve (documents the mechanism's limit)")
	}
}

func TestTripartiteNilReviewersRejected(t *testing.T) {
	tri := &Tripartite{}
	if ok, votes := tri.Approve(benignPolicy()); ok || votes != nil {
		t.Error("empty tripartite approved")
	}
}

func TestSingleOverseer(t *testing.T) {
	log := audit.New()
	s := &SingleOverseer{Overseer: scopeReviewer(t, "solo"), Log: log}
	if ok, _ := s.Approve(benignPolicy()); !ok {
		t.Error("benign rejected")
	}
	if ok, _ := s.Approve(malevolentPolicy()); ok {
		t.Error("malevolent approved by healthy overseer")
	}
	// Compromised single overseer: no backstop.
	s.Overseer = ReviewerFunc{Label: "stamp", Fn: func(policy.Policy) (bool, string) { return true, "" }}
	if ok, _ := s.Approve(malevolentPolicy()); !ok {
		t.Error("compromised single overseer should approve (the vulnerability E6 measures)")
	}
	var empty SingleOverseer
	if ok, _ := empty.Approve(benignPolicy()); ok {
		t.Error("nil overseer approved")
	}
}

func TestUnanimous(t *testing.T) {
	u := &Unanimous{Reviewers: []Reviewer{
		scopeReviewer(t, "a"),
		ReviewerFunc{Label: "nitpick", Fn: func(p policy.Policy) (bool, string) {
			return p.Priority < 3, "priority taste"
		}},
	}}
	if ok, _ := u.Approve(benignPolicy()); ok {
		t.Error("unanimous approved despite one rejection")
	}
	low := benignPolicy()
	low.Priority = 1
	if ok, _ := u.Approve(low); !ok {
		t.Error("unanimous rejected fully-approved policy")
	}
	var empty Unanimous
	if ok, _ := empty.Approve(benignPolicy()); ok {
		t.Error("empty unanimous approved")
	}
}

func TestReviewerFuncNil(t *testing.T) {
	r := ReviewerFunc{Label: "x"}
	if ok, _ := r.Review(benignPolicy()); ok {
		t.Error("nil review function approved")
	}
}
