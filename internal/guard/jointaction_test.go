package guard

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/statespace"
)

func jointAssessor() *AggregateAssessor {
	return &AggregateAssessor{Rules: []AggregateRule{
		{Name: "total-heat", Variable: "heat", Kind: AggregateSum, Limit: 150},
	}}
}

func proposal(t *testing.T, actor string, heatNow, heatDelta float64, priority int) ProposedAction {
	t.Helper()
	st, err := guardSchema(t).StateFromMap(map[string]float64{"heat": heatNow})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	return ProposedAction{
		Actor: actor,
		Action: policy.Action{
			Name:   "run",
			Effect: statespace.Delta{"heat": heatDelta},
		},
		State:    st,
		Priority: priority,
	}
}

func TestJointActionsAllSafe(t *testing.T) {
	proposals := []ProposedAction{
		proposal(t, "a", 20, 10, 1),
		proposal(t, "b", 30, 10, 1),
		proposal(t, "c", 40, 10, 1),
	}
	v, err := AssessJointActions(jointAssessor(), proposals)
	if err != nil {
		t.Fatalf("AssessJointActions: %v", err)
	}
	if len(v.Approved) != 3 || len(v.Shed) != 0 || len(v.Violations) != 0 {
		t.Errorf("verdict = %+v", v)
	}
}

func TestJointActionsShedsLowestPriority(t *testing.T) {
	// Each device individually fine (next heat < 80), but the joint
	// plan sums to 60+60+60 = 180 > 150.
	proposals := []ProposedAction{
		proposal(t, "critical", 30, 30, 9),
		proposal(t, "routine", 30, 30, 1),
		proposal(t, "important", 30, 30, 5),
	}
	v, err := AssessJointActions(jointAssessor(), proposals)
	if err != nil {
		t.Fatalf("AssessJointActions: %v", err)
	}
	if len(v.Violations) == 0 {
		t.Fatal("no violations recorded for an unsafe joint plan")
	}
	if len(v.Shed) != 1 || v.Shed[0].Actor != "routine" {
		t.Fatalf("shed = %+v, want only the routine proposal", v.Shed)
	}
	if len(v.Approved) != 2 {
		t.Errorf("approved = %+v", v.Approved)
	}
	// After shedding: 60 + 60 + 30 (routine holds) = 150 ≤ limit.
}

func TestJointActionsShedsUntilSafe(t *testing.T) {
	proposals := []ProposedAction{
		proposal(t, "a", 60, 15, 1), // next 75
		proposal(t, "b", 60, 15, 2), // next 75
		proposal(t, "c", 60, 15, 3), // next 75 — total 225
	}
	v, err := AssessJointActions(jointAssessor(), proposals)
	if err != nil {
		t.Fatalf("AssessJointActions: %v", err)
	}
	// Even all-shed totals 180 > 150: everything sheds, nothing
	// approved — the formation itself is bad, which is the admission
	// controller's job to prevent.
	if len(v.Approved) != 0 || len(v.Shed) != 3 {
		t.Errorf("verdict = %+v", v)
	}
	// Shedding order follows priority.
	if v.Shed[0].Actor != "a" || v.Shed[1].Actor != "b" || v.Shed[2].Actor != "c" {
		t.Errorf("shed order = %v", v.Shed)
	}
}

func TestJointActionsTieBreakDeterministic(t *testing.T) {
	run := func() []string {
		proposals := []ProposedAction{
			proposal(t, "zeta", 40, 30, 1),
			proposal(t, "alpha", 40, 30, 1),
			proposal(t, "mid", 40, 30, 5),
		}
		v, err := AssessJointActions(jointAssessor(), proposals)
		if err != nil {
			t.Fatalf("AssessJointActions: %v", err)
		}
		var shed []string
		for _, s := range v.Shed {
			shed = append(shed, s.Actor)
		}
		return shed
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("nothing shed")
	}
	if first[0] != "alpha" {
		t.Errorf("tie-break order = %v, want alpha first", first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("nondeterministic shedding")
		}
	}
}

func TestJointActionsErrors(t *testing.T) {
	if _, err := AssessJointActions(nil, nil); err == nil {
		t.Error("nil assessor accepted")
	}
	bad := ProposedAction{Actor: "x", Action: policy.Action{Name: "a"}}
	if _, err := AssessJointActions(jointAssessor(), []ProposedAction{bad}); err == nil {
		t.Error("invalid state accepted")
	}
	withGhost := proposal(t, "g", 10, 0, 1)
	withGhost.Action.Effect = statespace.Delta{"ghost": 1}
	if _, err := AssessJointActions(jointAssessor(), []ProposedAction{withGhost}); err == nil {
		t.Error("unknown effect variable accepted")
	}
	v, err := AssessJointActions(jointAssessor(), nil)
	if err != nil || len(v.Approved) != 0 {
		t.Errorf("empty proposals: %+v, %v", v, err)
	}
}
