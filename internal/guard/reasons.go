package guard

import (
	"sync"

	"repro/internal/intern"
	"repro/internal/statespace"
)

// Guard verdict reasons are appended to every audit entry, so on a
// fleet run they are built millions of times. The helpers here render
// the exact strings the previous fmt.Sprintf calls produced, but into
// pooled buffers, and the finished rendering is deduplicated through
// intern.Dedup — a fleet denying the same action for the same cause
// every tick retains one reason string, not one per denial.

var reasonPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

func reasonBuf() *[]byte {
	b := reasonPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func reasonDone(b *[]byte) string {
	s := intern.Dedup(*b)
	reasonPool.Put(b)
	return s
}

// nextStateReason is the allow reason for a non-bad predicted state —
// a constant per class, identical to
// fmt.Sprintf("next state is %s", class).
func nextStateReason(c statespace.Class) string {
	switch c {
	case statespace.ClassGood:
		return "next state is good"
	case statespace.ClassNeutral:
		return "next state is neutral"
	case statespace.ClassBad:
		return "next state is bad"
	default:
		return "next state is unknown"
	}
}

// holdStateReason renders the hold-position denial, identical to
// fmt.Sprintf("action %s would enter bad state %s; holding %s state",
// action, next, curr).
func holdStateReason(action string, next statespace.State, curr statespace.Class) string {
	b := reasonBuf()
	*b = append(*b, "action "...)
	*b = append(*b, action...)
	*b = append(*b, " would enter bad state "...)
	*b = next.AppendText(*b)
	*b = append(*b, "; holding "...)
	*b = append(*b, curr.String()...)
	*b = append(*b, " state"...)
	return reasonDone(b)
}
