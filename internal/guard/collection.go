package guard

import (
	"fmt"
	"math"

	"repro/internal/audit"
	"repro/internal/statespace"
)

// AggregateKind selects how an aggregate rule combines member values.
type AggregateKind int

// Aggregate kinds.
const (
	AggregateSum AggregateKind = iota + 1
	AggregateMax
	AggregateMean
)

// String names the kind.
func (k AggregateKind) String() string {
	switch k {
	case AggregateSum:
		return "sum"
	case AggregateMax:
		return "max"
	case AggregateMean:
		return "mean"
	default:
		return "unknown"
	}
}

// AggregateRule is one collection-level constraint: combine a state
// variable across all members and compare against a limit. It captures
// the paper's heat example (Section VI.D): each component's heat is
// individually acceptable "but the cumulative amount of heat generated
// may exceed the safety limits of the device".
type AggregateRule struct {
	Name     string
	Variable string
	Kind     AggregateKind
	// Limit is the highest safe aggregate value; above it the
	// collection is in a bad aggregate state.
	Limit float64
}

// Violation reports one breached aggregate rule.
type Violation struct {
	Rule  string
	Value float64
	Limit float64
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %.3f exceeds limit %.3f", v.Rule, v.Value, v.Limit)
}

// partial is a distributable summary of one group's values.
type partial struct {
	sum   float64
	max   float64
	count int
}

func newPartial() partial { return partial{max: math.Inf(-1)} }

func (p partial) add(v float64) partial {
	p.sum += v
	if v > p.max {
		p.max = v
	}
	p.count++
	return p
}

func (p partial) merge(q partial) partial {
	p.sum += q.sum
	if q.max > p.max {
		p.max = q.max
	}
	p.count += q.count
	return p
}

func (p partial) value(kind AggregateKind) float64 {
	switch kind {
	case AggregateSum:
		return p.sum
	case AggregateMax:
		return p.max
	case AggregateMean:
		if p.count == 0 {
			return 0
		}
		return p.sum / float64(p.count)
	default:
		return math.NaN()
	}
}

// AggregateAssessor evaluates collection-level constraints over member
// states — the "collaborative state assessment techniques by which a
// group of devices would jointly determine whether a set of actions
// ... could lead to some aggregate bad states, even though each device
// would still be in good state" (Section VI.D).
type AggregateAssessor struct {
	Rules []AggregateRule
}

// Assess evaluates all rules centrally over the member states and
// returns any violations, in rule order.
func (a *AggregateAssessor) Assess(states []statespace.State) []Violation {
	groups := [][]statespace.State{states}
	violations, _ := a.AssessDistributed(groups)
	return violations
}

// AssessDistributed evaluates the rules collaboratively: each group
// computes a partial summary locally and only the summaries are merged
// — the gossip-friendly variant. It returns the violations and the
// number of partial-summary messages exchanged (one per group per
// rule), for the centralized-vs-collaborative ablation.
func (a *AggregateAssessor) AssessDistributed(groups [][]statespace.State) ([]Violation, int) {
	var violations []Violation
	messages := 0
	for _, r := range a.Rules {
		merged := newPartial()
		for _, group := range groups {
			local := newPartial()
			for _, st := range group {
				if v, err := st.Get(r.Variable); err == nil {
					local = local.add(v)
				}
			}
			if local.count > 0 {
				messages++
			}
			merged = merged.merge(local)
		}
		if merged.count == 0 {
			continue
		}
		if v := merged.value(r.Kind); v > r.Limit {
			violations = append(violations, Violation{Rule: r.Name, Value: v, Limit: r.Limit})
		}
	}
	return violations, messages
}

// AdmissionController is the collection-formation check of
// Section VI.D: "a human check each time a network of devices is
// formed ... assisted by another machine which remains offline ... to
// run through a situational analysis of whether the new network
// configuration can potentially cause harm."
//
// The offline advisor is modeled with configurable detection
// characteristics: HitRate is the probability a truly unsafe
// configuration is rejected; FalseAlarmRate is the probability a safe
// configuration is rejected anyway.
type AdmissionController struct {
	// Assessor computes ground-truth aggregate violations (required).
	Assessor *AggregateAssessor
	// HitRate is the advisor's true-positive rate; 1 is a perfect
	// advisor.
	HitRate float64
	// FalseAlarmRate is the advisor's false-positive rate.
	FalseAlarmRate float64
	// Rand yields uniform samples in [0,1); required when either rate
	// is strictly between 0 and 1.
	Rand func() float64
	// Log receives admission decisions; nil disables auditing.
	Log *audit.Log
}

// Admit decides whether adding candidate to the collection with the
// given member states is allowed. It returns the decision and the
// advisor's stated reason.
func (c *AdmissionController) Admit(candidateID string, members []statespace.State, candidate statespace.State) (bool, string) {
	all := make([]statespace.State, 0, len(members)+1)
	all = append(all, members...)
	all = append(all, candidate)
	violations := c.Assessor.Assess(all)

	admitted, reason := c.decide(violations)
	if c.Log != nil {
		detail := fmt.Sprintf("admit %s: %v (%s)", candidateID, admitted, reason)
		c.Log.Append(audit.KindAdmission, candidateID, detail, nil)
	}
	return admitted, reason
}

func (c *AdmissionController) decide(violations []Violation) (bool, string) {
	if len(violations) > 0 {
		if c.sample() < c.HitRate {
			return false, fmt.Sprintf("advisor detected %s", violations[0])
		}
		return true, "advisor missed an unsafe configuration"
	}
	if c.sample() < c.FalseAlarmRate {
		return false, "advisor false alarm on a safe configuration"
	}
	return true, "configuration assessed safe"
}

func (c *AdmissionController) sample() float64 {
	if c.Rand == nil {
		return 0.5
	}
	return c.Rand()
}
