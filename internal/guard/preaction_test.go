package guard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/policy"
)

func obligationFixture(t *testing.T) *ontology.ObligationOntology {
	t.Helper()
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("dig-hole", "terrain-change"); err != nil {
		t.Fatalf("AddIsA: %v", err)
	}
	oo := ontology.NewObligationOntology(tx)
	for _, ob := range []ontology.Obligation{
		{Name: "post-warning-sign", AppliesTo: "terrain-change", Cost: 1},
		{Name: "broadcast-alert", AppliesTo: "terrain-change", Cost: 3},
	} {
		if err := oo.Register(ob); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	return oo
}

func TestPreActionDeniesPredictedHarm(t *testing.T) {
	s := guardSchema(t)
	g := &PreActionGuard{
		Predictor: HarmPredictorFunc(func(ActionContext) float64 { return 0.9 }),
		Threshold: 0.5,
	}
	v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "strike"}))
	if v.Allowed() {
		t.Fatalf("harmful action allowed: %+v", v)
	}
	if !strings.Contains(v.Reason, "0.90") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestPreActionZeroThresholdIsStrict(t *testing.T) {
	s := guardSchema(t)
	g := &PreActionGuard{
		Predictor: HarmPredictorFunc(func(ActionContext) float64 { return 0.01 }),
	}
	if v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "strike"})); v.Allowed() {
		t.Error("strict threshold allowed nonzero harm")
	}
	safe := &PreActionGuard{Predictor: HarmPredictorFunc(func(ActionContext) float64 { return 0 })}
	if v := safe.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "move"})); !v.Allowed() {
		t.Error("harmless action denied under strict threshold")
	}
}

func TestPreActionAttachesObligations(t *testing.T) {
	s := guardSchema(t)
	g := &PreActionGuard{
		Obligations: obligationFixture(t),
	}
	v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "dig", Category: "dig-hole"}))
	if !v.Allowed() {
		t.Fatalf("verdict = %+v", v)
	}
	if len(v.Action.Obligations) != 2 || v.Action.Obligations[0] != "post-warning-sign" {
		t.Errorf("obligations = %v", v.Action.Obligations)
	}
}

func TestPreActionObligationBudget(t *testing.T) {
	s := guardSchema(t)
	g := &PreActionGuard{
		Obligations:      obligationFixture(t),
		ObligationBudget: 1.5,
	}
	v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "dig", Category: "dig-hole"}))
	if len(v.Action.Obligations) != 1 || v.Action.Obligations[0] != "post-warning-sign" {
		t.Errorf("budgeted obligations = %v", v.Action.Obligations)
	}
}

func TestPreActionNoCategoryNoObligations(t *testing.T) {
	s := guardSchema(t)
	g := &PreActionGuard{Obligations: obligationFixture(t)}
	v := g.Check(ctxAt(t, s, 0, 0, policy.Action{Name: "move"}))
	if len(v.Action.Obligations) != 0 {
		t.Errorf("obligations attached without category: %v", v.Action.Obligations)
	}
}

func TestPreActionAllowsNoOp(t *testing.T) {
	s := guardSchema(t)
	g := &PreActionGuard{
		Predictor: HarmPredictorFunc(func(ActionContext) float64 { return 1 }),
	}
	if v := g.Check(ctxAt(t, s, 0, 0, policy.NoAction)); !v.Allowed() {
		t.Error("no-op denied")
	}
}

func TestDegradedPredictorMissesAtConfiguredRate(t *testing.T) {
	s := guardSchema(t)
	rng := rand.New(rand.NewSource(5))
	d := &DegradedPredictor{
		Inner:    HarmPredictorFunc(func(ActionContext) float64 { return 1 }),
		Accuracy: 0.7,
		Rand:     rng.Float64,
	}
	ctx := ctxAt(t, s, 0, 0, policy.Action{Name: "strike"})
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if d.PredictHarm(ctx) > 0 {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.65 || rate > 0.75 {
		t.Errorf("hit rate = %.3f, want ≈0.7", rate)
	}
	// Zero-harm predictions are never inverted into false alarms.
	clean := &DegradedPredictor{
		Inner:    HarmPredictorFunc(func(ActionContext) float64 { return 0 }),
		Accuracy: 0.1,
		Rand:     rng.Float64,
	}
	for i := 0; i < 100; i++ {
		if clean.PredictHarm(ctx) != 0 {
			t.Fatal("degraded predictor invented harm")
		}
	}
}

func TestDischargerFunc(t *testing.T) {
	called := ""
	d := DischargerFunc(func(ob string, a policy.Action) error {
		called = ob + ":" + a.Name
		return nil
	})
	if err := d.Discharge("warn", policy.Action{Name: "dig"}); err != nil {
		t.Fatalf("Discharge: %v", err)
	}
	if called != "warn:dig" {
		t.Errorf("called = %q", called)
	}
}
