// Package guard implements the paper's prevention mechanisms
// (Section VI) as composable checks on device actions:
//
//   - PreActionGuard — VI.A: check before activating any actuator that
//     the action will not harm a human; attach obligations that
//     mitigate indirect harm.
//   - StateSpaceGuard — VI.B: never take an action that moves the
//     device into a bad state; pick the least-bad option (preference
//     ontology + risk estimation) when only bad options exist; allow
//     audited break-glass overrides.
//   - Watchdog / Deactivator — VI.C: deactivate devices that enter (or
//     keep trying to enter) bad states, through a tamper-resistant
//     kill-switch.
//   - AdmissionController / AggregateAssessor — VI.D: check collection
//     formation, and collaboratively assess whether individually-good
//     devices form a collectively-bad system.
//   - Tripartite — VI.E: AI overseeing AI; executive, legislative and
//     judiciary collectives keep each other in check with 2-of-3
//     arbitration over policy scope.
//
// A Pipeline chains guards in order; the first denial wins, and allows
// may rewrite the action (e.g. attaching obligations).
package guard

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// ActionContext is everything a guard may inspect when checking one
// proposed action.
type ActionContext struct {
	// Actor is the device proposing the action.
	Actor string
	// Action is the proposed actuator invocation.
	Action policy.Action
	// State is the device's current state.
	State statespace.State
	// Next is the predicted state after the action's effect.
	Next statespace.State
	// Env is the policy environment that produced the action.
	Env policy.Env
	// Policies is the immutable decision-plane snapshot the action was
	// decided under. Guards consult it instead of re-evaluating the
	// live, mutable set, so a reprogramming attack racing the guard
	// check cannot change the rules mid-flight. Nil when the action
	// did not come through policy evaluation.
	Policies *policy.Snapshot
	// Trace is the causal context of the command that produced the
	// action; an instrumented pipeline parents its per-guard spans on
	// it and stamps the trace ID into audit entries. The zero value
	// (no tracing) is fine.
	Trace telemetry.SpanContext
	// Journal, when set, reroutes the audit appends this check makes
	// (denials, break-glass records, tamper notes) to a staging buffer
	// — the sim engine's deterministic merge lane in parallel runs. A
	// guard whose own log is nil still audits nothing: the journal
	// redirects appends, it never enables them. Nil means append
	// directly.
	Journal audit.Journal
}

// Decision is a guard's ruling on an action.
type Decision int

// Decision values.
const (
	// DecisionAllow permits the action (possibly rewritten).
	DecisionAllow Decision = iota + 1
	// DecisionDeny blocks the action.
	DecisionDeny
	// DecisionDeactivate blocks the action and requests the actor's
	// deactivation.
	DecisionDeactivate
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case DecisionAllow:
		return "allow"
	case DecisionDeny:
		return "deny"
	case DecisionDeactivate:
		return "deactivate"
	default:
		return "unknown"
	}
}

// Verdict is the outcome of a guard check.
type Verdict struct {
	Decision Decision
	// Action is the (possibly rewritten) action when allowed.
	Action policy.Action
	// Guard names the guard that produced the verdict.
	Guard string
	// Reason explains the verdict for audit records.
	Reason string
	// BrokeGlass is set when the allow was obtained through a
	// break-glass override.
	BrokeGlass bool
}

// Allowed reports whether the verdict permits the action.
func (v Verdict) Allowed() bool { return v.Decision == DecisionAllow }

// Guard is one safety check on proposed actions.
type Guard interface {
	// Name identifies the guard in verdicts and audit records.
	Name() string
	// Check rules on the action.
	Check(ActionContext) Verdict
}

// Pipeline chains guards: each allowed verdict feeds its (possibly
// rewritten) action to the next guard; the first deny or deactivate
// verdict stops the chain. Denials and break-glass allows are audited.
// An instrumented pipeline (see Instrument) additionally counts every
// verdict, times every check, and emits one causally linked span per
// guard stage.
type Pipeline struct {
	guards []Guard
	log    *audit.Log
	name   string // cached Name() — rebuilt on Append

	// denyCtx caches the denial audit context: a device denied the
	// same action by the same guard tick after tick reuses one
	// immutable map instead of allocating one per denial.
	denyCtx audit.CtxCache

	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	instr   map[string]*guardInstruments
}

// guardInstruments caches one guard's metric handles so the per-check
// cost is atomic increments, not registry lookups.
type guardInstruments struct {
	allow, deny, deactivate *telemetry.Counter
	breakGlass              *telemetry.Counter
	invalid                 *telemetry.Counter
	checkMS                 *telemetry.Histogram
}

var _ Guard = (*Pipeline)(nil)

// NewPipeline builds a pipeline over the guards in check order. The
// audit log may be nil to disable auditing.
func NewPipeline(log *audit.Log, guards ...Guard) *Pipeline {
	p := &Pipeline{log: log, guards: make([]Guard, len(guards))}
	copy(p.guards, guards)
	p.rename()
	return p
}

// rename recomputes the cached pipeline name.
func (p *Pipeline) rename() {
	names := make([]string, len(p.guards))
	for i, g := range p.guards {
		names[i] = g.Name()
	}
	p.name = "pipeline(" + strings.Join(names, "\u2192") + ")"
}

// Instrument attaches telemetry: per-guard decision counters
// (guard.decisions), check latency histograms (guard.check_ms),
// break-glass and invalid-decision counters, and — with a tracer —
// one span per guard stage, parented on the action's trace context.
// Either argument may be nil. Uninstrumented pipelines pay one nil
// check per guard.
func (p *Pipeline) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	p.metrics = reg
	p.tracer = tracer
	p.instr = nil
	if reg == nil {
		return
	}
	p.instr = make(map[string]*guardInstruments, len(p.guards))
	for _, g := range p.guards {
		p.instrumentsFor(g.Name())
	}
}

// instrumentsFor returns (creating on first use) the cached handles
// for one guard name.
func (p *Pipeline) instrumentsFor(name string) *guardInstruments {
	if p.metrics == nil {
		return nil
	}
	if gi, ok := p.instr[name]; ok {
		return gi
	}
	gi := &guardInstruments{
		allow:      p.metrics.Counter("guard.decisions", "guard", name, "decision", "allow"),
		deny:       p.metrics.Counter("guard.decisions", "guard", name, "decision", "deny"),
		deactivate: p.metrics.Counter("guard.decisions", "guard", name, "decision", "deactivate"),
		breakGlass: p.metrics.Counter("guard.break_glass", "guard", name),
		invalid:    p.metrics.Counter("guard.invalid_decision", "guard", name),
		checkMS:    p.metrics.Histogram("guard.check_ms", "guard", name),
	}
	if p.instr == nil {
		p.instr = make(map[string]*guardInstruments)
	}
	p.instr[name] = gi
	return gi
}

// observe records one guard verdict into the cached handles.
func (gi *guardInstruments) observe(v Verdict, elapsed time.Duration) {
	if gi == nil {
		return
	}
	gi.checkMS.Observe(float64(elapsed.Nanoseconds()) / 1e6)
	switch v.Decision {
	case DecisionAllow:
		gi.allow.Inc()
		if v.BrokeGlass {
			gi.breakGlass.Inc()
		}
	case DecisionDeny:
		gi.deny.Inc()
	case DecisionDeactivate:
		gi.deactivate.Inc()
	default:
		gi.invalid.Inc()
	}
}

// Name identifies the pipeline. The name is precomputed, so calling
// it on the hot path costs nothing.
func (p *Pipeline) Name() string { return p.name }

// Check runs the action through every guard in order.
func (p *Pipeline) Check(ctx ActionContext) Verdict {
	current := ctx
	brokeGlass := false
	lastReason := "all guards passed"
	log := audit.Resolve(ctx.Journal, p.log)
	instrumented := p.metrics != nil || p.tracer != nil
	for _, g := range p.guards {
		var gi *guardInstruments
		var span *telemetry.Span
		var start time.Time
		if instrumented {
			gi = p.instr[g.Name()]
			span = p.tracer.StartSpan("guard.check", ctx.Actor, ctx.Trace)
			span.SetAttr("guard", g.Name())
			span.SetAttr("action", current.Action.Name)
			start = time.Now()
		}
		v := g.Check(current)
		if instrumented {
			gi.observe(v, time.Since(start))
			span.SetAttr("decision", v.Decision.String())
			span.SetAttr("reason", v.Reason)
			if v.BrokeGlass {
				span.SetAttr("break-glass", "true")
			}
			span.Finish()
		}
		switch v.Decision {
		case DecisionAllow:
			current.Action = v.Action
			if v.BrokeGlass {
				brokeGlass = true
				lastReason = v.Reason
			}
			if v.BrokeGlass && log != nil {
				entryCtx := map[string]string{
					"guard":  v.Guard,
					"action": current.Action.Name,
					"state":  ctx.State.String(),
				}
				// The snapshot epoch pins the exact policy state the
				// decision was made under — the "comprehensive context
				// information" break-glass audits require. Residual
				// snapshots additionally pin the profile fingerprint
				// they were specialized for.
				if ctx.Policies != nil {
					entryCtx["policy-epoch"] = ctx.Policies.EpochString()
					if fp := ctx.Policies.ResidualFingerprint(); fp != "" {
						entryCtx["residual"] = fp
					}
				}
				addTrace(entryCtx, ctx.Trace)
				log.AppendOwned(audit.KindBreakGlass, ctx.Actor, v.Reason, entryCtx)
			}
		case DecisionDeny, DecisionDeactivate:
			if log != nil {
				kind := audit.KindDenial
				if v.Decision == DecisionDeactivate {
					kind = audit.KindDeactivate
				}
				var entryCtx map[string]string
				switch {
				case ctx.Trace.Valid():
					// Trace IDs are unique per span, so a traced denial
					// cannot share a cached map.
					entryCtx = map[string]string{
						"guard":  v.Guard,
						"action": ctx.Action.Name,
					}
					if ctx.Policies != nil {
						entryCtx["policy-epoch"] = ctx.Policies.EpochString()
						if fp := ctx.Policies.ResidualFingerprint(); fp != "" {
							entryCtx["residual"] = fp
						}
					}
					addTrace(entryCtx, ctx.Trace)
				case ctx.Policies != nil:
					if fp := ctx.Policies.ResidualFingerprint(); fp != "" {
						entryCtx = p.denyCtx.Get4("guard", v.Guard, "action", ctx.Action.Name,
							"policy-epoch", ctx.Policies.EpochString(), "residual", fp)
					} else {
						entryCtx = p.denyCtx.Get3("guard", v.Guard, "action", ctx.Action.Name,
							"policy-epoch", ctx.Policies.EpochString())
					}
				default:
					entryCtx = p.denyCtx.Get2("guard", v.Guard, "action", ctx.Action.Name)
				}
				log.AppendOwned(kind, ctx.Actor, v.Reason, entryCtx)
			}
			return v
		default:
			// A malformed guard verdict must fail closed — and
			// visibly: a guard bug silently eating actions is exactly
			// the kind of failure the observability layer exists to
			// surface, so it is counted (guard.invalid_decision above)
			// and audited.
			reason := fmt.Sprintf("guard returned invalid decision %d; failing closed", v.Decision)
			if log != nil {
				entryCtx := map[string]string{
					"guard":  g.Name(),
					"action": ctx.Action.Name,
				}
				addTrace(entryCtx, ctx.Trace)
				log.AppendOwned(audit.KindNote, ctx.Actor, reason, entryCtx)
			}
			return Verdict{
				Decision: DecisionDeny,
				Guard:    g.Name(),
				Reason:   reason,
			}
		}
	}
	return Verdict{
		Decision:   DecisionAllow,
		Action:     current.Action,
		Guard:      p.Name(),
		Reason:     lastReason,
		BrokeGlass: brokeGlass,
	}
}

// addTrace stamps the trace ID into an audit context, linking the
// entry to its causal span chain.
func addTrace(entryCtx map[string]string, sc telemetry.SpanContext) {
	if sc.Valid() {
		entryCtx["trace"] = sc.Trace.String()
	}
}

// Append adds guards to the end of the pipeline. (Setup-time only,
// like Instrument — not safe concurrently with Check.)
func (p *Pipeline) Append(guards ...Guard) {
	p.guards = append(p.guards, guards...)
	p.rename()
	if p.metrics != nil {
		for _, g := range guards {
			p.instrumentsFor(g.Name())
		}
	}
}

// AllowAll is a guard that permits everything; useful as an
// experimental control ("no guards") and in tests.
type AllowAll struct{}

var _ Guard = AllowAll{}

// Name identifies the guard.
func (AllowAll) Name() string { return "allow-all" }

// Check permits the action unchanged.
func (AllowAll) Check(ctx ActionContext) Verdict {
	return Verdict{Decision: DecisionAllow, Action: ctx.Action, Guard: "allow-all", Reason: "unconditional"}
}
