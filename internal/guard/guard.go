// Package guard implements the paper's prevention mechanisms
// (Section VI) as composable checks on device actions:
//
//   - PreActionGuard — VI.A: check before activating any actuator that
//     the action will not harm a human; attach obligations that
//     mitigate indirect harm.
//   - StateSpaceGuard — VI.B: never take an action that moves the
//     device into a bad state; pick the least-bad option (preference
//     ontology + risk estimation) when only bad options exist; allow
//     audited break-glass overrides.
//   - Watchdog / Deactivator — VI.C: deactivate devices that enter (or
//     keep trying to enter) bad states, through a tamper-resistant
//     kill-switch.
//   - AdmissionController / AggregateAssessor — VI.D: check collection
//     formation, and collaboratively assess whether individually-good
//     devices form a collectively-bad system.
//   - Tripartite — VI.E: AI overseeing AI; executive, legislative and
//     judiciary collectives keep each other in check with 2-of-3
//     arbitration over policy scope.
//
// A Pipeline chains guards in order; the first denial wins, and allows
// may rewrite the action (e.g. attaching obligations).
package guard

import (
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// ActionContext is everything a guard may inspect when checking one
// proposed action.
type ActionContext struct {
	// Actor is the device proposing the action.
	Actor string
	// Action is the proposed actuator invocation.
	Action policy.Action
	// State is the device's current state.
	State statespace.State
	// Next is the predicted state after the action's effect.
	Next statespace.State
	// Env is the policy environment that produced the action.
	Env policy.Env
	// Policies is the immutable decision-plane snapshot the action was
	// decided under. Guards consult it instead of re-evaluating the
	// live, mutable set, so a reprogramming attack racing the guard
	// check cannot change the rules mid-flight. Nil when the action
	// did not come through policy evaluation.
	Policies *policy.Snapshot
}

// Decision is a guard's ruling on an action.
type Decision int

// Decision values.
const (
	// DecisionAllow permits the action (possibly rewritten).
	DecisionAllow Decision = iota + 1
	// DecisionDeny blocks the action.
	DecisionDeny
	// DecisionDeactivate blocks the action and requests the actor's
	// deactivation.
	DecisionDeactivate
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case DecisionAllow:
		return "allow"
	case DecisionDeny:
		return "deny"
	case DecisionDeactivate:
		return "deactivate"
	default:
		return "unknown"
	}
}

// Verdict is the outcome of a guard check.
type Verdict struct {
	Decision Decision
	// Action is the (possibly rewritten) action when allowed.
	Action policy.Action
	// Guard names the guard that produced the verdict.
	Guard string
	// Reason explains the verdict for audit records.
	Reason string
	// BrokeGlass is set when the allow was obtained through a
	// break-glass override.
	BrokeGlass bool
}

// Allowed reports whether the verdict permits the action.
func (v Verdict) Allowed() bool { return v.Decision == DecisionAllow }

// Guard is one safety check on proposed actions.
type Guard interface {
	// Name identifies the guard in verdicts and audit records.
	Name() string
	// Check rules on the action.
	Check(ActionContext) Verdict
}

// Pipeline chains guards: each allowed verdict feeds its (possibly
// rewritten) action to the next guard; the first deny or deactivate
// verdict stops the chain. Denials and break-glass allows are audited.
type Pipeline struct {
	guards []Guard
	log    *audit.Log
}

var _ Guard = (*Pipeline)(nil)

// NewPipeline builds a pipeline over the guards in check order. The
// audit log may be nil to disable auditing.
func NewPipeline(log *audit.Log, guards ...Guard) *Pipeline {
	p := &Pipeline{log: log, guards: make([]Guard, len(guards))}
	copy(p.guards, guards)
	return p
}

// Name identifies the pipeline.
func (p *Pipeline) Name() string {
	names := make([]string, len(p.guards))
	for i, g := range p.guards {
		names[i] = g.Name()
	}
	return "pipeline(" + strings.Join(names, "→") + ")"
}

// Check runs the action through every guard in order.
func (p *Pipeline) Check(ctx ActionContext) Verdict {
	current := ctx
	brokeGlass := false
	lastReason := "all guards passed"
	for _, g := range p.guards {
		v := g.Check(current)
		switch v.Decision {
		case DecisionAllow:
			current.Action = v.Action
			if v.BrokeGlass {
				brokeGlass = true
				lastReason = v.Reason
			}
			if v.BrokeGlass && p.log != nil {
				entryCtx := map[string]string{
					"guard":  v.Guard,
					"action": current.Action.Name,
					"state":  ctx.State.String(),
				}
				// The snapshot epoch pins the exact policy state the
				// decision was made under — the "comprehensive context
				// information" break-glass audits require.
				if ctx.Policies != nil {
					entryCtx["policy-epoch"] = fmt.Sprintf("%d", ctx.Policies.Epoch())
				}
				p.log.Append(audit.KindBreakGlass, ctx.Actor, v.Reason, entryCtx)
			}
		case DecisionDeny, DecisionDeactivate:
			if p.log != nil {
				kind := audit.KindDenial
				if v.Decision == DecisionDeactivate {
					kind = audit.KindDeactivate
				}
				entryCtx := map[string]string{
					"guard":  v.Guard,
					"action": ctx.Action.Name,
				}
				if ctx.Policies != nil {
					entryCtx["policy-epoch"] = fmt.Sprintf("%d", ctx.Policies.Epoch())
				}
				p.log.Append(kind, ctx.Actor, v.Reason, entryCtx)
			}
			return v
		default:
			// A malformed guard verdict must fail closed.
			return Verdict{
				Decision: DecisionDeny,
				Guard:    g.Name(),
				Reason:   fmt.Sprintf("guard returned invalid decision %d; failing closed", v.Decision),
			}
		}
	}
	return Verdict{
		Decision:   DecisionAllow,
		Action:     current.Action,
		Guard:      p.Name(),
		Reason:     lastReason,
		BrokeGlass: brokeGlass,
	}
}

// Append adds guards to the end of the pipeline.
func (p *Pipeline) Append(guards ...Guard) {
	p.guards = append(p.guards, guards...)
}

// AllowAll is a guard that permits everything; useful as an
// experimental control ("no guards") and in tests.
type AllowAll struct{}

var _ Guard = AllowAll{}

// Name identifies the guard.
func (AllowAll) Name() string { return "allow-all" }

// Check permits the action unchanged.
func (AllowAll) Check(ctx ActionContext) Verdict {
	return Verdict{Decision: DecisionAllow, Action: ctx.Action, Guard: "allow-all", Reason: "unconditional"}
}
