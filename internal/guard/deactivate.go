package guard

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/audit"
	"repro/internal/statespace"
)

// ErrBadKillToken is returned when a deactivation token fails
// verification — the signature of a tampered or forged kill command.
var ErrBadKillToken = errors.New("guard: kill token verification failed")

// KillSwitch issues and verifies tamper-resistant deactivation tokens:
// an HMAC over the device ID under a secret shared between the
// watchdog authority and the device. Section VI.C requires that devices
// "can be deactivated by a tamper-proof mechanism"; an unforgeable
// token is the software approximation (and deliberately not a
// general-purpose backdoor, which Section IV warns against — the token
// authorizes exactly one operation: shutdown).
type KillSwitch struct {
	secret []byte
}

// NewKillSwitch builds a switch from a non-empty shared secret.
func NewKillSwitch(secret []byte) (*KillSwitch, error) {
	if len(secret) == 0 {
		return nil, errors.New("guard: kill switch requires a secret")
	}
	k := &KillSwitch{secret: make([]byte, len(secret))}
	copy(k.secret, secret)
	return k, nil
}

// TokenFor returns the deactivation token for a device.
func (k *KillSwitch) TokenFor(deviceID string) string {
	mac := hmac.New(sha256.New, k.secret)
	mac.Write([]byte("deactivate:" + deviceID))
	return hex.EncodeToString(mac.Sum(nil))
}

// Verify reports whether the token authorizes deactivating the device.
func (k *KillSwitch) Verify(deviceID, token string) bool {
	want := k.TokenFor(deviceID)
	return hmac.Equal([]byte(want), []byte(token))
}

// Deactivatable is a device the watchdog can observe and shut down.
type Deactivatable interface {
	// ID identifies the device.
	ID() string
	// CurrentState returns the device's current state.
	CurrentState() statespace.State
	// Deactivate shuts the device down if the token verifies.
	Deactivate(token string) error
	// Deactivated reports whether the device is shut down.
	Deactivated() bool
}

// Watchdog is the Section VI.C mechanism: "devices that go into a bad
// state or are prone to take actions that make them go into a bad
// state, can be deactivated." It deactivates devices whose state is
// bad, and devices that accumulate too many guard denials (prone to
// bad actions).
type Watchdog struct {
	// Classifier detects bad states (required).
	Classifier statespace.Classifier
	// Switch signs deactivation tokens (required).
	Switch *KillSwitch
	// Log receives deactivation and tamper records; nil disables
	// auditing.
	Log *audit.Log
	// DenialThreshold deactivates a device once it accumulates this
	// many observed denials; zero disables denial-based deactivation.
	DenialThreshold int

	mu      sync.Mutex
	denials map[string]int
}

// ObserveDenial records that a device had an action denied by a guard.
func (w *Watchdog) ObserveDenial(deviceID string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.denials == nil {
		w.denials = make(map[string]int)
	}
	w.denials[deviceID]++
}

// Denials returns the observed denial count for a device.
func (w *Watchdog) Denials(deviceID string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.denials[deviceID]
}

// Sweep inspects every device and deactivates those in a bad state or
// over the denial threshold. It returns the IDs it deactivated, sorted.
// Deactivation failures (tampered switches) are audited and the device
// is reported in failed.
func (w *Watchdog) Sweep(devices []Deactivatable) (deactivated, failed []string) {
	for _, d := range devices {
		if d.Deactivated() {
			continue
		}
		reason := ""
		// Check the classifier before asking for state: CurrentState
		// copies the state out on scratch-backed devices, and a sweep
		// without a classifier would pay that on every device per tick.
		if w.Classifier != nil {
			if st := d.CurrentState(); st.Valid() && w.Classifier.Classify(st) == statespace.ClassBad {
				reason = fmt.Sprintf("device in bad state %s", st)
			}
		}
		if reason == "" && w.DenialThreshold > 0 && w.Denials(d.ID()) >= w.DenialThreshold {
			reason = fmt.Sprintf("denial threshold reached (%d)", w.Denials(d.ID()))
		}
		if reason == "" {
			continue
		}
		token := w.Switch.TokenFor(d.ID())
		if err := d.Deactivate(token); err != nil {
			failed = append(failed, d.ID())
			if w.Log != nil {
				w.Log.Append(audit.KindTamper, d.ID(),
					fmt.Sprintf("deactivation rejected: %v", err),
					map[string]string{"reason": reason})
			}
			continue
		}
		deactivated = append(deactivated, d.ID())
		if w.Log != nil {
			w.Log.Append(audit.KindDeactivate, d.ID(), reason, nil)
		}
	}
	sort.Strings(deactivated)
	sort.Strings(failed)
	return deactivated, failed
}
