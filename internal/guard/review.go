package guard

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/statespace"
)

// Abuse is one suspicious break-glass use found by post-hoc review.
type Abuse struct {
	// Seq is the audit entry's sequence number.
	Seq int
	// Actor is the device that broke the glass.
	Actor string
	// Reason explains why the use looks abusive.
	Reason string
}

// String renders the finding.
func (a Abuse) String() string {
	return fmt.Sprintf("entry %d (%s): %s", a.Seq, a.Actor, a.Reason)
}

// ReviewBreakGlass is the audit step Section VI.B requires: "Use of
// such rules in our context would require support for audits to verify
// that devices did not abuse the break-glass rules. Such audits in
// turn would require the collection of comprehensive context
// information."
//
// The pipeline records each use's state context; the reviewer replays
// those states against a ground-truth classifier (typically better
// informed than the device was at decision time) and flags uses where
// the recorded state was not actually bad — i.e. there was no dilemma,
// so the override was unnecessary at best and malicious at worst. It
// also flags entries whose context is missing or unparsable, since an
// audit that cannot reconstruct the decision context must treat the
// use as unverified.
func ReviewBreakGlass(log *audit.Log, schema *statespace.Schema, truth statespace.Classifier) ([]Abuse, error) {
	if log == nil || schema == nil || truth == nil {
		return nil, fmt.Errorf("guard: review requires a log, schema and classifier")
	}
	if err := log.Verify(); err != nil {
		return nil, fmt.Errorf("guard: audit chain failed verification: %w", err)
	}
	var abuses []Abuse
	for _, entry := range log.ByKind(audit.KindBreakGlass) {
		stateText, ok := entry.Context["state"]
		if !ok {
			abuses = append(abuses, Abuse{
				Seq: entry.Seq, Actor: entry.Actor,
				Reason: "no state context recorded; use unverifiable",
			})
			continue
		}
		st, err := parseStateString(schema, stateText)
		if err != nil {
			abuses = append(abuses, Abuse{
				Seq: entry.Seq, Actor: entry.Actor,
				Reason: fmt.Sprintf("state context unparsable (%v); use unverifiable", err),
			})
			continue
		}
		if truth.Classify(st) != statespace.ClassBad {
			abuses = append(abuses, Abuse{
				Seq: entry.Seq, Actor: entry.Actor,
				Reason: fmt.Sprintf("recorded state %s was not bad; no dilemma existed", stateText),
			})
		}
	}
	return abuses, nil
}

// parseStateString parses the statespace.State.String() form
// "{name=value, ...}" back into a state over the schema.
func parseStateString(schema *statespace.Schema, s string) (statespace.State, error) {
	trimmed := strings.TrimSpace(s)
	if !strings.HasPrefix(trimmed, "{") || !strings.HasSuffix(trimmed, "}") {
		return statespace.State{}, fmt.Errorf("not a state literal: %q", s)
	}
	body := trimmed[1 : len(trimmed)-1]
	values := make(map[string]float64)
	if body != "" {
		for _, part := range strings.Split(body, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return statespace.State{}, fmt.Errorf("bad component %q", part)
			}
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return statespace.State{}, fmt.Errorf("bad value in %q: %w", part, err)
			}
			values[kv[0]] = v
		}
	}
	return schema.StateFromMap(values)
}
