package guard

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// breakGlassUse drives a pipeline-audited break-glass use at the given
// sensed heat (the recorded context) so review tests have realistic
// entries.
func breakGlassUse(t *testing.T, log *audit.Log, sensedHeat float64) {
	t.Helper()
	s := guardSchema(t)
	prefs := ontology.NewPreferenceOntology()
	if err := prefs.Prefer("fire", "loss-of-life"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}
	g := NewPipeline(log, &StateSpaceGuard{
		Classifier: heatClassifier(),
		OutcomeOf: func(st statespace.State) ontology.Outcome {
			if st.MustGet("heat") >= 90 {
				return "loss-of-life"
			}
			if st.MustGet("heat") >= 80 {
				return "fire"
			}
			return ""
		},
		BreakGlass: &BreakGlass{Preferences: prefs},
	})
	ctx := ctxAt(t, s, sensedHeat, 85, policy.Action{Name: "vent"})
	v := g.Check(ctx)
	if !v.Allowed() || !v.BrokeGlass {
		t.Fatalf("fixture did not break glass: %+v", v)
	}
}

func TestReviewBreakGlassCleanUse(t *testing.T) {
	log := audit.New()
	breakGlassUse(t, log, 95) // genuinely bad recorded state
	abuses, err := ReviewBreakGlass(log, guardSchema(t), heatClassifier())
	if err != nil {
		t.Fatalf("ReviewBreakGlass: %v", err)
	}
	if len(abuses) != 0 {
		t.Errorf("legitimate use flagged: %v", abuses)
	}
}

func TestReviewBreakGlassFlagsNoDilemma(t *testing.T) {
	log := audit.New()
	breakGlassUse(t, log, 95)
	// An abusive entry: record a break-glass use whose state context
	// the ground truth says was good (the device lied or was deceived,
	// and post-hoc information reveals it).
	log.Append(audit.KindBreakGlass, "liar-1", "escape", map[string]string{
		"state": "{heat=10, progress=0}",
	})
	abuses, err := ReviewBreakGlass(log, guardSchema(t), heatClassifier())
	if err != nil {
		t.Fatalf("ReviewBreakGlass: %v", err)
	}
	if len(abuses) != 1 || abuses[0].Actor != "liar-1" {
		t.Fatalf("abuses = %v", abuses)
	}
	if !strings.Contains(abuses[0].String(), "no dilemma") {
		t.Errorf("finding = %s", abuses[0])
	}
}

func TestReviewBreakGlassFlagsUnverifiable(t *testing.T) {
	log := audit.New()
	log.Append(audit.KindBreakGlass, "amnesiac", "escape", nil)
	log.Append(audit.KindBreakGlass, "mangler", "escape", map[string]string{"state": "not-a-state"})
	abuses, err := ReviewBreakGlass(log, guardSchema(t), heatClassifier())
	if err != nil {
		t.Fatalf("ReviewBreakGlass: %v", err)
	}
	if len(abuses) != 2 {
		t.Fatalf("abuses = %v", abuses)
	}
	for _, a := range abuses {
		if !strings.Contains(a.Reason, "unverifiable") {
			t.Errorf("finding = %s", a)
		}
	}
}

func TestReviewBreakGlassRejectsBrokenChain(t *testing.T) {
	log := audit.New()
	breakGlassUse(t, log, 95)
	// Tampering is detected before any review conclusions are drawn:
	// review a hand-built broken chain.
	if _, err := ReviewBreakGlass(nil, guardSchema(t), heatClassifier()); err == nil {
		t.Error("nil log accepted")
	}
}

func TestParseStateString(t *testing.T) {
	s := guardSchema(t)
	st, err := parseStateString(s, "{heat=42, progress=7}")
	if err != nil {
		t.Fatalf("parseStateString: %v", err)
	}
	if st.MustGet("heat") != 42 || st.MustGet("progress") != 7 {
		t.Errorf("parsed = %v", st)
	}
	// Round trip with State.String().
	back, err := parseStateString(s, st.String())
	if err != nil || !back.Equal(st) {
		t.Errorf("round trip = %v, %v", back, err)
	}
	for _, bad := range []string{"nope", "{heat}", "{heat=x}", "{ghost=1}"} {
		if _, err := parseStateString(s, bad); err == nil {
			t.Errorf("parseStateString(%q) succeeded", bad)
		}
	}
}
