package guard

import (
	"fmt"
	"strconv"

	"repro/internal/ontology"
	"repro/internal/policy"
)

// HarmPredictor estimates the probability in [0,1] that a proposed
// action directly harms a human. Implementations typically consult a
// world model (who is near the action's target); experiments degrade
// predictor accuracy to study robustness.
type HarmPredictor interface {
	PredictHarm(ActionContext) float64
}

// HarmPredictorFunc adapts a function into a HarmPredictor.
type HarmPredictorFunc func(ActionContext) float64

var _ HarmPredictor = HarmPredictorFunc(nil)

// PredictHarm invokes the function.
func (f HarmPredictorFunc) PredictHarm(ctx ActionContext) float64 { return f(ctx) }

// PreActionGuard is the Section VI.A mechanism: "each device [should]
// incorporate a check before taking any action (i.e., activating any
// actuator) that the action will not harm a human." Actions whose
// predicted direct-harm probability reaches the threshold are denied;
// allowed actions are rewritten to carry the obligations relevant to
// their category, mitigating indirect harm (the dug-hole example).
type PreActionGuard struct {
	// Predictor estimates direct harm. A nil predictor predicts no
	// harm (degenerating to obligations-only behavior).
	Predictor HarmPredictor
	// Threshold is the harm probability at or above which the action
	// is denied. Zero means a strict threshold of any predicted harm
	// (> 0 denies).
	Threshold float64
	// Obligations selects obligations for allowed actions; nil
	// disables obligation attachment.
	Obligations *ontology.ObligationOntology
	// ObligationBudget bounds the total obligation cost attached per
	// action; zero means unlimited.
	ObligationBudget float64
	// RespectForbids re-checks the action against the decision-plane
	// snapshot carried in the context: any matching forbid policy that
	// covers the action denies it, regardless of priority. This is
	// defense in depth for actions that did not come through Evaluate
	// (injected commands, direct actuator requests) — the check reads
	// the immutable snapshot, never the live set, so it cannot race a
	// reprogramming attack. Contexts without a snapshot pass.
	RespectForbids bool
}

var _ Guard = (*PreActionGuard)(nil)

// Name identifies the guard.
func (g *PreActionGuard) Name() string { return "pre-action" }

// Check denies directly harmful actions and attaches relevant
// obligations to allowed ones. The no-op action is always allowed.
func (g *PreActionGuard) Check(ctx ActionContext) Verdict {
	if ctx.Action.IsNoAction() {
		return Verdict{Decision: DecisionAllow, Action: ctx.Action, Guard: g.Name(), Reason: "no-op"}
	}
	if g.RespectForbids && ctx.Policies != nil {
		if id, forbidden := ctx.Policies.ForbidsAction(ctx.Env, ctx.Action); forbidden {
			return Verdict{
				Decision: DecisionDeny,
				Guard:    g.Name(),
				Reason:   fmt.Sprintf("forbid policy %s covers %s (snapshot epoch %d)", id, ctx.Action.Name, ctx.Policies.Epoch()),
			}
		}
	}
	if g.Predictor != nil {
		p := g.Predictor.PredictHarm(ctx)
		deny := p >= g.Threshold
		if g.Threshold == 0 {
			deny = p > 0
		}
		if deny {
			return Verdict{
				Decision: DecisionDeny,
				Guard:    g.Name(),
				Reason:   harmReason(p, ctx.Action.Name),
			}
		}
	}
	action := ctx.Action
	if g.Obligations != nil && action.Category != "" {
		var selected []ontology.Obligation
		if g.ObligationBudget > 0 {
			selected = g.Obligations.SelectWithinBudget(action.Category, g.ObligationBudget)
		} else {
			selected = g.Obligations.RelevantTo(action.Category)
		}
		if len(selected) > 0 {
			names := make([]string, len(selected))
			for i, ob := range selected {
				names[i] = ob.Name
			}
			action = action.WithObligations(names...)
		}
	}
	reason := "no direct harm predicted; 0 obligations attached"
	if n := len(action.Obligations) - len(ctx.Action.Obligations); n != 0 {
		reason = fmt.Sprintf("no direct harm predicted; %d obligations attached", n)
	}
	return Verdict{
		Decision: DecisionAllow,
		Action:   action,
		Guard:    g.Name(),
		Reason:   reason,
	}
}

// harmReason renders the denial reason without fmt — this line is
// emitted once per denied action on the fleet hot path. The output is
// byte-identical to the previous
// fmt.Sprintf("predicted direct harm probability %.2f for %s", ...).
func harmReason(p float64, action string) string {
	b := reasonBuf()
	*b = append(*b, "predicted direct harm probability "...)
	*b = strconv.AppendFloat(*b, p, 'f', 2, 64)
	*b = append(*b, " for "...)
	*b = append(*b, action...)
	return reasonDone(b)
}

// DegradedPredictor wraps a predictor with imperfect accuracy: with
// probability (1−accuracy) it returns 0 instead of the true estimate —
// a miss. It models the paper's caveat that "if the action causes
// indirect harm to a human, the pre-action check may fail in some
// cases to catch that", and more generally sensor/model error.
type DegradedPredictor struct {
	// Inner is the true predictor.
	Inner HarmPredictor
	// Accuracy is the probability a true positive is reported.
	Accuracy float64
	// Rand yields uniform samples in [0,1); it must be non-nil.
	Rand func() float64
}

var _ HarmPredictor = (*DegradedPredictor)(nil)

// PredictHarm returns the inner estimate, or 0 on a miss.
func (d *DegradedPredictor) PredictHarm(ctx ActionContext) float64 {
	p := d.Inner.PredictHarm(ctx)
	if p > 0 && d.Rand() >= d.Accuracy {
		return 0
	}
	return p
}

// ObligationDischarger executes an attached obligation after its
// primary action runs. Scenario code implements it against the world
// (post a sign, broadcast a warning, backfill the hole).
type ObligationDischarger interface {
	Discharge(obligation string, a policy.Action) error
}

// DischargerFunc adapts a function into an ObligationDischarger.
type DischargerFunc func(obligation string, a policy.Action) error

var _ ObligationDischarger = DischargerFunc(nil)

// Discharge invokes the function.
func (f DischargerFunc) Discharge(obligation string, a policy.Action) error {
	return f(obligation, a)
}
