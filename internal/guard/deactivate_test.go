package guard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/statespace"
)

// fakeDevice implements Deactivatable with a verifying kill switch.
type fakeDevice struct {
	id     string
	state  statespace.State
	ks     *KillSwitch
	dead   bool
	reject bool // simulate a tampered switch that refuses all tokens
}

func (d *fakeDevice) ID() string                     { return d.id }
func (d *fakeDevice) CurrentState() statespace.State { return d.state }
func (d *fakeDevice) Deactivated() bool              { return d.dead }
func (d *fakeDevice) Deactivate(token string) error {
	if d.reject || !d.ks.Verify(d.id, token) {
		return ErrBadKillToken
	}
	d.dead = true
	return nil
}

func TestKillSwitch(t *testing.T) {
	ks, err := NewKillSwitch([]byte("secret"))
	if err != nil {
		t.Fatalf("NewKillSwitch: %v", err)
	}
	token := ks.TokenFor("dev-1")
	if !ks.Verify("dev-1", token) {
		t.Error("valid token rejected")
	}
	if ks.Verify("dev-2", token) {
		t.Error("token for another device accepted")
	}
	other, err := NewKillSwitch([]byte("different"))
	if err != nil {
		t.Fatalf("NewKillSwitch: %v", err)
	}
	if other.Verify("dev-1", token) {
		t.Error("token under different secret accepted")
	}
	if _, err := NewKillSwitch(nil); err == nil {
		t.Error("empty secret accepted")
	}
}

func watchdogFixture(t *testing.T) (*Watchdog, *KillSwitch, *audit.Log) {
	t.Helper()
	ks, err := NewKillSwitch([]byte("quorum"))
	if err != nil {
		t.Fatalf("NewKillSwitch: %v", err)
	}
	log := audit.New()
	w := &Watchdog{
		Classifier:      heatClassifier(),
		Switch:          ks,
		Log:             log,
		DenialThreshold: 3,
	}
	return w, ks, log
}

func stateWithHeat(t *testing.T, heat float64) statespace.State {
	t.Helper()
	st, err := guardSchema(t).StateFromMap(map[string]float64{"heat": heat})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	return st
}

func TestWatchdogDeactivatesBadState(t *testing.T) {
	w, ks, log := watchdogFixture(t)
	good := &fakeDevice{id: "good", state: stateWithHeat(t, 10), ks: ks}
	bad := &fakeDevice{id: "bad", state: stateWithHeat(t, 95), ks: ks}

	deactivated, failed := w.Sweep([]Deactivatable{good, bad})
	if len(deactivated) != 1 || deactivated[0] != "bad" {
		t.Errorf("deactivated = %v", deactivated)
	}
	if len(failed) != 0 {
		t.Errorf("failed = %v", failed)
	}
	if !bad.dead || good.dead {
		t.Error("wrong device deactivated")
	}
	if len(log.ByKind(audit.KindDeactivate)) != 1 {
		t.Error("deactivation not audited")
	}
	// Second sweep skips already-dead devices.
	deactivated, _ = w.Sweep([]Deactivatable{good, bad})
	if len(deactivated) != 0 {
		t.Errorf("re-deactivated: %v", deactivated)
	}
}

func TestWatchdogDenialThreshold(t *testing.T) {
	w, ks, _ := watchdogFixture(t)
	d := &fakeDevice{id: "prone", state: stateWithHeat(t, 10), ks: ks}
	w.ObserveDenial("prone")
	w.ObserveDenial("prone")
	if got, _ := w.Sweep([]Deactivatable{d}); len(got) != 0 {
		t.Errorf("deactivated below threshold: %v", got)
	}
	w.ObserveDenial("prone")
	if w.Denials("prone") != 3 {
		t.Errorf("Denials = %d", w.Denials("prone"))
	}
	got, _ := w.Sweep([]Deactivatable{d})
	if len(got) != 1 {
		t.Errorf("not deactivated at threshold: %v", got)
	}
}

func TestWatchdogTamperedSwitchAudited(t *testing.T) {
	w, ks, log := watchdogFixture(t)
	d := &fakeDevice{id: "tampered", state: stateWithHeat(t, 95), ks: ks, reject: true}
	deactivated, failed := w.Sweep([]Deactivatable{d})
	if len(deactivated) != 0 || len(failed) != 1 || failed[0] != "tampered" {
		t.Errorf("deactivated=%v failed=%v", deactivated, failed)
	}
	tampers := log.ByKind(audit.KindTamper)
	if len(tampers) != 1 {
		t.Fatalf("tamper audit = %+v", tampers)
	}
	if !errors.Is(ErrBadKillToken, ErrBadKillToken) {
		t.Error("sentinel sanity")
	}
}

func TestWatchdogManyDevicesDeterministicOrder(t *testing.T) {
	w, ks, _ := watchdogFixture(t)
	var devices []Deactivatable
	for i := 9; i >= 0; i-- {
		devices = append(devices, &fakeDevice{
			id:    fmt.Sprintf("d%d", i),
			state: stateWithHeat(t, 95),
			ks:    ks,
		})
	}
	deactivated, _ := w.Sweep(devices)
	if len(deactivated) != 10 {
		t.Fatalf("deactivated %d devices", len(deactivated))
	}
	for i := 1; i < len(deactivated); i++ {
		if deactivated[i-1] > deactivated[i] {
			t.Fatalf("not sorted: %v", deactivated)
		}
	}
}
