package guard

import (
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/statespace"
)

// DESIGN.md ablation: guard-pipeline ordering. Safety must be
// order-independent — pre-action→state-space and state-space→pre-action
// reach the same allow/deny decision on every context — so ordering is
// purely a cost question (measured in BenchmarkAblationPipelineOrder).
func TestPipelineOrderingSafetyEquivalence(t *testing.T) {
	s := guardSchema(t)
	classifier := heatClassifier()
	rng := rand.New(rand.NewSource(91))

	mkPre := func() Guard {
		return &PreActionGuard{
			Predictor: HarmPredictorFunc(func(ctx ActionContext) float64 {
				if ctx.Action.Params["nearHumans"] == "yes" {
					return 1
				}
				return 0
			}),
			Threshold: 0.5,
		}
	}
	mkState := func() Guard { return &StateSpaceGuard{Classifier: classifier} }

	preFirst := NewPipeline(nil, mkPre(), mkState())
	stateFirst := NewPipeline(nil, mkState(), mkPre())

	for trial := 0; trial < 500; trial++ {
		curr, err := s.StateFromMap(map[string]float64{"heat": rng.Float64() * 100})
		if err != nil {
			t.Fatalf("StateFromMap: %v", err)
		}
		next, err := curr.Apply(statespace.Delta{"heat": rng.Float64()*40 - 10})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		near := "no"
		if rng.Intn(2) == 0 {
			near = "yes"
		}
		ctx := ActionContext{
			Actor:  "dev",
			Action: policy.Action{Name: "act", Params: map[string]string{"nearHumans": near}},
			State:  curr,
			Next:   next,
		}
		a, b := preFirst.Check(ctx), stateFirst.Check(ctx)
		if a.Allowed() != b.Allowed() {
			t.Fatalf("trial %d: ordering changed the decision: pre-first=%v state-first=%v (ctx heat=%v→%v near=%s)",
				trial, a.Decision, b.Decision, curr, next, near)
		}
	}
}
