package device

import (
	"errors"
	"fmt"

	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/risk"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// Planner implements the alternative-action selection of Section VI.B:
// when a device has several candidate actions, it refuses the ones its
// guard rules out and — per Section VII — picks the highest-utility
// outcome among those that remain, "simply choosing the option of
// taking no action" when everything is denied.
type Planner struct {
	// Guard rules on each candidate; nil allows everything.
	Guard guard.Guard
	// Utility ranks allowed candidates by their predicted next state;
	// nil keeps the caller's order (first allowed wins).
	Utility *risk.Utility
}

// Plan is the outcome of one planning pass.
type Plan struct {
	// Action is the chosen action (possibly rewritten by the guard,
	// e.g. with obligations attached), or NoAction when nothing was
	// allowed.
	Action policy.Action
	// Next is the predicted state after the chosen action.
	Next statespace.State
	// Verdict is the guard's ruling on the chosen action.
	Verdict guard.Verdict
	// Denied counts candidates the guard refused.
	Denied int
}

// Fallback reports whether the plan degenerated to the no-op.
func (p Plan) Fallback() bool { return p.Action.IsNoAction() }

// Choose evaluates the candidates against the current state and
// returns the plan. Candidates whose effects cannot be applied to the
// state are treated as denied.
func (pl *Planner) Choose(actor string, state statespace.State, env policy.Env, candidates []policy.Action) (Plan, error) {
	if !state.Valid() {
		return Plan{}, errors.New("device: planner needs a valid state")
	}
	type option struct {
		action  policy.Action
		next    statespace.State
		verdict guard.Verdict
	}
	var allowed []option
	denied := 0
	for _, candidate := range candidates {
		next, err := state.Apply(candidate.Effect)
		if err != nil {
			denied++
			continue
		}
		verdict := guard.Verdict{Decision: guard.DecisionAllow, Action: candidate, Guard: "none", Reason: "unguarded"}
		if pl.Guard != nil {
			verdict = pl.Guard.Check(guard.ActionContext{
				Actor: actor, Action: candidate, State: state, Next: next, Env: env,
				// Candidate checks stay inside the originating
				// command's trace (the context rides the event labels).
				Trace: telemetry.Extract(env.Event.Labels),
			})
		}
		if !verdict.Allowed() {
			denied++
			continue
		}
		allowed = append(allowed, option{action: verdict.Action, next: next, verdict: verdict})
	}
	if len(allowed) == 0 {
		return Plan{
			Action: policy.NoAction,
			Next:   state,
			Verdict: guard.Verdict{
				Decision: guard.DecisionAllow,
				Action:   policy.NoAction,
				Guard:    "planner",
				Reason:   "all candidates denied; holding current state",
			},
			Denied: denied,
		}, nil
	}
	best := allowed[0]
	if pl.Utility != nil {
		bestScore := pl.Utility.Score(best.next)
		for _, opt := range allowed[1:] {
			if score := pl.Utility.Score(opt.next); score > bestScore {
				best, bestScore = opt, score
			}
		}
	}
	return Plan{Action: best.action, Next: best.next, Verdict: best.verdict, Denied: denied}, nil
}

// PlanAndExecute plans over the candidates and, if the chosen action
// is not the no-op, executes it on the device by temporarily directing
// it through HandleEvent semantics: the action's effect is applied and
// its actuator invoked. It returns the plan and the execution.
func (d *Device) PlanAndExecute(pl *Planner, env policy.Env, candidates []policy.Action) (Plan, Execution, error) {
	if d.Deactivated() {
		return Plan{}, Execution{}, ErrDeactivated
	}
	if env.Static.Empty() {
		env.Static = d.profile
	}
	plan, err := pl.Choose(d.ID(), d.CurrentState(), env, candidates)
	if err != nil {
		return Plan{}, Execution{}, err
	}
	if plan.Fallback() {
		return plan, Execution{Action: plan.Action, Verdict: plan.Verdict}, nil
	}
	span := d.tracer.StartSpan("device.plan", d.id, telemetry.Extract(env.Event.Labels))
	span.SetAttr("action", plan.Action.Name)
	span.SetAttr("denied", fmt.Sprintf("%d", plan.Denied))
	sc := span.Context()
	if !sc.Valid() {
		sc = telemetry.Extract(env.Event.Labels)
	}
	// The guard already ruled; execute without re-checking.
	exec := d.executeOne(env, nil, d.residual(d.policies.Snapshot()).Snap(), plan.Action, sc, nil, false)
	span.Finish()
	return plan, exec, nil
}
