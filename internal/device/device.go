package device

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/intern"
	"repro/internal/policy"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// Common device errors.
var (
	// ErrDeactivated is returned by operations on a shut-down device.
	ErrDeactivated = errors.New("device: deactivated")
	// ErrNoActuator is returned when an allowed action has no actuator
	// to execute it.
	ErrNoActuator = errors.New("device: no actuator for action")
)

// Config assembles a Device.
type Config struct {
	// ID uniquely identifies the device (required).
	ID string
	// Type is the device type used in interaction graphs (e.g.
	// "surveillance-drone").
	Type string
	// Organization names the coalition member operating the device.
	Organization string
	// Static is the device's static profile for the policy "device."
	// namespace: attributes and labels fixed at construction (type,
	// coalition, region, capabilities) that the decision plane
	// partially evaluates policies against (Snapshot.Specialize). When
	// empty, the canonical profile policy.DeviceProfile(Type,
	// Organization) is used, so type- and org-scoped policies fold for
	// every device.
	Static policy.StaticEnv
	// Initial is the device's starting state (required; it fixes the
	// schema).
	Initial statespace.State
	// Policies is the device's logic; nil creates an empty set.
	Policies *policy.Set
	// Guard checks every directed action before actuation; nil allows
	// everything (the unguarded experimental control).
	Guard guard.Guard
	// KillSwitch verifies deactivation tokens. Nil makes the device
	// refuse all remote deactivation (the paper's rogue-device risk).
	KillSwitch *guard.KillSwitch
	// Audit receives action records; nil disables auditing.
	Audit *audit.Log
	// Discharger executes attached obligations; nil skips them (and
	// Execution.ObligationErrs reports the omission).
	Discharger guard.ObligationDischarger
	// TrajectoryCapacity hints the trajectory's initial capacity.
	TrajectoryCapacity int
	// TrajectoryBound, when positive, bounds the trajectory to the most
	// recent TrajectoryBound states (a ring). Mega-fleet scenarios set
	// it so 10^5..10^6 devices do not retain full histories; windowed
	// decline detection needs only DeclineWindow+1 retained states.
	TrajectoryBound int
	// Arena, when set, backs the device's state scratch with slabs from
	// the shared arena instead of per-device heap allocations, packing
	// a whole fleet's (or shard's) state vectors contiguously.
	Arena *statespace.Arena
	// BoxedState disables the arena/scratch fast path: every state
	// transition allocates a fresh boxed State, as the original
	// implementation did. It exists for the differential property test
	// that proves the scratch path behavior-identical, and as an escape
	// hatch.
	BoxedState bool
	// Telemetry, when set, counts handled events (device.events) and
	// execution outcomes (device.executions). Nil disables the counters
	// at zero cost.
	Telemetry *telemetry.Registry
	// Tracer, when set, emits one span per handled event and per
	// executed action, parented on the trace context carried in the
	// event's labels — the causal chain from command intake to
	// actuation.
	Tracer *telemetry.Tracer
}

// Execution records what happened to one directed action.
type Execution struct {
	// Action is the action as finally executed (with attached
	// obligations) or as proposed when denied.
	Action policy.Action
	// Verdict is the guard's ruling.
	Verdict guard.Verdict
	// Err reports actuator failure for allowed actions.
	Err error
	// ObligationErrs maps obligation names to discharge failures.
	ObligationErrs map[string]error
}

// Executed reports whether the action was allowed and actuated without
// error.
func (e Execution) Executed() bool { return e.Verdict.Allowed() && e.Err == nil }

// Device is one autonomous unit in the collective. All methods are
// safe for concurrent use.
type Device struct {
	id   string
	typ  string
	org  string
	kill *guard.KillSwitch
	log  *audit.Log

	tracer       *telemetry.Tracer
	events       *telemetry.Counter
	execExecuted *telemetry.Counter
	execDenied   *telemetry.Counter
	execError    *telemetry.Counter

	lastEpoch atomic.Uint64

	// profile is the device's static policy profile (immutable after
	// construction); resCache holds the residual snapshot specialized
	// from the set's current full snapshot, revalidated by pointer
	// identity on every event (see residual).
	profile  policy.StaticEnv
	resCache atomic.Pointer[policy.Residual]

	mu          sync.Mutex
	state       statespace.State
	policies    *policy.Set
	guard       guard.Guard
	discharger  guard.ObligationDischarger
	sensors     []boundSensor
	actuators   map[string]Actuator
	defaultAct  Actuator
	trajectory  *statespace.Trajectory
	deactivated bool

	// boxed disables the scratch fast path (Config.BoxedState).
	boxed bool
	// hmu serializes use of the MAPE scratch below. Hot-path entry
	// points TryLock it: the holder runs the zero-allocation scratch
	// path; contenders (concurrent callers, or re-entrant self-sends
	// through a synchronous bus) fall back to the boxed path, which
	// allocates but is always safe. The scratch state views handed to
	// guards are only mutated by the hmu holder, so they are stable for
	// the duration of a check.
	hmu     sync.Mutex
	scratch statespace.Scratch
	dec     policy.Decision // reused decision buffers (guarded by hmu)
	envBuf  []float64       // reused event-time state pin (guarded by hmu)

	// actionCtx caches the action audit context map (same event type
	// and guard every tick → one shared immutable map, not one per
	// audited action). CtxCache carries its own lock.
	actionCtx audit.CtxCache
}

var _ guard.Deactivatable = (*Device)(nil)

// New builds a device from the config.
func New(cfg Config) (*Device, error) {
	if cfg.ID == "" {
		return nil, errors.New("device: ID required")
	}
	if !cfg.Initial.Valid() {
		return nil, fmt.Errorf("device %s: initial state required", cfg.ID)
	}
	policies := cfg.Policies
	if policies == nil {
		policies = policy.NewSet()
	}
	capacity := cfg.TrajectoryCapacity
	if capacity <= 0 {
		capacity = 64
	}
	trajectory := statespace.NewTrajectory(capacity)
	if cfg.TrajectoryBound > 0 {
		trajectory = statespace.NewRingTrajectory(cfg.TrajectoryBound)
	}
	d := &Device{
		id:         cfg.ID,
		typ:        cfg.Type,
		org:        cfg.Organization,
		kill:       cfg.KillSwitch,
		log:        cfg.Audit,
		state:      cfg.Initial,
		policies:   policies,
		guard:      cfg.Guard,
		discharger: cfg.Discharger,
		actuators:  make(map[string]Actuator),
		defaultAct: NopActuator{},
		trajectory: trajectory,
		tracer:     cfg.Tracer,
		boxed:      cfg.BoxedState,
	}
	d.profile = cfg.Static
	if d.profile.Empty() {
		d.profile = policy.DeviceProfile(cfg.Type, cfg.Organization)
	}
	if !d.boxed {
		d.scratch = statespace.NewScratch(cfg.Initial.Schema(), cfg.Arena)
		// Presize the reused decision buffers so first events don't pay
		// append-growth allocations.
		d.dec = policy.Decision{
			Actions: make([]policy.Action, 0, 4),
			Matched: make([]string, 0, 4),
		}
	}
	if reg := cfg.Telemetry; reg != nil {
		d.events = reg.Counter("device.events", "device", cfg.ID)
		d.execExecuted = reg.Counter("device.executions", "device", cfg.ID, "result", "executed")
		d.execDenied = reg.Counter("device.executions", "device", cfg.ID, "result", "denied")
		d.execError = reg.Counter("device.executions", "device", cfg.ID, "result", "error")
	}
	if err := d.trajectory.Append(cfg.Initial); err != nil {
		return nil, fmt.Errorf("device %s: %w", cfg.ID, err)
	}
	return d, nil
}

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// Type returns the device type.
func (d *Device) Type() string { return d.typ }

// Organization returns the operating organization.
func (d *Device) Organization() string { return d.org }

// CurrentState returns the device's current state. The returned state
// is a stable snapshot: when the live state is scratch-backed (and so
// would change value on the next tick), it is copied out.
func (d *Device) CurrentState() statespace.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.scratch.Owns(d.state) {
		return d.state.Clone()
	}
	return d.state
}

// Policies returns the device's policy set (shared, not a copy — the
// generative layer and reprogramming attacks mutate it through this
// handle).
func (d *Device) Policies() *policy.Set { return d.policies }

// Trajectory returns a copy of the visited states.
func (d *Device) Trajectory() []statespace.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trajectory.States()
}

// TrajectoryDecline reports whether the last window transitions of the
// device's trajectory show a strictly declining safeness under the
// metric — MonotoneDecline evaluated in place, without copying the
// history out. The metric is invoked under the device lock and must
// not call back into the device.
func (d *Device) TrajectoryDecline(m statespace.SafenessMetric, window int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trajectory.MonotoneDecline(m, window)
}

// stateView returns the live state without copying. Callers must hold
// d.hmu (or know the device is boxed): the view may alias the state
// scratch, which only the hmu holder mutates.
func (d *Device) stateView() statespace.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// BindSensor ties a sensor to a state variable; Sense will write the
// sensor's readings there.
func (d *Device) BindSensor(variable string, s Sensor) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.state.Schema().Index(variable); !ok {
		return fmt.Errorf("device %s: %w: %q", d.id, statespace.ErrUnknownVariable, variable)
	}
	if s == nil {
		return fmt.Errorf("device %s: nil sensor for %q", d.id, variable)
	}
	d.sensors = append(d.sensors, boundSensor{variable: variable, sensor: s})
	return nil
}

// RegisterActuator routes actions with the given name to the actuator.
func (d *Device) RegisterActuator(actionName string, a Actuator) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if actionName == "" || a == nil {
		return fmt.Errorf("device %s: actuator registration needs a name and an actuator", d.id)
	}
	d.actuators[actionName] = a
	return nil
}

// SetDefaultActuator routes actions without a dedicated actuator.
func (d *Device) SetDefaultActuator(a Actuator) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.defaultAct = a
}

// SetGuard replaces the device's guard. A reprogramming attack may
// call this with nil — which is exactly the scenario tamper-evident
// guards and watchdogs exist to catch.
func (d *Device) SetGuard(g guard.Guard) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.guard = g
}

// Deactivate shuts the device down if the token verifies against the
// device's kill switch. Devices without a kill switch refuse.
func (d *Device) Deactivate(token string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.kill == nil || !d.kill.Verify(d.id, token) {
		return guard.ErrBadKillToken
	}
	d.deactivated = true
	return nil
}

// Deactivated reports whether the device is shut down.
func (d *Device) Deactivated() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deactivated
}

// Sense reads every bound sensor into the device state (the Monitor
// phase of the autonomic loop). Sensor failures are collected; the
// remaining sensors still update.
func (d *Device) Sense() error {
	if !d.boxed && d.hmu.TryLock() {
		defer d.hmu.Unlock()
		return d.senseFast()
	}
	return d.senseBoxed()
}

// senseFast writes sensor readings into the state scratch in place.
// The caller holds d.hmu.
func (d *Device) senseFast() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deactivated {
		return ErrDeactivated
	}
	st, aerr := d.scratch.Adopt(d.state)
	if aerr != nil {
		// Foreign-schema state (cannot happen through the public API);
		// keep the boxed semantics rather than fail.
		return d.senseBoxedLocked()
	}
	var errs []error
	for _, b := range d.sensors {
		v, err := b.sensor.Read()
		if err != nil {
			errs = append(errs, fmt.Errorf("sensor %s: %w", b.String(), err))
			continue
		}
		st, err = d.scratch.Set(b.variable, v)
		if err != nil {
			errs = append(errs, err)
		}
	}
	d.state = st
	return errors.Join(errs...)
}

func (d *Device) senseBoxed() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deactivated {
		return ErrDeactivated
	}
	return d.senseBoxedLocked()
}

func (d *Device) senseBoxedLocked() error {
	var errs []error
	st := d.state
	for _, b := range d.sensors {
		v, err := b.sensor.Read()
		if err != nil {
			errs = append(errs, fmt.Errorf("sensor %s: %w", b.String(), err))
			continue
		}
		st, err = st.With(b.variable, v)
		if err != nil {
			errs = append(errs, err)
		}
	}
	d.state = st
	return errors.Join(errs...)
}

// HandleEvent runs the device's logic for one event: evaluate the
// compiled policy snapshot, pass each directed action through the
// guard (carrying the same snapshot, so decision and check see one
// consistent policy state), execute allowed actions, apply their
// state effects, and discharge attached obligations. It returns one
// Execution per directed action.
func (d *Device) HandleEvent(ev policy.Event) ([]Execution, error) {
	return d.HandleEventWith(ev, nil)
}

// HandleEventWith is HandleEvent with an audit journal: when j is
// non-nil, the audit appends this event causes (action records here,
// denial and break-glass records in the guard) are routed through it —
// the sim engine's deterministic merge lane when the device ticks on a
// parallel shard. Routing never enables auditing that was off: a
// device or guard with a nil log still appends nothing.
func (d *Device) HandleEventWith(ev policy.Event, j audit.Journal) ([]Execution, error) {
	if !d.boxed && d.hmu.TryLock() {
		defer d.hmu.Unlock()
		return d.handleEvent(ev, j, true, nil)
	}
	return d.handleEvent(ev, j, false, nil)
}

// handleEvent implements HandleEventWith. With fast set (caller holds
// d.hmu) it evaluates into the device's reused decision buffers and
// executes actions through the state scratch; otherwise it takes the
// original allocation-per-transition path. A non-nil buf is reused
// (truncated) for the returned executions — callers passing one own
// the previous result and accept it being overwritten.
func (d *Device) handleEvent(ev policy.Event, j audit.Journal, fast bool, buf []Execution) ([]Execution, error) {
	d.mu.Lock()
	if d.deactivated {
		d.mu.Unlock()
		return nil, ErrDeactivated
	}
	env := policy.Env{Event: ev, State: d.state, Static: d.profile}
	g := d.guard
	d.mu.Unlock()

	d.events.Inc()
	// The trace context rides in the event labels (see telemetry.Inject)
	// so causality survives bus hops, retries and duplication.
	span := d.tracer.StartSpan("device.handle", d.id, telemetry.Extract(ev.Labels))

	// Evaluate against the residual specialized to this device's static
	// profile: decisions are identical to the full snapshot's (the
	// residual differential property), but the scan covers only the
	// policies this device can ever match. Both the fast and the boxed
	// path go through the residual, so journals stay byte-identical
	// across the two.
	snap := d.residual(d.policies.Snapshot()).Snap()
	var decision policy.Decision
	if fast {
		snap.EvaluateInto(env, &d.dec)
		decision = d.dec
	} else {
		decision = snap.Evaluate(env)
	}
	d.lastEpoch.Store(snap.Epoch())
	if d.tracer != nil {
		span.SetAttr("event", ev.Type)
		span.SetAttr("policy-epoch", snap.EpochString())
		span.SetAttr("residual", snap.ResidualFingerprint())
		span.SetAttr("actions", strconv.Itoa(len(decision.Actions)))
	}

	sc := span.Context()
	if !sc.Valid() {
		sc = telemetry.Extract(ev.Labels)
	}
	out := buf[:0]
	if buf == nil && len(decision.Actions) > 0 {
		out = make([]Execution, 0, len(decision.Actions))
	}
	if fast && len(decision.Actions) > 1 && d.scratch.Owns(env.State) {
		// With several actions, action i+1's guard must still see the
		// event-time state after action i commits into the scratch in
		// place; pin the env to a copy in the device's reused pin
		// buffer (we hold hmu). Single-action events (the common case)
		// commit after the last read, so they skip the copy.
		env.State, d.envBuf = env.State.CloneInto(d.envBuf)
	}
	for _, action := range decision.Actions {
		out = append(out, d.executeOne(env, g, snap, action, sc, j, fast))
	}
	span.Finish()
	return out, nil
}

// PolicyEpoch returns the snapshot epoch of the device's most recent
// policy evaluation (zero before the first event).
func (d *Device) PolicyEpoch() uint64 { return d.lastEpoch.Load() }

// Profile returns the device's static policy profile.
func (d *Device) Profile() policy.StaticEnv { return d.profile }

// Residual returns the device's residual policy snapshot — the set's
// current snapshot specialized to the device's static profile,
// recomputed (or fetched from the shared per-snapshot cache) when
// mutations have invalidated it.
func (d *Device) Residual() *policy.Residual {
	return d.residual(d.policies.Snapshot())
}

// residual returns the cached residual when it was specialized from
// exactly this snapshot, and respecializes otherwise. Pointer identity
// is the validity check: every Set mutation publishes a new snapshot,
// so a stale residual can never be revalidated. The cache is a lock-
// free single slot — a racing refresh stores twice, both stores being
// residuals of the same snapshot from the set-level cache.
func (d *Device) residual(snap *policy.Snapshot) *policy.Residual {
	if r := d.resCache.Load(); r != nil && r.Full() == snap {
		return r
	}
	r := snap.Specialize(d.profile)
	d.resCache.Store(r)
	return r
}

func (d *Device) executeOne(env policy.Env, g guard.Guard, snap *policy.Snapshot, action policy.Action, parent telemetry.SpanContext, j audit.Journal, fast bool) Execution {
	span := d.tracer.StartSpan("device.execute", d.id, parent)
	span.SetAttr("action", action.Name)
	trace := parent
	if sc := span.Context(); sc.Valid() {
		trace = sc
	}
	exec := d.executeTraced(env, g, snap, action, trace, j, fast)
	switch {
	case exec.Executed():
		d.execExecuted.Inc()
		span.SetAttr("result", "executed")
	case !exec.Verdict.Allowed():
		d.execDenied.Inc()
		span.SetAttr("result", "denied")
		span.SetAttr("guard", exec.Verdict.Guard)
	default:
		d.execError.Inc()
		span.SetAttr("result", "error")
		if exec.Err != nil {
			span.SetAttr("error", exec.Err.Error())
		}
	}
	span.Finish()
	return exec
}

func (d *Device) executeTraced(env policy.Env, g guard.Guard, snap *policy.Snapshot, action policy.Action, trace telemetry.SpanContext, j audit.Journal, fast bool) Execution {
	d.mu.Lock()
	var next statespace.State
	var err error
	if fast {
		// Predict into the scratch's next buffer: the view handed to
		// the guard stays stable because only the hmu holder (us)
		// mutates scratch, and concurrent boxed-path operations never
		// touch it.
		if _, aerr := d.scratch.Adopt(d.state); aerr == nil {
			d.state = d.scratch.Cur()
			next, err = d.scratch.Peek(action.Effect)
		} else {
			fast = false
			next, err = d.state.Apply(action.Effect)
		}
	} else {
		next, err = d.state.Apply(action.Effect)
	}
	if err != nil {
		// An effect referencing unknown variables predicts nothing;
		// fail closed by leaving Next invalid.
		next = statespace.State{}
	}
	ctx := guard.ActionContext{
		Actor:    d.id,
		Action:   action,
		State:    d.state,
		Next:     next,
		Env:      env,
		Policies: snap,
		Trace:    trace,
		Journal:  j,
	}
	d.mu.Unlock()

	verdict := guard.Verdict{Decision: guard.DecisionAllow, Action: action, Guard: "none", Reason: "unguarded"}
	if g != nil {
		verdict = g.Check(ctx)
	}
	exec := Execution{Action: verdict.Action, Verdict: verdict}
	if !verdict.Allowed() {
		exec.Action = action
		return exec
	}

	d.mu.Lock()
	actuator := d.actuators[verdict.Action.Name]
	if actuator == nil {
		actuator = d.defaultAct
	}
	d.mu.Unlock()
	if actuator == nil {
		exec.Err = fmt.Errorf("%w: %s", ErrNoActuator, verdict.Action.Name)
		return exec
	}
	if err := invoke(actuator, verdict.Action, trace); err != nil {
		exec.Err = fmt.Errorf("actuator %s: %w", actuator.Name(), err)
		return exec
	}

	d.mu.Lock()
	if fast && d.scratch.Owns(d.state) {
		// Commit in place. The Owns re-check covers the window where a
		// concurrent boxed-path operation replaced the state while the
		// guard ran.
		if newState, err := d.scratch.Commit(verdict.Action.Effect); err == nil {
			d.state = newState
			if err := d.trajectory.Append(newState); err != nil {
				exec.Err = err
			}
		}
	} else if newState, err := d.state.Apply(verdict.Action.Effect); err == nil {
		d.state = newState
		if err := d.trajectory.Append(newState); err != nil {
			exec.Err = err
		}
	}
	log := d.log
	d.mu.Unlock()

	exec.ObligationErrs = d.dischargeObligations(verdict.Action)
	if log = audit.Resolve(j, log); log != nil {
		var entryCtx map[string]string
		if trace.Valid() {
			// Trace IDs are unique per span; traced appends build a
			// fresh map.
			entryCtx = map[string]string{
				"event": env.Event.Type,
				"guard": verdict.Guard,
				"trace": trace.Trace.String(),
			}
		} else {
			entryCtx = d.actionCtx.Get2("event", env.Event.Type, "guard", verdict.Guard)
		}
		log.AppendOwned(audit.KindAction, d.id, actionDetail(verdict.Action), entryCtx)
	}
	return exec
}

// actionDetail renders the action's String form through a pooled
// buffer and dedups the result — one retained string per distinct
// action, however often it executes.
func actionDetail(a policy.Action) string {
	b := detailPool.Get().(*[]byte)
	*b = a.AppendText((*b)[:0])
	s := intern.Dedup(*b)
	detailPool.Put(b)
	return s
}

var detailPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 96)
	return &b
}}

func (d *Device) dischargeObligations(action policy.Action) map[string]error {
	if len(action.Obligations) == 0 {
		return nil
	}
	d.mu.Lock()
	discharger := d.discharger
	d.mu.Unlock()

	errs := make(map[string]error, len(action.Obligations))
	for _, ob := range action.Obligations {
		if discharger == nil {
			errs[ob] = errors.New("device: no obligation discharger configured")
			continue
		}
		if err := discharger.Discharge(ob, action); err != nil {
			errs[ob] = err
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}
