package device

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// Common device errors.
var (
	// ErrDeactivated is returned by operations on a shut-down device.
	ErrDeactivated = errors.New("device: deactivated")
	// ErrNoActuator is returned when an allowed action has no actuator
	// to execute it.
	ErrNoActuator = errors.New("device: no actuator for action")
)

// Config assembles a Device.
type Config struct {
	// ID uniquely identifies the device (required).
	ID string
	// Type is the device type used in interaction graphs (e.g.
	// "surveillance-drone").
	Type string
	// Organization names the coalition member operating the device.
	Organization string
	// Initial is the device's starting state (required; it fixes the
	// schema).
	Initial statespace.State
	// Policies is the device's logic; nil creates an empty set.
	Policies *policy.Set
	// Guard checks every directed action before actuation; nil allows
	// everything (the unguarded experimental control).
	Guard guard.Guard
	// KillSwitch verifies deactivation tokens. Nil makes the device
	// refuse all remote deactivation (the paper's rogue-device risk).
	KillSwitch *guard.KillSwitch
	// Audit receives action records; nil disables auditing.
	Audit *audit.Log
	// Discharger executes attached obligations; nil skips them (and
	// Execution.ObligationErrs reports the omission).
	Discharger guard.ObligationDischarger
	// TrajectoryCapacity hints the trajectory's initial capacity.
	TrajectoryCapacity int
	// Telemetry, when set, counts handled events (device.events) and
	// execution outcomes (device.executions). Nil disables the counters
	// at zero cost.
	Telemetry *telemetry.Registry
	// Tracer, when set, emits one span per handled event and per
	// executed action, parented on the trace context carried in the
	// event's labels — the causal chain from command intake to
	// actuation.
	Tracer *telemetry.Tracer
}

// Execution records what happened to one directed action.
type Execution struct {
	// Action is the action as finally executed (with attached
	// obligations) or as proposed when denied.
	Action policy.Action
	// Verdict is the guard's ruling.
	Verdict guard.Verdict
	// Err reports actuator failure for allowed actions.
	Err error
	// ObligationErrs maps obligation names to discharge failures.
	ObligationErrs map[string]error
}

// Executed reports whether the action was allowed and actuated without
// error.
func (e Execution) Executed() bool { return e.Verdict.Allowed() && e.Err == nil }

// Device is one autonomous unit in the collective. All methods are
// safe for concurrent use.
type Device struct {
	id   string
	typ  string
	org  string
	kill *guard.KillSwitch
	log  *audit.Log

	tracer       *telemetry.Tracer
	events       *telemetry.Counter
	execExecuted *telemetry.Counter
	execDenied   *telemetry.Counter
	execError    *telemetry.Counter

	lastEpoch atomic.Uint64

	mu          sync.Mutex
	state       statespace.State
	policies    *policy.Set
	guard       guard.Guard
	discharger  guard.ObligationDischarger
	sensors     []boundSensor
	actuators   map[string]Actuator
	defaultAct  Actuator
	trajectory  *statespace.Trajectory
	deactivated bool
}

var _ guard.Deactivatable = (*Device)(nil)

// New builds a device from the config.
func New(cfg Config) (*Device, error) {
	if cfg.ID == "" {
		return nil, errors.New("device: ID required")
	}
	if !cfg.Initial.Valid() {
		return nil, fmt.Errorf("device %s: initial state required", cfg.ID)
	}
	policies := cfg.Policies
	if policies == nil {
		policies = policy.NewSet()
	}
	capacity := cfg.TrajectoryCapacity
	if capacity <= 0 {
		capacity = 64
	}
	d := &Device{
		id:         cfg.ID,
		typ:        cfg.Type,
		org:        cfg.Organization,
		kill:       cfg.KillSwitch,
		log:        cfg.Audit,
		state:      cfg.Initial,
		policies:   policies,
		guard:      cfg.Guard,
		discharger: cfg.Discharger,
		actuators:  make(map[string]Actuator),
		defaultAct: NopActuator{},
		trajectory: statespace.NewTrajectory(capacity),
		tracer:     cfg.Tracer,
	}
	if reg := cfg.Telemetry; reg != nil {
		d.events = reg.Counter("device.events", "device", cfg.ID)
		d.execExecuted = reg.Counter("device.executions", "device", cfg.ID, "result", "executed")
		d.execDenied = reg.Counter("device.executions", "device", cfg.ID, "result", "denied")
		d.execError = reg.Counter("device.executions", "device", cfg.ID, "result", "error")
	}
	if err := d.trajectory.Append(cfg.Initial); err != nil {
		return nil, fmt.Errorf("device %s: %w", cfg.ID, err)
	}
	return d, nil
}

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// Type returns the device type.
func (d *Device) Type() string { return d.typ }

// Organization returns the operating organization.
func (d *Device) Organization() string { return d.org }

// CurrentState returns the device's current state.
func (d *Device) CurrentState() statespace.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Policies returns the device's policy set (shared, not a copy — the
// generative layer and reprogramming attacks mutate it through this
// handle).
func (d *Device) Policies() *policy.Set { return d.policies }

// Trajectory returns a copy of the visited states.
func (d *Device) Trajectory() []statespace.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trajectory.States()
}

// BindSensor ties a sensor to a state variable; Sense will write the
// sensor's readings there.
func (d *Device) BindSensor(variable string, s Sensor) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.state.Schema().Index(variable); !ok {
		return fmt.Errorf("device %s: %w: %q", d.id, statespace.ErrUnknownVariable, variable)
	}
	if s == nil {
		return fmt.Errorf("device %s: nil sensor for %q", d.id, variable)
	}
	d.sensors = append(d.sensors, boundSensor{variable: variable, sensor: s})
	return nil
}

// RegisterActuator routes actions with the given name to the actuator.
func (d *Device) RegisterActuator(actionName string, a Actuator) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if actionName == "" || a == nil {
		return fmt.Errorf("device %s: actuator registration needs a name and an actuator", d.id)
	}
	d.actuators[actionName] = a
	return nil
}

// SetDefaultActuator routes actions without a dedicated actuator.
func (d *Device) SetDefaultActuator(a Actuator) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.defaultAct = a
}

// SetGuard replaces the device's guard. A reprogramming attack may
// call this with nil — which is exactly the scenario tamper-evident
// guards and watchdogs exist to catch.
func (d *Device) SetGuard(g guard.Guard) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.guard = g
}

// Deactivate shuts the device down if the token verifies against the
// device's kill switch. Devices without a kill switch refuse.
func (d *Device) Deactivate(token string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.kill == nil || !d.kill.Verify(d.id, token) {
		return guard.ErrBadKillToken
	}
	d.deactivated = true
	return nil
}

// Deactivated reports whether the device is shut down.
func (d *Device) Deactivated() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deactivated
}

// Sense reads every bound sensor into the device state (the Monitor
// phase of the autonomic loop). Sensor failures are collected; the
// remaining sensors still update.
func (d *Device) Sense() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deactivated {
		return ErrDeactivated
	}
	var errs []error
	st := d.state
	for _, b := range d.sensors {
		v, err := b.sensor.Read()
		if err != nil {
			errs = append(errs, fmt.Errorf("sensor %s: %w", b.String(), err))
			continue
		}
		st, err = st.With(b.variable, v)
		if err != nil {
			errs = append(errs, err)
		}
	}
	d.state = st
	return errors.Join(errs...)
}

// HandleEvent runs the device's logic for one event: evaluate the
// compiled policy snapshot, pass each directed action through the
// guard (carrying the same snapshot, so decision and check see one
// consistent policy state), execute allowed actions, apply their
// state effects, and discharge attached obligations. It returns one
// Execution per directed action.
func (d *Device) HandleEvent(ev policy.Event) ([]Execution, error) {
	return d.HandleEventWith(ev, nil)
}

// HandleEventWith is HandleEvent with an audit journal: when j is
// non-nil, the audit appends this event causes (action records here,
// denial and break-glass records in the guard) are routed through it —
// the sim engine's deterministic merge lane when the device ticks on a
// parallel shard. Routing never enables auditing that was off: a
// device or guard with a nil log still appends nothing.
func (d *Device) HandleEventWith(ev policy.Event, j audit.Journal) ([]Execution, error) {
	d.mu.Lock()
	if d.deactivated {
		d.mu.Unlock()
		return nil, ErrDeactivated
	}
	env := policy.Env{Event: ev, State: d.state}
	g := d.guard
	d.mu.Unlock()

	d.events.Inc()
	// The trace context rides in the event labels (see telemetry.Inject)
	// so causality survives bus hops, retries and duplication.
	span := d.tracer.StartSpan("device.handle", d.id, telemetry.Extract(ev.Labels))
	span.SetAttr("event", ev.Type)

	snap := d.policies.Snapshot()
	decision := snap.Evaluate(env)
	d.lastEpoch.Store(snap.Epoch())
	span.SetAttr("policy-epoch", fmt.Sprintf("%d", snap.Epoch()))
	span.SetAttr("actions", fmt.Sprintf("%d", len(decision.Actions)))

	sc := span.Context()
	if !sc.Valid() {
		sc = telemetry.Extract(ev.Labels)
	}
	var out []Execution
	for _, action := range decision.Actions {
		out = append(out, d.executeOne(env, g, snap, action, sc, j))
	}
	span.Finish()
	return out, nil
}

// PolicyEpoch returns the snapshot epoch of the device's most recent
// policy evaluation (zero before the first event).
func (d *Device) PolicyEpoch() uint64 { return d.lastEpoch.Load() }

func (d *Device) executeOne(env policy.Env, g guard.Guard, snap *policy.Snapshot, action policy.Action, parent telemetry.SpanContext, j audit.Journal) Execution {
	span := d.tracer.StartSpan("device.execute", d.id, parent)
	span.SetAttr("action", action.Name)
	trace := parent
	if sc := span.Context(); sc.Valid() {
		trace = sc
	}
	exec := d.executeTraced(env, g, snap, action, trace, j)
	switch {
	case exec.Executed():
		d.execExecuted.Inc()
		span.SetAttr("result", "executed")
	case !exec.Verdict.Allowed():
		d.execDenied.Inc()
		span.SetAttr("result", "denied")
		span.SetAttr("guard", exec.Verdict.Guard)
	default:
		d.execError.Inc()
		span.SetAttr("result", "error")
		if exec.Err != nil {
			span.SetAttr("error", exec.Err.Error())
		}
	}
	span.Finish()
	return exec
}

func (d *Device) executeTraced(env policy.Env, g guard.Guard, snap *policy.Snapshot, action policy.Action, trace telemetry.SpanContext, j audit.Journal) Execution {
	d.mu.Lock()
	next, err := d.state.Apply(action.Effect)
	if err != nil {
		// An effect referencing unknown variables predicts nothing;
		// fail closed by leaving Next invalid.
		next = statespace.State{}
	}
	ctx := guard.ActionContext{
		Actor:    d.id,
		Action:   action,
		State:    d.state,
		Next:     next,
		Env:      env,
		Policies: snap,
		Trace:    trace,
		Journal:  j,
	}
	d.mu.Unlock()

	verdict := guard.Verdict{Decision: guard.DecisionAllow, Action: action, Guard: "none", Reason: "unguarded"}
	if g != nil {
		verdict = g.Check(ctx)
	}
	exec := Execution{Action: verdict.Action, Verdict: verdict}
	if !verdict.Allowed() {
		exec.Action = action
		return exec
	}

	d.mu.Lock()
	actuator := d.actuators[verdict.Action.Name]
	if actuator == nil {
		actuator = d.defaultAct
	}
	d.mu.Unlock()
	if actuator == nil {
		exec.Err = fmt.Errorf("%w: %s", ErrNoActuator, verdict.Action.Name)
		return exec
	}
	if err := invoke(actuator, verdict.Action, trace); err != nil {
		exec.Err = fmt.Errorf("actuator %s: %w", actuator.Name(), err)
		return exec
	}

	d.mu.Lock()
	if newState, err := d.state.Apply(verdict.Action.Effect); err == nil {
		d.state = newState
		if err := d.trajectory.Append(newState); err != nil {
			exec.Err = err
		}
	}
	log := d.log
	d.mu.Unlock()

	exec.ObligationErrs = d.dischargeObligations(verdict.Action)
	if log = audit.Resolve(j, log); log != nil {
		entryCtx := map[string]string{
			"event": env.Event.Type,
			"guard": verdict.Guard,
		}
		if trace.Valid() {
			entryCtx["trace"] = trace.Trace.String()
		}
		log.Append(audit.KindAction, d.id, verdict.Action.String(), entryCtx)
	}
	return exec
}

func (d *Device) dischargeObligations(action policy.Action) map[string]error {
	if len(action.Obligations) == 0 {
		return nil
	}
	d.mu.Lock()
	discharger := d.discharger
	d.mu.Unlock()

	errs := make(map[string]error, len(action.Obligations))
	for _, ob := range action.Obligations {
		if discharger == nil {
			errs[ob] = errors.New("device: no obligation discharger configured")
			continue
		}
		if err := discharger.Discharge(ob, action); err != nil {
			errs[ob] = err
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}
