package device

import (
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// DefaultRepairEvent is the event type a Manager raises when the
// device needs attention.
const DefaultRepairEvent = "self-state-alert"

// Manager runs the autonomic self-management loop for one device —
// the paper's requirement that devices "repair themselves ... and deal
// in an autonomous manner with failures" (Section II). Each Tick is
// one MAPE pass:
//
//	Monitor  — read sensors into the state,
//	Analyze  — classify the state (good / neutral / bad),
//	Plan     — if the state is bad (or safeness is in monotone
//	           decline), raise a repair event,
//	Execute  — let the device's policies handle the event, through
//	           its guard.
type Manager struct {
	// Device is the managed device (required).
	Device *Device
	// Classifier analyzes the device state (required).
	Classifier statespace.Classifier
	// Metric enables cumulative-decline detection; nil disables it.
	Metric statespace.SafenessMetric
	// DeclineWindow is the number of consecutive declining transitions
	// that triggers a repair event (default 3, used only with Metric).
	DeclineWindow int
	// RepairEventType overrides DefaultRepairEvent.
	RepairEventType string

	// attrs is the reused event-attribute map of the fast tick path.
	// It is guarded by the device's scratch mutex (hmu): only the
	// holder of that lock runs the fast path, and the event handed to
	// the device is fully consumed before the tick returns.
	attrs map[string]float64
	// execBuf is the reused execution slice of the fast tick path
	// (same hmu guard as attrs). The Executions of a fast tick's
	// Report are valid only until the next tick.
	execBuf []Execution
}

// TickReport summarizes one MAPE pass.
type TickReport struct {
	// Class is the analyzed state class.
	Class statespace.Class
	// Alerted reports whether a repair event was raised.
	Alerted bool
	// Executions are the actions taken in response.
	Executions []Execution
	// SenseErr carries sensor failures (the loop continues past
	// them).
	SenseErr error
}

// Tick runs one MAPE pass at the given time.
func (m *Manager) Tick(now time.Time) (TickReport, error) {
	return m.TickWith(now, nil)
}

// TickWith is Tick with an audit journal, making the pass shard-safe
// for the engine's parallel mode (one shard per device ID). A tick
// touches only:
//
//   - the device's own state, trajectory, sensors and actuators
//     (serialized by the device mutex; exclusive because at most one
//     event per shard runs at a time),
//   - the device's compiled policy snapshot (immutable, lock-free),
//   - telemetry counters and device-labeled gauges (atomic and
//     commutative, so snapshots stay deterministic at any worker
//     count),
//   - the shared audit log — only through the journal, which buffers
//     appends for the engine's deterministic (time, seq) merge.
//
// Ticks must not mutate other devices, un-labeled gauges, or shared
// maps/slices; anything outside this list belongs in a barrier
// (unkeyed) event.
func (m *Manager) TickWith(now time.Time, j audit.Journal) (TickReport, error) {
	if !m.Device.boxed && m.Device.hmu.TryLock() {
		defer m.Device.hmu.Unlock()
		return m.tick(now, j, true)
	}
	return m.tick(now, j, false)
}

// tick implements TickWith. With fast set (the caller holds the
// device's scratch mutex for the whole pass) the Monitor and Execute
// phases run on the device's zero-allocation scratch path and the
// Analyze phase classifies the live state view in place; the boxed
// path snapshots state as the original implementation did.
func (m *Manager) tick(now time.Time, j audit.Journal, fast bool) (TickReport, error) {
	var report TickReport
	var st statespace.State
	if fast {
		report.SenseErr = m.Device.senseFast()
		if report.SenseErr == ErrDeactivated {
			return report, ErrDeactivated
		}
		// Safe to read without copying: we hold hmu, so the scratch
		// this view may alias is not mutated under us.
		st = m.Device.stateView()
	} else {
		report.SenseErr = m.Device.Sense()
		if report.SenseErr == ErrDeactivated {
			return report, ErrDeactivated
		}
		st = m.Device.CurrentState()
	}
	report.Class = m.Classifier.Classify(st)

	alert := report.Class == statespace.ClassBad
	if !alert && m.Metric != nil {
		window := m.DeclineWindow
		if window <= 0 {
			window = 3
		}
		alert = m.Device.TrajectoryDecline(m.Metric, window)
	}
	if !alert {
		return report, nil
	}

	report.Alerted = true
	eventType := m.RepairEventType
	if eventType == "" {
		eventType = DefaultRepairEvent
	}
	var attrs map[string]float64
	if fast {
		if m.attrs == nil {
			m.attrs = make(map[string]float64, 2)
		}
		clear(m.attrs)
		attrs = m.attrs
	} else {
		attrs = make(map[string]float64, 2)
	}
	attrs["class"] = float64(report.Class)
	if m.Metric != nil {
		attrs["safeness"] = m.Metric.Safeness(st)
	}
	ev := policy.Event{
		Type:   eventType,
		Source: m.Device.ID(),
		Time:   now,
		Attrs:  attrs,
	}
	var execs []Execution
	var err error
	if fast {
		if m.execBuf == nil {
			m.execBuf = make([]Execution, 0, 4)
		}
		execs, err = m.Device.handleEvent(ev, j, true, m.execBuf)
		if execs != nil {
			m.execBuf = execs
		}
	} else {
		execs, err = m.Device.HandleEventWith(ev, j)
	}
	report.Executions = execs
	return report, err
}
