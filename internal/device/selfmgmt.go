package device

import (
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// DefaultRepairEvent is the event type a Manager raises when the
// device needs attention.
const DefaultRepairEvent = "self-state-alert"

// Manager runs the autonomic self-management loop for one device —
// the paper's requirement that devices "repair themselves ... and deal
// in an autonomous manner with failures" (Section II). Each Tick is
// one MAPE pass:
//
//	Monitor  — read sensors into the state,
//	Analyze  — classify the state (good / neutral / bad),
//	Plan     — if the state is bad (or safeness is in monotone
//	           decline), raise a repair event,
//	Execute  — let the device's policies handle the event, through
//	           its guard.
type Manager struct {
	// Device is the managed device (required).
	Device *Device
	// Classifier analyzes the device state (required).
	Classifier statespace.Classifier
	// Metric enables cumulative-decline detection; nil disables it.
	Metric statespace.SafenessMetric
	// DeclineWindow is the number of consecutive declining transitions
	// that triggers a repair event (default 3, used only with Metric).
	DeclineWindow int
	// RepairEventType overrides DefaultRepairEvent.
	RepairEventType string
}

// TickReport summarizes one MAPE pass.
type TickReport struct {
	// Class is the analyzed state class.
	Class statespace.Class
	// Alerted reports whether a repair event was raised.
	Alerted bool
	// Executions are the actions taken in response.
	Executions []Execution
	// SenseErr carries sensor failures (the loop continues past
	// them).
	SenseErr error
}

// Tick runs one MAPE pass at the given time.
func (m *Manager) Tick(now time.Time) (TickReport, error) {
	return m.TickWith(now, nil)
}

// TickWith is Tick with an audit journal, making the pass shard-safe
// for the engine's parallel mode (one shard per device ID). A tick
// touches only:
//
//   - the device's own state, trajectory, sensors and actuators
//     (serialized by the device mutex; exclusive because at most one
//     event per shard runs at a time),
//   - the device's compiled policy snapshot (immutable, lock-free),
//   - telemetry counters and device-labeled gauges (atomic and
//     commutative, so snapshots stay deterministic at any worker
//     count),
//   - the shared audit log — only through the journal, which buffers
//     appends for the engine's deterministic (time, seq) merge.
//
// Ticks must not mutate other devices, un-labeled gauges, or shared
// maps/slices; anything outside this list belongs in a barrier
// (unkeyed) event.
func (m *Manager) TickWith(now time.Time, j audit.Journal) (TickReport, error) {
	var report TickReport
	report.SenseErr = m.Device.Sense()
	if report.SenseErr == ErrDeactivated {
		return report, ErrDeactivated
	}

	st := m.Device.CurrentState()
	report.Class = m.Classifier.Classify(st)

	alert := report.Class == statespace.ClassBad
	if !alert && m.Metric != nil {
		window := m.DeclineWindow
		if window <= 0 {
			window = 3
		}
		traj := statespace.NewTrajectory(window + 1)
		states := m.Device.Trajectory()
		for _, s := range states {
			if err := traj.Append(s); err != nil {
				break
			}
		}
		alert = traj.MonotoneDecline(m.Metric, window)
	}
	if !alert {
		return report, nil
	}

	report.Alerted = true
	eventType := m.RepairEventType
	if eventType == "" {
		eventType = DefaultRepairEvent
	}
	ev := policy.Event{
		Type:   eventType,
		Source: m.Device.ID(),
		Time:   now,
		Attrs:  map[string]float64{"class": float64(report.Class)},
	}
	if m.Metric != nil {
		ev.Attrs["safeness"] = m.Metric.Safeness(st)
	}
	execs, err := m.Device.HandleEventWith(ev, j)
	report.Executions = execs
	return report, err
}
