// Package device implements the paper's abstract device model
// (Figure 2 / Section V): "Any device can be viewed as a set of sensors
// and actuators which has logic dictating its behavior under different
// circumstances... When an event occurs, the logic used within the
// device looks at the current state and the inbound event, and then
// takes an action. The result of the action ... effectively moves the
// device to another state."
//
// A Device binds sensors to state variables, evaluates events against
// its policy set (the logic), passes every directed action through a
// guard before actuation, applies the action's effect to its state,
// discharges attached obligations, and records its trajectory. It
// implements guard.Deactivatable through a tamper-resistant kill
// switch.
package device

import (
	"errors"
	"fmt"
	"math/rand"
)

// Sensor produces one numeric reading per Read call.
type Sensor interface {
	// Name identifies the sensor.
	Name() string
	// Read samples the sensed quantity.
	Read() (float64, error)
}

// SensorFunc adapts a function into a Sensor.
type SensorFunc struct {
	Label string
	Fn    func() (float64, error)
}

var _ Sensor = SensorFunc{}

// Name identifies the sensor.
func (s SensorFunc) Name() string { return s.Label }

// Read invokes the function; a nil function errors.
func (s SensorFunc) Read() (float64, error) {
	if s.Fn == nil {
		return 0, errors.New("device: sensor has no read function")
	}
	return s.Fn()
}

// NoisySensor wraps a sensor with additive uniform noise in
// [−Amplitude, +Amplitude], modeling imperfect state inference.
type NoisySensor struct {
	Inner     Sensor
	Amplitude float64
	Rand      *rand.Rand
}

var _ Sensor = (*NoisySensor)(nil)

// Name identifies the wrapped sensor.
func (s *NoisySensor) Name() string { return s.Inner.Name() + "+noise" }

// Read samples the inner sensor and perturbs the reading.
func (s *NoisySensor) Read() (float64, error) {
	v, err := s.Inner.Read()
	if err != nil {
		return 0, err
	}
	if s.Rand == nil {
		return v, nil
	}
	return v + (s.Rand.Float64()*2-1)*s.Amplitude, nil
}

// DeceivedSensor wraps a sensor with an attacker-controlled override —
// the sensor deception attack the break-glass trust check must defend
// against (Section VI.B, ref [13]).
type DeceivedSensor struct {
	Inner Sensor
	// Active reports whether the deception is currently engaged.
	Active func() bool
	// FakeValue is returned while the deception is active.
	FakeValue float64
}

var _ Sensor = (*DeceivedSensor)(nil)

// Name identifies the wrapped sensor (indistinguishably from the
// honest one — that is the point of the attack).
func (s *DeceivedSensor) Name() string { return s.Inner.Name() }

// Read returns the fake value while active, otherwise the honest
// reading.
func (s *DeceivedSensor) Read() (float64, error) {
	if s.Active != nil && s.Active() {
		return s.FakeValue, nil
	}
	return s.Inner.Read()
}

// boundSensor ties a sensor to the state variable it feeds.
type boundSensor struct {
	variable string
	sensor   Sensor
}

func (b boundSensor) String() string {
	return fmt.Sprintf("%s←%s", b.variable, b.sensor.Name())
}
