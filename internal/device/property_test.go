package device_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/statespace"
)

// TestPropertyBoxedScratchEquivalence is the layout-equivalence
// property test for the memory-compact state plane: a device on the
// arena/scratch fast path and a device on the boxed
// allocation-per-transition path, driven through the same 1000
// randomized MAPE ticks, must be indistinguishable — byte-identical
// audit journals (guard verdicts included), identical state
// trajectories, identical per-tick reports. It runs under -race via
// `make test-race`, so it also exercises the TryLock fast/boxed
// hand-off with the race detector watching.
func TestPropertyBoxedScratchEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			const ticks = 1000
			now := time.Date(2026, 8, 3, 0, 0, 0, 0, time.UTC)
			clock := func() time.Time { return now }

			compact := newPropertyRig(t, seed, false, clock)
			boxed := newPropertyRig(t, seed, true, clock)

			for i := 0; i < ticks; i++ {
				now = now.Add(time.Second)
				cr, cerr := compact.mgr.TickWith(now, nil)
				br, berr := boxed.mgr.TickWith(now, nil)
				if (cerr == nil) != (berr == nil) {
					t.Fatalf("tick %d: compact err %v, boxed err %v", i, cerr, berr)
				}
				if cr.Class != br.Class || cr.Alerted != br.Alerted ||
					len(cr.Executions) != len(br.Executions) {
					t.Fatalf("tick %d: report diverged: compact %+v, boxed %+v", i, cr, br)
				}
				for k := range cr.Executions {
					cv, bv := cr.Executions[k].Verdict, br.Executions[k].Verdict
					if cv.Decision != bv.Decision || cv.Guard != bv.Guard || cv.Reason != bv.Reason {
						t.Fatalf("tick %d execution %d: verdict diverged: %+v vs %+v", i, k, cv, bv)
					}
				}
				cs, bs := compact.dev.CurrentState(), boxed.dev.CurrentState()
				if cs.String() != bs.String() {
					t.Fatalf("tick %d: state diverged: compact %s, boxed %s", i, cs, bs)
				}
			}

			// The hash chain binds every field of every entry, so equal
			// hashes over equal length mean byte-identical journals.
			ce, be := compact.log.Entries(), boxed.log.Entries()
			if len(ce) != len(be) {
				t.Fatalf("journal length diverged: compact %d, boxed %d", len(ce), len(be))
			}
			if len(ce) == 0 {
				t.Fatal("degenerate run: empty journal")
			}
			for i := range ce {
				if ce[i].Hash != be[i].Hash {
					t.Fatalf("journal entry %d diverged:\ncompact: %s %s %v\nboxed:   %s %s %v",
						i, ce[i].Kind, ce[i].Detail, ce[i].Context,
						be[i].Kind, be[i].Detail, be[i].Context)
				}
			}

			ct, bt := compact.dev.Trajectory(), boxed.dev.Trajectory()
			if len(ct) != len(bt) {
				t.Fatalf("trajectory length diverged: compact %d, boxed %d", len(ct), len(bt))
			}
			for i := range ct {
				if ct[i].String() != bt[i].String() {
					t.Fatalf("trajectory %d diverged: compact %s, boxed %s", i, ct[i], bt[i])
				}
			}
		})
	}
}

type propertyRig struct {
	dev *device.Device
	mgr *device.Manager
	log *audit.Log
}

// newPropertyRig builds one self-managing reactor device whose sensor
// performs a seeded random heat walk. Both rigs of a property run get
// the same seed, so they see identical observations in identical
// order; only the state-plane layout differs.
func newPropertyRig(t *testing.T, seed int64, boxedState bool, clock func() time.Time) *propertyRig {
	t.Helper()
	schema := statespace.MustSchema(statespace.Var("heat", 0, 100))
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
	safeness := statespace.SafenessFunc(func(st statespace.State) float64 {
		return (100 - st.MustGet("heat")) / 100
	})
	log := audit.New(audit.WithClock(clock))

	pipe := guard.NewPipeline(log,
		&guard.PreActionGuard{
			Predictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
				if ctx.Action.Name == "vent" {
					return 1
				}
				return 0
			}),
			Threshold: 0.5,
		},
		&guard.StateSpaceGuard{Classifier: classifier},
	)

	initial, err := schema.StateFromMap(map[string]float64{"heat": 30})
	if err != nil {
		t.Fatalf("initial state: %v", err)
	}
	d, err := device.New(device.Config{
		ID: "prop-reactor", Type: "reactor", Organization: "us",
		Initial:         initial,
		Guard:           pipe,
		Audit:           log,
		TrajectoryBound: 8,
		BoxedState:      boxedState,
	})
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}

	const source = `
policy cool priority 5: on self-state-alert do cool effect heat -= 40
policy vent priority 4: on self-state-alert do vent category kinetic-action`
	policies, err := policylang.CompileSource(source, policy.OriginHuman)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, pol := range policies {
		if err := d.Policies().Add(pol); err != nil {
			t.Fatalf("add policy: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	heat := 30.0
	if err := d.BindSensor("heat", device.SensorFunc{Label: "thermo", Fn: func() (float64, error) {
		heat += rng.Float64()*26 - 6 // upward-drifting random walk
		if rng.Intn(17) == 0 {
			heat += 25 // occasional spike straight into the bad region
		}
		if heat > 98 {
			heat = 98
		}
		if heat < 5 {
			heat = 5
		}
		return heat, nil
	}}); err != nil {
		t.Fatalf("bind sensor: %v", err)
	}
	if err := d.RegisterActuator("cool", device.ActuatorFunc{Label: "chiller",
		Fn: func(policy.Action) error {
			heat -= 40
			if heat < 5 {
				heat = 5
			}
			return nil
		}}); err != nil {
		t.Fatalf("register actuator: %v", err)
	}
	d.SetDefaultActuator(device.NopActuator{})

	return &propertyRig{
		dev: d,
		mgr: &device.Manager{Device: d, Classifier: classifier, Metric: safeness},
		log: log,
	}
}
