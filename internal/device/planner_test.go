package device

import (
	"testing"

	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/risk"
	"repro/internal/statespace"
)

func plannerClassifier() statespace.Classifier {
	return statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
}

func plannerCandidates() []policy.Action {
	return []policy.Action{
		{Name: "sprint", Effect: statespace.Delta{"heat": 60, "fuel": -5}}, // would overheat from heat=30
		{Name: "walk", Effect: statespace.Delta{"heat": 10, "fuel": -2}},   // safe, cheap
		{Name: "crawl", Effect: statespace.Delta{"heat": 2, "fuel": -1}},   // safest, slowest
	}
}

func TestPlannerPrefersUtilityAmongAllowed(t *testing.T) {
	s := devSchema(t)
	state, err := s.StateFromMap(map[string]float64{"heat": 30, "fuel": 50})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	pl := &Planner{
		Guard: &guard.StateSpaceGuard{Classifier: plannerClassifier()},
		Utility: &risk.Utility{
			// Mission value: keep fuel; risk: heat.
			Value: func(st statespace.State) float64 { return st.MustGet("fuel") / 100 },
			Risk: risk.AssessorFunc(func(st statespace.State) float64 {
				return st.MustGet("heat") / 100
			}),
		},
	}
	plan, err := pl.Choose("dev", state, policy.Env{}, plannerCandidates())
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	// sprint is denied (would hit heat=90); crawl beats walk on
	// utility (more fuel left, less heat).
	if plan.Action.Name != "crawl" {
		t.Errorf("chose %q, want crawl", plan.Action.Name)
	}
	if plan.Denied != 1 {
		t.Errorf("Denied = %d, want 1", plan.Denied)
	}
	if plan.Fallback() {
		t.Error("plan reported fallback")
	}
}

func TestPlannerFirstAllowedWithoutUtility(t *testing.T) {
	s := devSchema(t)
	state, err := s.StateFromMap(map[string]float64{"heat": 30, "fuel": 50})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	pl := &Planner{Guard: &guard.StateSpaceGuard{Classifier: plannerClassifier()}}
	plan, err := pl.Choose("dev", state, policy.Env{}, plannerCandidates())
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if plan.Action.Name != "walk" {
		t.Errorf("chose %q, want walk (first allowed)", plan.Action.Name)
	}
}

func TestPlannerFallsBackToNoAction(t *testing.T) {
	s := devSchema(t)
	state, err := s.StateFromMap(map[string]float64{"heat": 75, "fuel": 50})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	pl := &Planner{Guard: &guard.StateSpaceGuard{Classifier: plannerClassifier()}}
	// Every candidate overheats from heat=75.
	candidates := []policy.Action{
		{Name: "sprint", Effect: statespace.Delta{"heat": 30}},
		{Name: "jog", Effect: statespace.Delta{"heat": 10}},
	}
	plan, err := pl.Choose("dev", state, policy.Env{}, candidates)
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if !plan.Fallback() || plan.Denied != 2 {
		t.Errorf("plan = %+v, want no-op with 2 denials", plan)
	}
	if !plan.Next.Equal(state) {
		t.Error("fallback predicted a state change")
	}
}

func TestPlannerUnknownEffectVariableDenied(t *testing.T) {
	s := devSchema(t)
	pl := &Planner{}
	plan, err := pl.Choose("dev", s.Origin(), policy.Env{}, []policy.Action{
		{Name: "weird", Effect: statespace.Delta{"ghost": 1}},
	})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if !plan.Fallback() || plan.Denied != 1 {
		t.Errorf("plan = %+v", plan)
	}
	if _, err := pl.Choose("dev", statespace.State{}, policy.Env{}, nil); err == nil {
		t.Error("invalid state accepted")
	}
}

func TestPlanAndExecute(t *testing.T) {
	d := newDevice(t)
	invoked := ""
	if err := d.RegisterActuator("walk", ActuatorFunc{Label: "legs", Fn: func(a policy.Action) error {
		invoked = a.Name
		return nil
	}}); err != nil {
		t.Fatalf("RegisterActuator: %v", err)
	}
	pl := &Planner{Guard: &guard.StateSpaceGuard{Classifier: plannerClassifier()}}
	plan, exec, err := d.PlanAndExecute(pl, policy.Env{}, []policy.Action{
		{Name: "walk", Effect: statespace.Delta{"heat": 10, "fuel": -2}},
	})
	if err != nil {
		t.Fatalf("PlanAndExecute: %v", err)
	}
	if plan.Action.Name != "walk" || !exec.Executed() || invoked != "walk" {
		t.Errorf("plan=%+v exec=%+v invoked=%q", plan, exec, invoked)
	}
	if got := d.CurrentState().MustGet("fuel"); got != 48 {
		t.Errorf("fuel = %g, want 48", got)
	}

	// Fallback path executes nothing.
	hot, err := d.CurrentState().With("heat", 79)
	if err != nil {
		t.Fatalf("With: %v", err)
	}
	_ = hot
	plan, exec, err = d.PlanAndExecute(pl, policy.Env{}, []policy.Action{
		{Name: "overheat", Effect: statespace.Delta{"heat": 100}},
	})
	if err != nil {
		t.Fatalf("PlanAndExecute: %v", err)
	}
	if !plan.Fallback() || !exec.Action.IsNoAction() {
		t.Errorf("fallback plan executed a real action: %+v %+v", plan, exec)
	}
	if got := d.CurrentState().MustGet("fuel"); got != 48 {
		t.Errorf("fallback changed state: fuel = %g", got)
	}
}

func TestPlanAndExecuteDeactivated(t *testing.T) {
	ks, err := guard.NewKillSwitch([]byte("s"))
	if err != nil {
		t.Fatalf("NewKillSwitch: %v", err)
	}
	d := newDevice(t, func(c *Config) { c.KillSwitch = ks })
	if err := d.Deactivate(ks.TokenFor("dev-1")); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	if _, _, err := d.PlanAndExecute(&Planner{}, policy.Env{}, nil); err != ErrDeactivated {
		t.Errorf("err = %v", err)
	}
}
