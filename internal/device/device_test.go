package device

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func devSchema(t *testing.T) *statespace.Schema {
	t.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("fuel", 0, 100),
		statespace.Var("heat", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func newDevice(t *testing.T, opts ...func(*Config)) *Device {
	t.Helper()
	s := devSchema(t)
	initial, err := s.StateFromMap(map[string]float64{"fuel": 50})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	cfg := Config{ID: "dev-1", Type: "drone", Organization: "us", Initial: initial}
	for _, o := range opts {
		o(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func movePolicy(t *testing.T, d *Device) {
	t.Helper()
	err := d.Policies().Add(policy.Policy{
		ID: "move", EventType: "tick", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "move", Effect: statespace.Delta{"fuel": -10}},
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	s := devSchema(t)
	if _, err := New(Config{Initial: s.Origin()}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := New(Config{ID: "x"}); err == nil {
		t.Error("missing initial state accepted")
	}
	d := newDevice(t)
	if d.ID() != "dev-1" || d.Type() != "drone" || d.Organization() != "us" {
		t.Error("accessors wrong")
	}
	if got := d.Trajectory(); len(got) != 1 {
		t.Errorf("initial trajectory = %v", got)
	}
}

func TestHandleEventExecutesAndAppliesEffect(t *testing.T) {
	d := newDevice(t)
	movePolicy(t, d)
	invoked := 0
	if err := d.RegisterActuator("move", ActuatorFunc{Label: "motor", Fn: func(policy.Action) error {
		invoked++
		return nil
	}}); err != nil {
		t.Fatalf("RegisterActuator: %v", err)
	}

	execs, err := d.HandleEvent(policy.Event{Type: "tick"})
	if err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if len(execs) != 1 || !execs[0].Executed() {
		t.Fatalf("execs = %+v", execs)
	}
	if invoked != 1 {
		t.Errorf("actuator invoked %d times", invoked)
	}
	if got := d.CurrentState().MustGet("fuel"); got != 40 {
		t.Errorf("fuel = %g, want 40", got)
	}
	if got := d.Trajectory(); len(got) != 2 {
		t.Errorf("trajectory length = %d", len(got))
	}
}

func TestHandleEventUnmatchedEvent(t *testing.T) {
	d := newDevice(t)
	movePolicy(t, d)
	execs, err := d.HandleEvent(policy.Event{Type: "unrelated"})
	if err != nil || len(execs) != 0 {
		t.Errorf("execs = %v, err = %v", execs, err)
	}
}

func TestGuardDenialBlocksActuation(t *testing.T) {
	denied := 0
	d := newDevice(t, func(c *Config) {
		c.Guard = guardDenyAll{}
	})
	movePolicy(t, d)
	if err := d.RegisterActuator("move", ActuatorFunc{Label: "motor", Fn: func(policy.Action) error {
		denied++
		return nil
	}}); err != nil {
		t.Fatalf("RegisterActuator: %v", err)
	}
	execs, err := d.HandleEvent(policy.Event{Type: "tick"})
	if err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if execs[0].Executed() || denied != 0 {
		t.Error("denied action was actuated")
	}
	if got := d.CurrentState().MustGet("fuel"); got != 50 {
		t.Errorf("state changed despite denial: fuel = %g", got)
	}
}

type guardDenyAll struct{}

func (guardDenyAll) Name() string { return "deny-all" }
func (guardDenyAll) Check(guard.ActionContext) guard.Verdict {
	return guard.Verdict{Decision: guard.DecisionDeny, Guard: "deny-all", Reason: "always"}
}

func TestActuatorErrorDoesNotChangeState(t *testing.T) {
	d := newDevice(t)
	movePolicy(t, d)
	boom := errors.New("jam")
	if err := d.RegisterActuator("move", ActuatorFunc{Label: "motor", Fn: func(policy.Action) error {
		return boom
	}}); err != nil {
		t.Fatalf("RegisterActuator: %v", err)
	}
	execs, err := d.HandleEvent(policy.Event{Type: "tick"})
	if err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if execs[0].Executed() || !errors.Is(execs[0].Err, boom) {
		t.Errorf("exec = %+v", execs[0])
	}
	if got := d.CurrentState().MustGet("fuel"); got != 50 {
		t.Errorf("state changed despite actuator failure: fuel = %g", got)
	}
}

func TestDefaultActuatorUsedWhenUnrouted(t *testing.T) {
	d := newDevice(t)
	movePolicy(t, d)
	hits := 0
	d.SetDefaultActuator(ActuatorFunc{Label: "default", Fn: func(policy.Action) error {
		hits++
		return nil
	}})
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if hits != 1 {
		t.Errorf("default actuator hits = %d", hits)
	}
}

func TestObligationsDischarged(t *testing.T) {
	var discharged []string
	d := newDevice(t, func(c *Config) {
		c.Discharger = guard.DischargerFunc(func(ob string, a policy.Action) error {
			discharged = append(discharged, ob)
			return nil
		})
	})
	err := d.Policies().Add(policy.Policy{
		ID: "dig", EventType: "order", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "dig", Obligations: []string{"post-sign", "notify"}},
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	execs, err := d.HandleEvent(policy.Event{Type: "order"})
	if err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if len(execs[0].ObligationErrs) != 0 {
		t.Errorf("ObligationErrs = %v", execs[0].ObligationErrs)
	}
	if len(discharged) != 2 || discharged[0] != "post-sign" {
		t.Errorf("discharged = %v", discharged)
	}
}

func TestObligationsWithoutDischargerReported(t *testing.T) {
	d := newDevice(t)
	err := d.Policies().Add(policy.Policy{
		ID: "dig", EventType: "order", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "dig", Obligations: []string{"post-sign"}},
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	execs, err := d.HandleEvent(policy.Event{Type: "order"})
	if err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if execs[0].ObligationErrs["post-sign"] == nil {
		t.Error("missing discharger not reported")
	}
}

func TestDeactivation(t *testing.T) {
	ks, err := guard.NewKillSwitch([]byte("secret"))
	if err != nil {
		t.Fatalf("NewKillSwitch: %v", err)
	}
	d := newDevice(t, func(c *Config) { c.KillSwitch = ks })

	if err := d.Deactivate("forged-token"); !errors.Is(err, guard.ErrBadKillToken) {
		t.Errorf("forged token error = %v", err)
	}
	if d.Deactivated() {
		t.Fatal("device deactivated by forged token")
	}
	if err := d.Deactivate(ks.TokenFor("dev-1")); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	if !d.Deactivated() {
		t.Fatal("device not deactivated")
	}
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); !errors.Is(err, ErrDeactivated) {
		t.Errorf("HandleEvent on dead device = %v", err)
	}
	if err := d.Sense(); !errors.Is(err, ErrDeactivated) {
		t.Errorf("Sense on dead device = %v", err)
	}
}

func TestDeviceWithoutKillSwitchRefusesDeactivation(t *testing.T) {
	d := newDevice(t)
	if err := d.Deactivate("anything"); !errors.Is(err, guard.ErrBadKillToken) {
		t.Errorf("Deactivate = %v", err)
	}
}

func TestSense(t *testing.T) {
	d := newDevice(t)
	reading := 33.0
	if err := d.BindSensor("heat", SensorFunc{Label: "thermo", Fn: func() (float64, error) {
		return reading, nil
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	if err := d.Sense(); err != nil {
		t.Fatalf("Sense: %v", err)
	}
	if got := d.CurrentState().MustGet("heat"); got != 33 {
		t.Errorf("heat = %g", got)
	}
	if err := d.BindSensor("nope", SensorFunc{Label: "x"}); err == nil {
		t.Error("bound sensor to unknown variable")
	}
	if err := d.BindSensor("heat", nil); err == nil {
		t.Error("bound nil sensor")
	}
}

func TestSensePartialFailure(t *testing.T) {
	d := newDevice(t)
	if err := d.BindSensor("heat", SensorFunc{Label: "broken", Fn: func() (float64, error) {
		return 0, errors.New("dead sensor")
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	if err := d.BindSensor("fuel", SensorFunc{Label: "gauge", Fn: func() (float64, error) {
		return 77, nil
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	err := d.Sense()
	if err == nil {
		t.Fatal("sensor failure not reported")
	}
	if got := d.CurrentState().MustGet("fuel"); got != 77 {
		t.Errorf("healthy sensor not applied: fuel = %g", got)
	}
}

func TestAuditRecordsActions(t *testing.T) {
	log := audit.New()
	d := newDevice(t, func(c *Config) { c.Audit = log })
	movePolicy(t, d)
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	actions := log.ByKind(audit.KindAction)
	if len(actions) != 1 || actions[0].Actor != "dev-1" {
		t.Errorf("action audit = %+v", actions)
	}
}

func TestConcurrentHandleEvent(t *testing.T) {
	d := newDevice(t)
	movePolicy(t, d)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, _ = d.HandleEvent(policy.Event{Type: "tick"})
			}
		}()
	}
	wg.Wait()
	if got := d.CurrentState().MustGet("fuel"); got != 0 {
		t.Errorf("fuel = %g, want 0 (clamped after 160 moves)", got)
	}
}

func TestSensors(t *testing.T) {
	base := SensorFunc{Label: "thermo", Fn: func() (float64, error) { return 10, nil }}
	noisy := &NoisySensor{Inner: base, Amplitude: 1, Rand: rand.New(rand.NewSource(3))}
	v, err := noisy.Read()
	if err != nil || v < 9 || v > 11 {
		t.Errorf("noisy read = %g, %v", v, err)
	}
	if noisy.Name() != "thermo+noise" {
		t.Errorf("Name = %q", noisy.Name())
	}
	quiet := &NoisySensor{Inner: base}
	if v, _ := quiet.Read(); v != 10 {
		t.Errorf("nil-rand noisy sensor = %g", v)
	}

	active := false
	deceived := &DeceivedSensor{Inner: base, Active: func() bool { return active }, FakeValue: 99}
	if v, _ := deceived.Read(); v != 10 {
		t.Errorf("inactive deception read = %g", v)
	}
	active = true
	if v, _ := deceived.Read(); v != 99 {
		t.Errorf("active deception read = %g", v)
	}
	if deceived.Name() != "thermo" {
		t.Errorf("deceived sensor name = %q (should be indistinguishable)", deceived.Name())
	}

	var broken SensorFunc
	if _, err := broken.Read(); err == nil {
		t.Error("nil sensor function read succeeded")
	}
	var nop NopActuator
	if nop.Name() != "nop" || nop.Invoke(policy.Action{}) != nil {
		t.Error("NopActuator wrong")
	}
	var brokenAct ActuatorFunc
	if brokenAct.Invoke(policy.Action{}) == nil {
		t.Error("nil actuator function succeeded")
	}
}

func TestManagerTickRepairsBadState(t *testing.T) {
	d := newDevice(t)
	// Device heat sensor reads a dangerous value.
	heat := 95.0
	if err := d.BindSensor("heat", SensorFunc{Label: "thermo", Fn: func() (float64, error) {
		return heat, nil
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	// Repair policy: on alert, cool down.
	err := d.Policies().Add(policy.Policy{
		ID: "cool", EventType: DefaultRepairEvent, Modality: policy.ModalityDo,
		Action: policy.Action{Name: "cool", Effect: statespace.Delta{"heat": -50}},
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	m := &Manager{
		Device: d,
		Classifier: statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
			if st.MustGet("heat") >= 80 {
				return statespace.ClassBad
			}
			return statespace.ClassGood
		}),
	}
	report, err := m.Tick(time.Time{})
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if report.Class != statespace.ClassBad || !report.Alerted || len(report.Executions) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if got := d.CurrentState().MustGet("heat"); got != 45 {
		t.Errorf("heat after repair = %g, want 45", got)
	}

	// Next tick: sensor still reads 95, but drop it to something safe.
	heat = 20
	report, err = m.Tick(time.Time{})
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if report.Alerted {
		t.Error("healthy device alerted")
	}
}

func TestManagerDeclineDetection(t *testing.T) {
	d := newDevice(t)
	readings := []float64{40, 50, 60, 70}
	i := 0
	if err := d.BindSensor("heat", SensorFunc{Label: "thermo", Fn: func() (float64, error) {
		v := readings[i%len(readings)]
		i++
		return v, nil
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	// Moving policy so the trajectory records transitions.
	err := d.Policies().Add(policy.Policy{
		ID: "drift", EventType: "tick", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "drift", Effect: statespace.Delta{"fuel": -1}},
	})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	m := &Manager{
		Device:     d,
		Classifier: statespace.ClassifierFunc(func(statespace.State) statespace.Class { return statespace.ClassGood }),
		Metric: statespace.SafenessFunc(func(st statespace.State) float64 {
			return 1 - st.MustGet("heat")/100
		}),
		DeclineWindow: 2,
	}
	var alerted bool
	for k := 0; k < 4; k++ {
		report, err := m.Tick(time.Time{})
		if err != nil {
			t.Fatalf("Tick: %v", err)
		}
		if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
			t.Fatalf("HandleEvent: %v", err)
		}
		alerted = alerted || report.Alerted
	}
	if !alerted {
		t.Error("monotone safeness decline never alerted")
	}
}

func TestManagerDeadDevice(t *testing.T) {
	ks, err := guard.NewKillSwitch([]byte("s"))
	if err != nil {
		t.Fatalf("NewKillSwitch: %v", err)
	}
	d := newDevice(t, func(c *Config) { c.KillSwitch = ks })
	if err := d.Deactivate(ks.TokenFor("dev-1")); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	m := &Manager{
		Device:     d,
		Classifier: statespace.ClassifierFunc(func(statespace.State) statespace.Class { return statespace.ClassGood }),
	}
	if _, err := m.Tick(time.Time{}); !errors.Is(err, ErrDeactivated) {
		t.Errorf("Tick on dead device = %v", err)
	}
}

func TestPolicyEpochTracksSnapshot(t *testing.T) {
	d := newDevice(t)
	movePolicy(t, d)
	if d.PolicyEpoch() != 0 {
		t.Errorf("epoch before first event = %d", d.PolicyEpoch())
	}
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	first := d.PolicyEpoch()
	if first == 0 {
		t.Fatal("epoch not recorded after event")
	}
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if d.PolicyEpoch() != first {
		t.Errorf("epoch moved without mutation: %d -> %d", first, d.PolicyEpoch())
	}
	if err := d.Policies().Replace(policy.Policy{
		ID: "move", EventType: "tick", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "move"},
	}); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if d.PolicyEpoch() <= first {
		t.Errorf("epoch did not advance after mutation: %d", d.PolicyEpoch())
	}
}

// TestGuardSeesDecisionSnapshot checks that the guard is handed the
// same immutable snapshot the decision was evaluated under.
func TestGuardSeesDecisionSnapshot(t *testing.T) {
	capture := &guardCaptureSnapshot{}
	d := newDevice(t, func(c *Config) { c.Guard = capture })
	movePolicy(t, d)
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if capture.seen == nil {
		t.Fatal("guard did not receive the decision snapshot")
	}
	if capture.seen.Epoch() != d.PolicyEpoch() {
		t.Errorf("guard snapshot epoch %d != device epoch %d", capture.seen.Epoch(), d.PolicyEpoch())
	}
}

type guardCaptureSnapshot struct{ seen *policy.Snapshot }

func (*guardCaptureSnapshot) Name() string { return "capture" }
func (g *guardCaptureSnapshot) Check(ctx guard.ActionContext) guard.Verdict {
	g.seen = ctx.Policies
	return guard.Verdict{Decision: guard.DecisionAllow, Action: ctx.Action, Guard: "capture"}
}
