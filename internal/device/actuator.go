package device

import (
	"errors"

	"repro/internal/policy"
	"repro/internal/telemetry"
)

// Actuator executes an action against the physical environment — the
// component that gives the device its "physical aspect" (Section III).
type Actuator interface {
	// Name identifies the actuator.
	Name() string
	// Invoke performs the action.
	Invoke(a policy.Action) error
}

// TracedActuator is an Actuator that can carry the causal trace
// context across the actuation boundary — e.g. a sharing router that
// forwards the action to another device as a bus event keeps the
// receiving device's spans in the originating command's trace.
type TracedActuator interface {
	Actuator
	// InvokeTraced performs the action under the given span context.
	InvokeTraced(a policy.Action, sc telemetry.SpanContext) error
}

// invoke routes through InvokeTraced when the actuator supports it and
// a trace is active, falling back to plain Invoke.
func invoke(a Actuator, act policy.Action, sc telemetry.SpanContext) error {
	if ta, ok := a.(TracedActuator); ok && sc.Valid() {
		return ta.InvokeTraced(act, sc)
	}
	return a.Invoke(act)
}

// ActuatorFunc adapts a function into an Actuator. Setting TracedFn
// additionally makes it a TracedActuator.
type ActuatorFunc struct {
	Label string
	Fn    func(policy.Action) error
	// TracedFn, when set, handles traced invocations; plain Invoke
	// falls back to Fn.
	TracedFn func(policy.Action, telemetry.SpanContext) error
}

var _ Actuator = ActuatorFunc{}
var _ TracedActuator = ActuatorFunc{}

// Name identifies the actuator.
func (a ActuatorFunc) Name() string { return a.Label }

// Invoke runs the function; a nil function errors.
func (a ActuatorFunc) Invoke(act policy.Action) error {
	if a.Fn == nil {
		return errors.New("device: actuator has no function")
	}
	return a.Fn(act)
}

// InvokeTraced runs TracedFn, falling back to Invoke when unset.
func (a ActuatorFunc) InvokeTraced(act policy.Action, sc telemetry.SpanContext) error {
	if a.TracedFn == nil {
		return a.Invoke(act)
	}
	return a.TracedFn(act, sc)
}

// NopActuator accepts every action and does nothing; useful for
// information-only actions and tests.
type NopActuator struct{}

var _ Actuator = NopActuator{}

// Name identifies the actuator.
func (NopActuator) Name() string { return "nop" }

// Invoke does nothing.
func (NopActuator) Invoke(policy.Action) error { return nil }
