package device

import (
	"errors"

	"repro/internal/policy"
)

// Actuator executes an action against the physical environment — the
// component that gives the device its "physical aspect" (Section III).
type Actuator interface {
	// Name identifies the actuator.
	Name() string
	// Invoke performs the action.
	Invoke(a policy.Action) error
}

// ActuatorFunc adapts a function into an Actuator.
type ActuatorFunc struct {
	Label string
	Fn    func(policy.Action) error
}

var _ Actuator = ActuatorFunc{}

// Name identifies the actuator.
func (a ActuatorFunc) Name() string { return a.Label }

// Invoke runs the function; a nil function errors.
func (a ActuatorFunc) Invoke(act policy.Action) error {
	if a.Fn == nil {
		return errors.New("device: actuator has no function")
	}
	return a.Fn(act)
}

// NopActuator accepts every action and does nothing; useful for
// information-only actions and tests.
type NopActuator struct{}

var _ Actuator = NopActuator{}

// Name identifies the actuator.
func (NopActuator) Name() string { return "nop" }

// Invoke does nothing.
func (NopActuator) Invoke(policy.Action) error { return nil }
