package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets are the default histogram upper bounds, in
// milliseconds: microseconds to seconds, roughly logarithmic. They
// cover everything from a lock-free policy evaluation (~µs) to a slow
// chaos-degraded delivery (~s).
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000,
}

// Histogram counts observations into cumulative buckets with fixed
// upper bounds, plus a running sum and count. Observe is lock-free
// (atomics only); a nil *Histogram no-ops.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Histogram{
		bounds:  own,
		buckets: make([]atomic.Uint64, len(own)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bucket index by binary search over the fixed bounds.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// exposition (bucket counts are read individually; a snapshot taken
// mid-observation may lag by the in-flight sample).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations ≤ Bounds[i] (cumulative). Counts has one extra
	// final element for +Inf, equal to Count.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation within the bucket that holds
// the target rank, assuming observations are uniformly spread inside
// each bucket. The first bucket interpolates from zero (bounds are
// latencies, never negative); a rank that lands in the +Inf overflow
// bucket returns the highest finite bound — the estimate saturates
// rather than extrapolating to infinity. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	// Counts is cumulative: find the first bucket whose cumulative
	// count reaches the rank.
	i := sort.Search(len(s.Counts), func(i int) bool {
		return float64(s.Counts[i]) >= rank
	})
	if i >= len(s.Bounds) {
		// Overflow bucket: no finite upper bound to interpolate toward.
		return s.Bounds[len(s.Bounds)-1]
	}
	lower, upper := 0.0, s.Bounds[i]
	var below uint64
	if i > 0 {
		lower = s.Bounds[i-1]
		below = s.Counts[i-1]
	}
	inBucket := s.Counts[i] - below
	if inBucket == 0 {
		return upper
	}
	frac := (rank - float64(below)) / float64(inBucket)
	return lower + (upper-lower)*frac
}

// Quantile estimates the q-quantile from a consistent snapshot (0 on
// a nil or empty histogram).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}
