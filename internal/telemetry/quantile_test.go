package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileUniform feeds a uniform distribution over [0, 100) and
// checks the interpolated quantiles against the analytic values. The
// bucket bounds deliberately do not align with the quantile points,
// so accuracy comes from the within-bucket interpolation.
func TestQuantileUniform(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	const n = 10000
	for i := 0; i < n; i++ {
		h.Observe(float64(i) * 100 / n)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {0.25, 25}, {1, 100},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.5 {
			t.Errorf("Quantile(%g) = %g, want %g ± 0.5", tc.q, got, tc.want)
		}
	}
}

// TestQuantileSkewed checks a two-point distribution: the quantile
// must jump buckets with the mass, interpolating only inside the
// bucket that holds the rank.
func TestQuantileSkewed(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	// 90 observations in (1, 10], 10 in (10, 100].
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	// p50: rank 50 of 90 in bucket (1,10] → 1 + 9*(50/90) = 6.
	if got, want := s.Quantile(0.5), 6.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want %g", got, want)
	}
	// p95: rank 95; 90 below, 5 of 10 into (10,100] → 10 + 90*0.5 = 55.
	if got, want := s.Quantile(0.95), 55.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.95) = %g, want %g", got, want)
	}
	// p99: 9 of 10 into (10,100] → 10 + 90*0.9 = 91.
	if got, want := s.Quantile(0.99), 91.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.99) = %g, want %g", got, want)
	}
}

// TestQuantileOverflowSaturates verifies a rank landing in the +Inf
// bucket returns the highest finite bound instead of extrapolating.
func TestQuantileOverflowSaturates(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(1e6) // overflow bucket
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 10 {
		t.Errorf("Quantile(0.99) with overflow mass = %g, want 10 (saturated)", got)
	}
}

// TestQuantileEdges covers the empty histogram, q clamping, and the
// nil receiver.
func TestQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	h := newHistogram([]float64{1, 10})
	h.Observe(5)
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %g, want clamped ≥ 0", got)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, want)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}
}

// TestExpositionQuantiles checks that histogram families render
// summary-style quantile lines, and that empty histograms omit them.
func TestExpositionQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("guard.check_ms", "guard", "g1")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 10)
	}
	r.Histogram("admission.wait_ms", "class", "human") // no observations
	var b strings.Builder
	if err := WriteMetrics(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		want := `guard_check_ms{guard="g1",quantile="` + q + `"}`
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing quantile line %q\n%s", want, out)
		}
	}
	if strings.Contains(out, `admission_wait_ms{class="human",quantile=`) {
		t.Errorf("empty histogram rendered quantile lines\n%s", out)
	}
}
