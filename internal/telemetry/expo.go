package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders the registry in Prometheus text exposition
// format (text/plain; version=0.0.4): one # HELP / # TYPE header per
// metric family, then one line per (labels) instance, deterministic
// order. Dots in metric names become underscores (policy.compile_ms →
// policy_compile_ms); label values are quoted and escaped.
func WriteMetrics(w io.Writer, r *Registry) error {
	samples := r.Snapshot()

	// Group by family name, preserving the snapshot's deterministic
	// order within each family.
	type family struct {
		name string
		kind Kind
		rows []Sample
	}
	byName := make(map[string]*family)
	var order []string
	for _, s := range samples {
		f, ok := byName[s.Name]
		if !ok {
			f = &family{name: s.Name, kind: s.Kind}
			byName[s.Name] = f
			order = append(order, s.Name)
		}
		f.rows = append(f.rows, s)
	}
	sort.Strings(order)

	for _, name := range order {
		f := byName[name]
		expoName := sanitizeName(f.name)
		help := ""
		if d, ok := Lookup(f.name); ok {
			help = d.Help
		}
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", expoName, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", expoName, f.kind); err != nil {
			return err
		}
		for _, s := range f.rows {
			if err := writeSample(w, expoName, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, expoName string, s Sample) error {
	switch s.Kind {
	case KindHistogram:
		h := s.Hist
		for i, bound := range h.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				expoName, labelsWithLE(s.Labels, formatFloat(bound)), h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			expoName, labelsWithLE(s.Labels, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", expoName, expoLabels(s.Labels), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", expoName, expoLabels(s.Labels), h.Count); err != nil {
			return err
		}
		// Summary-style quantile estimates (linear interpolation within
		// buckets) so scrape-free consumers — the loadgen harness, curl
		// against a live server — read p50/p95/p99 directly instead of
		// re-deriving them from the bucket counts.
		if h.Count > 0 {
			for _, q := range expoQuantiles {
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					expoName, labelsWithQuantile(s.Labels, q), formatFloat(h.Quantile(q))); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", expoName, expoLabels(s.Labels), formatFloat(s.Value))
		return err
	}
}

// sanitizeName maps subsystem.name onto a Prometheus-legal metric
// name.
func sanitizeName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func expoLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, sanitizeName(l.Key), escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// expoQuantiles are the quantile estimates rendered per histogram.
var expoQuantiles = []float64{0.5, 0.95, 0.99}

// labelsWithQuantile renders the labels plus the summary-convention
// quantile label.
func labelsWithQuantile(labels []Label, q float64) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, `%s="%s",`, sanitizeName(l.Key), escapeLabelValue(l.Value))
	}
	fmt.Fprintf(&b, `quantile="%s"`, formatFloat(q))
	b.WriteByte('}')
	return b.String()
}

// labelsWithLE renders the labels plus the histogram bucket's le label
// (always last, per convention).
func labelsWithLE(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, `%s="%s",`, sanitizeName(l.Key), escapeLabelValue(l.Value))
	}
	fmt.Fprintf(&b, `le="%s"`, le)
	b.WriteByte('}')
	return b.String()
}
