package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bus.delivered").Add(3)
	tr := NewTracer()
	root := tr.StartSpan("command", "human", SpanContext{})
	tr.StartSpan("device.handle", "d1", root.Context()).Finish()
	root.Finish()
	other := tr.StartSpan("command", "human", SpanContext{})
	other.Finish()

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "bus_delivered 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(spans) != 3 {
		t.Errorf("/traces spans = %d, want 3", len(spans))
	}

	// Filter by trace.
	code, body = get(t, base+"/traces?trace="+root.Trace.String())
	if code != http.StatusOK {
		t.Fatalf("/traces?trace = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Errorf("filtered spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("filter leaked trace %s", s.Trace)
		}
	}

	// Limit.
	code, body = get(t, base+"/traces?limit=1")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Errorf("limited spans = %d, want 1", len(spans))
	}

	if code, _ := get(t, base+"/traces?trace=nothex"); code != http.StatusBadRequest {
		t.Errorf("bad trace id = %d, want 400", code)
	}
}

// TestServerGracefulShutdown is the regression test for the drain
// path: a request in flight when Shutdown is called must complete,
// the listener must stop accepting new connections immediately, and
// Shutdown must return without error inside the drain deadline.
func TestServerGracefulShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bus.delivered").Add(7)
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// Open a connection and start — but do not finish — a request, so
	// the connection is active when Shutdown begins.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: t\r\n"); err != nil {
		t.Fatalf("partial write: %v", err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// The listener must refuse new connections once shutdown has begun
	// (poll briefly: Shutdown closes it before draining).
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after Shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Finish the in-flight request; it must still be served.
	if _, err := io.WriteString(conn, "Connection: close\r\n\r\n"); err != nil {
		t.Fatalf("finish request: %v", err)
	}
	body, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read drained response: %v", err)
	}
	if !strings.Contains(string(body), "200 OK") || !strings.Contains(string(body), "bus_delivered 7") {
		t.Errorf("drained request not served:\n%s", body)
	}

	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want nil (drained)", err)
	}
}

// TestServerShutdownDeadline verifies a hung connection cannot stall
// Shutdown past its context deadline: the error is returned and the
// connection is force-closed.
func TestServerShutdownDeadline(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Start a request and leave it hanging forever.
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n"); err != nil {
		t.Fatalf("partial write: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown on a hung connection = nil, want deadline error")
	}
}

func TestServerNilBackends(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil registry = %d %q", code, body)
	}
	if code, body := get(t, base+"/traces"); code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Errorf("/traces on nil tracer = %d %q", code, body)
	}
}
