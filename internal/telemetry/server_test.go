package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bus.delivered").Add(3)
	tr := NewTracer()
	root := tr.StartSpan("command", "human", SpanContext{})
	tr.StartSpan("device.handle", "d1", root.Context()).Finish()
	root.Finish()
	other := tr.StartSpan("command", "human", SpanContext{})
	other.Finish()

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "bus_delivered 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(spans) != 3 {
		t.Errorf("/traces spans = %d, want 3", len(spans))
	}

	// Filter by trace.
	code, body = get(t, base+"/traces?trace="+root.Trace.String())
	if code != http.StatusOK {
		t.Fatalf("/traces?trace = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Errorf("filtered spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("filter leaked trace %s", s.Trace)
		}
	}

	// Limit.
	code, body = get(t, base+"/traces?limit=1")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Errorf("limited spans = %d, want 1", len(spans))
	}

	if code, _ := get(t, base+"/traces?trace=nothex"); code != http.StatusBadRequest {
		t.Errorf("bad trace id = %d, want 400", code)
	}
}

func TestServerNilBackends(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil registry = %d %q", code, body)
	}
	if code, body := get(t, base+"/traces"); code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Errorf("/traces on nil tracer = %d %q", code, body)
	}
}
