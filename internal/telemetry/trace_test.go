package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func testClock() func() time.Time {
	t := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(WithSpanClock(testClock()))
	root := tr.StartSpan("command", "human", SpanContext{})
	child := tr.StartSpan("device.handle", "d1", root.Context())
	grand := tr.StartSpan("guard.check", "d1", child.Context())
	grand.Finish()
	child.Finish()
	root.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "guard.check" || spans[2].Name != "command" {
		t.Errorf("spans not in finish order: %s ... %s", spans[0].Name, spans[2].Name)
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("span %s trace = %s, want %s", s.Name, s.Trace, root.Trace)
		}
	}
	if spans[0].Parent != child.ID || spans[1].Parent != root.ID || spans[2].Parent != 0 {
		t.Error("parent links wrong")
	}
	if err := CheckConnected(spans); err != nil {
		t.Errorf("CheckConnected: %v", err)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", "a", SpanContext{})
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	s.SetAttr("k", "v") // must not panic
	s.Finish()
	if s.Context().Valid() {
		t.Error("nil span context must be invalid")
	}
	if tr.Spans() != nil {
		t.Error("nil tracer must have no spans")
	}
}

func TestInjectExtract(t *testing.T) {
	tr := NewTracer()
	span := tr.StartSpan("command", "human", SpanContext{})
	labels := Inject(span.Context(), nil)
	if got := Extract(labels); got != span.Context() {
		t.Errorf("Extract = %+v, want %+v", got, span.Context())
	}
	// Invalid context injects nothing.
	if got := Inject(SpanContext{}, nil); got != nil {
		t.Errorf("invalid Inject allocated labels: %v", got)
	}
	// Garbage labels extract as zero.
	if got := Extract(map[string]string{TraceLabelKey: "zzz", SpanLabelKey: "1"}); got.Valid() {
		t.Errorf("malformed labels extracted as %+v", got)
	}
	if got := Extract(nil); got.Valid() {
		t.Error("nil labels must extract invalid")
	}
}

func TestRingBound(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(WithCapacity(4), WithTracerMetrics(reg))
	for i := 0; i < 10; i++ {
		tr.StartSpan("s", "a", SpanContext{}).Finish()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	// Oldest evicted: the survivors are the last four started.
	if spans[0].ID != 7 || spans[3].ID != 10 {
		t.Errorf("ring contents = %v..%v, want 7..10", spans[0].ID, spans[3].ID)
	}
	if got := reg.CounterTotal("trace.spans"); got != 10 {
		t.Errorf("trace.spans = %d, want 10", got)
	}
	if got := reg.CounterTotal("trace.evicted"); got != 6 {
		t.Errorf("trace.evicted = %d, want 6", got)
	}
}

func TestDoubleFinish(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("x", "a", SpanContext{})
	s.Finish()
	s.Finish()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("double finish committed %d spans, want 1", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(WithSpanClock(testClock()))
	root := tr.StartSpan("command", "human", SpanContext{})
	root.SetAttr("event", "tick")
	child := tr.StartSpan("device.handle", "d1", root.Context())
	child.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("JSONL lines = %d, want 2", lines)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("round-trip spans = %d, want 2", len(got))
	}
	if got[1].Name != "command" || got[1].Attrs["event"] != "tick" {
		t.Errorf("round-trip lost fields: %+v", got[1])
	}
	if got[0].Trace != root.Trace || got[0].Parent != root.ID {
		t.Errorf("round-trip lost causality: %+v", got[0])
	}
	if err := CheckConnected(got); err != nil {
		t.Errorf("CheckConnected after round-trip: %v", err)
	}
}

func TestCheckConnectedFailures(t *testing.T) {
	if err := CheckConnected(nil); err == nil {
		t.Error("empty span set must fail")
	}
	// Orphan: parent 99 absent.
	spans := []Span{
		{Trace: 1, ID: 1, Name: "root"},
		{Trace: 1, ID: 2, Parent: 99, Name: "orphan"},
	}
	if err := CheckConnected(spans); err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Errorf("orphan not detected: %v", err)
	}
	// Two traces.
	spans = []Span{{Trace: 1, ID: 1}, {Trace: 2, ID: 2}}
	if err := CheckConnected(spans); err == nil || !strings.Contains(err.Error(), "multiple traces") {
		t.Errorf("multi-trace not detected: %v", err)
	}
	// Two roots.
	spans = []Span{{Trace: 1, ID: 1}, {Trace: 1, ID: 2}}
	if err := CheckConnected(spans); err == nil || !strings.Contains(err.Error(), "roots") {
		t.Errorf("double root not detected: %v", err)
	}
}
