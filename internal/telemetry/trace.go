package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one causal chain: everything that happened
// because of one command (or other root stimulus) shares a TraceID.
type TraceID uint64

// SpanID identifies one operation within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalJSON encodes the ID as a quoted hex string.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// MarshalJSON encodes the ID as a quoted hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON decodes a quoted hex string.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*t = TraceID(v)
	return err
}

// UnmarshalJSON decodes a quoted hex string.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*s = SpanID(v)
	return err
}

func unmarshalHexID(b []byte) (uint64, error) {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return 0, err
	}
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

// SpanContext is the propagated reference to a span: enough to parent
// a child span on another device, across the bus.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context refers to a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Reserved event-label keys the span context travels under. They ride
// in policy.Event.Labels, so causality survives bus hops (including
// chaos-degraded ones — a retried or duplicated delivery carries the
// same context).
const (
	// TraceLabelKey carries the TraceID in event labels.
	TraceLabelKey = "telemetry.trace"
	// SpanLabelKey carries the parent SpanID in event labels.
	SpanLabelKey = "telemetry.span"
)

// Inject writes the span context into the label map, allocating one if
// needed, and returns the map. Invalid contexts inject nothing.
func Inject(sc SpanContext, labels map[string]string) map[string]string {
	if !sc.Valid() {
		return labels
	}
	if labels == nil {
		labels = make(map[string]string, 2)
	}
	labels[TraceLabelKey] = sc.Trace.String()
	labels[SpanLabelKey] = sc.Span.String()
	return labels
}

// Extract reads a span context from event labels; the zero context is
// returned when none (or a malformed one) is present.
func Extract(labels map[string]string) SpanContext {
	if len(labels) == 0 {
		return SpanContext{}
	}
	t, err1 := strconv.ParseUint(labels[TraceLabelKey], 16, 64)
	s, err2 := strconv.ParseUint(labels[SpanLabelKey], 16, 64)
	if err1 != nil || err2 != nil {
		return SpanContext{}
	}
	return SpanContext{Trace: TraceID(t), Span: SpanID(s)}
}

// Span is one timed operation in a trace. Spans are not safe for
// concurrent mutation; the goroutine that starts a span sets its
// attributes and ends it.
type Span struct {
	Trace  TraceID           `json:"trace"`
	ID     SpanID            `json:"span"`
	Parent SpanID            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Actor  string            `json:"actor,omitempty"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`

	tracer *Tracer
}

// Context returns the propagation context for parenting child spans.
// A nil span returns the zero (invalid) context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// SetAttr attaches one key/value attribute; no-op on a nil span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// Finish stamps the end time and commits the span to the tracer's ring
// buffer. Finishing twice commits once; finishing a nil span no-ops.
func (s *Span) Finish() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	s.tracer = nil
	s.End = t.now()
	t.commit(*s)
}

// Tracer collects finished spans into a bounded ring buffer. Span IDs
// are drawn from per-tracer atomic counters, so runs on the virtual
// clock stay deterministic. A nil *Tracer hands out nil spans, which
// no-op.
type Tracer struct {
	now  func() time.Time
	next atomic.Uint64

	spans   *Counter
	evicted *Counter

	mu    sync.Mutex
	ring  []Span
	head  int // next write position
	count int // committed spans currently buffered
}

// TracerOption configures a Tracer.
type TracerOption interface {
	apply(*Tracer)
}

type tracerOptionFunc func(*Tracer)

func (f tracerOptionFunc) apply(t *Tracer) { f(t) }

// WithSpanClock injects the time source spans are stamped with (e.g.
// the simulation clock).
func WithSpanClock(now func() time.Time) TracerOption {
	return tracerOptionFunc(func(t *Tracer) { t.now = now })
}

// WithCapacity bounds the ring buffer (default 4096 finished spans;
// the oldest are evicted first).
func WithCapacity(n int) TracerOption {
	return tracerOptionFunc(func(t *Tracer) {
		if n > 0 {
			t.ring = make([]Span, n)
		}
	})
}

// WithTracerMetrics accounts finished and evicted spans in the
// registry (trace.spans, trace.evicted).
func WithTracerMetrics(r *Registry) TracerOption {
	return tracerOptionFunc(func(t *Tracer) {
		t.spans = r.Counter("trace.spans")
		t.evicted = r.Counter("trace.evicted")
	})
}

// NewTracer builds a tracer.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{now: time.Now}
	for _, o := range opts {
		o.apply(t)
	}
	if t.ring == nil {
		t.ring = make([]Span, 4096)
	}
	return t
}

// StartSpan opens a span. An invalid (zero) parent starts a new trace;
// a valid parent continues the parent's trace. Returns nil on a nil
// tracer, so call sites need no guards.
func (t *Tracer) StartSpan(name, actor string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	id := SpanID(t.next.Add(1))
	trace := parent.Trace
	if !parent.Valid() {
		// A fresh trace: reuse the span ID as the trace ID — unique
		// within the tracer, stable across reruns.
		trace = TraceID(id)
	}
	return &Span{
		Trace:  trace,
		ID:     id,
		Parent: parent.Span,
		Name:   name,
		Actor:  actor,
		Start:  t.now(),
		tracer: t,
	}
}

// commit appends one finished span to the ring.
func (t *Tracer) commit(s Span) {
	t.spans.Inc()
	t.mu.Lock()
	if t.count == len(t.ring) {
		t.evicted.Inc()
	} else {
		t.count++
	}
	t.ring[t.head] = s
	t.head = (t.head + 1) % len(t.ring)
	t.mu.Unlock()
}

// Spans returns the buffered finished spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.count)
	start := (t.head - t.count + len(t.ring)) % len(t.ring)
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// TraceSpans returns the buffered spans of one trace, oldest first.
func (t *Tracer) TraceSpans(id TraceID) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// WriteJSONL writes the buffered spans as JSON lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes spans written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

// CheckConnected verifies that the spans form one connected trace: a
// single shared TraceID, exactly one root (no parent), and every
// other span's parent present in the set — no orphans. It is the
// invariant the cross-device propagation tests (and trace tooling)
// assert.
func CheckConnected(spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("telemetry: no spans")
	}
	trace := spans[0].Trace
	ids := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		if s.Trace != trace {
			return fmt.Errorf("telemetry: spans from multiple traces (%s and %s)", trace, s.Trace)
		}
		ids[s.ID] = true
	}
	roots := 0
	var orphans []string
	for _, s := range spans {
		if s.Parent == 0 {
			roots++
			continue
		}
		if !ids[s.Parent] {
			orphans = append(orphans, fmt.Sprintf("%s(%s)", s.Name, s.ID))
		}
	}
	if roots != 1 {
		return fmt.Errorf("telemetry: trace %s has %d roots, want 1", trace, roots)
	}
	if len(orphans) > 0 {
		sort.Strings(orphans)
		return fmt.Errorf("telemetry: trace %s has orphan spans %v", trace, orphans)
	}
	return nil
}
