package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Metric names follow one convention: subsystem.name, lowercase, with
// underscores inside each part — e.g. policy.compile_ms, bus.dropped.
// Every name the framework emits is declared here; CheckName rejects
// anything else, and the telemetry test suite runs the full stack and
// fails on unregistered or misspelled names at call sites.

// Def declares one framework metric.
type Def struct {
	// Name is the subsystem.name identifier.
	Name string
	// Kind is the metric family.
	Kind Kind
	// Labels lists the label keys the metric is emitted with (empty
	// for unlabeled metrics).
	Labels []string
	// Help is the one-line exposition help text.
	Help string
}

// defs is the metric taxonomy, grouped by subsystem.
var defs = []Def{
	// bus — message substrate delivery accounting.
	{Name: "bus.sent", Kind: KindCounter, Help: "Send attempts to attached recipients (each ends delivered, dropped, shed or queued)."},
	{Name: "bus.delivered", Kind: KindCounter, Help: "Messages accepted for delivery by the bus."},
	{Name: "bus.dropped", Kind: KindCounter, Labels: []string{"cause"}, Help: "Messages dropped by the bus, by cause (loss, partition, oneway)."},
	{Name: "bus.duplicated", Kind: KindCounter, Help: "Messages delivered twice by the duplication fault."},
	{Name: "bus.bridge_dropped", Kind: KindCounter, Labels: []string{"cause"}, Help: "Wire-bridged messages the bus refused, by cause (unknown_node, partition, loss, queue_full, rate_limited, error)."},

	// admission — the bounded command-plane front door.
	{Name: "admission.admitted", Kind: KindCounter, Labels: []string{"class"}, Help: "Messages admitted into bounded intake queues, by priority class."},
	{Name: "admission.delivered", Kind: KindCounter, Labels: []string{"class"}, Help: "Admitted messages drained to their recipient, by priority class."},
	{Name: "admission.shed", Kind: KindCounter, Labels: []string{"cause", "class"}, Help: "Messages shed with cause (queue_full, rate_limited), by priority class."},
	{Name: "admission.queue_depth", Kind: KindGauge, Help: "Messages currently queued across all intake queues."},
	{Name: "admission.wait_ms", Kind: KindHistogram, Labels: []string{"class"}, Help: "Queue wait between admission and drain in milliseconds."},

	// resilience — retry, breaker and reliable-send outcomes.
	{Name: "resilience.retries", Kind: KindCounter, Help: "Redelivery attempts spent recovering dropped sends."},
	{Name: "resilience.breaker_rejected", Kind: KindCounter, Help: "Sends rejected outright by an open circuit breaker."},
	{Name: "resilience.sends", Kind: KindCounter, Labels: []string{"result"}, Help: "Reliable-sender outcomes, by result (ok, failed)."},

	// dispatch — command decomposition into per-device deliveries.
	{Name: "dispatch.sent", Kind: KindCounter, Help: "Per-device command deliveries accepted by the transport."},
	{Name: "dispatch.failed", Kind: KindCounter, Help: "Per-device command deliveries failed after retries or breaker rejection."},
	{Name: "dispatch.shed", Kind: KindCounter, Labels: []string{"cause"}, Help: "Per-device command deliveries shed by admission before dispatch, by cause."},

	// core — collective-level intake.
	{Name: "core.commands", Kind: KindCounter, Help: "Human commands broadcast through the collective."},
	{Name: "core.deliveries", Kind: KindCounter, Help: "Targeted event deliveries to collective members."},
	{Name: "core.command_shed", Kind: KindCounter, Labels: []string{"cause"}, Help: "Sharded command fan-outs shed by admission before scheduling, by cause."},
	{Name: "core.delivery_skipped", Kind: KindCounter, Labels: []string{"cause"}, Help: "Scheduled deliveries skipped because the member left or deactivated."},

	// policy — the compiled decision plane.
	{Name: "policy.epoch", Kind: KindGauge, Labels: []string{"device"}, Help: "Snapshot epoch the device last evaluated under."},
	{Name: "policy.compiles", Kind: KindGauge, Labels: []string{"device"}, Help: "Snapshot compilations over the policy set's lifetime."},
	{Name: "policy.compile_ms", Kind: KindGauge, Labels: []string{"device"}, Help: "Latest snapshot compile latency in milliseconds."},
	{Name: "policy.evaluate_ms", Kind: KindHistogram, Labels: []string{"device"}, Help: "Policy snapshot evaluation latency in milliseconds."},
	{Name: "policy.residual_compiles", Kind: KindCounter, Labels: []string{"device"}, Help: "Residual snapshots specialized (partial evaluations actually run)."},
	{Name: "policy.residual_hits", Kind: KindCounter, Labels: []string{"device"}, Help: "Specialize calls served from the per-snapshot residual cache."},
	{Name: "policy.residual_misses", Kind: KindCounter, Labels: []string{"device"}, Help: "Specialize calls that missed the residual cache."},
	{Name: "policy.residual_size", Kind: KindGauge, Labels: []string{"device"}, Help: "Policies surviving in the most recently compiled residual."},

	// guard — per-guard verdicts and latencies.
	{Name: "guard.decisions", Kind: KindCounter, Labels: []string{"guard", "decision"}, Help: "Guard verdicts, by guard and decision (allow, deny, deactivate)."},
	{Name: "guard.check_ms", Kind: KindHistogram, Labels: []string{"guard"}, Help: "Guard check latency in milliseconds."},
	{Name: "guard.break_glass", Kind: KindCounter, Labels: []string{"guard"}, Help: "Allows obtained through an audited break-glass override."},
	{Name: "guard.invalid_decision", Kind: KindCounter, Labels: []string{"guard"}, Help: "Malformed guard verdicts failed closed by the pipeline."},

	// device — per-device event handling and actuation outcomes.
	{Name: "device.events", Kind: KindCounter, Labels: []string{"device"}, Help: "Events handled by the device's policy logic."},
	{Name: "device.executions", Kind: KindCounter, Labels: []string{"device", "result"}, Help: "Directed-action outcomes, by result (executed, denied, error)."},

	// gossip — anti-entropy policy/intelligence sharing.
	{Name: "gossip.rounds", Kind: KindCounter, Help: "Anti-entropy push rounds executed."},
	{Name: "gossip.updates", Kind: KindCounter, Help: "Item updates applied across peers by gossip pushes."},
	{Name: "gossip.pushes_dropped", Kind: KindCounter, Help: "Anti-entropy pushes dropped by the link fault."},
	{Name: "gossip.push_retries", Kind: KindCounter, Help: "Retry attempts spent recovering dropped gossip pushes."},

	// bundle — the signed policy-distribution plane.
	{Name: "bundle.published", Kind: KindCounter, Labels: []string{"kind"}, Help: "Policy bundle revisions published, by kind (full, delta)."},
	{Name: "bundle.bytes_on_wire", Kind: KindCounter, Labels: []string{"kind"}, Help: "Encoded bundle bytes handed to the bus, by kind (full, delta)."},
	{Name: "bundle.pushed", Kind: KindCounter, Help: "Bundle pushes sent to devices (including repair re-pushes)."},
	{Name: "bundle.acked", Kind: KindCounter, Help: "Activation acknowledgements received by the distributor."},
	{Name: "bundle.activated", Kind: KindCounter, Labels: []string{"kind"}, Help: "Bundles verified and atomically activated by devices, by kind (full, delta)."},
	{Name: "bundle.rejected", Kind: KindCounter, Labels: []string{"cause"}, Help: "Bundles refused fail-closed, by cause (signature, scope, root, gap, stale, coverage, hash, malformed, decode)."},
	{Name: "bundle.scope_rejected", Kind: KindCounter, Labels: []string{"root"}, Help: "Bundles refused because their contents fall outside the signing key's authorized scope or claim a root the device is not subscribed to — the compromised-coalition-key attack stopped at the trust boundary."},
	{Name: "bundle.forged_report", Kind: KindCounter, Labels: []string{"topic"}, Help: "Status reports (acks, pulls) whose payload claims a device other than the bus sender — dropped and audited, never believed."},
	{Name: "bundle.encode_failed", Kind: KindCounter, Labels: []string{"root"}, Help: "Bundle wire encodings that failed during fan-out, by org root; the push is dropped, counted and audited."},
	{Name: "bundle.bad_payload", Kind: KindCounter, Help: "Bundle-plane messages carrying a payload of the wrong type — dropped, counted and audited."},
	{Name: "bundle.repairs", Kind: KindCounter, Help: "Anti-entropy repair pushes to devices behind the current revision."},
	{Name: "bundle.pulls", Kind: KindCounter, Help: "Pull-repair requests received from devices that detected a gap."},
	{Name: "bundle.send_failed", Kind: KindCounter, Labels: []string{"topic"}, Help: "Distribution-plane sends the bus refused, by topic; survivable (repair re-pushes, re-acks and pull retries cover them) but never silent."},
	{Name: "bundle.revision", Kind: KindGauge, Labels: []string{"root"}, Help: "Current published revision per org root."},
	{Name: "bundle.lagging", Kind: KindGauge, Labels: []string{"root"}, Help: "Devices whose acknowledged revision trails the published one, per org root."},

	// chaos — fault injections and heals.
	{Name: "chaos.loss_injected", Kind: KindCounter, Help: "Loss fault onsets."},
	{Name: "chaos.loss_healed", Kind: KindCounter, Help: "Loss fault heals."},
	{Name: "chaos.partition_injected", Kind: KindCounter, Help: "Partition fault onsets."},
	{Name: "chaos.partition_healed", Kind: KindCounter, Help: "Partition fault heals."},
	{Name: "chaos.oneway_injected", Kind: KindCounter, Help: "One-way (asymmetric) partition fault onsets."},
	{Name: "chaos.oneway_healed", Kind: KindCounter, Help: "One-way partition fault heals."},
	{Name: "chaos.duplication_injected", Kind: KindCounter, Help: "Duplication fault onsets."},
	{Name: "chaos.duplication_healed", Kind: KindCounter, Help: "Duplication fault heals."},
	{Name: "chaos.slowlinks_injected", Kind: KindCounter, Help: "Slow-link fault onsets."},
	{Name: "chaos.slowlinks_healed", Kind: KindCounter, Help: "Slow-link fault heals."},
	{Name: "chaos.skew_injected", Kind: KindCounter, Help: "Clock-skew injections."},
	{Name: "chaos.crash_injected", Kind: KindCounter, Help: "Device crash injections."},
	{Name: "chaos.crash_restarted", Kind: KindCounter, Help: "Crashed devices restarted from checkpoint."},
	{Name: "chaos.crash_restart_failed", Kind: KindCounter, Help: "Checkpoint restarts that failed."},

	// trace — the tracer's own accounting.
	{Name: "trace.spans", Kind: KindCounter, Help: "Spans finished into the trace ring buffer."},
	{Name: "trace.evicted", Kind: KindCounter, Help: "Finished spans evicted from the full ring buffer."},

	// server — the live control plane (skynetsim serve).
	{Name: "server.requests", Kind: KindCounter, Labels: []string{"route", "code"}, Help: "Control-plane HTTP requests, by route and status code."},
	{Name: "server.commands", Kind: KindCounter, Labels: []string{"result"}, Help: "Commands submitted via POST /v1/commands, by result (ok, shed, error)."},
	{Name: "server.decision_ms", Kind: KindHistogram, Help: "End-to-end decision latency of submitted commands (intake to final verdict) in milliseconds."},
	{Name: "server.audit_streamed", Kind: KindCounter, Help: "Audit entries streamed to /v1/audit/tail clients."},
	{Name: "server.audit_streams", Kind: KindGauge, Help: "Audit tail streams currently open."},

	// loadgen — the latency-benchmarked load harness.
	{Name: "loadgen.requests", Kind: KindCounter, Labels: []string{"result"}, Help: "Load-generator requests, by result (ok, shed, error)."},
	{Name: "loadgen.overflow", Kind: KindCounter, Help: "Open-loop ticks skipped because every in-flight slot was busy (the server lags the offered rate)."},
	{Name: "loadgen.latency_ms", Kind: KindHistogram, Help: "Client-observed decision latency in milliseconds."},
}

var defByName = func() map[string]Def {
	m := make(map[string]Def, len(defs))
	for _, d := range defs {
		m[d.Name] = d
	}
	return m
}()

// nameRE is the subsystem.name convention: exactly one dot, lowercase
// snake_case on both sides.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$`)

// Lookup returns the declaration for a registered metric name.
func Lookup(name string) (Def, bool) {
	d, ok := defByName[name]
	return d, ok
}

// KnownNames returns every registered metric name, sorted.
func KnownNames() []string {
	out := make([]string, 0, len(defs))
	for _, d := range defs {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}

// CheckName verifies that a metric name follows the subsystem.name
// convention and is registered in the taxonomy.
func CheckName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("telemetry: metric %q does not follow the subsystem.name convention", name)
	}
	if _, ok := defByName[name]; !ok {
		return fmt.Errorf("telemetry: metric %q is not registered in the name taxonomy (misspelled call site?)", name)
	}
	return nil
}

// CheckNames verifies every name; the returned error joins all
// violations.
func CheckNames(names []string) error {
	var bad []string
	for _, n := range names {
		if err := CheckName(n); err != nil {
			bad = append(bad, err.Error())
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%s", strings.Join(bad, "; "))
	}
	return nil
}
