package telemetry

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expoLineRE matches one Prometheus text-format sample line:
// name{labels} value — with an optional label block.
var expoLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE+\-.]+$`)

func buildExpoRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bus.delivered").Add(10)
	r.Counter("bus.dropped", "cause", "loss").Add(3)
	r.Counter("bus.dropped", "cause", "partition").Add(1)
	r.Gauge("policy.epoch", "device", "d1").Set(4)
	h := r.Histogram("guard.check_ms", "guard", "pre-action")
	h.Observe(0.02)
	h.Observe(3)
	h.Observe(700)
	return r
}

func TestWriteMetricsFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, buildExpoRegistry()); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE bus_delivered counter",
		"# TYPE bus_dropped counter",
		"# TYPE policy_epoch gauge",
		"# TYPE guard_check_ms histogram",
		"# HELP bus_delivered ",
		`bus_dropped{cause="loss"} 3`,
		`bus_dropped{cause="partition"} 1`,
		`policy_epoch{device="d1"} 4`,
		`guard_check_ms_bucket{guard="pre-action",le="+Inf"} 3`,
		`guard_check_ms_count{guard="pre-action"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Every non-comment line must be a well-formed sample.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The le="+Inf" bucket has a plus sign the generic RE skips.
		normalized := strings.Replace(line, `le="+Inf"`, `le="9"`, 1)
		if !expoLineRE.MatchString(normalized) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, buildExpoRegistry()); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	// Bucket counts must be non-decreasing in le order.
	var last uint64
	n := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "guard_check_ms_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = v
		n++
	}
	if n != len(DefaultLatencyBuckets)+1 {
		t.Errorf("bucket lines = %d, want %d", n, len(DefaultLatencyBuckets)+1)
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteMetrics(&a, buildExpoRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&b, buildExpoRegistry()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("exposition output not deterministic")
	}
}

func TestWriteMetricsNilRegistry(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, nil); err != nil {
		t.Fatalf("WriteMetrics(nil): %v", err)
	}
	if b.String() != "" {
		t.Errorf("nil registry exposition = %q, want empty", b.String())
	}
}
