package telemetry

import "testing"

// The no-op path is the price every uninstrumented call site pays: it
// must stay at one branch, zero allocations.
func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkNilTracerStartFinish(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpan("bench", "actor", SpanContext{})
		s.Finish()
	}
}

// Live hot paths: handle increments are atomic ops, no lookups.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 10)
	}
}

func BenchmarkStartSpanFinish(b *testing.B) {
	tr := NewTracer(WithCapacity(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpan("bench", "actor", SpanContext{})
		s.Finish()
	}
}

// Interning cost — paid at setup, not per observation, but worth
// knowing.
func BenchmarkRegistryCounterLookup(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.counter", "device", "d1")
	}
}
