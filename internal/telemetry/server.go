package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the live exposition endpoints as a mux: /metrics
// (Prometheus text format), /traces (recent finished spans as JSON)
// and /healthz. The registry and tracer may each be nil; the
// corresponding endpoint then serves empty output. The control-plane
// server mounts this same mux, so batch runs and live serving expose
// identical telemetry routes.
func Handler(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, reg)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		spans := tracer.Spans()
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans = tracer.TraceSpans(TraceID(id))
		}
		if q := r.URL.Query().Get("limit"); q != "" {
			limit, err := strconv.Atoi(q)
			if err != nil || limit < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			if limit < len(spans) {
				spans = spans[len(spans)-limit:]
			}
		}
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// Server is the opt-in live exposition endpoint serving Handler's
// routes.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the endpoint on addr (e.g. ":9090" or "127.0.0.1:0").
// The registry and tracer may each be nil; the corresponding endpoint
// then serves empty output.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, tracer),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the endpoint gracefully: the listener closes
// immediately (no new connections), in-flight requests drain until
// the context expires, and only then are the remaining connections
// force-closed. Pass a deadline-carrying context for a bounded drain.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// The drain deadline expired with requests still in flight;
		// force-close them rather than leaking the connections.
		_ = s.srv.Close()
	}
	return err
}

// Close stops the endpoint immediately, abandoning in-flight
// requests; prefer Shutdown for a drained stop.
func (s *Server) Close() error { return s.srv.Close() }
