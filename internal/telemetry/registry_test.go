package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bus.delivered")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("bus.delivered") != c {
		t.Error("same (name, labels) must intern to the same handle")
	}

	g := r.Gauge("policy.epoch", "device", "d1")
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %g, want 7", got)
	}
	if r.Gauge("policy.epoch", "device", "d2") == g {
		t.Error("different labels must intern to different handles")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("guard.decisions", "guard", "pre-action", "decision", "allow")
	b := r.Counter("guard.decisions", "decision", "allow", "guard", "pre-action")
	if a != b {
		t.Error("label order must not distinguish handles")
	}
}

func TestCounterTotalAcrossLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus.dropped", "cause", "loss").Add(3)
	r.Counter("bus.dropped", "cause", "partition").Add(2)
	if got := r.CounterTotal("bus.dropped"); got != 5 {
		t.Errorf("CounterTotal = %d, want 5", got)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("bus.delivered")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter must stay 0")
	}
	g := r.Gauge("policy.epoch")
	g.Set(4)
	if g.Value() != 0 {
		t.Error("nil gauge must stay 0")
	}
	h := r.Histogram("policy.evaluate_ms")
	h.Observe(1)
	if h.Count() != 0 {
		t.Error("nil histogram must stay empty")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Error("nil registry must snapshot empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("guard.check_ms", []float64{1, 10, 100}, "guard", "pre-action")
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Cumulative: ≤1 → 2 (0.5 and 1), ≤10 → 3, ≤100 → 4, +Inf → 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-1053.5) > 1e-9 {
		t.Errorf("sum = %g, want 1053.5", s.Sum)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() []Sample {
		r := NewRegistry()
		r.Counter("bus.dropped", "cause", "partition").Inc()
		r.Counter("bus.dropped", "cause", "loss").Inc()
		r.Counter("bus.delivered").Add(2)
		r.Gauge("policy.epoch", "device", "d1").Set(3)
		r.Histogram("policy.evaluate_ms", "device", "d1").Observe(0.2)
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a) != 5 || len(a) != len(b) {
		t.Fatalf("snapshot size = %d/%d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].LabelString() != b[i].LabelString() {
			t.Errorf("snapshot order differs at %d: %s%s vs %s%s",
				i, a[i].Name, a[i].LabelString(), b[i].Name, b[i].LabelString())
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("bus.delivered").Inc()
				r.Histogram("policy.evaluate_ms").Observe(float64(j))
				r.Gauge("policy.epoch").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterTotal("bus.delivered"); got != 4000 {
		t.Errorf("concurrent counter = %d, want 4000", got)
	}
	if got := r.Histogram("policy.evaluate_ms").Count(); got != 4000 {
		t.Errorf("concurrent histogram count = %d, want 4000", got)
	}
}

func TestCheckNames(t *testing.T) {
	for _, name := range KnownNames() {
		if err := CheckName(name); err != nil {
			t.Errorf("registered name rejected: %v", err)
		}
	}
	for _, bad := range []string{
		"net.dropped.loss",   // two dots: pre-unification style
		"Guard.decisions",    // case
		"guard.decision",     // misspelled (singular)
		"busdelivered",       // no subsystem
		"policy.compile-ms",  // dash
		"policy.epoch.d1",    // per-device suffix instead of a label
	} {
		if err := CheckName(bad); err == nil {
			t.Errorf("CheckName(%q) passed, want error", bad)
		}
	}
	if err := CheckNames([]string{"bus.delivered", "bogus.name"}); err == nil {
		t.Error("CheckNames must surface unregistered names")
	}
}
