// Package telemetry is the observability layer of the framework:
// labeled metrics and causal decision traces, with Prometheus-style
// text exposition and a live HTTP endpoint.
//
// The paper's prevention mechanisms presuppose that humans can see
// what the collective decided and why — break-glass use "would require
// support for audits" (Section VI.B), and deactivation and oversight
// rulings must be reviewable. This package gives every such decision a
// measurable, queryable signal:
//
//   - A Registry of counters, gauges and bucketed histograms keyed by
//     (name, labels), with lock-free hot paths through pre-resolved
//     handles and a deterministic Snapshot. Metric names follow a
//     single subsystem.name convention enforced by CheckName.
//   - A Tracer producing causally linked spans: a human command gets a
//     TraceID at intake, and the span context is threaded through
//     decomposition, policy evaluation, every guard verdict, actuation
//     and the matching audit entry — across devices, because the
//     context rides in event labels over the bus.
//   - WriteMetrics renders a Registry in Prometheus text exposition
//     format; Serve exposes /metrics, /traces and /healthz over HTTP.
//
// Everything degrades to (near-)zero cost when unconfigured: a nil
// *Registry hands out nil handles, and nil handles and nil tracers
// no-op, so the instrumented hot paths pay only a nil check.
package telemetry
