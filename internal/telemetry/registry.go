package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready; a nil *Counter no-ops, so unconfigured call sites cost one
// branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta (negative deltas are ignored — counters only go up).
func (c *Counter) Add(delta int64) {
	if c != nil && delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Label is one name=value pair attached to a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Kind distinguishes the metric families in a snapshot.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Sample is one metric instance in a Snapshot.
type Sample struct {
	Name   string
	Labels []Label // sorted by key
	Kind   Kind
	// Value holds the counter or gauge value.
	Value float64
	// Hist holds the bucket snapshot for histograms, nil otherwise.
	Hist *HistogramSnapshot
}

// LabelString renders the labels canonically: {k1="v1",k2="v2"}, or ""
// when unlabeled.
func (s Sample) LabelString() string {
	return labelString(s.Labels)
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry interns metric handles by (name, labels). Handle lookup
// takes a mutex; the handles themselves update with single atomics, so
// call sites that cache their handles have lock-free hot paths. A nil
// *Registry hands out nil handles, which no-op — instrumentation can
// be left in place unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*metricEntry[*Counter]
	gauges     map[string]*metricEntry[*Gauge]
	histograms map[string]*metricEntry[*Histogram]
}

type metricEntry[T any] struct {
	name   string
	labels []Label
	metric T
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*metricEntry[*Counter]),
		gauges:     make(map[string]*metricEntry[*Gauge]),
		histograms: make(map[string]*metricEntry[*Histogram]),
	}
}

// labelsFromKV pairs up a variadic "k1, v1, k2, v2" list, sorted by
// key. Odd trailing keys get an empty value rather than panicking —
// a misinstrumented call site must never crash the collective.
func labelsFromKV(kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	labels := make([]Label, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		l := Label{Key: kv[i]}
		if i+1 < len(kv) {
			l.Value = kv[i+1]
		}
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + labelString(labels)
}

// Counter interns the counter for (name, labels). Labels are given as
// alternating key, value strings.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := labelsFromKV(kv)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.counters[key]; ok {
		return e.metric
	}
	e := &metricEntry[*Counter]{name: name, labels: labels, metric: &Counter{}}
	r.counters[key] = e
	return e.metric
}

// Gauge interns the gauge for (name, labels).
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := labelsFromKV(kv)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.gauges[key]; ok {
		return e.metric
	}
	e := &metricEntry[*Gauge]{name: name, labels: labels, metric: &Gauge{}}
	r.gauges[key] = e
	return e.metric
}

// Histogram interns the histogram for (name, labels) with the default
// latency buckets (see DefaultLatencyBuckets).
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	return r.HistogramBuckets(name, nil, kv...)
}

// HistogramBuckets interns the histogram for (name, labels) with
// explicit bucket upper bounds (ascending); nil bounds use the
// defaults. Bounds are fixed at first intern; later calls reuse the
// existing histogram.
func (r *Registry) HistogramBuckets(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := labelsFromKV(kv)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.histograms[key]; ok {
		return e.metric
	}
	e := &metricEntry[*Histogram]{name: name, labels: labels, metric: newHistogram(bounds)}
	r.histograms[key] = e
	return e.metric
}

// CounterTotal sums every counter instance registered under the name,
// across all label sets. It is the aggregation legacy flat-name
// readers want: Counter("bus.dropped") = loss drops + partition drops.
func (r *Registry) CounterTotal(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.counters {
		if e.name == name {
			total += e.metric.Value()
		}
	}
	return total
}

// GaugeValue returns the unlabeled gauge's value (0 when absent).
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.gauges[name]; ok {
		return e.metric.Value()
	}
	return 0
}

// Snapshot returns every metric instance, deterministically ordered by
// kind, name, then canonical label string.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	samples := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for _, e := range r.counters {
		samples = append(samples, Sample{
			Name: e.name, Labels: e.labels, Kind: KindCounter,
			Value: float64(e.metric.Value()),
		})
	}
	for _, e := range r.gauges {
		samples = append(samples, Sample{
			Name: e.name, Labels: e.labels, Kind: KindGauge,
			Value: e.metric.Value(),
		})
	}
	for _, e := range r.histograms {
		hs := e.metric.Snapshot()
		samples = append(samples, Sample{
			Name: e.name, Labels: e.labels, Kind: KindHistogram,
			Hist: &hs,
		})
	}
	r.mu.Unlock()

	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Kind != samples[j].Kind {
			return samples[i].Kind < samples[j].Kind
		}
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return labelString(samples[i].Labels) < labelString(samples[j].Labels)
	})
	return samples
}

// Names returns the distinct metric names in use, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	set := make(map[string]bool)
	for _, e := range r.counters {
		set[e.name] = true
	}
	for _, e := range r.gauges {
		set[e.name] = true
	}
	for _, e := range r.histograms {
		set[e.name] = true
	}
	r.mu.Unlock()
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
