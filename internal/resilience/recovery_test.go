package resilience

import (
	"errors"
	"testing"

	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/statespace"
)

func newTestDevice(t *testing.T, log *audit.Log) *device.Device {
	t.Helper()
	schema := statespace.MustSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	initial, err := schema.StateFromMap(map[string]float64{"heat": 20, "fuel": 90})
	if err != nil {
		t.Fatalf("initial state: %v", err)
	}
	d, err := device.New(device.Config{ID: "d1", Type: "drone", Initial: initial, Audit: log})
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}
	policies, err := policylang.CompileSource(
		"policy work: on tick do run effect heat += 15", policy.OriginHuman)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	for i := range policies {
		policies[i].Origin = policy.OriginGenerated // provenance must survive recovery
		if err := d.Policies().Add(policies[i]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return d
}

func TestCheckpointAndRecover(t *testing.T) {
	log := audit.New()
	d := newTestDevice(t, log)
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if _, err := Checkpoint(log, d); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	restored, err := Recover(log, "d1", device.Config{Type: "drone"})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if restored.ID() != "d1" {
		t.Errorf("ID = %q", restored.ID())
	}
	if got := restored.CurrentState().MustGet("heat"); got != 35 {
		t.Errorf("restored heat = %g, want 35", got)
	}
	if got := restored.CurrentState().MustGet("fuel"); got != 90 {
		t.Errorf("restored fuel = %g, want 90", got)
	}
	p, ok := restored.Policies().Get("work")
	if !ok {
		t.Fatal("policy not restored")
	}
	if p.Origin != policy.OriginGenerated {
		t.Errorf("origin = %v, want generated", p.Origin)
	}
	// The restored device keeps working under the recovered policy.
	execs, err := restored.HandleEvent(policy.Event{Type: "tick"})
	if err != nil || len(execs) != 1 || !execs[0].Executed() {
		t.Fatalf("restored device tick: execs=%v err=%v", execs, err)
	}
	if got := restored.CurrentState().MustGet("heat"); got != 50 {
		t.Errorf("post-restore heat = %g, want 50", got)
	}
}

func TestRecoverUsesLatestCheckpoint(t *testing.T) {
	log := audit.New()
	d := newTestDevice(t, log)
	if _, err := Checkpoint(log, d); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := d.HandleEvent(policy.Event{Type: "tick"}); err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if _, err := Checkpoint(log, d); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap, err := LatestSnapshot(log, "d1")
	if err != nil {
		t.Fatalf("LatestSnapshot: %v", err)
	}
	if got := snap.State.MustGet("heat"); got != 35 {
		t.Errorf("latest snapshot heat = %g, want 35", got)
	}
}

func TestRecoverRefusesTamperedJournal(t *testing.T) {
	log := audit.New()
	d := newTestDevice(t, log)
	if _, err := Checkpoint(log, d); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// A forged entry in an exported journal must block recovery, even
	// though the checkpoint itself decodes fine.
	entries := log.Entries()
	if _, err := SnapshotFromEntries(entries, "d1"); err != nil {
		t.Fatalf("clean export refused: %v", err)
	}
	entries[0].Detail = "forged"
	if _, err := SnapshotFromEntries(entries, "d1"); !errors.Is(err, audit.ErrChainBroken) {
		t.Errorf("tampered export: err = %v, want chain broken", err)
	}
}

func TestRecoverUnknownDevice(t *testing.T) {
	log := audit.New()
	if _, err := LatestSnapshot(log, "ghost"); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}
