package resilience

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry{MaxAttempts: 5}.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Retry{MaxAttempts: 4}.Do(func() error { calls++; return boom })
	if !errors.Is(err, ErrAttemptsExhausted) || !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Retry{
		MaxAttempts: 5,
		Retryable:   func(err error) bool { return !errors.Is(err, permanent) },
	}.Do(func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || errors.Is(err, ErrAttemptsExhausted) {
		t.Errorf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	r := Retry{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := r.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestRetryJitterStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := Retry{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5, Rand: rng.Float64}
	for i := 0; i < 200; i++ {
		d := r.Delay(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms,150ms]", d)
		}
	}
}

func TestRetrySleepsBetweenAttempts(t *testing.T) {
	var slept []time.Duration
	r := Retry{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	_ = r.Do(func() error { return errors.New("x") })
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2 (no sleep after the final attempt)", len(slept))
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	b := &Breaker{Threshold: 3, Cooldown: time.Second, Now: func() time.Time { return now }}
	boom := errors.New("boom")

	for i := 0; i < 3; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}

	now = now.Add(time.Second) // cooldown elapses → half-open probe
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != StateClosed {
		t.Errorf("state after good probe = %v, want closed", b.State())
	}
	if b.Opens() != 1 {
		t.Errorf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	now := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	b := &Breaker{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }}
	boom := errors.New("boom")
	_ = b.Do(func() error { return boom })
	now = now.Add(time.Second)
	_ = b.Do(func() error { return boom }) // failed probe
	if b.State() != StateOpen {
		t.Errorf("state = %v, want open after failed probe", b.State())
	}
	if b.Opens() != 2 {
		t.Errorf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	now := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	b := &Breaker{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }}
	_ = b.Do(func() error { return errors.New("x") })
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("first probe rejected")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
}

func TestBreakerSetPerPeer(t *testing.T) {
	s := &BreakerSet{Threshold: 1, Cooldown: time.Minute}
	boom := errors.New("boom")
	_ = s.For("bad-peer").Do(func() error { return boom })
	if s.For("good-peer").State() != StateClosed {
		t.Error("good peer's breaker affected by bad peer")
	}
	if s.Opens() != 1 {
		t.Errorf("Opens = %d, want 1", s.Opens())
	}
	open := s.OpenPeers()
	if len(open) != 1 || open[0] != "bad-peer" {
		t.Errorf("OpenPeers = %v", open)
	}
	if s.For("bad-peer") != s.For("bad-peer") {
		t.Error("For returned different breakers for the same peer")
	}
}

func TestDeadlineOverrun(t *testing.T) {
	now := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	d := Deadline{Budget: 100 * time.Millisecond, Now: clock}

	if err := d.Run(func() error { return nil }); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := d.Run(func() error {
		now = now.Add(200 * time.Millisecond) // callee consumed virtual time
		return nil
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}

	boom := errors.New("boom")
	err = d.Run(func() error {
		now = now.Add(200 * time.Millisecond)
		return boom
	})
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, boom) {
		t.Errorf("err = %v, want deadline wrapping boom", err)
	}
}

func TestDeadlineDisabled(t *testing.T) {
	if err := (Deadline{}).Run(func() error { return nil }); err != nil {
		t.Errorf("zero deadline: %v", err)
	}
}
