// Package resilience provides the fault-tolerance primitives the
// collective needs to keep its guard invariants intact on a degraded
// network: bounded retries with exponential backoff and jitter,
// per-call deadlines against a (virtual or wall) clock, per-peer
// circuit breakers, and a crash-recovery path that restores a device's
// policies and state from the tamper-evident audit journal.
//
// The paper argues (Sections VI–VII) that policy guards keep a device
// collective out of bad states even when parts of the system
// misbehave; this package supplies the machinery that lets the rest of
// the framework demonstrate that claim under injected faults (see
// internal/chaos) instead of assuming a healthy collective.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// ErrAttemptsExhausted wraps the final error after every retry attempt
// failed.
var ErrAttemptsExhausted = errors.New("resilience: attempts exhausted")

// Retry is a bounded retry policy with exponential backoff and
// optional jitter. The zero value retries three times with no waiting,
// which suits discrete-event simulations where redelivery is immediate
// and the interesting signal is the attempt count.
type Retry struct {
	// MaxAttempts bounds the total tries (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 10ms when a Sleep
	// is configured).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter spreads each delay by ±Jitter fraction (0..1) to avoid
	// synchronized retry storms across devices.
	Jitter float64
	// Rand yields uniform samples in [0,1) for jitter; required when
	// Jitter > 0.
	Rand func() float64
	// Sleep waits between attempts; nil retries immediately (the
	// simulation engine advances virtual time independently).
	Sleep func(time.Duration)
	// Retryable classifies errors; nil retries every error. Permanent
	// errors (e.g. an unknown receiver) should return false to fail
	// fast.
	Retryable func(error) bool
	// OnRetry observes each re-attempt (for metrics); may be nil.
	OnRetry func(attempt int, err error)
}

// Attempts returns the effective attempt bound.
func (r Retry) Attempts() int {
	if r.MaxAttempts <= 0 {
		return 3
	}
	return r.MaxAttempts
}

// Delay returns the backoff delay before retry number attempt
// (0-based), with jitter applied.
func (r Retry) Delay(attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	mult := r.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if r.Jitter > 0 && r.Rand != nil {
		// Spread across [1-Jitter, 1+Jitter).
		d *= 1 + r.Jitter*(2*r.Rand()-1)
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, returns a non-retryable error, or the
// attempt budget is exhausted (returning the last error wrapped in
// ErrAttemptsExhausted).
func (r Retry) Do(op func() error) error {
	attempts := r.Attempts()
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && r.OnRetry != nil {
			r.OnRetry(i, err)
		}
		if err = op(); err == nil {
			return nil
		}
		if r.Retryable != nil && !r.Retryable(err) {
			return err
		}
		if i < attempts-1 && r.Sleep != nil {
			r.Sleep(r.Delay(i))
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrAttemptsExhausted, attempts, err)
}
