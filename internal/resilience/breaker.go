package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned when a circuit breaker rejects a call without
// attempting it.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is a circuit breaker's current disposition.
type BreakerState int

// Breaker states.
const (
	// StateClosed passes calls through and counts failures.
	StateClosed BreakerState = iota
	// StateOpen rejects calls until the cooldown elapses.
	StateOpen
	// StateHalfOpen lets a single probe through; its outcome decides
	// whether the breaker closes or re-opens.
	StateHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a circuit breaker: after Threshold consecutive failures
// it opens and rejects calls immediately, sparing a struggling peer
// (and the caller's retry budget); after Cooldown it admits one probe
// and closes again on success. All methods are safe for concurrent
// use.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before probing
	// (default 1s). Measured against Now, so virtual clocks work.
	Cooldown time.Duration
	// Now supplies the time source (default time.Now).
	Now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	opens    int
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed right now. An allowed call
// must be followed by Record to report its outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			b.state = StateHalfOpen
			b.probing = true
			return true
		}
		return false
	case StateHalfOpen:
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Record reports the outcome of an allowed call.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = StateClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case StateHalfOpen:
		b.trip()
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold() {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold the mutex.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// Do gates op behind the breaker: it returns ErrOpen without calling
// op when the circuit is open, and records op's outcome otherwise.
func (b *Breaker) Do(op func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := op()
	b.Record(err)
	return err
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped.
func (b *Breaker) Opens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// BreakerSet manages one breaker per peer, created on first use from
// the template configuration. It is safe for concurrent use.
type BreakerSet struct {
	// Threshold, Cooldown and Now configure each created breaker.
	Threshold int
	Cooldown  time.Duration
	Now       func() time.Time

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// For returns the breaker guarding the given peer, creating it if
// needed.
func (s *BreakerSet) For(peer string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.breakers == nil {
		s.breakers = make(map[string]*Breaker)
	}
	b, ok := s.breakers[peer]
	if !ok {
		b = &Breaker{Threshold: s.Threshold, Cooldown: s.Cooldown, Now: s.Now}
		s.breakers[peer] = b
	}
	return b
}

// Opens returns the total trip count across all peers.
func (s *BreakerSet) Opens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, b := range s.breakers {
		total += b.Opens()
	}
	return total
}

// OpenPeers returns the peers whose breakers are not closed.
func (s *BreakerSet) OpenPeers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for peer, b := range s.breakers {
		if b.State() != StateClosed {
			out = append(out, peer)
		}
	}
	return out
}
