package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/statespace"
)

// ErrNoCheckpoint is returned when the journal holds no checkpoint for
// the requested device.
var ErrNoCheckpoint = errors.New("resilience: no checkpoint for device")

// Checkpoint appends a recovery checkpoint for the device to the audit
// journal: its state (with schema) and its policy set rendered as DSL
// source. Because the journal is hash-chained, a restore can verify
// the checkpoint was not tampered with before trusting it — the
// crash-recovery analogue of the paper's break-glass audit requirement.
// Policies not representable in the DSL (e.g. learned emulators) are
// skipped and counted in the entry's context.
func Checkpoint(log *audit.Log, d *device.Device) (audit.Entry, error) {
	if log == nil || d == nil {
		return audit.Entry{}, errors.New("resilience: checkpoint needs a log and a device")
	}
	st := d.CurrentState()
	if !st.Valid() {
		return audit.Entry{}, fmt.Errorf("resilience: device %s has no valid state", d.ID())
	}
	schemaJSON, err := json.Marshal(st.Schema().Spec())
	if err != nil {
		return audit.Entry{}, fmt.Errorf("resilience: marshal schema: %w", err)
	}
	stateJSON, err := json.Marshal(st)
	if err != nil {
		return audit.Entry{}, fmt.Errorf("resilience: marshal state: %w", err)
	}

	var sources []string
	origins := make(map[string]int)
	skipped := 0
	for _, p := range d.Policies().All() {
		src, err := policylang.Format(p)
		if err != nil {
			skipped++
			continue
		}
		sources = append(sources, src)
		origins[p.ID] = int(p.Origin)
	}
	originsJSON, err := json.Marshal(origins)
	if err != nil {
		return audit.Entry{}, fmt.Errorf("resilience: marshal origins: %w", err)
	}

	ctx := map[string]string{
		"schema":   string(schemaJSON),
		"state":    string(stateJSON),
		"policies": strings.Join(sources, "\n"),
		"origins":  string(originsJSON),
	}
	if skipped > 0 {
		ctx["skipped"] = fmt.Sprintf("%d", skipped)
	}
	detail := fmt.Sprintf("checkpoint: %d policies, state %s", len(sources), st)
	return log.Append(audit.KindCheckpoint, d.ID(), detail, ctx), nil
}

// Snapshot is a decoded checkpoint, ready to rebuild a device.
type Snapshot struct {
	// DeviceID identifies the checkpointed device.
	DeviceID string
	// Seq is the journal position the snapshot came from.
	Seq int
	// State is the checkpointed device state.
	State statespace.State
	// Policies are the recompiled checkpointed policies with their
	// original provenance.
	Policies []policy.Policy
}

// LatestSnapshot verifies the journal's hash chain and decodes the
// most recent checkpoint for the device. A broken chain refuses
// recovery: a journal that cannot be trusted must not seed a device's
// state.
func LatestSnapshot(log *audit.Log, deviceID string) (Snapshot, error) {
	if log == nil {
		return Snapshot{}, errors.New("resilience: recovery needs a journal")
	}
	if err := log.Verify(); err != nil {
		return Snapshot{}, fmt.Errorf("resilience: refusing recovery: %w", err)
	}
	checkpoints := log.ByKind(audit.KindCheckpoint)
	for i := len(checkpoints) - 1; i >= 0; i-- {
		if checkpoints[i].Actor == deviceID {
			return decodeSnapshot(checkpoints[i])
		}
	}
	return Snapshot{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, deviceID)
}

func decodeSnapshot(e audit.Entry) (Snapshot, error) {
	var specs []statespace.VariableSpec
	if err := json.Unmarshal([]byte(e.Context["schema"]), &specs); err != nil {
		return Snapshot{}, fmt.Errorf("resilience: checkpoint %d schema: %w", e.Seq, err)
	}
	schema, err := statespace.SchemaFromSpec(specs)
	if err != nil {
		return Snapshot{}, fmt.Errorf("resilience: checkpoint %d schema: %w", e.Seq, err)
	}
	st, err := schema.StateFromJSON([]byte(e.Context["state"]))
	if err != nil {
		return Snapshot{}, fmt.Errorf("resilience: checkpoint %d state: %w", e.Seq, err)
	}

	var policies []policy.Policy
	if src := e.Context["policies"]; strings.TrimSpace(src) != "" {
		policies, err = policylang.CompileSource(src, policy.OriginBuiltin)
		if err != nil {
			return Snapshot{}, fmt.Errorf("resilience: checkpoint %d policies: %w", e.Seq, err)
		}
		var origins map[string]int
		if err := json.Unmarshal([]byte(e.Context["origins"]), &origins); err == nil {
			for i := range policies {
				if o, ok := origins[policies[i].ID]; ok {
					policies[i].Origin = policy.Origin(o)
				}
			}
		}
	}
	return Snapshot{DeviceID: e.Actor, Seq: e.Seq, State: st, Policies: policies}, nil
}

// SnapshotFromEntries decodes the most recent checkpoint for the
// device from journal entries exported from a Log (e.g. after JSON
// round-tripping on another machine), verifying the hash chain first —
// a forged or reordered journal must never seed a device's state.
func SnapshotFromEntries(entries []audit.Entry, deviceID string) (Snapshot, error) {
	if err := audit.VerifyEntries(entries); err != nil {
		return Snapshot{}, fmt.Errorf("resilience: refusing recovery: %w", err)
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Kind == audit.KindCheckpoint && entries[i].Actor == deviceID {
			return decodeSnapshot(entries[i])
		}
	}
	return Snapshot{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, deviceID)
}

// Restore rebuilds a device from a snapshot. The config supplies the
// non-serializable wiring — guard, kill switch, audit log, actuators
// are registered by the caller afterwards — while the snapshot fixes
// identity, state and policies.
func Restore(snap Snapshot, cfg device.Config) (*device.Device, error) {
	cfg.ID = snap.DeviceID
	cfg.Initial = snap.State
	cfg.Policies = nil // the snapshot's policies are added below
	d, err := device.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("resilience: restore %s: %w", snap.DeviceID, err)
	}
	for _, p := range snap.Policies {
		if err := d.Policies().Add(p); err != nil {
			return nil, fmt.Errorf("resilience: restore %s: %w", snap.DeviceID, err)
		}
	}
	return d, nil
}

// Recover is the one-call crash-recovery path: verify the journal,
// decode the device's latest checkpoint, and rebuild the device.
func Recover(log *audit.Log, deviceID string, cfg device.Config) (*device.Device, error) {
	snap, err := LatestSnapshot(log, deviceID)
	if err != nil {
		return nil, err
	}
	return Restore(snap, cfg)
}
