package resilience

import (
	"errors"
	"fmt"
	"time"
)

// ErrDeadlineExceeded is returned when a call overran its time budget.
var ErrDeadlineExceeded = errors.New("resilience: deadline exceeded")

// Deadline bounds a call's duration against a clock. In the
// discrete-event simulation the clock is virtual and a callee that
// schedules too much work overruns it; on a real deployment Now is
// time.Now and the budget is wall time. A zero Budget disables the
// check.
type Deadline struct {
	// Budget is the maximum allowed elapsed time.
	Budget time.Duration
	// Now supplies the time source (default time.Now).
	Now func() time.Time
}

// Run executes op and returns ErrDeadlineExceeded (wrapping op's own
// error, if any) when the elapsed time exceeded the budget.
func (d Deadline) Run(op func() error) error {
	if d.Budget <= 0 {
		return op()
	}
	now := d.Now
	if now == nil {
		now = time.Now
	}
	start := now()
	err := op()
	if elapsed := now().Sub(start); elapsed > d.Budget {
		if err != nil {
			return fmt.Errorf("%w (%v > %v): %w", ErrDeadlineExceeded, elapsed, d.Budget, err)
		}
		return fmt.Errorf("%w (%v > %v)", ErrDeadlineExceeded, elapsed, d.Budget)
	}
	return err
}
