package generative_test

import (
	"fmt"

	"repro/internal/generative"
	"repro/internal/network"
)

// Example shows the Section IV pipeline: the human supplies an
// interaction graph and a template; discovering a device generates its
// policies automatically.
func Example() {
	graph := generative.NewInteractionGraph()
	_ = graph.AddType(generative.TypeSpec{Name: "surveillance-drone"})
	_ = graph.AddType(generative.TypeSpec{Name: "chem-drone", Attrs: []string{"range"}})
	_ = graph.AddInteraction(generative.Interaction{
		From: "surveillance-drone", To: "chem-drone", Kind: "escalate-smoke",
	})

	gen := &generative.Generator{
		OwnType:      "surveillance-drone",
		Organization: "us",
		Graph:        graph,
		Templates: map[string]generative.Template{
			"escalate-smoke": {ID: "escalate", Text: `policy escalate-${device} priority 10:
    on smoke-detected
    when intensity > 3
    do request-survey target ${device} category surveillance`},
		},
	}

	adopted, _, err := gen.PoliciesFor(network.DeviceInfo{
		ID: "chem-1", Type: "chem-drone", Attrs: map[string]float64{"range": 12},
	})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	for _, p := range adopted {
		fmt.Println(p.ID, "→", p.Action.Name, "targeting", p.Action.Target)
	}
	// Output:
	// escalate-chem-1 → request-survey targeting chem-1
}
