package generative

import (
	"fmt"
	"strings"
)

// Grammar is a small context-free "policy generator grammar"
// (Section IV): production rules over the policy DSL that constrain
// what a device may generate. Nonterminals appear as <name> in
// production bodies; everything else is emitted literally. A Chooser
// selects among alternative productions, letting the device's learning
// component steer generation while staying inside the grammar — the
// structural containment that distinguishes generative policies from
// arbitrary self-programming.
type Grammar struct {
	rules map[string][]string
	start string
}

// Chooser selects one of n alternatives for the named nonterminal.
type Chooser func(nonterminal string, n int) int

// FirstChoice always picks the first production (the grammar's
// canonical/default derivation).
func FirstChoice(string, int) int { return 0 }

// NewGrammar builds a grammar with the given start symbol.
func NewGrammar(start string) *Grammar {
	return &Grammar{rules: make(map[string][]string), start: start}
}

// Add appends a production for the nonterminal.
func (g *Grammar) Add(nonterminal, production string) error {
	if nonterminal == "" {
		return fmt.Errorf("generative: production needs a nonterminal")
	}
	g.rules[nonterminal] = append(g.rules[nonterminal], production)
	return nil
}

// Expand derives text from the start symbol, using the chooser to
// select productions and the bindings to substitute ${name}
// placeholders in the final text. Derivation depth is bounded to
// reject runaway recursive grammars.
func (g *Grammar) Expand(choose Chooser, bindings map[string]string) (string, error) {
	if choose == nil {
		choose = FirstChoice
	}
	text, err := g.expand(g.start, choose, 0)
	if err != nil {
		return "", err
	}
	var missing []string
	out := placeholderPattern.ReplaceAllStringFunc(text, func(m string) string {
		name := placeholderPattern.FindStringSubmatch(m)[1]
		if v, ok := bindings[name]; ok {
			return v
		}
		missing = append(missing, name)
		return m
	})
	if len(missing) > 0 {
		return "", fmt.Errorf("generative: grammar: unbound placeholders %s", strings.Join(missing, ", "))
	}
	return out, nil
}

const maxDerivationDepth = 64

func (g *Grammar) expand(symbol string, choose Chooser, depth int) (string, error) {
	if depth > maxDerivationDepth {
		return "", fmt.Errorf("generative: grammar derivation exceeded depth %d at <%s>", maxDerivationDepth, symbol)
	}
	productions, ok := g.rules[symbol]
	if !ok || len(productions) == 0 {
		return "", fmt.Errorf("generative: no production for <%s>", symbol)
	}
	idx := choose(symbol, len(productions))
	if idx < 0 || idx >= len(productions) {
		idx = 0
	}
	body := productions[idx]

	var b strings.Builder
	for {
		open := strings.Index(body, "<")
		if open < 0 {
			b.WriteString(body)
			return b.String(), nil
		}
		closing := strings.Index(body[open:], ">")
		if closing < 0 {
			b.WriteString(body)
			return b.String(), nil
		}
		b.WriteString(body[:open])
		inner := body[open+1 : open+closing]
		expanded, err := g.expand(inner, choose, depth+1)
		if err != nil {
			return "", err
		}
		b.WriteString(expanded)
		body = body[open+closing+1:]
	}
}
