package generative

import (
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/policylang"
)

func coalitionGraph(t *testing.T) *InteractionGraph {
	t.Helper()
	g := NewInteractionGraph()
	for _, spec := range []TypeSpec{
		{Name: "surveillance-drone", Attrs: []string{"range", "speed"}},
		{Name: "chem-drone", Attrs: []string{"sensitivity", "range"}},
		{Name: "ground-mule", Attrs: []string{"capacity"}},
	} {
		if err := g.AddType(spec); err != nil {
			t.Fatalf("AddType: %v", err)
		}
	}
	for _, e := range []Interaction{
		{From: "surveillance-drone", To: "chem-drone", Kind: "escalate-smoke"},
		{From: "surveillance-drone", To: "ground-mule", Kind: "intercept-convoy"},
	} {
		if err := g.AddInteraction(e); err != nil {
			t.Fatalf("AddInteraction: %v", err)
		}
	}
	return g
}

func TestInteractionGraph(t *testing.T) {
	g := coalitionGraph(t)
	if !g.HasType("chem-drone") || g.HasType("ghost") {
		t.Error("HasType wrong")
	}
	if got := g.Types(); len(got) != 3 || got[0] != "chem-drone" {
		t.Errorf("Types = %v", got)
	}
	spec, ok := g.Type("surveillance-drone")
	if !ok || len(spec.Attrs) != 2 {
		t.Errorf("Type = %+v,%v", spec, ok)
	}
	edges := g.InteractionsBetween("surveillance-drone", "chem-drone")
	if len(edges) != 1 || edges[0].Kind != "escalate-smoke" {
		t.Errorf("InteractionsBetween = %v", edges)
	}
	if got := g.InteractionsBetween("chem-drone", "ground-mule"); got != nil {
		t.Errorf("unexpected interactions: %v", got)
	}
	if len(g.Interactions()) != 2 {
		t.Error("Interactions wrong")
	}
	if err := g.AddType(TypeSpec{}); err == nil {
		t.Error("nameless type accepted")
	}
	if err := g.AddInteraction(Interaction{From: "ghost", To: "chem-drone", Kind: "x"}); err == nil {
		t.Error("unknown from-type accepted")
	}
	if err := g.AddInteraction(Interaction{From: "chem-drone", To: "ghost", Kind: "x"}); err == nil {
		t.Error("unknown to-type accepted")
	}
	if err := g.AddInteraction(Interaction{From: "chem-drone", To: "ground-mule"}); err == nil {
		t.Error("kindless interaction accepted")
	}
}

const escalateTemplate = `policy ${self}-escalate-${device} priority 10:
    on smoke-detected
    when intensity > 3
    do request-survey target ${device} category surveillance param expectedRange = "${attr.range}"`

func TestTemplatePlaceholdersAndInstantiate(t *testing.T) {
	tmpl := Template{ID: "escalate", Text: escalateTemplate}
	ph := tmpl.Placeholders()
	want := []string{"attr.range", "device", "self"}
	if len(ph) != len(want) {
		t.Fatalf("Placeholders = %v", ph)
	}
	for i := range want {
		if ph[i] != want[i] {
			t.Errorf("Placeholders[%d] = %s", i, ph[i])
		}
	}

	p, err := tmpl.Instantiate(map[string]string{
		"self": "surveillance-drone", "device": "chem-1", "attr.range": "12",
	})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if p.ID != "surveillance-drone-escalate-chem-1" || p.Origin != policy.OriginGenerated {
		t.Errorf("policy = %v", p)
	}
	if p.Action.Target != "chem-1" || p.Action.Params["expectedRange"] != "12" {
		t.Errorf("action = %+v", p.Action)
	}

	if _, err := tmpl.Instantiate(map[string]string{"self": "x"}); err == nil ||
		!strings.Contains(err.Error(), "unbound") {
		t.Errorf("unbound placeholders error = %v", err)
	}
	bad := Template{ID: "bad", Text: "policy ${device}: garbage"}
	if _, err := bad.Instantiate(map[string]string{"device": "d"}); err == nil {
		t.Error("unparseable instantiation accepted")
	}
}

func TestGrammarExpand(t *testing.T) {
	g := NewGrammar("policy")
	mustAddRule(t, g, "policy", "policy gen-${device}: on <event> do <action>")
	mustAddRule(t, g, "event", "smoke-detected")
	mustAddRule(t, g, "event", "convoy-sighted")
	mustAddRule(t, g, "action", "observe category surveillance")
	mustAddRule(t, g, "action", "dispatch target ${device} category tasking")

	text, err := g.Expand(FirstChoice, map[string]string{"device": "d1"})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !strings.Contains(text, "on smoke-detected do observe") {
		t.Errorf("default derivation = %q", text)
	}

	second := func(nt string, n int) int { return 1 % n }
	text, err = g.Expand(second, map[string]string{"device": "d1"})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !strings.Contains(text, "convoy-sighted") || !strings.Contains(text, "dispatch target d1") {
		t.Errorf("second derivation = %q", text)
	}
	// Every derivation compiles through the DSL.
	if _, err := policylang.CompileSource(text, policy.OriginGenerated); err != nil {
		t.Errorf("derived text does not compile: %v\n%s", err, text)
	}
}

func TestGrammarErrors(t *testing.T) {
	g := NewGrammar("s")
	if _, err := g.Expand(nil, nil); err == nil {
		t.Error("empty grammar expanded")
	}
	mustAddRule(t, g, "s", "<s>") // infinite recursion
	if _, err := g.Expand(FirstChoice, nil); err == nil {
		t.Error("runaway recursion not caught")
	}
	g2 := NewGrammar("s")
	mustAddRule(t, g2, "s", "text ${missing}")
	if _, err := g2.Expand(FirstChoice, nil); err == nil {
		t.Error("unbound grammar placeholder accepted")
	}
	if err := g2.Add("", "x"); err == nil {
		t.Error("empty nonterminal accepted")
	}
	// Out-of-range chooser falls back to production 0.
	g3 := NewGrammar("s")
	mustAddRule(t, g3, "s", "ok")
	text, err := g3.Expand(func(string, int) int { return 99 }, nil)
	if err != nil || text != "ok" {
		t.Errorf("fallback = %q, %v", text, err)
	}
}

func mustAddRule(t *testing.T, g *Grammar, nt, body string) {
	t.Helper()
	if err := g.Add(nt, body); err != nil {
		t.Fatalf("Add(%s): %v", nt, err)
	}
}

func testGenerator(t *testing.T, approver guard.Approver) *Generator {
	t.Helper()
	return &Generator{
		OwnType:      "surveillance-drone",
		Organization: "us",
		Graph:        coalitionGraph(t),
		Templates: map[string]Template{
			"escalate-smoke": {ID: "escalate", Text: escalateTemplate},
			"intercept-convoy": {ID: "intercept", Text: `policy intercept-${device} priority 5:
    on convoy-sighted
    when threat > 0.5
    do dispatch-mule target ${device} category tasking`},
		},
		Approver: approver,
	}
}

func TestGeneratorPoliciesFor(t *testing.T) {
	gen := testGenerator(t, nil)
	adopted, rejected, err := gen.PoliciesFor(network.DeviceInfo{
		ID: "chem-1", Type: "chem-drone", Attrs: map[string]float64{"range": 12},
	})
	if err != nil {
		t.Fatalf("PoliciesFor: %v", err)
	}
	if len(adopted) != 1 || len(rejected) != 0 {
		t.Fatalf("adopted=%v rejected=%v", adopted, rejected)
	}
	if adopted[0].Organization != "us" {
		t.Errorf("org = %q", adopted[0].Organization)
	}

	// Unknown type: nothing generated, no error.
	adopted, _, err = gen.PoliciesFor(network.DeviceInfo{ID: "x", Type: "unknown"})
	if err != nil || len(adopted) != 0 {
		t.Errorf("unknown type: %v, %v", adopted, err)
	}
	// No template for the interaction kind: skipped.
	adopted, _, err = gen.PoliciesFor(network.DeviceInfo{ID: "m1", Type: "ground-mule"})
	if err != nil || len(adopted) != 1 {
		t.Errorf("mule policies = %v, %v", adopted, err)
	}
}

func TestGeneratorStructuralErrors(t *testing.T) {
	gen := testGenerator(t, nil)
	gen.Graph = nil
	if _, _, err := gen.PoliciesFor(network.DeviceInfo{Type: "chem-drone"}); err == nil {
		t.Error("nil graph accepted")
	}
	gen = testGenerator(t, nil)
	gen.OwnType = "ghost"
	if _, _, err := gen.PoliciesFor(network.DeviceInfo{Type: "chem-drone"}); err == nil {
		t.Error("unknown own type accepted")
	}
	gen = testGenerator(t, nil)
	gen.Templates["escalate-smoke"] = Template{ID: "broken", Text: "policy ${device} nonsense"}
	if _, _, err := gen.PoliciesFor(network.DeviceInfo{ID: "c", Type: "chem-drone", Attrs: map[string]float64{"range": 1}}); err == nil {
		t.Error("broken template accepted")
	}
}

func TestGeneratorOversightRejects(t *testing.T) {
	// Legislative scope: tasking policies must not be unconditional —
	// and more simply here, forbid the tasking category outright.
	tx := ontology.NewTaxonomy()
	tx.Add("tasking")
	tx.Add("surveillance")
	reviewer := &guard.ScopeReviewer{
		Label: "legislative",
		Rules: []guard.ScopeRule{guard.ForbidCategory{Taxonomy: tx, Concept: "tasking"}},
	}
	gen := testGenerator(t, &guard.SingleOverseer{Overseer: reviewer})

	adopted, rejected, err := gen.PoliciesFor(network.DeviceInfo{ID: "m1", Type: "ground-mule"})
	if err != nil {
		t.Fatalf("PoliciesFor: %v", err)
	}
	if len(adopted) != 0 || len(rejected) != 1 {
		t.Fatalf("adopted=%v rejected=%v", adopted, rejected)
	}
	if len(rejected[0].Votes) != 1 || rejected[0].Votes[0].Approve {
		t.Errorf("votes = %+v", rejected[0].Votes)
	}

	// Surveillance policies still pass.
	adopted, rejected, err = gen.PoliciesFor(network.DeviceInfo{
		ID: "chem-1", Type: "chem-drone", Attrs: map[string]float64{"range": 3},
	})
	if err != nil || len(adopted) != 1 || len(rejected) != 0 {
		t.Errorf("surveillance: adopted=%v rejected=%v err=%v", adopted, rejected, err)
	}
}

func TestAttributePredictor(t *testing.T) {
	p := NewAttributePredictor()
	if _, ok := p.Predict("chem-drone", "sensitivity"); ok {
		t.Error("prediction from no data")
	}
	p.Observe(network.DeviceInfo{Type: "chem-drone", Attrs: map[string]float64{"sensitivity": 4}})
	p.Observe(network.DeviceInfo{Type: "chem-drone", Attrs: map[string]float64{"sensitivity": 6}})
	v, ok := p.Predict("chem-drone", "sensitivity")
	if !ok || v != 5 {
		t.Errorf("Predict = %g,%v", v, ok)
	}

	graph := coalitionGraph(t)
	filled := p.Fill(graph, network.DeviceInfo{ID: "c9", Type: "chem-drone"})
	if filled.Attrs["sensitivity"] != 5 {
		t.Errorf("Fill = %+v", filled.Attrs)
	}
	// Present attributes are not overwritten.
	kept := p.Fill(graph, network.DeviceInfo{ID: "c9", Type: "chem-drone", Attrs: map[string]float64{"sensitivity": 1}})
	if kept.Attrs["sensitivity"] != 1 {
		t.Error("Fill overwrote advertised attribute")
	}
	// Unknown type passes through.
	same := p.Fill(graph, network.DeviceInfo{ID: "x", Type: "unknown"})
	if same.Type != "unknown" {
		t.Error("Fill mangled unknown type")
	}
}

func TestGeneratorWithAugmentation(t *testing.T) {
	gen := testGenerator(t, nil)
	gen.Augment = NewAttributePredictor()
	gen.Augment.Observe(network.DeviceInfo{Type: "chem-drone", Attrs: map[string]float64{"range": 8, "sensitivity": 2}})

	// Advertisement missing "range": augmentation fills it so the
	// template instantiates.
	adopted, _, err := gen.PoliciesFor(network.DeviceInfo{ID: "c2", Type: "chem-drone"})
	if err != nil {
		t.Fatalf("PoliciesFor with augmentation: %v", err)
	}
	if len(adopted) != 1 || adopted[0].Action.Params["expectedRange"] != "8" {
		t.Errorf("adopted = %+v", adopted)
	}
}
