package generative

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/policy"
	"repro/internal/policylang"
)

// placeholderPattern matches ${name} placeholders in template text.
var placeholderPattern = regexp.MustCompile(`\$\{([a-zA-Z0-9._-]+)\}`)

// Template is a parameterized policy in the policy DSL with ${name}
// placeholders — the "policy template" of Section IV. Standard
// bindings supplied by the Generator: device, type, org, self, and
// attr.<name> for each advertised attribute.
type Template struct {
	// ID prefixes generated policy IDs (the full ID is
	// "<ID>-<device>").
	ID string
	// Text is policylang source with placeholders.
	Text string
}

// Placeholders returns the distinct placeholder names in the template,
// sorted.
func (t Template) Placeholders() []string {
	seen := make(map[string]bool)
	for _, m := range placeholderPattern.FindAllStringSubmatch(t.Text, -1) {
		seen[m[1]] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Instantiate substitutes the bindings and compiles the result. Every
// placeholder must be bound; the generated policy carries
// OriginGenerated.
func (t Template) Instantiate(bindings map[string]string) (policy.Policy, error) {
	var missing []string
	text := placeholderPattern.ReplaceAllStringFunc(t.Text, func(m string) string {
		name := placeholderPattern.FindStringSubmatch(m)[1]
		v, ok := bindings[name]
		if !ok {
			missing = append(missing, name)
			return m
		}
		return v
	})
	if len(missing) > 0 {
		sort.Strings(missing)
		return policy.Policy{}, fmt.Errorf("generative: template %s: unbound placeholders %s",
			t.ID, strings.Join(missing, ", "))
	}
	rule, err := policylang.ParseOne(text)
	if err != nil {
		return policy.Policy{}, fmt.Errorf("generative: template %s: %w", t.ID, err)
	}
	return policylang.Compile(rule, policy.OriginGenerated)
}
