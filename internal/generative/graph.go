// Package generative implements the generative policy architecture of
// Section IV: "a human manager provides two types of information to
// each device. The first type of information specifies what the device
// can expect to see in its environment, in particular the other types
// of devices that would be encountered and their attributes. The
// second type ... indicates what kinds of policies it should generate
// as new devices are discovered. The former is specified by means of
// an interaction graph, the latter by means of a policy generator
// grammar or a policy template."
//
// A Generator combines both: on each discovery it instantiates the
// templates for the interactions its device type has with the
// discovered type, and (optionally) submits every candidate policy to
// an oversight Approver before it is adopted. The AttributePredictor
// provides the unsupervised augmentation the paper anticipates
// ("learn the relationship between the attributes they see among the
// devices in the system and create predictive models").
package generative

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TypeSpec declares a device type the environment may contain and the
// attributes its advertisements carry.
type TypeSpec struct {
	Name  string
	Attrs []string
}

// Interaction is one expected relationship between device types: a
// From-type device may react to a To-type device with policies of the
// given Kind.
type Interaction struct {
	From string
	To   string
	Kind string
}

// InteractionGraph is the environment description the human manager
// supplies.
type InteractionGraph struct {
	mu    sync.Mutex
	types map[string]TypeSpec
	edges []Interaction
}

// NewInteractionGraph returns an empty graph.
func NewInteractionGraph() *InteractionGraph {
	return &InteractionGraph{types: make(map[string]TypeSpec)}
}

// AddType declares a device type. Re-declaring replaces the spec.
func (g *InteractionGraph) AddType(spec TypeSpec) error {
	if spec.Name == "" {
		return errors.New("generative: type needs a name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	copied := spec
	copied.Attrs = append([]string(nil), spec.Attrs...)
	g.types[spec.Name] = copied
	return nil
}

// HasType reports whether the type is declared.
func (g *InteractionGraph) HasType(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.types[name]
	return ok
}

// Type returns the declared spec for a type.
func (g *InteractionGraph) Type(name string) (TypeSpec, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	spec, ok := g.types[name]
	return spec, ok
}

// Types returns the declared type names, sorted.
func (g *InteractionGraph) Types() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.types))
	for name := range g.types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddInteraction declares an expected interaction. Both endpoint types
// must be declared.
func (g *InteractionGraph) AddInteraction(i Interaction) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.types[i.From]; !ok {
		return fmt.Errorf("generative: unknown type %q", i.From)
	}
	if _, ok := g.types[i.To]; !ok {
		return fmt.Errorf("generative: unknown type %q", i.To)
	}
	if i.Kind == "" {
		return errors.New("generative: interaction needs a kind")
	}
	g.edges = append(g.edges, i)
	return nil
}

// InteractionsBetween returns the interaction kinds a from-type device
// has toward a to-type device, in declaration order.
func (g *InteractionGraph) InteractionsBetween(from, to string) []Interaction {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []Interaction
	for _, e := range g.edges {
		if e.From == from && e.To == to {
			out = append(out, e)
		}
	}
	return out
}

// Interactions returns all declared interactions.
func (g *InteractionGraph) Interactions() []Interaction {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Interaction, len(g.edges))
	copy(out, g.edges)
	return out
}
