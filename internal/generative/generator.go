package generative

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
)

// Rejected records a candidate policy that oversight refused.
type Rejected struct {
	Policy policy.Policy
	Votes  []guard.Vote
}

// Generator produces policies when devices are discovered: for each
// interaction the device's own type has with the discovered type, it
// instantiates the interaction kind's template with bindings from the
// advertisement, then (when an Approver is configured) submits the
// candidate to oversight before returning it as adopted.
type Generator struct {
	// OwnType is the type of the device running this generator.
	OwnType string
	// Organization stamps generated policies.
	Organization string
	// Graph is the interaction graph (required).
	Graph *InteractionGraph
	// Templates maps interaction kinds to policy templates.
	Templates map[string]Template
	// Augment optionally fills in missing advertised attributes before
	// binding (the unsupervised augmentation of Section IV).
	Augment *AttributePredictor
	// Approver optionally gates adoption (the oversight mechanism of
	// Section VI.E). Nil adopts everything — the unguarded control.
	Approver guard.Approver
}

// PoliciesFor generates the policies this device should adopt for a
// newly discovered peer. It returns adopted policies, oversight
// rejections, and an error only for structural failures (bad template,
// unknown own type).
func (g *Generator) PoliciesFor(info network.DeviceInfo) ([]policy.Policy, []Rejected, error) {
	if g.Graph == nil {
		return nil, nil, fmt.Errorf("generative: generator needs an interaction graph")
	}
	if !g.Graph.HasType(g.OwnType) {
		return nil, nil, fmt.Errorf("generative: own type %q not in interaction graph", g.OwnType)
	}
	if !g.Graph.HasType(info.Type) {
		// Unknown device type: the human did not anticipate it, so no
		// policies are generated (fail closed).
		return nil, nil, nil
	}
	if g.Augment != nil {
		info = g.Augment.Fill(g.Graph, info)
	}

	var adopted []policy.Policy
	var rejected []Rejected
	for _, interaction := range g.Graph.InteractionsBetween(g.OwnType, info.Type) {
		tmpl, ok := g.Templates[interaction.Kind]
		if !ok {
			continue
		}
		p, err := tmpl.Instantiate(g.bindings(info))
		if err != nil {
			return nil, nil, err
		}
		p.Organization = g.Organization
		if g.Approver != nil {
			ok, votes := g.Approver.Approve(p)
			if !ok {
				rejected = append(rejected, Rejected{Policy: p, Votes: votes})
				continue
			}
		}
		adopted = append(adopted, p)
	}
	return adopted, rejected, nil
}

// Adopt generates policies for a discovered peer and installs the
// adopted batch into the set in one mutation — a single decision-plane
// invalidation and one snapshot recompile per discovery, instead of
// one per policy. Existing revisions of the same policy IDs are
// replaced (re-discovery refreshes bindings). It returns the adopted
// policies alongside oversight rejections.
func (g *Generator) Adopt(set *policy.Set, info network.DeviceInfo) ([]policy.Policy, []Rejected, error) {
	adopted, rejected, err := g.PoliciesFor(info)
	if err != nil {
		return nil, rejected, err
	}
	if err := set.ReplaceBatch(adopted); err != nil {
		return nil, rejected, err
	}
	return adopted, rejected, nil
}

func (g *Generator) bindings(info network.DeviceInfo) map[string]string {
	b := map[string]string{
		"device": info.ID,
		"type":   info.Type,
		"org":    info.Organization,
		"self":   g.OwnType,
	}
	for name, v := range info.Attrs {
		b["attr."+name] = strconv.FormatFloat(v, 'f', -1, 64)
	}
	return b
}

// AttributePredictor learns per-type attribute means from observed
// advertisements and predicts missing attributes — the unsupervised
// augmentation path of Section IV ("create predictive models of those
// relationships").
type AttributePredictor struct {
	mu    sync.Mutex
	sums  map[string]map[string]float64
	count map[string]map[string]int
}

// NewAttributePredictor returns an empty predictor.
func NewAttributePredictor() *AttributePredictor {
	return &AttributePredictor{
		sums:  make(map[string]map[string]float64),
		count: make(map[string]map[string]int),
	}
}

// Observe records an advertisement's attributes.
func (p *AttributePredictor) Observe(info network.DeviceInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sums[info.Type] == nil {
		p.sums[info.Type] = make(map[string]float64)
		p.count[info.Type] = make(map[string]int)
	}
	for name, v := range info.Attrs {
		p.sums[info.Type][name] += v
		p.count[info.Type][name]++
	}
}

// Predict returns the mean observed value of an attribute for a type.
func (p *AttributePredictor) Predict(deviceType, attr string) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.count[deviceType][attr]
	if n == 0 {
		return 0, false
	}
	return p.sums[deviceType][attr] / float64(n), true
}

// Fill returns a copy of the advertisement with attributes expected by
// the graph's type spec but missing from the advertisement filled in
// from predictions (where available).
func (p *AttributePredictor) Fill(graph *InteractionGraph, info network.DeviceInfo) network.DeviceInfo {
	spec, ok := graph.Type(info.Type)
	if !ok {
		return info
	}
	out := info
	out.Attrs = make(map[string]float64, len(info.Attrs)+len(spec.Attrs))
	for k, v := range info.Attrs {
		out.Attrs[k] = v
	}
	expected := append([]string(nil), spec.Attrs...)
	sort.Strings(expected)
	for _, attr := range expected {
		if _, present := out.Attrs[attr]; present {
			continue
		}
		if v, ok := p.Predict(info.Type, attr); ok {
			out.Attrs[attr] = v
		}
	}
	return out
}
