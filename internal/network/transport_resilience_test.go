package network

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
)

// TestServerIdleTimeoutUnpinsStalledPeer verifies a peer that connects
// and then goes silent cannot pin its handler goroutine: the server
// closes the connection once the idle timeout elapses (observed as EOF
// on the peer's side), and Close does not hang waiting on the stalled
// reader.
func TestServerIdleTimeoutUnpinsStalledPeer(t *testing.T) {
	var mu sync.Mutex
	received := 0
	srv, err := Serve("127.0.0.1:0", func(WireMessage) {
		mu.Lock()
		received++
		mu.Unlock()
	}, WithIdleTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = conn.Close() }()

	// A message inside the window is delivered normally.
	if _, err := conn.Write([]byte(`{"from":"a","to":"b","topic":"t"}` + "\n")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received == 1
	})

	// Then the peer stalls. The server must drop the connection: the
	// next read on our side reports the close.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection still open after idle timeout")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server never closed the stalled connection")
	}

	// With the stalled handler unpinned, Close returns promptly.
	done := make(chan struct{})
	go func() { _ = srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on a stalled connection")
	}
}

// TestResilientClientRedialsAfterConnectionLoss drops the client's
// connection out from under it and checks the next Send transparently
// redials.
func TestResilientClientRedialsAfterConnectionLoss(t *testing.T) {
	var mu sync.Mutex
	var got []WireMessage
	srv, err := Serve("127.0.0.1:0", func(m WireMessage) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()

	client, err := DialResilient(srv.Addr(), resilience.Retry{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialResilient: %v", err)
	}
	defer func() { _ = client.Close() }()
	client.SendTimeout = time.Second

	if err := client.Send(WireMessage{From: "a", To: "b", Topic: "t", Payload: "one"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Sever the underlying connection out from under the client (an
	// explicit Close is terminal — see ErrClosed); the next Send must
	// redial and succeed.
	client.mu.Lock()
	inner := client.conn
	client.mu.Unlock()
	if err := inner.Close(); err != nil {
		t.Fatalf("severing connection: %v", err)
	}
	if err := client.Send(WireMessage{From: "a", To: "b", Topic: "t", Payload: "two"}); err != nil {
		t.Fatalf("Send after connection loss: %v", err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	// The two sends travelled over different connections, so arrival
	// order is not guaranteed — check both payloads landed.
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for _, m := range got {
		seen[m.Payload] = true
	}
	if !seen["one"] || !seen["two"] {
		t.Errorf("payloads received = %v, want one and two", got)
	}
}

// TestResilientClientExhaustsRetriesWhenServerGone shuts the server
// down and checks Send fails with the retry budget spent rather than
// hanging.
func TestResilientClientExhaustsRetriesWhenServerGone(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(WireMessage) {})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	client, err := DialResilient(srv.Addr(), resilience.Retry{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialResilient: %v", err)
	}
	_ = srv.Close()
	_ = client.Close()

	if err := client.Send(WireMessage{From: "a", To: "b"}); err == nil {
		t.Fatal("Send succeeded with the server gone")
	}
}
