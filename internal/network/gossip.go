package network

import (
	"errors"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Item is one versioned piece of shared knowledge (a policy, a learned
// model parameter, an intel report). Higher versions win on merge.
type Item struct {
	Key     string
	Version int
	Payload any
}

// Store is one node's replica of the shared knowledge. It is safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	items map[string]Item
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{items: make(map[string]Item)}
}

// Put inserts the item if its version is strictly newer than the
// stored one. It reports whether the store changed.
func (s *Store) Put(item Item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.items[item.Key]; ok && existing.Version >= item.Version {
		return false
	}
	s.items[item.Key] = item
	return true
}

// Get returns the stored item for a key.
func (s *Store) Get(key string) (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	item, ok := s.items[key]
	return item, ok
}

// Snapshot returns all items sorted by key.
func (s *Store) Snapshot() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Item, 0, len(s.items))
	for _, item := range s.items {
		out = append(out, item)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Merge applies a snapshot and returns how many items were newer.
func (s *Store) Merge(items []Item) int {
	updated := 0
	for _, item := range items {
		if s.Put(item) {
			updated++
		}
	}
	return updated
}

// Len returns the number of stored items.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Gossip runs push-based anti-entropy rounds over a set of node
// stores: each round, every node pushes its snapshot to Fanout random
// peers. This is the policy/intelligence-sharing channel between
// devices.
// errPushDropped marks one anti-entropy push lost by the link fault.
var errPushDropped = errors.New("network: gossip push dropped")

// Link decides whether one anti-entropy push from → to is delivered;
// returning false drops it. It is the gossip-level counterpart of the
// bus's loss knob (gossip exchanges whole snapshots, not bus messages).
type Link func(from, to string) bool

type Gossip struct {
	mu      sync.Mutex
	rng     *rand.Rand
	fanout  int
	stores  map[string]*Store
	link    Link
	retry   *resilience.Retry
	dropped int
	retried int

	cRounds  *telemetry.Counter
	cUpdates *telemetry.Counter
	cDropped *telemetry.Counter
	cRetries *telemetry.Counter
}

// NewGossip builds a gossip group with the given fanout (min 1).
func NewGossip(rng *rand.Rand, fanout int) *Gossip {
	if fanout < 1 {
		fanout = 1
	}
	return &Gossip{rng: rng, fanout: fanout, stores: make(map[string]*Store)}
}

// Join adds a node and returns its store. Re-joining returns the
// existing store.
func (g *Gossip) Join(id string) *Store {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.stores[id]; ok {
		return s
	}
	s := NewStore()
	g.stores[id] = s
	return s
}

// Leave removes a node.
func (g *Gossip) Leave(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.stores, id)
}

// Store returns a node's store.
func (g *Gossip) Store(id string) (*Store, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.stores[id]
	return s, ok
}

// SetMetrics publishes the group's anti-entropy accounting into the
// registry: gossip.rounds, gossip.updates, gossip.pushes_dropped and
// gossip.push_retries. A nil registry removes instrumentation.
func (g *Gossip) SetMetrics(reg *telemetry.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cRounds = reg.Counter("gossip.rounds")
	g.cUpdates = reg.Counter("gossip.updates")
	g.cDropped = reg.Counter("gossip.pushes_dropped")
	g.cRetries = reg.Counter("gossip.push_retries")
}

// SetLink installs a per-push fault hook (nil removes it). Dropped
// pushes are counted in PushStats.
func (g *Gossip) SetLink(link Link) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.link = link
}

// SetRetry makes every anti-entropy push retry through the policy
// when the link drops it, bounding the damage sustained loss can do to
// convergence time.
func (g *Gossip) SetRetry(r resilience.Retry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.retry = &r
}

// PushStats returns how many pushes the link fault dropped and how
// many retry attempts were spent recovering them.
func (g *Gossip) PushStats() (dropped, retried int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped, g.retried
}

// RunRound performs one push round and returns the number of item
// updates applied across all peers (0 means convergence).
func (g *Gossip) RunRound() int {
	g.mu.Lock()
	ids := make([]string, 0, len(g.stores))
	for id := range g.stores {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	stores := make(map[string]*Store, len(g.stores))
	for id, s := range g.stores {
		stores[id] = s
	}
	fanout := g.fanout
	rng := g.rng
	link := g.link
	var retry *resilience.Retry
	if g.retry != nil {
		r := *g.retry
		retry = &r
	}
	g.mu.Unlock()

	if len(ids) < 2 {
		return 0
	}
	g.cRounds.Inc()
	updates := 0
	for _, id := range ids {
		snapshot := stores[id].Snapshot()
		for f := 0; f < fanout; f++ {
			peer := ids[rng.Intn(len(ids))]
			if peer == id {
				continue
			}
			updates += g.push(stores, link, retry, id, peer, snapshot)
		}
	}
	g.cUpdates.Add(int64(updates))
	return updates
}

// push delivers one snapshot over the (possibly faulty) link, with
// retries when a policy is configured, and returns the updates
// applied.
func (g *Gossip) push(stores map[string]*Store, link Link, retry *resilience.Retry, from, to string, snapshot []Item) int {
	deliver := func() (int, error) {
		if link != nil && !link(from, to) {
			g.mu.Lock()
			g.dropped++
			g.mu.Unlock()
			g.cDropped.Inc()
			return 0, errPushDropped
		}
		return stores[to].Merge(snapshot), nil
	}
	if retry == nil {
		n, _ := deliver()
		return n
	}
	updates := 0
	r := *retry
	prevOnRetry := r.OnRetry
	r.OnRetry = func(attempt int, err error) {
		g.mu.Lock()
		g.retried++
		g.mu.Unlock()
		g.cRetries.Inc()
		if prevOnRetry != nil {
			prevOnRetry(attempt, err)
		}
	}
	_ = r.Do(func() error {
		n, err := deliver()
		updates += n
		return err
	})
	return updates
}

// RunUntilConverged runs rounds until every node holds an identical
// snapshot (checked deterministically — a zero-update random round is
// not proof of convergence), up to maxRounds. It returns the number of
// rounds executed.
func (g *Gossip) RunUntilConverged(maxRounds int) int {
	for round := 0; round < maxRounds; round++ {
		if g.Converged() {
			return round
		}
		g.RunRound()
	}
	return maxRounds
}

// Converged reports whether every node's store holds the same items at
// the same versions.
func (g *Gossip) Converged() bool {
	g.mu.Lock()
	stores := make([]*Store, 0, len(g.stores))
	for _, s := range g.stores {
		stores = append(stores, s)
	}
	g.mu.Unlock()

	if len(stores) < 2 {
		return true
	}
	reference := stores[0].Snapshot()
	for _, s := range stores[1:] {
		snap := s.Snapshot()
		if len(snap) != len(reference) {
			return false
		}
		for i, item := range snap {
			if item.Key != reference[i].Key || item.Version != reference[i].Version {
				return false
			}
		}
	}
	return true
}
