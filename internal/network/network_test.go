package network

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBusSynchronousDelivery(t *testing.T) {
	b := NewBus(rand.New(rand.NewSource(1)))
	var got []Message
	if err := b.Attach("a", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := b.Send(Message{From: "b", To: "a", Topic: "t", Payload: 42}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if len(got) != 1 || got[0].Payload != 42 {
		t.Errorf("got = %+v", got)
	}
	delivered, dropped := b.Stats()
	if delivered != 1 || dropped != 0 {
		t.Errorf("stats = %d,%d", delivered, dropped)
	}
}

func TestBusAttachValidation(t *testing.T) {
	b := NewBus(nil)
	if err := b.Attach("", func(Message) {}); err == nil {
		t.Error("empty id attached")
	}
	if err := b.Attach("a", nil); err == nil {
		t.Error("nil handler attached")
	}
	if err := b.Attach("a", func(Message) {}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := b.Attach("a", func(Message) {}); err == nil {
		t.Error("duplicate attached")
	}
	if !b.Detach("a") || b.Detach("a") {
		t.Error("Detach semantics wrong")
	}
}

func TestBusUnknownNode(t *testing.T) {
	b := NewBus(nil)
	err := b.Send(Message{To: "ghost"})
	if !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
}

func TestBusPartition(t *testing.T) {
	b := NewBus(rand.New(rand.NewSource(1)))
	delivered := 0
	for _, id := range []string{"a", "b", "c"} {
		if err := b.Attach(id, func(Message) { delivered++ }); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	b.Partition(map[string]int{"a": 0, "b": 1, "c": 0})

	if err := b.Send(Message{From: "a", To: "b"}); !errors.Is(err, ErrDropped) {
		t.Errorf("cross-partition send = %v", err)
	}
	if err := b.Send(Message{From: "a", To: "c"}); err != nil {
		t.Errorf("same-partition send = %v", err)
	}
	b.Heal()
	if err := b.Send(Message{From: "a", To: "b"}); err != nil {
		t.Errorf("post-heal send = %v", err)
	}
	if delivered != 2 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestBusLoss(t *testing.T) {
	b := NewBus(rand.New(rand.NewSource(2)), WithLoss(0.5))
	if err := b.Attach("a", func(Message) {}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	losses := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if err := b.Send(Message{From: "b", To: "a"}); errors.Is(err, ErrDropped) {
			losses++
		}
	}
	rate := float64(losses) / trials
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("loss rate = %.3f, want ≈0.5", rate)
	}
}

func TestBusLatencyViaEngine(t *testing.T) {
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	clock := sim.NewClock(start)
	engine := sim.NewEngine(clock)
	b := NewBus(rand.New(rand.NewSource(3)),
		WithEngine(engine),
		WithLatency(10*time.Millisecond, 20*time.Millisecond),
	)
	var deliveredAt time.Time
	if err := b.Attach("a", func(Message) { deliveredAt = clock.Now() }); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := b.Send(Message{From: "b", To: "a"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if !deliveredAt.IsZero() {
		t.Fatal("delivered synchronously despite engine")
	}
	if err := engine.Run(start.Add(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	lat := deliveredAt.Sub(start)
	if lat < 10*time.Millisecond || lat > 20*time.Millisecond {
		t.Errorf("latency = %v", lat)
	}
}

func TestBusBroadcast(t *testing.T) {
	b := NewBus(rand.New(rand.NewSource(1)))
	counts := map[string]int{}
	for _, id := range []string{"a", "b", "c"} {
		id := id
		if err := b.Attach(id, func(Message) { counts[id]++ }); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	n := b.Broadcast("a", "hello", nil)
	if n != 2 || counts["a"] != 0 || counts["b"] != 1 || counts["c"] != 1 {
		t.Errorf("broadcast n=%d counts=%v", n, counts)
	}
}

func TestRegistryAnnounceAndWatch(t *testing.T) {
	r := NewRegistry()
	var announced []string
	var departed []string
	r.Watch(WatcherFuncs{
		OnAnnounced: func(info DeviceInfo) { announced = append(announced, info.ID) },
		OnDeparted:  func(id string) { departed = append(departed, id) },
	})

	if err := r.Announce(DeviceInfo{ID: "d1", Type: "drone", Attrs: map[string]float64{"range": 5}}); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	if err := r.Announce(DeviceInfo{ID: "m1", Type: "mule"}); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	if err := r.Announce(DeviceInfo{}); err == nil {
		t.Error("empty announcement accepted")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if got := r.ByType("drone"); len(got) != 1 || got[0].ID != "d1" {
		t.Errorf("ByType = %v", got)
	}
	info, ok := r.Get("d1")
	if !ok || info.Attrs["range"] != 5 {
		t.Errorf("Get = %+v,%v", info, ok)
	}
	if len(r.All()) != 2 {
		t.Errorf("All = %v", r.All())
	}
	if !r.Depart("d1") || r.Depart("d1") {
		t.Error("Depart semantics wrong")
	}
	if len(announced) != 2 || len(departed) != 1 || departed[0] != "d1" {
		t.Errorf("watch: announced=%v departed=%v", announced, departed)
	}
}

func TestRegistryCopiesAttrs(t *testing.T) {
	r := NewRegistry()
	attrs := map[string]float64{"x": 1}
	if err := r.Announce(DeviceInfo{ID: "d", Attrs: attrs}); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	attrs["x"] = 99
	info, _ := r.Get("d")
	if info.Attrs["x"] != 1 {
		t.Error("registry aliased caller's map")
	}
}

func TestStoreVersioning(t *testing.T) {
	s := NewStore()
	if !s.Put(Item{Key: "k", Version: 1, Payload: "a"}) {
		t.Error("initial put rejected")
	}
	if s.Put(Item{Key: "k", Version: 1, Payload: "b"}) {
		t.Error("same-version put accepted")
	}
	if !s.Put(Item{Key: "k", Version: 2, Payload: "c"}) {
		t.Error("newer put rejected")
	}
	item, ok := s.Get("k")
	if !ok || item.Payload != "c" {
		t.Errorf("Get = %+v,%v", item, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if n := s.Merge([]Item{{Key: "k", Version: 9}, {Key: "j", Version: 1}}); n != 2 {
		t.Errorf("Merge = %d", n)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Key != "j" {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestGossipConvergence(t *testing.T) {
	g := NewGossip(rand.New(rand.NewSource(4)), 2)
	const nodes = 16
	for i := 0; i < nodes; i++ {
		g.Join(nodeName(i))
	}
	// Seed one node with an item.
	seed, _ := g.Store(nodeName(0))
	seed.Put(Item{Key: "policy:p1", Version: 1, Payload: "rule"})

	rounds := g.RunUntilConverged(50)
	if rounds >= 50 {
		t.Fatalf("gossip did not converge in %d rounds", rounds)
	}
	for i := 0; i < nodes; i++ {
		s, _ := g.Store(nodeName(i))
		if _, ok := s.Get("policy:p1"); !ok {
			t.Errorf("node %d missing item after convergence", i)
		}
	}
}

func TestGossipSmallGroups(t *testing.T) {
	g := NewGossip(rand.New(rand.NewSource(1)), 1)
	if g.RunRound() != 0 {
		t.Error("empty gossip round did updates")
	}
	g.Join("solo")
	if g.RunRound() != 0 {
		t.Error("single-node gossip round did updates")
	}
	g.Join("solo") // rejoin returns same store
	s1, _ := g.Store("solo")
	s2 := g.Join("solo")
	if s1 != s2 {
		t.Error("rejoin created a new store")
	}
	g.Leave("solo")
	if _, ok := g.Store("solo"); ok {
		t.Error("store present after leave")
	}
}

func nodeName(i int) string { return string(rune('a'+i%26)) + "-node" }
