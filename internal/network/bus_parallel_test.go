package network

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestBusLaneHandlerSharded verifies that deliveries to lane handlers
// are sharded per recipient: on a parallel engine each recipient's
// deliveries stay ordered while the fleet is fanned out, and the lane
// reaches the handler.
func TestBusLaneHandlerSharded(t *testing.T) {
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	clock := sim.NewClock(start)
	engine := sim.NewEngine(clock)
	engine.SetParallelism(4)
	b := NewBus(nil, WithEngine(engine))

	const nodes = 8
	got := make([][]string, nodes) // per-node slices: shard-owned
	for i := 0; i < nodes; i++ {
		i := i
		id := fmt.Sprintf("n%d", i)
		if err := b.AttachLane(id, func(m Message, lane *sim.Lane) {
			if lane == nil {
				t.Errorf("%s: nil lane on engine delivery", id)
			}
			got[i] = append(got[i], m.Payload.(string))
		}); err != nil {
			t.Fatalf("AttachLane(%s): %v", id, err)
		}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < nodes; i++ {
			msg := Message{From: "src", To: fmt.Sprintf("n%d", i), Payload: fmt.Sprintf("r%d", round)}
			if err := b.Send(msg); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
	}
	if err := engine.Run(start.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < nodes; i++ {
		if len(got[i]) != 3 || got[i][0] != "r0" || got[i][1] != "r1" || got[i][2] != "r2" {
			t.Errorf("node %d deliveries = %v, want ordered r0..r2", i, got[i])
		}
	}
}

// TestBusLaneHandlerSynchronous verifies the engine-less path: lane
// handlers are called inline with a nil lane (which sim.Lane treats as
// direct).
func TestBusLaneHandlerSynchronous(t *testing.T) {
	b := NewBus(nil)
	delivered := 0
	if err := b.AttachLane("a", func(m Message, lane *sim.Lane) {
		if lane != nil {
			t.Error("synchronous delivery carried a lane")
		}
		delivered++
	}); err != nil {
		t.Fatalf("AttachLane: %v", err)
	}
	if err := b.AttachLane("", func(Message, *sim.Lane) {}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := b.AttachLane("b", nil); err == nil {
		t.Error("nil lane handler accepted")
	}
	if err := b.Send(Message{From: "x", To: "a"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}

// TestBusConcurrentSends hammers Send from many goroutines to prove the
// accounting stays race-safe and exact (run under -race).
func TestBusConcurrentSends(t *testing.T) {
	b := NewBus(nil)
	var mu sync.Mutex
	received := 0
	if err := b.Attach("sink", func(Message) {
		mu.Lock()
		received++
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := fmt.Sprintf("src%d", s)
			for i := 0; i < per; i++ {
				if err := b.Send(Message{From: from, To: "sink"}); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()
	delivered, dropped := b.Stats()
	if received != senders*per || delivered != senders*per || dropped != 0 {
		t.Errorf("received=%d delivered=%d dropped=%d, want %d/%d/0",
			received, delivered, dropped, senders*per, senders*per)
	}
}
