package network

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// WireMessage is the on-the-wire form of a Message: newline-delimited
// JSON with a string payload (callers serialize structured payloads
// themselves, keeping the wire format schema-free).
type WireMessage struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Topic   string `json:"topic"`
	Payload string `json:"payload,omitempty"`
}

// Server accepts TCP connections and delivers decoded wire messages to
// a handler — the real-network counterpart of the in-memory Bus, used
// when devices run in separate processes. Close stops the listener and
// waits for connection handlers to drain.
type Server struct {
	listener net.Listener
	handler  func(WireMessage)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0"). The handler is
// invoked for every decoded message, potentially from multiple
// goroutines.
func Serve(addr string, handler func(WireMessage)) (*Server, error) {
	if handler == nil {
		return nil, errors.New("network: server needs a handler")
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen: %w", err)
	}
	s := &Server{listener: l, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes the listener, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { _ = conn.Close() }()
			s.readLoop(conn)
		}()
	}
}

func (s *Server) readLoop(conn net.Conn) {
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		if s.isClosed() {
			return
		}
		var msg WireMessage
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			continue // skip malformed frames; the stream stays usable
		}
		s.handler(msg)
	}
}

// Client is a TCP sender of wire messages. It is safe for concurrent
// use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial: %w", err)
	}
	return &Client{conn: conn, enc: json.NewEncoder(conn)}, nil
}

// Send transmits one message (json.Encoder writes a trailing newline,
// matching the server's line-delimited framing).
func (c *Client) Send(msg WireMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return errors.New("network: client closed")
	}
	if err := c.enc.Encode(msg); err != nil {
		return fmt.Errorf("network: send: %w", err)
	}
	return nil
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// BridgeToBus returns a Server handler that re-injects received wire
// messages into an in-memory bus, so a remote process can address
// local devices. Payloads are forwarded as strings; unknown recipients
// are dropped.
func BridgeToBus(bus *Bus) func(WireMessage) {
	return func(w WireMessage) {
		_ = bus.Send(Message{From: w.From, To: w.To, Topic: w.Topic, Payload: w.Payload})
	}
}
