package network

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/resilience"
)

// WireMessage is the on-the-wire form of a Message: newline-delimited
// JSON with a string payload (callers serialize structured payloads
// themselves, keeping the wire format schema-free).
type WireMessage struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Topic   string `json:"topic"`
	Payload string `json:"payload,omitempty"`
}

// Server accepts TCP connections and delivers decoded wire messages to
// a handler — the real-network counterpart of the in-memory Bus, used
// when devices run in separate processes. Close stops the listener and
// waits for connection handlers to drain.
type Server struct {
	listener    net.Listener
	handler     func(WireMessage)
	idleTimeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeOption configures a Server.
type ServeOption interface {
	applyServe(*Server)
}

type serveOptionFunc func(*Server)

func (f serveOptionFunc) applyServe(s *Server) { f(s) }

// WithIdleTimeout closes a connection when no bytes arrive for the
// given duration, so a stalled peer cannot pin a handler goroutine
// forever. Zero (the default) disables the timeout.
func WithIdleTimeout(d time.Duration) ServeOption {
	return serveOptionFunc(func(s *Server) { s.idleTimeout = d })
}

// Serve starts a server on addr (e.g. "127.0.0.1:0"). The handler is
// invoked for every decoded message, potentially from multiple
// goroutines.
func Serve(addr string, handler func(WireMessage), opts ...ServeOption) (*Server, error) {
	if handler == nil {
		return nil, errors.New("network: server needs a handler")
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen: %w", err)
	}
	s := &Server{listener: l, handler: handler, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o.applyServe(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, closes the listener and every live
// connection — a stalled peer must not pin shutdown — and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// track registers a live connection for forced shutdown; it reports
// false when the server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer func() { _ = conn.Close() }()
			s.readLoop(conn)
		}()
	}
}

// idleConn arms a fresh read deadline before every Read, so the
// scanner unblocks (and the connection closes) once the peer stalls
// for longer than the timeout.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (s *Server) readLoop(conn net.Conn) {
	var r io.Reader = conn
	if s.idleTimeout > 0 {
		r = idleConn{Conn: conn, timeout: s.idleTimeout}
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		if s.isClosed() {
			return
		}
		var msg WireMessage
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			continue // skip malformed frames; the stream stays usable
		}
		s.handler(msg)
	}
}

// ErrClosed is returned by Send on a client that was explicitly
// closed; a closed client never redials.
var ErrClosed = errors.New("network: client closed")

// Client is a TCP sender of wire messages. It is safe for concurrent
// use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial: %w", err)
	}
	return &Client{conn: conn, enc: json.NewEncoder(conn)}, nil
}

// Send transmits one message (json.Encoder writes a trailing newline,
// matching the server's line-delimited framing).
func (c *Client) Send(msg WireMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return ErrClosed
	}
	if err := c.enc.Encode(msg); err != nil {
		return fmt.Errorf("network: send: %w", err)
	}
	return nil
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// ResilientClient is a Client that survives connection failures: each
// Send runs under the retry policy with an optional per-call write
// deadline, and a failed attempt tears the connection down and redials
// before the next one.
type ResilientClient struct {
	// Retry bounds redial-and-resend attempts; the zero value tries
	// three times.
	Retry resilience.Retry
	// SendTimeout bounds each write on the wire; zero disables it.
	SendTimeout time.Duration

	addr   string
	mu     sync.Mutex
	conn   *Client
	closed bool
}

// DialResilient connects to a Server, keeping the address for
// automatic reconnection.
func DialResilient(addr string, retry resilience.Retry) (*ResilientClient, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return &ResilientClient{Retry: retry, addr: addr, conn: c}, nil
}

// Send transmits one message, redialing between attempts when the
// connection failed. After Close it fails fast with ErrClosed — a
// closed client must stay closed, not silently resurrect the
// connection by redialing.
func (c *ResilientClient) Send(msg WireMessage) error {
	return c.Retry.Do(func() error {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		client := c.conn
		c.mu.Unlock()
		if client == nil {
			fresh, err := Dial(c.addr)
			if err != nil {
				return err
			}
			c.mu.Lock()
			if c.closed {
				// Close raced the redial; do not resurrect.
				c.mu.Unlock()
				_ = fresh.Close()
				return ErrClosed
			}
			c.conn = fresh
			client = fresh
			c.mu.Unlock()
		}
		if c.SendTimeout > 0 {
			client.mu.Lock()
			if client.conn != nil {
				_ = client.conn.SetWriteDeadline(time.Now().Add(c.SendTimeout))
			}
			client.mu.Unlock()
		}
		if err := client.Send(msg); err != nil {
			c.mu.Lock()
			if c.conn == client {
				_ = client.Close()
				c.conn = nil
			}
			c.mu.Unlock()
			return err
		}
		if c.SendTimeout > 0 {
			// Disarm the per-call deadline so it cannot fire mid-write
			// on a later slow-but-healthy send.
			client.mu.Lock()
			if client.conn != nil {
				_ = client.conn.SetWriteDeadline(time.Time{})
			}
			client.mu.Unlock()
		}
		return nil
	})
}

// Close shuts the current connection down and marks the client
// closed; subsequent Sends return ErrClosed instead of redialing.
func (c *ResilientClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// BridgeOption configures BridgeToBus.
type BridgeOption interface {
	applyBridge(*bridge)
}

type bridgeOptionFunc func(*bridge)

func (f bridgeOptionFunc) applyBridge(b *bridge) { f(b) }

// WithBridgeErrorHandler surfaces every bus.Send failure on the bridge
// to the callback, together with the wire message that failed, so the
// server side can log, retry or alert instead of losing the message
// silently.
func WithBridgeErrorHandler(fn func(WireMessage, error)) BridgeOption {
	return bridgeOptionFunc(func(b *bridge) { b.onError = fn })
}

type bridge struct {
	bus     *Bus
	onError func(WireMessage, error)
}

// bridgeDropCause maps a bus.Send error to the bus.bridge_dropped
// cause label.
func bridgeDropCause(err error) string {
	switch {
	case errors.Is(err, ErrUnknownNode):
		return "unknown_node"
	case errors.Is(err, ErrDropped):
		if strings.Contains(err.Error(), "partition") {
			return "partition"
		}
		return "loss"
	case errors.Is(err, admission.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, admission.ErrRateLimited):
		return "rate_limited"
	default:
		return "error"
	}
}

// BridgeToBus returns a Server handler that re-injects received wire
// messages into an in-memory bus, so a remote process can address
// local devices. Payloads are forwarded as strings. A refused message
// is never dropped silently: the bus counts it
// (bus.bridge_dropped{cause}) and the error is surfaced to the
// optional WithBridgeErrorHandler callback.
func BridgeToBus(bus *Bus, opts ...BridgeOption) func(WireMessage) {
	br := &bridge{bus: bus}
	for _, o := range opts {
		o.applyBridge(br)
	}
	return func(w WireMessage) {
		err := bus.Send(Message{From: w.From, To: w.To, Topic: w.Topic, Payload: w.Payload})
		if err == nil {
			return
		}
		bus.countBridgeDrop(bridgeDropCause(err))
		if br.onError != nil {
			br.onError(w, err)
		}
	}
}
