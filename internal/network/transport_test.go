package network

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := Serve("256.0.0.1:99999", func(WireMessage) {}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got []WireMessage
	srv, err := Serve("127.0.0.1:0", func(m WireMessage) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = client.Close() }()

	for i := 0; i < 5; i++ {
		if err := client.Send(WireMessage{
			From: "remote", To: "local", Topic: "event",
			Payload: fmt.Sprintf("msg-%d", i),
		}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 5
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0].Payload != "msg-0" || got[4].Payload != "msg-4" {
		t.Errorf("messages = %+v", got)
	}
}

func TestServerSkipsMalformedFrames(t *testing.T) {
	var mu sync.Mutex
	count := 0
	srv, err := Serve("127.0.0.1:0", func(WireMessage) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = client.Close() }()

	// Raw garbage followed by a valid frame.
	if _, err := clientConnWrite(client, "this is not json\n"); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	if err := client.Send(WireMessage{From: "a", To: "b"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 1
	})
}

// clientConnWrite writes raw bytes through the client's connection.
func clientConnWrite(c *Client, s string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Write([]byte(s))
}

func TestMultipleClients(t *testing.T) {
	var mu sync.Mutex
	senders := make(map[string]int)
	srv, err := Serve("127.0.0.1:0", func(m WireMessage) {
		mu.Lock()
		senders[m.From]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer func() { _ = client.Close() }()
			for j := 0; j < 10; j++ {
				if err := client.Send(WireMessage{From: fmt.Sprintf("c%d", id), To: "srv"}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, n := range senders {
			total += n
		}
		return total == 40
	})
	mu.Lock()
	defer mu.Unlock()
	if len(senders) != 4 {
		t.Errorf("senders = %v", senders)
	}
}

func TestClientClosedSend(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(WireMessage) {})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := client.Send(WireMessage{}); err == nil {
		t.Error("Send on closed client succeeded")
	}
}

func TestServerDoubleClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(WireMessage) {})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestBridgeToBus(t *testing.T) {
	bus := NewBus(rand.New(rand.NewSource(1)))
	var mu sync.Mutex
	var got []Message
	if err := bus.Attach("device-1", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Attach: %v", err)
	}

	srv, err := Serve("127.0.0.1:0", BridgeToBus(bus))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() { _ = srv.Close() }()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = client.Close() }()

	if err := client.Send(WireMessage{From: "remote", To: "device-1", Topic: "cmd", Payload: "patrol"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Unknown recipients are counted, never dropped silently.
	if err := client.Send(WireMessage{From: "remote", To: "ghost"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	waitFor(t, func() bool { return bus.BridgeDropped() == 1 })
	mu.Lock()
	defer mu.Unlock()
	if got[0].Payload != "patrol" || got[0].From != "remote" {
		t.Errorf("bridged message = %+v", got[0])
	}
}
