package network

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property: gossip converges — after enough rounds, every node holds
// the highest version of every key — across random group sizes,
// fanouts, and seeding patterns.
func TestGossipConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		nodes := 2 + rng.Intn(30)
		fanout := 1 + rng.Intn(3)
		keys := 1 + rng.Intn(10)

		g := NewGossip(rand.New(rand.NewSource(int64(trial))), fanout)
		ids := make([]string, nodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("n%02d", i)
			g.Join(ids[i])
		}
		// Seed random versions of each key at random nodes.
		highest := make(map[string]int, keys)
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("k%d", k)
			for seeds := 0; seeds < 1+rng.Intn(3); seeds++ {
				version := 1 + rng.Intn(5)
				node := ids[rng.Intn(nodes)]
				s, _ := g.Store(node)
				s.Put(Item{Key: key, Version: version})
				if version > highest[key] {
					highest[key] = version
				}
			}
		}

		rounds := g.RunUntilConverged(200)
		if rounds >= 200 {
			t.Fatalf("trial %d (%d nodes, fanout %d): did not converge", trial, nodes, fanout)
		}
		for _, id := range ids {
			s, _ := g.Store(id)
			for key, want := range highest {
				item, ok := s.Get(key)
				if !ok || item.Version != want {
					t.Fatalf("trial %d: node %s has %s v%d, want v%d", trial, id, key, item.Version, want)
				}
			}
		}
	}
}

// Property: merge never regresses a version.
func TestStoreMergeMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := NewStore()
	best := make(map[string]int)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(10))
		version := rng.Intn(20)
		s.Put(Item{Key: key, Version: version})
		if version > best[key] {
			best[key] = version
		}
		item, ok := s.Get(key)
		if !ok || item.Version != best[key] {
			t.Fatalf("step %d: %s at v%d, want v%d", i, key, item.Version, best[key])
		}
	}
}
