package network

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestBusAccountingProperty checks the bus's accounting invariant
// under concurrent senders: every attempted send to a known receiver
// is counted exactly once as delivered or dropped, and duplicates are
// tracked separately without distorting either column.
func TestBusAccountingProperty(t *testing.T) {
	metrics := sim.NewMetrics()
	bus := NewBus(rand.New(rand.NewSource(42)),
		WithLoss(0.3), WithDuplication(0.2), WithMetrics(metrics))
	nodes := []string{"a", "b", "c", "d"}
	var handled sync.Map
	for _, id := range nodes {
		id := id
		count := new(int64)
		handled.Store(id, count)
		mu := new(sync.Mutex)
		if err := bus.Attach(id, func(Message) {
			mu.Lock()
			*count++
			mu.Unlock()
		}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}

	const senders = 8
	const perSender = 250
	var wg sync.WaitGroup
	var okCount, dropCount int64
	var statMu sync.Mutex
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < perSender; i++ {
				to := nodes[rng.Intn(len(nodes))]
				err := bus.Send(Message{From: "sender", To: to, Topic: "t"})
				statMu.Lock()
				switch {
				case err == nil:
					okCount++
				case errors.Is(err, ErrDropped):
					dropCount++
				default:
					statMu.Unlock()
					t.Errorf("unexpected send error: %v", err)
					return
				}
				statMu.Unlock()
			}
		}(s)
	}
	wg.Wait()

	const attempted = senders * perSender
	delivered, dropped := bus.Stats()
	if delivered+dropped != attempted {
		t.Errorf("delivered %d + dropped %d != attempted %d", delivered, dropped, attempted)
	}
	if int64(delivered) != okCount || int64(dropped) != dropCount {
		t.Errorf("stats (%d,%d) disagree with caller-observed (%d,%d)",
			delivered, dropped, okCount, dropCount)
	}
	if dropped == 0 {
		t.Error("no drops at 30% loss — loss knob inert")
	}
	if bus.Duplicated() == 0 {
		t.Error("no duplicates at 20% duplication — dup knob inert")
	}

	// Handlers saw every delivery exactly once, plus one extra per
	// duplicate — no more, no fewer.
	var handledTotal int64
	handled.Range(func(_, v any) bool {
		handledTotal += *v.(*int64)
		return true
	})
	want := int64(delivered + bus.Duplicated())
	if handledTotal != want {
		t.Errorf("handlers saw %d messages, want %d (delivered + duplicated)", handledTotal, want)
	}

	// The metrics mirror agrees with the bus's own counters.
	if metrics.Counter("bus.delivered") != int64(delivered) ||
		metrics.Counter("bus.dropped") != int64(dropped) {
		t.Errorf("metrics mirror (%d,%d) disagrees with stats (%d,%d)",
			metrics.Counter("bus.delivered"), metrics.Counter("bus.dropped"), delivered, dropped)
	}
}
